module xmoe

go 1.24
