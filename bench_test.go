// Package xmoe's root benchmark suite regenerates every table and figure
// of the paper's evaluation. Each Benchmark wraps the corresponding
// experiment in internal/bench in quick mode so `go test -bench=.` stays
// tractable; full-fidelity runs go through cmd/xmoe-bench (no -quick).
//
//	go test -bench=. -benchmem .
package xmoe_test

import (
	"io"
	"testing"

	"xmoe/internal/bench"
)

func quick() bench.Options { return bench.Options{Seed: 42, Quick: true} }

// BenchmarkTable1_SizeEquivalence regenerates Tables 1-2: the
// Mconv/Mspec size-equivalence and the activation scaling shift.
func BenchmarkTable1_SizeEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1SizeEquivalence(io.Discard)
	}
}

// BenchmarkFigure3_MemoryDistribution regenerates Fig. 3: the MoE layer
// memory distribution of Mconv vs Mspec (bottleneck shift to
// dispatch/combine).
func BenchmarkFigure3_MemoryDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure3MemoryDistribution(io.Discard)
	}
}

// BenchmarkFigure4_RedundancyRate regenerates Fig. 4: node-level
// redundancy of dispatched tokens vs EP size (analytic + measured).
func BenchmarkFigure4_RedundancyRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure4Redundancy(io.Discard, quick())
	}
}

// BenchmarkFigure9_MainResults regenerates Fig. 9: trainability and
// throughput of the Table 3 models across the four systems (quick mode
// covers the Small model; the full grid runs via cmd/xmoe-bench).
func BenchmarkFigure9_MainResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure9MainResults(io.Discard, quick())
	}
}

// BenchmarkFigure10a_WeakScaling regenerates Fig. 10(a): weak scaling of
// the Small model, 16-256 GPUs.
func BenchmarkFigure10a_WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure10aWeakScaling(io.Discard, quick())
	}
}

// BenchmarkFigure10b_StrongScaling regenerates Fig. 10(b): strong scaling
// of the Medium model at fixed global batch.
func BenchmarkFigure10b_StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure10bStrongScaling(io.Discard, quick())
	}
}

// BenchmarkFigure11_LayerBreakdown regenerates Fig. 11: the forward MoE
// layer stage breakdown, DeepSpeed-MoE vs X-MoE.
func BenchmarkFigure11_LayerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure11LayerBreakdown(io.Discard, quick())
	}
}

// BenchmarkFigure12_RBDBreakdown regenerates Fig. 12: dispatch time with
// and without redundancy-bypassing dispatch.
func BenchmarkFigure12_RBDBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure12RBDBreakdown(io.Discard, quick())
	}
}

// BenchmarkTable4_ActivationMemory regenerates Table 4: per-MoE-layer
// activation memory across systems.
func BenchmarkTable4_ActivationMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4ActivationMemory(io.Discard)
	}
}

// BenchmarkFigure13_SSMBMemory regenerates Fig. 13: per-GPU memory with
// and without SSMB across TP degrees.
func BenchmarkFigure13_SSMBMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure13SSMBMemory(io.Discard)
	}
}

// BenchmarkFigure14_SSMBvsCkpt regenerates Fig. 14: SSMB vs activation
// checkpointing throughput at matched memory budgets.
func BenchmarkFigure14_SSMBvsCkpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure14SSMBvsCkpt(io.Discard, quick())
	}
}

// BenchmarkTable5_CrossPlatform regenerates Table 5: the Small model and
// its SR/LR reductions on 8x NVIDIA A100 40GB.
func BenchmarkTable5_CrossPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5CrossPlatform(io.Discard, quick())
	}
}

// BenchmarkFigure15_LossValidation regenerates Fig. 15: loss curves under
// the two token-dropping policies (real numeric training).
func BenchmarkFigure15_LossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure15LossValidation(io.Discard, quick())
	}
}

// BenchmarkFigure17_AdvantageRegions regenerates Fig. 17: the SSMB vs TED
// memory-saving advantage regions for real MoE architectures.
func BenchmarkFigure17_AdvantageRegions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure17AdvantageRegions(io.Discard)
	}
}

// BenchmarkFigure18_AlltoAllScaling regenerates Figs. 18-19 (Appendix D):
// the all-to-all latency characterisation from 8 to 1024 GPUs with
// cross-rack outliers.
func BenchmarkFigure18_AlltoAllScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure18AlltoAllScaling(io.Discard, quick())
	}
}

// BenchmarkFigure20_DepthTopK regenerates Fig. 20 (Appendix E): scaling
// model depth and routing top-k on 256 GPUs.
func BenchmarkFigure20_DepthTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure20DepthTopK(io.Discard, quick())
	}
}

// BenchmarkAppendixC1_Placement regenerates the Appendix C.1 analysis:
// EP-first vs DP-first placement costs.
func BenchmarkAppendixC1_Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AppendixC1Placement(io.Discard)
	}
}

// BenchmarkAblationPilotSelection measures RBD's random vs
// smallest-expert-ID pilot selection (§4.2 design note).
func BenchmarkAblationPilotSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationPilotSelection(io.Discard, quick())
	}
}

// BenchmarkAblationCapacityFactor sweeps the expert capacity factor's
// effect on dropping and padded-buffer memory.
func BenchmarkAblationCapacityFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationCapacityFactor(io.Discard, quick())
	}
}

// BenchmarkAblationRBDByEPSize tracks RBD's communication saving against
// the redundancy rate across EP sizes.
func BenchmarkAblationRBDByEPSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationRBDByEPSize(io.Discard, quick())
	}
}
