package bench

import (
	"fmt"
	"io"

	"xmoe/internal/moe"
	"xmoe/internal/train"
)

// Figure15Result carries the two loss curves of the implementation
// validation.
type Figure15Result struct {
	Iterations []int
	DSMoE      []float64
	XMoE       []float64
	// FinalGap is mean(DS loss) - mean(X-MoE loss) over the last window;
	// the paper observes X-MoE slightly lower (it retains more tokens).
	FinalGap float64
}

// Figure15LossValidation regenerates Fig. 15: training-loss curves of the
// same MoE LM under DeepSpeed-MoE's drop-negative-score policy vs X-MoE's
// capacity-only dropping, on identical data and initialisation. The
// curves must closely track, with X-MoE's at or slightly below.
func Figure15LossValidation(w io.Writer, opts Options) Figure15Result {
	iters := 500
	if opts.Quick {
		iters = 120
	}
	mkCfg := func(p moe.DropPolicy) train.LMConfig {
		cfg := train.DefaultLMConfig(p)
		cfg.Seed = opts.Seed
		// Tight capacity so the dropping policies actually diverge.
		cfg.MoE.CapacityFactor = 1.1
		return cfg
	}
	xs := train.Smooth(train.LossCurve(mkCfg(moe.DropByCapacityWeight), iters), 25)
	ds := train.Smooth(train.LossCurve(mkCfg(moe.DropNegativeThenPosition), iters), 25)

	res := Figure15Result{XMoE: xs, DSMoE: ds}
	for i := 0; i < iters; i++ {
		res.Iterations = append(res.Iterations, i)
	}
	window := iters / 5
	res.FinalGap = train.Mean(ds[iters-window:]) - train.Mean(xs[iters-window:])

	header(w, "Figure 15: loss validation, DeepSpeed-MoE vs X-MoE dropping policies")
	t := newTable("iteration", "DS-MoE loss", "X-MoE loss")
	step := iters / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < iters; i += step {
		t.add(fmt.Sprint(i), fmt.Sprintf("%.4f", ds[i]), fmt.Sprintf("%.4f", xs[i]))
	}
	t.add("final", fmt.Sprintf("%.4f", ds[iters-1]), fmt.Sprintf("%.4f", xs[iters-1]))
	t.write(w)
	fmt.Fprintf(w, "  final-window gap (DS - XMoE) = %+.4f; paper: X-MoE tracks DS-MoE closely,\n", res.FinalGap)
	fmt.Fprintln(w, "  slightly lower because capacity-only dropping retains more tokens per batch")
	return res
}
