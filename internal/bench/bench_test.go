package bench

import (
	"io"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 42, Quick: true} }

func TestTable1SizeEquivalence(t *testing.T) {
	res := Table1SizeEquivalence(io.Discard)
	if res.ConvParams != res.SpecParams {
		t.Fatal("Mconv/Mspec must be size-equivalent")
	}
	if res.ConvActivated != res.SpecActivated {
		t.Fatal("activated params must match")
	}
	ratio := float64(res.SpecDispatch) / float64(res.ConvDispatch)
	if ratio < 7 || ratio > 9 {
		t.Fatalf("dispatch growth %.2f, want ~8 (m=8)", ratio)
	}
	if res.ConvInterm != res.SpecInterm {
		t.Fatal("intermediates must be constant across the pair")
	}
}

func TestFigure3BottleneckShift(t *testing.T) {
	res := Figure3MemoryDistribution(io.Discard)
	if res.Spec.ADispatch <= res.Spec.AInterm0 {
		t.Fatal("Mspec must be dispatch-dominated")
	}
	if res.Conv.ADispatch >= res.Conv.AInterm0 {
		t.Fatal("Mconv must be interm-dominated")
	}
}

func TestFigure4MatchesPaper(t *testing.T) {
	res := Figure4Redundancy(io.Discard, quickOpts())
	for i := range res.EPSizes {
		if math.Abs(res.Analytic[i]-res.Paper[i]) > 0.012 {
			t.Errorf("EP=%d analytic %.3f vs paper %.3f", res.EPSizes[i], res.Analytic[i], res.Paper[i])
		}
		if math.Abs(res.Measured[i]-res.Paper[i]) > 0.06 {
			t.Errorf("EP=%d measured %.3f vs paper %.3f", res.EPSizes[i], res.Measured[i], res.Paper[i])
		}
	}
}

func TestFigure9QuickShape(t *testing.T) {
	cells := Figure9MainResults(io.Discard, quickOpts())
	byName := map[string]Figure9Cell{}
	for _, c := range cells {
		byName[c.System] = c
	}
	x, tu, ds := byName["X-MoE"], byName["Tutel"], byName["DeepSpeed-MoE"]
	if x.OOM || tu.OOM || ds.OOM {
		t.Fatal("all systems must train the Small model on 256 GPUs")
	}
	if !(x.TFLOPs > tu.TFLOPs && tu.TFLOPs > ds.TFLOPs) {
		t.Fatalf("ordering violated: X-MoE %.1f, Tutel %.1f, DS %.1f",
			x.TFLOPs, tu.TFLOPs, ds.TFLOPs)
	}
	ratio := x.TFLOPs / tu.TFLOPs
	if ratio < 1.1 || ratio > 2.5 {
		t.Fatalf("X-MoE/Tutel ratio %.2f outside the plausible band around the paper's 1.33", ratio)
	}
}

func TestFigure10aWeakScalingShape(t *testing.T) {
	pts := Figure10aWeakScaling(io.Discard, quickOpts())
	for _, p := range pts {
		if p.XMoE <= p.Tutel {
			t.Fatalf("%d GPUs: X-MoE %.1f must beat Tutel %.1f", p.GPUs, p.XMoE, p.Tutel)
		}
	}
}

func TestFigure10bStrongScalingShape(t *testing.T) {
	pts := Figure10bStrongScaling(io.Discard, quickOpts())
	if len(pts) < 2 {
		t.Fatal("need at least two scaling points")
	}
	if !pts[0].TutelOOM {
		t.Error("Tutel should OOM at 128 GPUs on the Medium model (paper Fig. 10b)")
	}
	if pts[1].XMoE >= pts[0].XMoE {
		t.Errorf("X-MoE iteration time should fall 128->256 GPUs: %.2f -> %.2f",
			pts[0].XMoE, pts[1].XMoE)
	}
}

func TestFigure11BreakdownShape(t *testing.T) {
	res := Figure11LayerBreakdown(io.Discard, quickOpts())
	small := res[0]
	// Gate, dispatch and combine must be much faster under X-MoE.
	for _, st := range []string{"gate", "dispatch", "combine"} {
		if small.XMoE[st] >= small.DSMoE[st] {
			t.Errorf("stage %s: X-MoE %.4f should beat DS-MoE %.4f", st, small.XMoE[st], small.DSMoE[st])
		}
	}
	speedup := small.DSMoE["dispatch"] / small.XMoE["dispatch"]
	if speedup < 5 {
		t.Errorf("dispatch speedup %.1fx too small (paper 35.7x)", speedup)
	}
	var totalDS, totalX float64
	for _, v := range small.DSMoE {
		totalDS += v
	}
	for _, v := range small.XMoE {
		totalX += v
	}
	if totalX >= totalDS {
		t.Errorf("X-MoE layer total %.4f should beat DS-MoE %.4f", totalX, totalDS)
	}
}

func TestFigure12RBDShape(t *testing.T) {
	res := Figure12RBDBreakdown(io.Discard, quickOpts())
	if res.Speedup < 1.1 {
		t.Fatalf("RBD dispatch speedup %.2fx, want > 1.1 (paper 1.55x)", res.Speedup)
	}
	if math.Abs(res.MeasuredRedundancy-0.548) > 0.08 {
		t.Fatalf("measured redundancy %.3f, paper 0.548", res.MeasuredRedundancy)
	}
}

func TestTable4Ordering(t *testing.T) {
	res := Table4ActivationMemory(io.Discard)
	if !(res.DSMoE > res.Tutel && res.Tutel > res.XMoE && res.XMoE >= res.Theoretical) {
		t.Fatalf("Table 4 ordering violated: %.2f %.2f %.2f %.2f",
			res.DSMoE, res.Tutel, res.XMoE, res.Theoretical)
	}
}

func TestFigure13SavingGrowsWithTP(t *testing.T) {
	res := Figure13SSMBMemory(io.Discard)
	prevSaving := 0.0
	for i := range res.TP {
		saving := res.Without[i] - res.WithSSMB[i]
		if saving < prevSaving {
			t.Fatalf("SSMB saving must grow with TP: %v vs %v", res.WithSSMB, res.Without)
		}
		prevSaving = saving
	}
}

func TestFigure14SSMBWins(t *testing.T) {
	res := Figure14SSMBvsCkpt(io.Discard, quickOpts())
	if res.SSMBTFLOPs <= res.CkptTFLOPs {
		t.Fatalf("SSMB %.1f should beat checkpointing %.1f", res.SSMBTFLOPs, res.CkptTFLOPs)
	}
	ratio := res.SSMBTFLOPs / res.CkptTFLOPs
	if ratio < 1.1 || ratio > 2.6 {
		t.Errorf("SSMB/ckpt ratio %.2f far from paper's 1.47", ratio)
	}
}

func TestTable5CrossPlatform(t *testing.T) {
	rows := Table5CrossPlatform(io.Discard, quickOpts())
	full := rows[0]
	if full.DSMoE != 0 {
		t.Error("full Small model should OOM on DS-MoE at 8x A100-40GB")
	}
	// Known deviation: the paper also reports Tutel OOM on the full
	// config; our memory model places Tutel ~3 GiB under the 40 GB
	// limit, so it trains here (documented in EXPERIMENTS.md).
	if full.XMoE == 0 {
		t.Error("X-MoE should train the full Small model on 8x A100-40GB")
	}
	for _, r := range rows[1:] {
		if r.DSMoE == 0 || r.Tutel == 0 || r.XMoE == 0 {
			t.Errorf("%s: all systems should train the reduced configs", r.Model)
		}
	}
}

func TestFigure17Verdicts(t *testing.T) {
	res := Figure17AdvantageRegions(io.Discard)
	v := res.Verdicts[4096]
	names := res.Models
	for i, name := range names {
		switch name {
		case "DeepSeek-MoE", "DeepSeek-v3":
			if !v[i] {
				t.Errorf("%s should favour SSMB", name)
			}
		case "Mixtral-8x7b", "Mixtral-8x22b":
			if v[i] {
				t.Errorf("%s should favour TED", name)
			}
		}
	}
	// Arctic flips between S=2048 (TED) and S=8192 (SSMB).
	arctic := len(names) - 1
	if res.Verdicts[2048][arctic] || !res.Verdicts[8192][arctic] {
		t.Error("Arctic should flip from TED to SSMB as S grows")
	}
}

func TestFigure18ThreeRegimes(t *testing.T) {
	res := Figure18AlltoAllScaling(io.Discard, quickOpts())
	// Quick mode: 8, 64, 512 GPUs.
	if res[1].MeanSeconds <= res[0].MeanSeconds {
		t.Error("multi-node a2a should cost more than single-node")
	}
	if res[2].MeanSeconds <= res[1].MeanSeconds {
		t.Error("cross-rack a2a should cost more than single-rack")
	}
	if res[2].Outliers == 0 {
		t.Error("512-GPU a2a should show >500ms outliers (paper Fig. 18)")
	}
	if res[0].Outliers != 0 {
		t.Error("single-node a2a should have no outliers")
	}
}

func TestFigure15CurvesTrack(t *testing.T) {
	res := Figure15LossValidation(io.Discard, quickOpts())
	n := len(res.XMoE)
	if res.XMoE[n-1] >= res.XMoE[0] {
		t.Fatal("X-MoE loss should decrease")
	}
	if res.DSMoE[n-1] >= res.DSMoE[0] {
		t.Fatal("DS-MoE loss should decrease")
	}
	if math.Abs(res.FinalGap) > 0.5 {
		t.Fatalf("curves should track closely, final gap %.3f", res.FinalGap)
	}
}

func TestAppendixC1DPFirstWinsLargeMoE(t *testing.T) {
	res := AppendixC1Placement(io.Discard)
	if res.DPFirstSync >= res.EPFirstSync {
		t.Fatal("DP-first must cut gradient-sync time (replicas intra-node)")
	}
	if res.DPFirstA2A <= res.EPFirstA2A {
		t.Fatal("DP-first must pay more for EP token routing")
	}
	if res.DPFirstSync+res.DPFirstA2A >= res.EPFirstSync+res.EPFirstA2A {
		t.Fatal("for large MoEs (1 GiB grads) DP-first should win overall")
	}
}

func TestTablePrinter(t *testing.T) {
	var sb strings.Builder
	tb := newTable("a", "bb")
	tb.add("xxx", "y")
	tb.write(&sb)
	out := sb.String()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "bb") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

func TestAblationPilotSelectionRandomWins(t *testing.T) {
	res := AblationPilotSelection(io.Discard, quickOpts())
	if res.RandomA2A >= res.FirstExpertA2A {
		t.Fatalf("random pilots (%.4fs) should beat smallest-expert-ID (%.4fs)",
			res.RandomA2A, res.FirstExpertA2A)
	}
}

func TestAblationCapacityFactor(t *testing.T) {
	res := AblationCapacityFactor(io.Discard, quickOpts())
	// Dropping decreases monotonically as the factor grows; padded
	// memory grows monotonically.
	for i := 1; i < len(res.Factors); i++ {
		if res.DropFrac[i] > res.DropFrac[i-1] {
			t.Fatal("larger capacity cannot drop more tokens")
		}
		if res.MemGB[i] < res.MemGB[i-1] {
			t.Fatal("padded memory must grow with the capacity factor")
		}
	}
}

// TestAblationOverlapChunkedStrictlyFaster is the acceptance gate of the
// overlap subsystem: on the Fig. 11 configuration, every chunked variant
// (C >= 2) must be strictly faster than the blocking pipeline (C=1) for
// all three transports.
func TestAblationOverlapChunkedStrictlyFaster(t *testing.T) {
	results := AblationOverlap(io.Discard, quickOpts())
	if len(results) == 0 {
		t.Fatal("no overlap ablation points")
	}
	for _, res := range results {
		for i, chunks := range res.Chunks {
			if chunks == 1 {
				continue
			}
			for _, series := range []struct {
				name string
				ms   []float64
			}{{"pft", res.PFTMs}, {"padded", res.PaddedMs}, {"rbd", res.RBDMs}} {
				if series.ms[i] >= series.ms[0] {
					t.Errorf("%s %s C=%d: %.3fms not strictly faster than blocking %.3fms",
						res.Model, series.name, chunks, series.ms[i], series.ms[0])
				}
			}
		}
	}
}

// TestAblationOverlapBackwardStrictlyFaster is the acceptance gate of the
// backward-pass overlap (PR-5 tentpole, extended to the native RBD
// backward): on the Fig. 11 configuration the full fwd+bwd step with both
// passes chunked must be strictly faster than the fully blocking step for
// every C >= 2, in all three transports, and must also beat the
// fwd-only-overlap step (the pre-backward-overlap state) — the backward
// is where the remaining hideable all-to-all time lives.
func TestAblationOverlapBackwardStrictlyFaster(t *testing.T) {
	results := AblationOverlapBackward(io.Discard, quickOpts())
	if len(results) != 3 {
		t.Fatalf("expected pft, padded, and rbd results, got %d", len(results))
	}
	seen := map[string]bool{}
	for _, res := range results {
		seen[res.Pipeline] = true
	}
	if !seen["rbd"] {
		t.Fatal("abl-overlap-bwd is missing the rbd row")
	}
	for _, res := range results {
		for i, chunks := range res.Chunks {
			if chunks == 1 {
				continue
			}
			if res.FwdBwdMs[i] >= res.FwdBwdMs[0] {
				t.Errorf("%s C=%d: fwd+bwd %.3fms not strictly faster than blocking %.3fms",
					res.Pipeline, chunks, res.FwdBwdMs[i], res.FwdBwdMs[0])
			}
			if res.FwdBwdMs[i] >= res.FwdOnlyMs[i] {
				t.Errorf("%s C=%d: fwd+bwd %.3fms does not beat fwd-only overlap %.3fms",
					res.Pipeline, chunks, res.FwdBwdMs[i], res.FwdOnlyMs[i])
			}
		}
	}
}

func TestAblationRBDByEPSavingShrinks(t *testing.T) {
	res := AblationRBDByEPSize(io.Discard, quickOpts())
	if len(res.Saving) < 2 {
		t.Fatal("need at least two EP points")
	}
	if res.Saving[0] <= res.Saving[len(res.Saving)-1] {
		t.Fatalf("RBD saving should shrink as EP grows (redundancy falls): %v", res.Saving)
	}
	if res.Saving[0] < 0.2 {
		t.Fatalf("EP=16 saving %.2f too small (redundancy is 75%%)", res.Saving[0])
	}
}

// TestAblationFaultsShape is the acceptance gate of the fault-tolerance
// ablation: goodput must not improve as failures get more frequent, the
// checkpoint-interval sweep must peak away from both extremes (near the
// Young/Daly optimum), straggler slowdown must grow with the straggler's
// scale while staying at or below it (comm is unaffected), and the
// numeric trainer must come back from a real crash with an elastic
// shrink and all useful steps completed.
func TestAblationFaultsShape(t *testing.T) {
	res := AblationFaults(io.Discard, quickOpts())
	if len(res.StepSec) != 3 {
		t.Fatalf("expected 3 transports, got %d", len(res.StepSec))
	}
	for ti, tr := range res.Transports {
		g := res.Goodput[ti]
		if g[0] >= g[len(g)-1] {
			t.Errorf("%s: goodput at MTBF=%gx (%v) not below MTBF=%gx (%v)",
				tr, res.MTBFxStep[0], g[0], res.MTBFxStep[len(g)-1], g[len(g)-1])
		}
		for _, v := range g {
			if v <= 0 || v > 1 {
				t.Errorf("%s: goodput %v outside (0, 1]", tr, v)
			}
		}
	}
	// The interval sweep's best point must beat both extremes and sit
	// within a factor of 4 of the Young/Daly optimum.
	best, bestIv := 0.0, 0
	for i, g := range res.CkptGoodput {
		if g > best {
			best, bestIv = g, res.CkptSteps[i]
		}
	}
	if best <= res.CkptGoodput[0] || best <= res.CkptGoodput[len(res.CkptGoodput)-1] {
		t.Errorf("interval sweep should peak away from the extremes: %v", res.CkptGoodput)
	}
	if r := float64(bestIv) / res.YoungDalySteps; r < 0.25 || r > 4 {
		t.Errorf("best interval %d steps is far from Young/Daly optimum %.1f", bestIv, res.YoungDalySteps)
	}
	for ti, tr := range res.Transports {
		prev := 0.0
		for i, sc := range res.StragglerScale {
			slow := res.StragglerSlowdown[ti][i]
			if slow < prev-1e-9 {
				t.Errorf("%s: slowdown not monotone in straggler scale: %v", tr, res.StragglerSlowdown[ti])
			}
			if slow > sc*(1+1e-9) {
				t.Errorf("%s x%g: slowdown %.3f exceeds the compute scale itself", tr, sc, slow)
			}
			prev = slow
		}
		if last := res.StragglerSlowdown[ti][len(res.StragglerScale)-1]; last <= 1 {
			t.Errorf("%s: a 4x straggler must slow the step (got %.3fx)", tr, last)
		}
	}
	if res.FT.Recoveries != 1 || res.FT.FinalWorld >= 4 {
		t.Errorf("numeric trainer should have recovered once with a shrink: %+v", res.FT)
	}
	if res.FT.Goodput <= 0 || res.FT.Goodput >= 1 {
		t.Errorf("numeric trainer goodput %v outside (0, 1)", res.FT.Goodput)
	}
	// Async checkpointing dominates blocking at every MTBF point: the
	// write streams behind real steps instead of stalling them.
	for ti, tr := range res.Transports {
		for mi, mx := range res.MTBFxStep {
			if res.GoodputAsync[ti][mi] < res.Goodput[ti][mi]-1e-12 {
				t.Errorf("%s MTBF=%gx: async goodput %v below blocking %v",
					tr, mx, res.GoodputAsync[ti][mi], res.Goodput[ti][mi])
			}
		}
	}
	// Spare promotion: the pool restores the original world after the
	// crash and never hurts — useful tokens and goodput are monotone
	// non-decreasing in pool size, strictly better once a spare exists.
	for i, st := range res.SpareFT {
		total := st.UsefulTime + st.CkptTime + st.LostTime
		if d := total - st.WallClock; d > 1e-9*st.WallClock || d < -1e-9*st.WallClock {
			t.Errorf("spares=%d: wall %v != useful+ckpt+lost %v", res.SpareSizes[i], st.WallClock, total)
		}
		if i == 0 {
			continue
		}
		if st.UsefulTokens < res.SpareFT[i-1].UsefulTokens {
			t.Errorf("spares=%d: useful tokens %d below smaller pool's %d",
				res.SpareSizes[i], st.UsefulTokens, res.SpareFT[i-1].UsefulTokens)
		}
	}
	if res.SpareFT[0].FinalWorld >= 4 || res.SpareFT[1].FinalWorld != 4 || res.SpareFT[1].SparesUsed != 1 {
		t.Errorf("spare sweep worlds: no-spare %+v, one-spare %+v", res.SpareFT[0], res.SpareFT[1])
	}
	if res.SpareFT[1].UsefulTokens <= res.SpareFT[0].UsefulTokens {
		t.Errorf("regrow must beat shrink on useful tokens: %d vs %d",
			res.SpareFT[1].UsefulTokens, res.SpareFT[0].UsefulTokens)
	}
	// Mitigation: strictly faster under real stragglers (x >= 2), and
	// never catastrophically slower without one.
	for i, sc := range res.MitigationScale {
		if sc >= 2 && res.WallMitigated[i] >= res.WallUnmitigated[i] {
			t.Errorf("x%g: mitigated wall %v not below unmitigated %v",
				sc, res.WallMitigated[i], res.WallUnmitigated[i])
		}
	}
}
