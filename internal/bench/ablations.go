package bench

import (
	"fmt"
	"io"

	"xmoe/internal/baselines"
	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// AblationPilotResult compares pilot-selection strategies.
type AblationPilotResult struct {
	RandomA2A, FirstExpertA2A float64 // mean S1 a2a seconds per rank
}

// AblationPilotSelection quantifies §4.2's design note: random pilot
// selection balances the Stage-1 all-to-all, whereas always choosing the
// smallest expert ID within a node concentrates pilot traffic on the
// lowest-expert ranks and increases the collective's bottleneck time.
func AblationPilotSelection(w io.Writer, opts Options) AblationPilotResult {
	m := topology.Frontier()
	cfg := moe.Config{
		NumExperts: 256, TopK: 8, HModel: 7168, HFFN: 2048,
		CapacityFactor: 100, BytesPerElem: 2,
	}
	sTokens := 1024
	if opts.Quick {
		sTokens = 384
	}

	run := func(policy rbd.PilotPolicy) float64 {
		c := simrt.NewCluster(m, 32, opts.Seed)
		c.Net.DisableCongestion = true
		g := c.WorldGroup()
		d := rbd.NewDispatcher(c, g, cfg)
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(opts.Seed + uint64(r.ID))
			rt := moe.SyntheticRouting(rng, sTokens, cfg.NumExperts, cfg.TopK, 0)
			pft := moe.BuildPFT(rt, cfg.NumExperts, 0, moe.DropByCapacityWeight)
			st, _ := d.Dispatch(r, pft, nil, tensor.NewRNG(opts.Seed^uint64(r.ID)),
				rbd.Opts{Pilots: policy})
			d.Combine(r, st, nil, sTokens, rbd.Opts{Pilots: policy})
			return nil
		})
		if err != nil {
			panic(err)
		}
		var total float64
		for _, rk := range ranks {
			total += rk.Trace.Total(rbd.StageS1A2A)
		}
		return total / float64(len(ranks))
	}

	res := AblationPilotResult{
		RandomA2A:      run(rbd.PilotRandom),
		FirstExpertA2A: run(rbd.PilotFirstExpert),
	}
	header(w, "Ablation: RBD pilot selection strategy (Large layer, 32 GPUs)")
	t := newTable("strategy", "S1 inter-node a2a (ms)")
	t.add("random (paper)", ms(res.RandomA2A))
	t.add("smallest expert ID", ms(res.FirstExpertA2A))
	t.write(w)
	fmt.Fprintln(w, "  paper (§4.2): biased pilot choice 'will significantly increase the alltoall latency'")
	return res
}

// AblationCapacityResult sweeps the expert capacity factor.
type AblationCapacityResult struct {
	Factors  []float64
	DropFrac []float64 // dropped fraction of assignments
	MemGB    []float64 // per-layer activation memory, padded pipeline
}

// AblationCapacityFactor sweeps the GShard capacity factor: smaller
// factors drop more tokens (hurting quality, §5.6) while larger factors
// inflate the padded pipeline's buffers (the waste PFT removes). X-MoE's
// padding-free memory is insensitive to the factor until capacity binds.
func AblationCapacityFactor(w io.Writer, opts Options) AblationCapacityResult {
	res := AblationCapacityResult{Factors: []float64{0.5, 1.0, 1.25, 2.0, 4.0}}
	const s, e, k = 2048, 64, 6
	sh := model.Small()
	rt := moe.SyntheticRouting(tensor.NewRNG(opts.Seed), s, e, k, 0.8)

	header(w, "Ablation: expert capacity factor (Small config, skewed routing)")
	t := newTable("factor", "dropped %", "padded act (GiB/layer)", "PFT act (GiB/layer)")
	for _, f := range res.Factors {
		capTokens := int(f*float64(s)*float64(k)/float64(e) + 0.999999)
		pft := moe.BuildPFT(rt, e, capTokens, moe.DropByCapacityWeight)
		dropFrac := float64(pft.Dropped) / float64(s*k)
		res.DropFrac = append(res.DropFrac, dropFrac)

		mkMem := func(pipe memmodel.Pipeline) float64 {
			st := baselines.For(baselines.DeepSpeedMoE, topology.Frontier()).MemSetup(
				parallel.Plan{World: 64, TP: 1, EP: 64, ZeROStage: 1}, 1)
			st.CapacityFactor = f
			st.Pipeline = pipe
			return float64(memmodel.MoELayer(sh, st, s).Total()) / (1 << 30)
		}
		padded := mkMem(memmodel.PipelinePadded)
		pftMem := mkMem(memmodel.PipelinePFT)
		res.MemGB = append(res.MemGB, padded)
		t.add(fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%.1f", dropFrac*100),
			fmt.Sprintf("%.3f", padded),
			fmt.Sprintf("%.3f", pftMem))
	}
	t.write(w)
	fmt.Fprintln(w, "  padded buffers grow linearly with the factor; PFT memory is bounded by the")
	fmt.Fprintln(w, "  real routed tokens (the paper's padding-free motivation, §4.1)")
	return res
}

// AblationRBDByEPResult records RBD's dispatch-communication saving per EP
// size.
type AblationRBDByEPResult struct {
	EPSizes []int
	Saving  []float64 // fractional reduction of dispatch a2a time
}

// AblationRBDByEPSize extends Fig. 12 across EP sizes: RBD's benefit
// tracks the redundancy rate (Fig. 4), shrinking as experts spread over
// more nodes.
func AblationRBDByEPSize(w io.Writer, opts Options) AblationRBDByEPResult {
	m := topology.Frontier()
	cfg := moe.Config{
		NumExperts: 256, TopK: 8, HModel: 4096, HFFN: 2048,
		CapacityFactor: 100, BytesPerElem: 2,
	}
	sTokens := 512
	if opts.Quick {
		sTokens = 256
	}
	eps := []int{16, 32, 64}
	if opts.Quick {
		eps = eps[:2]
	}

	res := AblationRBDByEPResult{EPSizes: eps}
	header(w, "Ablation: RBD dispatch-communication saving vs EP size (256 experts, k=8)")
	t := newTable("EP size", "redundancy %", "plain a2a (ms)", "RBD S1+S2 (ms)", "saving %")
	for _, ep := range eps {
		plainT := rbdDispatchTime(m, cfg, ep, sTokens, opts.Seed, false)
		rbdT := rbdDispatchTime(m, cfg, ep, sTokens, opts.Seed, true)
		saving := 1 - rbdT/plainT
		res.Saving = append(res.Saving, saving)
		red := rbd.ExpectedRedundancyRate(cfg.NumExperts, cfg.TopK, ep/m.GPUsPerNode)
		t.add(fmt.Sprint(ep), fmt.Sprintf("%.1f", red*100),
			ms(plainT), ms(rbdT), fmt.Sprintf("%.1f", saving*100))
	}
	t.write(w)
	return res
}

// AblationOverlapResult records the chunked comm/compute-overlap sweep
// for one model point: simulated layer time per chunk count and pipeline.
type AblationOverlapResult struct {
	Model    string
	EP       int
	Chunks   []int
	PFTMs    []float64
	PaddedMs []float64
	RBDMs    []float64
}

// AblationOverlap sweeps the chunked comm/compute-overlap execution
// (overlap off = C=1 blocking, overlap on with C in {2,4,8}) over the
// Fig. 11 Large-model layer, whose inter-node all-to-alls dominate step
// time (the paper reports the a2a share cut ~50.7%): EP=64 across 8
// Frontier nodes (EP=16 across 2 nodes in quick mode). Chunking hides
// dispatch/combine all-to-all time behind the expert GEMMs (FastMoE smart
// scheduling, Megatron Core MoE overlap), so every C >= 2 must beat the
// blocking pipeline in this regime. Single-node EP groups (the Small
// model's EP=8) are deliberately not swept: their exchanges ride the fast
// intra-node links, where per-chunk launch and message latencies outweigh
// the little communication there is to hide.
func AblationOverlap(w io.Writer, opts Options) []AblationOverlapResult {
	m := topology.Frontier()
	type pt struct {
		shape model.Shape
		ep    int
	}
	points := []pt{{model.Large(), 64}}
	if opts.Quick {
		points = []pt{{model.Large(), 16}}
	}
	chunkCounts := opts.chunkCounts()

	var out []AblationOverlapResult
	for _, p := range points {
		cfg := moe.Config{
			NumExperts: p.shape.NumExperts, TopK: p.shape.TopK,
			HModel: p.shape.HModel, HFFN: p.shape.HFFN,
			CapacityFactor: 1.25, BytesPerElem: 2,
		}
		s := p.shape.SeqLen
		if opts.Quick {
			s = 2048
		}
		run := func(pipe string, chunks int) float64 {
			c := simrt.NewCluster(m, p.ep, opts.Seed)
			c.Net.DisableCongestion = true
			opts.applyEngine(c)
			g := c.WorldGroup()
			var d *rbd.Dispatcher
			if pipe == "rbd" {
				d = rbd.NewDispatcher(c, g, cfg)
			}
			ranks, err := c.RunCollect(func(r *simrt.Rank) error {
				rng := tensor.NewRNG(opts.Seed + uint64(r.ID))
				rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
				po := moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, OverlapChunks: chunks}
				switch pipe {
				case "pft":
					moe.PFTForward(r, g, cfg, s, nil, rt, nil, po)
				case "padded":
					moe.PaddedForward(r, g, cfg, s, nil, rt, nil, po)
				case "rbd":
					rbd.Forward(r, d, cfg, s, nil, rt, nil, tensor.NewRNG(opts.Seed^uint64(r.ID)), po)
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			return simrt.MaxClock(ranks)
		}

		res := AblationOverlapResult{Model: p.shape.Name, EP: p.ep, Chunks: chunkCounts}
		for _, chunks := range chunkCounts {
			res.PFTMs = append(res.PFTMs, run("pft", chunks)*1e3)
			res.PaddedMs = append(res.PaddedMs, run("padded", chunks)*1e3)
			res.RBDMs = append(res.RBDMs, run("rbd", chunks)*1e3)
		}
		out = append(out, res)

		header(w, fmt.Sprintf("Ablation: chunked comm/compute overlap, %s layer, EP=%d (Fig. 11 config, ms)", p.shape.Name, p.ep))
		t := newTable("chunks", "PFT", "speedup", "padded", "speedup", "RBD", "speedup")
		speed := func(base, v float64) string { return fmt.Sprintf("%.2fx", base/v) }
		for i, chunks := range chunkCounts {
			label := fmt.Sprintf("C=%d", chunks)
			if chunks == 1 {
				label += " (blocking)"
			}
			t.add(label,
				fmt.Sprintf("%.2f", res.PFTMs[i]), speed(res.PFTMs[0], res.PFTMs[i]),
				fmt.Sprintf("%.2f", res.PaddedMs[i]), speed(res.PaddedMs[0], res.PaddedMs[i]),
				fmt.Sprintf("%.2f", res.RBDMs[i]), speed(res.RBDMs[0], res.RBDMs[i]))
		}
		t.write(w)
		for i, chunks := range chunkCounts {
			if chunks != 4 {
				continue
			}
			RecordMetric("abl_overlap_"+p.shape.Name+"_pft_c4_speedup", res.PFTMs[0]/res.PFTMs[i])
			RecordMetric("abl_overlap_"+p.shape.Name+"_pft_c4_ms", res.PFTMs[i])
			RecordMetric("abl_overlap_"+p.shape.Name+"_padded_c4_speedup", res.PaddedMs[0]/res.PaddedMs[i])
			RecordMetric("abl_overlap_"+p.shape.Name+"_rbd_c4_speedup", res.RBDMs[0]/res.RBDMs[i])
		}
	}
	fmt.Fprintln(w, "  overlap on (C>=2) hides dispatch/combine all-to-alls behind expert GEMMs;")
	fmt.Fprintln(w, "  numeric-mode chunked output is bit-identical to blocking (determinism tests)")
	return out
}

// AblationOverlapBackwardResult records the fwd-only vs fwd+bwd overlap
// sweep for one pipeline: simulated fwd+bwd step time per chunk count.
type AblationOverlapBackwardResult struct {
	Pipeline  string
	EP        int
	Chunks    []int
	FwdOnlyMs []float64 // forward overlapped at C, backward blocking
	FwdBwdMs  []float64 // both passes overlapped at C
}

// AblationOverlapBackward extends abl-overlap to the whole training step
// (the PR-5 tentpole): a full fwd+bwd on the Fig. 11 Large-model layer at
// EP=64 (EP=16 in quick mode), sweeping C with the forward pass always
// overlapped at C but the backward either blocking (fwd-only, what PR 2
// could do) or overlapped at the same C. Piper and the Megatron Core MoE
// overlap report both find the backward half of the step is where most of
// the hideable all-to-all time lives — the fwd+bwd column must therefore
// beat both the blocking baseline (C=1) and the fwd-only column. The
// "rbd" rows run the native hierarchical backward (reversed C2/C1 and
// S2/S1 exchanges), so its backward bytes follow the same per-link-class
// accounting as its forward instead of a mirrored flat estimate.
func AblationOverlapBackward(w io.Writer, opts Options) []AblationOverlapBackwardResult {
	m := topology.Frontier()
	shape := model.Large()
	ep := 64
	s := shape.SeqLen
	if opts.Quick {
		ep = 16
		s = 2048
	}
	cfg := moe.Config{
		NumExperts: shape.NumExperts, TopK: shape.TopK,
		HModel: shape.HModel, HFFN: shape.HFFN,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	chunkCounts := opts.chunkCounts()

	var out []AblationOverlapBackwardResult
	for _, pipe := range []string{"pft", "padded", "rbd"} {
		res := AblationOverlapBackwardResult{Pipeline: pipe, EP: ep, Chunks: chunkCounts}
		for _, chunks := range chunkCounts {
			res.FwdOnlyMs = append(res.FwdOnlyMs, StepClock(m, cfg, ep, s, pipe, chunks, 1, opts.Seed, opts.Engine)*1e3)
			res.FwdBwdMs = append(res.FwdBwdMs, StepClock(m, cfg, ep, s, pipe, chunks, chunks, opts.Seed, opts.Engine)*1e3)
		}
		out = append(out, res)

		header(w, fmt.Sprintf("Ablation: backward-pass overlap, %s fwd+bwd step, %s layer, EP=%d (ms)", pipe, shape.Name, ep))
		t := newTable("chunks", "fwd-only overlap", "speedup", "fwd+bwd overlap", "speedup")
		base := res.FwdBwdMs[0] // C=1 everywhere: the fully blocking step
		for i, chunks := range chunkCounts {
			label := fmt.Sprintf("C=%d", chunks)
			if chunks == 1 {
				label += " (blocking)"
			}
			t.add(label,
				fmt.Sprintf("%.2f", res.FwdOnlyMs[i]), fmt.Sprintf("%.2fx", base/res.FwdOnlyMs[i]),
				fmt.Sprintf("%.2f", res.FwdBwdMs[i]), fmt.Sprintf("%.2fx", base/res.FwdBwdMs[i]))
		}
		t.write(w)
		for i, chunks := range chunkCounts {
			if chunks == 4 {
				RecordMetric("abl_overlap_bwd_"+pipe+"_c4_speedup", base/res.FwdBwdMs[i])
				RecordMetric("abl_overlap_bwd_"+pipe+"_c4_fwdonly_speedup", base/res.FwdOnlyMs[i])
				RecordMetric("abl_overlap_bwd_"+pipe+"_c4_ms", res.FwdBwdMs[i])
			}
		}
	}
	fmt.Fprintln(w, "  fwd-only overlap = PR-2 state (backward fully blocking); fwd+bwd chunks the")
	fmt.Fprintln(w, "  mirrored backward all-to-alls too and defers the dW GEMMs to hide the tail;")
	fmt.Fprintln(w, "  chunked gradients are bit-identical to blocking (determinism tests)")
	return out
}

// StepClock measures one timing-only (symbolic) MoE fwd+bwd step of the
// given transport ("pft", "padded", or "rbd") on a fresh world-rank
// cluster, with independent forward/backward overlap chunk counts, and returns
// the simulated wall-clock of the slowest rank. It is the shared harness
// behind AblationOverlapBackward and xmoe-train's "timing at scale"
// report, so the two always measure the same regime. engine names the
// cost engine per NewEngine ("" or "analytic" for the fast path).
func StepClock(m *topology.Machine, cfg moe.Config, world, s int, transport string,
	fwdChunks, bwdChunks int, seed uint64, engine string) float64 {

	c := simrt.NewCluster(m, world, seed)
	c.Net.DisableCongestion = true
	Options{Engine: engine}.applyEngine(c)
	g := c.WorldGroup()
	var d *rbd.Dispatcher
	if transport == "rbd" {
		d = rbd.NewDispatcher(c, g, cfg)
	}
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		fwdOpts := moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight,
			SaveForBackward: true, OverlapChunks: fwdChunks}
		bwdOpts := moe.PipelineOpts{OverlapChunks: bwdChunks}
		switch transport {
		case "pft":
			res := moe.PFTForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PFTBackward(r, g, cfg, res.State, nil, nil, bwdOpts)
		case "padded":
			fwdOpts.DropPolicy = moe.DropNegativeThenPosition
			res := moe.PaddedForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PaddedBackward(r, g, cfg, res.PaddedState, nil, nil, bwdOpts)
		case "rbd":
			res := rbd.Forward(r, d, cfg, s, nil, rt, nil, tensor.NewRNG(seed^uint64(r.ID)), fwdOpts)
			rbd.Backward(r, d, cfg, res.State, nil, nil, bwdOpts)
		default:
			panic(fmt.Sprintf("bench: unknown transport %q", transport))
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return simrt.MaxClock(ranks)
}

// rbdDispatchTime measures mean dispatch-side communication time per rank
// for one EP group, with or without RBD.
func rbdDispatchTime(m *topology.Machine, cfg moe.Config, ep, sTokens int, seed uint64, useRBD bool) float64 {
	c := simrt.NewCluster(m, ep, seed)
	c.Net.DisableCongestion = true
	g := c.WorldGroup()
	var d *rbd.Dispatcher
	if useRBD {
		d = rbd.NewDispatcher(c, g, cfg)
	}
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, sTokens, cfg.NumExperts, cfg.TopK, 0)
		pft := moe.BuildPFT(rt, cfg.NumExperts, 0, moe.DropByCapacityWeight)
		if useRBD {
			st, _ := d.Dispatch(r, pft, nil, tensor.NewRNG(seed^uint64(r.ID)), rbd.Opts{})
			d.Combine(r, st, nil, sTokens, rbd.Opts{})
		} else {
			moe.PFTForward(r, g, cfg, sTokens, nil, rt, nil, moe.PipelineOpts{
				DropPolicy: moe.DropByCapacityWeight,
			})
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	var total float64
	for _, rk := range ranks {
		if useRBD {
			total += rk.Trace.Total(rbd.StageS1A2A) + rk.Trace.Total(rbd.StageS2A2A)
		} else {
			total += rk.Trace.Total(moe.StageDispatchA2A)
		}
	}
	return total / float64(len(ranks))
}
