// Package bench is the experiment harness of the reproduction: one entry
// point per table and figure of the paper's evaluation (§5 and the
// appendices), each regenerating the artifact's rows/series from the
// simulated systems and printing them next to the paper's reported
// values. The cmd/xmoe-bench binary and the repository-root benchmarks
// drive these entry points.
package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Options configures experiment execution.
type Options struct {
	// Seed drives all stochastic components (routing, congestion).
	Seed uint64
	// Quick reduces iteration counts and sweep ranges for use inside
	// unit tests and testing.B loops; full fidelity runs leave it false.
	Quick bool
	// Chunks overrides the chunk counts the overlap ablations sweep
	// (default {1, 2, 4, 8}); entries must pass PipelineOpts.Check.
	Chunks []int
	// Engine selects the collective cost engine the simulated clusters
	// run against: "analytic" (or empty, the memoized fast path),
	// "event"/"event:rail" (link-level transfers over the 2-level
	// node/rail graph), or "event:noc" (NoC-style hierarchy). See
	// NewEngine for the full vocabulary.
	Engine string
}

// DefaultOptions returns the seed used for all published outputs.
func DefaultOptions() Options { return Options{Seed: 42} }

// chunkCounts returns the overlap sweep's chunk counts. The sweep tables
// and every recorded speedup are relative to the C=1 blocking baseline,
// so 1 is always included (first), and duplicates or non-positive
// entries are dropped — a user-supplied `-chunks 4,8` sweeps {1, 4, 8}.
func (o Options) chunkCounts() []int {
	if len(o.Chunks) == 0 {
		return []int{1, 2, 4, 8}
	}
	out := []int{1}
	seen := map[int]bool{1: true}
	for _, c := range o.Chunks {
		if c > 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Experiment metrics registry: experiments report headline simulated
// quantities (throughput, layer times) here so machine-readable harnesses
// (cmd/xmoe-bench -json) can export them alongside host-side ns/op and
// allocs/op without re-parsing the printed tables.
var (
	metricsMu sync.Mutex
	metrics   = map[string]float64{}
)

// RecordMetric stores a named scalar for the current experiment run,
// overwriting any previous value.
func RecordMetric(name string, v float64) {
	metricsMu.Lock()
	metrics[name] = v
	metricsMu.Unlock()
}

// DrainMetrics returns all metrics recorded since the last drain and
// clears the registry.
func DrainMetrics() map[string]float64 {
	metricsMu.Lock()
	out := metrics
	metrics = map[string]float64{}
	metricsMu.Unlock()
	return out
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// table is a minimal fixed-width table printer.
type table struct {
	cols   []string
	rows   [][]string
	widths []int
}

func newTable(cols ...string) *table {
	t := &table{cols: cols, widths: make([]int, len(cols))}
	for i, c := range cols {
		t.widths[i] = len(c)
	}
	return t
}

func (t *table) add(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) {
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", t.widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.cols)
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", t.widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// gb formats bytes as GiB.
func gb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }

// ms formats seconds as milliseconds.
func ms(s float64) string { return fmt.Sprintf("%.2f", s*1e3) }
