package bench

import (
	"fmt"
	"io"

	"xmoe/internal/baselines"
	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/parallel"
	"xmoe/internal/topology"
)

// ZeROPoint is one abl-zero measurement: a (transport, EP, stage,
// bucket) cell of the gradient-sync ablation.
type ZeROPoint struct {
	Transport string
	EP        int
	Stage     int
	BucketMB  int64 // 0 = one bucket per layer family
	// BlockingSec and OverlapSec are iteration times with the serial
	// tail sync vs the bucketed overlapped sync.
	BlockingSec, OverlapSec float64
	// Speedup is BlockingSec / OverlapSec.
	Speedup float64
	// StatesGB is the per-rank model-state footprint at this stage.
	StatesGB float64
}

// AblationZeRO measures the tentpole's two effects on the Large model:
// step time of bucketed overlapped gradient sync vs the blocking tail
// (per ZeRO stage, bucket size, transport, and EP), and the per-rank
// model-state memory each ZeRO stage buys. World = 2*EP so every expert
// has a data-parallel replica to synchronise with (expert-DP 2).
func AblationZeRO(w io.Writer, opts Options) []ZeROPoint {
	m := topology.Frontier()
	shape := model.Large()
	eps := []int{16, 64}
	stages := []int{0, 1, 2}
	bucketsMB := []int64{0, 4, 16}
	if opts.Quick {
		eps = []int{16}
		stages = []int{0, 2}
		bucketsMB = []int64{0, 16}
	}
	// The X-MoE system runs the hierarchical RBD transport fwd+bwd (it was
	// mislabeled "pft" while the backward was priced as mirrored-flat);
	// the genuine flat PFT row is X-MoE with RBD switched off.
	transports := []struct {
		name string
		sys  baselines.System
		rbd  bool
	}{
		{"rbd", baselines.XMoE, true},
		{"pft", baselines.XMoE, false},
		{"padded", baselines.DeepSpeedMoE, false},
	}

	var out []ZeROPoint
	header(w, "abl-zero: gradient sync overlap and ZeRO sharding, Large model, expert-DP 2")
	t := newTable("transport", "EP", "world", "zero", "bucket", "blocking ms", "overlap ms", "speedup", "states GiB")
	for _, tr := range transports {
		cfg := baselines.For(tr.sys, m)
		cfg.RBD = tr.rbd
		for _, ep := range eps {
			world := 2 * ep
			plan := parallel.Plan{World: world, TP: 1, EP: ep,
				Placement: cfg.Placement, SSMB: cfg.SSMB}
			for _, stage := range stages {
				plan.ZeROStage = stage
				spec := baselines.RunSpec{
					Shape: shape, Machine: m, World: world, Plan: plan,
					// GlobalBatch = dataDP keeps microSteps at 1: the cell
					// isolates one fwd+bwd step's sync exposure.
					MicroBatch: 1, GlobalBatch: world, Seed: opts.Seed,
					SkipMemCheck: true,
				}
				spec.BlockingGradSync = true
				blocking := baselines.SimulateStep(cfg, spec)
				if blocking.Err != nil {
					fmt.Fprintf(w, "  %s EP=%d zero=%d: %v\n", tr.name, ep, stage, blocking.Err)
					continue
				}
				setup := cfg.MemSetup(plan, 1)
				states := memmodel.ModelStatesBreakdown(shape, setup).Total()
				for _, mb := range bucketsMB {
					spec.BlockingGradSync = false
					spec.BucketBytes = mb << 20
					overlap := baselines.SimulateStep(cfg, spec)
					if overlap.Err != nil {
						fmt.Fprintf(w, "  %s EP=%d zero=%d bucket=%dMB: %v\n", tr.name, ep, stage, mb, overlap.Err)
						continue
					}
					p := ZeROPoint{
						Transport: tr.name, EP: ep, Stage: stage, BucketMB: mb,
						BlockingSec: blocking.IterSeconds, OverlapSec: overlap.IterSeconds,
						Speedup:  blocking.IterSeconds / overlap.IterSeconds,
						StatesGB: float64(states) / (1 << 30),
					}
					out = append(out, p)
					bucketStr := "whole-layer"
					if mb > 0 {
						bucketStr = fmt.Sprintf("%dMB", mb)
					}
					t.add(tr.name, fmt.Sprint(ep), fmt.Sprint(world), fmt.Sprint(stage), bucketStr,
						ms(p.BlockingSec), ms(p.OverlapSec),
						fmt.Sprintf("%.3fx", p.Speedup), fmt.Sprintf("%.2f", p.StatesGB))
				}
			}
		}
	}
	t.write(w)
	fmt.Fprintln(w, "  blocking = serial gradient all-reduce/reduce-scatter tail after the last")
	fmt.Fprintln(w, "  micro-step; overlap = per-layer bucketed async sync issued as each layer's")
	fmt.Fprintln(w, "  dW completes, hidden under the remaining backward compute")

	// Headline metrics: the overlap win at the largest swept EP (stage 2,
	// whole-layer buckets) per transport, and the stage-2 memory saving.
	maxEP := eps[len(eps)-1]
	var stage0GB float64
	for _, tr := range transports {
		for _, p := range out {
			if p.Transport == tr.name && p.EP == maxEP && p.Stage == 2 && p.BucketMB == 0 {
				RecordMetric(fmt.Sprintf("abl_zero_%s_ep%d_overlap_speedup", tr.name, maxEP), p.Speedup)
			}
			if p.Transport == tr.name && p.EP == maxEP && p.Stage == 0 && p.BucketMB == 0 {
				stage0GB = p.StatesGB
			}
			if p.Transport == tr.name && p.EP == maxEP && p.Stage == 2 && p.BucketMB == 0 && stage0GB > 0 {
				RecordMetric(fmt.Sprintf("abl_zero_%s_ep%d_stage2_states_saving_gb", tr.name, maxEP),
					stage0GB-p.StatesGB)
			}
		}
	}
	return out
}
