package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Record is one experiment's machine-readable benchmark result, the
// append-only unit of the repository's performance trajectory
// (BENCH_results.json).
type Record struct {
	Experiment  string `json:"experiment"`
	NsPerOp     int64  `json:"ns_op"`
	AllocsPerOp int64  `json:"allocs_op"`
	BytesPerOp  int64  `json:"bytes_op"`
	// Simulated holds the experiment's headline simulated metrics
	// (e.g. TFLOPs/GPU, layer forward ms), keyed by metric name.
	Simulated map[string]float64 `json:"simulated,omitempty"`
	// Engine is the cost engine the simulated metrics are attributable
	// to: "analytic" or an "event:*" topology-graph engine.
	Engine    string `json:"engine"`
	Quick     bool   `json:"quick"`
	Seed      uint64 `json:"seed"`
	Timestamp string `json:"timestamp"`
}

// AppendResults merges records into the JSON array at path: existing
// entries are preserved byte-for-byte as raw JSON (fields this version
// of the schema does not know about survive the rewrite), new records
// are appended, and the whole array is rewritten so the file stays valid
// JSON. A file that is not a JSON array is never silently erased — it is
// moved aside to path+".corrupt" and a fresh history starts.
func AppendResults(path string, records []Record) error {
	var existing []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if uerr := json.Unmarshal(data, &existing); uerr != nil {
			backup := path + ".corrupt"
			if rerr := os.Rename(path, backup); rerr == nil {
				fmt.Fprintf(os.Stderr, "warning: %s is not valid JSON (%v); moved it to %s and starting fresh\n",
					path, uerr, backup)
			} else {
				fmt.Fprintf(os.Stderr, "warning: %s is not valid JSON (%v) and could not be moved aside (%v); it will be overwritten\n",
					path, uerr, rerr)
			}
			existing = nil
		}
	}
	for _, r := range records {
		raw, err := json.Marshal(r)
		if err != nil {
			return err
		}
		existing = append(existing, raw)
	}
	data, err := json.MarshalIndent(existing, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResults decodes the record array at path (missing file = empty
// history).
func ReadResults(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Record
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
