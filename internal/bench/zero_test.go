package bench

import (
	"io"
	"testing"
)

// TestAblationZeROOverlapWins pins the tentpole's acceptance criterion at
// the ablation level: for both transports, the bucketed overlapped
// gradient sync beats the blocking tail, and ZeRO-2 shrinks the per-rank
// model states.
func TestAblationZeROOverlapWins(t *testing.T) {
	points := AblationZeRO(io.Discard, quickOpts())
	if len(points) == 0 {
		t.Fatal("abl-zero produced no points")
	}
	stage2 := map[string]bool{}
	statesByStage := map[string]map[int]float64{}
	for _, p := range points {
		if p.BlockingSec <= 0 || p.OverlapSec <= 0 {
			t.Fatalf("%s EP=%d zero=%d: non-positive iteration time", p.Transport, p.EP, p.Stage)
		}
		if p.Speedup <= 1 {
			t.Fatalf("%s EP=%d zero=%d bucket=%dMB: overlap speedup %.3fx, want > 1x",
				p.Transport, p.EP, p.Stage, p.BucketMB, p.Speedup)
		}
		if p.Stage == 2 {
			stage2[p.Transport] = true
		}
		if statesByStage[p.Transport] == nil {
			statesByStage[p.Transport] = map[int]float64{}
		}
		statesByStage[p.Transport][p.Stage] = p.StatesGB
	}
	for _, tr := range []string{"pft", "padded"} {
		if !stage2[tr] {
			t.Fatalf("no stage-2 point for transport %s", tr)
		}
		if statesByStage[tr][2] >= statesByStage[tr][0] {
			t.Fatalf("%s: ZeRO-2 states %.2f GiB not below stage 0's %.2f GiB",
				tr, statesByStage[tr][2], statesByStage[tr][0])
		}
	}
}
