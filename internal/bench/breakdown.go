package bench

import (
	"fmt"
	"io"

	"xmoe/internal/baselines"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
)

// Figure11Result holds per-stage forward times (seconds) for one model
// under both systems.
type Figure11Result struct {
	Model string
	DSMoE map[string]float64
	XMoE  map[string]float64
}

// Figure11LayerBreakdown regenerates Fig. 11: the forward MoE-layer time
// breakdown of DeepSpeed-MoE vs X-MoE (RBD disabled, isolating PFT) for
// the Small model (EP=8) and the Large model (EP=64) on 256 GPUs.
func Figure11LayerBreakdown(w io.Writer, opts Options) []Figure11Result {
	m := topology.Frontier()
	type pt struct {
		shape model.Shape
		ep    int
	}
	points := []pt{{model.Small(), 8}, {model.Large(), 64}}
	if opts.Quick {
		points = points[:1]
	}

	var out []Figure11Result
	for _, p := range points {
		res := Figure11Result{Model: p.shape.Name}
		for _, sys := range []baselines.System{baselines.DeepSpeedMoE, baselines.XMoE} {
			cfg := baselines.For(sys, m)
			cfg.RBD = false // isolate PFT per the paper's methodology
			cfg.SSMB = false
			plan := parallel.Plan{World: 256, TP: 1, EP: p.ep, Placement: cfg.Placement, ZeROStage: 1}
			r := baselines.SimulateStep(cfg, baselines.RunSpec{
				Shape: p.shape, Machine: m, World: 256, Plan: plan,
				MicroBatch: 1, GlobalBatch: 1024, Seed: opts.Seed,
				// The paper measures the layer in isolation; full-model
				// residency is irrelevant here.
				SkipMemCheck: true,
			})
			if sys == baselines.XMoE {
				res.XMoE = r.LayerForward
			} else {
				res.DSMoE = r.LayerForward
			}
		}
		out = append(out, res)

		header(w, fmt.Sprintf("Figure 11: forward MoE layer breakdown, %s model (ms)", p.shape.Name))
		t := newTable("stage", "DS-MoE", "X-MoE", "speedup")
		stages := []string{moe.StageGate, moe.StageDispatch, moe.StageDispatchA2A,
			moe.StageExperts, moe.StageCombineA2A, moe.StageCombine, moe.StageOthers}
		var totalDS, totalX float64
		for _, st := range stages {
			d, x := res.DSMoE[st], res.XMoE[st]
			totalDS += d
			totalX += x
			speed := "-"
			if x > 0 {
				speed = fmt.Sprintf("%.1fx", d/x)
			}
			t.add(st, ms(d), ms(x), speed)
		}
		t.add("TOTAL", ms(totalDS), ms(totalX), fmt.Sprintf("%.1fx", totalDS/totalX))
		t.write(w)
		RecordMetric("fig11_"+p.shape.Name+"_xmoe_layer_fwd_ms", totalX*1e3)
	}
	fmt.Fprintln(w, "  paper (Small): gate 5.7x, dispatch 35.7x, combine 8.1x faster; experts slightly")
	fmt.Fprintln(w, "  slower under sequential GEMM; overall 62.3% lower layer time. (Large): a2a cut ~50.7%")
	return out
}

// Figure12Result holds the dispatch-phase breakdown with and without RBD.
type Figure12Result struct {
	Without            map[string]float64 // PFT instantiation + inter-node a2a
	With               map[string]float64 // S1/S2 stages + reconstruction
	Speedup            float64
	MeasuredRedundancy float64
}

// Figure12RBDBreakdown regenerates Fig. 12: dispatch time with and
// without RBD for one Large-model MoE layer on 32 GPUs with EP=32
// (the paper measures 54.8% redundancy in this setting).
func Figure12RBDBreakdown(w io.Writer, opts Options) Figure12Result {
	m := topology.Frontier()
	shape := model.Large()
	cfg := moe.Config{
		NumExperts:     shape.NumExperts,
		TopK:           shape.TopK,
		HModel:         shape.HModel,
		HFFN:           shape.HFFN,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	sTokens := shape.SeqLen
	if opts.Quick {
		sTokens = 512
	}

	run := func(useRBD bool) (map[string]float64, float64) {
		c := simrt.NewCluster(m, 32, opts.Seed)
		c.Net.DisableCongestion = true
		g := c.WorldGroup()
		var d *rbd.Dispatcher
		if useRBD {
			d = rbd.NewDispatcher(c, g, cfg)
		}
		var red float64
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(opts.Seed + uint64(r.ID))
			rt := moe.SyntheticRouting(rng, sTokens, cfg.NumExperts, cfg.TopK, 0)
			if r.ID == 0 {
				a := rbd.AnalyzeRedundancy(rt, func(e int) int {
					return m.NodeOf(g.Ranks()[e/(cfg.NumExperts/g.Size())])
				}, m.NodeOf(r.ID))
				red = a.Rate()
			}
			pft := moe.BuildPFT(rt, cfg.NumExperts, cfg.Capacity(sTokens), moe.DropByCapacityWeight)
			if useRBD {
				st, _ := d.Dispatch(r, pft, nil, tensor.NewRNG(opts.Seed^uint64(r.ID)), rbd.Opts{})
				d.Combine(r, st, nil, sTokens, rbd.Opts{})
			} else {
				moe.PFTForward(r, g, cfg, sTokens, nil, rt, nil, moe.PipelineOpts{
					DropPolicy: moe.DropByCapacityWeight,
				})
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		recs := make([]*trace.Recorder, len(ranks))
		for i, rk := range ranks {
			recs[i] = rk.Trace
		}
		return trace.Merge(recs, true), red
	}

	withTrace, red := run(true)
	withoutTrace, _ := run(false)

	res := Figure12Result{
		Without:            withoutTrace,
		With:               withTrace,
		MeasuredRedundancy: red,
	}
	// Dispatch-side total: instantiation + transport (exclude gate,
	// experts, combine-side stages).
	withoutDispatch := withoutTrace[moe.StageDispatch] + withoutTrace[moe.StageDispatchA2A]
	withDispatch := withTrace[moe.StageDispatch] + withTrace[rbd.StageS1Inst] +
		withTrace[rbd.StageS1A2A] + withTrace[rbd.StageS2Inst] +
		withTrace[rbd.StageS2A2A] + withTrace[rbd.StageReconstruct]
	res.Speedup = withoutDispatch / withDispatch

	header(w, "Figure 12: dispatch breakdown w/ and w/o RBD, Large layer, 32 GPUs, EP=32 (ms)")
	t := newTable("stage", "w/o RBD", "w/ RBD")
	t.add("buffer instantiation", ms(withoutTrace[moe.StageDispatch]), ms(withTrace[moe.StageDispatch]+withTrace[rbd.StageS1Inst]))
	t.add("inter-node a2a", ms(withoutTrace[moe.StageDispatchA2A]), ms(withTrace[rbd.StageS1A2A]))
	t.add("S2 instantiation", "-", ms(withTrace[rbd.StageS2Inst]))
	t.add("S2 intra-node a2a", "-", ms(withTrace[rbd.StageS2A2A]))
	t.add("expert input reconstruction", "-", ms(withTrace[rbd.StageReconstruct]))
	t.add("DISPATCH TOTAL", ms(withoutDispatch), ms(withDispatch))
	t.write(w)
	fmt.Fprintf(w, "  measured redundancy %.1f%% (paper 54.8%%); dispatch speedup %.2fx (paper 1.55x)\n",
		res.MeasuredRedundancy*100, res.Speedup)
	RecordMetric("fig12_rbd_dispatch_speedup", res.Speedup)
	return res
}
