package bench

import (
	"fmt"
	"io"
	"sort"

	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

// Figure18Result characterises all-to-all latency at one GPU count.
type Figure18Result struct {
	GPUs        int
	MeanSeconds float64
	P50, P99    float64
	Outliers    int // per-collective times > 500 ms
	Runs        int
}

// Figure18AlltoAllScaling regenerates Appendix D (Figs. 18-19): the
// all-to-all collective time distribution over many runs while scaling
// from 8 to 1024 GPUs. Three regimes should appear: rising latency up to
// 32 GPUs, a stable region to 256 (one rack), and a sharp climb with
// frequent >500 ms outliers at 512 and 1024 GPUs.
func Figure18AlltoAllScaling(w io.Writer, opts Options) []Figure18Result {
	m := topology.Frontier()
	gpuCounts := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	runs := 1000
	if opts.Quick {
		gpuCounts = []int{8, 64, 512}
		runs = 120
	}
	// MoE-training-like payload: ~32 MiB per rank spread over the group.
	const perRankBytes = 32 << 20

	var out []Figure18Result
	header(w, "Figures 18/19: all-to-all collective time vs scale (Frontier)")
	t := newTable("GPUs", "mean (ms)", "p50 (ms)", "p99 (ms)", ">500ms outliers")
	for _, g := range gpuCounts {
		net := netsim.New(m, opts.Seed+uint64(g))
		net.JobRanks = g
		ranks := make([]int, g)
		for i := range ranks {
			ranks[i] = i
		}
		per := int64(perRankBytes / g)
		send := make([][]int64, g)
		for i := range send {
			send[i] = make([]int64, g)
			for j := range send[i] {
				if i != j {
					send[i][j] = per
				}
			}
		}
		times := make([]float64, runs)
		outliers := 0
		var sum float64
		for r := 0; r < runs; r++ {
			c := net.AlltoAllV(ranks, send)
			times[r] = c.Seconds
			sum += c.Seconds
			if c.Seconds > 0.5 {
				outliers++
			}
		}
		sort.Float64s(times)
		res := Figure18Result{
			GPUs:        g,
			MeanSeconds: sum / float64(runs),
			P50:         times[runs/2],
			P99:         times[runs*99/100],
			Outliers:    outliers,
			Runs:        runs,
		}
		out = append(out, res)
		t.add(fmt.Sprint(g), ms(res.MeanSeconds), ms(res.P50), ms(res.P99),
			fmt.Sprintf("%d/%d", res.Outliers, res.Runs))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: latency rises to 32 GPUs, stays stable to 256 (one rack), then climbs")
	fmt.Fprintln(w, "  sharply with frequent >500 ms outliers at 512/1024 GPUs -> EP capped at 256")
	return out
}
