package bench

// Engine selection for the experiment harness: every simulated cluster an
// experiment builds can run its collectives against either the memoized
// analytic model (netsim, the fast path) or the discrete-event engine
// (devent, link-level transfers over an explicit topology graph). The two
// are cross-validated on contention-free flat topologies (see
// internal/devent's tests); on congested hierarchical graphs the event
// engine prices trunk contention the closed forms cannot see, and
// AblationEngineDelta reports that gap directly.

import (
	"fmt"
	"io"
	"strings"

	"xmoe/internal/devent"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/netsim"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// EngineSpecs lists the accepted Options.Engine values, for flag help.
const EngineSpecs = "analytic, event, event:flat, event:rail, event:noc"

// NewEngine builds the cost engine named by spec for a world-sized job on
// machine m. "analytic" (or empty) returns nil: callers leave
// Cluster.Engine unset and the cluster falls through to its analytic
// Network. "event" is an alias for "event:rail", the 2-level node/rail
// graph matching the machine's NIC and spine structure.
func NewEngine(m *topology.Machine, world int, spec string) (netsim.CostEngine, error) {
	switch spec {
	case "", "analytic":
		return nil, nil
	case "event", "event:rail":
		return devent.New(topology.RailGraph(m, world, 0)), nil
	case "event:noc":
		return devent.New(topology.NoCGraph(m, world, 0)), nil
	case "event:flat":
		return devent.New(topology.FlatGraph(m, world)), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q (want one of: %s)", spec, EngineSpecs)
}

// applyEngine installs the Options-selected engine on a freshly built
// cluster. Experiments build many short-lived clusters, so this panics on
// a bad spec rather than threading errors through every sweep;
// cmd/xmoe-bench validates its -engine flag with NewEngine up front.
func (o Options) applyEngine(c *simrt.Cluster) {
	eng, err := NewEngine(c.Machine, c.NumRanks, o.Engine)
	if err != nil {
		panic(err)
	}
	if eng != nil {
		c.Engine = eng
	}
}

// AblationEngineDeltaResult reports, per transport pipeline, the simulated
// Fig. 11 layer time under the analytic model and the event engine on the
// congested 2-level rail graph, plus the relative congestion delta.
type AblationEngineDeltaResult struct {
	Model      string
	EP         int
	Pipelines  []string
	AnalyticMs []float64
	EventMs    []float64
	DeltaPct   []float64 // (event - analytic) / analytic, percent
}

// AblationEngineDelta cross-validates the two cost engines on the
// Fig. 11 Large-model layer at EP=64 (EP=16 in quick mode): the same
// blocking forward pass is priced by the analytic closed forms and by
// link-level event simulation over the 2-level node/rail graph. The
// analytic model serializes each collective against private per-class
// bandwidth, so on a congested hierarchy — eight ranks funneling through
// one node NIC — the event engine's fair-shared trunks must report a
// strictly slower layer: the delta column is the congestion the fast path
// cannot see, and it must be nonzero on every pipeline.
func AblationEngineDelta(w io.Writer, opts Options) AblationEngineDeltaResult {
	m := topology.Frontier()
	shape := model.Large()
	ep := 64
	s := shape.SeqLen
	if opts.Quick {
		ep = 16
		s = 2048
	}
	cfg := moe.Config{
		NumExperts: shape.NumExperts, TopK: shape.TopK,
		HModel: shape.HModel, HFFN: shape.HFFN,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}

	layer := func(pipe, engine string) float64 {
		c := simrt.NewCluster(m, ep, opts.Seed)
		c.Net.DisableCongestion = true
		Options{Engine: engine}.applyEngine(c)
		g := c.WorldGroup()
		var d *rbd.Dispatcher
		if pipe == "rbd" {
			d = rbd.NewDispatcher(c, g, cfg)
		}
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(opts.Seed + uint64(r.ID))
			rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
			po := moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, OverlapChunks: 1}
			switch pipe {
			case "pft":
				moe.PFTForward(r, g, cfg, s, nil, rt, nil, po)
			case "padded":
				moe.PaddedForward(r, g, cfg, s, nil, rt, nil, po)
			case "rbd":
				rbd.Forward(r, d, cfg, s, nil, rt, nil, tensor.NewRNG(opts.Seed^uint64(r.ID)), po)
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		return simrt.MaxClock(ranks)
	}

	res := AblationEngineDeltaResult{
		Model: shape.Name, EP: ep,
		Pipelines: []string{"pft", "padded", "rbd"},
	}
	for _, pipe := range res.Pipelines {
		an := layer(pipe, "analytic") * 1e3
		ev := layer(pipe, "event") * 1e3
		res.AnalyticMs = append(res.AnalyticMs, an)
		res.EventMs = append(res.EventMs, ev)
		res.DeltaPct = append(res.DeltaPct, (ev-an)/an*100)
	}

	header(w, fmt.Sprintf("Ablation: analytic vs event engine, %s layer, EP=%d (blocking fwd, ms)", shape.Name, ep))
	t := newTable("pipeline", "analytic (ms)", "event:rail (ms)", "congestion delta")
	for i, pipe := range res.Pipelines {
		t.add(strings.ToUpper(pipe),
			fmt.Sprintf("%.2f", res.AnalyticMs[i]),
			fmt.Sprintf("%.2f", res.EventMs[i]),
			fmt.Sprintf("%+.1f%%", res.DeltaPct[i]))
		RecordMetric("abl_engine_delta_"+pipe+"_analytic_ms", res.AnalyticMs[i])
		RecordMetric("abl_engine_delta_"+pipe+"_event_ms", res.EventMs[i])
		RecordMetric("abl_engine_delta_"+pipe+"_pct", res.DeltaPct[i])
	}
	t.write(w)
	fmt.Fprintln(w, "  event:rail prices fair-shared NIC/spine trunks the analytic closed forms")
	fmt.Fprintln(w, "  serialize away; flat contention-free graphs agree to 1e-12 s (devent tests)")
	return res
}
