package bench

import (
	"fmt"
	"io"

	"xmoe/internal/baselines"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// syntheticRoutingFor builds a uniform synthetic routing (the Fig. 4
// closed form assumes uniform top-k).
func syntheticRoutingFor(seed uint64, s, e, k int) moe.Routing {
	return moe.SyntheticRouting(tensor.NewRNG(seed), s, e, k, 0)
}

// Figure9Cell is one (model, system) measurement of Fig. 9.
type Figure9Cell struct {
	Model  string
	System string
	OOM    bool
	TFLOPs float64
	AggPF  float64
	Paper  float64 // paper TFLOPs/GPU; 0 = paper reports OOM
	// LegacyTFLOPs re-prices the winning configuration under the pre-fix
	// backward estimate (RunSpec.LegacyBackward) for delta reporting.
	LegacyTFLOPs float64
}

// Figure9MainResults regenerates Fig. 9: trainability and throughput of
// Small/Medium/Large on 256 GPUs and Super on 1024 GPUs across the four
// systems. Quick mode restricts to the Small model.
func Figure9MainResults(w io.Writer, opts Options) []Figure9Cell {
	m := topology.Frontier()
	type point struct {
		shape model.Shape
		world int
		paper map[baselines.System]float64 // 0 => OOM in the paper
	}
	points := []point{
		{model.Small(), 256, map[baselines.System]float64{
			baselines.DeepSpeedMoE: 20.4, baselines.DeepSpeedTED: 20.4,
			baselines.Tutel: 33.0, baselines.XMoE: 44.0}},
		{model.Medium(), 256, map[baselines.System]float64{
			baselines.DeepSpeedTED: 4.7, baselines.Tutel: 17.0, baselines.XMoE: 24.2}},
		{model.Large(), 256, map[baselines.System]float64{baselines.XMoE: 24.1}},
		{model.Super(), 1024, map[baselines.System]float64{baselines.XMoE: 10.2}},
	}
	if opts.Quick {
		points = points[:1]
	}

	var cells []Figure9Cell
	header(w, "Figure 9: trainability and throughput (TFLOPs/GPU)")
	t := newTable("model", "system", "measured", "paper", "agg PFLOPs", "legacy-bwd Δ")
	var deltaSum float64
	var deltaN int
	for _, p := range points {
		batch := 1024
		for _, sys := range baselines.Systems() {
			cfg := baselines.For(sys, m)
			sw := baselines.Sweep(cfg, p.shape, m, p.world, batch, opts.Seed, true)
			cell := Figure9Cell{Model: p.shape.Name, System: cfg.Name, Paper: p.paper[sys]}
			paperStr := "OOM"
			if cell.Paper > 0 {
				paperStr = fmt.Sprintf("%.1f", cell.Paper)
			}
			if sw.OOM {
				cell.OOM = true
				t.add(p.shape.Name, cfg.Name, "OOM", paperStr, "-", "-")
			} else {
				cell.TFLOPs = sw.Best.TFLOPsPerGPU
				cell.AggPF = sw.Best.AggPFLOPs
				// Re-price the winning configuration under the pre-fix
				// backward estimate (2x compute + 1x comm scaled from the
				// forward trace) to report what the fake backward was
				// mis-estimating.
				legacy := baselines.SimulateStep(cfg, baselines.RunSpec{
					Shape: p.shape, Machine: m, World: p.world, Plan: sw.Plan,
					MicroBatch: sw.MicroBatch, GlobalBatch: batch, Seed: opts.Seed,
					Congestion: true, LegacyBackward: true,
				})
				deltaStr := "-"
				if legacy.Err == nil && !legacy.OOM && legacy.TFLOPsPerGPU > 0 {
					cell.LegacyTFLOPs = legacy.TFLOPsPerGPU
					d := (legacy.TFLOPsPerGPU - cell.TFLOPs) / cell.TFLOPs * 100
					deltaStr = fmt.Sprintf("%+.1f%%", d)
					deltaSum += d
					deltaN++
				}
				t.add(p.shape.Name, cfg.Name,
					fmt.Sprintf("%.1f", cell.TFLOPs), paperStr,
					fmt.Sprintf("%.2f", cell.AggPF), deltaStr)
			}
			cells = append(cells, cell)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "  legacy-bwd Δ: throughput shift if the backward were still the forward-trace")
	fmt.Fprintln(w, "  estimate instead of the simulated backward with overlapped gradient sync")
	var sum float64
	var n int
	for _, c := range cells {
		if !c.OOM && c.TFLOPs > 0 {
			sum += c.TFLOPs
			n++
		}
	}
	if n > 0 {
		RecordMetric("fig9_mean_tflops_per_gpu", sum/float64(n))
	}
	if deltaN > 0 {
		RecordMetric("fig9_mean_legacy_backward_delta_pct", deltaSum/float64(deltaN))
	}
	return cells
}

// ScalingPoint is one GPU-count measurement.
type ScalingPoint struct {
	GPUs           int
	XMoE, Tutel    float64 // TFLOPs (weak) or iteration seconds (strong)
	TutelOOM       bool
	PaperX, PaperT float64
}

// Figure10aWeakScaling regenerates Fig. 10(a): the Small model from 16 to
// 256 GPUs with the global batch scaled proportionally (256 -> 4096
// sequences), EP=8, scaling out via ZeRO-DP.
func Figure10aWeakScaling(w io.Writer, opts Options) []ScalingPoint {
	m := topology.Frontier()
	shape := model.Small()
	gpus := []int{16, 32, 64, 128, 256}
	paperX := []float64{48.26, 47.60, 45.85, 45.68, 44.48}
	paperT := []float64{40.46, 40.55, 38.53, 37.74, 37.46}
	if opts.Quick {
		gpus, paperX, paperT = gpus[:2], paperX[:2], paperT[:2]
	}

	var out []ScalingPoint
	header(w, "Figure 10a: weak scaling, Small model, EP=8 (TFLOPs/GPU)")
	t := newTable("GPUs", "batch", "X-MoE", "paper", "Tutel", "paper")
	for i, g := range gpus {
		batch := 256 * g / 16
		run := func(sys baselines.System) (float64, bool) {
			cfg := baselines.For(sys, m)
			plan := parallel.Plan{World: g, TP: 1, EP: 8, Placement: cfg.Placement,
				SSMB: cfg.SSMB, ZeROStage: 1}
			mb := baselines.MaxMicroBatch(cfg, shape, m, plan, false)
			if mb == 0 {
				return 0, true
			}
			r := baselines.SimulateStep(cfg, baselines.RunSpec{
				Shape: shape, Machine: m, World: g, Plan: plan,
				MicroBatch: mb, GlobalBatch: batch, Seed: opts.Seed, Congestion: true,
			})
			return r.TFLOPsPerGPU, r.OOM
		}
		x, _ := run(baselines.XMoE)
		tu, tuOOM := run(baselines.Tutel)
		out = append(out, ScalingPoint{GPUs: g, XMoE: x, Tutel: tu, TutelOOM: tuOOM,
			PaperX: paperX[i], PaperT: paperT[i]})
		t.add(fmt.Sprint(g), fmt.Sprint(batch),
			fmt.Sprintf("%.1f", x), fmt.Sprintf("%.1f", paperX[i]),
			fmt.Sprintf("%.1f", tu), fmt.Sprintf("%.1f", paperT[i]))
	}
	t.write(w)
	if len(out) > 0 {
		RecordMetric("fig10a_xmoe_tflops_per_gpu_max_scale", out[len(out)-1].XMoE)
		// Delta against the pre-fix backward estimate at the largest scale.
		g := gpus[len(gpus)-1]
		cfg := baselines.For(baselines.XMoE, m)
		plan := parallel.Plan{World: g, TP: 1, EP: 8, Placement: cfg.Placement,
			SSMB: cfg.SSMB, ZeROStage: 1}
		if mb := baselines.MaxMicroBatch(cfg, shape, m, plan, false); mb > 0 {
			legacy := baselines.SimulateStep(cfg, baselines.RunSpec{
				Shape: shape, Machine: m, World: g, Plan: plan,
				MicroBatch: mb, GlobalBatch: 256 * g / 16, Seed: opts.Seed,
				Congestion: true, LegacyBackward: true,
			})
			if legacy.Err == nil && !legacy.OOM {
				d := (legacy.TFLOPsPerGPU - out[len(out)-1].XMoE) / out[len(out)-1].XMoE * 100
				fmt.Fprintf(w, "  legacy backward estimate at %d GPUs: %.1f TFLOPs/GPU (%+.1f%% vs simulated backward)\n",
					g, legacy.TFLOPsPerGPU, d)
				RecordMetric("fig10a_legacy_backward_delta_pct_max_scale", d)
			}
		}
	}
	return out
}

// Figure10bStrongScaling regenerates Fig. 10(b): the Medium model on
// 128-1024 GPUs at fixed global batch 2048, comparing X-MoE (EP=64)
// against Tutel (EP=128); iteration time should fall with GPU count and
// converge at 1024 as cross-rack all-to-all latency dominates.
func Figure10bStrongScaling(w io.Writer, opts Options) []ScalingPoint {
	m := topology.Frontier()
	shape := model.Medium()
	gpus := []int{128, 256, 512, 1024}
	if opts.Quick {
		gpus = gpus[:2]
	}

	var out []ScalingPoint
	header(w, "Figure 10b: strong scaling, Medium model, global batch 2048 (iteration seconds)")
	t := newTable("GPUs", "X-MoE iter(s)", "Tutel iter(s)")
	for _, g := range gpus {
		run := func(sys baselines.System, ep int) (float64, bool) {
			cfg := baselines.For(sys, m)
			plan := parallel.Plan{World: g, TP: 1, EP: ep, Placement: cfg.Placement,
				SSMB: cfg.SSMB, ZeROStage: 1}
			if plan.Validate() != nil {
				return 0, true
			}
			mb := baselines.MaxMicroBatch(cfg, shape, m, plan, false)
			if mb == 0 {
				return 0, true
			}
			r := baselines.SimulateStep(cfg, baselines.RunSpec{
				Shape: shape, Machine: m, World: g, Plan: plan,
				MicroBatch: mb, GlobalBatch: 2048, Seed: opts.Seed, Congestion: true,
			})
			return r.IterSeconds, r.OOM
		}
		x, _ := run(baselines.XMoE, 64)
		tu, tuOOM := run(baselines.Tutel, 128)
		p := ScalingPoint{GPUs: g, XMoE: x, Tutel: tu, TutelOOM: tuOOM}
		out = append(out, p)
		tuStr := fmt.Sprintf("%.2f", tu)
		if tuOOM {
			tuStr = "OOM"
		}
		t.add(fmt.Sprint(g), fmt.Sprintf("%.2f", x), tuStr)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: Tutel OOMs at 128 GPUs; X-MoE iteration time falls with scale; the")
	fmt.Fprintln(w, "  systems converge at 1024 GPUs as cross-rack a2a latency dominates")
	if len(out) > 0 {
		RecordMetric("fig10b_xmoe_iter_seconds_max_scale", out[len(out)-1].XMoE)
	}
	return out
}

// Figure14Result compares SSMB against activation checkpointing.
type Figure14Result struct {
	SSMBTFLOPs, CkptTFLOPs float64
	SSMBMemGB, CkptMemGB   float64
}

// Figure14SSMBvsCkpt regenerates Fig. 14: under similar memory budgets,
// SSMB outruns activation checkpointing because it avoids recomputation
// and the two extra backward all-to-alls.
func Figure14SSMBvsCkpt(w io.Writer, opts Options) Figure14Result {
	m := topology.Frontier()
	shape := model.Large()
	cfg := baselines.For(baselines.XMoE, m)

	run := func(ssmb, ckpt bool, tp int) baselines.StepResult {
		plan := parallel.Plan{World: 256, TP: tp, EP: 64, Placement: cfg.Placement,
			SSMB: ssmb, ZeROStage: 1}
		return baselines.SimulateStep(cfg, baselines.RunSpec{
			Shape: shape, Machine: m, World: 256, Plan: plan,
			MicroBatch: 1, GlobalBatch: 1024, Seed: opts.Seed, ActCkpt: ckpt,
		})
	}
	ssmb := run(true, false, 4)
	ckpt := run(false, true, 4)
	res := Figure14Result{
		SSMBTFLOPs: ssmb.TFLOPsPerGPU, CkptTFLOPs: ckpt.TFLOPsPerGPU,
		SSMBMemGB: ssmb.PeakMemGB, CkptMemGB: ckpt.PeakMemGB,
	}

	header(w, "Figure 14: SSMB vs activation checkpointing, Large model (TFLOPs/GPU)")
	t := newTable("strategy", "TFLOPs", "paper", "mem (GiB)")
	t.add("SSMB", fmt.Sprintf("%.1f", res.SSMBTFLOPs), "24.14", fmt.Sprintf("%.1f", res.SSMBMemGB))
	t.add("Act. Ckpt.", fmt.Sprintf("%.1f", res.CkptTFLOPs), "16.44", fmt.Sprintf("%.1f", res.CkptMemGB))
	t.write(w)
	return res
}

// Table5Row is one cross-platform measurement.
type Table5Row struct {
	Model                    string
	DSMoE, Tutel, XMoE       float64 // TFLOPs; 0 = OOM
	PaperDS, PaperTu, PaperX float64
}

// Table5CrossPlatform regenerates Table 5: the Small model (and its
// SR/LR reductions) on 8x NVIDIA A100 40GB. The full Small config OOMs on
// the baselines but trains under X-MoE; the reduced configs fit
// everywhere with comparable throughput.
func Table5CrossPlatform(w io.Writer, opts Options) []Table5Row {
	m := topology.DGXA100()
	shapes := []model.Shape{model.Small(), model.SmallSR(), model.SmallLR()}
	paper := map[string][3]float64{
		"small":    {0, 0, 46.87},
		"small-sr": {27.08, 28.26, 27.33},
		"small-lr": {52.15, 64.00, 62.51},
	}

	var rows []Table5Row
	header(w, "Table 5: cross-platform results on 8x A100 40GB (TFLOPs/GPU)")
	t := newTable("model", "DS-MoE", "paper", "Tutel", "paper", "X-MoE", "paper")
	for _, shape := range shapes {
		row := Table5Row{Model: shape.Name}
		pp := paper[shape.Name]
		row.PaperDS, row.PaperTu, row.PaperX = pp[0], pp[1], pp[2]
		vals := [3]float64{}
		for i, sys := range []baselines.System{baselines.DeepSpeedMoE, baselines.Tutel, baselines.XMoE} {
			cfg := baselines.For(sys, m)
			sw := baselines.Sweep(cfg, shape, m, 8, 64, opts.Seed, false)
			if !sw.OOM {
				vals[i] = sw.Best.TFLOPsPerGPU
			}
		}
		row.DSMoE, row.Tutel, row.XMoE = vals[0], vals[1], vals[2]
		rows = append(rows, row)
		f := func(v, p float64) (string, string) {
			ms, ps := "OOM", "OOM"
			if v > 0 {
				ms = fmt.Sprintf("%.1f", v)
			}
			if p > 0 {
				ps = fmt.Sprintf("%.1f", p)
			}
			return ms, ps
		}
		d, dp := f(row.DSMoE, row.PaperDS)
		tu, tup := f(row.Tutel, row.PaperTu)
		x, xp := f(row.XMoE, row.PaperX)
		t.add(shape.Name, d, dp, tu, tup, x, xp)
	}
	t.write(w)
	return rows
}

// Figure20Point is one depth/top-k sweep measurement.
type Figure20Point struct {
	X                  int     // layers or top-k
	DSMoE, Tutel, XMoE float64 // TFLOPs, 0 = OOM
}

// Figure20DepthTopK regenerates Appendix E (Fig. 20): throughput on 256
// GPUs as the Large-base model grows in depth (layers 8-24) and routing
// fan-out (k in 4-16). Baselines fall over as depth exceeds 16; X-MoE's
// advantage widens with k.
func Figure20DepthTopK(w io.Writer, opts Options) (depth, topk []Figure20Point) {
	m := topology.Frontier()
	layerSweep := []int{8, 12, 16, 20, 24}
	kSweep := []int{4, 8, 12, 16}
	if opts.Quick {
		layerSweep = layerSweep[:2]
		kSweep = kSweep[:2]
	}

	run := func(sys baselines.System, shape model.Shape) float64 {
		cfg := baselines.For(sys, m)
		sw := baselines.Sweep(cfg, shape, m, 256, 1024, opts.Seed, true)
		if sw.OOM {
			return 0
		}
		return sw.Best.TFLOPsPerGPU
	}

	header(w, "Figure 20 (left): throughput vs number of layers, Large base, 256 GPUs")
	t := newTable("layers", "DS-MoE", "Tutel", "X-MoE")
	for _, l := range layerSweep {
		shape := model.Large().WithLayers(l)
		p := Figure20Point{X: l,
			DSMoE: run(baselines.DeepSpeedMoE, shape),
			Tutel: run(baselines.Tutel, shape),
			XMoE:  run(baselines.XMoE, shape)}
		depth = append(depth, p)
		t.add(fmt.Sprint(l), oomOr(p.DSMoE), oomOr(p.Tutel), oomOr(p.XMoE))
	}
	t.write(w)

	// The top-k sweep fixes a depth at which the baselines still fit
	// (the paper fixes the layer count for this panel; at the full 28
	// layers every baseline OOMs per Fig. 9).
	header(w, "Figure 20 (right): throughput vs top-k, Large base (12 layers), 256 GPUs")
	t2 := newTable("top-k", "DS-MoE", "Tutel", "X-MoE", "X-MoE/Tutel")
	for _, k := range kSweep {
		shape := model.Large().WithLayers(12).WithTopK(k)
		p := Figure20Point{X: k,
			DSMoE: run(baselines.DeepSpeedMoE, shape),
			Tutel: run(baselines.Tutel, shape),
			XMoE:  run(baselines.XMoE, shape)}
		topk = append(topk, p)
		ratio := "-"
		if p.Tutel > 0 && p.XMoE > 0 {
			ratio = fmt.Sprintf("%.2fx", p.XMoE/p.Tutel)
		}
		t2.add(fmt.Sprint(k), oomOr(p.DSMoE), oomOr(p.Tutel), oomOr(p.XMoE), ratio)
	}
	t2.write(w)
	fmt.Fprintln(w, "  paper: baselines OOM beyond 16 layers; X-MoE holds >22 TFLOPs at all depths;")
	fmt.Fprintln(w, "  the X-MoE/Tutel ratio grows with k (1.12x at k=4 to 1.64x at k=16)")
	return depth, topk
}

func oomOr(v float64) string {
	if v <= 0 {
		return "OOM"
	}
	return fmt.Sprintf("%.1f", v)
}
