package bench

import (
	"fmt"
	"io"

	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/netsim"
	"xmoe/internal/parallel"
	"xmoe/internal/rbd"
	"xmoe/internal/topology"
)

// Table1Result carries the size-equivalence check of Tables 1-2.
type Table1Result struct {
	ConvParams, SpecParams       int64
	ConvActivated, SpecActivated int64
	ConvDispatch, SpecDispatch   int64 // per-GPU A_dispatch bytes
	ConvInterm, SpecInterm       int64
}

// Table1SizeEquivalence regenerates Tables 1-2: the Mconv/Mspec pair has
// identical parameter budgets while the dispatch/combine activations grow
// by the fine-grained factor m and the FFN intermediates stay constant.
func Table1SizeEquivalence(w io.Writer) Table1Result {
	conv, spec := model.ConvSpecPair()
	st := memmodel.Setup{
		Plan:           parallel.Plan{World: 256, TP: 1, EP: conv.NumExperts, ZeROStage: 1},
		MicroBatch:     2,
		Pipeline:       memmodel.PipelinePFT,
		CapacityFactor: 1.25,
		ElemBytes:      2,
	}
	const s = 4096
	bc := memmodel.MoELayer(conv, st, s)
	stSpec := st
	stSpec.Plan.EP = spec.NumExperts
	bs := memmodel.MoELayer(spec, stSpec, s)

	res := Table1Result{
		ConvParams:    conv.ExpertParamsPerLayer(),
		SpecParams:    spec.ExpertParamsPerLayer(),
		ConvActivated: int64(conv.TopK) * 2 * int64(conv.HModel) * int64(conv.HFFN),
		SpecActivated: int64(spec.TopK) * 2 * int64(spec.HModel) * int64(spec.HFFN),
		ConvDispatch:  bc.ADispatch,
		SpecDispatch:  bs.ADispatch,
		ConvInterm:    bc.AInterm0,
		SpecInterm:    bs.AInterm0,
	}

	header(w, "Table 1/2: size-equivalent Mconv vs Mspec (m=8)")
	t := newTable("quantity", "Mconv", "Mspec", "ratio")
	ratio := func(a, b int64) string { return fmt.Sprintf("%.2f", float64(b)/float64(a)) }
	t.add("expert params/layer", fmt.Sprint(res.ConvParams), fmt.Sprint(res.SpecParams), ratio(res.ConvParams, res.SpecParams))
	t.add("activated params/tok", fmt.Sprint(res.ConvActivated), fmt.Sprint(res.SpecActivated), ratio(res.ConvActivated, res.SpecActivated))
	t.add("A_dispatch (GiB)", gb(res.ConvDispatch), gb(res.SpecDispatch), ratio(res.ConvDispatch, res.SpecDispatch))
	t.add("A_interm (GiB)", gb(res.ConvInterm), gb(res.SpecInterm), ratio(res.ConvInterm, res.SpecInterm))
	t.write(w)
	fmt.Fprintln(w, "  paper: params and activated params equal; A_dispatch grows ~m=8x; A_interm constant")
	return res
}

// Figure3Result carries the per-component memory of Fig. 3.
type Figure3Result struct {
	Conv, Spec             memmodel.MoEBreakdown
	ConvStates, SpecStates int64
}

// Figure3MemoryDistribution regenerates Fig. 3: the MoE-layer memory
// distribution of Mconv vs Mspec on 256 GPUs with ZeRO-1 DP + EP (EP =
// number of experts), showing the bottleneck shifting from model states /
// intermediates to dispatch and combine.
func Figure3MemoryDistribution(w io.Writer) Figure3Result {
	conv, spec := model.ConvSpecPair()
	const s = 4096
	mk := func(sh model.Shape) (memmodel.MoEBreakdown, int64) {
		st := memmodel.Setup{
			Plan:           parallel.Plan{World: 256, TP: 1, EP: sh.NumExperts, ZeROStage: 1},
			MicroBatch:     2,
			Pipeline:       memmodel.PipelinePFT,
			CapacityFactor: 1.25,
			ElemBytes:      2,
		}
		// Single-layer model states per GPU.
		one := sh
		one.Layers = 1
		return memmodel.MoELayer(sh, st, s), memmodel.ModelStates(one, st)
	}
	bc, sc := mk(conv)
	bs, ss := mk(spec)
	res := Figure3Result{Conv: bc, Spec: bs, ConvStates: sc, SpecStates: ss}

	header(w, "Figure 3: MoE layer memory distribution (GiB/GPU)")
	t := newTable("model", "states", "A_disp", "A_comb", "A0_int", "A1_int")
	t.add("Mconv", gb(sc), gb(bc.ADispatch), gb(bc.ACombine), gb(bc.AInterm0), gb(bc.AInterm1))
	t.add("Mspec", gb(ss), gb(bs.ADispatch), gb(bs.ACombine), gb(bs.AInterm0), gb(bs.AInterm1))
	t.write(w)
	fmt.Fprintln(w, "  paper: Mspec dispatch/combine dominate (~0.35 GB each); Mconv is states/interm-bound")
	return res
}

// Figure4Result pairs EP sizes with redundancy rates.
type Figure4Result struct {
	EPSizes  []int
	Analytic []float64
	Measured []float64
	Paper    []float64
}

// Figure4Redundancy regenerates Fig. 4: the fraction of dispatched token
// copies that are node-level redundant for a DeepSeek-style 256-expert,
// k=8 configuration, as EP size grows — both the closed form and a
// measurement over synthetic routing.
func Figure4Redundancy(w io.Writer, opts Options) Figure4Result {
	res := Figure4Result{
		EPSizes: []int{16, 32, 64, 128, 256},
		Paper:   []float64{0.751, 0.548, 0.338, 0.185, 0.092},
	}
	m := topology.Frontier()
	const e, k = 256, 8
	tokens := 4000
	if opts.Quick {
		tokens = 600
	}
	for _, ep := range res.EPSizes {
		nodes := ep / m.GPUsPerNode
		res.Analytic = append(res.Analytic, rbd.ExpectedRedundancyRate(e, k, nodes))
		rt := syntheticRoutingFor(opts.Seed+uint64(ep), tokens, e, k)
		eprNode := e / nodes
		red := rbd.AnalyzeRedundancy(rt, func(ex int) int { return ex / eprNode }, -1)
		res.Measured = append(res.Measured, red.Rate())
	}

	header(w, "Figure 4: redundancy rate of dispatched tokens (256 experts, k=8)")
	t := newTable("EP size", "analytic %", "measured %", "paper %")
	for i, ep := range res.EPSizes {
		t.add(fmt.Sprint(ep),
			fmt.Sprintf("%.1f", res.Analytic[i]*100),
			fmt.Sprintf("%.1f", res.Measured[i]*100),
			fmt.Sprintf("%.1f", res.Paper[i]*100))
	}
	t.write(w)
	return res
}

// Table4Result carries per-MoE-layer activation memory in GiB.
type Table4Result struct {
	DSMoE, Tutel, XMoE, Theoretical float64
}

// Table4ActivationMemory regenerates Table 4: per-MoE-layer activation
// memory of the Large model on 256 GPUs with EP=64.
func Table4ActivationMemory(w io.Writer) Table4Result {
	sh := model.Large()
	const s = 4096
	plan := parallel.Plan{World: 256, TP: 1, EP: 64, ZeROStage: 1}
	mk := func(p memmodel.Pipeline, combine int, noMask bool) float64 {
		st := memmodel.Setup{
			Plan: plan, MicroBatch: 1, Pipeline: p,
			CapacityFactor: 1.25, ElemBytes: 2,
			CombineBytes: combine, NoDenseMask: noMask,
		}
		return float64(memmodel.MoELayer(sh, st, s).Total()) / (1 << 30)
	}
	res := Table4Result{
		DSMoE:       mk(memmodel.PipelinePadded, 0, false),
		Tutel:       mk(memmodel.PipelinePadded, 4, true),
		XMoE:        mk(memmodel.PipelinePFT, 0, false),
		Theoretical: 4 * 1.25 * 8 * 4096 * 7168 / float64(1<<30),
	}

	header(w, "Table 4: per-MoE-layer activation memory, Large model, 256 GPUs (GiB)")
	t := newTable("system", "measured", "paper")
	t.add("DS-MoE", fmt.Sprintf("%.2f", res.DSMoE), "2.81")
	t.add("Tutel", fmt.Sprintf("%.2f", res.Tutel), "1.95")
	t.add("X-MoE", fmt.Sprintf("%.2f", res.XMoE), "1.21")
	t.add("Theoretical", fmt.Sprintf("%.2f", res.Theoretical), "1.125")
	t.write(w)
	return res
}

// Figure13Result maps TP degree to per-GPU activation memory with and
// without SSMB.
type Figure13Result struct {
	TP                []int
	WithSSMB, Without []float64
}

// Figure13SSMBMemory regenerates Fig. 13: maximum per-GPU memory of the
// Large model across TP degrees, with and without sequence-sharded MoE
// blocks.
func Figure13SSMBMemory(w io.Writer) Figure13Result {
	sh := model.Large()
	res := Figure13Result{TP: []int{1, 2, 4}}
	for _, tp := range res.TP {
		mk := func(ssmb bool) float64 {
			st := memmodel.Setup{
				Plan:           parallel.Plan{World: 256, TP: tp, EP: 64, ZeROStage: 1, SSMB: ssmb},
				MicroBatch:     1,
				Pipeline:       memmodel.PipelinePFT,
				CapacityFactor: 1.25,
				ElemBytes:      2,
			}
			return float64(memmodel.ModelStates(sh, st)+memmodel.Activations(sh, st)) / (1 << 30)
		}
		res.WithSSMB = append(res.WithSSMB, mk(true))
		res.Without = append(res.Without, mk(false))
	}

	header(w, "Figure 13: per-GPU memory w/ and w/o SSMB, Large model, EP=64 (GiB)")
	t := newTable("TP", "w/o SSMB", "w/ SSMB", "saving")
	for i, tp := range res.TP {
		t.add(fmt.Sprint(tp),
			fmt.Sprintf("%.1f", res.Without[i]),
			fmt.Sprintf("%.1f", res.WithSSMB[i]),
			fmt.Sprintf("%.1f%%", (1-res.WithSSMB[i]/res.Without[i])*100))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: SSMB's saving grows with TP degree (Fig. 13's widening gap)")
	return res
}

// Figure17Result carries the SSMB/TED verdicts per model.
type Figure17Result struct {
	Models   []string
	TopK     []int
	HFFN     []int
	Verdicts map[int][]bool // seq len -> per-model SSMB advantage
	Borders  map[int]float64
}

// Figure17AdvantageRegions regenerates Fig. 17: which real MoE
// architectures fall in SSMB's advantage region vs TED's, for sequence
// lengths 2k/4k/8k at capacity factor 1.
func Figure17AdvantageRegions(w io.Writer) Figure17Result {
	res := Figure17Result{
		Models:   []string{"Mixtral-8x7b", "Mixtral-8x22b", "DeepSeek-MoE", "DeepSeek-v3", "Arctic"},
		TopK:     []int{2, 2, 6, 8, 2},
		HFFN:     []int{14336, 16384, 1408, 2048, 4864},
		Verdicts: map[int][]bool{},
		Borders:  map[int]float64{},
	}
	const c = 1.0
	seqs := []int{2048, 4096, 8192}
	for _, s := range seqs {
		verdicts := make([]bool, len(res.Models))
		for i := range res.Models {
			verdicts[i] = memmodel.SSMBAdvantage(res.TopK[i], res.HFFN[i], c, s)
		}
		res.Verdicts[s] = verdicts
		res.Borders[s] = memmodel.AdvantageBorderTopK(4096, c, s)
	}

	header(w, "Figure 17: SSMB vs TED advantage regions (c=1)")
	t := newTable("model", "top-k", "H_FFN", "S=2048", "S=4096", "S=8192")
	verdict := func(b bool) string {
		if b {
			return "SSMB"
		}
		return "TED"
	}
	for i, name := range res.Models {
		t.add(name, fmt.Sprint(res.TopK[i]), fmt.Sprint(res.HFFN[i]),
			verdict(res.Verdicts[2048][i]), verdict(res.Verdicts[4096][i]), verdict(res.Verdicts[8192][i]))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: DeepSeek models favour SSMB at all S; Mixtral favours TED; Arctic flips with S")
	return res
}

// AppendixC1Result compares gradient-sync cost under the two placements.
type AppendixC1Result struct {
	EPFirstSync, DPFirstSync float64
	EPFirstA2A, DPFirstA2A   float64
}

// AppendixC1Placement regenerates the Appendix C.1 analysis: on 64 GPUs
// with 8 experts and EP=8, DP-first placement moves gradient
// synchronisation onto intra-node links at the cost of inter-node token
// routing, and wins when DP volume dominates.
func AppendixC1Placement(w io.Writer) AppendixC1Result {
	m := topology.Frontier()
	net := netsim.New(m, 1)
	net.DisableCongestion = true

	const world, ep = 64, 8
	// Large-MoE regime: 1 GiB of expert gradients per rank, 64 MiB of
	// routed tokens per a2a.
	const gradBytes = 1 << 30
	const a2aBytes = 64 << 20

	res := AppendixC1Result{}
	for _, placement := range []parallel.Placement{parallel.EPFirst, parallel.DPFirst} {
		plan := parallel.Plan{World: world, TP: 1, EP: ep, Placement: placement, ZeROStage: 1}
		sync := net.AllReduce(plan.ExpertDPGroups()[0], gradBytes).Seconds
		a2a := net.AlltoAll(plan.EPGroups()[0], a2aBytes/ep).Seconds
		if placement == parallel.EPFirst {
			res.EPFirstSync, res.EPFirstA2A = sync, a2a
		} else {
			res.DPFirstSync, res.DPFirstA2A = sync, a2a
		}
	}

	header(w, "Appendix C.1: EP-first vs DP-first placement (64 GPUs, 8 experts, EP=8)")
	t := newTable("placement", "grad sync (ms)", "EP a2a (ms)", "total (ms)")
	t.add("EP-first", ms(res.EPFirstSync), ms(res.EPFirstA2A), ms(res.EPFirstSync+res.EPFirstA2A))
	t.add("DP-first", ms(res.DPFirstSync), ms(res.DPFirstA2A), ms(res.DPFirstSync+res.DPFirstA2A))
	t.write(w)
	fmt.Fprintln(w, "  paper: DP-first keeps replicas intra-node, winning for large MoEs on Frontier")
	return res
}
