package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAppendResultsMergesAndRoundTrips pins the bench-save history
// semantics: successive appends accumulate (never overwrite), the file
// round-trips through ReadResults, and fields written by other schema
// versions survive a rewrite byte-preserved.
func TestAppendResultsMergesAndRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")

	first := []Record{{Experiment: "fig9", NsPerOp: 100, Engine: "analytic", Seed: 42,
		Simulated: map[string]float64{"fig9_mean_tflops_per_gpu": 33.5}}}
	if err := AppendResults(path, first); err != nil {
		t.Fatal(err)
	}
	second := []Record{{Experiment: "abl-zero", NsPerOp: 200, Engine: "analytic", Seed: 42}}
	if err := AppendResults(path, second); err != nil {
		t.Fatal(err)
	}

	got, err := ReadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after two appends the history holds %d records, want 2", len(got))
	}
	if got[0].Experiment != "fig9" || got[1].Experiment != "abl-zero" {
		t.Fatalf("history out of order: %q, %q", got[0].Experiment, got[1].Experiment)
	}
	if got[0].Simulated["fig9_mean_tflops_per_gpu"] != 33.5 {
		t.Fatal("simulated metrics did not round-trip")
	}
}

// TestAppendResultsPreservesUnknownFields guards the lossless-merge
// property: a record written by a future schema (extra fields) must not
// have those fields dropped when an older binary appends to the file.
func TestAppendResultsPreservesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	future := `[{"experiment":"fig9","ns_op":1,"engine":"analytic","quick":false,"seed":7,` +
		`"timestamp":"2026-01-01T00:00:00Z","future_field":{"nested":true}}]`
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendResults(path, []Record{{Experiment: "abl-zero"}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"future_field"`) {
		t.Fatal("rewrite dropped a field it did not recognise")
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(data, &arr); err != nil {
		t.Fatalf("rewritten file is not a JSON array: %v", err)
	}
	if len(arr) != 2 {
		t.Fatalf("file holds %d records, want 2", len(arr))
	}
}

// TestAppendResultsSetsAsideCorruptFile: a non-array file is renamed to
// .corrupt, not erased.
func TestAppendResultsSetsAsideCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendResults(path, []Record{{Experiment: "fig9"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt history was not set aside: %v", err)
	}
	got, err := ReadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Experiment != "fig9" {
		t.Fatalf("fresh history after set-aside holds %+v", got)
	}
}
