package bench

// AblationFaults: fault-tolerance economics of the three transports. The
// paper's evaluation assumes a healthy machine; at the scales it targets
// (1024+ GCDs) that assumption fails hourly, so this ablation measures
// what survives contact with faults: goodput (useful-step time over
// wall-clock) as MTBF shrinks, checkpoint-interval sensitivity against
// the Young/Daly optimum, and per-transport straggler sensitivity.
//
// Two tiers share the fault machinery. The numeric tier runs the real
// DistTrainer through RunFaultTolerant — actual crash, rollback, elastic
// shrink, bit-deterministic recovery — at test-scale dims. The at-scale
// tier replays deterministic Poisson crash schedules (fault.PlanCrashes)
// against measured per-step times on the paper's Large layer, keeping the
// world fixed across failures (crash-with-replacement, the standard
// goodput model). RBD has no backward pass in this codebase, so its step
// time uses the repo's forward*3 convention (backward ~ 2x compute + 1x
// comm of the forward).

import (
	"fmt"
	"io"
	"math"

	"xmoe/internal/fault"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/train"
)

// AblationFaultsResult carries the ablation's series for tests.
type AblationFaultsResult struct {
	// Transports names the columns: pft, padded, rbd.
	Transports []string
	// StepSec is each transport's healthy per-step simulated time.
	StepSec []float64
	// MTBFxStep is the MTBF sweep, in multiples of the pft step time.
	MTBFxStep []float64
	// Goodput[t][m] is transport t's goodput at MTBF m (Young/Daly
	// checkpoint interval).
	Goodput [][]float64
	// CkptSteps is the checkpoint-interval sweep (steps).
	CkptSteps []int
	// CkptGoodput[i] is pft goodput at CkptSteps[i] under the fixed MTBF.
	CkptGoodput []float64
	// YoungDalySteps is the analytic optimum interval in steps.
	YoungDalySteps float64
	// StragglerScale is the compute-multiplier sweep for one slow rank.
	StragglerScale []float64
	// StragglerSlowdown[t][i] is transport t's step-time ratio vs healthy.
	StragglerSlowdown [][]float64
	// FT is the numeric trainer's recovery run (real crash + rollback).
	FT train.FTStats
}

// replayGoodput walks a deterministic crash schedule against a fixed
// per-step time: steps complete sequentially, a checkpoint (cost ckpt) is
// written every ckptEvery useful steps, and a crash arriving mid-flight
// rolls progress back to the last checkpoint and charges a restart read.
// Returns useful/wall. The world stays fixed (failed nodes are replaced).
func replayGoodput(stepSec, ckpt float64, ckptEvery, steps int, crashes []float64) float64 {
	if ckptEvery < 1 {
		ckptEvery = 1
	}
	wall, useful := 0.0, 0.0
	done, lastCkpt := 0, 0
	ci := 0
	for done < steps {
		end := wall + stepSec
		if ci < len(crashes) && crashes[ci] < end {
			// Crash mid-step: partial attempt plus everything since the
			// last checkpoint is lost.
			wall = crashes[ci] + ckpt // restart read
			useful -= float64(done-lastCkpt) * stepSec
			done = lastCkpt
			ci++
			continue
		}
		wall = end
		useful += stepSec
		done++
		if done%ckptEvery == 0 && done < steps {
			wall += ckpt
			lastCkpt = done
		}
	}
	return fault.Goodput(useful, wall)
}

// stepClockInjected is StepClock with a fault injector attached: one
// symbolic fwd+bwd step (pft/padded) under compute-scale injection.
func stepClockInjected(m *topology.Machine, cfg moe.Config, world, s int,
	transport string, chunks int, seed uint64, inj *fault.Injector) float64 {

	c := simrt.NewCluster(m, world, seed)
	c.Net.DisableCongestion = true
	if inj != nil {
		inj.Arm(0, 0)
		c.Inject = inj
	}
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		fwdOpts := moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight,
			SaveForBackward: true, OverlapChunks: chunks}
		bwdOpts := moe.PipelineOpts{OverlapChunks: chunks}
		switch transport {
		case "pft":
			res := moe.PFTForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PFTBackward(r, g, cfg, res.State, nil, nil, bwdOpts)
		case "padded":
			fwdOpts.DropPolicy = moe.DropNegativeThenPosition
			res := moe.PaddedForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PaddedBackward(r, g, cfg, res.PaddedState, nil, nil, bwdOpts)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return simrt.MaxClock(ranks)
}

// rbdStepClock estimates one RBD training step: a full symbolic forward
// (gate, hierarchical dispatch, expert GEMMs, combine) times three — the
// repo's convention for a backward that mirrors the forward's exchanges
// at roughly twice the compute.
func rbdStepClock(m *topology.Machine, cfg moe.Config, world, s int,
	seed uint64, inj *fault.Injector) float64 {

	c := simrt.NewCluster(m, world, seed)
	c.Net.DisableCongestion = true
	if inj != nil {
		inj.Arm(0, 0)
		c.Inject = inj
	}
	g := c.WorldGroup()
	d := rbd.NewDispatcher(c, g, cfg)
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		rbd.Forward(r, d, cfg, s, nil, rt, nil, tensor.NewRNG(seed^uint64(r.ID)),
			moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight})
		return nil
	})
	if err != nil {
		panic(err)
	}
	return simrt.MaxClock(ranks) * 3
}

// AblationFaults runs the fault-tolerance ablation and prints its tables.
func AblationFaults(w io.Writer, opts Options) AblationFaultsResult {
	m := topology.Frontier()
	shape := model.Large()
	ep := 32
	s := shape.SeqLen
	ftSteps := 12
	if opts.Quick {
		ep = 8
		s = 1024
		ftSteps = 6
	}
	cfg := moe.Config{
		NumExperts: shape.NumExperts, TopK: shape.TopK,
		HModel: shape.HModel, HFFN: shape.HFFN,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	res := AblationFaultsResult{Transports: []string{"pft", "padded", "rbd"}}

	// --- Healthy per-step time per transport -------------------------------
	for _, tr := range res.Transports {
		var t float64
		if tr == "rbd" {
			t = rbdStepClock(m, cfg, ep, s, opts.Seed, nil)
		} else {
			t = stepClockInjected(m, cfg, ep, s, tr, 4, opts.Seed, nil)
		}
		res.StepSec = append(res.StepSec, t)
	}

	// Checkpoint cost: all expert parameters (f32) stream off-node at NIC
	// bandwidth — the same model train.DistTrainer.CkptCost applies.
	ckptBytes := int64(cfg.NumExperts) * int64(cfg.HModel) * int64(cfg.HFFN) * 2 * 4
	ckpt := float64(ckptBytes) / m.NodeNICBandwidth

	// --- Goodput vs MTBF (Young/Daly interval per point) -------------------
	res.MTBFxStep = []float64{20, 100, 500, 2500}
	steps := 4000
	if opts.Quick {
		steps = 1000
	}
	header(w, fmt.Sprintf("Ablation: goodput vs MTBF, %s layer, EP=%d (ckpt write %.1fms)", shape.Name, ep, ckpt*1e3))
	tb := newTable(append([]string{"MTBF/step(pft)"}, res.Transports...)...)
	base := res.StepSec[0]
	for range res.Transports {
		res.Goodput = append(res.Goodput, nil)
	}
	// Average several independent crash schedules per cell: a single
	// Poisson realization is noisy enough to break monotonicity in MTBF.
	const plans = 5
	for _, mx := range res.MTBFxStep {
		mtbf := mx * base
		row := []string{fmt.Sprintf("%.0fx", mx)}
		for ti := range res.Transports {
			st := res.StepSec[ti]
			horizon := float64(steps) * st * 4
			interval := int(math.Round(fault.YoungDaly(ckpt, mtbf) / st))
			var g float64
			for p := 0; p < plans; p++ {
				crashes := fault.PlanCrashes(opts.Seed+uint64(ti)*31+uint64(p)*1e6, ep, horizon, mtbf).CrashTimes()
				g += replayGoodput(st, ckpt, interval, steps, crashes)
			}
			g /= plans
			res.Goodput[ti] = append(res.Goodput[ti], g)
			row = append(row, fmt.Sprintf("%.3f", g))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  checkpoint interval set to the Young/Daly optimum sqrt(2*delta*MTBF) per point;")
	fmt.Fprintln(w, "  goodput = useful-step time / wall-clock, crashes replayed from seeded Poisson plans")

	// --- Checkpoint-interval sensitivity vs Young/Daly ---------------------
	mtbf := 100 * base
	res.YoungDalySteps = fault.YoungDaly(ckpt, mtbf) / base
	res.CkptSteps = []int{1, 2, 4, 8, 16, 32, 64, 128}
	header(w, fmt.Sprintf("Ablation: checkpoint-interval sensitivity, pft, MTBF=100 steps (Young/Daly optimum %.1f steps)", res.YoungDalySteps))
	tb = newTable("interval (steps)", "goodput")
	for _, iv := range res.CkptSteps {
		var g float64
		for p := 0; p < plans; p++ {
			horizon := float64(steps) * base * 4
			crashes := fault.PlanCrashes(opts.Seed+uint64(p)*1e6, ep, horizon, mtbf).CrashTimes()
			g += replayGoodput(base, ckpt, iv, steps, crashes)
		}
		g /= plans
		res.CkptGoodput = append(res.CkptGoodput, g)
		tb.add(fmt.Sprintf("%d", iv), fmt.Sprintf("%.3f", g))
	}
	tb.write(w)
	fmt.Fprintln(w, "  too-frequent checkpoints pay the write cost every step; too-rare ones replay")
	fmt.Fprintln(w, "  long tails after each crash — goodput peaks near the Young/Daly interval")

	// --- Straggler sensitivity per transport -------------------------------
	res.StragglerScale = []float64{1, 1.5, 2, 4}
	header(w, fmt.Sprintf("Ablation: straggler sensitivity (one rank's compute x scale), EP=%d", ep))
	tb = newTable(append([]string{"scale"}, res.Transports...)...)
	for range res.Transports {
		res.StragglerSlowdown = append(res.StragglerSlowdown, nil)
	}
	for _, sc := range res.StragglerScale {
		row := []string{fmt.Sprintf("x%.1f", sc)}
		for ti, tr := range res.Transports {
			var inj *fault.Injector
			if sc != 1 {
				plan, err := fault.ParsePlan(fmt.Sprintf("straggler:r0@s0:x%g", sc))
				if err != nil {
					panic(err)
				}
				inj = fault.NewInjector(plan, ep)
			}
			var t float64
			if tr == "rbd" {
				t = rbdStepClock(m, cfg, ep, s, opts.Seed, inj)
			} else {
				t = stepClockInjected(m, cfg, ep, s, tr, 4, opts.Seed, inj)
			}
			slow := t / res.StepSec[ti]
			res.StragglerSlowdown[ti] = append(res.StragglerSlowdown[ti], slow)
			row = append(row, fmt.Sprintf("%.2fx", slow))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  BSP collectives make every rank wait for the slowest; the transport with the")
	fmt.Fprintln(w, "  higher compute fraction inherits more of the straggler's slowdown")

	// --- Numeric trainer: real crash, rollback, elastic shrink -------------
	tcfg := train.DistConfig{
		MoE: moe.Config{NumExperts: 8, TopK: 3, HModel: 12, HFFN: 8,
			CapacityFactor: 1.25, BytesPerElem: 2},
		World: 4, Tokens: 32, LR: 1e-2, Seed: opts.Seed,
		Transport: "pft", Opts: moe.PipelineOpts{OverlapChunks: 2},
	}
	trn, err := train.NewDistTrainer(tcfg)
	if err != nil {
		panic(err)
	}
	plan, err := fault.ParsePlan(fmt.Sprintf("crash:r1@s%d", ftSteps/2))
	if err != nil {
		panic(err)
	}
	res.FT, err = trn.RunFaultTolerant(train.FTOptions{
		Steps: ftSteps, CkptEvery: 3, Plan: plan,
	})
	if err != nil {
		panic(err)
	}
	header(w, "Fault-tolerant numeric trainer (real crash + rollback + elastic shrink)")
	fmt.Fprintf(w, "  %d useful steps, %d recovery, %d replayed, world %d -> %d\n",
		res.FT.Steps, res.FT.Recoveries, res.FT.ReplayedSteps, tcfg.World, res.FT.FinalWorld)
	fmt.Fprintf(w, "  goodput %.3f (useful %.2fms, ckpt %.2fms, lost %.2fms, wall %.2fms)\n",
		res.FT.Goodput, res.FT.UsefulTime*1e3, res.FT.CkptTime*1e3, res.FT.LostTime*1e3, res.FT.WallClock*1e3)

	RecordMetric("abl_faults_pft_goodput_mtbf100", res.Goodput[0][1])
	RecordMetric("abl_faults_rbd_goodput_mtbf100", res.Goodput[2][1])
	RecordMetric("abl_faults_youngdaly_steps", res.YoungDalySteps)
	RecordMetric("abl_faults_ft_goodput", res.FT.Goodput)
	RecordMetric("abl_faults_pft_straggler_x4", res.StragglerSlowdown[0][3])
	return res
}
