package bench

// AblationFaults: fault-tolerance economics of the three transports. The
// paper's evaluation assumes a healthy machine; at the scales it targets
// (1024+ GCDs) that assumption fails hourly, so this ablation measures
// what survives contact with faults: goodput (useful-step time over
// wall-clock) as MTBF shrinks, checkpoint-interval sensitivity against
// the Young/Daly optimum, and per-transport straggler sensitivity.
//
// Two tiers share the fault machinery. The numeric tier runs the real
// DistTrainer through RunFaultTolerant — actual crash, rollback, elastic
// shrink/regrow, spare promotion, straggler mitigation, bit-deterministic
// recovery — at test-scale dims. The at-scale tier replays deterministic
// Poisson crash schedules (fault.PlanCrashes) against measured per-step
// times on the paper's Large layer, keeping the world fixed across
// failures (crash-with-replacement, the standard goodput model), in both
// blocking and async checkpoint modes. All three transports are measured
// fwd+bwd: RBD runs its native hierarchical backward (the reverse-stage
// dispatch), not a scaled-forward estimate.

import (
	"fmt"
	"io"
	"math"

	"xmoe/internal/fault"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/train"
)

// AblationFaultsResult carries the ablation's series for tests.
type AblationFaultsResult struct {
	// Transports names the columns: pft, padded, rbd.
	Transports []string
	// StepSec is each transport's healthy per-step simulated time.
	StepSec []float64
	// MTBFxStep is the MTBF sweep, in multiples of the pft step time.
	MTBFxStep []float64
	// Goodput[t][m] is transport t's goodput at MTBF m (Young/Daly
	// checkpoint interval).
	Goodput [][]float64
	// CkptSteps is the checkpoint-interval sweep (steps).
	CkptSteps []int
	// CkptGoodput[i] is pft goodput at CkptSteps[i] under the fixed MTBF.
	CkptGoodput []float64
	// YoungDalySteps is the analytic optimum interval in steps.
	YoungDalySteps float64
	// GoodputAsync[t][m] mirrors Goodput with asynchronous checkpoint
	// writes: the write streams behind subsequent steps and only the
	// uncovered remainder stalls, at the cost of falling back one more
	// interval when a crash lands mid-write.
	GoodputAsync [][]float64
	// StragglerScale is the compute-multiplier sweep for one slow rank.
	StragglerScale []float64
	// StragglerSlowdown[t][i] is transport t's step-time ratio vs healthy.
	StragglerSlowdown [][]float64
	// FT is the numeric trainer's recovery run (real crash + rollback).
	FT train.FTStats
	// SpareSizes is the hot-spare-pool sweep; SpareFT[i] is the numeric
	// trainer's run with SpareSizes[i] spares against the same crash.
	SpareSizes []int
	SpareFT    []train.FTStats
	// MitigationScale is the straggler-multiplier sweep for the at-scale
	// mitigation comparison (pft, Large dims); WallUnmitigated/WallMitigated
	// are the per-step wall-clocks with the capacity rebalance off and on.
	MitigationScale []float64
	WallUnmitigated []float64
	WallMitigated   []float64
}

// replayGoodput walks a deterministic crash schedule against a fixed
// per-step time: steps complete sequentially, a checkpoint (cost ckpt) is
// written every ckptEvery useful steps, and a crash arriving mid-flight
// rolls progress back to the last durable checkpoint and charges a
// restart read. Returns useful/wall. The world stays fixed (failed nodes
// are replaced). In blocking mode every write stalls training for its
// full cost and is durable immediately; in async mode the write streams
// behind the following steps (same double-buffer schedule as
// train.CkptStream) — only the remainder still in flight when the next
// write is issued stalls, and a crash landing mid-write discards the
// in-flight snapshot, rolling back to the previous durable one.
func replayGoodput(stepSec, ckpt float64, ckptEvery, steps int, crashes []float64, async bool) float64 {
	if ckptEvery < 1 {
		ckptEvery = 1
	}
	wall, useful := 0.0, 0.0
	done, durable := 0, 0
	pending, pendEnd := -1, 0.0
	promote := func(now float64) {
		if pending >= 0 && now >= pendEnd {
			durable, pending = pending, -1
		}
	}
	ci := 0
	for done < steps {
		end := wall + stepSec
		if ci < len(crashes) && crashes[ci] < end {
			// Crash mid-step: the partial attempt plus everything since
			// the durable checkpoint is lost; a write still streaming at
			// the crash instant never became durable.
			promote(crashes[ci])
			pending = -1
			wall = crashes[ci] + ckpt // restart read
			useful -= float64(done-durable) * stepSec
			done = durable
			ci++
			continue
		}
		wall = end
		useful += stepSec
		done++
		if done%ckptEvery == 0 && done < steps {
			promote(wall)
			if pending >= 0 {
				// Uncovered remainder: the previous write outlived its
				// interval, so the new one stalls until it lands.
				wall = pendEnd
				durable, pending = pending, -1
			}
			pending, pendEnd = done, wall+ckpt
			if !async {
				wall = pendEnd
				durable, pending = done, -1
			}
		}
	}
	return fault.Goodput(useful, wall)
}

// stepClockInjected is StepClock with a fault injector attached: one
// symbolic fwd+bwd step (pft/padded) under compute-scale injection.
// caps, when non-nil, routes with per-expert capacities (the straggler
// mitigation's rebalanced vector; pft only). Besides the wall-clock it
// returns each rank's busy compute time — the observation the rebalance
// feeds on.
func stepClockInjected(m *topology.Machine, cfg moe.Config, world, s int,
	transport string, chunks int, seed uint64, inj *fault.Injector, caps []int) (float64, []float64) {

	c := simrt.NewCluster(m, world, seed)
	c.Net.DisableCongestion = true
	if inj != nil {
		inj.Arm(0, 0)
		c.Inject = inj
	}
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		fwdOpts := moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight,
			SaveForBackward: true, OverlapChunks: chunks, CapacityByExpert: caps}
		bwdOpts := moe.PipelineOpts{OverlapChunks: chunks}
		switch transport {
		case "pft":
			res := moe.PFTForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PFTBackward(r, g, cfg, res.State, nil, nil, bwdOpts)
		case "padded":
			fwdOpts.DropPolicy = moe.DropNegativeThenPosition
			res := moe.PaddedForward(r, g, cfg, s, nil, rt, nil, fwdOpts)
			moe.PaddedBackward(r, g, cfg, res.PaddedState, nil, nil, bwdOpts)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return simrt.MaxClock(ranks), simrt.BusyTimes(ranks)
}

// rbdStepClock measures one RBD training step: a full symbolic forward
// (gate, hierarchical dispatch, expert GEMMs, combine) followed by the
// native hierarchical backward, which reverses the dispatch stages.
func rbdStepClock(m *topology.Machine, cfg moe.Config, world, s int,
	seed uint64, inj *fault.Injector) float64 {

	c := simrt.NewCluster(m, world, seed)
	c.Net.DisableCongestion = true
	if inj != nil {
		inj.Arm(0, 0)
		c.Inject = inj
	}
	g := c.WorldGroup()
	d := rbd.NewDispatcher(c, g, cfg)
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seed + uint64(r.ID))
		rt := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		res := rbd.Forward(r, d, cfg, s, nil, rt, nil, tensor.NewRNG(seed^uint64(r.ID)),
			moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, SaveForBackward: true})
		rbd.Backward(r, d, cfg, res.State, nil, nil, moe.PipelineOpts{})
		return nil
	})
	if err != nil {
		panic(err)
	}
	return simrt.MaxClock(ranks)
}

// AblationFaults runs the fault-tolerance ablation and prints its tables.
func AblationFaults(w io.Writer, opts Options) AblationFaultsResult {
	m := topology.Frontier()
	shape := model.Large()
	ep := 32
	s := shape.SeqLen
	ftSteps := 12
	if opts.Quick {
		ep = 8
		s = 1024
		ftSteps = 6
	}
	cfg := moe.Config{
		NumExperts: shape.NumExperts, TopK: shape.TopK,
		HModel: shape.HModel, HFFN: shape.HFFN,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	res := AblationFaultsResult{Transports: []string{"pft", "padded", "rbd"}}

	// --- Healthy per-step time per transport -------------------------------
	for _, tr := range res.Transports {
		var t float64
		if tr == "rbd" {
			t = rbdStepClock(m, cfg, ep, s, opts.Seed, nil)
		} else {
			t, _ = stepClockInjected(m, cfg, ep, s, tr, 4, opts.Seed, nil, nil)
		}
		res.StepSec = append(res.StepSec, t)
	}

	// Checkpoint cost: all expert parameters (f32) stream off-node at NIC
	// bandwidth — the same model train.DistTrainer.CkptCost applies.
	ckptBytes := int64(cfg.NumExperts) * int64(cfg.HModel) * int64(cfg.HFFN) * 2 * 4
	ckpt := float64(ckptBytes) / m.NodeNICBandwidth

	// --- Goodput vs MTBF (Young/Daly interval per point) -------------------
	res.MTBFxStep = []float64{20, 100, 500, 2500}
	steps := 4000
	if opts.Quick {
		steps = 1000
	}
	header(w, fmt.Sprintf("Ablation: goodput vs MTBF, %s layer, EP=%d (ckpt write %.1fms), blocking vs async writes", shape.Name, ep, ckpt*1e3))
	cols := []string{"MTBF/step(pft)"}
	for _, tr := range res.Transports {
		cols = append(cols, tr, tr+"-async")
	}
	tb := newTable(cols...)
	base := res.StepSec[0]
	for range res.Transports {
		res.Goodput = append(res.Goodput, nil)
		res.GoodputAsync = append(res.GoodputAsync, nil)
	}
	// Average several independent crash schedules per cell: a single
	// Poisson realization is noisy enough to break monotonicity in MTBF.
	const plans = 5
	for _, mx := range res.MTBFxStep {
		mtbf := mx * base
		row := []string{fmt.Sprintf("%.0fx", mx)}
		for ti := range res.Transports {
			st := res.StepSec[ti]
			horizon := float64(steps) * st * 4
			interval := int(math.Round(fault.YoungDaly(ckpt, mtbf) / st))
			// Each mode runs its own optimal interval. Young/Daly balances
			// the blocking stall against replay; async has no stall to
			// balance, so its interval is bandwidth-bound — the shortest
			// one whose steps fully cover the streaming write — which also
			// keeps the mid-write fallback distance small.
			intervalAsync := int(math.Ceil(ckpt / st))
			if intervalAsync < 1 {
				intervalAsync = 1
			}
			var g, ga float64
			for p := 0; p < plans; p++ {
				crashes := fault.PlanCrashes(opts.Seed+uint64(ti)*31+uint64(p)*1e6, ep, horizon, mtbf).CrashTimes()
				g += replayGoodput(st, ckpt, interval, steps, crashes, false)
				ga += replayGoodput(st, ckpt, intervalAsync, steps, crashes, true)
			}
			g /= plans
			ga /= plans
			res.Goodput[ti] = append(res.Goodput[ti], g)
			res.GoodputAsync[ti] = append(res.GoodputAsync[ti], ga)
			row = append(row, fmt.Sprintf("%.3f", g), fmt.Sprintf("%.3f", ga))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  blocking uses the Young/Daly interval sqrt(2*delta*MTBF) per point; async uses the")
	fmt.Fprintln(w, "  bandwidth-bound interval (write time / step time) since its writes stream behind the")
	fmt.Fprintln(w, "  next steps and stall only the uncovered remainder;")
	fmt.Fprintln(w, "  goodput = useful-step time / wall-clock, crashes replayed from seeded Poisson plans")

	// --- Checkpoint-interval sensitivity vs Young/Daly ---------------------
	mtbf := 100 * base
	res.YoungDalySteps = fault.YoungDaly(ckpt, mtbf) / base
	res.CkptSteps = []int{1, 2, 4, 8, 16, 32, 64, 128}
	header(w, fmt.Sprintf("Ablation: checkpoint-interval sensitivity, pft, MTBF=100 steps (Young/Daly optimum %.1f steps)", res.YoungDalySteps))
	tb = newTable("interval (steps)", "goodput")
	for _, iv := range res.CkptSteps {
		var g float64
		for p := 0; p < plans; p++ {
			horizon := float64(steps) * base * 4
			crashes := fault.PlanCrashes(opts.Seed+uint64(p)*1e6, ep, horizon, mtbf).CrashTimes()
			g += replayGoodput(base, ckpt, iv, steps, crashes, false)
		}
		g /= plans
		res.CkptGoodput = append(res.CkptGoodput, g)
		tb.add(fmt.Sprintf("%d", iv), fmt.Sprintf("%.3f", g))
	}
	tb.write(w)
	fmt.Fprintln(w, "  too-frequent checkpoints pay the write cost every step; too-rare ones replay")
	fmt.Fprintln(w, "  long tails after each crash — goodput peaks near the Young/Daly interval")

	// --- Straggler sensitivity per transport -------------------------------
	res.StragglerScale = []float64{1, 1.5, 2, 4}
	header(w, fmt.Sprintf("Ablation: straggler sensitivity (one rank's compute x scale), EP=%d", ep))
	tb = newTable(append([]string{"scale"}, res.Transports...)...)
	for range res.Transports {
		res.StragglerSlowdown = append(res.StragglerSlowdown, nil)
	}
	for _, sc := range res.StragglerScale {
		row := []string{fmt.Sprintf("x%.1f", sc)}
		for ti, tr := range res.Transports {
			var inj *fault.Injector
			if sc != 1 {
				plan, err := fault.ParsePlan(fmt.Sprintf("straggler:r0@s0:x%g", sc))
				if err != nil {
					panic(err)
				}
				inj = fault.NewInjector(plan, ep)
			}
			var t float64
			if tr == "rbd" {
				t = rbdStepClock(m, cfg, ep, s, opts.Seed, inj)
			} else {
				t, _ = stepClockInjected(m, cfg, ep, s, tr, 4, opts.Seed, inj, nil)
			}
			slow := t / res.StepSec[ti]
			res.StragglerSlowdown[ti] = append(res.StragglerSlowdown[ti], slow)
			row = append(row, fmt.Sprintf("%.2fx", slow))
		}
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "  BSP collectives make every rank wait for the slowest; the transport with the")
	fmt.Fprintln(w, "  higher compute fraction inherits more of the straggler's slowdown")

	// --- Numeric trainer: real crash, rollback, elastic shrink -------------
	tcfg := train.DistConfig{
		MoE: moe.Config{NumExperts: 8, TopK: 3, HModel: 12, HFFN: 8,
			CapacityFactor: 1.25, BytesPerElem: 2},
		World: 4, Tokens: 32, LR: 1e-2, Seed: opts.Seed,
		Transport: "pft", Opts: moe.PipelineOpts{OverlapChunks: 2},
	}
	trn, err := train.NewDistTrainer(tcfg)
	if err != nil {
		panic(err)
	}
	plan, err := fault.ParsePlan(fmt.Sprintf("crash:r1@s%d", ftSteps/2))
	if err != nil {
		panic(err)
	}
	res.FT, err = trn.RunFaultTolerant(train.FTOptions{
		Steps: ftSteps, CkptEvery: 3, Plan: plan,
	})
	if err != nil {
		panic(err)
	}
	header(w, "Fault-tolerant numeric trainer (real crash + rollback + elastic shrink)")
	fmt.Fprintf(w, "  %d useful steps, %d recovery, %d replayed, world %d -> %d\n",
		res.FT.Steps, res.FT.Recoveries, res.FT.ReplayedSteps, tcfg.World, res.FT.FinalWorld)
	fmt.Fprintf(w, "  goodput %.3f (useful %.2fms, ckpt %.2fms, lost %.2fms, wall %.2fms)\n",
		res.FT.Goodput, res.FT.UsefulTime*1e3, res.FT.CkptTime*1e3, res.FT.LostTime*1e3, res.FT.WallClock*1e3)

	// --- Spare-pool size: shrink vs regrow after the same crash ------------
	res.SpareSizes = []int{0, 1, 2}
	header(w, "Ablation: hot-spare pool size (same crash; spares promote into the dead slot)")
	tb = newTable("spares", "final world", "promoted", "useful tokens", "goodput")
	for _, sp := range res.SpareSizes {
		trn, err := train.NewDistTrainer(tcfg)
		if err != nil {
			panic(err)
		}
		plan, err := fault.ParsePlan(fmt.Sprintf("crash:r1@s%d,spares:%d", ftSteps/2, sp))
		if err != nil {
			panic(err)
		}
		st, err := trn.RunFaultTolerant(train.FTOptions{
			Steps: ftSteps, CkptEvery: 3, AsyncCkpt: true, Plan: plan,
		})
		if err != nil {
			panic(err)
		}
		res.SpareFT = append(res.SpareFT, st)
		tb.add(fmt.Sprintf("%d", sp), fmt.Sprintf("%d", st.FinalWorld),
			fmt.Sprintf("%d", st.SparesUsed), fmt.Sprintf("%d", st.UsefulTokens),
			fmt.Sprintf("%.3f", st.Goodput))
	}
	tb.write(w)
	fmt.Fprintln(w, "  without spares the crash shrinks the world (and its token throughput) for the")
	fmt.Fprintln(w, "  rest of the run; one promoted spare restores the original world")

	// --- Straggler mitigation on/off ---------------------------------------
	// Runs at the at-scale symbolic tier (Large dims): there the per-expert
	// GEMMs are flops-dominated, so shifting capacity away from the slow rank
	// genuinely moves the simulated step time. (At the numeric toy dims every
	// GEMM sits on the kernel-launch floor and capacity changes are invisible
	// — which is exactly why the trainer-level tests only pin determinism and
	// loss tolerance, not wall-clock.) One observation step measures per-rank
	// Busy compute clocks, RebalanceCapacity turns them into per-expert caps,
	// and a second step runs with the caps applied.
	res.MitigationScale = []float64{1, 2, 4}
	header(w, fmt.Sprintf("Ablation: straggler-aware capacity rebalance (pft, EP=%d, one permanent straggler, bound 0.5)", ep))
	tb = newTable("scale", "step off", "step on", "speedup")
	for _, sc := range res.MitigationScale {
		mkInj := func() *fault.Injector {
			if sc == 1 {
				return nil
			}
			plan, err := fault.ParsePlan(fmt.Sprintf("straggler:r0@s0:x%g", sc))
			if err != nil {
				panic(err)
			}
			return fault.NewInjector(plan, ep)
		}
		wallOff, busy := stepClockInjected(m, cfg, ep, s, "pft", 4, opts.Seed, mkInj(), nil)
		wallOn := wallOff
		if caps := moe.RebalanceCapacity(cfg, s, ep, busy, 0.5); caps != nil {
			wallOn, _ = stepClockInjected(m, cfg, ep, s, "pft", 4, opts.Seed, mkInj(), caps)
		}
		res.WallUnmitigated = append(res.WallUnmitigated, wallOff)
		res.WallMitigated = append(res.WallMitigated, wallOn)
		tb.add(fmt.Sprintf("x%g", sc), fmt.Sprintf("%.2fms", wallOff*1e3),
			fmt.Sprintf("%.2fms", wallOn*1e3), fmt.Sprintf("%.2fx", wallOff/wallOn))
	}
	tb.write(w)
	fmt.Fprintln(w, "  per-rank Busy compute clocks from an observation step shift expert capacity away")
	fmt.Fprintln(w, "  from the slow rank, clamped to +/-bound so the loss stays near uniform routing")

	RecordMetric("abl_faults_pft_goodput_mtbf100", res.Goodput[0][1])
	RecordMetric("abl_faults_pft_async_goodput_mtbf100", res.GoodputAsync[0][1])
	RecordMetric("abl_faults_rbd_goodput_mtbf100", res.Goodput[2][1])
	RecordMetric("abl_faults_youngdaly_steps", res.YoungDalySteps)
	RecordMetric("abl_faults_ft_goodput", res.FT.Goodput)
	RecordMetric("abl_faults_spare1_useful_tokens", float64(res.SpareFT[1].UsefulTokens))
	RecordMetric("abl_faults_mitigation_x4_speedup", res.WallUnmitigated[2]/res.WallMitigated[2])
	RecordMetric("abl_faults_pft_straggler_x4", res.StragglerSlowdown[0][3])
	return res
}
