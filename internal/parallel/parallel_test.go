package parallel

import (
	"fmt"
	"testing"
	"testing/quick"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

func TestPlanValidate(t *testing.T) {
	good := Plan{World: 64, TP: 2, EP: 8, ZeROStage: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Plan{
		{World: 0, TP: 1, EP: 1},
		{World: 64, TP: 3, EP: 8},
		{World: 64, TP: 2, EP: 5},
		{World: 64, TP: 2, EP: 8, ZeROStage: 3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d should be invalid", i)
		}
	}
}

func TestPlanDegrees(t *testing.T) {
	p := Plan{World: 64, TP: 4, EP: 16}
	if p.DP() != 16 || p.ExpertDP() != 4 {
		t.Fatalf("DP=%d ExpertDP=%d", p.DP(), p.ExpertDP())
	}
}

func checkPartition(t *testing.T, name string, groups [][]int, world int) {
	t.Helper()
	seen := make([]bool, world)
	for _, g := range groups {
		for _, r := range g {
			if r < 0 || r >= world || seen[r] {
				t.Fatalf("%s: invalid partition %v", name, groups)
			}
			seen[r] = true
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("%s: rank %d missing", name, r)
		}
	}
}

func TestGroupConstructionsPartitionWorld(t *testing.T) {
	for _, placement := range []Placement{EPFirst, DPFirst} {
		p := Plan{World: 64, TP: 2, EP: 8, Placement: placement}
		checkPartition(t, "TP", p.TPGroups(), 64)
		checkPartition(t, "DP", p.DPGroups(), 64)
		checkPartition(t, "EP", p.EPGroups(), 64)
		checkPartition(t, "ExpertDP", p.ExpertDPGroups(), 64)
	}
}

func TestEPFirstVsDPFirstShape(t *testing.T) {
	// Appendix C.1's 64-GPU example: 8 experts, EP=8, 8 GPUs per node.
	m := topology.Frontier()
	epf := Plan{World: 64, EP: 8, TP: 1, Placement: EPFirst}
	dpf := Plan{World: 64, EP: 8, TP: 1, Placement: DPFirst}

	// EP-first: each EP group fits in one node (all experts co-located).
	for _, g := range epf.EPGroups() {
		node := m.NodeOf(g[0])
		for _, r := range g {
			if m.NodeOf(r) != node {
				t.Fatal("EP-first group must stay within a node")
			}
		}
	}
	// DP-first: each expert-DP group (replicas of the same experts) fits
	// in one node.
	for _, g := range dpf.ExpertDPGroups() {
		node := m.NodeOf(g[0])
		for _, r := range g {
			if m.NodeOf(r) != node {
				t.Fatal("DP-first replica group must stay within a node")
			}
		}
	}
	// And DP-first EP groups must span nodes (one expert set across the
	// machine).
	spansNodes := false
	for _, g := range dpf.EPGroups() {
		for _, r := range g[1:] {
			if m.NodeOf(r) != m.NodeOf(g[0]) {
				spansNodes = true
			}
		}
	}
	if !spansNodes {
		t.Fatal("DP-first EP groups should span nodes")
	}
}

func TestGroupOf(t *testing.T) {
	p := Plan{World: 16, TP: 2, EP: 4}
	g := GroupOf(p.EPGroups(), 5)
	found := false
	for _, r := range g {
		if r == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("GroupOf returned %v without rank 5", g)
	}
	if GroupOf(p.EPGroups(), 99) != nil {
		t.Fatal("GroupOf of absent rank must be nil")
	}
}

func TestSSMBShardCoversSequence(t *testing.T) {
	for _, tc := range []struct{ s, tp int }{{16, 4}, {17, 4}, {5, 8}, {4096, 2}} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.tp; i++ {
			lo, hi := SSMBShard(tc.s, i, tc.tp)
			if lo != prevHi {
				t.Fatalf("s=%d tp=%d: shard %d starts at %d, want %d", tc.s, tc.tp, i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.s {
			t.Fatalf("s=%d tp=%d: shards cover %d", tc.s, tc.tp, covered)
		}
	}
}

func TestQuickSSMBShardBalanced(t *testing.T) {
	f := func(sRaw, tpRaw uint8) bool {
		s, tp := int(sRaw)+1, int(tpRaw)%8+1
		minSz, maxSz := s, 0
		for i := 0; i < tp; i++ {
			lo, hi := SSMBShard(s, i, tp)
			if hi-lo < minSz {
				minSz = hi - lo
			}
			if hi-lo > maxSz {
				maxSz = hi - lo
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// expertWeightsFor returns deterministic weights for global expert e.
func expertWeightsFor(e, h, f int) (*tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(uint64(3000 + e))
	return tensor.Randn(rng, 0.05, h, f), tensor.Randn(rng, 0.05, f, h)
}

// TestSSMBForwardMatchesUnshardedReference runs an MoE block under SSMB
// (TP=4 ranks sharing one duplicated sequence, acting as EP=4) and checks
// the all-gathered output equals the direct per-token reference — the
// correctness half of §4.3's claim that MoE ops are token-wise.
func TestSSMBForwardMatchesUnshardedReference(t *testing.T) {
	const (
		world = 4
		s     = 20
	)
	cfg := moe.Config{NumExperts: 8, TopK: 3, HModel: 10, HFFN: 6, CapacityFactor: 100, BytesPerElem: 2}
	c := simrt.NewCluster(topology.Frontier(), world, 5)
	c.Net.DisableCongestion = true
	g := c.WorldGroup() // acts as both the TP group and the EP group
	epr := cfg.NumExperts / world

	// The sequence and its routing are shared by all TP ranks
	// (tensor-parallel duplication).
	seqRNG := tensor.NewRNG(2024)
	x := tensor.Randn(seqRNG, 1, s, cfg.HModel)
	routing := moe.SyntheticRouting(seqRNG, s, cfg.NumExperts, cfg.TopK, 0.6)

	// Reference: full-sequence per-token expert computation.
	fullPFT := moe.BuildPFT(routing, cfg.NumExperts, 0, moe.DropByCapacityWeight)
	want := tensor.New(s, cfg.HModel)
	for i := range fullPFT.TokenIDs {
		tok, e, w := fullPFT.TokenIDs[i], fullPFT.ExpertIDs[i], fullPFT.CombineWeights[i]
		w1, w2 := expertWeightsFor(e, cfg.HModel, cfg.HFFN)
		xi := tensor.FromSlice(x.Row(tok), 1, cfg.HModel)
		hid := tensor.MatMul(xi, w1)
		tensor.GeLU(hid)
		y := tensor.MatMul(hid, w2)
		dst := want.Row(tok)
		for j, v := range y.Data {
			dst[j] += w * v
		}
	}

	err := c.Run(func(r *simrt.Rank) error {
		params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
		me := g.IndexOf(r.ID)
		for le := 0; le < epr; le++ {
			params.W1[le], params.W2[le] = expertWeightsFor(me*epr+le, cfg.HModel, cfg.HFFN)
		}
		out := SSMBForward(r, g, s, cfg.HModel, cfg.BytesPerElem, x.Clone(),
			func(lo, hi int, shard *tensor.Tensor) *tensor.Tensor {
				shardRouting := moe.Routing{
					S:          hi - lo,
					TopExperts: routing.TopExperts[lo:hi],
					Weights:    routing.Weights[lo:hi],
					Logits:     routing.Logits[lo:hi],
				}
				res := moe.PFTForward(r, g, cfg, hi-lo, shard, shardRouting, params,
					moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropByCapacityWeight})
				return res.Output
			})
		if !out.Equal(want, 1e-3) {
			return fmt.Errorf("rank %d: SSMB output differs from unsharded reference", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSSMBReducesActivationMemory checks the memory half of §4.3: with
// sequence sharding, the per-rank A_dispatch/A_combine footprint drops by
// the TP factor.
func TestSSMBReducesActivationMemory(t *testing.T) {
	cfg := moe.Config{NumExperts: 8, TopK: 4, HModel: 256, HFFN: 64, CapacityFactor: 100, BytesPerElem: 2}
	const s = 512
	run := func(ssmb bool) int64 {
		c := simrt.NewCluster(topology.Frontier(), 4, 5)
		c.Net.DisableCongestion = true
		g := c.WorldGroup()
		err := c.Run(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(77) // same routing on all ranks (TP duplication)
			routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
			body := func(lo, hi int) {
				shardRouting := moe.Routing{
					S:          hi - lo,
					TopExperts: routing.TopExperts[lo:hi],
					Weights:    routing.Weights[lo:hi],
					Logits:     routing.Logits[lo:hi],
				}
				moe.PFTForward(r, g, cfg, hi-lo, nil, shardRouting, nil,
					moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, RetainActivations: true})
			}
			if ssmb {
				SSMBForward(r, g, s, cfg.HModel, cfg.BytesPerElem, nil,
					func(lo, hi int, _ *tensor.Tensor) *tensor.Tensor {
						body(lo, hi)
						return nil
					})
			} else {
				body(0, s)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.PeakMemory()
	}
	with := run(true)
	without := run(false)
	if float64(with) > 0.45*float64(without) {
		t.Fatalf("SSMB peak %d should be well under half of unsharded %d (TP=4)", with, without)
	}
}

// TestSSMBBackwardMatchesUnshardedGradient completes the Fig. 8
// round-trip: SSMB forward + backward must yield the same input gradient
// as the unsharded pipeline. The MoE block's per-shard backward runs the
// full distributed PFTBackward.
func TestSSMBBackwardMatchesUnshardedGradient(t *testing.T) {
	const (
		world = 4
		s     = 16
	)
	cfg := moe.Config{NumExperts: 8, TopK: 3, HModel: 10, HFFN: 6, CapacityFactor: 100, BytesPerElem: 2}
	c := simrt.NewCluster(topology.Frontier(), world, 5)
	c.Net.DisableCongestion = true
	g := c.WorldGroup()
	epr := cfg.NumExperts / world

	seqRNG := tensor.NewRNG(808)
	x := tensor.Randn(seqRNG, 1, s, cfg.HModel)
	routing := moe.SyntheticRouting(seqRNG, s, cfg.NumExperts, cfg.TopK, 0.6)

	dFullGrads := make([]*tensor.Tensor, world)
	err := c.Run(func(r *simrt.Rank) error {
		params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
		me := g.IndexOf(r.ID)
		for le := 0; le < epr; le++ {
			params.W1[le], params.W2[le] = expertWeightsFor(me*epr+le, cfg.HModel, cfg.HFFN)
		}
		// Forward with shard-state capture.
		states := map[int]*moe.PFTFwdState{}
		SSMBForward(r, g, s, cfg.HModel, cfg.BytesPerElem, x.Clone(),
			func(lo, hi int, shard *tensor.Tensor) *tensor.Tensor {
				shardRouting := moe.Routing{
					S: hi - lo, TopExperts: routing.TopExperts[lo:hi],
					Weights: routing.Weights[lo:hi], Logits: routing.Logits[lo:hi],
				}
				res := moe.PFTForward(r, g, cfg, hi-lo, shard, shardRouting, params,
					moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropByCapacityWeight, SaveForBackward: true})
				states[lo] = res.State
				return res.Output
			})
		// Backward with a fixed upstream gradient.
		dOut := tensor.New(s, cfg.HModel)
		for i := range dOut.Data {
			dOut.Data[i] = float32(i%7) * 0.1
		}
		dX := SSMBBackward(r, g, s, cfg.HModel, cfg.BytesPerElem, dOut,
			func(lo, hi int, dShard *tensor.Tensor) *tensor.Tensor {
				return moe.PFTBackward(r, g, cfg, states[lo], dShard, params,
					moe.PipelineOpts{Numeric: true}).DX
			})
		dFullGrads[r.ID] = dX
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All TP ranks must agree on the reconstructed full gradient.
	for id := 1; id < world; id++ {
		if !dFullGrads[id].Equal(dFullGrads[0], 1e-4) {
			t.Fatalf("rank %d's gathered gradient differs from rank 0's", id)
		}
	}
	if dFullGrads[0].MaxAbs() == 0 {
		t.Fatal("gradient is identically zero")
	}
}
