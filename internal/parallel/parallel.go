// Package parallel implements X-MoE's hybrid parallelism planning (paper
// §4.3 and Appendix C): construction of tensor-parallel (TP),
// data-parallel (DP), expert-parallel (EP) and expert-data-parallel
// process groups over a machine; EP-first vs DP-first placement (App.
// C.1); and Sequence-Sharded MoE Blocks (SSMB), which shard the MoE
// block's input sequence across the TP ranks to attack the activation
// memory bottleneck that TP and ZeRO-DP cannot reduce.
package parallel

import (
	"fmt"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Placement selects how EP and expert-DP groups map onto physical ranks
// (Appendix C.1).
type Placement int

const (
	// EPFirst packs each EP group onto consecutive ranks (locality-aware
	// EP: experts co-located, replicas spread across nodes). This is the
	// DeepSpeed-MoE default.
	EPFirst Placement = iota
	// DPFirst strides EP groups across the machine so that all replicas
	// of an expert are co-located (replica-aware DP: gradient sync stays
	// intra-node). X-MoE favours this for large MoEs on Frontier.
	DPFirst
)

// String names the placement.
func (p Placement) String() string {
	if p == DPFirst {
		return "dp-first"
	}
	return "ep-first"
}

// Plan describes a hybrid parallel layout over World ranks: dense blocks
// run TP x DP; MoE blocks run EP with experts replicated World/EP times.
type Plan struct {
	// World is the total rank count.
	World int
	// TP is the tensor-parallel degree of dense (non-MoE) blocks.
	TP int
	// EP is the expert-parallel group size.
	EP int
	// Placement selects EP-first or DP-first rank assignment for the
	// MoE groups.
	Placement Placement
	// SSMB enables sequence-sharded MoE blocks: the MoE block processes
	// 1/TP of the sequence per rank and all-gathers afterwards.
	SSMB bool
	// ZeROStage is the optimizer-state sharding stage (1 or 2).
	ZeROStage int
}

// DP returns the dense data-parallel degree World/TP.
func (p Plan) DP() int { return p.World / p.TP }

// ExpertDP returns the expert replication degree World/EP.
func (p Plan) ExpertDP() int { return p.World / p.EP }

// Validate checks the plan's divisibility requirements.
func (p Plan) Validate() error {
	switch {
	case p.World <= 0:
		return fmt.Errorf("parallel: world %d", p.World)
	case p.TP <= 0 || p.World%p.TP != 0:
		return fmt.Errorf("parallel: TP %d does not divide world %d", p.TP, p.World)
	case p.EP <= 0 || p.World%p.EP != 0:
		return fmt.Errorf("parallel: EP %d does not divide world %d", p.EP, p.World)
	case p.ZeROStage < 0 || p.ZeROStage > 2:
		return fmt.Errorf("parallel: ZeRO stage %d unsupported", p.ZeROStage)
	case p.SSMB && p.TP < 1:
		return fmt.Errorf("parallel: SSMB requires TP >= 1")
	}
	return nil
}

// TPGroups returns the tensor-parallel groups: consecutive blocks of TP
// ranks (standard Megatron layout keeps TP groups within a node).
func (p Plan) TPGroups() [][]int {
	return consecutiveGroups(p.World, p.TP)
}

// DPGroups returns the dense data-parallel groups: ranks at the same TP
// position across TP groups.
func (p Plan) DPGroups() [][]int {
	return stridedGroups(p.World, p.DP(), p.TP)
}

// EPGroups returns the expert-parallel groups under the plan's placement.
func (p Plan) EPGroups() [][]int {
	if p.Placement == DPFirst {
		return stridedGroups(p.World, p.EP, p.ExpertDP())
	}
	return consecutiveGroups(p.World, p.EP)
}

// ExpertDPGroups returns the expert-data-parallel groups (ranks holding
// replicas of the same experts), the communicator for expert gradient
// synchronisation.
func (p Plan) ExpertDPGroups() [][]int {
	if p.Placement == DPFirst {
		return consecutiveGroups(p.World, p.ExpertDP())
	}
	return stridedGroups(p.World, p.ExpertDP(), p.EP)
}

// GroupOf returns the group in groups containing rank, or nil.
func GroupOf(groups [][]int, rank int) []int {
	for _, g := range groups {
		for _, r := range g {
			if r == rank {
				return g
			}
		}
	}
	return nil
}

// consecutiveGroups partitions [0,world) into world/size blocks of
// consecutive ranks.
func consecutiveGroups(world, size int) [][]int {
	n := world / size
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		g := make([]int, size)
		for j := range g {
			g[j] = i*size + j
		}
		out[i] = g
	}
	return out
}

// stridedGroups partitions [0,world) into groups of the given size whose
// members are stride apart: group i = {i, i+stride, i+2*stride, ...}.
func stridedGroups(world, size, stride int) [][]int {
	n := world / size
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		g := make([]int, size)
		for j := range g {
			g[j] = i + j*stride
		}
		out[i] = g
	}
	return out
}

// SSMBShard returns the [lo, hi) token range of the full s-token sequence
// that TP-member tpIdx (of tpSize) retains inside the MoE block (paper
// Fig. 8 step 1: "drop"). Remainder tokens go to the leading shards.
func SSMBShard(s, tpIdx, tpSize int) (lo, hi int) {
	base := s / tpSize
	rem := s % tpSize
	lo = tpIdx*base + minInt(tpIdx, rem)
	size := base
	if tpIdx < rem {
		size++
	}
	return lo, lo + size
}

// SSMBForward wraps an MoE-block body with sequence sharding: rank r
// (member of tpGroup, which duplicates the s-token input x across its TP
// ranks) drops to its shard, runs inner on the shard, and all-gathers the
// shard outputs back into the full [s, h] sequence (paper Fig. 8 steps
// 1-3). In symbolic mode x and the inner result may be nil; the all-gather
// still charges the modeled time.
func SSMBForward(r *simrt.Rank, tpGroup *simrt.Group, s, h, elemBytes int,
	x *tensor.Tensor, inner func(shardLo, shardHi int, shard *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {

	tpIdx := tpGroup.IndexOf(r.ID)
	lo, hi := SSMBShard(s, tpIdx, tpGroup.Size())

	var shard *tensor.Tensor
	if x != nil {
		shard = tensor.FromSlice(x.Data[lo*h:hi*h], hi-lo, h)
	}
	out := inner(lo, hi, shard)

	part := simrt.Part{Bytes: int64(hi-lo) * int64(h) * int64(elemBytes)}
	if out != nil {
		part.Data = out.Data
	}
	parts := r.AllGather(tpGroup, "ssmb_allgather", part)

	if x == nil {
		return nil
	}
	full := tensor.New(s, h)
	off := 0
	for _, p := range parts {
		copy(full.Data[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
	return full
}

// SSMBBackward reverses SSMBForward (paper Fig. 8, backward pass): it
// drops the full output gradient to this rank's retained shard, runs the
// MoE block's backward on the shard (inner returns the shard's input
// gradient), and all-gathers the shard gradients to reconstruct the full
// input gradient expected by the preceding TP block.
func SSMBBackward(r *simrt.Rank, tpGroup *simrt.Group, s, h, elemBytes int,
	dFull *tensor.Tensor, inner func(shardLo, shardHi int, dShard *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {

	tpIdx := tpGroup.IndexOf(r.ID)
	lo, hi := SSMBShard(s, tpIdx, tpGroup.Size())

	var dShard *tensor.Tensor
	if dFull != nil {
		dShard = tensor.FromSlice(dFull.Data[lo*h:hi*h], hi-lo, h)
	}
	dIn := inner(lo, hi, dShard)

	part := simrt.Part{Bytes: int64(hi-lo) * int64(h) * int64(elemBytes)}
	if dIn != nil {
		part.Data = dIn.Data
	}
	parts := r.AllGather(tpGroup, "ssmb_bwd_allgather", part)

	if dFull == nil {
		return nil
	}
	full := tensor.New(s, h)
	off := 0
	for _, p := range parts {
		copy(full.Data[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
	return full
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
