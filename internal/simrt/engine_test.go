package simrt_test

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"xmoe/internal/devent"
	"xmoe/internal/simrt"
	"xmoe/internal/topology"
)

// eventCluster builds a cluster running on the event engine over a rail
// graph, with an optional recorder capturing every collective's schedule.
func eventCluster(n int, record func(devent.CollectiveLog)) (*simrt.Cluster, *devent.Engine) {
	m := topology.Frontier()
	c := simrt.NewCluster(m, n, 1)
	c.Net.DisableCongestion = true
	eng := devent.New(topology.RailGraph(m, n, 0))
	if record != nil {
		eng.SetRecorder(record)
	}
	c.Engine = eng
	return c, eng
}

// canonical renders a collective log deterministically for comparison:
// bit-identical schedules produce identical strings (%v prints float64s
// with a bijective shortest representation).
func canonical(logs []devent.CollectiveLog) []string {
	out := make([]string, len(logs))
	for i, l := range logs {
		out[i] = fmt.Sprintf("%v", l)
	}
	sort.Strings(out)
	return out
}

// Two identical seeds driving concurrent collectives on disjoint groups
// must produce bit-identical event logs and final rank clocks. Runs under
// -race via make race-fast, so goroutine interleaving is actively shaken.
func TestConcurrentCollectivesDeterministic(t *testing.T) {
	const n = 16
	run := func() ([]string, []float64) {
		var mu sync.Mutex
		var logs []devent.CollectiveLog
		c, _ := eventCluster(n, func(l devent.CollectiveLog) {
			mu.Lock()
			logs = append(logs, l)
			mu.Unlock()
		})
		lo := c.NewGroup([]int{0, 1, 2, 3, 4, 5, 6, 7})
		hi := c.NewGroup([]int{8, 9, 10, 11, 12, 13, 14, 15})
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			g := lo
			if r.ID >= 8 {
				g = hi
			}
			send := make([]simrt.Part, g.Size())
			for j := range send {
				send[j] = simrt.Part{Bytes: int64((r.ID+j)%5+1) << 16}
			}
			r.AlltoAllV(g, "a2av", send)
			r.AllReduce(g, "allreduce", nil, 1<<20)
			r.Barrier(g)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		clocks := make([]float64, n)
		for i, r := range ranks {
			clocks[i] = r.Clock
		}
		return canonical(logs), clocks
	}

	logsA, clocksA := run()
	logsB, clocksB := run()
	if len(logsA) == 0 {
		t.Fatal("no collective logs recorded")
	}
	if len(logsA) != len(logsB) {
		t.Fatalf("log count differs: %d vs %d", len(logsA), len(logsB))
	}
	for i := range logsA {
		if logsA[i] != logsB[i] {
			t.Fatalf("event log %d differs between identical runs:\n%s\nvs\n%s", i, logsA[i], logsB[i])
		}
	}
	for i := range clocksA {
		if math.Float64bits(clocksA[i]) != math.Float64bits(clocksB[i]) {
			t.Fatalf("rank %d final clock differs: %.17g vs %.17g", i, clocksA[i], clocksB[i])
		}
	}
}

// The selected engine must be stamped on every rank's trace.
func TestEngineTraceMark(t *testing.T) {
	m := topology.Frontier()
	c := simrt.NewCluster(m, 8, 1)
	c.Net.DisableCongestion = true
	ranks, err := c.RunCollect(func(r *simrt.Rank) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		if got := r.Trace.MarkCount("engine:analytic"); got != 1 {
			t.Fatalf("rank %d: engine:analytic marks = %d, want 1", r.ID, got)
		}
	}

	c2, _ := eventCluster(8, nil)
	ranks, err = c2.RunCollect(func(r *simrt.Rank) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		if got := r.Trace.MarkCount("engine:event:rail"); got != 1 {
			t.Fatalf("rank %d: engine:event:rail marks = %d, want 1", r.ID, got)
		}
	}
}

// CommHandle overlap accounting must hold unchanged under the event
// engine: waiting after independent compute charges only the uncovered
// communication remainder.
func TestCommHandleOverlapUnderEventEngine(t *testing.T) {
	const n = 16
	c, eng := eventCluster(n, nil)
	world := c.WorldGroup()

	const bpp = int64(1 << 20)
	send := make([][]int64, n)
	for i := range send {
		send[i] = make([]int64, n)
		for j := range send[i] {
			if i != j {
				send[i][j] = bpp
			}
		}
	}
	comm := eng.AlltoAllV(ranksOfN(n), send).Seconds
	compute := comm / 2 // partially covered: remainder must be charged

	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		parts := make([]simrt.Part, n)
		for j := range parts {
			if j != r.ID {
				parts[j] = simrt.Part{Bytes: bpp}
			}
		}
		h := r.AlltoAllVAsync(world, "a2av-async", parts)
		r.Compute("gemm", compute)
		h.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := comm // max(comm, compute) with compute < comm
	for _, r := range ranks {
		if math.Abs(r.Clock-want) > 1e-12 {
			t.Fatalf("rank %d clock %.15g, want overlapped %.15g", r.ID, r.Clock, want)
		}
	}
}

// Cluster.SetLinkDerate must reach the pluggable engine, not just the
// analytic Net.
func TestSetLinkDerateReachesEngine(t *testing.T) {
	const n = 16
	c, _ := eventCluster(n, nil)
	world := c.WorldGroup()
	step := func() float64 {
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			send := make([]simrt.Part, n)
			for j := range send {
				if j != r.ID {
					send[j] = simrt.Part{Bytes: 1 << 20}
				}
			}
			r.AlltoAllV(world, "a2av", send)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return simrt.MaxClock(ranks)
	}
	healthy := step()
	c.SetLinkDerate(map[topology.LinkClass]float64{topology.LinkInterNode: 4})
	derated := step()
	c.SetLinkDerate(nil)
	if derated <= healthy {
		t.Fatalf("derated step %.6g not slower than healthy %.6g", derated, healthy)
	}
	if again := step(); again != healthy {
		t.Fatalf("after clearing derate: %.15g, want %.15g", again, healthy)
	}
}

func ranksOfN(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
