package simrt

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"xmoe/internal/topology"
)

func testCluster(n int) *Cluster {
	c := NewCluster(topology.Frontier(), n, 42)
	c.Net.DisableCongestion = true
	return c
}

func TestRunExecutesEveryRank(t *testing.T) {
	c := testCluster(16)
	var count int64
	if err := c.Run(func(r *Rank) error {
		atomic.AddInt64(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Fatalf("ran %d ranks, want 16", count)
	}
}

func TestRunCollectsErrors(t *testing.T) {
	c := testCluster(4)
	sentinel := errors.New("rank 2 failed")
	err := c.Run(func(r *Rank) error {
		if r.ID == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic should surface as error")
	}
}

func TestMemTracker(t *testing.T) {
	var m MemTracker
	m.Alloc("a", 100)
	m.Alloc("b", 50)
	if m.Current() != 150 || m.Peak() != 150 {
		t.Fatalf("cur/peak = %d/%d", m.Current(), m.Peak())
	}
	m.Free("a", 100)
	if m.Current() != 50 || m.Peak() != 150 {
		t.Fatalf("after free cur/peak = %d/%d", m.Current(), m.Peak())
	}
	m.Alloc("b", 10)
	if m.ByTag()["b"] != 60 {
		t.Fatalf("ByTag[b] = %d", m.ByTag()["b"])
	}
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDeviceOOM(t *testing.T) {
	c := testCluster(1)
	d := c.Device(0)
	d.Mem.Alloc("big", d.Profile.MemBytes+1)
	if !d.OOM() {
		t.Fatal("allocation past capacity must flag OOM")
	}
	if !c.AnyOOM() {
		t.Fatal("cluster must see the OOM")
	}
	c.ResetMemory()
	if c.AnyOOM() {
		t.Fatal("reset must clear OOM")
	}
}

func TestComputeAdvancesClockAndTrace(t *testing.T) {
	c := testCluster(1)
	_ = c.Run(func(r *Rank) error {
		r.Compute("work", 0.25)
		r.Compute("work", 0.25)
		if r.Clock != 0.5 {
			return fmt.Errorf("clock = %f", r.Clock)
		}
		if got := r.Trace.Total("work"); got != 0.5 {
			return fmt.Errorf("trace total = %f", got)
		}
		return nil
	})
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *Rank) error {
		r.Compute("stagger", float64(r.ID)*0.1)
		r.Barrier(g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the barrier every clock must be >= the slowest entrant (0.3).
	for _, r := range ranks {
		if r.Clock < 0.3 {
			t.Fatalf("rank %d clock %.3f below barrier max 0.3", r.ID, r.Clock)
		}
	}
	lead := MaxClock(ranks)
	for _, r := range ranks {
		if lead-r.Clock > 1e-9 {
			t.Fatalf("clocks diverge after barrier: %f vs %f", r.Clock, lead)
		}
	}
}

func TestAlltoAllVMovesData(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		send := make([]Part, 4)
		for j := range send {
			// rank i sends value 100*i+j to rank j
			send[j] = Part{Data: []float32{float32(100*r.ID + j)}, Bytes: 4}
		}
		recv := r.AlltoAllV(g, "a2a", send)
		for s, p := range recv {
			want := float32(100*s + r.ID)
			if len(p.Data) != 1 || p.Data[0] != want {
				return fmt.Errorf("rank %d recv from %d = %v, want %v", r.ID, s, p.Data, want)
			}
		}
		if r.Clock <= 0 {
			return fmt.Errorf("a2av charged no time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllVSymbolicParts(t *testing.T) {
	c := testCluster(8)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		send := make([]Part, 8)
		for j := range send {
			send[j] = Part{Bytes: 1 << 20}
		}
		recv := r.AlltoAllV(g, "a2a", send)
		for _, p := range recv {
			if p.Bytes != 1<<20 || p.Data != nil {
				return fmt.Errorf("symbolic part corrupted: %+v", p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSums(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		sum := r.AllReduce(g, "ar", []float32{float32(r.ID), 1}, 8)
		if sum[0] != 6 || sum[1] != 4 { // 0+1+2+3, 1*4
			return fmt.Errorf("allreduce sum = %v", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherCollectsInOrder(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		parts := r.AllGather(g, "ag", Part{Data: []float32{float32(r.ID)}, Bytes: 4})
		for i, p := range parts {
			if p.Data[0] != float32(i) {
				return fmt.Errorf("allgather[%d] = %v", i, p.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		p := r.Broadcast(g, "bc", 2, Part{Data: []float32{float32(r.ID)}, Bytes: 4})
		if p.Data[0] != 2 {
			return fmt.Errorf("broadcast got %v, want root 2's value", p.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeCounts(t *testing.T) {
	c := testCluster(3)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		counts := make([]int64, 3)
		for j := range counts {
			counts[j] = int64(10*r.ID + j)
		}
		got := r.ExchangeCounts(g, "counts", counts)
		for s := range got {
			want := int64(10*s + r.ID)
			if got[s] != want {
				return fmt.Errorf("rank %d counts from %d = %d, want %d", r.ID, s, got[s], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// evenParts builds an even all-to-all send list of bytes per pair (self
// included, matching the byte matrices used below).
func evenParts(p int, bytes int64) []Part {
	send := make([]Part, p)
	for j := range send {
		send[j] = Part{Bytes: bytes}
	}
	return send
}

// evenMatrix is the byte matrix equivalent of evenParts.
func evenMatrix(p int, bytes int64) [][]int64 {
	m := make([][]int64, p)
	for i := range m {
		m[i] = make([]int64, p)
		for j := range m[i] {
			m[i][j] = bytes
		}
	}
	return m
}

func TestAsyncWaitChargesOnlyUncoveredRemainder(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 4 << 20
	cost := c.Net.AlltoAllV(g.Ranks(), evenMatrix(4, bytes)).Seconds
	if cost <= 0 {
		t.Fatal("test needs a non-trivial collective cost")
	}
	err := c.Run(func(r *Rank) error {
		// Fully covered: compute for 3x the collective's duration before
		// waiting — the wait must charge nothing.
		h := r.AlltoAllVAsync(g, "a2a", evenParts(4, bytes))
		r.Compute("gemm", 3*cost)
		before := r.Clock
		h.Wait()
		if r.Clock != before {
			return fmt.Errorf("covered wait charged %.9fs", r.Clock-before)
		}
		if got := r.Trace.OverlappedTotal("a2a"); got != cost {
			return fmt.Errorf("overlapped span %.9f, want full cost %.9f", got, cost)
		}
		if got := r.Trace.Total("a2a"); got != 0 {
			return fmt.Errorf("clock-charged a2a %.9f, want 0 (fully hidden)", got)
		}

		// Partially covered: compute for half the duration — the wait
		// must charge exactly the other half.
		start := r.Clock
		h2 := r.AlltoAllVAsync(g, "a2a2", evenParts(4, bytes))
		r.Compute("gemm", cost/2)
		h2.Wait()
		// All ranks entered with equal clocks, so the collective spans
		// [start, start+cost] and the rank computed to start+cost/2.
		const eps = 1e-12
		if got, want := r.Clock-start, cost; got < want-eps || got > want+eps {
			return fmt.Errorf("partially covered total %.15f, want %.15f", got, want)
		}
		if got, want := r.Trace.Total("a2a2"), cost/2; got < want-eps || got > want+eps {
			return fmt.Errorf("uncovered charge %.15f, want %.15f", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncImmediateWaitMatchesBlocking(t *testing.T) {
	const bytes = 1 << 20
	run := func(async bool) float64 {
		c := testCluster(4)
		g := c.WorldGroup()
		ranks, err := c.RunCollect(func(r *Rank) error {
			r.Compute("stagger", float64(r.ID)*1e-3)
			send := make([]Part, 4)
			for j := range send {
				send[j] = Part{Data: []float32{float32(100*r.ID + j)}, Bytes: bytes}
			}
			var recv []Part
			if async {
				recv = r.AlltoAllVAsync(g, "a2a", send).Wait()
			} else {
				recv = r.AlltoAllV(g, "a2a", send)
			}
			for s, p := range recv {
				if want := float32(100*s + r.ID); p.Data[0] != want {
					return fmt.Errorf("recv from %d = %v, want %v", s, p.Data, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return MaxClock(ranks)
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("async+immediate-wait wall clock %.9f != blocking %.9f", a, b)
	}
}

// TestAsyncCommStreamSerialises pins the per-rank comm-stream model: two
// in-flight collectives do not overlap each other, so waiting on both
// costs the sum of their durations, not the max.
func TestAsyncCommStreamSerialises(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 4 << 20
	cost := c.Net.AlltoAllV(g.Ranks(), evenMatrix(4, bytes)).Seconds
	err := c.Run(func(r *Rank) error {
		h1 := r.AlltoAllVAsync(g, "a2a_1", evenParts(4, bytes))
		h2 := r.AlltoAllVAsync(g, "a2a_2", evenParts(4, bytes))
		h1.Wait()
		h2.Wait()
		if got, want := r.Clock, 2*cost; got != want {
			return fmt.Errorf("two serialised collectives took %.9f, want %.9f", got, want)
		}
		if !h1.Done() || !h2.Done() {
			return fmt.Errorf("handles must report done after wait")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlockingCollectiveDrainsCommStream pins the comm-stream contract
// for blocking calls too: a blocking collective issued while an async one
// is in flight serialises behind it instead of overlapping for free.
func TestBlockingCollectiveDrainsCommStream(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 4 << 20
	a2aCost := c.Net.AlltoAllV(g.Ranks(), evenMatrix(4, bytes)).Seconds
	arCost := c.Net.AllReduce(g.Ranks(), bytes).Seconds
	err := c.Run(func(r *Rank) error {
		h := r.AlltoAllVAsync(g, "a2a", evenParts(4, bytes))
		r.AllReduce(g, "ar", nil, bytes)
		if got, want := r.Clock, a2aCost+arCost; got < want-1e-12 {
			return fmt.Errorf("blocking allreduce overlapped in-flight a2a: clock %.9f, want >= %.9f", got, want)
		}
		before := r.Clock
		h.Wait() // already complete: the allreduce drained the stream first
		if r.Clock != before {
			return fmt.Errorf("wait after drain charged %.9f", r.Clock-before)
		}
		// The drained stream time must be attributed to a span: the
		// clock-charged breakdown still sums to wall-clock time.
		var sum float64
		for _, d := range r.Trace.Breakdown() {
			sum += d
		}
		if sum < r.Clock-1e-12 || sum > r.Clock+1e-12 {
			return fmt.Errorf("breakdown sums to %.9f, wall-clock is %.9f", sum, r.Clock)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeCountsSteadyStateAllocs pins the metadata exchange's
// rank-side allocation behaviour: steady-state iterations must stay below
// a few amortised allocations per rank per call (the rendezvous machinery
// and the reducer's shared transpose), where the pre-fix implementation
// paid 2 slices plus one interface boxing per destination per rank.
func TestExchangeCountsSteadyStateAllocs(t *testing.T) {
	const world, iters = 4, 64
	c := testCluster(world)
	g := c.WorldGroup()
	body := func(n int) func() {
		return func() {
			err := c.Run(func(r *Rank) error {
				counts := make([]int64, world)
				for j := range counts {
					counts[j] = int64(1000*r.ID + j) // > 255: would box per call
				}
				for i := 0; i < n; i++ {
					got := r.ExchangeCounts(g, "counts", counts)
					if got[0] != int64(r.ID) && got[0] != 0 {
						// touch the result so it cannot be optimised away
						_ = got
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}
	}
	base := testing.AllocsPerRun(10, body(0))
	loaded := testing.AllocsPerRun(10, body(iters))
	perCall := (loaded - base) / (world * iters)
	if perCall > 5 {
		t.Fatalf("ExchangeCounts allocates %.2f allocs per rank-call in steady state, want <= 5", perCall)
	}
}

// TestAsyncDoubleWaitIsIdempotent pins the documented Wait contract: the
// second Wait charges nothing, records nothing, and returns the same
// received parts.
func TestAsyncDoubleWaitIsIdempotent(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 1 << 20
	err := c.Run(func(r *Rank) error {
		send := make([]Part, 4)
		for j := range send {
			send[j] = Part{Data: []float32{float32(10*r.ID + j)}, Bytes: bytes}
		}
		h := r.AlltoAllVAsync(g, "a2a", send)
		first := h.Wait()
		clock := r.Clock
		charged := r.Trace.Total("a2a")
		overlapped := r.Trace.OverlappedTotal("a2a")
		second := h.Wait()
		if r.Clock != clock {
			return fmt.Errorf("second Wait charged %.9fs", r.Clock-clock)
		}
		if got := r.Trace.Total("a2a"); got != charged {
			return fmt.Errorf("second Wait recorded an extra span: %.9f vs %.9f", got, charged)
		}
		if got := r.Trace.OverlappedTotal("a2a"); got != overlapped {
			return fmt.Errorf("second Wait recorded an extra overlapped span")
		}
		if len(first) != len(second) {
			return fmt.Errorf("waits returned different part counts")
		}
		for i := range first {
			if first[i].Data[0] != second[i].Data[0] {
				return fmt.Errorf("waits returned different payloads at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunReportsLeakedHandles pins the teardown check: a rank that issues
// an async collective and returns without waiting it must surface an
// error naming the dropped collective instead of silently losing the
// synchronisation.
func TestRunReportsLeakedHandles(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		h := r.AlltoAllVAsync(g, "leaky_a2a", evenParts(4, 1<<16))
		if r.ID != 0 {
			h.Wait() // only rank 0 leaks
		}
		return nil
	})
	if err == nil {
		t.Fatal("leaked handle must surface as a Run error")
	}
	if !strings.Contains(err.Error(), "leaky_a2a") || !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("leak error should name the collective and rank, got: %v", err)
	}
}

// TestRunLeakCheckSkippedOnError verifies the leak check does not mask a
// real rank error: when the body fails, the original error is reported.
func TestRunLeakCheckSkippedOnError(t *testing.T) {
	c := testCluster(2)
	g := c.WorldGroup()
	sentinel := errors.New("body failed")
	err := c.Run(func(r *Rank) error {
		r.AlltoAllVAsync(g, "a2a", evenParts(2, 1<<10)).Wait()
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("body error lost: %v", err)
	}
}

// TestAsyncOutOfOrderWaits pins interleaved async collectives on one
// rank's comm stream: waiting the later handle first charges through both
// transfers (the stream is in-order), after which the earlier handle's
// Wait is free.
func TestAsyncOutOfOrderWaits(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 4 << 20
	cost := c.Net.AlltoAllV(g.Ranks(), evenMatrix(4, bytes)).Seconds
	err := c.Run(func(r *Rank) error {
		h1 := r.AlltoAllVAsync(g, "a2a_first", evenParts(4, bytes))
		h2 := r.AlltoAllVAsync(g, "a2a_second", evenParts(4, bytes))
		h2.Wait() // later collective first: charges both serialised legs
		if got, want := r.Clock, 2*cost; got != want {
			return fmt.Errorf("waiting the later handle charged %.9f, want %.9f", got, want)
		}
		if !h1.Done() {
			return fmt.Errorf("earlier collective must be complete once the later one is")
		}
		before := r.Clock
		h1.Wait()
		if r.Clock != before {
			return fmt.Errorf("earlier handle's wait charged %.9f after stream drained", r.Clock-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkRange(t *testing.T) {
	for _, tc := range []struct{ n, chunks int }{{10, 4}, {3, 8}, {0, 4}, {7, 1}, {16, 4}} {
		covered := 0
		prevHi := 0
		for c := 0; c < tc.chunks; c++ {
			lo, hi := ChunkRange(tc.n, tc.chunks, c)
			if lo != prevHi || hi < lo || hi > tc.n {
				t.Fatalf("ChunkRange(%d,%d,%d) = [%d,%d) not contiguous", tc.n, tc.chunks, c, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("ChunkRange(%d,%d) covers %d rows", tc.n, tc.chunks, covered)
		}
	}
	if lo, hi := ChunkRange(9, 1, 0); lo != 0 || hi != 9 {
		t.Fatalf("single chunk must span everything, got [%d,%d)", lo, hi)
	}
}

func TestSubGroupsOperateIndependently(t *testing.T) {
	c := testCluster(8)
	g0 := c.NewGroup([]int{0, 1, 2, 3})
	g1 := c.NewGroup([]int{4, 5, 6, 7})
	err := c.Run(func(r *Rank) error {
		g := g0
		base := 0
		if r.ID >= 4 {
			g = g1
			base = 4
		}
		sum := r.AllReduce(g, "ar", []float32{float32(r.ID)}, 4)
		want := float32(base + base + 1 + base + 2 + base + 3)
		if sum[0] != want {
			return fmt.Errorf("rank %d group sum = %v, want %v", r.ID, sum[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectivesOnSameGroup(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		for iter := 0; iter < 50; iter++ {
			sum := r.AllReduce(g, "ar", []float32{1}, 4)
			if sum[0] != 4 {
				return fmt.Errorf("iter %d: sum = %v", iter, sum[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupIndexing(t *testing.T) {
	c := testCluster(8)
	g := c.NewGroup([]int{5, 1, 3}) // normalised to 1,3,5
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	if g.IndexOf(1) != 0 || g.IndexOf(3) != 1 || g.IndexOf(5) != 2 {
		t.Fatal("IndexOf wrong after normalisation")
	}
	if g.Contains(2) || !g.Contains(5) {
		t.Fatal("Contains wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IndexOf of non-member should panic")
		}
	}()
	g.IndexOf(2)
}

func TestNewGroupRejectsBadRanks(t *testing.T) {
	c := testCluster(4)
	for _, bad := range [][]int{{0, 0}, {-1}, {4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewGroup(%v) should panic", bad)
				}
			}()
			c.NewGroup(bad)
		}()
	}
}

func TestLargeScaleSmoke1024Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank smoke test skipped in -short")
	}
	c := testCluster(1024)
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *Rank) error {
		r.Barrier(g)
		sum := r.AllReduce(g, "ar", nil, 1<<20)
		_ = sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if MaxClock(ranks) <= 0 {
		t.Fatal("1024-rank collectives should consume simulated time")
	}
}
