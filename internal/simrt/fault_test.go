package simrt

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// testInjector is a hand-rolled Injector for runtime-level tests (the
// seeded plan lives in internal/fault; these tests pin the runtime
// contract independently of it).
type testInjector struct {
	mu         sync.Mutex
	scale      map[int]float64    // rank -> compute multiplier
	delays     map[string]float64 // "rank/name" -> retry delay, consumed once
	crashClock map[int]float64    // rank -> crash at-or-after this clock
	crashErr   error
}

func (i *testInjector) ComputeScale(rank int) float64 {
	if s, ok := i.scale[rank]; ok {
		return s
	}
	return 1
}

func (i *testInjector) CollectiveDelay(rank int, name string, clock float64) float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	key := fmt.Sprintf("%d/%s", rank, name)
	d := i.delays[key]
	delete(i.delays, key)
	return d
}

func (i *testInjector) CrashError(rank int, clock float64) error {
	at, ok := i.crashClock[rank]
	if !ok || clock < at {
		return nil
	}
	if i.crashErr != nil {
		return i.crashErr
	}
	return ErrRankCrashed
}

// TestRunReturnsWhenRankPanicsMidCollective is the deadlock regression
// the abort machinery exists for: one rank panics before joining a
// collective while every peer is already parked at the rendezvous.
// Before the abort machinery, Run never returned. Now it must return a
// joined error that attributes the panic to rank 1 and gives every
// survivor a typed ErrPeerFailed.
func TestRunReturnsWhenRankPanicsMidCollective(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			// Let the peers reach the rendezvous first so the abort has
			// to wake parked waiters, not just fail fast at entry.
			panic("simulated hard fault")
		}
		r.AllReduce(g, "ar", []float32{1}, 4)
		return nil
	})
	if err == nil {
		t.Fatal("Run must return an error when a rank dies mid-collective")
	}
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("survivors must observe ErrPeerFailed, got: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1 panicked") {
		t.Fatalf("error must attribute the panic to rank 1, got: %v", err)
	}
	// All three survivors must report the aborted collective by name.
	// Checked per rank, not by substring count: a survivor woken by an
	// already-aborted peer nests that peer's text as its cause, so the
	// phrase can appear more than once per line (abort *text* is
	// scheduling-dependent; only the outcome set is deterministic).
	for _, survivor := range []int{0, 2, 3} {
		if want := fmt.Sprintf("rank %d: ar aborted", survivor); !strings.Contains(err.Error(), want) {
			t.Fatalf("survivor %d must name the aborted collective, got: %v", survivor, err)
		}
	}
	if fr := c.FailedRanks(); fr[1] == nil {
		t.Fatalf("failure registry must record rank 1, got %v", fr)
	}
}

// TestRunReturnsWhenRankErrorsMidCollective: same regression for a rank
// that returns an error (no panic) while peers are blocked.
func TestRunReturnsWhenRankErrorsMidCollective(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	sentinel := errors.New("body gave up")
	err := c.Run(func(r *Rank) error {
		if r.ID == 2 {
			return sentinel
		}
		r.Barrier(g)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("failing rank's own error lost: %v", err)
	}
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("survivors must observe ErrPeerFailed: %v", err)
	}
}

// TestInjectedCrashAbortsPeers pins the Injector crash path end to end:
// the victim unwinds with ErrRankCrashed at its first operation at or
// after the crash clock, and peers abort instead of deadlocking.
func TestInjectedCrashAbortsPeers(t *testing.T) {
	c := testCluster(4)
	c.Inject = &testInjector{crashClock: map[int]float64{3: 0.5}}
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		r.Compute("warmup", 0.6) // rank 3's next boundary is past 0.5
		r.AllReduce(g, "ar", nil, 4)
		return nil
	})
	if !errors.Is(err, ErrRankCrashed) {
		t.Fatalf("victim must report ErrRankCrashed: %v", err)
	}
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("survivors must report ErrPeerFailed: %v", err)
	}
	if fr := c.FailedRanks(); !errors.Is(fr[3], ErrRankCrashed) {
		t.Fatalf("registry must blame rank 3's crash, got %v", fr)
	}
}

// TestCrashDoesNotAbortCompletedRendezvous pins the sequence-aware gone
// marks: a rendezvous the victim fully participated in completes
// normally on every rank; only the next one aborts.
func TestCrashDoesNotAbortCompletedRendezvous(t *testing.T) {
	c := testCluster(4)
	c.Inject = &testInjector{crashClock: map[int]float64{0: 0.1}}
	g := c.WorldGroup()
	sums := make([]float32, 4)
	err := c.Run(func(r *Rank) error {
		// First collective at clock 0 — before the crash arms.
		sums[r.ID] = r.AllReduce(g, "ar1", []float32{1}, 4)[0]
		r.Compute("work", 0.2) // rank 0 crashes at this boundary's entry+next op
		r.AllReduce(g, "ar2", []float32{1}, 4)
		return nil
	})
	if err == nil || !errors.Is(err, ErrRankCrashed) {
		t.Fatalf("want injected crash, got: %v", err)
	}
	for id, s := range sums {
		if s != 4 {
			t.Fatalf("rank %d: pre-crash collective corrupted: sum=%v", id, s)
		}
	}
}

// TestStragglerScalesComputeAndPeersAbsorbIt: the straggler's compute
// spans stretch by the multiplier and the BSP collective drags every
// peer's clock to the straggler's.
func TestStragglerScalesComputeAndPeersAbsorbIt(t *testing.T) {
	c := testCluster(4)
	c.Inject = &testInjector{scale: map[int]float64{2: 3}}
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *Rank) error {
		r.Compute("gemm", 0.1)
		r.Barrier(g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ranks[2].Trace.Total("gemm"); math.Abs(got-0.3) > 1e-15 {
		t.Fatalf("straggler compute = %v, want 0.3 (3x)", got)
	}
	if got := ranks[0].Trace.Total("gemm"); got != 0.1 {
		t.Fatalf("healthy rank compute = %v, want 0.1", got)
	}
	for _, r := range ranks {
		if r.Clock < 0.3 {
			t.Fatalf("rank %d clock %v: barrier must drag everyone to the straggler", r.ID, r.Clock)
		}
	}
}

// TestFlakyCollectiveDelayChargedToClock: the injector's retry delay is
// charged to the victim's clock before the collective, recorded as
// "<name>_retry", and the charged breakdown still sums to wall-clock.
func TestFlakyCollectiveDelayChargedToClock(t *testing.T) {
	c := testCluster(2)
	c.Inject = &testInjector{delays: map[string]float64{"1/ar": 0.25}}
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *Rank) error {
		r.AllReduce(g, "ar", nil, 4)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ranks[1].Trace.Total("ar_retry"); got != 0.25 {
		t.Fatalf("retry span = %v, want 0.25", got)
	}
	if ranks[0].Clock < 0.25 {
		t.Fatalf("BSP peer must absorb the retry delay, clock=%v", ranks[0].Clock)
	}
	for _, r := range ranks {
		var sum float64
		for _, d := range r.Trace.Breakdown() {
			sum += d
		}
		if diff := sum - r.Clock; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d breakdown %v != clock %v", r.ID, sum, r.Clock)
		}
	}
}

// TestDesyncReturnsErrorNotDeadlock: a buggy SPMD body where one rank
// issues fewer collectives than its peers used to deadlock Run; now the
// peers get a desync ErrPeerFailed once the short rank returns.
func TestDesyncReturnsErrorNotDeadlock(t *testing.T) {
	c := testCluster(3)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		r.Barrier(g)
		if r.ID == 0 {
			return nil // one barrier short
		}
		r.Barrier(g)
		return nil
	})
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("desync must surface as ErrPeerFailed, got: %v", err)
	}
	if !strings.Contains(err.Error(), "desync") {
		t.Fatalf("error should call out the desync, got: %v", err)
	}
}

// TestCleanRunsReusableAfterInjection: a cluster whose Runs complete
// cleanly stays reusable step after step (the DistTrainer pattern), and
// the failure registry stays empty.
func TestCleanRunsReusableAfterInjection(t *testing.T) {
	c := testCluster(4)
	c.Inject = &testInjector{scale: map[int]float64{1: 2}}
	g := c.WorldGroup()
	for step := 0; step < 5; step++ {
		err := c.Run(func(r *Rank) error {
			r.Compute("gemm", 0.01)
			if got := r.AllReduce(g, "ar", []float32{1}, 4)[0]; got != 4 {
				return fmt.Errorf("step %d: sum=%v", step, got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(c.FailedRanks()) != 0 {
			t.Fatalf("step %d: spurious failures: %v", step, c.FailedRanks())
		}
	}
}

// TestWaitDeadline pins CommHandle.WaitDeadline: an on-time collective
// behaves like Wait; a late one charges exactly to the deadline and
// returns ErrCommTimeout.
func TestWaitDeadline(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 4 << 20
	cost := c.Net.AlltoAllV(g.Ranks(), evenMatrix(4, bytes)).Seconds
	err := c.Run(func(r *Rank) error {
		// Generous deadline: identical to Wait.
		h := r.AlltoAllVAsync(g, "a2a", evenParts(4, bytes))
		recv, err := h.WaitDeadline(10 * cost)
		if err != nil || len(recv) != 4 {
			return fmt.Errorf("on-time WaitDeadline failed: %v", err)
		}
		if r.Clock != cost {
			return fmt.Errorf("on-time WaitDeadline charged %v, want %v", r.Clock, cost)
		}

		// Tight deadline: the collective cannot make it.
		issued := r.Clock
		h2 := r.AlltoAllVAsync(g, "a2a_slow", evenParts(4, bytes))
		recv2, err2 := h2.WaitDeadline(cost / 2)
		if !errors.Is(err2, ErrCommTimeout) {
			return fmt.Errorf("late WaitDeadline must return ErrCommTimeout, got %v", err2)
		}
		if recv2 != nil {
			return fmt.Errorf("timed-out wait must not deliver a payload")
		}
		if got, want := r.Clock-issued, cost/2; math.Abs(got-want) > 1e-15 {
			return fmt.Errorf("timeout charged %v, want the deadline %v", got, want)
		}
		if got := r.Trace.Total("a2a_slow_timeout"); math.Abs(got-cost/2) > 1e-15 {
			return fmt.Errorf("timeout span = %v, want %v", got, cost/2)
		}
		// The handle counts as waited: no leak report on return.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLeakedHandleReportNamesIssueClock pins the upgraded leak report:
// name plus issue-time clock.
func TestLeakedHandleReportNamesIssueClock(t *testing.T) {
	c := testCluster(2)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		r.Compute("warmup", 0.125)
		h := r.AlltoAllVAsync(g, "dropped_a2a", evenParts(2, 1<<10))
		if r.ID == 1 {
			h.Wait()
		}
		return nil
	})
	if err == nil {
		t.Fatal("leak must surface")
	}
	if !strings.Contains(err.Error(), "dropped_a2a@0.125000s") {
		t.Fatalf("leak report must carry name and issue clock, got: %v", err)
	}
}

// TestReducerPanicDoesNotDeadlockPeers: a panic inside a collective's
// reducer (while holding the rendezvous lock) must fail the rendezvous
// and unwind everyone.
func TestReducerPanicDoesNotDeadlockPeers(t *testing.T) {
	c := testCluster(3)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		// Broadcast clones the root part; a nil entry where the root
		// index points makes the reducer's type assertion panic on the
		// last arriver.
		r.Broadcast(g, "bc", 5, Part{Bytes: 4}) // rootIdx out of range: reducer panics
		return nil
	})
	if err == nil {
		t.Fatal("reducer panic must surface, not deadlock")
	}
	if !errors.Is(err, ErrPeerFailed) {
		t.Fatalf("peers of the panicking reducer must see ErrPeerFailed: %v", err)
	}
}
