package simrt

import (
	"xmoe/internal/netsim"
)

// Non-blocking reduction collectives, the transport layer of ZeRO-style
// bucketed gradient synchronisation (Megatron Core's bucketed DDP,
// DeepSpeed's ZeRO-1/2): a backward pass issues one all-reduce (stage
// 0/1) or reduce-scatter (stage 2) per gradient bucket as its dW GEMMs
// complete, and the optimizer step waits the handles, paying only the
// part of the sync the remaining backward compute did not cover. The
// timing model is identical to AlltoAllVAsync's (issue at the current
// clock, start at the group's max of entry clocks and comm-stream
// horizons, Wait charges the uncovered remainder), and the *values* are
// identical to the blocking collectives' — the reducers below reuse the
// exact member-order elementwise summation of Rank.AllReduce, so a
// bucketed async sync is bit-identical to one blocking all-reduce over
// the concatenated gradients for any bucket size.

// reduceAsyncEntry is one rank's deposit for a non-blocking reduction:
// its contribution plus its comm-stream horizon.
type reduceAsyncEntry struct {
	data  []float32
	bytes int64
	busy  float64
}

// reduceAsyncResult is the shared result of an async reduction
// rendezvous: the physical timeline plus the per-member received parts.
type reduceAsyncResult struct {
	cost       netsim.Cost
	start, end float64
	// recv[member] is what that member receives: the full sum for
	// all-reduce, the member's owned shard for reduce-scatter.
	recv []Part
}

// reduceStart returns the collective's physical start time: the max over
// members of max(entry clock, comm-stream busy horizon).
func reduceStart(entries []any, clocks []float64) float64 {
	var start float64
	for s, e := range entries {
		ent := e.(reduceAsyncEntry)
		if clocks[s] > start {
			start = clocks[s]
		}
		if ent.busy > start {
			start = ent.busy
		}
	}
	return start
}

// reduceSum computes the member-order elementwise sum of the non-nil
// deposits and the max per-rank byte size. The summation loop mirrors
// Rank.AllReduce exactly so async and blocking reductions of the same
// data are bit-identical.
func reduceSum(entries []any) (sum []float32, maxBytes int64) {
	for _, e := range entries {
		ent := e.(reduceAsyncEntry)
		if ent.bytes > maxBytes {
			maxBytes = ent.bytes
		}
		if ent.data != nil {
			if sum == nil {
				sum = make([]float32, len(ent.data))
			}
			for i, v := range ent.data {
				sum[i] += v
			}
		}
	}
	return sum, maxBytes
}

// issueReduce finishes issuing an async reduction on the rank side:
// advances the comm-stream horizon and registers the handle for leak
// detection, like AlltoAllVAsync.
func (r *Rank) issueReduce(name string, res reduceAsyncResult, idx int) *CommHandle {
	r.commBusyUntil = res.end
	h := &CommHandle{
		r:        r,
		name:     name,
		issuedAt: r.Clock,
		start:    res.start,
		end:      res.end,
		recv:     []Part{res.recv[idx]},
	}
	r.issuedHandles = append(r.issuedHandles, h)
	return h
}

// AllReduceAsync issues a non-blocking elementwise-sum all-reduce among
// the group and returns immediately with a handle; Wait yields one Part
// whose Data is the full sum (shared by all members — callers must copy,
// never mutate). data may be nil in symbolic mode; bytes is the modeled
// per-rank payload. Every member must issue the same collectives in the
// same order (SPMD discipline).
func (r *Rank) AllReduceAsync(g *Group, name string, data []float32, bytes int64) *CommHandle {
	r.preCollective(name)
	res := g.collectNoSync(r, name, reduceAsyncEntry{data: data, bytes: bytes, busy: r.commBusyUntil},
		func(entries []any, clocks []float64) any {
			start := reduceStart(entries, clocks)
			sum, maxBytes := reduceSum(entries)
			cost := g.c.CostEngine().AllReduce(g.ranks, maxBytes)
			recv := make([]Part, len(entries))
			for i := range recv {
				recv[i] = Part{Data: sum, Bytes: maxBytes}
			}
			return reduceAsyncResult{cost: cost, start: start, end: start + cost.Seconds, recv: recv}
		}).(reduceAsyncResult)
	return r.issueReduce(name, res, g.IndexOf(r.ID))
}

// ReduceScatterAsync issues a non-blocking reduce-scatter: the group's
// deposits are summed elementwise (member order, bit-identical to
// AllReduceAsync's full sum) and member i receives the ShardRange(len,
// p, i) slice of the sum — the ZeRO-2 gradient-sharding primitive. The
// returned shard aliases the shared sum; callers must copy before
// mutating. data may be nil in symbolic mode; bytes is the full
// (unsharded) per-rank payload, split across members with the same
// remainder-to-leading-ranks convention netsim.ReduceScatter charges.
func (r *Rank) ReduceScatterAsync(g *Group, name string, data []float32, bytes int64) *CommHandle {
	r.preCollective(name)
	res := g.collectNoSync(r, name, reduceAsyncEntry{data: data, bytes: bytes, busy: r.commBusyUntil},
		func(entries []any, clocks []float64) any {
			start := reduceStart(entries, clocks)
			sum, maxBytes := reduceSum(entries)
			cost := g.c.CostEngine().ReduceScatter(g.ranks, maxBytes)
			p := len(entries)
			recv := make([]Part, p)
			for i := range recv {
				bLo, bHi := ShardRange(int(maxBytes), p, i)
				recv[i] = Part{Bytes: int64(bHi - bLo)}
				if sum != nil {
					lo, hi := ShardRange(len(sum), p, i)
					recv[i].Data = sum[lo:hi]
				}
			}
			return reduceAsyncResult{cost: cost, start: start, end: start + cost.Seconds, recv: recv}
		}).(reduceAsyncResult)
	return r.issueReduce(name, res, g.IndexOf(r.ID))
}

// AllGatherAsync issues a non-blocking all-gather of one part per
// member; Wait yields the full member-indexed list (shared — do not
// mutate). It is the parameter-republication half of a sharded optimizer
// step (ZeRO-1/2: each owner updates its shard, then all-gathers).
func (r *Rank) AllGatherAsync(g *Group, name string, part Part) *CommHandle {
	r.preCollective(name)
	res := g.collectNoSync(r, name, reduceAsyncEntry{data: part.Data, bytes: part.Bytes, busy: r.commBusyUntil},
		func(entries []any, clocks []float64) any {
			start := reduceStart(entries, clocks)
			parts := make([]Part, len(entries))
			bytes := make([]int64, len(entries))
			for i, e := range entries {
				ent := e.(reduceAsyncEntry)
				parts[i] = Part{Data: ent.data, Bytes: ent.bytes}
				bytes[i] = ent.bytes
			}
			cost := g.c.CostEngine().AllGather(g.ranks, bytes)
			return reduceAsyncResult{cost: cost, start: start, end: start + cost.Seconds, recv: parts}
		}).(reduceAsyncResult)
	// All members receive the full part list, not a per-member share.
	r.commBusyUntil = res.end
	h := &CommHandle{
		r:        r,
		name:     name,
		issuedAt: r.Clock,
		start:    res.start,
		end:      res.end,
		recv:     res.recv,
	}
	r.issuedHandles = append(r.issuedHandles, h)
	return h
}

// ShardRange returns the half-open [lo, hi) range of member i's owned
// shard when n elements are partitioned across p members: n/p each, with
// the n%p remainder elements going to the leading members — the same
// convention netsim.ReduceScatter uses to split the wire payload, so
// element ownership and byte accounting agree.
func ShardRange(n, p, i int) (lo, hi int) {
	if p <= 1 {
		return 0, n
	}
	base, rem := n/p, n%p
	lo = i * base
	if i < rem {
		lo += i
	} else {
		lo += rem
	}
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}
