// Package simrt is the simulated distributed runtime the X-MoE
// reproduction executes on. It replaces the GPU cluster the paper used
// (Frontier nodes running one training process per GCD) with one goroutine
// per rank inside a single address space:
//
//   - Collectives move real payloads between rank goroutines through a
//     rendezvous, so correctness properties (dispatch/combine equivalence,
//     RBD reconstruction) are testable end to end.
//   - Every rank carries a virtual clock. Compute ops advance it by times
//     from internal/perfmodel; collectives synchronise participants to
//     max(entry clocks) + a time from internal/netsim (BSP semantics).
//   - Every rank carries a memory tracker; pipelines register their buffer
//     allocations so per-device peak memory and OOM verdicts reproduce the
//     paper's trainability results.
package simrt

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"xmoe/internal/netsim"
	"xmoe/internal/perfmodel"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
)

// MemTracker accounts simulated device memory for one rank. All sizes are
// bytes. It is safe for concurrent use.
type MemTracker struct {
	mu    sync.Mutex
	cur   int64
	peak  int64
	byTag map[string]int64
}

// Alloc records an allocation of n bytes under the given tag.
func (m *MemTracker) Alloc(tag string, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("simrt: negative allocation %d (%s)", n, tag))
	}
	m.mu.Lock()
	if m.byTag == nil {
		m.byTag = map[string]int64{}
	}
	m.cur += n
	m.byTag[tag] += n
	if m.cur > m.peak {
		m.peak = m.cur
	}
	m.mu.Unlock()
}

// Free records a release of n bytes under the given tag.
func (m *MemTracker) Free(tag string, n int64) {
	m.mu.Lock()
	m.cur -= n
	if m.byTag != nil {
		m.byTag[tag] -= n
	}
	m.mu.Unlock()
}

// Current returns the live allocation in bytes.
func (m *MemTracker) Current() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Peak returns the high-water mark in bytes.
func (m *MemTracker) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// ByTag returns a copy of the live allocation per tag.
func (m *MemTracker) ByTag() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byTag))
	for k, v := range m.byTag {
		out[k] = v
	}
	return out
}

// Reset clears all accounting.
func (m *MemTracker) Reset() {
	m.mu.Lock()
	m.cur, m.peak, m.byTag = 0, 0, map[string]int64{}
	m.mu.Unlock()
}

// Device is the simulated GPU attached to one rank.
type Device struct {
	// Mem tracks simulated HBM usage.
	Mem MemTracker
	// Profile describes the device's capability.
	Profile topology.DeviceProfile
	// pool is the rank-local tensor arena: numeric pipelines draw their
	// steady-state intermediates from it instead of allocating fresh
	// buffers every layer. It persists across Cluster.Run invocations,
	// mirroring a framework's reusable device workspace.
	pool tensor.Pool
}

// OOM reports whether the device's peak allocation exceeded its capacity.
func (d *Device) OOM() bool { return d.Mem.Peak() > d.Profile.MemBytes }

// Cluster is a simulated machine partition: NumRanks ranks laid out on the
// machine topology, sharing a network simulator and a compute model.
type Cluster struct {
	Machine *topology.Machine
	Net     *netsim.Network
	// Engine, when non-nil, replaces the analytic Net as the collective
	// cost model: every collective charges CostEngine() instead of Net
	// directly. Plug in a devent.Engine to run the cluster on the
	// event-driven honest path (link-level transfers with trunk
	// contention); leave nil for the memoized analytic fast path. Set it
	// before the first Run and never while ranks are in flight.
	Engine   netsim.CostEngine
	Comp     *perfmodel.Model
	NumRanks int
	// DisablePools turns off the per-rank tensor arenas: Rank.Pool
	// returns nil and pipelines fall back to allocate-fresh buffers.
	// The determinism regression tests use this to compare pooled and
	// fresh execution bit for bit.
	DisablePools bool
	// Inject, when non-nil, is consulted by every rank at each compute
	// span and collective entry to apply deterministic faults: straggler
	// compute scaling, flaky-collective retry delays, and crashes (see
	// internal/fault for the seeded plan that implements it).
	Inject  Injector
	devices []*Device

	// failMu guards the failure registry and the group list. failed maps
	// a rank that went down in the current Run to its error; groups
	// lists every communicator ever created on this cluster so failRank
	// can abort their rendezvous.
	failMu sync.Mutex
	failed map[int]error
	groups []*Group
}

// NewCluster creates a cluster of n ranks on machine m, seeding the
// network simulator's congestion sampler with seed.
func NewCluster(m *topology.Machine, n int, seed uint64) *Cluster {
	devs := make([]*Device, n)
	for i := range devs {
		devs[i] = &Device{Profile: m.Device}
	}
	net := netsim.New(m, seed)
	net.JobRanks = n
	return &Cluster{
		Machine:  m,
		Net:      net,
		Comp:     perfmodel.ForDevice(m.Device),
		NumRanks: n,
		devices:  devs,
	}
}

// Device returns the device of global rank r.
func (c *Cluster) Device(r int) *Device { return c.devices[r] }

// CostEngine returns the collective cost model the cluster charges: the
// pluggable Engine when one is installed, else the analytic Net. Existing
// tests that predict expected times via c.Net stay exact because a nil
// Engine falls through to the same model.
func (c *Cluster) CostEngine() netsim.CostEngine {
	if c.Engine != nil {
		return c.Engine
	}
	return c.Net
}

// EngineName identifies the active cost engine ("analytic", "event:rail",
// ...) for traces and benchmark records.
func (c *Cluster) EngineName() string { return c.CostEngine().EngineName() }

// SetLinkDerate applies degraded-link bandwidth derates to every cost
// model attached to the cluster (the analytic Net and, when installed, the
// pluggable Engine), so fault-injected link degradation behaves the same
// under both engines. Call only between Run invocations.
func (c *Cluster) SetLinkDerate(d map[topology.LinkClass]float64) {
	c.Net.SetLinkDerate(d)
	if c.Engine != nil {
		c.Engine.SetLinkDerate(d)
	}
}

// Rank is the per-goroutine execution context handed to the SPMD body.
type Rank struct {
	// ID is the global rank index in [0, NumRanks).
	ID int
	// C is the owning cluster.
	C *Cluster
	// Clock is the rank's virtual time in seconds.
	Clock float64
	// Busy is the cumulative compute time this rank spent, excluding
	// collective waits. Unlike Clock — which BSP rendezvous synchronise
	// to the group maximum at every collective — Busy keeps per-rank
	// skew visible, so harnesses can observe which ranks are slow
	// (straggler scaling multiplies compute durations).
	Busy float64
	// Trace records per-stage durations on this rank.
	Trace *trace.Recorder
	// commBusyUntil is the virtual time at which this rank's
	// communication stream drains: non-blocking collectives issued by this
	// rank serialise behind it (one in-order comm stream per rank, as on a
	// dedicated NCCL/RCCL stream), so a newly issued collective cannot
	// start before the previously issued ones complete. Only the owning
	// goroutine touches it directly; peers observe it through the value
	// deposited at each async rendezvous.
	commBusyUntil float64
	// issuedHandles records every async collective handle this rank
	// issued; Run checks at teardown that each was waited (a dropped
	// handle is a lost synchronisation and almost always a bug).
	issuedHandles []*CommHandle
}

// Dev returns this rank's device.
func (r *Rank) Dev() *Device { return r.C.devices[r.ID] }

// Pool returns this rank's tensor arena (nil when the cluster disables
// pooling; a nil pool safely degrades to allocate-fresh). Buffers whose
// data crosses rank boundaries through a collective must NOT be pooled —
// peers may still be reading them after the rendezvous — so pipelines
// only draw rank-local intermediates from the pool.
func (r *Rank) Pool() *tensor.Pool {
	if r.C.DisablePools {
		return nil
	}
	return &r.C.devices[r.ID].pool
}

// Compute advances the rank's clock by dur seconds, recording the span
// under name. When fault injection is active, a pending crash fires at
// the span's entry and straggler ranks see their durations scaled by the
// injector's compute multiplier.
func (r *Rank) Compute(name string, dur float64) {
	if dur < 0 {
		panic(fmt.Sprintf("simrt: negative compute duration %g (%s)", dur, name))
	}
	if inj := r.C.Inject; inj != nil {
		if err := inj.CrashError(r.ID, r.Clock); err != nil {
			r.fail(fmt.Errorf("rank %d at %.6fs in %s: %w", r.ID, r.Clock, name, err))
		}
		if s := inj.ComputeScale(r.ID); s > 0 && s != 1 {
			dur *= s
		}
	}
	r.Trace.Record(name, r.Clock, dur)
	r.Clock += dur
	r.Busy += dur
}

// GEMM models one [m,k]x[k,n] matmul on this rank's device.
func (r *Rank) GEMM(name string, m, k, n int) {
	r.Compute(name, r.C.Comp.GEMM(m, k, n))
}

// Kernel models one bandwidth-bound kernel of the given class moving the
// given bytes.
func (r *Rank) Kernel(name string, class perfmodel.KernelClass, bytes int64) {
	r.Compute(name, r.C.Comp.MemBound(class, bytes))
}

// Run executes fn once per rank, each on its own goroutine, and waits for
// all to finish. It returns the combined error of all failing ranks and
// always returns: a rank that panics, crashes (injected fault), or
// returns an error is marked gone on every group it belongs to, so peers
// parked at (or later issuing) collectives with it unwind with a typed
// ErrPeerFailed instead of deadlocking. A rank that returns with
// issued-but-never-waited async collective handles is reported as an
// error too: a dropped CommHandle is a lost synchronisation. After a
// failed Run the cluster is poisoned (rank collective counters are
// desynchronised); rebuild it rather than calling Run again. After a
// clean Run the cluster is reusable as before.
func (c *Cluster) Run(fn func(r *Rank) error) error {
	c.resetFailures()
	errs := make([]error, c.NumRanks)
	var wg sync.WaitGroup
	for i := 0; i < c.NumRanks; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if ap, ok := p.(abortPanic); ok {
						errs[id] = ap.err
					} else {
						errs[id] = fmt.Errorf("rank %d panicked: %v", id, p)
					}
				}
				if errs[id] != nil {
					c.failRank(id, errs[id])
				} else {
					c.rankDone(id)
				}
			}()
			rank := &Rank{ID: id, C: c, Trace: &trace.Recorder{}}
			// Stamp the active cost engine on every trace so recorded
			// spans are attributable to analytic vs event mode (marks
			// never pollute breakdowns).
			rank.Trace.Mark("engine:"+c.EngineName(), 0)
			errs[id] = fn(rank)
			if errs[id] == nil {
				if leaked := rank.leakedHandles(); len(leaked) > 0 {
					errs[id] = fmt.Errorf("rank %d finished with %d unwaited async collective handle(s): %v",
						id, len(leaked), leaked)
				}
			}
		}(i)
	}
	wg.Wait()
	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	return errors.Join(nonNil...)
}

// RunCollect executes fn once per rank like Run but also returns each
// rank's final context (clock and trace) for harness-side aggregation.
func (c *Cluster) RunCollect(fn func(r *Rank) error) ([]*Rank, error) {
	ranks := make([]*Rank, c.NumRanks)
	err := c.Run(func(r *Rank) error {
		ranks[r.ID] = r
		return fn(r)
	})
	return ranks, err
}

// MaxClock returns the largest clock among ranks — the simulated
// wall-clock time of the SPMD program.
func MaxClock(ranks []*Rank) float64 {
	var m float64
	for _, r := range ranks {
		if r != nil && r.Clock > m {
			m = r.Clock
		}
	}
	return m
}

// BusyTimes returns every rank's cumulative compute time by rank ID
// (0 for ranks that never started). These are the per-rank observed
// times the straggler-aware capacity rebalance feeds on: final Clocks
// are useless for that — BSP rendezvous equalise them at every
// collective — but Busy keeps the skew, so an injected straggler shows
// up as a slot whose compute time exceeds the rest.
func BusyTimes(ranks []*Rank) []float64 {
	out := make([]float64, len(ranks))
	for i, r := range ranks {
		if r != nil {
			out[i] = r.Busy
		}
	}
	return out
}

// PeakMemory returns the maximum per-device peak across the cluster,
// matching the paper's "maximum memory usage across all ranks" metric.
func (c *Cluster) PeakMemory() int64 {
	var m int64
	for _, d := range c.devices {
		if p := d.Mem.Peak(); p > m {
			m = p
		}
	}
	return m
}

// AnyOOM reports whether any device exceeded its memory capacity.
func (c *Cluster) AnyOOM() bool {
	for _, d := range c.devices {
		if d.OOM() {
			return true
		}
	}
	return false
}

// ResetMemory clears all devices' memory accounting.
func (c *Cluster) ResetMemory() {
	for _, d := range c.devices {
		d.Mem.Reset()
	}
}

// NewGroup creates a communicator over the given global ranks (order is
// normalised to ascending). The same *Group value must be shared by all
// member ranks.
func (c *Cluster) NewGroup(ranks []int) *Group {
	rs := make([]int, len(ranks))
	copy(rs, ranks)
	sort.Ints(rs)
	idx := make(map[int]int, len(rs))
	for i, r := range rs {
		if r < 0 || r >= c.NumRanks {
			panic(fmt.Sprintf("simrt: rank %d outside cluster of %d", r, c.NumRanks))
		}
		if _, dup := idx[r]; dup {
			panic(fmt.Sprintf("simrt: duplicate rank %d in group", r))
		}
		idx[r] = i
	}
	g := &Group{
		c:       c,
		ranks:   rs,
		index:   idx,
		counter: make([]uint64, len(rs)),
		gone:    make([]error, len(rs)),
		goneAt:  make([]uint64, len(rs)),
		pending: map[uint64]*rendezvous{},
	}
	c.registerGroup(g)
	return g
}

// WorldGroup returns a communicator over all ranks.
func (c *Cluster) WorldGroup() *Group {
	all := make([]int, c.NumRanks)
	for i := range all {
		all[i] = i
	}
	return c.NewGroup(all)
}
