package simrt

import (
	"fmt"
	"math"
	"testing"
)

// randomish deterministic per-rank contribution with enough structure to
// expose order-dependent float summation differences.
func reduceTestData(rank, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(rank*1000+i))) * float32(1+rank)
	}
	return out
}

// TestAllReduceAsyncBitIdenticalToBlocking pins the core ZeRO guarantee:
// the async reducer uses the exact member-order summation of the blocking
// all-reduce, so both produce bit-identical values.
func TestAllReduceAsyncBitIdenticalToBlocking(t *testing.T) {
	const world, n = 4, 37
	run := func(async bool) []float32 {
		c := testCluster(world)
		g := c.WorldGroup()
		var got []float32
		err := c.Run(func(r *Rank) error {
			data := reduceTestData(r.ID, n)
			var sum []float32
			if async {
				sum = r.AllReduceAsync(g, "ar", data, int64(4*n)).Wait()[0].Data
			} else {
				sum = r.AllReduce(g, "ar", data, int64(4*n))
			}
			if r.ID == 0 {
				got = append([]float32(nil), sum...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(true), run(false)
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("async sum[%d] = %x, blocking = %x", i, math.Float32bits(a[i]), math.Float32bits(b[i]))
		}
	}
}

// TestReduceScatterAsyncShardsTheBlockingSum pins the ZeRO-2 bit-identity
// mechanism: each member's reduce-scatter shard is the ShardRange slice of
// the full member-order sum, so the concatenation across members is
// bit-identical to a blocking all-reduce of the same data.
func TestReduceScatterAsyncShardsTheBlockingSum(t *testing.T) {
	const world, n = 4, 31 // n % world != 0: remainder shards exercised
	c := testCluster(world)
	g := c.WorldGroup()

	// Reference: blocking all-reduce of the same deposits.
	var ref []float32
	if err := c.Run(func(r *Rank) error {
		sum := r.AllReduce(g, "ref", reduceTestData(r.ID, n), int64(4*n))
		if r.ID == 0 {
			ref = append([]float32(nil), sum...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	shards := make([][]float32, world)
	var bytes [4]int64
	if err := c.Run(func(r *Rank) error {
		p := r.ReduceScatterAsync(g, "rs", reduceTestData(r.ID, n), int64(4*n)).Wait()[0]
		shards[r.ID] = append([]float32(nil), p.Data...)
		bytes[r.ID] = p.Bytes
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var cat []float32
	var totalBytes int64
	for i, s := range shards {
		lo, hi := ShardRange(n, world, i)
		if len(s) != hi-lo {
			t.Fatalf("member %d shard has %d elems, ShardRange says %d", i, len(s), hi-lo)
		}
		cat = append(cat, s...)
		totalBytes += bytes[i]
	}
	if len(cat) != n || totalBytes != int64(4*n) {
		t.Fatalf("shards cover %d elems / %d bytes, want %d / %d", len(cat), totalBytes, n, 4*n)
	}
	for i := range cat {
		if math.Float32bits(cat[i]) != math.Float32bits(ref[i]) {
			t.Fatalf("concatenated shards diverge from blocking all-reduce at %d", i)
		}
	}
}

// TestAllGatherAsyncCollectsInOrder mirrors the blocking all-gather test
// through the async path.
func TestAllGatherAsyncCollectsInOrder(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *Rank) error {
		parts := r.AllGatherAsync(g, "ag", Part{Data: []float32{float32(r.ID)}, Bytes: 4}).Wait()
		if len(parts) != 4 {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if p.Data[0] != float32(i) {
				return fmt.Errorf("allgather[%d] = %v", i, p.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReduceAsyncOverlapCharging pins the overlap model for the reduction
// collectives: a fully covered sync charges nothing, the full span shows
// up as an overlapped trace event, and blocking/async wall clocks agree
// when the wait is immediate.
func TestReduceAsyncOverlapCharging(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	const bytes = 8 << 20
	cost := c.Net.AllReduce(g.Ranks(), bytes).Seconds
	if cost <= 0 {
		t.Fatal("test needs a non-trivial all-reduce cost")
	}
	err := c.Run(func(r *Rank) error {
		h := r.AllReduceAsync(g, "grad_sync", nil, bytes)
		r.Compute("bwd_gemm", 2*cost)
		before := r.Clock
		h.Wait()
		if r.Clock != before {
			return fmt.Errorf("covered grad sync charged %.9fs", r.Clock-before)
		}
		if got := r.Trace.OverlappedTotal("grad_sync"); got != cost {
			return fmt.Errorf("overlapped span %.9f, want %.9f", got, cost)
		}
		if got := r.Trace.Total("grad_sync"); got != 0 {
			return fmt.Errorf("hidden sync still charged %.9f", got)
		}
		// Uncovered: issue and wait immediately — charges the full cost.
		start := r.Clock
		r.ReduceScatterAsync(g, "rs", nil, bytes).Wait()
		rsCost := c.Net.ReduceScatter(g.Ranks(), bytes).Seconds
		const eps = 1e-12
		if got := r.Clock - start; got < rsCost-eps || got > rsCost+eps {
			return fmt.Errorf("uncovered reduce-scatter charged %.12f, want %.12f", got, rsCost)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardRangePartition pins the ownership convention: contiguous,
// covering, remainder to the leading members — matching the byte split
// netsim.ReduceScatter charges on the wire.
func TestShardRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 4}, {31, 4}, {4, 4}, {3, 8}, {0, 4}, {7, 1}, {100, 7}} {
		prevHi := 0
		for i := 0; i < tc.p; i++ {
			lo, hi := ShardRange(tc.n, tc.p, i)
			if lo != prevHi || hi < lo {
				t.Fatalf("ShardRange(%d,%d,%d) = [%d,%d) not contiguous from %d", tc.n, tc.p, i, lo, hi, prevHi)
			}
			size := hi - lo
			base, rem := tc.n/tc.p, tc.n%tc.p
			want := base
			if tc.p > 1 && i < rem {
				want++
			}
			if tc.p == 1 {
				want = tc.n
			}
			if size != want {
				t.Fatalf("ShardRange(%d,%d,%d) size %d, want %d", tc.n, tc.p, i, size, want)
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("ShardRange(%d,%d) covers %d", tc.n, tc.p, prevHi)
		}
	}
}
