package simrt

import (
	"fmt"

	"xmoe/internal/netsim"
)

// Part is one rank's contribution to (or share of) a collective payload.
// Data carries real numbers in numeric mode and is nil in symbolic mode;
// Meta carries routing metadata (e.g. ERI-array segments) that travels
// with the payload; Bytes is the modeled wire size and must always be set
// (it is what the network simulator charges).
type Part struct {
	Data  []float32
	Meta  any
	Bytes int64
}

// a2avEntry is one rank's deposit for an all-to-all-v.
type a2avEntry struct {
	parts []Part // destination-indexed
}

type a2avResult struct {
	cost netsim.Cost
	// recv[dst][src] is the part sent by member src to member dst.
	recv [][]Part
}

// drainComm serialises a blocking collective behind the rank's in-flight
// non-blocking transfers: the comm stream executes in order, so a
// blocking operation cannot start (and the caller cannot return) before
// previously issued async collectives complete. The drained time is
// charged to the clock here and the deposited entry clock carries it to
// the peers through the usual BSP max; callers capture their trace-span
// start *before* draining, so the wait is attributed to the blocking
// collective's span and breakdowns still sum to wall-clock time.
func (r *Rank) drainComm() {
	if r.commBusyUntil > r.Clock {
		r.Clock = r.commBusyUntil
	}
}

// AlltoAllV exchanges uneven per-destination parts among the group: send
// must have one Part per member (send[j] goes to member j, including
// self). It returns the parts this rank received, indexed by source
// member. The modeled time is charged to every member's clock; traffic is
// charged per link class by the network simulator.
func (r *Rank) AlltoAllV(g *Group, name string, send []Part) []Part {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("simrt: AlltoAllV send has %d parts for group of %d", len(send), g.Size()))
	}
	r.preCollective(name)
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, name, a2avEntry{parts: send}, func(entries []any, _ []float64) any {
		// Row slices view two flat backing arrays: large groups would
		// otherwise pay 2p allocations per collective, which dominates
		// the symbolic sweeps at 256-1024 ranks.
		p := len(entries)
		bytes := make([][]int64, p)
		bytesFlat := make([]int64, p*p)
		recv := make([][]Part, p)
		recvFlat := make([]Part, p*p)
		for d := range recv {
			bytes[d] = bytesFlat[d*p : (d+1)*p]
			recv[d] = recvFlat[d*p : (d+1)*p]
		}
		for s, e := range entries {
			ent := e.(a2avEntry)
			for d, part := range ent.parts {
				bytes[s][d] = part.Bytes
				recv[d][s] = part
			}
		}
		cost := g.c.CostEngine().AlltoAllV(g.ranks, bytes)
		return a2avResult{cost: cost, recv: recv}
	}).(a2avResult)
	r.Clock += res.cost.Seconds
	r.Trace.Record(name, start, r.Clock-start)
	return res.recv[g.IndexOf(r.ID)]
}

// AlltoAllVCost returns the active cost engine's price of the equivalent
// exchange without performing it; used by analysis harnesses. It is a
// convenience over CostEngine().AlltoAllV for callers that already hold
// the byte matrix.
func (c *Cluster) AlltoAllVCost(ranks []int, bytes [][]int64) netsim.Cost {
	return c.CostEngine().AlltoAllV(ranks, bytes)
}

type allReduceEntry struct {
	data  []float32
	bytes int64
}

type allReduceResult struct {
	cost netsim.Cost
	sum  []float32
}

// AllReduce sums each member's data elementwise (when non-nil) and charges
// the modeled ring-allreduce time for the given per-rank byte size. The
// returned slice is shared by all members and must not be mutated.
func (r *Rank) AllReduce(g *Group, name string, data []float32, bytes int64) []float32 {
	r.preCollective(name)
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, name, allReduceEntry{data: data, bytes: bytes}, func(entries []any, _ []float64) any {
		var maxBytes int64
		var sum []float32
		for _, e := range entries {
			ent := e.(allReduceEntry)
			if ent.bytes > maxBytes {
				maxBytes = ent.bytes
			}
			if ent.data != nil {
				if sum == nil {
					sum = make([]float32, len(ent.data))
				}
				for i, v := range ent.data {
					sum[i] += v
				}
			}
		}
		return allReduceResult{cost: g.c.CostEngine().AllReduce(g.ranks, maxBytes), sum: sum}
	}).(allReduceResult)
	r.Clock += res.cost.Seconds
	r.Trace.Record(name, start, r.Clock-start)
	return res.sum
}

type allGatherResult struct {
	cost  netsim.Cost
	parts []Part
}

// AllGather gathers one part from every member; all members receive the
// full list indexed by member. The returned parts are shared and must not
// be mutated.
func (r *Rank) AllGather(g *Group, name string, part Part) []Part {
	r.preCollective(name)
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, name, part, func(entries []any, _ []float64) any {
		parts := make([]Part, len(entries))
		bytes := make([]int64, len(entries))
		for i, e := range entries {
			parts[i] = e.(Part)
			bytes[i] = parts[i].Bytes
		}
		return allGatherResult{cost: g.c.CostEngine().AllGather(g.ranks, bytes), parts: parts}
	}).(allGatherResult)
	r.Clock += res.cost.Seconds
	r.Trace.Record(name, start, r.Clock-start)
	return res.parts
}

type bcastResult struct {
	cost netsim.Cost
	part Part
}

// Broadcast distributes root's part (root is a member index) to all
// members and returns it. The payload is cloned inside the rendezvous —
// while every member is parked — so the returned Part never aliases the
// root's buffer and the root may overwrite its own data immediately after
// the call without racing slower receivers.
func (r *Rank) Broadcast(g *Group, name string, rootIdx int, part Part) Part {
	r.preCollective(name)
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, name, part, func(entries []any, _ []float64) any {
		p := entries[rootIdx].(Part)
		if p.Data != nil {
			d := make([]float32, len(p.Data))
			copy(d, p.Data)
			p.Data = d
		}
		return bcastResult{cost: g.c.CostEngine().Broadcast(g.ranks, p.Bytes), part: p}
	}).(bcastResult)
	r.Clock += res.cost.Seconds
	r.Trace.Record(name, start, r.Clock-start)
	return res.part
}

// Barrier synchronises all members' clocks.
func (r *Rank) Barrier(g *Group) {
	r.preCollective("barrier")
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, "barrier", nil, func(entries []any, _ []float64) any {
		return g.c.CostEngine().Barrier(g.ranks)
	}).(netsim.Cost)
	r.Clock += res.Seconds
	r.Trace.Record("barrier", start, r.Clock-start)
}

// countsResult is the shared result of one ExchangeCounts rendezvous.
type countsResult struct {
	cost netsim.Cost
	// recv[dst] is the row of counts destined to member dst, indexed by
	// source (views into one flat backing array).
	recv [][]int64
}

// ExchangeCounts performs the small metadata all-to-all that precedes an
// uneven payload exchange (the tokens_per_expert exchange in Listing 1,
// line 44): each member sends counts[j] (one int64 per destination) and
// receives the values destined to it, indexed by source. Wire size is 8
// bytes per count.
//
// The caller's counts slice is read only inside the rendezvous, while
// every member is parked, so rank-local scratch can be passed and freely
// reused after the call — this keeps the per-layer metadata exchange
// allocation-free on the rank side (the reducer's transposed matrix is
// one amortised allocation shared by the whole group). The returned slice
// is shared by construction and must not be mutated.
func (r *Rank) ExchangeCounts(g *Group, name string, counts []int64) []int64 {
	if len(counts) != g.Size() {
		panic(fmt.Sprintf("simrt: ExchangeCounts has %d counts for group of %d", len(counts), g.Size()))
	}
	r.preCollective(name)
	start := r.Clock
	r.drainComm() // drained stream time is part of this collective's span
	res := g.collect(r, name, counts, func(entries []any, _ []float64) any {
		p := len(entries)
		flat := make([]int64, p*p)
		recv := make([][]int64, p)
		for d := range recv {
			recv[d] = flat[d*p : (d+1)*p]
		}
		for s, e := range entries {
			for d, v := range e.([]int64) {
				recv[d][s] = v
			}
		}
		return countsResult{cost: g.c.CostEngine().AlltoAllV(g.ranks, g.countBytes()), recv: recv}
	}).(countsResult)
	r.Clock += res.cost.Seconds
	r.Trace.Record(name, start, r.Clock-start)
	return res.recv[g.IndexOf(r.ID)]
}
