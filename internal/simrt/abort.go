package simrt

// Abortable rendezvous and deterministic fault injection. Without this
// machinery a rank that dies mid-collective leaves every peer parked at
// the rendezvous forever and Cluster.Run never returns; with it, a
// failing rank marks itself gone on every group it belongs to, pending
// and future rendezvous that can no longer complete wake their waiters
// with a typed error, and every survivor unwinds through Run with
// ErrPeerFailed instead of deadlocking. Injected faults (crashes,
// stragglers, flaky-collective delays) enter through the Injector hook
// so the fault schedule lives outside the runtime and stays fully
// deterministic: the runtime only ever asks "given this rank at this
// clock, what happens?".

import (
	"errors"
	"fmt"
)

var (
	// ErrPeerFailed is reported by a surviving rank whose collective was
	// aborted because another member of the group failed (crashed,
	// panicked, returned an error, or exited while peers still expected
	// it at a rendezvous).
	ErrPeerFailed = errors.New("simrt: peer rank failed")
	// ErrRankCrashed marks an injected rank crash (Injector.CrashError).
	ErrRankCrashed = errors.New("simrt: rank crashed (injected fault)")
	// ErrCommTimeout is returned by CommHandle.WaitDeadline when the
	// collective's modeled completion exceeds the caller's deadline.
	ErrCommTimeout = errors.New("simrt: collective exceeded deadline")
)

// Injector is the fault-injection hook consulted by every rank at each
// compute span and collective entry. Implementations must be safe for
// concurrent use by all rank goroutines and deterministic in their
// arguments (same rank/name/clock sequence, same answers) so that a
// seeded fault plan reproduces bit-identical schedules. A nil
// Cluster.Inject disables injection with zero overhead beyond one nil
// check per operation.
type Injector interface {
	// ComputeScale returns the straggler multiplier for the rank's
	// compute durations (1 means healthy; 2 means the rank computes at
	// half speed).
	ComputeScale(rank int) float64
	// CollectiveDelay returns extra seconds to charge the rank's clock
	// before it enters the named collective — the modeled
	// timeout-then-retry cost of a flaky collective (zero when healthy).
	CollectiveDelay(rank int, name string, clock float64) float64
	// CrashError returns a non-nil error when the rank must crash at or
	// before the given clock; the rank aborts with that error at its
	// next operation boundary. Implementations should wrap
	// ErrRankCrashed.
	CrashError(rank int, clock float64) error
}

// abortPanic carries a typed abort up through the SPMD body to Run's
// recover, which converts it to the rank's error instead of a generic
// "rank panicked" wrapper.
type abortPanic struct{ err error }

// fail aborts the calling rank's SPMD body with err. It never returns.
func (r *Rank) fail(err error) {
	panic(abortPanic{err: err})
}

// preCollective is called at the entry of every collective (blocking and
// async): it fires any pending injected crash and charges flaky-
// collective retry delays to the rank's clock, recording them under
// "<name>_retry" so charged breakdowns still sum to wall-clock time.
func (r *Rank) preCollective(name string) {
	inj := r.C.Inject
	if inj == nil {
		return
	}
	if err := inj.CrashError(r.ID, r.Clock); err != nil {
		r.fail(fmt.Errorf("rank %d at %.6fs in %s: %w", r.ID, r.Clock, name, err))
	}
	if d := inj.CollectiveDelay(r.ID, name, r.Clock); d > 0 {
		r.Trace.Record(name+"_retry", r.Clock, d)
		r.Clock += d
	}
}

// failRank records rank id's failure and marks it gone on every group it
// belongs to, waking any peers parked at rendezvous that can no longer
// complete. Called from the failing rank's own goroutine (Run's recover
// or error path), so the rank is never mid-rendezvous when it runs.
func (c *Cluster) failRank(id int, err error) {
	c.failMu.Lock()
	if c.failed == nil {
		c.failed = map[int]error{}
	}
	if _, dup := c.failed[id]; !dup {
		c.failed[id] = err
	}
	groups := append([]*Group(nil), c.groups...)
	c.failMu.Unlock()
	for _, g := range groups {
		g.markGone(id, err)
	}
}

// rankDone marks a cleanly returned rank gone on its groups so that a
// peer issuing a collective the finished rank will never join gets a
// desync error instead of deadlocking. Rendezvous the rank already
// deposited to are unaffected (the gone mark is sequence-aware), so
// well-formed SPMD programs never observe it.
func (c *Cluster) rankDone(id int) {
	c.failMu.Lock()
	groups := append([]*Group(nil), c.groups...)
	c.failMu.Unlock()
	err := fmt.Errorf("rank %d already returned (collective-count desync): %w", id, ErrPeerFailed)
	for _, g := range groups {
		g.markGone(id, err)
	}
}

// resetFailures clears the failure registry and every group's gone marks
// at the start of a Run, so a cluster whose previous Run completed
// cleanly can be reused (the DistTrainer runs one Run per step on
// persistent groups). A cluster whose previous Run *failed* is poisoned
// — rank collective counters are desynchronised and parked rendezvous
// state may linger — and must be rebuilt, not reused; the recovery loop
// in internal/train does exactly that.
func (c *Cluster) resetFailures() {
	c.failMu.Lock()
	c.failed = nil
	groups := append([]*Group(nil), c.groups...)
	c.failMu.Unlock()
	for _, g := range groups {
		g.clearGone()
	}
}

// FailedRanks returns a copy of the failure registry from the most
// recent Run: global rank -> the error that took it down. Empty after a
// clean run.
func (c *Cluster) FailedRanks() map[int]error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	out := make(map[int]error, len(c.failed))
	for k, v := range c.failed {
		out[k] = v
	}
	return out
}

// registerGroup adds g to the cluster's group list so rank failures can
// abort its rendezvous.
func (c *Cluster) registerGroup(g *Group) {
	c.failMu.Lock()
	c.groups = append(c.groups, g)
	c.failMu.Unlock()
}
