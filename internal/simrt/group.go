package simrt

import (
	"fmt"
	"sync"
)

// Group is a communicator: an ordered set of ranks that perform
// collectives together. Collective calls on a group must be issued in the
// same order by every member (SPMD discipline), as on a real NCCL/RCCL
// communicator.
type Group struct {
	c     *Cluster
	ranks []int
	index map[int]int

	mu      sync.Mutex
	counter []uint64 // per-member collective sequence number
	pending map[uint64]*rendezvous
	// gone[i] is non-nil when member i can no longer participate in
	// collectives (crashed, errored, or returned); goneAt[i] is the first
	// sequence number the member will never reach. Rendezvous at earlier
	// sequences already hold its deposit and complete normally; rendezvous
	// at goneAt or later abort with ErrPeerFailed instead of deadlocking.
	gone   []error
	goneAt []uint64
	// countMatrix is the lazily built constant byte matrix of the
	// ExchangeCounts metadata collective (8 bytes per pair, self
	// included), cached because it is identical for every exchange on
	// this group and would otherwise be p+1 allocations per layer.
	countMatrix [][]int64
}

// countBytes returns the cached ExchangeCounts byte matrix, building it on
// first use. The matrix is immutable after construction.
func (g *Group) countBytes() [][]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.countMatrix == nil {
		p := len(g.ranks)
		flat := make([]int64, p*p)
		for i := range flat {
			flat[i] = 8
		}
		g.countMatrix = make([][]int64, p)
		for i := range g.countMatrix {
			g.countMatrix[i] = flat[i*p : (i+1)*p]
		}
	}
	return g.countMatrix
}

// Size returns the number of member ranks.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the member ranks in ascending global order. The slice must
// not be mutated.
func (g *Group) Ranks() []int { return g.ranks }

// IndexOf returns the member index of global rank r, panicking if r is not
// a member.
func (g *Group) IndexOf(r int) int {
	i, ok := g.index[r]
	if !ok {
		panic(fmt.Sprintf("simrt: rank %d not in group %v", r, g.ranks))
	}
	return i
}

// Contains reports whether global rank r is a member.
func (g *Group) Contains(r int) bool {
	_, ok := g.index[r]
	return ok
}

// rendezvous is the meeting point for one collective call: every member
// deposits its contribution and entry clock; the last arriver runs the
// reducer once; everyone leaves with the shared result.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	left    int
	done    bool
	// failed is set (and cond broadcast) when a member that has not yet
	// deposited goes away: the rendezvous can never complete, so waiters
	// wake and abort instead of parking forever.
	failed  error
	entries []any
	clocks  []float64
	result  any
}

func newRendezvous(n int) *rendezvous {
	rv := &rendezvous{entries: make([]any, n), clocks: make([]float64, n)}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

// collect runs a rendezvous for rank r: it deposits entry and r.Clock,
// blocks until all members arrive, has exactly one member evaluate
// reduce(entries, clocks) once, synchronises r.Clock to the maximum entry
// clock (BSP semantics), and returns the shared result. The collective's
// modeled duration is part of the result and must be added to r.Clock by
// the caller.
func (g *Group) collect(r *Rank, name string, entry any, reduce func(entries []any, clocks []float64) any) any {
	return g.collectClock(r, name, entry, reduce, true)
}

// collectNoSync is collect without the BSP clock synchronisation: the rank
// deposits its contribution, the payload exchange resolves, but the rank's
// clock is left untouched so it can keep computing past the rendezvous.
// Non-blocking collectives use this — the synchronisation point (the
// collective's start time, max over entry clocks) travels inside the
// reducer's result and is charged lazily by CommHandle.Wait.
func (g *Group) collectNoSync(r *Rank, name string, entry any, reduce func(entries []any, clocks []float64) any) any {
	return g.collectClock(r, name, entry, reduce, false)
}

func (g *Group) collectClock(r *Rank, name string, entry any, reduce func(entries []any, clocks []float64) any, sync bool) any {
	idx := g.IndexOf(r.ID)

	g.mu.Lock()
	seq := g.counter[idx]
	// A member already gone before this sequence will never deposit, so
	// the rendezvous can never complete: abort without parking. Checked
	// under g.mu, the same lock markGone holds while setting gone marks
	// and aborting pending rendezvous, so a failure is either seen here
	// or wakes this rank from the rendezvous below — never missed.
	for m, ge := range g.gone {
		if ge != nil && m != idx && g.goneAt[m] <= seq {
			g.mu.Unlock()
			r.fail(fmt.Errorf("rank %d: %s aborted, peer rank %d gone (%v): %w",
				r.ID, name, g.ranks[m], ge, ErrPeerFailed))
		}
	}
	g.counter[idx]++
	rv, ok := g.pending[seq]
	if !ok {
		rv = newRendezvous(len(g.ranks))
		g.pending[seq] = rv
	}
	g.mu.Unlock()

	rv.mu.Lock()
	rv.entries[idx] = entry
	rv.clocks[idx] = r.Clock
	rv.arrived++
	if rv.arrived == len(g.ranks) {
		// If the reducer panics it would unwind holding rv.mu and park
		// every peer forever; fail the rendezvous first, then let the
		// panic continue to Run's recover.
		func() {
			defer func() {
				if p := recover(); p != nil {
					rv.failed = fmt.Errorf("rank %d: %s reducer panicked: %v: %w",
						r.ID, name, p, ErrPeerFailed)
					rv.cond.Broadcast()
					rv.mu.Unlock()
					panic(p)
				}
			}()
			rv.result = reduce(rv.entries, rv.clocks)
		}()
		rv.done = true
		rv.cond.Broadcast()
	} else {
		for !rv.done && rv.failed == nil {
			rv.cond.Wait()
		}
	}
	if rv.failed != nil {
		err := rv.failed
		rv.mu.Unlock()
		// The pending entry is intentionally leaked: the cluster is
		// poisoned after a failed Run and must be rebuilt, not reused.
		r.fail(fmt.Errorf("rank %d: %s aborted at rendezvous: %w", r.ID, name, err))
	}
	res := rv.result
	var mc float64
	for _, c := range rv.clocks {
		if c > mc {
			mc = c
		}
	}
	rv.left++
	last := rv.left == len(g.ranks)
	rv.mu.Unlock()

	if last {
		g.mu.Lock()
		delete(g.pending, seq)
		g.mu.Unlock()
	}

	if sync && mc > r.Clock {
		r.Clock = mc
	}
	return res
}

// markGone records that global rank gr will issue no further collectives
// on this group, failing it with err, and wakes waiters at every pending
// rendezvous the rank never deposited to (sequence >= its counter).
// Rendezvous it already deposited to complete normally, so a crash never
// corrupts an exchange that was already fully determined. No-op if gr is
// not a member or was already marked.
func (g *Group) markGone(gr int, err error) {
	idx, ok := g.index[gr]
	if !ok {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gone == nil {
		g.gone = make([]error, len(g.ranks))
		g.goneAt = make([]uint64, len(g.ranks))
	}
	if g.gone[idx] != nil {
		return
	}
	g.gone[idx] = err
	g.goneAt[idx] = g.counter[idx]
	for seq, rv := range g.pending {
		if seq < g.goneAt[idx] {
			continue // the gone rank already deposited; it can complete
		}
		rv.mu.Lock()
		if !rv.done && rv.failed == nil {
			rv.failed = fmt.Errorf("peer rank %d gone (%v): %w", gr, err, ErrPeerFailed)
			rv.cond.Broadcast()
		}
		rv.mu.Unlock()
	}
}

// clearGone resets the gone marks so a cleanly reused cluster (one Run
// per training step on persistent groups) does not see stale
// end-of-previous-Run marks from rankDone.
func (g *Group) clearGone() {
	g.mu.Lock()
	for i := range g.gone {
		g.gone[i] = nil
		g.goneAt[i] = 0
	}
	g.mu.Unlock()
}
