package simrt

import (
	"fmt"

	"xmoe/internal/netsim"
)

// Non-blocking collectives. The payload exchange still resolves at a
// rendezvous (all members must deposit before anyone can receive), but the
// modeled *time* is decoupled from the call: issuing a collective leaves
// the rank's clock untouched, and CommHandle.Wait later charges only the
// part of the collective's duration the rank did not cover with compute in
// the meantime. This is the overlap model behind the chunked MoE pipelines
// (FastMoE's smart scheduling, Megatron Core's MoE comm/compute overlap):
//
//	start = max over members of max(entry clock, comm-stream busy time)
//	end   = start + netsim cost
//	Wait: clock = max(clock, end)   — the uncovered remainder
//
// Collectives issued by one rank serialise on its comm stream (a later
// async collective cannot start before an earlier one finishes), which
// prevents chunked pipelines from overlapping their own chunks' transfers
// with each other for free bandwidth.

// a2avAsyncEntry is one rank's deposit for a non-blocking all-to-all-v:
// the per-destination parts plus the rank's comm-stream horizon.
type a2avAsyncEntry struct {
	parts []Part
	busy  float64
}

// a2avAsyncResult is the shared result of an async all-to-all-v
// rendezvous: the exchanged parts and the collective's physical timeline.
type a2avAsyncResult struct {
	cost       netsim.Cost
	start, end float64
	// recv[dst][src] is the part sent by member src to member dst.
	recv [][]Part
}

// CommHandle tracks one in-flight non-blocking collective for one rank.
// Wait must be called by the issuing rank (handles are not shareable
// across ranks) and is idempotent. Every issued handle must eventually be
// waited: a handle dropped without Wait means the program consumed the
// collective's payload without synchronising (or never consumed it at
// all), so Cluster.Run reports never-waited handles as rank errors when
// the SPMD body returns.
type CommHandle struct {
	r    *Rank
	name string
	// issuedAt is the rank's clock when the collective was issued; the
	// leak report and WaitDeadline are anchored to it.
	issuedAt float64
	start    float64
	end      float64
	recv     []Part
	waited   bool
}

// Seconds returns the collective's full modeled duration, regardless of
// how much of it overlaps compute.
func (h *CommHandle) Seconds() float64 { return h.end - h.start }

// Done reports whether the collective has completed by the rank's current
// clock — i.e. whether Wait would charge nothing.
func (h *CommHandle) Done() bool { return h.r.Clock >= h.end }

// Wait blocks the rank's virtual clock until the collective completes and
// returns the received parts (indexed by source member). Only the
// *uncovered* remainder of the collective's cost — the part not hidden
// behind compute the rank performed since issuing — is charged to the
// clock and recorded under the collective's stage name, so per-stage
// breakdowns still sum to wall-clock time. The full physical span is
// recorded as an overlapped trace event.
func (h *CommHandle) Wait() []Part {
	if h.waited {
		return h.recv
	}
	h.waited = true
	r := h.r
	r.Trace.RecordOverlapped(h.name, h.start, h.end-h.start)
	uncovered := h.end - r.Clock
	if uncovered < 0 {
		uncovered = 0
	}
	r.Trace.Record(h.name, r.Clock, uncovered)
	r.Clock += uncovered
	return h.recv
}

// AlltoAllVAsync issues a non-blocking uneven all-to-all among the group:
// like AlltoAllV, but the call returns immediately at the rank's current
// clock with a handle. The collective physically starts once every member
// has issued it and every member's comm stream is free, and completes one
// netsim cost later; Wait charges the issuing rank only the uncovered
// remainder. Every member must issue the same collectives in the same
// order (SPMD discipline), including the interleaving of async issues and
// waits with blocking collectives on the same group.
func (r *Rank) AlltoAllVAsync(g *Group, name string, send []Part) *CommHandle {
	if len(send) != g.Size() {
		panic(fmt.Sprintf("simrt: AlltoAllVAsync send has %d parts for group of %d", len(send), g.Size()))
	}
	r.preCollective(name)
	res := g.collectNoSync(r, name, a2avAsyncEntry{parts: send, busy: r.commBusyUntil},
		func(entries []any, clocks []float64) any {
			p := len(entries)
			bytes := make([][]int64, p)
			bytesFlat := make([]int64, p*p)
			recv := make([][]Part, p)
			recvFlat := make([]Part, p*p)
			for d := range recv {
				bytes[d] = bytesFlat[d*p : (d+1)*p]
				recv[d] = recvFlat[d*p : (d+1)*p]
			}
			var start float64
			for s, e := range entries {
				ent := e.(a2avAsyncEntry)
				if clocks[s] > start {
					start = clocks[s]
				}
				if ent.busy > start {
					start = ent.busy
				}
				for d, part := range ent.parts {
					bytes[s][d] = part.Bytes
					recv[d][s] = part
				}
			}
			cost := g.c.CostEngine().AlltoAllV(g.ranks, bytes)
			return a2avAsyncResult{cost: cost, start: start, end: start + cost.Seconds, recv: recv}
		}).(a2avAsyncResult)
	r.commBusyUntil = res.end
	h := &CommHandle{
		r:        r,
		name:     name,
		issuedAt: r.Clock,
		start:    res.start,
		end:      res.end,
		recv:     res.recv[g.IndexOf(r.ID)],
	}
	r.issuedHandles = append(r.issuedHandles, h)
	return h
}

// WaitDeadline is Wait with a timeout anchored at issue time: if the
// collective's modeled completion lands more than timeout seconds after
// it was issued, the rank charges its clock only up to the deadline
// (recorded as "<name>_timeout"), the payload is discarded, and
// ErrCommTimeout is returned — the simulated analogue of a NCCL/RCCL
// watchdog firing on a stuck collective. On time, it behaves exactly
// like Wait. Either way the handle counts as waited.
func (h *CommHandle) WaitDeadline(timeout float64) ([]Part, error) {
	if h.waited {
		return h.recv, nil
	}
	if h.end-h.issuedAt > timeout {
		h.waited = true
		r := h.r
		r.Trace.RecordOverlapped(h.name, h.start, h.end-h.start)
		if deadline := h.issuedAt + timeout; deadline > r.Clock {
			r.Trace.Record(h.name+"_timeout", r.Clock, deadline-r.Clock)
			r.Clock = deadline
		}
		return nil, fmt.Errorf("simrt: %s issued at %.6fs would complete at %.6fs, %.6fs past its %.6fs deadline: %w",
			h.name, h.issuedAt, h.end, h.end-h.issuedAt-timeout, timeout, ErrCommTimeout)
	}
	return h.Wait(), nil
}

// leakedHandles describes the async collectives this rank issued but
// never waited, in issue order, each as "<name>@<issue clock>" so an
// aborted run pinpoints which call dropped its synchronisation. Called
// by the Run harness after the SPMD body returns.
func (r *Rank) leakedHandles() []string {
	var leaked []string
	for _, h := range r.issuedHandles {
		if !h.waited {
			leaked = append(leaked, fmt.Sprintf("%s@%.6fs", h.name, h.issuedAt))
		}
	}
	return leaked
}

// ChunkRange returns the half-open row range [lo, hi) of chunk c when n
// rows are split into chunks nearly-equal pieces: the canonical split the
// chunked overlap pipelines use on both the send and receive side, so the
// two ends agree on chunk boundaries without exchanging extra metadata.
func ChunkRange(n, chunks, c int) (lo, hi int) {
	if chunks <= 1 {
		return 0, n
	}
	return n * c / chunks, n * (c + 1) / chunks
}
