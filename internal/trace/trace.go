// Package trace records named, timestamped durations from the simulated
// ranks. The per-stage breakdowns in the paper's analysis figures (Fig. 11
// MoE layer breakdown, Fig. 12 dispatch breakdown) are produced by
// aggregating these events.
package trace

import (
	"sort"
	"sync"
)

// Event is one recorded span on a rank's virtual timeline.
type Event struct {
	// Name identifies the pipeline stage (e.g. "gate", "dispatch_a2a").
	Name string
	// Start is the virtual time at which the span began, in seconds.
	Start float64
	// Dur is the span's duration in seconds.
	Dur float64
}

// Recorder accumulates events. It is safe for concurrent use. The zero
// value is a valid, enabled recorder.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (r *Recorder) Record(name string, start, dur float64) {
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Start: start, Dur: dur})
	r.mu.Unlock()
}

// Events returns a copy of all recorded events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Total returns the summed duration of all events with the given name.
func (r *Recorder) Total(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t float64
	for _, e := range r.events {
		if e.Name == name {
			t += e.Dur
		}
	}
	return t
}

// Breakdown returns the summed duration per event name.
func (r *Recorder) Breakdown() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for _, e := range r.events {
		out[e.Name] += e.Dur
	}
	return out
}

// Names returns the distinct event names in sorted order.
func (r *Recorder) Names() []string {
	b := r.Breakdown()
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Merge sums the breakdowns of several recorders, averaging over n
// recorders if avg is true. Used to aggregate per-rank traces into the
// per-stage times the paper plots.
func Merge(recorders []*Recorder, avg bool) map[string]float64 {
	out := map[string]float64{}
	for _, r := range recorders {
		for name, d := range r.Breakdown() {
			out[name] += d
		}
	}
	if avg && len(recorders) > 0 {
		inv := 1 / float64(len(recorders))
		for name := range out {
			out[name] *= inv
		}
	}
	return out
}
