// Package trace records named, timestamped durations from the simulated
// ranks. The per-stage breakdowns in the paper's analysis figures (Fig. 11
// MoE layer breakdown, Fig. 12 dispatch breakdown) are produced by
// aggregating these events.
package trace

import (
	"sort"
	"sync"
)

// Event is one recorded span on a rank's virtual timeline.
type Event struct {
	// Name identifies the pipeline stage (e.g. "gate", "dispatch_a2a").
	Name string
	// Start is the virtual time at which the span began, in seconds.
	Start float64
	// Dur is the span's duration in seconds.
	Dur float64
	// Overlap marks a span that ran concurrently with the rank's compute
	// (an in-flight non-blocking collective). Overlapped spans describe
	// where the communication physically was on the timeline; the clock
	// charge they caused is recorded separately as a regular span holding
	// only the uncovered remainder, so Breakdown sums (which must add up
	// to wall-clock time) skip them.
	Overlap bool
	// Mark flags an instantaneous (zero-duration) annotation on the
	// timeline — a fault injection, a checkpoint commit, a recovery
	// boundary. Marks carry no time, so Breakdown/ChargedTotal/Total skip
	// them entirely (no zero-valued keys polluting per-stage tables); use
	// Marks to inspect them.
	Mark bool
}

// Recorder accumulates events. It is safe for concurrent use. The zero
// value is a valid, enabled recorder.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (r *Recorder) Record(name string, start, dur float64) {
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Start: start, Dur: dur})
	r.mu.Unlock()
}

// RecordOverlapped appends an overlapped span: a non-blocking collective
// that was in flight from start for dur seconds while the rank kept
// computing. Overlapped spans are excluded from Breakdown/Total (the
// uncovered clock charge is recorded separately by the waiter); use
// OverlappedTotal/OverlapBreakdown to inspect them.
func (r *Recorder) RecordOverlapped(name string, start, dur float64) {
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Start: start, Dur: dur, Overlap: true})
	r.mu.Unlock()
}

// Mark appends an instantaneous event at virtual time at: a zero-duration
// annotation (fault injection, checkpoint, recovery boundary) that shares
// the timeline with spans but never contributes to Breakdown, Total, or
// ChargedTotal — those keep summing to wall-clock time exactly as before.
func (r *Recorder) Mark(name string, at float64) {
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Start: at, Mark: true})
	r.mu.Unlock()
}

// Marks returns a copy of the instantaneous events in insertion order.
func (r *Recorder) Marks() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Mark {
			out = append(out, e)
		}
	}
	return out
}

// MarkCount returns the number of marks with the given name.
func (r *Recorder) MarkCount(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Mark && e.Name == name {
			n++
		}
	}
	return n
}

// Events returns a copy of all recorded events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Total returns the summed duration of all clock-charged (non-overlapped)
// events with the given name.
func (r *Recorder) Total(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t float64
	for _, e := range r.events {
		if e.Name == name && !e.Overlap && !e.Mark {
			t += e.Dur
		}
	}
	return t
}

// OverlappedTotal returns the summed duration of the overlapped spans with
// the given name: the full in-flight time of non-blocking collectives,
// regardless of how much of it was hidden behind compute. The hidden
// portion is OverlappedTotal(name) - Total(name) when the waiter records
// the uncovered remainder under the same name.
func (r *Recorder) OverlappedTotal(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t float64
	for _, e := range r.events {
		if e.Name == name && e.Overlap {
			t += e.Dur
		}
	}
	return t
}

// ChargedTotal returns the summed duration of every clock-charged
// (non-overlapped) span: by construction the rank's wall-clock time when
// all clock advances were recorded, which the overlapped-trainer tests
// use to assert that per-stage breakdowns still sum to wall-clock even
// with in-flight collectives present.
func (r *Recorder) ChargedTotal() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t float64
	for _, e := range r.events {
		if !e.Overlap && !e.Mark {
			t += e.Dur
		}
	}
	return t
}

// Breakdown returns the summed duration per event name over clock-charged
// spans only, so the values add up to the rank's wall-clock time even when
// overlapped collectives are present.
func (r *Recorder) Breakdown() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for _, e := range r.events {
		if !e.Overlap && !e.Mark {
			out[e.Name] += e.Dur
		}
	}
	return out
}

// OverlapBreakdown returns the summed duration per event name over
// overlapped spans only.
func (r *Recorder) OverlapBreakdown() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for _, e := range r.events {
		if e.Overlap {
			out[e.Name] += e.Dur
		}
	}
	return out
}

// Names returns the distinct event names in sorted order.
func (r *Recorder) Names() []string {
	b := r.Breakdown()
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Merge sums the breakdowns of several recorders, averaging over n
// recorders if avg is true. Used to aggregate per-rank traces into the
// per-stage times the paper plots.
func Merge(recorders []*Recorder, avg bool) map[string]float64 {
	out := map[string]float64{}
	for _, r := range recorders {
		for name, d := range r.Breakdown() {
			out[name] += d
		}
	}
	if avg && len(recorders) > 0 {
		inv := 1 / float64(len(recorders))
		for name := range out {
			out[name] *= inv
		}
	}
	return out
}

// MergeMaps is Merge over already-materialised breakdown maps — used
// when a caller snapshots Breakdown() mid-run (e.g. the forward-only
// slice of a fwd+bwd trace) and aggregates the snapshots afterwards.
func MergeMaps(maps []map[string]float64, avg bool) map[string]float64 {
	out := map[string]float64{}
	for _, m := range maps {
		for name, d := range m {
			out[name] += d
		}
	}
	if avg && len(maps) > 0 {
		inv := 1 / float64(len(maps))
		for name := range out {
			out[name] *= inv
		}
	}
	return out
}
