package trace

import (
	"sync"
	"testing"
)

func TestRecordAndTotals(t *testing.T) {
	var r Recorder
	r.Record("gate", 0, 1.5)
	r.Record("dispatch", 1.5, 2.0)
	r.Record("gate", 3.5, 0.5)
	if got := r.Total("gate"); got != 2.0 {
		t.Fatalf("Total(gate) = %f, want 2.0", got)
	}
	if got := r.Total("missing"); got != 0 {
		t.Fatalf("Total(missing) = %f, want 0", got)
	}
	b := r.Breakdown()
	if b["gate"] != 2.0 || b["dispatch"] != 2.0 {
		t.Fatalf("Breakdown = %v", b)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "dispatch" || names[1] != "gate" {
		t.Fatalf("Names = %v, want sorted [dispatch gate]", names)
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Name != "gate" || evs[1].Start != 1.5 {
		t.Fatalf("Events = %v", evs)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

// TestOverlappedSpans pins the split accounting of non-blocking
// collectives: overlapped spans carry the physical comm timeline and stay
// out of Breakdown/Total, so clock-charged sums still equal wall-clock.
func TestOverlappedSpans(t *testing.T) {
	var r Recorder
	r.Record("gemm", 0, 3.0)
	r.RecordOverlapped("a2a", 0, 2.5)
	r.Record("a2a", 3.0, 0.5) // uncovered remainder charged by Wait
	if got := r.Total("a2a"); got != 0.5 {
		t.Fatalf("Total(a2a) = %f, want only the uncovered 0.5", got)
	}
	if got := r.OverlappedTotal("a2a"); got != 2.5 {
		t.Fatalf("OverlappedTotal(a2a) = %f, want 2.5", got)
	}
	if got := r.OverlappedTotal("gemm"); got != 0 {
		t.Fatalf("OverlappedTotal(gemm) = %f, want 0", got)
	}
	b := r.Breakdown()
	if b["gemm"] != 3.0 || b["a2a"] != 0.5 {
		t.Fatalf("Breakdown = %v", b)
	}
	var wall float64
	for _, d := range b {
		wall += d
	}
	if wall != 3.5 {
		t.Fatalf("clock-charged breakdown sums to %f, want wall-clock 3.5", wall)
	}
	ob := r.OverlapBreakdown()
	if len(ob) != 1 || ob["a2a"] != 2.5 {
		t.Fatalf("OverlapBreakdown = %v", ob)
	}
	evs := r.Events()
	if len(evs) != 3 || !evs[1].Overlap || evs[2].Overlap {
		t.Fatalf("Events overlap flags wrong: %+v", evs)
	}
}

// TestMarks pins the instantaneous-event contract: marks appear in
// Events/Marks/MarkCount but never perturb the clock-charged aggregates
// (Breakdown keys, ChargedTotal, Total, Names), so fault and checkpoint
// annotations can share the timeline with per-stage spans for free.
func TestMarks(t *testing.T) {
	var r Recorder
	r.Record("gemm", 0, 3.0)
	r.Mark("fault:crash", 1.0)
	r.Mark("ckpt", 2.0)
	r.Mark("ckpt", 2.5)
	if got := r.ChargedTotal(); got != 3.0 {
		t.Fatalf("ChargedTotal = %f, want 3.0 (marks must not count)", got)
	}
	if got := r.Total("ckpt"); got != 0 {
		t.Fatalf("Total(ckpt) = %f, want 0", got)
	}
	b := r.Breakdown()
	if len(b) != 1 || b["gemm"] != 3.0 {
		t.Fatalf("Breakdown = %v, want only {gemm: 3.0}", b)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "gemm" {
		t.Fatalf("Names = %v, marks must not introduce zero-valued keys", names)
	}
	marks := r.Marks()
	if len(marks) != 3 || marks[0].Name != "fault:crash" || marks[0].Start != 1.0 {
		t.Fatalf("Marks = %+v", marks)
	}
	for _, m := range marks {
		if !m.Mark || m.Dur != 0 {
			t.Fatalf("mark event malformed: %+v", m)
		}
	}
	if got := r.MarkCount("ckpt"); got != 2 {
		t.Fatalf("MarkCount(ckpt) = %d, want 2", got)
	}
	if got := r.MarkCount("missing"); got != 0 {
		t.Fatalf("MarkCount(missing) = %d, want 0", got)
	}
	if evs := r.Events(); len(evs) != 4 {
		t.Fatalf("Events must include marks, got %d", len(evs))
	}
	if got := Merge([]*Recorder{&r}, false); len(got) != 1 || got["gemm"] != 3.0 {
		t.Fatalf("Merge with marks = %v", got)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	var r Recorder
	r.Record("a", 0, 1)
	evs := r.Events()
	evs[0].Name = "mutated"
	if r.Events()[0].Name != "a" {
		t.Fatal("Events must return a copy")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("x", 0, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Total("x"); got != 800 {
		t.Fatalf("concurrent total = %f, want 800", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	a.Record("gate", 0, 1)
	a.Record("a2a", 1, 3)
	b.Record("gate", 0, 3)
	sum := Merge([]*Recorder{a, b}, false)
	if sum["gate"] != 4 || sum["a2a"] != 3 {
		t.Fatalf("Merge sum = %v", sum)
	}
	avg := Merge([]*Recorder{a, b}, true)
	if avg["gate"] != 2 || avg["a2a"] != 1.5 {
		t.Fatalf("Merge avg = %v", avg)
	}
	if got := Merge(nil, true); len(got) != 0 {
		t.Fatalf("Merge(nil) = %v", got)
	}
}
