package zero

import (
	"fmt"
	"math"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/topology"
)

func testCluster(n int) *simrt.Cluster {
	c := simrt.NewCluster(topology.Frontier(), n, 42)
	c.Net.DisableCongestion = true
	return c
}

// gradTensors builds each rank's deterministic gradient tensors.
func gradTensors(rank int, sizes []int) [][]float32 {
	out := make([][]float32, len(sizes))
	off := 0
	for t, n := range sizes {
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(math.Sin(float64(rank*7919+off+i))) * float32(1+rank)
		}
		out[t] = g
		off += n
	}
	return out
}

// blockingReference computes the reduced gradient stream with one
// blocking all-reduce over the concatenation — the bit-identity anchor.
func blockingReference(t *testing.T, world int, sizes []int) []float32 {
	c := testCluster(world)
	g := c.WorldGroup()
	total := 0
	for _, n := range sizes {
		total += n
	}
	var ref []float32
	err := c.Run(func(r *simrt.Rank) error {
		cat := make([]float32, 0, total)
		for _, t := range gradTensors(r.ID, sizes) {
			cat = append(cat, t...)
		}
		sum := r.AllReduce(g, "ref", cat, int64(4*total))
		if r.ID == 0 {
			ref = append([]float32(nil), sum...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestSyncerBitIdenticalAcrossStagesAndBuckets is the package's core
// guarantee: for every stage and bucket size, the reduced values at the
// owned positions are bit-identical to one blocking all-reduce of the
// whole stream, and the owned shards tile the stream exactly as
// OwnedPartition predicts.
func TestSyncerBitIdenticalAcrossStagesAndBuckets(t *testing.T) {
	const world = 4
	sizes := []int{13, 10, 1} // deliberately awkward: remainders everywhere
	total := 24
	ref := blockingReference(t, world, sizes)

	for _, stage := range []int{0, 1, 2} {
		for _, bucketBytes := range []int64{0, 4, 16, 52, 4 * int64(total)} {
			cfg := Config{Stage: stage, BucketBytes: bucketBytes}
			name := fmt.Sprintf("stage%d_bucket%d", stage, bucketBytes)
			t.Run(name, func(t *testing.T) {
				c := testCluster(world)
				g := c.WorldGroup()
				part := OwnedPartition(cfg, world, sizes, 4)

				type rankOut struct {
					grads  [][]float32
					shards []Shard
				}
				outs := make([]rankOut, world)
				err := c.Run(func(r *simrt.Rank) error {
					grads := gradTensors(r.ID, sizes)
					s := NewSyncer(r, g, "grad_sync", cfg)
					for _, t := range grads {
						s.Add(t, int64(4*len(t)))
					}
					s.Flush()
					shards := s.Wait()
					outs[r.ID] = rankOut{grads: grads, shards: shards}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}

				for rank, out := range outs {
					// Owned shard geometry must match OwnedPartition.
					if got, want := ownedTotal(out.shards), OwnedCount(part[rank]); got != want {
						t.Fatalf("rank %d owns %d elems, OwnedPartition says %d", rank, got, want)
					}
					// Owned positions are bit-identical to the blocking sum.
					for _, sh := range out.shards {
						for i, v := range sh.Data {
							if math.Float32bits(v) != math.Float32bits(ref[sh.Lo+i]) {
								t.Fatalf("rank %d shard [%d,%d) diverges at stream offset %d",
									rank, sh.Lo, sh.Hi, sh.Lo+i)
							}
						}
					}
					// Stage 0/1 all-reduce writes every position back.
					if stage <= 1 {
						off := 0
						for _, grad := range out.grads {
							for i, v := range grad {
								if math.Float32bits(v) != math.Float32bits(ref[off+i]) {
									t.Fatalf("rank %d stage %d: position %d not reduced in place", rank, stage, off+i)
								}
							}
							off += len(grad)
						}
					}
				}

				// The owned shards tile the full stream across members.
				covered := make([]int, total)
				for rank := range outs {
					for _, sh := range outs[rank].shards {
						for i := sh.Lo; i < sh.Hi; i++ {
							covered[i]++
						}
					}
				}
				wantCover := 1
				if stage == 0 {
					wantCover = world
				}
				for i, n := range covered {
					if n != wantCover {
						t.Fatalf("stream offset %d covered %d times, want %d", i, n, wantCover)
					}
				}
			})
		}
	}
}

// TestOwnedPartitionDisjointCovering pins the static geometry: for
// stages 1/2 the per-member ranges are disjoint and cover the stream for
// any bucket size, and stage 0 gives every member everything.
func TestOwnedPartitionDisjointCovering(t *testing.T) {
	sizes := []int{7, 5, 19}
	total := 31
	for _, stage := range []int{1, 2} {
		for _, bb := range []int64{0, 4, 8, 40, 1000} {
			part := OwnedPartition(Config{Stage: stage, BucketBytes: bb}, 4, sizes, 4)
			covered := make([]int, total)
			for _, ranges := range part {
				for _, rg := range ranges {
					if rg.Lo < 0 || rg.Hi > total || rg.Lo >= rg.Hi {
						t.Fatalf("stage %d bucket %d: bad range %+v", stage, bb, rg)
					}
					for i := rg.Lo; i < rg.Hi; i++ {
						covered[i]++
					}
				}
			}
			for i, n := range covered {
				if n != 1 {
					t.Fatalf("stage %d bucket %d: offset %d covered %d times", stage, bb, i, n)
				}
			}
		}
	}
	part := OwnedPartition(Config{Stage: 0}, 3, sizes, 4)
	for i, ranges := range part {
		if len(ranges) != 1 || ranges[0] != (Range{0, total}) {
			t.Fatalf("stage 0 member %d owns %+v, want the full stream", i, ranges)
		}
	}
}

// TestSyncerSymbolicOverlap pins the timing contract in symbolic mode:
// bucketed syncs issued before compute are hidden behind it, and the
// overlapped trace carries the full sync duration.
func TestSyncerSymbolicOverlap(t *testing.T) {
	const world = 4
	c := testCluster(world)
	g := c.WorldGroup()
	const bytes = 32 << 20
	arCost := c.Net.AllReduce(g.Ranks(), bytes).Seconds
	err := c.Run(func(r *simrt.Rank) error {
		s := NewSyncer(r, g, "grad_sync", Config{Stage: 1, BucketBytes: bytes})
		s.Add(nil, 4*bytes) // four full buckets
		s.Flush()
		r.Compute("bwd", 16*arCost) // plenty of cover
		before := r.Clock
		if shards := s.Wait(); shards != nil {
			return fmt.Errorf("symbolic wait returned shards")
		}
		if r.Clock != before {
			return fmt.Errorf("covered sync charged %.9fs", r.Clock-before)
		}
		if got := r.Trace.OverlappedTotal("grad_sync"); got <= 0 {
			return fmt.Errorf("no overlapped span recorded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSyncerTinyBucketsIssueMany checks that a bucket budget below the
// element size still makes progress (one element per bucket) instead of
// spinning, and that stage-2 byte accounting sums to the stream size.
func TestSyncerTinyBuckets(t *testing.T) {
	const world = 2
	c := testCluster(world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		s := NewSyncer(r, g, "gs", Config{Stage: 2, BucketBytes: 4})
		grad := []float32{float32(r.ID), float32(r.ID) + 1, float32(r.ID) + 2}
		s.Add(grad, 12)
		s.Flush()
		shards := s.Wait()
		// 3 single-element buckets over 2 ranks: member 0 owns each
		// bucket's single element (ShardRange(1,2,0) = [0,1)).
		wantOwned := 3
		if g.IndexOf(r.ID) == 1 {
			wantOwned = 0
		}
		if got := ownedTotal(shards); got != wantOwned {
			return fmt.Errorf("rank %d owns %d elems, want %d", r.ID, got, wantOwned)
		}
		for _, sh := range shards {
			want := float32(sh.Lo) + 0 + float32(sh.Lo) + 1 // sum over both ranks
			if sh.Data[0] != want {
				return fmt.Errorf("shard at %d = %v, want %v", sh.Lo, sh.Data[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func ownedTotal(shards []Shard) int {
	n := 0
	for _, sh := range shards {
		n += sh.Hi - sh.Lo
	}
	return n
}
