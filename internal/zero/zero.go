// Package zero implements ZeRO-style bucketed gradient synchronisation
// and state-sharding geometry over the simulated runtime (DeepSpeed
// ZeRO-1/2, Megatron Core's bucketed distributed optimizer; the ROADMAP
// "ZeRO-style sharded, overlapped optimizer" item).
//
// A Syncer streams gradient tensors into fixed-size buckets and issues
// one non-blocking collective per bucket as soon as it fills — an
// all-reduce at stage 0/1 (every rank receives full reduced gradients)
// or a reduce-scatter at stage 2 (each rank receives only the bucket
// shard it owns). Because the async reducers reuse the blocking
// all-reduce's member-order summation and stage-2 shards are slices of
// that same full sum (simrt.ShardRange), the reduced values are
// bit-identical across stages and across any bucket size.
//
// Ownership is a pure function of the geometry: the concatenated
// gradient stream is cut into buckets of BucketBytes, and each bucket is
// partitioned across the group with simrt.ShardRange — the same
// remainder-to-leading-ranks convention netsim.ReduceScatter charges on
// the wire. OwnedPartition precomputes the per-member owned ranges so
// optimizers can size sharded state (momentum) and checkpoint code can
// reshard without running a backward pass.
package zero

import (
	"fmt"

	"xmoe/internal/simrt"
)

// Config selects the sharding stage and bucket granularity.
type Config struct {
	// Stage is the ZeRO stage: 0 (replicated), 1 (optimizer state
	// sharded), 2 (optimizer state + gradients sharded). Stages 0 and 1
	// sync gradients with all-reduce; stage 2 with reduce-scatter.
	Stage int
	// BucketBytes caps each sync bucket's wire size; <= 0 means a single
	// bucket per Flush (sync everything at once).
	BucketBytes int64
}

// Check validates the configuration.
func (c Config) Check() error {
	if c.Stage < 0 || c.Stage > 2 {
		return fmt.Errorf("zero: stage %d not in [0,2]", c.Stage)
	}
	return nil
}

// Range is a half-open [Lo, Hi) element range over the concatenated
// gradient stream.
type Range struct{ Lo, Hi int }

// Len returns the range's element count.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shard is one owned piece of the reduced gradient stream: Data views
// the registered gradient slice (fully reduced at the owned positions
// after Wait), and [Lo, Hi) are its global stream offsets.
type Shard struct {
	Data   []float32
	Lo, Hi int
}

// segment is a registered slice view scheduled into a bucket.
type segment struct {
	data     []float32
	streamLo int
}

// bucket is one issued (or pending) sync collective.
type bucket struct {
	h        *simrt.CommHandle
	segs     []segment
	elems    int
	bytes    int64
	streamLo int
}

// Syncer accumulates gradient tensors into buckets and issues one async
// reduction per bucket. Usage: Add each gradient as its dW completes
// (typically from a PipelineOpts.OnDWReady hook), Flush after the last,
// Wait before the optimizer step. Add/Flush leave the rank's clock
// untouched apart from issuing the collectives; Wait charges only the
// uncovered remainder of each bucket's sync.
//
// All members of the group must Add the same tensor sizes in the same
// order (SPMD discipline). Numeric and symbolic deposits must not be
// mixed: either every Add carries data (numeric) or none does
// (symbolic, byte-only timing).
type Syncer struct {
	r    *simrt.Rank
	g    *simrt.Group
	name string
	cfg  Config

	capBytes int64 // per-bucket wire budget (0: unbounded until Flush)
	bpe      int64 // bytes per element, uniform across numeric deposits

	cur      bucket
	buckets  []*bucket
	streamHi int   // elements deposited so far
	byteHi   int64 // bytes deposited so far
	numeric  bool
	started  bool
	waited   bool
}

// NewSyncer builds a bucketed gradient syncer over the group. name is
// the trace span all bucket collectives are recorded under.
func NewSyncer(r *simrt.Rank, g *simrt.Group, name string, cfg Config) *Syncer {
	if err := cfg.Check(); err != nil {
		panic(err)
	}
	return &Syncer{r: r, g: g, name: name, cfg: cfg, capBytes: cfg.BucketBytes}
}

// Add streams one gradient tensor into the bucket sequence. data may be
// nil for symbolic (byte-only) syncs; when non-nil, bytes must be an
// exact multiple of len(data) and the per-element size must match every
// other numeric deposit (buckets split at element granularity). Full
// buckets are issued immediately.
func (s *Syncer) Add(data []float32, bytes int64) {
	if s.waited {
		panic("zero: Add after Wait")
	}
	if bytes <= 0 {
		return
	}
	if data == nil {
		if s.started && s.numeric {
			panic("zero: symbolic Add after numeric deposits")
		}
		s.started = true
		s.addSymbolic(bytes)
		return
	}
	if s.started && !s.numeric {
		panic("zero: numeric Add after symbolic deposits")
	}
	bpe := bytes / int64(len(data))
	if bpe*int64(len(data)) != bytes {
		panic(fmt.Sprintf("zero: %d bytes not a multiple of %d elements", bytes, len(data)))
	}
	if s.started && bpe != s.bpe {
		panic(fmt.Sprintf("zero: mixed element sizes %d and %d", s.bpe, bpe))
	}
	s.started, s.numeric, s.bpe = true, true, bpe

	for len(data) > 0 {
		take := len(data)
		if s.capBytes > 0 {
			space := int((s.capBytes - s.cur.bytes) / bpe)
			if space <= 0 {
				s.issue()
				continue
			}
			if take > space {
				take = space
			}
		}
		s.cur.segs = append(s.cur.segs, segment{data: data[:take], streamLo: s.streamHi})
		s.cur.elems += take
		s.cur.bytes += int64(take) * bpe
		s.streamHi += take
		s.byteHi += int64(take) * bpe
		data = data[take:]
		if s.capBytes > 0 && s.cur.bytes >= s.capBytes {
			s.issue()
		}
	}
}

// addSymbolic streams a byte-only deposit, cutting buckets at the same
// BucketBytes boundaries.
func (s *Syncer) addSymbolic(bytes int64) {
	for bytes > 0 {
		take := bytes
		if s.capBytes > 0 {
			space := s.capBytes - s.cur.bytes
			if space <= 0 {
				s.issue()
				continue
			}
			if take > space {
				take = space
			}
		}
		s.cur.bytes += take
		s.byteHi += take
		bytes -= take
		if s.capBytes > 0 && s.cur.bytes >= s.capBytes {
			s.issue()
		}
	}
}

// Flush issues the tail bucket, if any. Must be called after the last
// Add and before Wait.
func (s *Syncer) Flush() {
	if s.cur.bytes > 0 {
		s.issue()
	}
}

// issue fires the current bucket's collective and starts a new bucket.
func (s *Syncer) issue() {
	b := s.cur
	s.cur = bucket{streamLo: s.streamHi}
	if b.bytes == 0 {
		return
	}
	// The deposit buffer crosses a collective: peers read it after the
	// rendezvous, so it must be freshly allocated, never pooled.
	var buf []float32
	if s.numeric {
		buf = make([]float32, b.elems)
		off := 0
		for _, seg := range b.segs {
			copy(buf[off:], seg.data)
			off += len(seg.data)
		}
	}
	if s.cfg.Stage >= 2 {
		b.h = s.r.ReduceScatterAsync(s.g, s.name, buf, b.bytes)
	} else {
		b.h = s.r.AllReduceAsync(s.g, s.name, buf, b.bytes)
	}
	bb := b
	s.buckets = append(s.buckets, &bb)
}

// Wait drains every issued bucket in issue order, writes the reduced
// values back into the registered gradient slices (all positions at
// stage 0/1; only this rank's owned positions at stage 2 — unowned
// positions keep their raw local gradients), and returns this rank's
// owned shards in deterministic (bucket, stream) order. At stage 0 the
// owned shards cover the full stream; at stage 1/2 they cover this
// member's ShardRange of each bucket.
func (s *Syncer) Wait() []Shard {
	if s.waited {
		panic("zero: double Wait")
	}
	s.waited = true
	if s.cur.bytes > 0 {
		panic("zero: Wait with unflushed deposits (call Flush)")
	}
	me := s.g.IndexOf(s.r.ID)
	p := s.g.Size()
	var owned []Shard
	for _, b := range s.buckets {
		parts := b.h.Wait()
		if !s.numeric {
			continue
		}
		if s.cfg.Stage >= 2 {
			sLo, sHi := simrt.ShardRange(b.elems, p, me)
			owned = append(owned, s.writeBack(b, parts[0].Data, sLo, sHi)...)
		} else {
			shards := s.writeBack(b, parts[0].Data, 0, b.elems)
			lo, hi := 0, b.elems
			if s.cfg.Stage == 1 {
				lo, hi = simrt.ShardRange(b.elems, p, me)
			}
			// Stage 0/1: everything is reduced in place; ownership is the
			// full bucket (stage 0) or this member's shard (stage 1).
			owned = append(owned, clipShards(shards, b.streamLo+lo, b.streamLo+hi)...)
		}
	}
	return owned
}

// writeBack copies sum (the reduced values for bucket-local range
// [sLo, sHi)) into the registered segments and returns the written
// views as stream-addressed shards.
func (s *Syncer) writeBack(b *bucket, sum []float32, sLo, sHi int) []Shard {
	var out []Shard
	off := 0 // bucket-local offset of the current segment
	for _, seg := range b.segs {
		segHi := off + len(seg.data)
		lo, hi := sLo, sHi
		if lo < off {
			lo = off
		}
		if hi > segHi {
			hi = segHi
		}
		if lo < hi {
			dst := seg.data[lo-off : hi-off]
			copy(dst, sum[lo-sLo:hi-sLo])
			out = append(out, Shard{
				Data: dst,
				Lo:   seg.streamLo + (lo - off),
				Hi:   seg.streamLo + (hi - off),
			})
		}
		off = segHi
	}
	return out
}

// clipShards restricts stream-addressed shards to [lo, hi).
func clipShards(shards []Shard, lo, hi int) []Shard {
	var out []Shard
	for _, sh := range shards {
		l, h := sh.Lo, sh.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l < h {
			out = append(out, Shard{Data: sh.Data[l-sh.Lo : h-sh.Lo], Lo: l, Hi: h})
		}
	}
	return out
}

// OwnedPartition returns, for each of the p group members, the owned
// element ranges (global stream offsets) a Syncer with this config
// produces over a gradient stream of the given tensor sizes — without
// running any collective. It is the static geometry behind sharded
// optimizer state and checkpoint resharding: Stage 0 gives every member
// the full stream; stages 1/2 cut the stream into BucketBytes buckets
// and give member i its ShardRange of each bucket.
func OwnedPartition(cfg Config, p int, elemCounts []int, bytesPerElem int64) [][]Range {
	total := 0
	for _, n := range elemCounts {
		total += n
	}
	out := make([][]Range, p)
	if cfg.Stage == 0 {
		for i := range out {
			if total > 0 {
				out[i] = []Range{{0, total}}
			}
		}
		return out
	}
	capElems := total
	if cfg.BucketBytes > 0 && bytesPerElem > 0 {
		capElems = int(cfg.BucketBytes / bytesPerElem)
		if capElems < 1 {
			capElems = 1
		}
	}
	for lo := 0; lo < total; lo += capElems {
		hi := lo + capElems
		if hi > total {
			hi = total
		}
		for i := 0; i < p; i++ {
			sLo, sHi := simrt.ShardRange(hi-lo, p, i)
			if sLo < sHi {
				out[i] = append(out[i], Range{lo + sLo, lo + sHi})
			}
		}
	}
	return out
}

// OwnedCount sums the element counts of a member's owned ranges.
func OwnedCount(ranges []Range) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}
