package devent

import (
	"math"
	"testing"

	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

// The cross-validation contract: on a contention-free flat topology the
// event engine must reproduce the analytic model's BytesByClass
// integer-exactly and its Seconds to within 1 picosecond (the only
// permitted difference is float summation order) on the even/uniform
// layouts where the analytic ring identities are exact.

const timeTol = 1e-12 // one picosecond

func flatPair(t *testing.T, n int) (*netsim.Network, *Engine) {
	t.Helper()
	m := topology.Flat(n)
	net := netsim.New(m, 1)
	net.DisableCongestion = true
	return net, New(topology.FlatGraph(m, n))
}

func sameBytes(t *testing.T, what string, an, ev netsim.Cost) {
	t.Helper()
	for class := topology.LinkLocal; class <= topology.LinkCrossRack; class++ {
		if an.BytesByClass[class] != ev.BytesByClass[class] {
			t.Errorf("%s: BytesByClass[%v] analytic=%d event=%d",
				what, class, an.BytesByClass[class], ev.BytesByClass[class])
		}
	}
}

func sameTime(t *testing.T, what string, an, ev netsim.Cost) {
	t.Helper()
	if d := math.Abs(an.Seconds - ev.Seconds); d > timeTol {
		t.Errorf("%s: Seconds analytic=%.15g event=%.15g (|Δ|=%.3g > 1ps)",
			what, an.Seconds, ev.Seconds, d)
	}
}

func ranksOf(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestFlatAgreementExact(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		net, eng := flatPair(t, p)
		ranks := ranksOf(p)

		// Even all-to-all.
		an, ev := net.AlltoAll(ranks, 1<<20), eng.AlltoAll(ranks, 1<<20)
		sameBytes(t, "alltoall", an, ev)
		sameTime(t, "alltoall", an, ev)

		// Even all-to-all with self payloads on the diagonal.
		send := make([][]int64, p)
		for i := range send {
			send[i] = make([]int64, p)
			for j := range send[i] {
				send[i][j] = 1 << 19
			}
		}
		an, ev = net.AlltoAllV(ranks, send), eng.AlltoAllV(ranks, send)
		sameBytes(t, "alltoallv+self", an, ev)
		sameTime(t, "alltoallv+self", an, ev)

		// All-reduce of a p-divisible payload.
		bytes := int64(p) << 18
		an, ev = net.AllReduce(ranks, bytes), eng.AllReduce(ranks, bytes)
		sameBytes(t, "allreduce", an, ev)
		sameTime(t, "allreduce", an, ev)

		// Uniform all-gather.
		per := make([]int64, p)
		for i := range per {
			per[i] = 1 << 18
		}
		an, ev = net.AllGather(ranks, per), eng.AllGather(ranks, per)
		sameBytes(t, "allgather", an, ev)
		sameTime(t, "allgather", an, ev)

		// p-divisible reduce-scatter.
		an, ev = net.ReduceScatter(ranks, bytes), eng.ReduceScatter(ranks, bytes)
		sameBytes(t, "reducescatter", an, ev)
		sameTime(t, "reducescatter", an, ev)

		// Broadcast and barrier.
		an, ev = net.Broadcast(ranks, 1<<22), eng.Broadcast(ranks, 1<<22)
		sameBytes(t, "broadcast", an, ev)
		sameTime(t, "broadcast", an, ev)
		an, ev = net.Barrier(ranks), eng.Barrier(ranks)
		sameTime(t, "barrier", an, ev)
	}
}

// Uneven payloads break the lockstep schedule, so the event engine may only
// be slower than the analytic bound — never faster — while byte accounting
// stays integer-exact.
func TestFlatUnevenEventAtLeastAnalytic(t *testing.T) {
	p := 8
	net, eng := flatPair(t, p)
	ranks := ranksOf(p)

	send := make([][]int64, p)
	for i := range send {
		send[i] = make([]int64, p)
		for j := range send[i] {
			send[i][j] = int64((i*p+j)%5) << 17
		}
	}
	an, ev := net.AlltoAllV(ranks, send), eng.AlltoAllV(ranks, send)
	sameBytes(t, "uneven alltoallv", an, ev)
	if ev.Seconds < an.Seconds-timeTol {
		t.Errorf("uneven alltoallv: event %.15g faster than analytic %.15g", ev.Seconds, an.Seconds)
	}

	// Non-divisible reduce-scatter: remainder shards desync the ring.
	bytes := int64(p)<<18 + 3
	an, ev = net.ReduceScatter(ranks, bytes), eng.ReduceScatter(ranks, bytes)
	sameBytes(t, "remainder reducescatter", an, ev)
	if ev.Seconds < an.Seconds-timeTol {
		t.Errorf("remainder reducescatter: event %.15g faster than analytic %.15g", ev.Seconds, an.Seconds)
	}
}

// Ported from internal/netsim's TestCollectiveByteAccountingConvention: the
// aggregate-bytes identities the analytic model pins must hold verbatim for
// the event engine on a contention-free topology.
func TestEventByteAccountingConvention(t *testing.T) {
	p := 8
	_, eng := flatPair(t, p)
	ranks := ranksOf(p)
	pair := topology.LinkGCDPair

	R := int64(4 << 20)
	if got, want := eng.AllReduce(ranks, R).BytesByClass[pair], 2*int64(p-1)*R; got != want {
		t.Errorf("allreduce bytes = %d, want 2(p-1)R = %d", got, want)
	}

	per := make([]int64, p)
	var T int64
	for i := range per {
		per[i] = int64(i+1) << 16
		T += per[i]
	}
	if got, want := eng.AllGather(ranks, per).BytesByClass[pair], int64(p-1)*T; got != want {
		t.Errorf("allgather bytes = %d, want (p-1)T = %d", got, want)
	}

	B := int64(4<<20 + 5) // non-divisible: remainder must not leak bytes
	if got, want := eng.ReduceScatter(ranks, B).BytesByClass[pair], int64(p-1)*B; got != want {
		t.Errorf("reducescatter bytes = %d, want (p-1)B = %d", got, want)
	}

	bpp := int64(1 << 20)
	if got, want := eng.AlltoAll(ranks, bpp).BytesByClass[pair], int64(p)*int64(p-1)*bpp; got != want {
		t.Errorf("alltoall bytes = %d, want p(p-1)b = %d", got, want)
	}

	if got, want := eng.Broadcast(ranks, R).BytesByClass[pair], int64(p-1)*R; got != want {
		t.Errorf("broadcast bytes = %d, want (p-1)B = %d", got, want)
	}

	if got := eng.Barrier(ranks).TotalBytes(); got != 0 {
		t.Errorf("barrier moved %d bytes, want 0", got)
	}
}

// On a congested hierarchical graph the event engine must see contention
// the analytic model cannot: concurrent inter-node flows queue on the
// shared NIC trunks, so the even all-to-all is strictly slower than the
// analytic estimate.
func TestRailContentionDiverges(t *testing.T) {
	m := topology.Frontier()
	n := 64
	net := netsim.New(m, 1)
	net.DisableCongestion = true
	eng := New(topology.RailGraph(m, n, 0))
	ranks := ranksOf(n)

	an, ev := net.AlltoAll(ranks, 1<<20), eng.AlltoAll(ranks, 1<<20)
	sameBytes(t, "rail alltoall", an, ev)
	if ev.Seconds <= an.Seconds {
		t.Errorf("rail alltoall: event %.6g not slower than analytic %.6g — no contention seen",
			ev.Seconds, an.Seconds)
	}
}

// Degraded links must slow only the derated class, leaving byte accounting
// untouched (ported from the netsim derate invariant).
func TestEventLinkDerate(t *testing.T) {
	p := 8
	_, eng := flatPair(t, p)
	ranks := ranksOf(p)
	healthy := eng.AlltoAll(ranks, 1<<20)

	eng.SetLinkDerate(map[topology.LinkClass]float64{topology.LinkGCDPair: 2})
	slowed := eng.AlltoAll(ranks, 1<<20)
	eng.SetLinkDerate(nil)

	if slowed.Seconds <= healthy.Seconds {
		t.Errorf("derated alltoall %.6g not slower than healthy %.6g", slowed.Seconds, healthy.Seconds)
	}
	sameBytes(t, "derate", healthy, slowed)

	restored := eng.AlltoAll(ranks, 1<<20)
	if restored.Seconds != healthy.Seconds {
		t.Errorf("after clearing derate: %.15g, want %.15g (stale memo?)", restored.Seconds, healthy.Seconds)
	}
}
