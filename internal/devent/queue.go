package devent

// eventKind discriminates the scheduled event types of the simulator.
type eventKind uint8

const (
	// evActivate fires when a granted flow finishes its latency phase and
	// starts moving bytes.
	evActivate eventKind = iota
	// evFinish fires when an active flow drains its last byte. Finish
	// events are invalidated lazily: a fair-share rate change bumps the
	// flow's generation and schedules a fresh finish, and stale events are
	// dropped on pop.
	evFinish
)

type event struct {
	t    float64
	seq  uint64
	kind eventKind
	flow int32
	gen  uint32
}

// eventQueue is a binary min-heap ordered by (time, sequence): events
// scheduled for the same instant fire in scheduling order, which is what
// makes the simulation deterministic — no map iteration or goroutine
// interleaving ever decides a tie.
type eventQueue struct {
	h []event
}

func (q *eventQueue) len() int { return len(q.h) }

func (q *eventQueue) less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && q.less(q.h[l], q.h[s]) {
			s = l
		}
		if r < last && q.less(q.h[r], q.h[s]) {
			s = r
		}
		if s == i {
			break
		}
		q.h[i], q.h[s] = q.h[s], q.h[i]
		i = s
	}
	return top
}
