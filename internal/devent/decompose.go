package devent

import (
	"math"

	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

// flowSpec describes one point-to-point transfer of a decomposed
// collective before simulation: source and destination global ranks, the
// payload, and the flows (indices into the same plan) that must finish
// before this one may start.
type flowSpec struct {
	src, dst int
	bytes    int64
	deps     []int32
}

// collective kind tags folded into memo keys.
const (
	kindAlltoAllV uint64 = iota + 1
	kindAllReduce
	kindAllGather
	kindReduceScatter
	kindBroadcast
	kindBarrier
)

func zeroCost() netsim.Cost {
	return netsim.Cost{BytesByClass: map[topology.LinkClass]int64{}}
}

// AlltoAllV lowers an uneven all-to-all into per-source serialized chains:
// source i sends to itself first, then to (i+1), (i+2), ... mod p in
// rotation order, each transfer gated on the previous one (the egress port
// serialisation the analytic model charges). The rotation staggers the
// destinations so that on an even matrix no ingress port ever sees two
// concurrent flows — the schedule is gap-free and telescopes to the
// analytic egress/ingress sums. Zero-byte pairs are skipped, mirroring the
// analytic loops.
func (e *Engine) AlltoAllV(ranks []int, sendBytes [][]int64) netsim.Cost {
	p := len(ranks)
	var flows []flowSpec
	for i := 0; i < p; i++ {
		prev := int32(-1)
		for off := 0; off < p; off++ {
			j := (i + off) % p
			if sendBytes[i][j] == 0 {
				continue
			}
			var deps []int32
			if prev >= 0 {
				deps = []int32{prev}
			}
			flows = append(flows, flowSpec{ranks[i], ranks[j], sendBytes[i][j], deps})
			prev = int32(len(flows) - 1)
		}
	}
	return e.costOf(kindAlltoAllV, "alltoallv", ranks, flows, func(h uint64) uint64 {
		for _, row := range sendBytes {
			for _, b := range row {
				h = mix(h, uint64(b))
			}
		}
		return h
	})
}

// AlltoAll is the even all-to-all convenience wrapper.
func (e *Engine) AlltoAll(ranks []int, bytesPerPair int64) netsim.Cost {
	p := len(ranks)
	send := make([][]int64, p)
	for i := range send {
		send[i] = make([]int64, p)
		for j := range send[i] {
			if i != j {
				send[i][j] = bytesPerPair
			}
		}
	}
	return e.AlltoAllV(ranks, send)
}

// ringShards splits bytes into q per-member shards, remainder spread over
// the first bytes%q members — the same convention as netsim.ReduceScatter,
// so shard sums (and therefore aggregate bytes) are always exact.
func ringShards(bytes int64, q int) []int64 {
	per := make([]int64, q)
	base, rem := bytes/int64(q), bytes%int64(q)
	for i := range per {
		per[i] = base
		if int64(i) < rem {
			per[i]++
		}
	}
	return per
}

// ringPass appends one ring pass (q-1 steps) over members ranks: at step s,
// member i sends block (i-s+1) mod q to member (i+1) mod q. Each step-s
// flow depends on the member's own step-(s-1) send and on the upstream
// neighbour's step-(s-1) send (which delivered the block being forwarded)
// — the two-dependency chaining that keeps even rings in lockstep and
// makes uneven ones wait honestly. entry optionally gates each member's
// first send on flows of an earlier phase. Returns the extended plan and
// each member's last send.
func ringPass(flows []flowSpec, ranks []int, blocks []int64, entry [][]int32) ([]flowSpec, []int32) {
	q := len(ranks)
	cur := make([]int32, q)
	for s := 1; s <= q-1; s++ {
		next := make([]int32, q)
		for i := 0; i < q; i++ {
			blk := ((i-s+1)%q + q) % q
			var deps []int32
			if s == 1 {
				if entry != nil {
					deps = entry[i]
				}
			} else {
				deps = []int32{cur[i], cur[(i-1+q)%q]}
			}
			flows = append(flows, flowSpec{ranks[i], ranks[(i+1)%q], blocks[blk], deps})
			next[i] = int32(len(flows) - 1)
		}
		cur = next
	}
	return flows, cur
}

// AllGather lowers a ring all-gather: p-1 steps, each member forwarding
// the block it received in the previous step.
func (e *Engine) AllGather(ranks []int, perRankBytes []int64) netsim.Cost {
	if len(ranks) <= 1 {
		return zeroCost()
	}
	flows, _ := ringPass(nil, ranks, perRankBytes, nil)
	return e.costOf(kindAllGather, "allgather", ranks, flows, func(h uint64) uint64 {
		for _, b := range perRankBytes {
			h = mix(h, uint64(b))
		}
		return h
	})
}

// ReduceScatter lowers a ring reduce-scatter over the standard shard
// convention; its schedule is one ring pass, like the all-gather.
func (e *Engine) ReduceScatter(ranks []int, bytes int64) netsim.Cost {
	if len(ranks) <= 1 || bytes == 0 {
		return zeroCost()
	}
	flows, _ := ringPass(nil, ranks, ringShards(bytes, len(ranks)), nil)
	return e.costOf(kindReduceScatter, "reducescatter", ranks, flows, func(h uint64) uint64 {
		return mix(h, uint64(bytes))
	})
}

// allReduceFlows lowers an all-reduce. Single-node groups (and uneven
// multi-node layouts) run a global ring reduce-scatter followed by a ring
// all-gather over the same shards. Even multi-node layouts decompose
// hierarchically, mirroring the analytic model's phases: per-node ring
// reduce-scatter, per-slot cross-node ring all-reduce of each member's
// reduced shard (the g concurrent slot rings are what contend for the
// shared NIC trunks), then per-node ring all-gather.
func (e *Engine) allReduceFlows(ranks []int, bytes int64) []flowSpec {
	m := e.G.M
	p := len(ranks)
	// Group members by node, preserving rank order.
	nodeOrder := []int{}
	byNode := map[int][]int{}
	for _, r := range ranks {
		nd := m.NodeOf(r)
		if _, ok := byNode[nd]; !ok {
			nodeOrder = append(nodeOrder, nd)
		}
		byNode[nd] = append(byNode[nd], r)
	}
	nodes := len(nodeOrder)
	g := len(byNode[nodeOrder[0]])
	even := true
	for _, nd := range nodeOrder {
		if len(byNode[nd]) != g {
			even = false
			break
		}
	}
	if nodes == 1 || !even || g == 0 {
		shards := ringShards(bytes, p)
		flows, last := ringPass(nil, ranks, shards, nil)
		entry := make([][]int32, p)
		for i := range entry {
			entry[i] = []int32{last[i], last[(i-1+p)%p]}
		}
		flows, _ = ringPass(flows, ranks, shards, entry)
		return flows
	}

	var flows []flowSpec
	shards := ringShards(bytes, g)
	// Phase 1: per-node ring reduce-scatter.
	rsLast := make(map[int][]int32, nodes)
	for _, nd := range nodeOrder {
		if g == 1 {
			continue
		}
		var last []int32
		flows, last = ringPass(flows, byNode[nd], shards, nil)
		rsLast[nd] = last
	}
	// Phase 2: per-slot cross-node ring all-reduce of shard k.
	agEntry := make(map[int][]int32, nodes) // per node: flows gating phase 3
	for k := 0; k < g; k++ {
		slot := make([]int, nodes)
		entry := make([][]int32, nodes)
		for ni, nd := range nodeOrder {
			slot[ni] = byNode[nd][k]
			entry[ni] = rsLast[nd]
		}
		sub := ringShards(shards[k], nodes)
		var last []int32
		flows, last = ringPass(flows, slot, sub, entry)
		entry2 := make([][]int32, nodes)
		for ni := range entry2 {
			entry2[ni] = []int32{last[ni], last[(ni-1+nodes)%nodes]}
		}
		flows, last = ringPass(flows, slot, sub, entry2)
		for ni, nd := range nodeOrder {
			agEntry[nd] = append(agEntry[nd], last[ni], last[(ni-1+nodes)%nodes])
		}
	}
	// Phase 3: per-node ring all-gather of the reduced shards.
	for _, nd := range nodeOrder {
		if g == 1 {
			continue
		}
		entry := make([][]int32, g)
		for i := range entry {
			entry[i] = agEntry[nd]
		}
		flows, _ = ringPass(flows, byNode[nd], shards, entry)
	}
	return flows
}

// AllReduce lowers a hierarchical (or flat-ring) all-reduce.
func (e *Engine) AllReduce(ranks []int, bytes int64) netsim.Cost {
	if len(ranks) <= 1 || bytes == 0 {
		return zeroCost()
	}
	flows := e.allReduceFlows(ranks, bytes)
	return e.costOf(kindAllReduce, "allreduce", ranks, flows, func(h uint64) uint64 {
		return mix(h, uint64(bytes))
	})
}

// Broadcast lowers a binomial-tree broadcast from ranks[0]: in round k the
// 2^k informed ranks each send to one uninformed rank, so the last leaf
// finishes after ceil(log2 p) serialized rounds.
func (e *Engine) Broadcast(ranks []int, bytes int64) netsim.Cost {
	p := len(ranks)
	if p <= 1 || bytes == 0 {
		return zeroCost()
	}
	var flows []flowSpec
	delivered := make([]int32, p)
	for i := range delivered {
		delivered[i] = -1
	}
	for dist := 1; dist < p; dist *= 2 {
		for r := 0; r < dist && r+dist < p; r++ {
			var deps []int32
			if delivered[r] >= 0 {
				deps = []int32{delivered[r]}
			}
			flows = append(flows, flowSpec{ranks[r], ranks[r+dist], bytes, deps})
			delivered[r+dist] = int32(len(flows) - 1)
		}
	}
	return e.costOf(kindBroadcast, "broadcast", ranks, flows, func(h uint64) uint64 {
		return mix(h, uint64(bytes))
	})
}

// Barrier lowers a dissemination barrier with explicit acknowledgements:
// in round k, rank i sends a zero-byte request to (i+2^k) mod p and
// proceeds to the next round once the matching zero-byte ack returns — two
// latency charges per round, matching the analytic 2α-per-step barrier.
func (e *Engine) Barrier(ranks []int) netsim.Cost {
	p := len(ranks)
	if p <= 1 {
		return zeroCost()
	}
	var flows []flowSpec
	steps := int(math.Ceil(math.Log2(float64(p))))
	gate := make([][]int32, p)
	for k := 0; k < steps; k++ {
		d := 1 << k
		reqs := make([]int32, p)
		for i := 0; i < p; i++ {
			flows = append(flows, flowSpec{ranks[i], ranks[(i+d)%p], 0, gate[i]})
			reqs[i] = int32(len(flows) - 1)
		}
		next := make([][]int32, p)
		for i := 0; i < p; i++ {
			j := (i + d) % p
			deps := append([]int32{reqs[i]}, gate[j]...)
			flows = append(flows, flowSpec{ranks[j], ranks[i], 0, deps})
			next[i] = []int32{int32(len(flows) - 1)}
		}
		gate = next
	}
	return e.costOf(kindBarrier, "barrier", ranks, flows, func(h uint64) uint64 { return h })
}
