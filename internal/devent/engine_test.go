package devent

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"xmoe/internal/topology"
)

// collectLogs simulates the given collectives (concurrently when parallel)
// and returns each one's event log keyed by submission index.
func collectLogs(eng *Engine, parallel bool, runs []func(*Engine)) [][]CollectiveLog {
	logs := make([][]CollectiveLog, len(runs))
	var mu sync.Mutex
	slot := -1
	eng.SetRecorder(func(l CollectiveLog) {
		mu.Lock()
		logs[slot] = append(logs[slot], l)
		mu.Unlock()
	})
	defer eng.SetRecorder(nil)
	if parallel {
		// Per-slot recorders would race on slot; give each goroutine its
		// own engine view instead by running serially per slot but
		// launching the simulations concurrently via fresh engines in the
		// caller. Here parallel just means interleaved submission.
		var wg sync.WaitGroup
		for i := range runs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e2 := New(eng.G)
				var mu2 sync.Mutex
				e2.SetRecorder(func(l CollectiveLog) {
					mu2.Lock()
					logs[i] = append(logs[i], l)
					mu2.Unlock()
				})
				runs[i](e2)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range runs {
			slot = i
			runs[i](eng)
		}
	}
	return logs
}

// Identical inputs must produce bit-identical event logs — no map
// iteration, goroutine interleaving, or float nondeterminism may leak into
// the schedule. Run under -race via make race-fast.
func TestEventLogDeterminism(t *testing.T) {
	m := topology.Frontier()
	g := topology.RailGraph(m, 32, 0)
	ranks := ranksOf(32)
	send := make([][]int64, 32)
	for i := range send {
		send[i] = make([]int64, 32)
		for j := range send[i] {
			send[i][j] = int64((i+j)%7) << 16
		}
	}
	run := func(e *Engine) {
		e.AlltoAllV(ranks, send)
		e.AllReduce(ranks, 32<<18)
		e.Barrier(ranks)
	}
	a := collectLogs(New(g), false, []func(*Engine){run})
	b := collectLogs(New(g), false, []func(*Engine){run})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical serial runs produced different event logs")
	}
	// Concurrent submission from multiple goroutines must not perturb any
	// individual collective's schedule either.
	c := collectLogs(New(g), true, []func(*Engine){run, run, run})
	for i := 1; i < len(c); i++ {
		if !reflect.DeepEqual(c[0], c[i]) {
			t.Fatalf("concurrent run %d diverged from run 0", i)
		}
	}
	if !reflect.DeepEqual(a[0], c[0]) {
		t.Fatal("concurrent submission changed a collective's schedule")
	}
}

// The memo cache must return the same cost as a fresh simulation.
func TestMemoMatchesFreshSimulation(t *testing.T) {
	m := topology.Frontier()
	eng := New(topology.RailGraph(m, 16, 0))
	ranks := ranksOf(16)
	first := eng.AllReduce(ranks, 16<<18)
	cached := eng.AllReduce(ranks, 16<<18)
	if first.Seconds != cached.Seconds {
		t.Fatalf("cached Seconds %.15g != first %.15g", cached.Seconds, first.Seconds)
	}
	fresh := New(topology.RailGraph(m, 16, 0)).AllReduce(ranks, 16<<18)
	if first.Seconds != fresh.Seconds {
		t.Fatalf("fresh engine Seconds %.15g != first %.15g", fresh.Seconds, first.Seconds)
	}
}

// Zero-payload and singleton edge cases mirror the analytic model.
func TestDegenerateCollectives(t *testing.T) {
	_, eng := flatPair(t, 4)
	if c := eng.AllReduce([]int{0}, 1<<20); c.Seconds != 0 || c.TotalBytes() != 0 {
		t.Errorf("singleton allreduce = %+v, want zero", c)
	}
	if c := eng.Broadcast(ranksOf(4), 0); c.Seconds != 0 || c.TotalBytes() != 0 {
		t.Errorf("zero-byte broadcast = %+v, want zero", c)
	}
	if c := eng.Barrier([]int{3}); c.Seconds != 0 {
		t.Errorf("singleton barrier = %+v, want zero", c)
	}
	// Barrier time on a flat graph is steps*2α exactly.
	p := 8
	_, eng = flatPair(t, p)
	alpha := topology.Flat(p).Link(topology.LinkGCDPair).Latency
	want := 3 * 2 * alpha
	if got := eng.Barrier(ranksOf(p)).Seconds; math.Abs(got-want) > timeTol {
		t.Errorf("barrier(8) = %.15g, want %.15g", got, want)
	}
}
