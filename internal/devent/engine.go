// Package devent is the discrete-event ("honest") communication engine of
// the two-mode simulation core. Where internal/netsim costs each collective
// with closed-form α–β aggregates, devent lowers it into point-to-point
// transfer flows (internal/devent/decompose.go), routes each flow over an
// explicit topology.Graph, and schedules the flows on a simulated clock:
// per-rank ports serialise exclusively, shared trunks (node NICs, rack
// spines, NoC crossbars) are divided among concurrent flows by max-min
// fair sharing (progressive water-filling), and dependency edges gate ring
// steps and tree rounds. Contention between concurrent collectives and
// queueing on oversubscribed trunks therefore emerge from the schedule —
// the effects the analytic model folds away.
//
// The engine implements netsim.CostEngine, so simrt Clusters run against
// either mode unchanged. Cross-validation contract (pinned by the tests in
// this package): on a contention-free flat graph the event engine
// reproduces the analytic model's BytesByClass integer-exactly and its
// per-collective Seconds to within 1 picosecond (float summation order is
// the only difference) for the even/uniform layouts where the analytic
// ring identities are themselves exact. On hierarchical graphs the two
// modes diverge honestly, and that delta is the measurement.
package devent

import (
	"fmt"
	"math"
	"sync"

	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

// Event is one entry of a collective's simulated schedule, exposed for the
// determinism tests and debugging: identical inputs must yield bit-identical
// event logs.
type Event struct {
	T     float64 // simulated time of the event
	Kind  string  // "start" (ports granted) or "finish" (last byte drained)
	Src   int
	Dst   int
	Bytes int64
	Class topology.LinkClass
}

// CollectiveLog is the full schedule of one simulated collective.
type CollectiveLog struct {
	Kind    string // "alltoallv", "allreduce", ...
	Ranks   []int
	Seconds float64
	Events  []Event
}

// Engine simulates collectives event-by-event over a topology graph. It is
// safe for concurrent use by the simulated ranks: each cost query runs an
// isolated simulation (fresh link timelines), so results are independent of
// query order — the property the memo cache and the determinism tests rely
// on.
type Engine struct {
	G *topology.Graph

	mu       sync.Mutex
	derate   map[topology.LinkClass]float64
	cache    map[uint64]netsim.Cost
	recorder func(CollectiveLog)
}

// New returns an event engine over graph g.
func New(g *topology.Graph) *Engine {
	return &Engine{G: g, cache: make(map[uint64]netsim.Cost)}
}

// EngineName identifies the engine and its graph in traces and benchmark
// records (e.g. "event:rail").
func (e *Engine) EngineName() string { return "event:" + e.G.Name }

// SetLinkDerate applies degraded-link bandwidth derates (same contract as
// netsim.Network.LinkDerate: factors > 1 divide the effective bandwidth of
// that class, latencies and byte accounting unaffected). Set it only
// between Cluster.Run calls; derates are folded into memo keys, so stale
// cached times are never served.
func (e *Engine) SetLinkDerate(d map[topology.LinkClass]float64) {
	cp := make(map[topology.LinkClass]float64, len(d))
	for c, v := range d {
		cp[c] = v
	}
	e.mu.Lock()
	e.derate = cp
	e.mu.Unlock()
}

// SetRecorder installs a callback receiving every simulated collective's
// event log. While a recorder is installed the memo cache is bypassed, so
// repeated collectives are re-simulated and logged each time.
func (e *Engine) SetRecorder(f func(CollectiveLog)) {
	e.mu.Lock()
	e.recorder = f
	e.mu.Unlock()
}

const cacheBound = 1 << 16

func mix(h, v uint64) uint64 { return (h ^ v) * 1099511628211 }

func (e *Engine) derateOf(d map[topology.LinkClass]float64, class topology.LinkClass) float64 {
	if v, ok := d[class]; ok && v > 1 {
		return v
	}
	return 1
}

// costOf memoizes a collective's simulated cost; payload mixes the
// byte-size arguments into the hash.
func (e *Engine) costOf(kind uint64, name string, ranks []int, flows []flowSpec, payload func(uint64) uint64) netsim.Cost {
	e.mu.Lock()
	derate := e.derate
	rec := e.recorder
	e.mu.Unlock()
	if rec != nil {
		cost, log := e.simulate(name, ranks, flows, derate, true)
		rec(log)
		return cost
	}
	h := uint64(14695981039346656037)
	h = mix(h, kind)
	for class := topology.LinkLocal; class <= topology.LinkCrossRack; class++ {
		h = mix(h, math.Float64bits(e.derateOf(derate, class)))
	}
	h = mix(h, uint64(len(ranks)))
	for _, r := range ranks {
		h = mix(h, uint64(r))
	}
	h = payload(h)
	e.mu.Lock()
	c, ok := e.cache[h]
	e.mu.Unlock()
	if ok {
		return c
	}
	c, _ = e.simulate(name, ranks, flows, derate, false)
	e.mu.Lock()
	if len(e.cache) >= cacheBound {
		e.cache = make(map[uint64]netsim.Cost, 256)
	}
	e.cache[h] = c
	e.mu.Unlock()
	return c
}

// flow runtime states.
const (
	fsWaiting uint8 = iota // dependencies outstanding
	fsReady                // released, queued for its ports
	fsGranted              // ports held, latency phase
	fsActive               // moving bytes
	fsDone
)

type simFlow struct {
	spec       flowSpec
	class      topology.LinkClass
	ports      []topology.LinkID // exclusive (unshared) links on the route
	trunks     []topology.LinkID // shared links on the route
	cap        float64           // class bandwidth after derate (rate ceiling)
	latency    float64           // class α plus shared-hop latencies
	ndeps      int
	dependents []int32
	state      uint8
	// fluid phase bookkeeping (flows with trunks only):
	rate      float64
	remaining float64
	lastT     float64
	gen       uint32
}

// simulate runs one collective's flow DAG to completion and returns its
// cost (and, when record is set, the event log).
func (e *Engine) simulate(name string, ranks []int, specs []flowSpec, derate map[topology.LinkClass]float64, record bool) (netsim.Cost, CollectiveLog) {
	g := e.G
	m := g.M
	byClass := map[topology.LinkClass]int64{}
	if len(specs) == 0 {
		return netsim.Cost{BytesByClass: byClass}, CollectiveLog{Kind: name, Ranks: ranks}
	}

	flows := make([]simFlow, len(specs))
	var routeBuf []topology.LinkID
	trunkCap := make(map[topology.LinkID]float64)
	for i := range specs {
		sp := specs[i]
		f := &flows[i]
		f.spec = sp
		f.class = m.Classify(sp.src, sp.dst)
		if sp.bytes > 0 {
			byClass[f.class] += sp.bytes
		}
		lspec := m.Link(f.class)
		f.latency = lspec.Latency
		f.cap = lspec.Bandwidth / e.derateOf(derate, f.class)
		routeBuf = g.Route(sp.src, sp.dst, routeBuf[:0])
		for _, id := range routeBuf {
			l := g.Link(id)
			if l.Shared {
				f.trunks = append(f.trunks, id)
				f.latency += l.Latency
				if _, ok := trunkCap[id]; !ok {
					trunkCap[id] = l.Bandwidth / e.derateOf(derate, l.Class)
				}
			} else {
				f.ports = append(f.ports, id)
			}
		}
		f.ndeps = len(sp.deps)
	}
	for i := range specs {
		for _, d := range specs[i].deps {
			flows[d].dependents = append(flows[d].dependents, int32(i))
		}
	}

	var (
		q        eventQueue
		seq      uint64
		now      float64
		portBusy = make(map[topology.LinkID]bool)
		readyQ   []int32
		active   []int32 // fluid flows (with trunks) currently draining
		events   []Event
		makespan float64
		done     int
	)
	push := func(t float64, k eventKind, fl int32, gen uint32) {
		seq++
		q.push(event{t: t, seq: seq, kind: k, flow: fl, gen: gen})
	}
	logEv := func(kind string, f *simFlow) {
		if record {
			events = append(events, Event{
				T: now, Kind: kind, Src: f.spec.src, Dst: f.spec.dst,
				Bytes: f.spec.bytes, Class: f.class,
			})
		}
	}

	// grant scans the ready queue in release order and starts every flow
	// whose ports are all free. Single pass: ports are only freed by
	// finish events, never by a grant.
	grant := func() {
		out := readyQ[:0]
		for _, fl := range readyQ {
			f := &flows[fl]
			free := true
			for _, p := range f.ports {
				if portBusy[p] {
					free = false
					break
				}
			}
			if !free {
				out = append(out, fl)
				continue
			}
			for _, p := range f.ports {
				portBusy[p] = true
			}
			f.state = fsGranted
			logEv("start", f)
			push(now+f.latency, evActivate, fl, f.gen)
		}
		readyQ = out
	}

	// recompute runs progressive water-filling over the fluid flows: all
	// rates rise together until a flow hits its class cap or a trunk
	// saturates; saturated parties freeze and filling continues. Flows
	// whose rate changed get their remaining bytes settled at the old rate
	// and a rescheduled finish. Flows without trunks never enter here, so
	// their port-exclusive timing stays bit-exact.
	recompute := func() {
		if len(active) == 0 {
			return
		}
		type lk struct {
			rem float64
			n   int
		}
		links := map[topology.LinkID]*lk{}
		var order []topology.LinkID
		for _, fl := range active {
			for _, id := range flows[fl].trunks {
				l := links[id]
				if l == nil {
					l = &lk{rem: trunkCap[id]}
					links[id] = l
					order = append(order, id)
				}
				l.n++
			}
		}
		newRate := make([]float64, len(active))
		frozen := make([]bool, len(active))
		for unfrozen := len(active); unfrozen > 0; {
			inc := math.Inf(1)
			for k, fl := range active {
				if !frozen[k] {
					if d := flows[fl].cap - newRate[k]; d < inc {
						inc = d
					}
				}
			}
			for _, id := range order {
				if l := links[id]; l.n > 0 {
					if s := l.rem / float64(l.n); s < inc {
						inc = s
					}
				}
			}
			if inc < 0 || math.IsInf(inc, 1) {
				inc = 0
			}
			for k := range active {
				if !frozen[k] {
					newRate[k] += inc
				}
			}
			for _, id := range order {
				l := links[id]
				l.rem -= inc * float64(l.n)
			}
			progressed := false
			for k, fl := range active {
				if frozen[k] {
					continue
				}
				f := &flows[fl]
				stop := newRate[k] >= f.cap*(1-1e-12)
				if !stop {
					for _, id := range f.trunks {
						if links[id].rem <= trunkCap[id]*1e-12 {
							stop = true
							break
						}
					}
				}
				if stop {
					frozen[k] = true
					unfrozen--
					progressed = true
					for _, id := range f.trunks {
						links[id].n--
					}
				}
			}
			if !progressed {
				break
			}
		}
		for k, fl := range active {
			f := &flows[fl]
			r := newRate[k]
			if r <= 0 {
				// Numerical corner: never stall a flow entirely.
				r = f.cap * 1e-9
			}
			if r != f.rate {
				f.remaining -= f.rate * (now - f.lastT)
				if f.remaining < 0 {
					f.remaining = 0
				}
				f.lastT = now
				f.rate = r
				f.gen++
				push(now+f.remaining/r, evFinish, fl, f.gen)
			}
		}
	}

	for i := range flows {
		if flows[i].ndeps == 0 {
			flows[i].state = fsReady
			readyQ = append(readyQ, int32(i))
		}
	}
	grant()

	for q.len() > 0 {
		ev := q.pop()
		f := &flows[ev.flow]
		if ev.kind == evFinish && (ev.gen != f.gen || f.state == fsDone) {
			continue
		}
		now = ev.t
		switch ev.kind {
		case evActivate:
			f.state = fsActive
			if len(f.trunks) == 0 || f.spec.bytes == 0 {
				t := now
				if f.spec.bytes > 0 {
					t = now + float64(f.spec.bytes)/f.cap
				}
				push(t, evFinish, ev.flow, f.gen)
			} else {
				f.rate = 0
				f.remaining = float64(f.spec.bytes)
				f.lastT = now
				active = append(active, ev.flow)
				recompute()
			}
		case evFinish:
			f.state = fsDone
			done++
			if now > makespan {
				makespan = now
			}
			logEv("finish", f)
			for _, p := range f.ports {
				portBusy[p] = false
			}
			wasFluid := false
			for k, fl := range active {
				if fl == ev.flow {
					active = append(active[:k], active[k+1:]...)
					wasFluid = true
					break
				}
			}
			for _, d := range f.dependents {
				df := &flows[d]
				df.ndeps--
				if df.ndeps == 0 {
					df.state = fsReady
					readyQ = append(readyQ, d)
				}
			}
			grant()
			if wasFluid {
				recompute()
			}
		}
	}
	if done != len(flows) {
		panic(fmt.Sprintf("devent: %s over %d ranks deadlocked with %d/%d flows done",
			name, len(ranks), done, len(flows)))
	}
	return netsim.Cost{Seconds: makespan, BytesByClass: byClass},
		CollectiveLog{Kind: name, Ranks: append([]int(nil), ranks...), Seconds: makespan, Events: events}
}
