package moe

import (
	"sync"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// TestChunkedPFTForwardBitIdenticalToBlocking is the overlap determinism
// regression: the chunked pipeline re-times the dispatch/expert/combine
// middle section but must never change a single bit of the numeric
// output, for any chunk count (including counts that do not divide the
// per-expert segments).
func TestChunkedPFTForwardBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runPipeline(t, PFTForward, newMoECluster(t, world), cfg, s, PipelineOpts{
		Numeric: true, DropPolicy: DropByCapacityWeight,
	})
	for _, chunks := range []int{2, 3, 4, 8, 64} {
		chunked := runPipeline(t, PFTForward, newMoECluster(t, world), cfg, s, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight, OverlapChunks: chunks,
		})
		for rank, bl := range blocking {
			ch := chunked[rank]
			if ch.RoutedTokens != bl.RoutedTokens || ch.RecvTokens != bl.RecvTokens {
				t.Fatalf("C=%d rank %d routed/recv %d/%d, want %d/%d", chunks, rank,
					ch.RoutedTokens, ch.RecvTokens, bl.RoutedTokens, bl.RecvTokens)
			}
			bitEqual(t, "chunked PFT output", bl.Output, ch.Output)
		}
	}
}

// TestChunkedPaddedForwardBitIdenticalToBlocking pins the padded
// pipeline's chunked slot exchange against the blocking even all-to-all.
func TestChunkedPaddedForwardBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runPipeline(t, PaddedForward, newMoECluster(t, world), cfg, s, PipelineOpts{
		Numeric: true, DropPolicy: DropNegativeThenPosition,
	})
	for _, chunks := range []int{2, 3, 4, 16} {
		chunked := runPipeline(t, PaddedForward, newMoECluster(t, world), cfg, s, PipelineOpts{
			Numeric: true, DropPolicy: DropNegativeThenPosition, OverlapChunks: chunks,
		})
		for rank, bl := range blocking {
			bitEqual(t, "chunked padded output", bl.Output, chunked[rank].Output)
		}
	}
}

// TestChunkedPooledBitIdenticalToFresh extends the pooled-vs-fresh
// regression to the overlap path: the chunked pipeline draws chunk
// buffers from the rank arenas, and steady-state reuse must stay
// bit-identical to allocate-fresh execution.
func TestChunkedPooledBitIdenticalToFresh(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	run := func(disablePools bool, iters int) map[int]LayerResult {
		c := newMoECluster(t, world)
		c.DisablePools = disablePools
		var last map[int]LayerResult
		for it := 0; it < iters; it++ {
			last = runPipeline(t, PFTForward, c, cfg, s, PipelineOpts{
				Numeric: true, DropPolicy: DropByCapacityWeight, OverlapChunks: 4,
			})
		}
		return last
	}
	fresh := run(true, 1)
	pooled := run(false, 3)
	for rank, f := range fresh {
		bitEqual(t, "pooled chunked output", f.Output, pooled[rank].Output)
	}
}

// overlapClock runs one symbolic layer on a communication-heavy
// configuration and returns the simulated wall-clock.
func overlapClock(t *testing.T, pipeline func(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult, chunks int) float64 {
	t.Helper()
	cfg := Config{
		NumExperts: 64, TopK: 6, HModel: 4096, HFFN: 2048,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	const world, s = 16, 1024
	c := simrt.NewCluster(topology.Frontier(), world, 7)
	c.Net.DisableCongestion = true
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(900 + r.ID))
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
		pipeline(r, g, cfg, s, nil, routing, nil, PipelineOpts{
			DropPolicy: DropByCapacityWeight, OverlapChunks: chunks,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return simrt.MaxClock(ranks)
}

// fwdBwdClock runs one symbolic fwd+bwd step on the communication-heavy
// configuration and returns the simulated wall-clock.
func fwdBwdClock(t *testing.T, transport string, chunks int) float64 {
	t.Helper()
	cfg := Config{
		NumExperts: 64, TopK: 6, HModel: 4096, HFFN: 2048,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	const world, s = 16, 1024
	c := simrt.NewCluster(topology.Frontier(), world, 7)
	c.Net.DisableCongestion = true
	g := c.WorldGroup()
	opts := PipelineOpts{DropPolicy: DropByCapacityWeight, SaveForBackward: true, OverlapChunks: chunks}
	if transport == "padded" {
		opts.DropPolicy = DropNegativeThenPosition
	}
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(900 + r.ID))
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
		switch transport {
		case "pft":
			res := PFTForward(r, g, cfg, s, nil, routing, nil, opts)
			PFTBackward(r, g, cfg, res.State, nil, nil, opts)
		case "padded":
			res := PaddedForward(r, g, cfg, s, nil, routing, nil, opts)
			PaddedBackward(r, g, cfg, res.PaddedState, nil, nil, opts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return simrt.MaxClock(ranks)
}

// TestChunkedFwdBwdStrictlyFaster extends the overlap win to the full
// training step: with the backward's mirrored all-to-alls also chunked,
// the simulated fwd+bwd time must beat the blocking step for every
// C >= 2 on the communication-heavy configuration, in both transports.
func TestChunkedFwdBwdStrictlyFaster(t *testing.T) {
	for _, transport := range []string{"pft", "padded"} {
		blocking := fwdBwdClock(t, transport, 1)
		for _, chunks := range []int{2, 4, 8} {
			overlapped := fwdBwdClock(t, transport, chunks)
			if overlapped >= blocking {
				t.Errorf("%s C=%d: fwd+bwd overlapped %.6fs not faster than blocking %.6fs",
					transport, chunks, overlapped, blocking)
			}
		}
	}
}

// symbolicOverlapAllocs returns the steady-state allocations per
// rank-iteration of one symbolic fwd+bwd overlapped step at the given
// chunk count (cluster and group warm, third iteration onward measured).
func symbolicOverlapAllocs(t *testing.T, transport string, chunks int) float64 {
	t.Helper()
	cfg := distConfig(8, 3)
	const world, s, iters = 4, 64, 8
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	opts := PipelineOpts{DropPolicy: DropByCapacityWeight, SaveForBackward: true, OverlapChunks: chunks}
	if transport == "padded" {
		opts.DropPolicy = DropNegativeThenPosition
	}
	routings := make([]Routing, world)
	for i := range routings {
		routings[i] = SyntheticRouting(tensor.NewRNG(uint64(6200+i)), s, cfg.NumExperts, cfg.TopK, 0.6)
	}
	step := func(n int) {
		for it := 0; it < n; it++ {
			if err := c.Run(func(r *simrt.Rank) error {
				switch transport {
				case "pft":
					res := PFTForward(r, g, cfg, s, nil, routings[r.ID], nil, opts)
					PFTBackward(r, g, cfg, res.State, nil, nil, opts)
				case "padded":
					res := PaddedForward(r, g, cfg, s, nil, routings[r.ID], nil, opts)
					PaddedBackward(r, g, cfg, res.PaddedState, nil, nil, opts)
				}
				return nil
			}); err != nil {
				t.Error(err)
			}
		}
	}
	step(2) // warm the pools and rendezvous machinery
	base := testing.AllocsPerRun(5, func() { step(0) })
	loaded := testing.AllocsPerRun(5, func() { step(iters) })
	return (loaded - base) / (world * iters)
}

// TestOverlapSteadyStateAllocsChunkInvariant is the allocation regression
// for the overlapped paths: per-chunk tensor scratch must come from the
// rank arenas and the part slices from flat backing arrays, so growing
// the chunk count from 2 to 8 may only add the async-handle machinery's
// few allocations per extra chunk — not per-chunk buffer allocations.
func TestOverlapSteadyStateAllocsChunkInvariant(t *testing.T) {
	for _, transport := range []string{"pft", "padded"} {
		a2 := symbolicOverlapAllocs(t, transport, 2)
		a8 := symbolicOverlapAllocs(t, transport, 8)
		perChunk := (a8 - a2) / 6
		// Each extra chunk costs two async issues (dispatch-side +
		// combine-side, fwd + bwd = 4 handles) with a handful of
		// rendezvous-internal allocations each; tensor buffers must not
		// appear here.
		if perChunk > 20 {
			t.Errorf("%s: %.1f allocs per extra chunk per rank-iteration (C=2: %.1f, C=8: %.1f); per-chunk buffers are not pooled",
				transport, perChunk, a2, a8)
		}
	}
}

// TestChunkedOverlapStrictlyFaster asserts the point of the subsystem: on
// a configuration where the all-to-alls are a significant share of layer
// time (the Fig. 11 regime), chunked overlapped execution must beat the
// blocking pipeline for every C >= 2, in both pipelines.
func TestChunkedOverlapStrictlyFaster(t *testing.T) {
	for _, tc := range []struct {
		name string
		pipe func(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult
	}{
		{"pft", PFTForward},
		{"padded", PaddedForward},
	} {
		blocking := overlapClock(t, tc.pipe, 1)
		for _, chunks := range []int{2, 4, 8} {
			overlapped := overlapClock(t, tc.pipe, chunks)
			if overlapped >= blocking {
				t.Errorf("%s C=%d: overlapped %.6fs not faster than blocking %.6fs",
					tc.name, chunks, overlapped, blocking)
			}
		}
	}
}

// TestPipelineOptsCheck pins the option validation that replaced the old
// bare panics: invalid combinations produce descriptive errors, valid
// ones (including OverlapChunks + SaveForBackward, supported since the
// backward-overlap work) pass.
func TestPipelineOptsCheck(t *testing.T) {
	valid := []PipelineOpts{
		{},
		{Numeric: true, SaveForBackward: true, OverlapChunks: 8},
		{OverlapChunks: 1, Kernels: KernelsVendor, CombineBytes: 4},
		{SaveForBackward: true}, // symbolic timing-only backward
	}
	for i, o := range valid {
		if err := o.Check(); err != nil {
			t.Errorf("valid opts %d rejected: %v", i, err)
		}
	}
	invalid := []PipelineOpts{
		{OverlapChunks: -1},
		{OverlapChunks: maxOverlapChunks + 1},
		{CombineBytes: -2},
		{Kernels: KernelProfile(99)},
		{DropPolicy: DropPolicy(-3)},
	}
	for i, o := range invalid {
		if err := o.Check(); err == nil {
			t.Errorf("invalid opts %d accepted", i)
		}
	}
}

// TestPipelineRejectsInvalidOpts: the pipelines surface the Check error
// instead of silently misbehaving.
func TestPipelineRejectsInvalidOpts(t *testing.T) {
	cfg := distConfig(8, 3)
	c := newMoECluster(t, 4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("invalid PipelineOpts must panic with the Check error")
			}
			// The panic fires before any collective, so no rendezvous is
			// pending and peers are not blocked.
		}()
		routing := SyntheticRouting(tensor.NewRNG(uint64(r.ID)), 16, cfg.NumExperts, cfg.TopK, 0.5)
		PFTForward(r, g, cfg, 16, nil, routing, nil, PipelineOpts{OverlapChunks: -4})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fwdBwdPass captures one rank's forward output and backward gradients.
type fwdBwdPass struct {
	out, dx  *tensor.Tensor
	dw1, dw2 []*tensor.Tensor
	dcw      []float32
}

// runFwdBwd executes one numeric forward+backward of the given transport
// ("pft" or "padded") on a fresh cluster with deterministic inputs, with
// independent chunk counts for the two passes.
func runFwdBwd(t *testing.T, transport string, world, s int, cfg Config, fwdChunks, bwdChunks int) map[int]fwdBwdPass {
	t.Helper()
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	epr := cfg.NumExperts / world
	results := make(map[int]fwdBwdPass)
	var mu sync.Mutex
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(500 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.7)
		params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
		dOut := tensor.New(s, cfg.HModel)
		for i := range dOut.Data {
			dOut.Data[i] = float32(i%13)*0.1 - 0.5
		}
		fwdOpts := PipelineOpts{Numeric: true, SaveForBackward: true, OverlapChunks: fwdChunks}
		bwdOpts := PipelineOpts{Numeric: true, OverlapChunks: bwdChunks}
		var pass fwdBwdPass
		switch transport {
		case "pft":
			fwdOpts.DropPolicy = DropByCapacityWeight
			res := PFTForward(r, g, cfg, s, x, routing, params, fwdOpts)
			bwd := PFTBackward(r, g, cfg, res.State, dOut, params, bwdOpts)
			pass = fwdBwdPass{out: res.Output, dx: bwd.DX, dw1: bwd.DW1, dw2: bwd.DW2, dcw: bwd.DCombineWeights}
		case "padded":
			fwdOpts.DropPolicy = DropNegativeThenPosition
			bwdOpts.DropPolicy = DropNegativeThenPosition
			res := PaddedForward(r, g, cfg, s, x, routing, params, fwdOpts)
			bwd := PaddedBackward(r, g, cfg, res.PaddedState, dOut, params, bwdOpts)
			pass = fwdBwdPass{out: res.Output, dx: bwd.DX, dw1: bwd.DW1, dw2: bwd.DW2, dcw: bwd.DCombineWeights}
		}
		mu.Lock()
		results[r.ID] = pass
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func comparePasses(t *testing.T, label string, want, got map[int]fwdBwdPass) {
	t.Helper()
	for rank, w := range want {
		gp := got[rank]
		bitEqual(t, label+" output", w.out, gp.out)
		bitEqual(t, label+" dX", w.dx, gp.dx)
		for e := range w.dw1 {
			bitEqual(t, label+" dW1", w.dw1[e], gp.dw1[e])
			bitEqual(t, label+" dW2", w.dw2[e], gp.dw2[e])
		}
		if len(w.dcw) != len(gp.dcw) {
			t.Fatalf("%s rank %d: dCombineWeights length %d vs %d", label, rank, len(w.dcw), len(gp.dcw))
		}
		for i := range w.dcw {
			if w.dcw[i] != gp.dcw[i] {
				t.Fatalf("%s rank %d: dCombineWeights mismatch at %d", label, rank, i)
			}
		}
	}
}

// TestChunkedPFTFwdBwdBitIdenticalToBlocking is the backward-overlap
// determinism regression: the chunked forward (with state capture) plus
// the chunked backward must reproduce the blocking fwd+bwd gradients bit
// for bit, at every chunk count and also when the two passes use
// different chunk counts (the saved state is chunk-count invariant).
func TestChunkedPFTFwdBwdBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runFwdBwd(t, "pft", world, s, cfg, 1, 1)
	for _, chunks := range []int{2, 3, 4, 8} {
		comparePasses(t, "fwd+bwd chunked", blocking, runFwdBwd(t, "pft", world, s, cfg, chunks, chunks))
	}
	// Mixed chunk counts between the passes.
	comparePasses(t, "fwd chunked only", blocking, runFwdBwd(t, "pft", world, s, cfg, 4, 1))
	comparePasses(t, "bwd chunked only", blocking, runFwdBwd(t, "pft", world, s, cfg, 1, 4))
	comparePasses(t, "mixed chunks", blocking, runFwdBwd(t, "pft", world, s, cfg, 2, 8))
}

// TestChunkedPaddedFwdBwdBitIdenticalToBlocking pins the padded
// transport's chunked fwd+bwd against its blocking path bit for bit.
func TestChunkedPaddedFwdBwdBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runFwdBwd(t, "padded", world, s, cfg, 1, 1)
	for _, chunks := range []int{2, 3, 4, 16} {
		comparePasses(t, "padded fwd+bwd chunked", blocking, runFwdBwd(t, "padded", world, s, cfg, chunks, chunks))
	}
	comparePasses(t, "padded mixed chunks", blocking, runFwdBwd(t, "padded", world, s, cfg, 4, 2))
}
