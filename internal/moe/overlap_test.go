package moe

import (
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// TestChunkedPFTForwardBitIdenticalToBlocking is the overlap determinism
// regression: the chunked pipeline re-times the dispatch/expert/combine
// middle section but must never change a single bit of the numeric
// output, for any chunk count (including counts that do not divide the
// per-expert segments).
func TestChunkedPFTForwardBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runPipeline(t, PFTForward, newMoECluster(t, world), cfg, s, PipelineOpts{
		Numeric: true, DropPolicy: DropByCapacityWeight,
	})
	for _, chunks := range []int{2, 3, 4, 8, 64} {
		chunked := runPipeline(t, PFTForward, newMoECluster(t, world), cfg, s, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight, OverlapChunks: chunks,
		})
		for rank, bl := range blocking {
			ch := chunked[rank]
			if ch.RoutedTokens != bl.RoutedTokens || ch.RecvTokens != bl.RecvTokens {
				t.Fatalf("C=%d rank %d routed/recv %d/%d, want %d/%d", chunks, rank,
					ch.RoutedTokens, ch.RecvTokens, bl.RoutedTokens, bl.RecvTokens)
			}
			bitEqual(t, "chunked PFT output", bl.Output, ch.Output)
		}
	}
}

// TestChunkedPaddedForwardBitIdenticalToBlocking pins the padded
// pipeline's chunked slot exchange against the blocking even all-to-all.
func TestChunkedPaddedForwardBitIdenticalToBlocking(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	blocking := runPipeline(t, PaddedForward, newMoECluster(t, world), cfg, s, PipelineOpts{
		Numeric: true, DropPolicy: DropNegativeThenPosition,
	})
	for _, chunks := range []int{2, 3, 4, 16} {
		chunked := runPipeline(t, PaddedForward, newMoECluster(t, world), cfg, s, PipelineOpts{
			Numeric: true, DropPolicy: DropNegativeThenPosition, OverlapChunks: chunks,
		})
		for rank, bl := range blocking {
			bitEqual(t, "chunked padded output", bl.Output, chunked[rank].Output)
		}
	}
}

// TestChunkedPooledBitIdenticalToFresh extends the pooled-vs-fresh
// regression to the overlap path: the chunked pipeline draws chunk
// buffers from the rank arenas, and steady-state reuse must stay
// bit-identical to allocate-fresh execution.
func TestChunkedPooledBitIdenticalToFresh(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 32
	run := func(disablePools bool, iters int) map[int]LayerResult {
		c := newMoECluster(t, world)
		c.DisablePools = disablePools
		var last map[int]LayerResult
		for it := 0; it < iters; it++ {
			last = runPipeline(t, PFTForward, c, cfg, s, PipelineOpts{
				Numeric: true, DropPolicy: DropByCapacityWeight, OverlapChunks: 4,
			})
		}
		return last
	}
	fresh := run(true, 1)
	pooled := run(false, 3)
	for rank, f := range fresh {
		bitEqual(t, "pooled chunked output", f.Output, pooled[rank].Output)
	}
}

// overlapClock runs one symbolic layer on a communication-heavy
// configuration and returns the simulated wall-clock.
func overlapClock(t *testing.T, pipeline func(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult, chunks int) float64 {
	t.Helper()
	cfg := Config{
		NumExperts: 64, TopK: 6, HModel: 4096, HFFN: 2048,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	const world, s = 16, 1024
	c := simrt.NewCluster(topology.Frontier(), world, 7)
	c.Net.DisableCongestion = true
	g := c.WorldGroup()
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(900 + r.ID))
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
		pipeline(r, g, cfg, s, nil, routing, nil, PipelineOpts{
			DropPolicy: DropByCapacityWeight, OverlapChunks: chunks,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return simrt.MaxClock(ranks)
}

// TestChunkedOverlapStrictlyFaster asserts the point of the subsystem: on
// a configuration where the all-to-alls are a significant share of layer
// time (the Fig. 11 regime), chunked overlapped execution must beat the
// blocking pipeline for every C >= 2, in both pipelines.
func TestChunkedOverlapStrictlyFaster(t *testing.T) {
	for _, tc := range []struct {
		name string
		pipe func(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult
	}{
		{"pft", PFTForward},
		{"padded", PaddedForward},
	} {
		blocking := overlapClock(t, tc.pipe, 1)
		for _, chunks := range []int{2, 4, 8} {
			overlapped := overlapClock(t, tc.pipe, chunks)
			if overlapped >= blocking {
				t.Errorf("%s C=%d: overlapped %.6fs not faster than blocking %.6fs",
					tc.name, chunks, overlapped, blocking)
			}
		}
	}
}

// TestOverlapRejectsSaveForBackward documents the unsupported
// combination explicitly instead of silently corrupting backward state.
func TestOverlapRejectsSaveForBackward(t *testing.T) {
	cfg := distConfig(8, 3)
	c := newMoECluster(t, 4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("OverlapChunks with SaveForBackward must panic")
			}
			// Leave peers unblocked: the panic fires before any
			// collective, so no rendezvous is pending.
		}()
		rng := tensor.NewRNG(uint64(500 + r.ID))
		x := tensor.Randn(rng, 1, 16, cfg.HModel)
		routing := SyntheticRouting(rng, 16, cfg.NumExperts, cfg.TopK, 0.5)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		PFTForward(r, g, cfg, 16, x, routing, params, PipelineOpts{
			Numeric: true, SaveForBackward: true, OverlapChunks: 2,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
