package moe

import (
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// benchCluster builds a congestion-free cluster for benchmarking.
func benchCluster(n int) *simrt.Cluster {
	c := simrt.NewCluster(topology.Frontier(), n, 99)
	c.Net.DisableCongestion = true
	return c
}

// benchConfig is a mid-size layer shape: large enough that the gather /
// scatter / GEMM kernels dominate, small enough for tight bench loops.
func benchConfig() Config {
	return Config{
		NumExperts:     8,
		TopK:           2,
		HModel:         64,
		HFFN:           32,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
}

// BenchmarkPFTLayerForwardBackward measures one numeric forward+backward
// of the padding-free MoE layer on a 4-rank cluster — the paper's hot
// path (gate, gather dispatch, uneven a2a, sequential GEMM, scatter
// combine, and the mirrored backward).
func BenchmarkPFTLayerForwardBackward(b *testing.B) {
	const world, s = 4, 128
	cfg := benchConfig()
	epr := cfg.NumExperts / world

	c := benchCluster(world)
	g := c.WorldGroup()
	// Per-rank fixed inputs, built once outside the timed loop.
	xs := make([]*tensor.Tensor, world)
	routings := make([]Routing, world)
	params := make([]*ExpertParams, world)
	douts := make([]*tensor.Tensor, world)
	for i := 0; i < world; i++ {
		rng := tensor.NewRNG(uint64(4200 + i))
		xs[i] = tensor.Randn(rng, 1, s, cfg.HModel)
		routings[i] = SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		params[i] = NewExpertParams(tensor.NewRNG(uint64(77+i)), epr, cfg.HModel, cfg.HFFN)
		douts[i] = tensor.New(s, cfg.HModel)
		douts[i].Fill(1)
	}
	opts := PipelineOpts{Numeric: true, DropPolicy: DropByCapacityWeight, SaveForBackward: true}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := c.Run(func(r *simrt.Rank) error {
			res := PFTForward(r, g, cfg, s, xs[r.ID], routings[r.ID], params[r.ID], opts)
			PFTBackward(r, g, cfg, res.State, douts[r.ID], params[r.ID], PipelineOpts{Numeric: true})
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPFTForwardNumeric measures the forward-only numeric pipeline
// without backward state capture (inference-style steady state).
func BenchmarkPFTForwardNumeric(b *testing.B) {
	const world, s = 4, 128
	cfg := benchConfig()
	epr := cfg.NumExperts / world
	c := benchCluster(world)
	g := c.WorldGroup()
	xs := make([]*tensor.Tensor, world)
	routings := make([]Routing, world)
	params := make([]*ExpertParams, world)
	for i := 0; i < world; i++ {
		rng := tensor.NewRNG(uint64(4300 + i))
		xs[i] = tensor.Randn(rng, 1, s, cfg.HModel)
		routings[i] = SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		params[i] = NewExpertParams(tensor.NewRNG(uint64(99+i)), epr, cfg.HModel, cfg.HFFN)
	}
	opts := PipelineOpts{Numeric: true, DropPolicy: DropByCapacityWeight}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := c.Run(func(r *simrt.Rank) error {
			PFTForward(r, g, cfg, s, xs[r.ID], routings[r.ID], params[r.ID], opts)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPFTForwardSymbolic measures the metadata-only pipeline used by
// the large symbolic sweeps (Fig. 9/10): routing, PFT construction, and
// modeled collectives with no payloads.
func BenchmarkPFTForwardSymbolic(b *testing.B) {
	const world, s = 8, 512
	cfg := benchConfig()
	cfg.NumExperts = 16
	c := benchCluster(world)
	g := c.WorldGroup()
	routings := make([]Routing, world)
	for i := 0; i < world; i++ {
		rng := tensor.NewRNG(uint64(4400 + i))
		routings[i] = SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
	}
	opts := PipelineOpts{DropPolicy: DropByCapacityWeight}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := c.Run(func(r *simrt.Rank) error {
			PFTForward(r, g, cfg, s, nil, routings[r.ID], nil, opts)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
