package moe

import (
	"xmoe/internal/kernels"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Backward trace stage names; mirrored against the forward stages.
const (
	StageBwdCombine    = "bwd_combine"
	StageBwdCombineA2A = "bwd_a2a_combine"
	StageBwdExperts    = "bwd_experts"
	StageBwdDispA2A    = "bwd_a2a_dispatch"
	StageBwdDispatch   = "bwd_dispatch"
)

// BackwardResult carries the gradients of one distributed MoE layer.
// In symbolic mode (opts.Numeric false) all fields are nil: the backward
// pass charges its modeled times and wire volumes without payloads.
type BackwardResult struct {
	// DX is the [S, H] gradient with respect to the layer input (the
	// data-path component through the experts; the router's gating
	// gradient flows through DCombineWeights).
	DX *tensor.Tensor
	// DW1 and DW2 are the per-local-expert weight gradients.
	DW1, DW2 []*tensor.Tensor
	// DCombineWeights[i] is the loss gradient of PFT entry i's combine
	// weight; the caller feeds it into the router's softmax backward
	// (per-token weights are routing metadata, so they stay local). For
	// the padded pipeline the index is the slot index e*C + c (zero for
	// empty slots).
	DCombineWeights []float32
}

// PFTBackward runs the distributed backward pass of the padding-free MoE
// layer (paper §4.3: "expert-specific gradient computation and alltoall
// communications, mirroring the forward process"). Given the forward
// state and the output gradient dOut [S, H], it reverses every forward
// stage: scatter-combine backward, the combine all-to-all in reverse
// (gradients travel source→experts, the same direction as dispatch),
// sequential-GEMM and activation backward per expert segment, the
// dispatch all-to-all in reverse (experts→source), and the gather
// backward into dX. The wire volumes match the forward pass exactly —
// the property the paper's four-alltoalls-per-layer accounting relies on.
//
// opts selects the execution mode: Numeric moves real gradients (dOut and
// params must be set), otherwise the pass is timing-only; OverlapChunks
// selects the chunked overlapped backward, whose gradients are
// bit-identical to the blocking backward for any chunk count (see
// pftBackwardOverlap).
func PFTBackward(r *simrt.Rank, g *simrt.Group, cfg Config, st *PFTFwdState,
	dOut *tensor.Tensor, params *ExpertParams, opts PipelineOpts) BackwardResult {

	if opts.chunks() > 1 {
		return pftBackwardOverlap(r, g, cfg, st, dOut, params, opts)
	}
	epr := epCheck(cfg, g)
	p := g.Size()
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	comp := r.C.Comp
	pft := st.PFT
	b := pft.B()
	bExp := st.bExp()
	// Rank-local backward scratch comes from the per-rank arena;
	// gradients returned to the caller and buffers crossing the
	// all-to-alls stay allocate-fresh (see PFTForward).
	pool := r.Pool()

	// --- Scatter-combine backward ----------------------------------------
	// The forward pass saved combineIn (the returned expert outputs in
	// PFT order); the scatter's backward yields the per-row gradients
	// and the combine-weight gradients in one pass.
	r.Compute(StageBwdCombine, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	var dCombineIn *tensor.Tensor
	var dWeights []float32
	if opts.Numeric {
		dCombineIn, dWeights = kernels.ScatterCombineBackward(dOut, st.CombineIn, pft.TokenIDs, pft.CombineWeights)
	}

	// --- Reverse combine all-to-all ---------------------------------------
	// Forward combine moved rows experts→source; its gradient moves
	// source→experts with identical segmentation (the dispatch layout).
	segStart := pft.ExpertSegments()
	send := make([]simrt.Part, p)
	for dst := 0; dst < p; dst++ {
		lo := segStart[dst*epr]
		hi := b
		if dst < p-1 {
			hi = segStart[(dst+1)*epr]
		}
		part := simrt.Part{Bytes: int64(hi-lo) * int64(h) * elem}
		if opts.Numeric && hi > lo {
			part.Data = dCombineIn.Data[lo*h : hi*h]
		}
		send[dst] = part
	}
	recv := r.AlltoAllV(g, StageBwdCombineA2A, send)

	// Received: src-major, per-src rows ordered by local expert — the
	// same layout as the forward dispatch receive; reorder expert-major.
	var dExpertOut *tensor.Tensor
	if opts.Numeric {
		dExpertOut = pool.Get(bExp, h)
		for src := 0; src < p; src++ {
			data := recv[src].Data
			pos := 0
			for le := 0; le < epr; le++ {
				c := st.RecvCounts[src][le]
				if c == 0 {
					continue
				}
				copy(dExpertOut.Data[st.BlockOff[le][src]*h:(st.BlockOff[le][src]+c)*h],
					data[pos*h:(pos+c)*h])
				pos += c
			}
		}
	}

	// --- Expert FFN backward ----------------------------------------------
	bwdTime := comp.SequentialGEMM(st.RowsPerLE, h, f)*2 +
		comp.SequentialGEMM(st.RowsPerLE, f, h)*2 +
		comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(f)*elem)
	r.Compute(StageBwdExperts, bwdTime)
	// dW1/dW2 are returned to the caller, so they allocate fresh; the
	// hidden-layer gradient chain is pure rank-local scratch.
	var dW1, dW2 []*tensor.Tensor
	var dExpertIn *tensor.Tensor
	if opts.Numeric {
		dW2 = newGradTensors(params.W2)
		dHidAct := pool.Get(bExp, f)
		kernels.SequentialGEMMBackwardInto(dHidAct, dW2, dExpertOut, st.HidAct, st.RowsPerLE, params.W2)
		pool.Put(dExpertOut)
		dHidPre := pool.Get(bExp, f)
		tensor.GeLUBackwardInto(dHidPre, dHidAct, st.HidPre)
		pool.Put(dHidAct)
		dW1 = newGradTensors(params.W1)
		dExpertIn = pool.Get(bExp, h)
		kernels.SequentialGEMMBackwardInto(dExpertIn, dW1, dHidPre, st.ExpertIn, st.RowsPerLE, params.W1)
		pool.Put(dHidPre)
	}

	// --- Reverse dispatch all-to-all ---------------------------------------
	// Reorder expert-major gradients back to src-major and return them to
	// their source ranks.
	sendBack := make([]simrt.Part, p)
	for src := 0; src < p; src++ {
		rows := 0
		for _, c := range st.RecvCounts[src] {
			rows += c
		}
		part := simrt.Part{Bytes: int64(rows) * int64(h) * elem}
		if opts.Numeric {
			buf := make([]float32, rows*h)
			pos := 0
			for le := 0; le < epr; le++ {
				c := st.RecvCounts[src][le]
				if c == 0 {
					continue
				}
				copy(buf[pos*h:(pos+c)*h],
					dExpertIn.Data[st.BlockOff[le][src]*h:(st.BlockOff[le][src]+c)*h])
				pos += c
			}
			part.Data = buf
		}
		sendBack[src] = part
	}
	if opts.Numeric {
		// dExpertIn is fully staged into the send-back buffers.
		pool.Put(dExpertIn)
	}
	back := r.AlltoAllV(g, StageBwdDispA2A, sendBack)
	if opts.OnDWReady != nil {
		// dW is complete and the backward's last blocking collective has
		// retired: gradient sync issued here overlaps the gather backward
		// and every earlier layer's backward compute.
		opts.OnDWReady()
	}

	var dx *tensor.Tensor
	if opts.Numeric {
		dDispIn := pool.Get(b, h)
		pos := 0
		for dst := 0; dst < p; dst++ {
			d := back[dst].Data
			copy(dDispIn.Data[pos:pos+len(d)], d)
			pos += len(d)
		}
		// --- Gather backward ------------------------------------------------
		r.Compute(StageBwdDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
		dx = kernels.GatherBackward(dDispIn, pft.TokenIDs, st.S)
		pool.Put(dDispIn)
		// The forward state is consumed: its saved intermediates return to
		// the arena so the next layer's forward pass reuses them.
		pool.PutAll(st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn)
		st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn = nil, nil, nil, nil
	} else {
		r.Compute(StageBwdDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	}

	return BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}

// pftBackwardOverlap is the chunked overlapped backward: the combine
// gradient is split along the same per-expert ChunkRange boundaries as
// the overlapped forward, all C combine-gradient all-to-alls are issued
// non-blocking up front, and each chunk's dX GEMM chain runs while the
// next chunk's transfer is in flight. The dW GEMMs are deferred until
// every chunk's gradients have landed in the full expert-major buffers
// and then run once over the complete segments — exactly the blocking
// backward's reduction, so the weight gradients are bit-identical for
// any chunk count (per-chunk partial dW accumulation would reorder the
// float summation) — which also makes them the classic bubble filler:
// they hide the tail of the in-flight reverse dispatch all-to-alls.
func pftBackwardOverlap(r *simrt.Rank, g *simrt.Group, cfg Config, st *PFTFwdState,
	dOut *tensor.Tensor, params *ExpertParams, opts PipelineOpts) BackwardResult {

	chunks := opts.chunks()
	epr := epCheck(cfg, g)
	p := g.Size()
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	comp := r.C.Comp
	pool := r.Pool()
	pft := st.PFT
	b := pft.B()
	bExp := st.bExp()
	segStart := pft.ExpertSegments()

	// --- Per-chunk scatter-combine backward + non-blocking reverse combine
	// Chunk c covers rows ChunkRange(cnt_e, chunks, c) of every expert
	// segment, the same split as the overlapped forward dispatch, so both
	// ends agree without extra metadata on the wire.
	var dCombineIn *tensor.Tensor
	var dWeights []float32
	if opts.Numeric {
		dCombineIn = pool.Get(b, h)
		dWeights = make([]float32, b)
	}
	sendFlat := make([]simrt.Part, chunks*p)
	combineH := make([]*simrt.CommHandle, chunks)
	for c := 0; c < chunks; c++ {
		send := sendFlat[c*p : (c+1)*p]
		chunkRows := 0
		for dst := 0; dst < p; dst++ {
			rows := 0
			for le := 0; le < epr; le++ {
				e := dst*epr + le
				lo, hi := simrt.ChunkRange(pft.TokensPerExpert[e], chunks, c)
				rows += hi - lo
				if opts.Numeric {
					for i := segStart[e] + lo; i < segStart[e]+hi; i++ {
						// Row i of the combine backward, exactly the
						// blocking kernel's per-row arithmetic.
						gRow := dOut.Row(pft.TokenIDs[i])
						xRow := st.CombineIn.Row(i)
						w := pft.CombineWeights[i]
						dRow := dCombineIn.Row(i)
						var dot float32
						for j := range gRow {
							dRow[j] = gRow[j] * w
							dot += gRow[j] * xRow[j]
						}
						dWeights[i] = dot
					}
				}
			}
			chunkRows += rows
			part := simrt.Part{Bytes: int64(rows) * int64(h) * elem}
			if opts.Numeric && rows > 0 {
				// Staged allocate-fresh: the buffer crosses a collective.
				buf := make([]float32, rows*h)
				pos := 0
				for le := 0; le < epr; le++ {
					e := dst*epr + le
					lo, hi := simrt.ChunkRange(pft.TokensPerExpert[e], chunks, c)
					if hi > lo {
						copy(buf[pos*h:(pos+hi-lo)*h],
							dCombineIn.Data[(segStart[e]+lo)*h:(segStart[e]+hi)*h])
						pos += hi - lo
					}
				}
				part.Data = buf
			}
			send[dst] = part
		}
		r.Compute(StageBwdCombine, comp.MemBound(perfmodel.ClassTriton, 2*int64(chunkRows)*int64(h)*elem))
		// Charge the strided chunk pack the blocking backward avoids by
		// sending contiguous views.
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(chunkRows)*int64(h)*elem))
		combineH[c] = r.AlltoAllVAsync(g, StageBwdCombineA2A, send)
	}
	if opts.Numeric {
		pool.Put(dCombineIn) // fully staged into the send buffers
	}

	// --- Per-chunk dX GEMM chain, reverse dispatch issued per chunk ------
	// Gradients land directly in full expert-major buffers (the blocking
	// layout) so the deferred dW GEMMs see complete segments; the dX
	// chain runs per (src, le) sub-block — contiguous in the full layout
	// — and is row-independent, hence bit-identical to blocking.
	var dExpertOut, dHidAct, dHidPre, dExpertIn *tensor.Tensor
	if opts.Numeric {
		dExpertOut = pool.Get(bExp, h)
		dHidAct = pool.Get(bExp, f)
		dHidPre = pool.Get(bExp, f)
		dExpertIn = pool.Get(bExp, h)
	}
	chunkRowsPerLE := make([]int, epr)
	backFlat := make([]simrt.Part, chunks*p)
	dispatchH := make([]*simrt.CommHandle, chunks)
	for c := 0; c < chunks; c++ {
		recv := combineH[c].Wait()
		bc := 0
		for le := 0; le < epr; le++ {
			chunkRowsPerLE[le] = 0
			for src := 0; src < p; src++ {
				lo, hi := simrt.ChunkRange(st.RecvCounts[src][le], chunks, c)
				chunkRowsPerLE[le] += hi - lo
			}
			bc += chunkRowsPerLE[le]
		}

		// Reorder this chunk's received rows into the full expert-major
		// gradient buffer (charged: the blocking backward's reorder is a
		// contiguous pass, this one lands strided sub-blocks).
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(h)*elem))
		if opts.Numeric {
			for src := 0; src < p; src++ {
				data := recv[src].Data
				pos := 0
				for le := 0; le < epr; le++ {
					lo, hi := simrt.ChunkRange(st.RecvCounts[src][le], chunks, c)
					if hi > lo {
						o := st.BlockOff[le][src] + lo
						copy(dExpertOut.Data[o*h:(o+hi-lo)*h], data[pos*h:(pos+hi-lo)*h])
						pos += hi - lo
					}
				}
			}
		}

		// dX chain over this chunk's sub-blocks: dHidAct = dY·W2ᵀ, GeLU
		// backward, dExpertIn = dHidPre·W1ᵀ — all row-independent.
		r.Compute(StageBwdExperts, comp.SequentialGEMM(chunkRowsPerLE, h, f)+
			comp.SequentialGEMM(chunkRowsPerLE, f, h)+
			comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(f)*elem))
		if opts.Numeric {
			for le := 0; le < epr; le++ {
				for src := 0; src < p; src++ {
					lo, hi := simrt.ChunkRange(st.RecvCounts[src][le], chunks, c)
					n := hi - lo
					if n == 0 {
						continue
					}
					o := st.BlockOff[le][src] + lo
					dyBlk := tensor.FromSlice(dExpertOut.Data[o*h:(o+n)*h], n, h)
					daBlk := tensor.FromSlice(dHidAct.Data[o*f:(o+n)*f], n, f)
					tensor.MatMulTInto(daBlk, dyBlk, params.W2[le])
					dpBlk := tensor.FromSlice(dHidPre.Data[o*f:(o+n)*f], n, f)
					preBlk := tensor.FromSlice(st.HidPre.Data[o*f:(o+n)*f], n, f)
					tensor.GeLUBackwardInto(dpBlk, daBlk, preBlk)
					dxBlk := tensor.FromSlice(dExpertIn.Data[o*h:(o+n)*h], n, h)
					tensor.MatMulTInto(dxBlk, dpBlk, params.W1[le])
				}
			}
		}

		// Pack this chunk's input gradients src-major and send them home
		// non-blocking; the transfer hides behind the remaining chunks'
		// GEMMs and the deferred dW computation.
		sendBack := backFlat[c*p : (c+1)*p]
		for src := 0; src < p; src++ {
			rows := 0
			for le := 0; le < epr; le++ {
				lo, hi := simrt.ChunkRange(st.RecvCounts[src][le], chunks, c)
				rows += hi - lo
			}
			part := simrt.Part{Bytes: int64(rows) * int64(h) * elem}
			if opts.Numeric && rows > 0 {
				buf := make([]float32, rows*h)
				pos := 0
				for le := 0; le < epr; le++ {
					lo, hi := simrt.ChunkRange(st.RecvCounts[src][le], chunks, c)
					if hi > lo {
						o := st.BlockOff[le][src] + lo
						copy(buf[pos*h:(pos+hi-lo)*h], dExpertIn.Data[o*h:(o+hi-lo)*h])
						pos += hi - lo
					}
				}
				part.Data = buf
			}
			sendBack[src] = part
		}
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(h)*elem))
		dispatchH[c] = r.AlltoAllVAsync(g, StageBwdDispA2A, sendBack)
	}

	// --- Deferred dW GEMMs over the complete segments ---------------------
	// One TMatMul per expert over the full segment: the blocking
	// backward's exact summation order, overlapping the in-flight
	// reverse dispatch transfers.
	r.Compute(StageBwdExperts, comp.SequentialGEMM(st.RowsPerLE, h, f)+
		comp.SequentialGEMM(st.RowsPerLE, f, h))
	var dW1, dW2 []*tensor.Tensor
	if opts.Numeric {
		dW1 = newGradTensors(params.W1)
		dW2 = newGradTensors(params.W2)
		off := 0
		for le, rows := range st.RowsPerLE {
			if rows == 0 {
				continue
			}
			segAct := tensor.FromSlice(st.HidAct.Data[off*f:(off+rows)*f], rows, f)
			segDY := tensor.FromSlice(dExpertOut.Data[off*h:(off+rows)*h], rows, h)
			tensor.TMatMulInto(dW2[le], segAct, segDY)
			segIn := tensor.FromSlice(st.ExpertIn.Data[off*h:(off+rows)*h], rows, h)
			segDP := tensor.FromSlice(dHidPre.Data[off*f:(off+rows)*f], rows, f)
			tensor.TMatMulInto(dW1[le], segIn, segDP)
			off += rows
		}
		pool.PutAll(dExpertOut, dHidAct, dHidPre, dExpertIn)
	}
	if opts.OnDWReady != nil {
		// dW is complete; the only remaining collectives are the already
		// in-flight reverse dispatch chunks, so gradient sync issued here
		// queues behind them on the comm stream and overlaps the drain
		// and gather backward.
		opts.OnDWReady()
	}

	// --- Drain the reverse dispatch chunks into dDispIn -------------------
	var dDispIn *tensor.Tensor
	if opts.Numeric {
		dDispIn = pool.Get(b, h)
	}
	for c := 0; c < chunks; c++ {
		back := dispatchH[c].Wait()
		if !opts.Numeric {
			continue
		}
		for dst := 0; dst < p; dst++ {
			data := back[dst].Data
			pos := 0
			for le := 0; le < epr; le++ {
				e := dst*epr + le
				lo, hi := simrt.ChunkRange(pft.TokensPerExpert[e], chunks, c)
				if hi > lo {
					copy(dDispIn.Data[(segStart[e]+lo)*h:(segStart[e]+hi)*h],
						data[pos*h:(pos+hi-lo)*h])
					pos += hi - lo
				}
			}
		}
	}

	// --- Gather backward ----------------------------------------------------
	r.Compute(StageBwdDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	var dx *tensor.Tensor
	if opts.Numeric {
		dx = kernels.GatherBackward(dDispIn, pft.TokenIDs, st.S)
		pool.Put(dDispIn)
		// The forward state is consumed (see the blocking path).
		pool.PutAll(st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn)
		st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn = nil, nil, nil, nil
	}

	return BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}

// newGradTensors allocates one zero gradient tensor per weight tensor.
func newGradTensors(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for e, w := range ws {
		out[e] = tensor.New(w.Rows(), w.Cols())
	}
	return out
}
