package moe

import (
	"xmoe/internal/kernels"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Backward trace stage names; mirrored against the forward stages.
const (
	StageBwdCombine    = "bwd_combine"
	StageBwdCombineA2A = "bwd_a2a_combine"
	StageBwdExperts    = "bwd_experts"
	StageBwdDispA2A    = "bwd_a2a_dispatch"
	StageBwdDispatch   = "bwd_dispatch"
)

// BackwardResult carries the gradients of one distributed MoE layer.
type BackwardResult struct {
	// DX is the [S, H] gradient with respect to the layer input (the
	// data-path component through the experts; the router's gating
	// gradient flows through DCombineWeights).
	DX *tensor.Tensor
	// DW1 and DW2 are the per-local-expert weight gradients.
	DW1, DW2 []*tensor.Tensor
	// DCombineWeights[i] is the loss gradient of PFT entry i's combine
	// weight; the caller feeds it into the router's softmax backward
	// (per-token weights are routing metadata, so they stay local).
	DCombineWeights []float32
}

// PFTBackward runs the distributed backward pass of the padding-free MoE
// layer (paper §4.3: "expert-specific gradient computation and alltoall
// communications, mirroring the forward process"). Given the forward
// state and the output gradient dOut [S, H], it reverses every forward
// stage: scatter-combine backward, the combine all-to-all in reverse
// (gradients travel source→experts, the same direction as dispatch),
// sequential-GEMM and activation backward per expert segment, the
// dispatch all-to-all in reverse (experts→source), and the gather
// backward into dX. The wire volumes match the forward pass exactly —
// the property the paper's four-alltoalls-per-layer accounting relies on.
func PFTBackward(r *simrt.Rank, g *simrt.Group, cfg Config, st *PFTFwdState,
	dOut *tensor.Tensor, params *ExpertParams) BackwardResult {

	epr := epCheck(cfg, g)
	p := g.Size()
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	comp := r.C.Comp
	pft := st.PFT
	b := pft.B()
	// Rank-local backward scratch comes from the per-rank arena;
	// gradients returned to the caller and buffers crossing the
	// all-to-alls stay allocate-fresh (see PFTForward).
	pool := r.Pool()

	// --- Scatter-combine backward ----------------------------------------
	// The forward pass saved combineIn (the returned expert outputs in
	// PFT order); the scatter's backward yields the per-row gradients
	// and the combine-weight gradients in one pass.
	r.Compute(StageBwdCombine, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	dCombineIn, dWeights := kernels.ScatterCombineBackward(dOut, st.CombineIn, pft.TokenIDs, pft.CombineWeights)

	// --- Reverse combine all-to-all ---------------------------------------
	// Forward combine moved rows experts→source; its gradient moves
	// source→experts with identical segmentation (the dispatch layout).
	segStart := pft.ExpertSegments()
	send := make([]simrt.Part, p)
	for dst := 0; dst < p; dst++ {
		lo := segStart[dst*epr]
		hi := b
		if dst < p-1 {
			hi = segStart[(dst+1)*epr]
		}
		part := simrt.Part{Bytes: int64(hi-lo) * int64(h) * elem}
		if hi > lo {
			part.Data = dCombineIn.Data[lo*h : hi*h]
		}
		send[dst] = part
	}
	recv := r.AlltoAllV(g, StageBwdCombineA2A, send)

	// Received: src-major, per-src rows ordered by local expert — the
	// same layout as the forward dispatch receive; reorder expert-major.
	bExp := st.ExpertIn.Rows()
	dExpertOut := pool.Get(bExp, h)
	for src := 0; src < p; src++ {
		data := recv[src].Data
		pos := 0
		for le := 0; le < epr; le++ {
			c := st.RecvCounts[src][le]
			if c == 0 {
				continue
			}
			copy(dExpertOut.Data[st.BlockOff[le][src]*h:(st.BlockOff[le][src]+c)*h],
				data[pos*h:(pos+c)*h])
			pos += c
		}
	}

	// --- Expert FFN backward ----------------------------------------------
	bwdTime := comp.SequentialGEMM(st.RowsPerLE, h, f)*2 +
		comp.SequentialGEMM(st.RowsPerLE, f, h)*2 +
		comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(f)*elem)
	r.Compute(StageBwdExperts, bwdTime)
	// dW1/dW2 are returned to the caller, so they allocate fresh; the
	// hidden-layer gradient chain is pure rank-local scratch.
	dW2 := newGradTensors(params.W2)
	dHidAct := pool.Get(bExp, f)
	kernels.SequentialGEMMBackwardInto(dHidAct, dW2, dExpertOut, st.HidAct, st.RowsPerLE, params.W2)
	pool.Put(dExpertOut)
	dHidPre := pool.Get(bExp, f)
	tensor.GeLUBackwardInto(dHidPre, dHidAct, st.HidPre)
	pool.Put(dHidAct)
	dW1 := newGradTensors(params.W1)
	dExpertIn := pool.Get(bExp, h)
	kernels.SequentialGEMMBackwardInto(dExpertIn, dW1, dHidPre, st.ExpertIn, st.RowsPerLE, params.W1)
	pool.Put(dHidPre)

	// --- Reverse dispatch all-to-all ---------------------------------------
	// Reorder expert-major gradients back to src-major and return them to
	// their source ranks.
	sendBack := make([]simrt.Part, p)
	for src := 0; src < p; src++ {
		rows := 0
		for _, c := range st.RecvCounts[src] {
			rows += c
		}
		buf := make([]float32, rows*h)
		pos := 0
		for le := 0; le < epr; le++ {
			c := st.RecvCounts[src][le]
			if c == 0 {
				continue
			}
			copy(buf[pos*h:(pos+c)*h],
				dExpertIn.Data[st.BlockOff[le][src]*h:(st.BlockOff[le][src]+c)*h])
			pos += c
		}
		sendBack[src] = simrt.Part{Data: buf, Bytes: int64(rows) * int64(h) * elem}
	}
	// dExpertIn is fully staged into the send-back buffers.
	pool.Put(dExpertIn)
	back := r.AlltoAllV(g, StageBwdDispA2A, sendBack)

	dDispIn := pool.Get(b, h)
	pos := 0
	for dst := 0; dst < p; dst++ {
		d := back[dst].Data
		copy(dDispIn.Data[pos:pos+len(d)], d)
		pos += len(d)
	}

	// --- Gather backward ----------------------------------------------------
	r.Compute(StageBwdDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	dx := kernels.GatherBackward(dDispIn, pft.TokenIDs, st.S)
	pool.Put(dDispIn)

	// The forward state is consumed: its saved intermediates return to
	// the arena so the next layer's forward pass reuses them.
	pool.PutAll(st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn)
	st.ExpertIn, st.HidPre, st.HidAct, st.CombineIn = nil, nil, nil, nil

	return BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}

// newGradTensors allocates one zero gradient tensor per weight tensor.
func newGradTensors(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for e, w := range ws {
		out[e] = tensor.New(w.Rows(), w.Cols())
	}
	return out
}
