package moe

import (
	"fmt"
	"math"
	"sort"

	"xmoe/internal/tensor"
)

// Routing is the output of the MoE gating function for a batch of S local
// tokens: for each token, the top-k experts in descending score order,
// their softmax probabilities (the combine weights), and the raw logits of
// the selected experts (needed by DeepSpeed-MoE's drop-negative-score
// policy, §5.6).
type Routing struct {
	// S is the number of local tokens routed.
	S int
	// TopExperts[t][j] is the j-th chosen expert of token t.
	TopExperts [][]int
	// Weights[t][j] is the gating probability of that assignment.
	Weights [][]float32
	// Logits[t][j] is the raw (pre-softmax) gate logit of that
	// assignment; may be nil when the producer does not track it.
	Logits [][]float32
}

// K returns the routing fan-out (0 for an empty routing).
func (r Routing) K() int {
	if len(r.TopExperts) == 0 {
		return 0
	}
	return len(r.TopExperts[0])
}

// Validate checks structural consistency against an expert count.
func (r Routing) Validate(numExperts int) error {
	if len(r.TopExperts) != r.S || len(r.Weights) != r.S {
		return fmt.Errorf("moe: routing arrays sized %d/%d for S=%d",
			len(r.TopExperts), len(r.Weights), r.S)
	}
	k := r.K()
	for t := 0; t < r.S; t++ {
		if len(r.TopExperts[t]) != k || len(r.Weights[t]) != k {
			return fmt.Errorf("moe: token %d has ragged top-k", t)
		}
		seen := map[int]bool{}
		for j, e := range r.TopExperts[t] {
			if e < 0 || e >= numExperts {
				return fmt.Errorf("moe: token %d routed to expert %d outside [0,%d)", t, e, numExperts)
			}
			if seen[e] {
				return fmt.Errorf("moe: token %d routed to expert %d twice", t, e)
			}
			seen[e] = true
			if w := r.Weights[t][j]; w < 0 || w > 1 || math.IsNaN(float64(w)) {
				return fmt.Errorf("moe: token %d weight %f outside [0,1]", t, w)
			}
		}
	}
	return nil
}

// Gate computes the gating function of Listing 1 (lines 1-8) numerically:
// logits = x·wg, softmax over experts, top-k selection. x is [S, H] and wg
// is [H, E]. The returned routing carries both probabilities and raw
// logits.
func Gate(x, wg *tensor.Tensor, k int) Routing {
	s := x.Rows()
	e := wg.Cols()
	logits := tensor.MatMul(x, wg)
	probs := logits.Clone()
	tensor.SoftmaxRows(probs)
	idx, _ := tensor.TopK(probs, k)
	r := Routing{
		S:          s,
		TopExperts: idx,
		Weights:    make([][]float32, s),
		Logits:     make([][]float32, s),
	}
	weightsFlat := make([]float32, s*k)
	logitsFlat := make([]float32, s*k)
	for t := 0; t < s; t++ {
		r.Weights[t] = weightsFlat[t*k : (t+1)*k]
		r.Logits[t] = logitsFlat[t*k : (t+1)*k]
		for j, exp := range idx[t] {
			r.Weights[t][j] = probs.At(t, exp)
			r.Logits[t][j] = logits.At(t, exp)
		}
	}
	_ = e
	return r
}

// SyntheticRouting generates a deterministic, realistically imbalanced
// routing for S tokens over E experts with fan-out k. Expert popularity
// follows a Zipf-like distribution with exponent skew (0 = uniform);
// per-token experts are sampled without replacement proportionally to
// popularity. The skewed load is what makes capacity padding wasteful in
// the baselines and gives RBD its node-level redundancy.
func SyntheticRouting(rng *tensor.RNG, s, e, k int, skew float64) Routing {
	if k > e {
		panic(fmt.Sprintf("moe: k=%d exceeds experts=%d", k, e))
	}
	// Popularity: Zipf over a shuffled expert order so hot experts are
	// scattered across ranks/nodes rather than clustered at low IDs.
	pop := make([]float64, e)
	perm := rng.Perm(e)
	for i := 0; i < e; i++ {
		pop[perm[i]] = math.Pow(float64(i+1), -skew)
	}
	// Cumulative weights for O(log E) sampling via binary search;
	// duplicates are rejected and redrawn (k << E makes this cheap), with
	// a bounded-retry fallback scan for pathological cases.
	cum := make([]float64, e)
	run := 0.0
	for i, v := range pop {
		run += v
		cum[i] = run
	}
	total := run

	// Per-token rows are views into flat backing arrays: the symbolic
	// sweeps build one routing per rank per simulated layer, so the
	// constant allocation count matters.
	r := Routing{
		S:          s,
		TopExperts: make([][]int, s),
		Weights:    make([][]float32, s),
		Logits:     make([][]float32, s),
	}
	expertsFlat := make([]int, s*k)
	weightsFlat := make([]float32, s*k)
	logitsFlat := make([]float32, s*k)
	raw := make([]float64, k)
	chosenSet := make([]bool, e)
	for t := 0; t < s; t++ {
		experts := expertsFlat[t*k : (t+1)*k]
		weights := weightsFlat[t*k : (t+1)*k]
		logits := logitsFlat[t*k : (t+1)*k]
		for j := 0; j < k; j++ {
			idx := -1
			for attempt := 0; attempt < 64; attempt++ {
				target := rng.Float64() * total
				cand := sort.SearchFloat64s(cum, target)
				if cand >= e {
					cand = e - 1
				}
				if !chosenSet[cand] {
					idx = cand
					break
				}
			}
			if idx < 0 {
				// Fallback: take the first unchosen expert.
				for cand := 0; cand < e; cand++ {
					if !chosenSet[cand] {
						idx = cand
						break
					}
				}
			}
			chosenSet[idx] = true
			experts[j] = idx
			logits[j] = float32(rng.Norm() + 1.0)
		}
		for _, ex := range experts {
			chosenSet[ex] = false
		}
		// Combine weights: softmax over k pseudo-scores, descending to
		// mimic top-k ordering.
		var sum float64
		for j := range raw {
			raw[j] = math.Exp(rng.Norm())
			sum += raw[j]
		}
		for j := range raw {
			weights[j] = float32(raw[j] / sum * 0.9) // headroom below 1.0
		}
		// Sort selections by weight descending (top-k order).
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if weights[b] > weights[a] {
					weights[a], weights[b] = weights[b], weights[a]
					experts[a], experts[b] = experts[b], experts[a]
					logits[a], logits[b] = logits[b], logits[a]
				}
			}
		}
		r.TopExperts[t] = experts
		r.Weights[t] = weights
		r.Logits[t] = logits
	}
	return r
}

// ExpertLoad returns the number of routed assignments per expert.
func (r Routing) ExpertLoad(numExperts int) []int {
	load := make([]int, numExperts)
	for t := 0; t < r.S; t++ {
		for _, e := range r.TopExperts[t] {
			load[e]++
		}
	}
	return load
}
