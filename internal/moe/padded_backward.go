package moe

import (
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// PaddedBackward runs the distributed backward pass of the conventional
// zero-padded MoE layer, mirroring PaddedForward stage for stage: the
// mask-einsum combine backward over the full padded buffer, the even
// all-to-all in reverse (gradients travel source→experts, carrying the
// padding exactly like the forward dispatch), the batched padded expert
// GEMM backward, the reverse even all-to-all, and the dispatch backward
// that accumulates occupied slots into dX. Wire volumes match the
// forward pass exactly — including the zero-padding waste, which is the
// point of the baseline.
//
// opts mirrors PFTBackward: Numeric selects real gradient math (dOut and
// params required), OverlapChunks the chunked overlapped execution whose
// gradients are bit-identical to the blocking backward for any chunk
// count (per-chunk dX chain over capacity-slot ranges, deferred
// full-segment dW GEMMs).
func PaddedBackward(r *simrt.Rank, g *simrt.Group, cfg Config, st *PaddedFwdState,
	dOut *tensor.Tensor, params *ExpertParams, opts PipelineOpts) BackwardResult {

	epr := epCheck(cfg, g)
	p := g.Size()
	h, f, e := cfg.HModel, cfg.HFFN, cfg.NumExperts
	capTokens := st.PA.Capacity
	elem := int64(cfg.BytesPerElem)
	vendor := opts.Kernels == KernelsVendor
	kernelClass := perfmodel.ClassFallback
	if vendor {
		kernelClass = perfmodel.ClassVendor
	}
	comp := r.C.Comp
	pool := r.Pool()
	rowsPerExpert := p * capTokens
	chunks := opts.chunks()

	// combineBwdTime returns the modeled combine-backward time over cl
	// capacity slots per expert (the mask einsum's gradient is another
	// einsum for the fallback frameworks, a bandwidth pass for Tutel).
	combineBwdTime := func(cl int) float64 {
		if vendor {
			return comp.MemBound(perfmodel.ClassVendor, 2*int64(e)*int64(cl)*int64(h)*elem)
		}
		return comp.MaskEinsum(st.S, e, cl, h)
	}

	// --- Combine backward + reverse combine all-to-all --------------------
	// dFull[slot] = w_slot * dOut[token]; dWeights[slot] = <dOut[token],
	// combineFull[slot]>. Empty slots stay zero. The blocking path does
	// one pass over all capTokens slots and one blocking exchange; the
	// chunked path processes ChunkRange slot ranges and issues every
	// chunk's exchange non-blocking up front.
	var dFull *tensor.Tensor
	var dWeights []float32
	if opts.Numeric {
		dFull = pool.Get(e*capTokens, h)
		dWeights = make([]float32, e*capTokens)
	}
	combineBwdChunk := func(slo, shi int) {
		if !opts.Numeric {
			return
		}
		for exp := 0; exp < e; exp++ {
			for c := slo; c < shi; c++ {
				tok := st.PA.SlotToken[exp][c]
				if tok < 0 {
					continue
				}
				slot := exp*capTokens + c
				gRow := dOut.Row(tok)
				xRow := st.CombineFull.Data[slot*h : (slot+1)*h]
				w := st.PA.SlotWeight[exp][c]
				dRow := dFull.Data[slot*h : (slot+1)*h]
				var dot float32
				for j := range gRow {
					dRow[j] = gRow[j] * w
					dot += gRow[j] * xRow[j]
				}
				dWeights[slot] = dot
			}
		}
	}

	sendFlat := make([]simrt.Part, chunks*p)
	combineH := make([]*simrt.CommHandle, chunks)
	var recvBlocking []simrt.Part
	for c := 0; c < chunks; c++ {
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo
		combineBwdChunk(slo, shi)
		r.Compute(StageBwdCombine, combineBwdTime(cl))
		send := sendFlat[c*p : (c+1)*p]
		for dst := 0; dst < p; dst++ {
			part := simrt.Part{Bytes: int64(epr) * int64(cl) * int64(h) * elem}
			if opts.Numeric && cl > 0 {
				if chunks == 1 {
					// Contiguous view: dst's experts' full slot range.
					lo := dst * epr * capTokens * h
					part.Data = dFull.Data[lo : lo+epr*capTokens*h]
				} else {
					buf := make([]float32, epr*cl*h)
					for le := 0; le < epr; le++ {
						base := ((dst*epr+le)*capTokens + slo) * h
						copy(buf[le*cl*h:(le+1)*cl*h], dFull.Data[base:base+cl*h])
					}
					part.Data = buf
				}
			}
			send[dst] = part
		}
		if chunks == 1 {
			recvBlocking = r.AlltoAllV(g, StageBwdCombineA2A, send)
		} else {
			// Charge the strided slot-chunk pack the blocking path's
			// contiguous view avoids.
			r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
			combineH[c] = r.AlltoAllVAsync(g, StageBwdCombineA2A, send)
		}
	}

	// --- Per-chunk expert backward ----------------------------------------
	// Received layout per chunk: [P, EPR, cl, H] reordered into the full
	// expert-major gradient buffer; the dX GEMM chain runs per chunk, the
	// dW GEMMs once over the complete segments after the last chunk (see
	// pftBackwardOverlap for the bit-identity argument).
	var dExpertOut, dHidAct, dHidPre, dExpertIn *tensor.Tensor
	if opts.Numeric {
		dExpertOut = pool.Get(epr*rowsPerExpert, h)
		dHidAct = pool.Get(epr*rowsPerExpert, f)
		dHidPre = pool.Get(epr*rowsPerExpert, f)
		dExpertIn = pool.Get(epr*rowsPerExpert, h)
	}
	chunkRows := make([]int, epr)
	backFlat := make([]simrt.Part, chunks*p)
	dispatchH := make([]*simrt.CommHandle, chunks)
	var backBlocking []simrt.Part
	for c := 0; c < chunks; c++ {
		var recv []simrt.Part
		if chunks == 1 {
			recv = recvBlocking
		} else {
			recv = combineH[c].Wait()
		}
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo

		// Reorder [P, EPR, cl, H] -> expert-major sub-blocks.
		r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
		if opts.Numeric {
			for src := 0; src < p; src++ {
				data := recv[src].Data
				for le := 0; le < epr; le++ {
					o := ((le*p+src)*capTokens + slo) * h
					copy(dExpertOut.Data[o:o+cl*h], data[le*cl*h:(le+1)*cl*h])
				}
			}
		}

		// dX chain over this chunk's slot range of every (le, src) block.
		for i := range chunkRows {
			chunkRows[i] = p * cl
		}
		r.Compute(StageBwdExperts, comp.BatchedPaddedGEMM(epr, p*cl, h, f)+
			comp.BatchedPaddedGEMM(epr, p*cl, f, h)+
			comp.MemBound(perfmodel.ClassVendor, 2*int64(epr*p*cl)*int64(f)*elem))
		if opts.Numeric && cl > 0 {
			for le := 0; le < epr; le++ {
				for src := 0; src < p; src++ {
					o := (le*p+src)*capTokens + slo
					dyBlk := tensor.FromSlice(dExpertOut.Data[o*h:(o+cl)*h], cl, h)
					daBlk := tensor.FromSlice(dHidAct.Data[o*f:(o+cl)*f], cl, f)
					tensor.MatMulTInto(daBlk, dyBlk, params.W2[le])
					dpBlk := tensor.FromSlice(dHidPre.Data[o*f:(o+cl)*f], cl, f)
					preBlk := tensor.FromSlice(st.HidPre.Data[o*f:(o+cl)*f], cl, f)
					tensor.GeLUBackwardInto(dpBlk, daBlk, preBlk)
					dxBlk := tensor.FromSlice(dExpertIn.Data[o*h:(o+cl)*h], cl, h)
					tensor.MatMulTInto(dxBlk, dpBlk, params.W1[le])
				}
			}
		}

		// Pack src-major and send this chunk's input gradients home.
		r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
		sendBack := backFlat[c*p : (c+1)*p]
		for dst := 0; dst < p; dst++ {
			part := simrt.Part{Bytes: int64(epr) * int64(cl) * int64(h) * elem}
			if opts.Numeric && cl > 0 {
				buf := make([]float32, epr*cl*h)
				for le := 0; le < epr; le++ {
					o := ((le*p+dst)*capTokens + slo) * h
					copy(buf[le*cl*h:(le+1)*cl*h], dExpertIn.Data[o:o+cl*h])
				}
				part.Data = buf
			}
			sendBack[dst] = part
		}
		if chunks == 1 {
			backBlocking = r.AlltoAllV(g, StageBwdDispA2A, sendBack)
		} else {
			dispatchH[c] = r.AlltoAllVAsync(g, StageBwdDispA2A, sendBack)
		}
	}

	// --- dW GEMMs over the complete segments ------------------------------
	// The blocking path runs them here trivially (everything has
	// arrived); the chunked path runs them here deliberately — one
	// TMatMul per expert over the full contiguous segment, the blocking
	// reduction order, hiding the in-flight reverse transfers.
	r.Compute(StageBwdExperts, comp.BatchedPaddedGEMM(epr, rowsPerExpert, h, f)+
		comp.BatchedPaddedGEMM(epr, rowsPerExpert, f, h))
	var dW1, dW2 []*tensor.Tensor
	if opts.Numeric {
		dW1 = newGradTensors(params.W1)
		dW2 = newGradTensors(params.W2)
		for le := 0; le < epr; le++ {
			o := le * rowsPerExpert
			segAct := tensor.FromSlice(st.HidAct.Data[o*f:(o+rowsPerExpert)*f], rowsPerExpert, f)
			segDY := tensor.FromSlice(dExpertOut.Data[o*h:(o+rowsPerExpert)*h], rowsPerExpert, h)
			tensor.TMatMulInto(dW2[le], segAct, segDY)
			segIn := tensor.FromSlice(st.ExpertIn.Data[o*h:(o+rowsPerExpert)*h], rowsPerExpert, h)
			segDP := tensor.FromSlice(dHidPre.Data[o*f:(o+rowsPerExpert)*f], rowsPerExpert, f)
			tensor.TMatMulInto(dW1[le], segIn, segDP)
		}
		pool.PutAll(dExpertOut, dHidAct, dHidPre, dExpertIn, dFull)
	}
	if opts.OnDWReady != nil {
		// dW is complete and the last blocking collective has retired
		// (chunks == 1: the reverse dispatch already exchanged above;
		// chunked: only async chunk transfers remain in flight), so
		// gradient sync issued here overlaps the drain and the unpad
		// backward.
		opts.OnDWReady()
	}

	// --- Drain reverse chunks into the dispatch-buffer gradient -----------
	var dDispBuf *tensor.Tensor
	if opts.Numeric {
		dDispBuf = pool.Get(e*capTokens, h)
	}
	drain := func(c int, back []simrt.Part) {
		if !opts.Numeric {
			return
		}
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo
		for dst := 0; dst < p; dst++ {
			data := back[dst].Data
			for le := 0; le < epr; le++ {
				base := ((dst*epr+le)*capTokens + slo) * h
				copy(dDispBuf.Data[base:base+cl*h], data[le*cl*h:(le+1)*cl*h])
			}
		}
	}
	if chunks == 1 {
		drain(0, backBlocking)
	} else {
		for c := 0; c < chunks; c++ {
			drain(c, dispatchH[c].Wait())
		}
	}

	// --- Dispatch backward -------------------------------------------------
	// Occupied slots accumulate into their token's row, in slot order
	// (global expert ascending, capacity position ascending) — done once
	// over the fully drained buffer, so the order is chunk-invariant.
	if vendor {
		r.Compute(StageBwdDispatch, comp.MemBound(perfmodel.ClassVendor,
			2*int64(e)*int64(capTokens)*int64(h)*elem))
	} else {
		r.Compute(StageBwdDispatch, comp.MaskEinsum(st.S, e, capTokens, h))
	}
	var dx *tensor.Tensor
	if opts.Numeric {
		dx = tensor.New(st.S, h)
		for exp := 0; exp < e; exp++ {
			for c := 0; c < capTokens; c++ {
				tok := st.PA.SlotToken[exp][c]
				if tok < 0 {
					continue
				}
				src := dDispBuf.Data[(exp*capTokens+c)*h : (exp*capTokens+c+1)*h]
				dst := dx.Row(tok)
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		pool.Put(dDispBuf)
		// The forward state is consumed.
		pool.PutAll(st.ExpertIn, st.HidPre, st.HidAct, st.CombineFull)
		st.ExpertIn, st.HidPre, st.HidAct, st.CombineFull = nil, nil, nil, nil
	}

	return BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}
