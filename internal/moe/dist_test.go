package moe

import (
	"fmt"
	"sync"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// expertWeights returns deterministic weights for global expert e, so
// every rank (and the reference) agrees on expert parameters.
func expertWeights(e, h, f int) (w1, w2 *tensor.Tensor) {
	rng := tensor.NewRNG(uint64(1000 + e))
	return tensor.Randn(rng, 0.05, h, f), tensor.Randn(rng, 0.05, f, h)
}

func localParams(member, epr, h, f int) *ExpertParams {
	p := &ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
	for le := 0; le < epr; le++ {
		p.W1[le], p.W2[le] = expertWeights(member*epr+le, h, f)
	}
	return p
}

// referenceMoE computes the expected layer output given the retained
// assignments of a PFT: out[t] = sum over retained (t,e) of
// w * FFN_e(x[t]).
func referenceMoE(x *tensor.Tensor, pft *PFT, h, f int) *tensor.Tensor {
	out := tensor.New(x.Rows(), h)
	for i := range pft.TokenIDs {
		t, e, w := pft.TokenIDs[i], pft.ExpertIDs[i], pft.CombineWeights[i]
		w1, w2 := expertWeights(e, h, f)
		xi := tensor.FromSlice(x.Row(t), 1, h)
		hid := tensor.MatMul(xi, w1)
		tensor.GeLU(hid)
		y := tensor.MatMul(hid, w2)
		dst := out.Row(t)
		for j, v := range y.Data {
			dst[j] += w * v
		}
	}
	return out
}

func newMoECluster(t *testing.T, n int) *simrt.Cluster {
	t.Helper()
	c := simrt.NewCluster(topology.Frontier(), n, 99)
	c.Net.DisableCongestion = true
	return c
}

func distConfig(e, k int) Config {
	return Config{
		NumExperts:     e,
		TopK:           k,
		HModel:         12,
		HFFN:           8,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
}

func runPipeline(t *testing.T, pipeline func(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult,
	c *simrt.Cluster, cfg Config, s int, opts PipelineOpts) map[int]LayerResult {
	t.Helper()
	g := c.WorldGroup()
	epr := cfg.NumExperts / c.NumRanks
	results := make(map[int]LayerResult)
	var mu sync.Mutex
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(500 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.7)
		params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
		res := pipeline(r, g, cfg, s, x, routing, params, opts)
		mu.Lock()
		results[r.ID] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestPFTForwardMatchesReference(t *testing.T) {
	c := newMoECluster(t, 4)
	cfg := distConfig(8, 3)
	const s = 24
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(500 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.7)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight, RetainActivations: true,
		})
		want := referenceMoE(x, res.PFT, cfg.HModel, cfg.HFFN)
		if !res.Output.Equal(want, 1e-3) {
			return fmt.Errorf("rank %d: PFT forward differs from reference", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPaddedForwardMatchesPFTForward(t *testing.T) {
	// Under the FCFS drop policy both pipelines retain exactly the same
	// assignments, so outputs must agree within float tolerance. This is
	// the §5.6-style correctness validation of the padding-free pipeline.
	c1 := newMoECluster(t, 4)
	c2 := newMoECluster(t, 4)
	cfg := distConfig(8, 3)
	const s = 24
	opts := PipelineOpts{Numeric: true, DropPolicy: DropNegativeThenPosition, RetainActivations: true}
	pftRes := runPipeline(t, PFTForward, c1, cfg, s, opts)
	padRes := runPipeline(t, PaddedForward, c2, cfg, s, opts)
	for rank, pr := range pftRes {
		qr := padRes[rank]
		if pr.Output == nil || qr.Output == nil {
			t.Fatalf("rank %d: nil outputs", rank)
		}
		if !pr.Output.Equal(qr.Output, 1e-3) {
			t.Fatalf("rank %d: padded and PFT outputs differ", rank)
		}
		if pr.Dropped != qr.Dropped {
			t.Fatalf("rank %d: dropped %d vs %d", rank, pr.Dropped, qr.Dropped)
		}
	}
}

func TestPipelinesTokenConservation(t *testing.T) {
	c := newMoECluster(t, 8)
	cfg := distConfig(16, 4)
	res := runPipeline(t, PFTForward, c, cfg, 32, PipelineOpts{DropPolicy: DropByCapacityWeight})
	var routed, received int
	for _, r := range res {
		routed += r.RoutedTokens
		received += r.RecvTokens
	}
	if routed != received {
		t.Fatalf("tokens not conserved across ranks: routed %d received %d", routed, received)
	}
	if routed == 0 {
		t.Fatal("no tokens routed")
	}
}

func TestSymbolicModeMatchesNumericCounts(t *testing.T) {
	cfg := distConfig(8, 3)
	const s = 24
	opts := PipelineOpts{Numeric: true, DropPolicy: DropByCapacityWeight}
	optsSym := opts
	optsSym.Numeric = false
	numRes := runPipeline(t, PFTForward, newMoECluster(t, 4), cfg, s, opts)
	symRes := runPipeline(t, PFTForward, newMoECluster(t, 4), cfg, s, optsSym)
	for rank := range numRes {
		if numRes[rank].RoutedTokens != symRes[rank].RoutedTokens ||
			numRes[rank].RecvTokens != symRes[rank].RecvTokens {
			t.Fatalf("rank %d: symbolic counts diverge from numeric", rank)
		}
		if symRes[rank].Output != nil {
			t.Fatal("symbolic mode must not produce numeric output")
		}
	}
}

func TestPaddedUsesMoreMemoryThanPFT(t *testing.T) {
	// Table 4's core claim: the padded pipeline's activation memory
	// exceeds the PFT pipeline's at equal configuration.
	cfg := distConfig(16, 4)
	const s = 64
	cPad := newMoECluster(t, 4)
	cPft := newMoECluster(t, 4)
	opts := PipelineOpts{DropPolicy: DropNegativeThenPosition, RetainActivations: true}
	runPipeline(t, PaddedForward, cPad, cfg, s, opts)
	runPipeline(t, PFTForward, cPft, cfg, s, opts)
	if cPad.PeakMemory() <= cPft.PeakMemory() {
		t.Fatalf("padded peak %d should exceed PFT peak %d", cPad.PeakMemory(), cPft.PeakMemory())
	}
}

func TestPaddedCommunicatesMoreThanPFT(t *testing.T) {
	// The even all-to-all carries zero-padding; the uneven one does not.
	cfg := distConfig(16, 4)
	const s = 64
	cPad := newMoECluster(t, 8)
	cPft := newMoECluster(t, 8)
	opts := PipelineOpts{DropPolicy: DropNegativeThenPosition}
	padRes := runPipeline(t, PaddedForward, cPad, cfg, s, opts)
	pftRes := runPipeline(t, PFTForward, cPft, cfg, s, opts)
	// Padded RecvTokens includes padding slots; PFT's equals real tokens.
	var padRecv, pftRecv int
	for rank := range padRes {
		padRecv += padRes[rank].RecvTokens
		pftRecv += pftRes[rank].RecvTokens
	}
	if padRecv <= pftRecv {
		t.Fatalf("padded rows %d should exceed PFT rows %d", padRecv, pftRecv)
	}
}

func TestTraceStagesRecorded(t *testing.T) {
	c := newMoECluster(t, 4)
	cfg := distConfig(8, 3)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(r.ID))
		routing := SyntheticRouting(rng, 16, cfg.NumExperts, cfg.TopK, 0.5)
		PFTForward(r, g, cfg, 16, nil, routing, nil, PipelineOpts{})
		for _, stage := range []string{StageGate, StageDispatch, StageDispatchA2A,
			StageExperts, StageCombineA2A, StageCombine, StageOthers} {
			if r.Trace.Total(stage) <= 0 {
				return fmt.Errorf("stage %q not recorded", stage)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTutelCombineBytesIncreaseMemory(t *testing.T) {
	// Tutel's fp32 A_combine on AMD (Table 4) must show up as extra
	// combine-buffer memory.
	cfg := distConfig(16, 4)
	const s = 64
	c16 := newMoECluster(t, 4)
	c32 := newMoECluster(t, 4)
	opts16 := PipelineOpts{DropPolicy: DropNegativeThenPosition, RetainActivations: true, Kernels: KernelsVendor}
	opts32 := opts16
	opts32.CombineBytes = 4
	runPipeline(t, PaddedForward, c16, cfg, s, opts16)
	runPipeline(t, PaddedForward, c32, cfg, s, opts32)
	if c32.PeakMemory() <= c16.PeakMemory() {
		t.Fatal("fp32 combine buffers must increase peak memory")
	}
}

func TestSingleRankEPWorks(t *testing.T) {
	c := newMoECluster(t, 1)
	cfg := distConfig(4, 2)
	res := runPipeline(t, PFTForward, c, cfg, 16, PipelineOpts{
		Numeric: true, DropPolicy: DropByCapacityWeight,
	})
	if res[0].RoutedTokens != res[0].RecvTokens {
		t.Fatal("single-rank EP must keep all tokens local")
	}
}

func TestEPCheckPanicsOnIndivisibleExperts(t *testing.T) {
	c := newMoECluster(t, 3)
	cfg := distConfig(8, 2) // 8 % 3 != 0
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		defer func() { recover() }()
		PFTForward(r, g, cfg, 4, nil, SyntheticRouting(tensor.NewRNG(1), 4, 8, 2, 0), nil, PipelineOpts{})
		return fmt.Errorf("expected panic")
	})
	// All ranks panic before any collective, so all report the recover
	// path (nil error) — the run must NOT return the sentinel error.
	if err != nil {
		t.Fatal("epCheck should panic before any collective call")
	}
}
