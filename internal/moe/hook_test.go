package moe

import (
	"fmt"
	"sync"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// TestOnDWReadyFiresOncePerBackward pins the gradient-sync hook contract
// across every backward path: blocking and chunked, PFT and padded, each
// invoke OnDWReady exactly once per backward call, and forward-only runs
// never invoke it.
func TestOnDWReadyFiresOncePerBackward(t *testing.T) {
	const world, s = 4, 12
	cfg := distConfig(8, 2)
	for _, tc := range []struct {
		name   string
		padded bool
		chunks int
	}{
		{"pft_blocking", false, 1},
		{"pft_chunked", false, 2},
		{"padded_blocking", true, 1},
		{"padded_chunked", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newMoECluster(t, world)
			g := c.WorldGroup()
			epr := cfg.NumExperts / world
			var mu sync.Mutex
			fires := map[int]int{}
			err := c.Run(func(r *simrt.Rank) error {
				rng := tensor.NewRNG(uint64(900 + r.ID))
				x := tensor.Randn(rng, 1, s, cfg.HModel)
				routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
				params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
				fwdOpts := PipelineOpts{
					Numeric: true, DropPolicy: DropByCapacityWeight,
					SaveForBackward: true, OverlapChunks: tc.chunks,
					OnDWReady: func() {
						mu.Lock()
						fires[r.ID] -= 100 // poison: forward fired the hook
						mu.Unlock()
					},
				}
				var res LayerResult
				if tc.padded {
					res = PaddedForward(r, g, cfg, s, x, routing, params, fwdOpts)
				} else {
					res = PFTForward(r, g, cfg, s, x, routing, params, fwdOpts)
				}
				dOut := tensor.New(s, cfg.HModel)
				dOut.Fill(1)
				bwdOpts := PipelineOpts{Numeric: true, OverlapChunks: tc.chunks}
				bwdOpts.OnDWReady = func() {
					mu.Lock()
					fires[r.ID]++
					mu.Unlock()
				}
				if tc.padded {
					PaddedBackward(r, g, cfg, res.PaddedState, dOut, params, bwdOpts)
				} else {
					PFTBackward(r, g, cfg, res.State, dOut, params, bwdOpts)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < world; rank++ {
				if fires[rank] != 1 {
					t.Fatalf("rank %d: OnDWReady fired %d times, want exactly 1 (negative means the forward fired it)", rank, fires[rank])
				}
			}
		})
	}
}

// TestOnDWReadySymbolicBackward checks the hook also fires in symbolic
// (timing-only) backward passes, which is how baselines.SimulateStep
// issues its bucketed gradient sync.
func TestOnDWReadySymbolicBackward(t *testing.T) {
	const world, s = 4, 12
	cfg := distConfig(8, 2)
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	var mu sync.Mutex
	fires := 0
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(1300 + r.ID))
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		opts := PipelineOpts{DropPolicy: DropByCapacityWeight, SaveForBackward: true}
		res := PFTForward(r, g, cfg, s, nil, routing, nil, opts)
		bwd := opts
		bwd.OnDWReady = func() {
			mu.Lock()
			fires++
			mu.Unlock()
		}
		PFTBackward(r, g, cfg, res.State, nil, nil, bwd)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fires != world {
		t.Fatal(fmt.Sprintf("symbolic backward fired the hook %d times across %d ranks", fires, world))
	}
}
