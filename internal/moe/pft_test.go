package moe

import (
	"testing"
	"testing/quick"

	"xmoe/internal/tensor"
)

func testConfig() Config {
	return Config{
		NumExperts:     8,
		TopK:           3,
		HModel:         16,
		HFFN:           8,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NumExperts: 0, TopK: 1, HModel: 1, HFFN: 1, CapacityFactor: 1, BytesPerElem: 2},
		{NumExperts: 4, TopK: 5, HModel: 1, HFFN: 1, CapacityFactor: 1, BytesPerElem: 2},
		{NumExperts: 4, TopK: 2, HModel: 0, HFFN: 1, CapacityFactor: 1, BytesPerElem: 2},
		{NumExperts: 4, TopK: 2, HModel: 1, HFFN: 1, CapacityFactor: 0, BytesPerElem: 2},
		{NumExperts: 4, TopK: 2, HModel: 1, HFFN: 1, CapacityFactor: 1, BytesPerElem: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
}

func TestCapacityFormula(t *testing.T) {
	c := Config{NumExperts: 64, TopK: 6, CapacityFactor: 1.25, HModel: 1, HFFN: 1, BytesPerElem: 2}
	// 2048 tokens * 6 / 64 = 192 avg; * 1.25 = 240.
	if got := c.Capacity(2048); got != 240 {
		t.Fatalf("Capacity(2048) = %d, want 240", got)
	}
	// Capacity never falls below 1.
	if got := c.Capacity(1); got < 1 {
		t.Fatalf("Capacity(1) = %d", got)
	}
}

func TestGateNumericRouting(t *testing.T) {
	rng := tensor.NewRNG(11)
	s, h, e, k := 12, 16, 8, 3
	x := tensor.Randn(rng, 1, s, h)
	wg := tensor.Randn(rng, 0.5, h, e)
	r := Gate(x, wg, k)
	if err := r.Validate(e); err != nil {
		t.Fatal(err)
	}
	if r.S != s || r.K() != k {
		t.Fatalf("routing S=%d K=%d", r.S, r.K())
	}
	for tok := 0; tok < s; tok++ {
		// Weights must be descending (top-k order).
		for j := 1; j < k; j++ {
			if r.Weights[tok][j] > r.Weights[tok][j-1] {
				t.Fatalf("token %d weights not descending: %v", tok, r.Weights[tok])
			}
		}
	}
}

func TestSyntheticRoutingValidAndSkewed(t *testing.T) {
	rng := tensor.NewRNG(13)
	s, e, k := 512, 64, 6
	r := SyntheticRouting(rng, s, e, k, 1.0)
	if err := r.Validate(e); err != nil {
		t.Fatal(err)
	}
	load := r.ExpertLoad(e)
	sum, maxLoad := 0, 0
	for _, l := range load {
		sum += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if sum != s*k {
		t.Fatalf("total load %d != S*K %d", sum, s*k)
	}
	avg := float64(sum) / float64(e)
	if float64(maxLoad) < 1.5*avg {
		t.Fatalf("skew=1.0 should produce imbalance: max %d vs avg %.1f", maxLoad, avg)
	}
	// Uniform routing should be much flatter.
	r0 := SyntheticRouting(tensor.NewRNG(13), s, e, k, 0)
	load0 := r0.ExpertLoad(e)
	max0 := 0
	for _, l := range load0 {
		if l > max0 {
			max0 = l
		}
	}
	if max0 >= maxLoad {
		t.Fatalf("uniform max load %d should be below skewed %d", max0, maxLoad)
	}
}

func TestSyntheticRoutingDeterministic(t *testing.T) {
	a := SyntheticRouting(tensor.NewRNG(7), 64, 16, 4, 0.8)
	b := SyntheticRouting(tensor.NewRNG(7), 64, 16, 4, 0.8)
	for tok := range a.TopExperts {
		for j := range a.TopExperts[tok] {
			if a.TopExperts[tok][j] != b.TopExperts[tok][j] {
				t.Fatal("synthetic routing not deterministic")
			}
		}
	}
}

func TestBuildPFTNoDropping(t *testing.T) {
	rng := tensor.NewRNG(17)
	s, e, k := 32, 8, 3
	r := SyntheticRouting(rng, s, e, k, 0.5)
	p := BuildPFT(r, e, 0, DropByCapacityWeight) // unlimited capacity
	if err := p.Validate(s, e, 0); err != nil {
		t.Fatal(err)
	}
	if p.B() != s*k || p.Dropped != 0 {
		t.Fatalf("B=%d dropped=%d, want %d/0", p.B(), p.Dropped, s*k)
	}
}

func TestBuildPFTCapacityDropsLowestWeights(t *testing.T) {
	// 4 tokens all routed to expert 0 (k=1) with distinct weights;
	// capacity 2 must keep the two heaviest.
	r := Routing{
		S:          4,
		TopExperts: [][]int{{0}, {0}, {0}, {0}},
		Weights:    [][]float32{{0.1}, {0.9}, {0.5}, {0.7}},
		Logits:     [][]float32{{1}, {1}, {1}, {1}},
	}
	p := BuildPFT(r, 2, 2, DropByCapacityWeight)
	if p.B() != 2 || p.Dropped != 2 {
		t.Fatalf("B=%d dropped=%d", p.B(), p.Dropped)
	}
	kept := map[int]bool{p.TokenIDs[0]: true, p.TokenIDs[1]: true}
	if !kept[1] || !kept[3] {
		t.Fatalf("kept tokens %v, want {1,3} (weights 0.9, 0.7)", p.TokenIDs)
	}
	// Retained entries stay in token order within the expert segment.
	if p.TokenIDs[0] != 1 || p.TokenIDs[1] != 3 {
		t.Fatalf("segment order %v, want flat order [1 3]", p.TokenIDs)
	}
}

func TestBuildPFTDSMoEPolicyDropsNegativeLogits(t *testing.T) {
	r := Routing{
		S:          3,
		TopExperts: [][]int{{0}, {0}, {1}},
		Weights:    [][]float32{{0.9}, {0.8}, {0.7}},
		Logits:     [][]float32{{-0.5}, {0.5}, {0.5}},
	}
	p := BuildPFT(r, 2, 10, DropNegativeThenPosition)
	if p.B() != 2 || p.Dropped != 1 {
		t.Fatalf("B=%d dropped=%d, want 2/1", p.B(), p.Dropped)
	}
	for _, tid := range p.TokenIDs {
		if tid == 0 {
			t.Fatal("negative-logit token 0 must be dropped")
		}
	}
	// Same routing under the X-MoE policy keeps everything: this is the
	// §5.6 difference that lets X-MoE retain more tokens per batch.
	px := BuildPFT(r, 2, 10, DropByCapacityWeight)
	if px.B() != 3 || px.Dropped != 0 {
		t.Fatalf("X-MoE policy B=%d dropped=%d, want 3/0", px.B(), px.Dropped)
	}
}

func TestBuildPFTDSMoEPositionalCapacity(t *testing.T) {
	r := Routing{
		S:          3,
		TopExperts: [][]int{{0}, {0}, {0}},
		Weights:    [][]float32{{0.1}, {0.2}, {0.9}},
		Logits:     [][]float32{{1}, {1}, {1}},
	}
	p := BuildPFT(r, 1, 2, DropNegativeThenPosition)
	// FCFS keeps tokens 0,1 even though token 2 has the top weight.
	if p.B() != 2 || p.TokenIDs[0] != 0 || p.TokenIDs[1] != 1 {
		t.Fatalf("FCFS kept %v", p.TokenIDs)
	}
}

func TestBuildPFTNilLogitsTreatedPositive(t *testing.T) {
	r := Routing{
		S:          2,
		TopExperts: [][]int{{0}, {1}},
		Weights:    [][]float32{{0.5}, {0.5}},
	}
	p := BuildPFT(r, 2, 5, DropNegativeThenPosition)
	if p.B() != 2 {
		t.Fatalf("nil logits should drop nothing, B=%d", p.B())
	}
}

func TestPFTExpertSegments(t *testing.T) {
	p := &PFT{TokensPerExpert: []int{2, 0, 3}}
	seg := p.ExpertSegments()
	if seg[0] != 0 || seg[1] != 2 || seg[2] != 2 {
		t.Fatalf("segments = %v", seg)
	}
}

func TestPFTERIBytes(t *testing.T) {
	p := &PFT{
		TokenIDs:        make([]int, 10),
		ExpertIDs:       make([]int, 10),
		CombineWeights:  make([]float32, 10),
		TokensPerExpert: make([]int, 4),
	}
	if got := p.ERIBytes(); got != 10*12+4*4 {
		t.Fatalf("ERIBytes = %d", got)
	}
}

func TestBuildPaddedAssignment(t *testing.T) {
	r := Routing{
		S:          4,
		TopExperts: [][]int{{0}, {0}, {0}, {1}},
		Weights:    [][]float32{{0.5}, {0.6}, {0.7}, {0.8}},
		Logits:     [][]float32{{1}, {1}, {1}, {1}},
	}
	pa := BuildPaddedAssignment(r, 2, 2, DropByCapacityWeight)
	if pa.Dropped != 1 { // token 2 overflows expert 0
		t.Fatalf("dropped = %d, want 1", pa.Dropped)
	}
	if pa.SlotToken[0][0] != 0 || pa.SlotToken[0][1] != 1 {
		t.Fatalf("expert 0 slots = %v", pa.SlotToken[0])
	}
	if pa.SlotToken[1][0] != 3 || pa.SlotToken[1][1] != -1 {
		t.Fatalf("expert 1 slots = %v", pa.SlotToken[1])
	}
	if pa.Occupied != 3 {
		t.Fatalf("occupied = %d", pa.Occupied)
	}
	if got := pa.PaddingRatio(); got != 0.25 {
		t.Fatalf("padding ratio = %f, want 0.25", got)
	}
}

func TestPaddedAssignmentNegativePolicy(t *testing.T) {
	r := Routing{
		S:          2,
		TopExperts: [][]int{{0}, {0}},
		Weights:    [][]float32{{0.5}, {0.5}},
		Logits:     [][]float32{{-1}, {1}},
	}
	pa := BuildPaddedAssignment(r, 1, 4, DropNegativeThenPosition)
	if pa.Occupied != 1 || pa.Dropped != 1 {
		t.Fatalf("occupied=%d dropped=%d", pa.Occupied, pa.Dropped)
	}
}

// Property: every PFT built from a valid synthetic routing satisfies its
// structural invariants; retained+dropped covers all S*K assignments; no
// expert exceeds capacity.
func TestQuickPFTInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		s := 1 + rng.Intn(64)
		e := 2 + rng.Intn(16)
		k := 1 + rng.Intn(min(e, 4))
		capTokens := 1 + rng.Intn(s*k)
		policy := DropPolicy(rng.Intn(2))
		r := SyntheticRouting(rng, s, e, k, rng.Float64()*1.5)
		p := BuildPFT(r, e, capTokens, policy)
		if err := p.Validate(s, e, capTokens); err != nil {
			t.Logf("invariant violated: %v", err)
			return false
		}
		if p.B()+p.Dropped != s*k {
			t.Logf("B %d + dropped %d != %d", p.B(), p.Dropped, s*k)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: padded assignment and PFT agree on the retained assignment
// count under the same FCFS-style policy and capacity.
func TestQuickPaddedVsPFTRetention(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		s := 1 + rng.Intn(48)
		e := 2 + rng.Intn(12)
		k := 1 + rng.Intn(min(e, 4))
		capTokens := 1 + rng.Intn(s*k)
		r := SyntheticRouting(rng, s, e, k, 0.7)
		p := BuildPFT(r, e, capTokens, DropNegativeThenPosition)
		pa := BuildPaddedAssignment(r, e, capTokens, DropNegativeThenPosition)
		return p.B() == pa.Occupied && p.Dropped == pa.Dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
