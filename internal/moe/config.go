// Package moe implements the paper's core contribution: the
// expert-specialized Mixture-of-Experts training pipeline, in both the
// conventional zero-padded form used by GShard/DeepSpeed-MoE-style
// frameworks (the baselines) and X-MoE's padding-free form built on the
// PFT (Padding-Free Token buffer) data structure with ERI-arrays
// (paper §4.1, Listing 1).
package moe

import "fmt"

// Config describes one MoE layer's architecture and execution precision.
type Config struct {
	// NumExperts is the total expert count E of the layer.
	NumExperts int
	// TopK is the number of experts activated per token (large for
	// expert-specialized MoEs: 6-8 in DeepSeek configs).
	TopK int
	// HModel is the model (token) hidden dimension H.
	HModel int
	// HFFN is the expert FFN intermediate dimension H_FFN (shrunk by the
	// fine-grained factor m in expert-specialized MoEs).
	HFFN int
	// CapacityFactor is the GShard-style capacity factor c; expert
	// capacity is c * (perceived tokens per expert). The paper uses 1.25.
	CapacityFactor float64
	// BytesPerElem is the activation element size on the wire and in
	// memory (2 for bf16/fp16 training).
	BytesPerElem int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NumExperts <= 0:
		return fmt.Errorf("moe: NumExperts must be positive, got %d", c.NumExperts)
	case c.TopK <= 0 || c.TopK > c.NumExperts:
		return fmt.Errorf("moe: TopK %d outside [1, %d]", c.TopK, c.NumExperts)
	case c.HModel <= 0 || c.HFFN <= 0:
		return fmt.Errorf("moe: non-positive hidden dims H=%d HFFN=%d", c.HModel, c.HFFN)
	case c.CapacityFactor <= 0:
		return fmt.Errorf("moe: CapacityFactor must be positive, got %f", c.CapacityFactor)
	case c.BytesPerElem <= 0:
		return fmt.Errorf("moe: BytesPerElem must be positive, got %d", c.BytesPerElem)
	}
	return nil
}

// Capacity returns the per-expert token capacity for s local tokens:
// ceil(c * s * k / E), the "1.25x average perceived tokens per-expert"
// used throughout the paper's evaluation (§5.1).
func (c Config) Capacity(s int) int {
	avg := float64(s) * float64(c.TopK) / float64(c.NumExperts)
	cap := int(c.CapacityFactor*avg + 0.999999)
	if cap < 1 {
		cap = 1
	}
	return cap
}
