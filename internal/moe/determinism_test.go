package moe

import (
	"sync"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// layerPass runs one numeric PFT forward+backward at a fixed seed on a
// 4-rank cluster and returns, per rank, the output, dX, and the local
// weight gradients.
type layerPass struct {
	out, dx  *tensor.Tensor
	dw1, dw2 []*tensor.Tensor
	dcw      []float32
}

func runFixedSeedLayer(t *testing.T, disablePools bool, iters int) map[int]layerPass {
	t.Helper()
	const world, s = 4, 32
	cfg := distConfig(8, 3)
	c := simrt.NewCluster(topology.Frontier(), world, 99)
	c.Net.DisableCongestion = true
	c.DisablePools = disablePools
	g := c.WorldGroup()
	epr := cfg.NumExperts / world

	results := make(map[int]layerPass)
	var mu sync.Mutex
	for it := 0; it < iters; it++ {
		err := c.Run(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(uint64(3100 + r.ID))
			x := tensor.Randn(rng, 1, s, cfg.HModel)
			routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
			params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
			res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
				Numeric: true, DropPolicy: DropByCapacityWeight, SaveForBackward: true,
			})
			dOut := tensor.New(s, cfg.HModel)
			dOut.Fill(0.5)
			bwd := PFTBackward(r, g, cfg, res.State, dOut, params, PipelineOpts{Numeric: true})
			mu.Lock()
			results[r.ID] = layerPass{
				out: res.Output, dx: bwd.DX,
				dw1: bwd.DW1, dw2: bwd.DW2, dcw: bwd.DCombineWeights,
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return results
}

func bitEqual(t *testing.T, name string, a, b *tensor.Tensor) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: size %d vs %d", name, a.Len(), b.Len())
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, a.Data[i], b.Data[i])
		}
	}
}

// TestPooledLayerBitIdenticalToFresh is the end-to-end determinism
// regression test: a full numeric PFT forward+backward with the per-rank
// tensor arenas enabled must be bit-identical to the allocate-fresh
// execution, including in steady state (third iteration, when every
// buffer is a recycled arena buffer).
func TestPooledLayerBitIdenticalToFresh(t *testing.T) {
	fresh := runFixedSeedLayer(t, true, 1)
	pooled := runFixedSeedLayer(t, false, 3)
	for rank, f := range fresh {
		p := pooled[rank]
		bitEqual(t, "output", f.out, p.out)
		bitEqual(t, "dX", f.dx, p.dx)
		for e := range f.dw1 {
			bitEqual(t, "dW1", f.dw1[e], p.dw1[e])
			bitEqual(t, "dW2", f.dw2[e], p.dw2[e])
		}
		for i := range f.dcw {
			if f.dcw[i] != p.dcw[i] {
				t.Fatalf("rank %d dCombineWeights mismatch at %d", rank, i)
			}
		}
	}
}

// TestPooledPaddedForwardBitIdenticalToFresh pins the padded pipeline's
// pooled path against allocate-fresh execution.
func TestPooledPaddedForwardBitIdenticalToFresh(t *testing.T) {
	const world, s = 4, 32
	cfg := distConfig(8, 3)
	run := func(disablePools bool, iters int) map[int]*tensor.Tensor {
		c := simrt.NewCluster(topology.Frontier(), world, 99)
		c.Net.DisableCongestion = true
		c.DisablePools = disablePools
		g := c.WorldGroup()
		outs := make(map[int]*tensor.Tensor)
		var mu sync.Mutex
		for it := 0; it < iters; it++ {
			err := c.Run(func(r *simrt.Rank) error {
				rng := tensor.NewRNG(uint64(4700 + r.ID))
				x := tensor.Randn(rng, 1, s, cfg.HModel)
				routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
				params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
				res := PaddedForward(r, g, cfg, s, x, routing, params, PipelineOpts{
					Numeric: true, DropPolicy: DropNegativeThenPosition,
				})
				mu.Lock()
				outs[r.ID] = res.Output
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return outs
	}
	fresh := run(true, 1)
	pooled := run(false, 3)
	for rank := range fresh {
		bitEqual(t, "padded output", fresh[rank], pooled[rank])
	}
}
