package moe

import (
	"fmt"

	"xmoe/internal/kernels"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Trace stage names shared by both pipelines; the Fig. 11 layer-breakdown
// experiment aggregates these.
const (
	StageGate        = "gate"
	StageDispatch    = "dispatch" // buffer dispatch: gather kernel or mask einsum
	StageDispatchA2A = "a2a_dispatch"
	StageExperts     = "experts"
	StageCombineA2A  = "a2a_combine"
	StageCombine     = "combine" // buffer combine: scatter kernel or mask einsum
	StageOthers      = "others"  // reorders, metadata exchange
)

// KernelProfile selects the implementation quality of the non-GEMM stages,
// distinguishing the frameworks the paper compares.
type KernelProfile int

const (
	// KernelsTriton is X-MoE's portable kernel suite (§4.1.2).
	KernelsTriton KernelProfile = iota
	// KernelsFallback is the PyTorch-level dense mask pipeline used by
	// DeepSpeed-MoE / DeepSpeed-TED / GShard-style frameworks.
	KernelsFallback
	// KernelsVendor is Tutel's tuned (but CUDA-centric) kernel path,
	// which runs on ROCm via slower ports.
	KernelsVendor
)

// PipelineOpts configures one MoE layer execution.
type PipelineOpts struct {
	// Numeric executes real float math; otherwise the pipeline is
	// metadata-only (symbolic) and charges time/memory without payloads.
	Numeric bool
	// DropPolicy selects the token-dropping semantics.
	DropPolicy DropPolicy
	// Kernels selects the gating/dispatch/combine kernel quality.
	Kernels KernelProfile
	// CombineBytes overrides the element size of the combine-side
	// buffers (Tutel forces float32 A_combine on AMD GPUs, Table 4);
	// zero means Config.BytesPerElem.
	CombineBytes int
	// RetainActivations keeps all activation buffers allocated after the
	// forward pass (training semantics) so peak-memory measurements see
	// them; otherwise transient buffers are freed as the pipeline
	// proceeds.
	RetainActivations bool
	// SaveForBackward captures the intermediate state needed by
	// PFTBackward / PaddedBackward: in numeric mode the forward
	// activations (with RetainActivations semantics for the captured
	// tensors), in symbolic mode the exchange geometry only, so a
	// timing-only backward pass can mirror the forward volumes.
	SaveForBackward bool
	// OverlapChunks selects the chunked comm/compute-overlap execution of
	// the dispatch -> experts -> combine middle section: the routed
	// tokens are split into OverlapChunks per-expert chunks, chunk i+1's
	// dispatch all-to-all overlaps chunk i's expert GEMMs on the
	// communication stream, and chunk i's combine all-to-all overlaps
	// chunk i+1's GEMMs (FastMoE smart scheduling / Megatron Core MoE
	// overlap). Values <= 1 select the blocking pipeline. Numeric output
	// is bit-identical to the blocking pipeline for any chunk count (the
	// expert FFN is row-independent and chunking never reorders the
	// per-row arithmetic). Composes with SaveForBackward: the overlapped
	// forward scatters its per-chunk intermediates into the same
	// full-layout buffers the blocking forward saves, and the backward
	// passes accept the same chunk count to overlap their mirrored
	// all-to-alls (see PFTBackward).
	OverlapChunks int
	// CapacityByExpert, when non-nil, overrides the uniform
	// Config.Capacity with a per-expert capacity vector (one entry per
	// global expert, each >= 1) during PFT construction — the
	// straggler-aware rebalance computed by RebalanceCapacity. The PFT
	// and RBD transports carry the resulting uneven segments natively;
	// the padded pipeline rejects it (its even all-to-all requires one
	// uniform capacity).
	CapacityByExpert []int
	// OnDWReady, when set, is invoked exactly once per backward pass
	// (PFTBackward / PaddedBackward, blocking or chunked) at the point
	// where the layer's weight gradients are complete and the backward's
	// last blocking collective has retired — the hook point for issuing
	// bucketed asynchronous gradient synchronisation (internal/zero) so
	// the sync overlaps the remaining backward compute instead of
	// serialising after it. Forward-only calls never invoke it.
	OnDWReady func()
}

// maxOverlapChunks bounds the chunk count: beyond this, per-chunk launch
// and message latencies dwarf any conceivable transfer left to hide.
const maxOverlapChunks = 4096

// OptionError is the typed rejection every option validator returns: Opt
// names the offending PipelineOpts/DistConfig field, Detail explains the
// rejected combination. Callers unwrap it with errors.As to distinguish
// misconfiguration from other failures instead of string-matching (the
// old silent fallback to the flat transport is gone).
type OptionError struct {
	// Opt is the offending option's field name (e.g. "OverlapChunks",
	// "CombineBytes", "Transport").
	Opt string
	// Detail is the human-readable rejection.
	Detail string
}

func (e *OptionError) Error() string { return e.Detail }

// Check validates the option combination, returning a typed *OptionError
// for unsupported or nonsensical settings. The pipelines call it on entry
// (panicking with the error, as misconfiguration inside an SPMD body
// cannot be returned); CLIs call it directly on flag-derived options so
// the user sees the message instead of a rank panic.
func (o PipelineOpts) Check() error {
	if o.OverlapChunks < 0 {
		return &OptionError{Opt: "OverlapChunks", Detail: fmt.Sprintf("moe: OverlapChunks must be >= 0, got %d", o.OverlapChunks)}
	}
	if o.OverlapChunks > maxOverlapChunks {
		return &OptionError{Opt: "OverlapChunks", Detail: fmt.Sprintf("moe: OverlapChunks %d exceeds the supported maximum %d", o.OverlapChunks, maxOverlapChunks)}
	}
	if o.CombineBytes < 0 {
		return &OptionError{Opt: "CombineBytes", Detail: fmt.Sprintf("moe: CombineBytes must be >= 0, got %d", o.CombineBytes)}
	}
	if o.Kernels < KernelsTriton || o.Kernels > KernelsVendor {
		return &OptionError{Opt: "Kernels", Detail: fmt.Sprintf("moe: unknown kernel profile %d", o.Kernels)}
	}
	if o.DropPolicy < DropByCapacityWeight || o.DropPolicy > DropNegativeThenPosition {
		return &OptionError{Opt: "DropPolicy", Detail: fmt.Sprintf("moe: unknown drop policy %d", o.DropPolicy)}
	}
	for e, c := range o.CapacityByExpert {
		if c < 1 {
			return &OptionError{Opt: "CapacityByExpert",
				Detail: fmt.Sprintf("moe: CapacityByExpert[%d] = %d; every per-expert capacity must be >= 1", e, c)}
		}
	}
	return nil
}

// mustCheck panics with the descriptive Check error; pipeline entry
// points run inside SPMD rank bodies and cannot return errors.
func (o PipelineOpts) mustCheck() {
	if err := o.Check(); err != nil {
		panic(err.Error())
	}
}

func (o PipelineOpts) combineBytes(cfg Config) int {
	if o.CombineBytes > 0 {
		return o.CombineBytes
	}
	return cfg.BytesPerElem
}

// chunks returns the effective chunk count (1 = blocking).
func (o PipelineOpts) chunks() int {
	if o.OverlapChunks > 1 {
		return o.OverlapChunks
	}
	return 1
}

// ExpertParams holds the weights of this rank's local experts: W1[e] is
// [H, HFFN] and W2[e] is [HFFN, H]. Nil in symbolic mode.
type ExpertParams struct {
	W1, W2 []*tensor.Tensor
}

// NewExpertParams initialises numLocal experts' weights deterministically.
func NewExpertParams(rng *tensor.RNG, numLocal, h, f int) *ExpertParams {
	p := &ExpertParams{W1: make([]*tensor.Tensor, numLocal), W2: make([]*tensor.Tensor, numLocal)}
	std1 := float32(0.02)
	for e := 0; e < numLocal; e++ {
		p.W1[e] = tensor.Randn(rng, std1, h, f)
		p.W2[e] = tensor.Randn(rng, std1, f, h)
	}
	return p
}

// LayerResult is the outcome of one distributed MoE layer forward pass.
type LayerResult struct {
	// Output is the [S, H] layer output (nil in symbolic mode).
	Output *tensor.Tensor
	// PFT is the routing buffer used (PFT pipeline only).
	PFT *PFT
	// RoutedTokens is the number of retained (token, expert) rows sent.
	RoutedTokens int
	// RecvTokens is the number of rows this rank's experts processed.
	RecvTokens int
	// Dropped is the number of assignments removed by the drop policy.
	Dropped int
	// State carries the saved intermediates for PFTBackward (PFT
	// pipeline, only when opts.SaveForBackward).
	State *PFTFwdState
	// PaddedState carries the saved intermediates for PaddedBackward
	// (padded pipeline, only when opts.SaveForBackward).
	PaddedState *PaddedFwdState
}

// PFTFwdState is the per-rank forward state the distributed backward pass
// consumes: the PFT, the exchange segmentation, and the expert-FFN
// intermediates. In symbolic mode the tensors are nil and only the
// geometry is populated, which is all the timing-only backward needs.
type PFTFwdState struct {
	S          int
	PFT        *PFT
	RecvCounts [][]int // [src][localExpert]
	BlockOff   [][]int // [localExpert][src] expert-major row offsets
	RowsPerLE  []int
	ExpertIn   *tensor.Tensor // [BExp, H] expert-major
	HidPre     *tensor.Tensor // [BExp, F] pre-activation
	HidAct     *tensor.Tensor // [BExp, F] post-GeLU
	CombineIn  *tensor.Tensor // [B, H] returned expert outputs, PFT order
}

// bExp returns the number of expert-input rows this rank processed.
func (st *PFTFwdState) bExp() int {
	n := 0
	for _, c := range st.RowsPerLE {
		n += c
	}
	return n
}

// PaddedFwdState is the padded pipeline's saved forward state for
// PaddedBackward: the dispatch plan plus the expert-FFN intermediates in
// the expert-major padded layout ((le*P + src)*C + slot row order). In
// symbolic mode the tensors are nil; the even geometry is fully
// determined by the config and group size.
type PaddedFwdState struct {
	S  int
	PA *PaddedAssignment
	// ExpertIn, HidPre, HidAct are the [EPR*P*C, H/F] expert-major
	// buffers of the padded expert computation.
	ExpertIn *tensor.Tensor
	HidPre   *tensor.Tensor
	HidAct   *tensor.Tensor
	// CombineFull is the [E*C, H] returned padded buffer in
	// global-expert slot order (the combine einsum's input).
	CombineFull *tensor.Tensor
}

// RoutedPFT builds the PFT a transport dispatches: the uniform
// Config.Capacity unless opts.CapacityByExpert rebalances it per expert.
// Shared by the PFT pipeline and the RBD dispatcher, so both transports
// see identical routing decisions under mitigation.
func RoutedPFT(routing Routing, cfg Config, s int, opts PipelineOpts) *PFT {
	if opts.CapacityByExpert != nil {
		return BuildPFTCaps(routing, cfg.NumExperts, opts.CapacityByExpert, opts.DropPolicy)
	}
	return BuildPFT(routing, cfg.NumExperts, cfg.Capacity(s), opts.DropPolicy)
}

// epCheck validates the expert-parallel layout and returns experts/rank.
func epCheck(cfg Config, g *simrt.Group) int {
	if cfg.NumExperts%g.Size() != 0 {
		panic(fmt.Sprintf("moe: %d experts not divisible by EP size %d", cfg.NumExperts, g.Size()))
	}
	return cfg.NumExperts / g.Size()
}

// PFTForward executes X-MoE's padding-free MoE layer (paper Listing 1) on
// rank r within EP group g: gating, PFT construction, gather-kernel
// dispatch, uneven all-to-all, expert-major reorder, sequential GEMM
// experts, reverse all-to-all, and the weight-scaling scatter combine. s
// is the local token count; x is the [s, H] input (nil in symbolic mode);
// routing is the gate decision for the local tokens.
func PFTForward(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult {
	opts.mustCheck()
	epr := epCheck(cfg, g)
	p := g.Size()
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	combElem := int64(opts.combineBytes(cfg))
	mem := &r.Dev().Mem
	comp := r.C.Comp
	// Rank-local intermediates come from the per-rank arena so the steady
	// state allocates nothing; buffers whose data crosses the all-to-alls
	// (dispIn, the send-back staging) stay allocate-fresh because peers
	// may still read them after the rendezvous.
	pool := r.Pool()

	// --- Gate + PFT construction ---------------------------------------
	// Router GEMM [s,H]x[H,E], softmax/top-k, then the sort-based PFT
	// construction (Triton-class passes over the flattened assignments).
	gateTime := comp.GEMM(s, h, cfg.NumExperts) +
		comp.MemBoundN(perfmodel.ClassTriton, 6,
			int64(s*cfg.NumExperts)*elem+int64(s*cfg.TopK)*24)
	r.Compute(StageGate, gateTime)
	pft := RoutedPFT(routing, cfg, s, opts)
	b := pft.B()
	mem.Alloc("eri", pft.ERIBytes())

	// --- Buffer dispatch (gather kernel) --------------------------------
	r.Compute(StageDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	var dispIn *tensor.Tensor
	if opts.Numeric {
		dispIn = kernels.Gather(x, pft.TokenIDs)
	}
	mem.Alloc("dispatch_in", int64(b)*int64(h)*elem)

	// Chunked comm/compute-overlap execution of the middle section.
	if opts.chunks() > 1 {
		return pftForwardOverlap(r, g, cfg, s, pft, dispIn, params, opts)
	}

	// --- Uneven all-to-all (dispatch) ------------------------------------
	// Exchange per-destination token counts, then the token payload.
	segStart := pft.ExpertSegments()
	send := make([]simrt.Part, p)
	countsFlat := make([]int, p*epr)
	for dst := 0; dst < p; dst++ {
		lo := segStart[dst*epr]
		hi := b
		if dst < p-1 {
			hi = segStart[(dst+1)*epr]
		}
		counts := countsFlat[dst*epr : (dst+1)*epr]
		for le := 0; le < epr; le++ {
			counts[le] = pft.TokensPerExpert[dst*epr+le]
		}
		part := simrt.Part{Meta: counts, Bytes: int64(hi-lo)*int64(h)*elem + int64(epr)*8}
		if opts.Numeric && hi > lo {
			part.Data = dispIn.Data[lo*h : hi*h]
		}
		send[dst] = part
	}
	recv := r.AlltoAllV(g, StageDispatchA2A, send)

	// Received layout: src-major, each src's rows ordered by local expert.
	recvCounts := make([][]int, p) // [src][localExpert]
	bExp := 0
	for src, part := range recv {
		recvCounts[src] = part.Meta.([]int)
		for _, c := range recvCounts[src] {
			bExp += c
		}
	}
	mem.Alloc("A_dispatch", int64(bExp)*int64(h)*elem)

	// --- Expert-major reorder (sequential GEMM input prep) ---------------
	// The paper notes this data transformation as the small expert-stage
	// overhead of the sequential GEMM (§5.4.1).
	r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(h)*elem))
	rowsPerLE := make([]int, epr)
	for _, counts := range recvCounts {
		for le, c := range counts {
			rowsPerLE[le] += c
		}
	}
	// blockOff[le][src] = row offset of block (src, le) in expert-major
	// layout (rows are views into one flat backing array).
	blockOff := make([][]int, epr)
	{
		blockOffFlat := make([]int, epr*p)
		off := 0
		for le := 0; le < epr; le++ {
			blockOff[le] = blockOffFlat[le*p : (le+1)*p]
			for src := 0; src < p; src++ {
				blockOff[le][src] = off
				off += recvCounts[src][le]
			}
		}
	}
	var expertIn *tensor.Tensor
	if opts.Numeric {
		expertIn = pool.Get(bExp, h)
		for src := 0; src < p; src++ {
			data := recv[src].Data
			pos := 0
			for le := 0; le < epr; le++ {
				c := recvCounts[src][le]
				if c == 0 {
					continue
				}
				copy(expertIn.Data[blockOff[le][src]*h:(blockOff[le][src]+c)*h],
					data[pos*h:(pos+c)*h])
				pos += c
			}
		}
	}

	// --- Sequential GEMM experts ----------------------------------------
	expertTime := comp.SequentialGEMM(rowsPerLE, h, f) +
		comp.SequentialGEMM(rowsPerLE, f, h) +
		comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(f)*elem) // activation
	r.Compute(StageExperts, expertTime)
	mem.Alloc("A0_interm", int64(bExp)*int64(f)*elem)
	mem.Alloc("A1_interm", int64(bExp)*int64(f)*elem)
	var expertOut *tensor.Tensor
	var hidPre, hidAct *tensor.Tensor
	if opts.Numeric {
		hidPre = pool.Get(bExp, f)
		kernels.SequentialGEMMInto(hidPre, expertIn, rowsPerLE, params.W1)
		hidAct = hidPre
		if opts.SaveForBackward {
			hidAct = pool.Get(bExp, f)
			hidAct.Copy(hidPre)
		}
		tensor.GeLU(hidAct)
		expertOut = pool.Get(bExp, h)
		kernels.SequentialGEMMInto(expertOut, hidAct, rowsPerLE, params.W2)
	}

	// --- Reverse reorder to src-major -----------------------------------
	r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(h)*elem))
	sendBack := make([]simrt.Part, p)
	{
		for src := 0; src < p; src++ {
			rows := 0
			for _, c := range recvCounts[src] {
				rows += c
			}
			part := simrt.Part{Bytes: int64(rows) * int64(h) * combElem}
			if opts.Numeric {
				buf := make([]float32, rows*h)
				pos := 0
				for le := 0; le < epr; le++ {
					c := recvCounts[src][le]
					if c == 0 {
						continue
					}
					copy(buf[pos*h:(pos+c)*h],
						expertOut.Data[blockOff[le][src]*h:(blockOff[le][src]+c)*h])
					pos += c
				}
				part.Data = buf
			}
			sendBack[src] = part
		}
	}

	// --- Uneven all-to-all (combine) -------------------------------------
	if opts.Numeric {
		// expertOut is fully staged into the send-back buffers; recycle
		// it (and the activation intermediates when not saved) before the
		// collective so the next layer reuses the memory.
		pool.Put(expertOut)
		if !opts.SaveForBackward {
			pool.PutAll(expertIn, hidPre)
		}
	}
	back := r.AlltoAllV(g, StageCombineA2A, sendBack)
	mem.Alloc("A_combine", int64(b)*int64(h)*combElem)
	var combineIn *tensor.Tensor
	if opts.Numeric {
		combineIn = pool.Get(b, h)
		pos := 0
		for dst := 0; dst < p; dst++ {
			d := back[dst].Data
			copy(combineIn.Data[pos:pos+len(d)], d)
			pos += len(d)
		}
	}

	// --- Scatter combine --------------------------------------------------
	r.Compute(StageCombine, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*combElem))
	var out *tensor.Tensor
	if opts.Numeric {
		out = kernels.ScatterCombine(combineIn, pft.TokenIDs, pft.CombineWeights, s)
		if !opts.SaveForBackward {
			pool.Put(combineIn)
		}
	}
	mem.Alloc("output", int64(s)*int64(h)*elem)

	if !opts.RetainActivations {
		mem.Free("dispatch_in", int64(b)*int64(h)*elem)
		mem.Free("A_dispatch", int64(bExp)*int64(h)*elem)
		mem.Free("A0_interm", int64(bExp)*int64(f)*elem)
		mem.Free("A1_interm", int64(bExp)*int64(f)*elem)
		mem.Free("A_combine", int64(b)*int64(h)*combElem)
		mem.Free("eri", pft.ERIBytes())
	}

	res := LayerResult{
		Output:       out,
		PFT:          pft,
		RoutedTokens: b,
		RecvTokens:   bExp,
		Dropped:      pft.Dropped,
	}
	if opts.SaveForBackward {
		res.State = &PFTFwdState{
			S:          s,
			PFT:        pft,
			RecvCounts: recvCounts,
			BlockOff:   blockOff,
			RowsPerLE:  rowsPerLE,
			ExpertIn:   expertIn,
			HidPre:     hidPre,
			HidAct:     hidAct,
			CombineIn:  combineIn,
		}
	}
	return res
}

// PaddedForward executes the conventional zero-padded MoE layer used by
// the DeepSpeed-MoE / DeepSpeed-TED / Tutel baselines (paper §3.1,
// Appendix B.1): dispatch-mask construction, einsum dispatch into
// fixed-capacity [E, C, H] buffers, an even all-to-all that carries the
// padding, batched padded expert GEMMs, the reverse all-to-all, and the
// mask-einsum combine.
func PaddedForward(r *simrt.Rank, g *simrt.Group, cfg Config, s int, x *tensor.Tensor, routing Routing, params *ExpertParams, opts PipelineOpts) LayerResult {
	opts.mustCheck()
	if opts.CapacityByExpert != nil {
		panic((&OptionError{Opt: "CapacityByExpert",
			Detail: "moe: the padded pipeline's even all-to-all requires uniform expert capacity; per-expert rebalance needs the pft or rbd transport"}).Error())
	}
	epr := epCheck(cfg, g)
	p := g.Size()
	h, f, e := cfg.HModel, cfg.HFFN, cfg.NumExperts
	capTokens := cfg.Capacity(s)
	elem := int64(cfg.BytesPerElem)
	combElem := int64(opts.combineBytes(cfg))
	mem := &r.Dev().Mem
	comp := r.C.Comp
	pool := r.Pool()

	// Two baseline flavours share the padded buffers but differ in how
	// they are produced: DeepSpeed-style frameworks build a dense
	// [S, E, C] mask with a chain of fallback ops and dispatch/combine
	// through mask einsums ("SEC,SH->ECH"); Tutel's tuned (vendor-class)
	// kernels use a sparse cursor-based dispatcher, skipping the dense
	// mask but still writing full capacity-padded buffers.
	vendor := opts.Kernels == KernelsVendor
	kernelClass := perfmodel.ClassFallback
	launches := 12
	maskBytes := int64(s) * int64(e) * int64(capTokens) * (elem + 4)
	intermBytes := int64(s*cfg.TopK*e) * 4
	if vendor {
		kernelClass = perfmodel.ClassVendor
		launches = 6
		maskBytes = 0
		intermBytes = int64(s*cfg.TopK) * 16
	}

	// --- Gate + dispatch-plan construction --------------------------------
	gateTime := comp.GEMM(s, h, e) +
		comp.MemBoundN(kernelClass, launches, maskBytes+intermBytes)
	r.Compute(StageGate, gateTime)
	pa := BuildPaddedAssignment(routing, e, capTokens, opts.DropPolicy)
	mem.Alloc("mask", maskBytes)
	mem.Alloc("mask_interm", intermBytes)

	// --- Buffer dispatch ----------------------------------------------------
	bufBytes := int64(e) * int64(capTokens) * int64(h) * elem
	if vendor {
		r.Compute(StageDispatch, comp.MemBound(perfmodel.ClassVendor, 2*bufBytes))
	} else {
		r.Compute(StageDispatch, comp.MaskEinsum(s, e, capTokens, h))
	}
	var dispBuf *tensor.Tensor
	if opts.Numeric {
		dispBuf = kernels.PaddedDispatch(x, pa.SlotToken, capTokens)
	}
	mem.Alloc("disp_buffer", bufBytes)

	// Chunked comm/compute-overlap execution of the middle section.
	if opts.chunks() > 1 {
		return paddedForwardOverlap(r, g, cfg, s, pa, dispBuf, params, opts, kernelClass, maskBytes, intermBytes)
	}

	// --- Even all-to-all (dispatch) ---------------------------------------
	// Every pair exchanges the full padded slice for the destination's
	// experts: EPR * C * H regardless of real occupancy.
	pairBytes := int64(epr) * int64(capTokens) * int64(h) * elem
	send := make([]simrt.Part, p)
	for dst := 0; dst < p; dst++ {
		part := simrt.Part{Bytes: pairBytes}
		if opts.Numeric {
			lo := dst * epr * capTokens * h
			hi := (dst + 1) * epr * capTokens * h
			part.Data = dispBuf.Data[lo:hi]
		}
		send[dst] = part
	}
	recv := r.AlltoAllV(g, StageDispatchA2A, send)
	mem.Alloc("A_dispatch", int64(p)*pairBytes)

	// --- Expert compute on padded buffers ---------------------------------
	// Reshape [P, EPR, C, H] -> [EPR, P*C, H] (a permute the frameworks
	// pay as a fallback op), then batched GEMMs over all padded rows.
	r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p)*pairBytes))
	rowsPerExpert := p * capTokens
	expertTime := comp.BatchedPaddedGEMM(epr, rowsPerExpert, h, f) +
		comp.BatchedPaddedGEMM(epr, rowsPerExpert, f, h) +
		comp.MemBound(perfmodel.ClassVendor, 2*int64(epr*rowsPerExpert)*int64(f)*elem)
	r.Compute(StageExperts, expertTime)
	mem.Alloc("A0_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
	mem.Alloc("A1_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
	var expertOut *tensor.Tensor
	var expertIn, hidPre, hidAct *tensor.Tensor
	if opts.Numeric {
		// Expert-major view: rows of local expert le from all sources.
		expertIn = pool.Get(epr*rowsPerExpert, h)
		for src := 0; src < p; src++ {
			data := recv[src].Data
			for le := 0; le < epr; le++ {
				srcBlock := data[le*capTokens*h : (le+1)*capTokens*h]
				dstOff := (le*p + src) * capTokens * h
				copy(expertIn.Data[dstOff:dstOff+capTokens*h], srcBlock)
			}
		}
		rows := make([]int, epr)
		for i := range rows {
			rows[i] = rowsPerExpert
		}
		hidPre = pool.Get(epr*rowsPerExpert, f)
		kernels.SequentialGEMMInto(hidPre, expertIn, rows, params.W1)
		hidAct = hidPre
		if opts.SaveForBackward {
			hidAct = pool.Get(epr*rowsPerExpert, f)
			hidAct.Copy(hidPre)
		}
		tensor.GeLU(hidAct)
		expertOut = pool.Get(epr*rowsPerExpert, h)
		kernels.SequentialGEMMInto(expertOut, hidAct, rows, params.W2)
		if !opts.SaveForBackward {
			pool.PutAll(expertIn, hidPre)
		}
	}

	// --- Even all-to-all (combine) -----------------------------------------
	// The wire stays half precision; Tutel's fp32 quirk applies to the
	// materialised A_combine buffer (Table 4), not the exchange.
	r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p)*pairBytes))
	sendBack := make([]simrt.Part, p)
	for dst := 0; dst < p; dst++ {
		part := simrt.Part{Bytes: int64(epr) * int64(capTokens) * int64(h) * elem}
		if opts.Numeric {
			buf := make([]float32, epr*capTokens*h)
			for le := 0; le < epr; le++ {
				srcOff := (le*p + dst) * capTokens * h
				copy(buf[le*capTokens*h:(le+1)*capTokens*h],
					expertOut.Data[srcOff:srcOff+capTokens*h])
			}
			part.Data = buf
		}
		sendBack[dst] = part
	}
	back := r.AlltoAllV(g, StageCombineA2A, sendBack)
	mem.Alloc("A_combine", int64(e)*int64(capTokens)*int64(h)*combElem)

	// --- Buffer combine -------------------------------------------------------
	if vendor {
		r.Compute(StageCombine, comp.MemBound(perfmodel.ClassVendor,
			2*int64(e)*int64(capTokens)*int64(h)*combElem))
	} else {
		r.Compute(StageCombine, comp.MaskEinsum(s, e, capTokens, h))
	}
	var out *tensor.Tensor
	var full *tensor.Tensor
	if opts.Numeric {
		// expertOut is fully staged into the send-back buffers.
		pool.Put(expertOut)
		full = pool.Get(e*capTokens, h)
		for dst := 0; dst < p; dst++ {
			d := back[dst].Data
			copy(full.Data[dst*epr*capTokens*h:(dst*epr+epr)*capTokens*h], d)
		}
		out = kernels.PaddedCombine(full.Reshape(e, capTokens, h), pa.SlotToken, pa.SlotWeight, capTokens, s)
		if !opts.SaveForBackward {
			pool.Put(full)
		}
	}
	mem.Alloc("output", int64(s)*int64(h)*elem)

	if !opts.RetainActivations {
		mem.Free("mask", maskBytes)
		mem.Free("mask_interm", intermBytes)
		mem.Free("disp_buffer", int64(e)*int64(capTokens)*int64(h)*elem)
		mem.Free("A_dispatch", int64(p)*pairBytes)
		mem.Free("A0_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
		mem.Free("A1_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
		mem.Free("A_combine", int64(e)*int64(capTokens)*int64(h)*combElem)
	}

	res := LayerResult{
		Output:       out,
		RoutedTokens: pa.Occupied,
		RecvTokens:   epr * rowsPerExpert,
		Dropped:      pa.Dropped,
	}
	if opts.SaveForBackward {
		res.PaddedState = &PaddedFwdState{
			S:           s,
			PA:          pa,
			ExpertIn:    expertIn,
			HidPre:      hidPre,
			HidAct:      hidAct,
			CombineFull: full,
		}
	}
	return res
}
