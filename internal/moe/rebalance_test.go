package moe

import (
	"errors"
	"strings"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

func TestRebalanceCapacityRoutesUniformWhenNoSignal(t *testing.T) {
	cfg := distConfig(8, 3)
	s := 32
	cases := []struct {
		name  string
		times []float64
		bound float64
		world int
	}{
		{"bound off", []float64{1, 2, 1, 1}, 0, 4},
		{"no observations", nil, 0.5, 4},
		{"wrong world", []float64{1, 2}, 0.5, 4},
		{"non-positive time", []float64{1, 0, 1, 1}, 0.5, 4},
		{"all equal", []float64{2, 2, 2, 2}, 0.5, 4},
		{"indivisible experts", []float64{1, 2, 1}, 0.5, 3},
	}
	for _, c := range cases {
		if caps := RebalanceCapacity(cfg, s, c.world, c.times, c.bound); caps != nil {
			t.Errorf("%s: got caps %v, want nil (uniform routing)", c.name, caps)
		}
	}
}

func TestRebalanceCapacityShiftsAndClamps(t *testing.T) {
	cfg := distConfig(8, 3)
	s, world, bound := 32, 4, 0.5
	base := cfg.Capacity(s)
	// Rank 0 is a 100x straggler: its relative speed clamps at 1-bound
	// and the fast ranks clamp at 1+bound.
	caps := RebalanceCapacity(cfg, s, world, []float64{100, 1, 1, 1}, bound)
	if caps == nil {
		t.Fatal("a skewed observation must produce a rebalance")
	}
	if len(caps) != cfg.NumExperts {
		t.Fatalf("got %d caps, want one per expert (%d)", len(caps), cfg.NumExperts)
	}
	epr := cfg.NumExperts / world
	for e, c := range caps {
		rank := e / epr
		lo, hi := int(float64(base)*(1-bound)), int(float64(base)*(1+bound))+1
		if c < 1 || c < lo-1 || c > hi {
			t.Fatalf("expert %d (rank %d): cap %d outside clamp [%d,%d]", e, rank, c, lo, hi)
		}
		if rank == 0 && c >= base {
			t.Fatalf("straggler rank 0 expert %d: cap %d must shrink below uniform %d", e, c, base)
		}
		if rank > 0 && c <= base {
			t.Fatalf("fast rank %d expert %d: cap %d must grow above uniform %d", rank, e, c, base)
		}
		if caps[(e/epr)*epr] != c {
			t.Fatalf("experts of one rank must share a cap: %v", caps)
		}
	}
	// A mild skew inside the clamp reproduces the exact inverse-time
	// weighting: twice-as-slow gets half the relative speed.
	caps = RebalanceCapacity(cfg, s, 2, []float64{2, 1}, 1)
	// invSum = 1.5; rel0 = 0.5*2/1.5 = 2/3, rel1 = 4/3.
	if got, want := caps[0], int(float64(base)*2/3+0.5); got != want {
		t.Fatalf("slow rank cap %d, want %d", got, want)
	}
	if got, want := caps[cfg.NumExperts-1], int(float64(base)*4/3+0.5); got != want {
		t.Fatalf("fast rank cap %d, want %d", got, want)
	}
}

func TestBuildPFTCapsEnforcesPerExpertCapacity(t *testing.T) {
	// 4 tokens to expert 0, 2 to expert 1; caps keep the 2 heaviest on
	// expert 0 and everything on expert 1.
	r := Routing{
		S:          6,
		TopExperts: [][]int{{0}, {0}, {0}, {0}, {1}, {1}},
		Weights:    [][]float32{{0.1}, {0.9}, {0.5}, {0.7}, {0.3}, {0.4}},
		Logits:     [][]float32{{1}, {1}, {1}, {1}, {1}, {1}},
	}
	p := BuildPFTCaps(r, 2, []int{2, 5}, DropByCapacityWeight)
	if err := p.Validate(6, 2, 5); err != nil {
		t.Fatal(err)
	}
	if p.B() != 4 || p.Dropped != 2 {
		t.Fatalf("B=%d dropped=%d, want 4/2", p.B(), p.Dropped)
	}
	if p.TokensPerExpert[0] != 2 || p.TokensPerExpert[1] != 2 {
		t.Fatalf("segments %v, want [2 2] (expert-0 cap binds, expert-1 does not)", p.TokensPerExpert)
	}
	kept := map[int]bool{p.TokenIDs[0]: true, p.TokenIDs[1]: true}
	if !kept[1] || !kept[3] {
		t.Fatalf("expert 0 kept %v, want the two heaviest {1,3}", p.TokenIDs[:2])
	}

	// A uniform caps vector is BuildPFT with that capacity.
	rng := tensor.NewRNG(23)
	syn := SyntheticRouting(rng, 32, 8, 3, 0.6)
	a := BuildPFT(syn, 8, 7, DropByCapacityWeight)
	b := BuildPFTCaps(syn, 8, []int{7, 7, 7, 7, 7, 7, 7, 7}, DropByCapacityWeight)
	if a.B() != b.B() || a.Dropped != b.Dropped {
		t.Fatalf("uniform caps diverge from BuildPFT: B %d/%d dropped %d/%d", a.B(), b.B(), a.Dropped, b.Dropped)
	}
	for i := range a.TokenIDs {
		if a.TokenIDs[i] != b.TokenIDs[i] || a.ExpertIDs[i] != b.ExpertIDs[i] {
			t.Fatalf("entry %d diverged", i)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("BuildPFTCaps must panic on a caps/expert-count mismatch")
		}
	}()
	BuildPFTCaps(r, 2, []int{2}, DropByCapacityWeight)
}

// TestCapacityByExpertOptionChecks: Check rejects non-positive per-expert
// capacities with a typed OptionError, and the padded pipeline — whose
// even all-to-all cannot carry uneven segments — refuses the option
// outright.
func TestCapacityByExpertOptionChecks(t *testing.T) {
	err := PipelineOpts{CapacityByExpert: []int{4, 0}}.Check()
	if err == nil {
		t.Fatal("Check must reject a zero per-expert capacity")
	}
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Opt != "CapacityByExpert" {
		t.Fatalf("want *OptionError for CapacityByExpert, got %v", err)
	}
	if err := (PipelineOpts{CapacityByExpert: []int{4, 3}}).Check(); err != nil {
		t.Fatalf("positive caps must pass: %v", err)
	}

	c := newMoECluster(t, 2)
	g := c.WorldGroup()
	cfg := distConfig(8, 3)
	runErr := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(500 + r.ID))
		x := tensor.Randn(rng, 1, 16, cfg.HModel)
		routing := SyntheticRouting(rng, 16, cfg.NumExperts, cfg.TopK, 0.7)
		params := localParams(g.IndexOf(r.ID), cfg.NumExperts/2, cfg.HModel, cfg.HFFN)
		PaddedForward(r, g, cfg, 16, x, routing, params, PipelineOpts{CapacityByExpert: []int{4, 4, 4, 4, 4, 4, 4, 4}})
		return nil
	})
	if runErr == nil || !strings.Contains(runErr.Error(), "uniform expert capacity") {
		t.Fatalf("padded + CapacityByExpert must panic with the rejection, got: %v", runErr)
	}
}
