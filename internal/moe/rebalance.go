package moe

// Straggler-aware expert-capacity rebalance: the fault injector models
// slow ranks deterministically, and under BSP every collective waits for
// the slowest one, so a straggler's expert GEMM time bounds the step.
// Shifting expert capacity away from slow ranks shrinks the rows their
// experts process (tokens above the reduced cap are dropped by the usual
// drop policy) and hands the headroom to fast ranks, trading a bounded
// amount of extra dropping on slow experts for a shorter critical path.
// The shift is clamped to ±bound so the loss trajectory stays within
// tolerance of the uniform baseline.

import "math"

// RebalanceCapacity returns a per-expert capacity vector for a world of
// `world` expert-parallel ranks given each rank's observed previous-step
// time: rank r's experts get the uniform capacity Config.Capacity(s)
// scaled by r's relative speed (inverse observed time, normalised so an
// all-equal observation reproduces the uniform capacity), clamped to
// [1-bound, 1+bound]. Every capacity is at least 1. Returns nil — route
// uniformly — when the bound is off, the observations are missing or
// non-positive, or the ranks are equally fast (no rebalance to do).
// Callers pass the result through PipelineOpts.CapacityByExpert; it must
// be computed once before the SPMD step from the same observations on
// every rank, keeping routing deterministic.
func RebalanceCapacity(cfg Config, s, world int, stepTimes []float64, bound float64) []int {
	if bound <= 0 || world < 1 || len(stepTimes) != world || cfg.NumExperts%world != 0 {
		return nil
	}
	invSum := 0.0
	equal := true
	for _, t := range stepTimes {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil
		}
		invSum += 1 / t
		equal = equal && t == stepTimes[0]
	}
	if equal {
		return nil
	}
	base := float64(cfg.Capacity(s))
	epr := cfg.NumExperts / world
	caps := make([]int, cfg.NumExperts)
	for r := 0; r < world; r++ {
		rel := (1 / stepTimes[r]) * float64(world) / invSum
		if rel < 1-bound {
			rel = 1 - bound
		} else if rel > 1+bound {
			rel = 1 + bound
		}
		c := int(math.Round(base * rel))
		if c < 1 {
			c = 1
		}
		for le := 0; le < epr; le++ {
			caps[r*epr+le] = c
		}
	}
	return caps
}
