package moe

import (
	"math"
	"sync"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// bwdHarness runs one distributed forward (+optional backward) of the PFT
// pipeline on a 4-rank cluster with deterministic inputs. perturb, when
// non-nil, mutates rank pr's input (or weights) before the pass. It
// returns the global loss (sum of all ranks' output sums) and rank 0's
// backward result when withBackward is set.
type bwdHarness struct {
	cfg Config
	s   int
}

func (hn bwdHarness) run(t *testing.T, withBackward bool, perturb func(rankID int, x *tensor.Tensor, params *ExpertParams)) (float64, BackwardResult) {
	t.Helper()
	const world = 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	epr := hn.cfg.NumExperts / world

	var mu sync.Mutex
	var loss float64
	var grads BackwardResult
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(700 + r.ID))
		x := tensor.Randn(rng, 1, hn.s, hn.cfg.HModel)
		routing := SyntheticRouting(rng, hn.s, hn.cfg.NumExperts, hn.cfg.TopK, 0.6)
		params := localParams(g.IndexOf(r.ID), epr, hn.cfg.HModel, hn.cfg.HFFN)
		if perturb != nil {
			perturb(r.ID, x, params)
		}
		res := PFTForward(r, g, hn.cfg, hn.s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight, SaveForBackward: true,
		})
		mu.Lock()
		loss += res.Output.Sum()
		mu.Unlock()
		if withBackward {
			dOut := tensor.New(hn.s, hn.cfg.HModel)
			dOut.Fill(1)
			bwd := PFTBackward(r, g, hn.cfg, res.State, dOut, params, PipelineOpts{Numeric: true})
			if r.ID == 0 {
				mu.Lock()
				grads = bwd
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return loss, grads
}

func TestPFTBackwardInputGradients(t *testing.T) {
	hn := bwdHarness{cfg: distConfig(8, 3), s: 10}
	_, grads := hn.run(t, true, nil)
	if grads.DX == nil || grads.DX.Rows() != hn.s {
		t.Fatal("backward produced no input gradient")
	}
	const eps = 1e-2
	for _, idx := range []int{0, 7, 23, 55, grads.DX.Len() - 1} {
		up, _ := hn.run(t, false, func(id int, x *tensor.Tensor, _ *ExpertParams) {
			if id == 0 {
				x.Data[idx] += eps
			}
		})
		down, _ := hn.run(t, false, func(id int, x *tensor.Tensor, _ *ExpertParams) {
			if id == 0 {
				x.Data[idx] -= eps
			}
		})
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(grads.DX.Data[idx])) > 6e-2 {
			t.Fatalf("dX[%d]: analytic %f vs numeric %f", idx, grads.DX.Data[idx], numeric)
		}
	}
}

func TestPFTBackwardWeightGradients(t *testing.T) {
	hn := bwdHarness{cfg: distConfig(8, 3), s: 10}
	_, grads := hn.run(t, true, nil)
	if len(grads.DW1) != 2 || len(grads.DW2) != 2 {
		t.Fatalf("expected 2 local experts' gradients, got %d/%d", len(grads.DW1), len(grads.DW2))
	}
	const eps = 1e-2
	// Perturb rank 0's local expert 0 W1 and W2 entries; the loss is
	// global because expert 0 serves tokens from every rank.
	for _, probe := range []struct {
		w     func(p *ExpertParams) *tensor.Tensor
		grad  *tensor.Tensor
		label string
	}{
		{func(p *ExpertParams) *tensor.Tensor { return p.W1[0] }, grads.DW1[0], "W1[0]"},
		{func(p *ExpertParams) *tensor.Tensor { return p.W2[0] }, grads.DW2[0], "W2[0]"},
	} {
		for _, idx := range []int{0, 13, probe.grad.Len() - 1} {
			up, _ := hn.run(t, false, func(id int, _ *tensor.Tensor, p *ExpertParams) {
				if id == 0 {
					probe.w(p).Data[idx] += eps
				}
			})
			down, _ := hn.run(t, false, func(id int, _ *tensor.Tensor, p *ExpertParams) {
				if id == 0 {
					probe.w(p).Data[idx] -= eps
				}
			})
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-float64(probe.grad.Data[idx])) > 8e-2 {
				t.Fatalf("%s[%d]: analytic %f vs numeric %f", probe.label, idx,
					probe.grad.Data[idx], numeric)
			}
		}
	}
}

func TestPFTBackwardCombineWeightGradients(t *testing.T) {
	hn := bwdHarness{cfg: distConfig(8, 3), s: 8}
	_, grads := hn.run(t, true, nil)
	if len(grads.DCombineWeights) == 0 {
		t.Fatal("no combine-weight gradients")
	}
	// With dOut = ones, dWeight[i] = sum of combineIn row i: a direct
	// spot check against the saved forward state is done implicitly by
	// the input/weight gradient checks; here assert finiteness and a
	// non-trivial signal.
	var nonZero int
	for _, v := range grads.DCombineWeights {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("combine-weight gradient not finite")
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("all combine-weight gradients are zero")
	}
}

// TestPaddedBackwardMatchesPFTBackward validates the new padded backward
// against the numerically-verified PFT backward: under the FCFS drop
// policy both pipelines retain exactly the same assignments, so dX and
// the per-expert weight gradients must agree within float tolerance.
func TestPaddedBackwardMatchesPFTBackward(t *testing.T) {
	cfg := distConfig(8, 3)
	const world, s = 4, 24
	run := func(padded bool) map[int]BackwardResult {
		c := newMoECluster(t, world)
		g := c.WorldGroup()
		epr := cfg.NumExperts / world
		grads := make(map[int]BackwardResult)
		var mu sync.Mutex
		err := c.Run(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(uint64(700 + r.ID))
			x := tensor.Randn(rng, 1, s, cfg.HModel)
			routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
			params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
			opts := PipelineOpts{Numeric: true, DropPolicy: DropNegativeThenPosition, SaveForBackward: true}
			dOut := tensor.New(s, cfg.HModel)
			for i := range dOut.Data {
				dOut.Data[i] = float32(i%5)*0.2 - 0.4
			}
			var bwd BackwardResult
			if padded {
				res := PaddedForward(r, g, cfg, s, x, routing, params, opts)
				bwd = PaddedBackward(r, g, cfg, res.PaddedState, dOut, params, opts)
			} else {
				res := PFTForward(r, g, cfg, s, x, routing, params, opts)
				bwd = PFTBackward(r, g, cfg, res.State, dOut, params, opts)
			}
			mu.Lock()
			grads[r.ID] = bwd
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return grads
	}
	pft := run(false)
	pad := run(true)
	for rank := range pft {
		if !pft[rank].DX.Equal(pad[rank].DX, 1e-3) {
			t.Fatalf("rank %d: padded dX differs from PFT dX", rank)
		}
		for e := range pft[rank].DW1 {
			if !pft[rank].DW1[e].Equal(pad[rank].DW1[e], 1e-3) ||
				!pft[rank].DW2[e].Equal(pad[rank].DW2[e], 1e-3) {
				t.Fatalf("rank %d expert %d: padded weight gradients differ from PFT", rank, e)
			}
		}
	}
}

// TestBackwardMirrorsForwardCommunication checks the §4.3 accounting: the
// backward pass issues the same two all-to-alls with the same volumes as
// the forward pass (4 per layer per step in total, no extras).
func TestBackwardMirrorsForwardCommunication(t *testing.T) {
	cfg := distConfig(8, 3)
	const s, world = 64, 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	epr := cfg.NumExperts / world
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(900 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		params := localParams(g.IndexOf(r.ID), epr, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight, SaveForBackward: true,
		})
		dOut := tensor.New(s, cfg.HModel)
		dOut.Fill(1)
		PFTBackward(r, g, cfg, res.State, dOut, params, PipelineOpts{Numeric: true})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range ranks {
		fwd := rk.Trace.Total(StageDispatchA2A) + rk.Trace.Total(StageCombineA2A)
		bwd := rk.Trace.Total(StageBwdCombineA2A) + rk.Trace.Total(StageBwdDispA2A)
		if math.Abs(fwd-bwd) > 0.15*fwd {
			t.Fatalf("rank %d: backward a2a time %.6f should mirror forward %.6f", rk.ID, bwd, fwd)
		}
	}
}
