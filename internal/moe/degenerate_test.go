package moe

import (
	"fmt"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// allToOneRouting routes every token's first choice to a single expert —
// the worst-case hot-expert skew.
func allToOneRouting(s, e, k, hot int) Routing {
	r := Routing{S: s, TopExperts: make([][]int, s), Weights: make([][]float32, s), Logits: make([][]float32, s)}
	for t := 0; t < s; t++ {
		experts := make([]int, k)
		weights := make([]float32, k)
		logits := make([]float32, k)
		experts[0] = hot
		weights[0] = 0.9
		logits[0] = 1
		for j := 1; j < k; j++ {
			experts[j] = (hot + j) % e
			weights[j] = 0.01
			logits[j] = 1
		}
		r.TopExperts[t] = experts
		r.Weights[t] = weights
		r.Logits[t] = logits
	}
	return r
}

func TestHotExpertCapacityDropping(t *testing.T) {
	// All 64 tokens route to expert 0 first; capacity clips the hot
	// expert while the PFT stays structurally valid.
	const s, e, k = 64, 8, 2
	r := allToOneRouting(s, e, k, 0)
	capTokens := 10
	p := BuildPFT(r, e, capTokens, DropByCapacityWeight)
	if err := p.Validate(s, e, capTokens); err != nil {
		t.Fatal(err)
	}
	if p.TokensPerExpert[0] != capTokens {
		t.Fatalf("hot expert holds %d, want capacity %d", p.TokensPerExpert[0], capTokens)
	}
	// Both the hot expert (all first choices) and expert 1 (all second
	// choices) overflow: each keeps capTokens of s entries.
	if want := 2 * (s - capTokens); p.Dropped != want {
		t.Fatalf("dropped %d, want %d", p.Dropped, want)
	}
}

func TestHotExpertDistributedPipeline(t *testing.T) {
	// The distributed pipeline must survive extreme imbalance: one rank's
	// expert receives nearly everything, others sit empty.
	cfg := distConfig(8, 2)
	const s, world = 24, 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(40 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := allToOneRouting(s, cfg.NumExperts, cfg.TopK, 3)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight,
		})
		want := referenceMoE(x, res.PFT, cfg.HModel, cfg.HFFN)
		if !res.Output.Equal(want, 1e-3) {
			return fmt.Errorf("rank %d differs under hot-expert routing", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyExpertsProduceZeroSegments(t *testing.T) {
	// Routing that never touches experts 4-7: their owners receive
	// nothing and must still participate in every collective.
	cfg := distConfig(8, 2)
	const s, world = 12, 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(50 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		// Only experts 0-3 are used (owned by members 0 and 1).
		routing := SyntheticRouting(rng, s, 4, cfg.TopK, 0)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight,
		})
		me := g.IndexOf(r.ID)
		if me >= 2 && res.RecvTokens != 0 {
			return fmt.Errorf("rank %d owns unused experts but received %d rows", r.ID, res.RecvTokens)
		}
		want := referenceMoE(x, res.PFT, cfg.HModel, cfg.HFFN)
		if !res.Output.Equal(want, 1e-3) {
			return fmt.Errorf("rank %d differs with empty experts", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroTokenRank(t *testing.T) {
	// A rank with an empty local batch must still complete the SPMD
	// collectives and produce an empty output.
	cfg := distConfig(8, 2)
	const world = 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		s := 8
		if r.ID == 2 {
			s = 0
		}
		rng := tensor.NewRNG(uint64(60 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight,
		})
		if r.ID == 2 {
			if res.RoutedTokens != 0 || res.Output.Rows() != 0 {
				return fmt.Errorf("empty rank routed %d tokens", res.RoutedTokens)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapacityOneExtreme(t *testing.T) {
	// Capacity 1 with heavy routing: every expert keeps exactly its
	// single best token; everything else drops; the pipeline stays
	// consistent.
	cfg := distConfig(8, 4)
	cfg.CapacityFactor = 1e-9 // forces Capacity() to its floor of 1
	const s, world = 32, 4
	c := newMoECluster(t, world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(70 + r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.5)
		params := localParams(g.IndexOf(r.ID), 2, cfg.HModel, cfg.HFFN)
		res := PFTForward(r, g, cfg, s, x, routing, params, PipelineOpts{
			Numeric: true, DropPolicy: DropByCapacityWeight,
		})
		if res.RoutedTokens > cfg.NumExperts {
			return fmt.Errorf("capacity 1 allows at most E rows, got %d", res.RoutedTokens)
		}
		want := referenceMoE(x, res.PFT, cfg.HModel, cfg.HFFN)
		if !res.Output.Equal(want, 1e-3) {
			return fmt.Errorf("rank %d differs at capacity 1", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOOMDetectionUnderSymbolicPressure(t *testing.T) {
	// Symbolic mode must trip the device OOM flag when the configured
	// layer exceeds HBM (failure injection for the trainability logic).
	cfg := Config{NumExperts: 8, TopK: 8, HModel: 1 << 17, HFFN: 1 << 16,
		CapacityFactor: 1.25, BytesPerElem: 2}
	const s = 1 << 14
	c := newMoECluster(t, 4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(r.ID))
		routing := SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		PFTForward(r, g, cfg, s, nil, routing, nil, PipelineOpts{RetainActivations: true})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.AnyOOM() {
		t.Fatalf("a %d-token x %d-hidden layer must exceed 64 GB HBM (peak %d)",
			s, cfg.HModel, c.PeakMemory())
	}
}
