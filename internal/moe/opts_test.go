package moe

import (
	"errors"
	"strings"
	"testing"
)

// TestPipelineOptsCheckRejects pins every rejection path of
// PipelineOpts.Check: flag-derived options surface these descriptive
// errors instead of a panic from inside an SPMD rank body.
func TestPipelineOptsCheckRejects(t *testing.T) {
	cases := []struct {
		name string
		opts PipelineOpts
		opt  string
		want string
	}{
		{"negative chunks", PipelineOpts{OverlapChunks: -1}, "OverlapChunks", "OverlapChunks must be >= 0"},
		{"huge chunks", PipelineOpts{OverlapChunks: 4097}, "OverlapChunks", "exceeds the supported maximum"},
		{"negative combine bytes", PipelineOpts{CombineBytes: -8}, "CombineBytes", "CombineBytes must be >= 0"},
		{"kernel profile too low", PipelineOpts{Kernels: KernelsTriton - 1}, "Kernels", "unknown kernel profile"},
		{"kernel profile too high", PipelineOpts{Kernels: KernelsVendor + 1}, "Kernels", "unknown kernel profile"},
		{"drop policy too low", PipelineOpts{DropPolicy: DropByCapacityWeight - 1}, "DropPolicy", "unknown drop policy"},
		{"drop policy too high", PipelineOpts{DropPolicy: DropNegativeThenPosition + 1}, "DropPolicy", "unknown drop policy"},
	}
	for _, c := range cases {
		err := c.opts.Check()
		if err == nil {
			t.Errorf("%s: Check accepted %+v", c.name, c.opts)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %T is not a typed *OptionError", c.name, err)
		} else if oe.Opt != c.opt {
			t.Errorf("%s: OptionError.Opt = %q, want %q", c.name, oe.Opt, c.opt)
		}
	}
	// The boundary values themselves are valid.
	for _, ok := range []PipelineOpts{
		{},
		{OverlapChunks: 4096},
		{Kernels: KernelsVendor, DropPolicy: DropNegativeThenPosition},
	} {
		if err := ok.Check(); err != nil {
			t.Errorf("Check rejected valid opts %+v: %v", ok, err)
		}
	}
}
