package moe

// Chunked comm/compute-overlap execution of the MoE middle section
// (dispatch all-to-all -> expert GEMMs -> combine all-to-all), the
// optimisation FastMoE's smart scheduling and Megatron Core's MoE overlap
// apply to hide the paper's dominant all-to-all cost (Fig. 11) behind the
// expert computation:
//
//   - The routed tokens are split into C chunks along each (destination
//     rank, local expert) segment, using the same ChunkRange split on both
//     ends so no extra metadata crosses the wire (full per-expert counts
//     ride with chunk 0 only, exactly the blocking pipeline's volume).
//   - All C dispatch all-to-alls are issued non-blocking up front; they
//     serialise on the rank's communication stream, so chunk i+1's
//     transfer flies while chunk i's expert GEMMs run on the device.
//   - Each chunk's combine all-to-all is issued non-blocking right after
//     its GEMMs, overlapping the remaining chunks' compute; the waits at
//     the end charge only the uncovered tail.
//
// Numeric output is bit-identical to the blocking pipeline: the expert
// FFN is row-independent, chunking only re-times row groups without
// reordering any per-row arithmetic, and every returned row is written to
// the exact position the blocking pipeline would use.
//
// With SaveForBackward, the overlapped pipelines additionally scatter
// each chunk's intermediates (expert input, pre-activation, post-GeLU
// activation) into the same full-layout buffers the blocking forward
// saves — chunk rows of block (src, le) land at the block's expert-major
// offset plus the chunk's ChunkRange start — so PFTBackward /
// PaddedBackward consume an identical state regardless of the forward
// chunk count.

import (
	"xmoe/internal/kernels"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// pftForwardOverlap continues PFTForward after gating, PFT construction
// and the dispatch gather, executing the exchange and expert stages in
// opts.chunks() overlapped chunks.
func pftForwardOverlap(r *simrt.Rank, g *simrt.Group, cfg Config, s int, pft *PFT,
	dispIn *tensor.Tensor, params *ExpertParams, opts PipelineOpts) LayerResult {

	chunks := opts.chunks()
	p := g.Size()
	epr := cfg.NumExperts / p
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	combElem := int64(opts.combineBytes(cfg))
	mem := &r.Dev().Mem
	comp := r.C.Comp
	pool := r.Pool()
	b := pft.B()
	segStart := pft.ExpertSegments()

	// --- Issue every dispatch chunk non-blocking -------------------------
	// Chunk c of global expert e covers rows ChunkRange(cnt_e, chunks, c)
	// of e's contiguous PFT segment; a chunk part concatenates the
	// destination rank's experts' chunk rows in expert order. The full
	// per-expert counts ride with chunk 0 (blocking wire volume), later
	// chunks are derived by both ends from the same split. Part slices
	// for all chunks view one flat backing array so the steady-state
	// allocation count stays independent of the chunk count.
	countsFlat := make([]int, p*epr)
	copy(countsFlat, pft.TokensPerExpert)
	sendFlat := make([]simrt.Part, chunks*p)
	dispatchH := make([]*simrt.CommHandle, chunks)
	for c := 0; c < chunks; c++ {
		send := sendFlat[c*p : (c+1)*p]
		chunkRows := 0
		for dst := 0; dst < p; dst++ {
			rows := 0
			for le := 0; le < epr; le++ {
				lo, hi := simrt.ChunkRange(pft.TokensPerExpert[dst*epr+le], chunks, c)
				rows += hi - lo
			}
			chunkRows += rows
			part := simrt.Part{Bytes: int64(rows) * int64(h) * elem}
			if c == 0 {
				part.Meta = countsFlat[dst*epr : (dst+1)*epr]
				part.Bytes += int64(epr) * 8
			}
			if opts.Numeric && rows > 0 {
				// Staged allocate-fresh: the buffer crosses a collective.
				buf := make([]float32, rows*h)
				pos := 0
				for le := 0; le < epr; le++ {
					e := dst*epr + le
					lo, hi := simrt.ChunkRange(pft.TokensPerExpert[e], chunks, c)
					if hi > lo {
						copy(buf[pos*h:(pos+hi-lo)*h],
							dispIn.Data[(segStart[e]+lo)*h:(segStart[e]+hi)*h])
						pos += hi - lo
					}
				}
				part.Data = buf
			}
			send[dst] = part
		}
		// The chunked path packs strided per-expert chunk rows into send
		// buffers — a real memory-bound pass the blocking pipeline avoids
		// by sending contiguous views — so it is charged, keeping the
		// overlap-vs-blocking comparison honest.
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(chunkRows)*int64(h)*elem))
		dispatchH[c] = r.AlltoAllVAsync(g, StageDispatchA2A, send)
	}

	// --- Per-chunk expert stage, combine issued as soon as a chunk ends --
	var recvCounts [][]int // [src][localExpert] full totals, from chunk 0
	bExp := 0
	combineH := make([]*simrt.CommHandle, chunks)
	rowsPerLE := make([]int, epr)
	// Per-chunk geometry scratch, reused across chunks: chunkLen[src*epr+le]
	// is the (src, le) sub-block's row count, chunkLo its ChunkRange start
	// within the block, partPos[src*epr+le] its offset within src's part
	// (send and receive sides share the layout: local experts ascending),
	// blockOff[le*p+src] its offset within the chunk's expert-major
	// buffer. Precomputed prefix sums keep packing O(p*epr) per chunk, as
	// the blocking path's blockOff table does.
	chunkLen := make([]int, p*epr)
	chunkLo := make([]int, p*epr)
	partPos := make([]int, p*epr)
	blockOff := make([]int, epr*p)
	backFlat := make([]simrt.Part, chunks*p)
	// Full-layout saved state (SaveForBackward): blockOffFull mirrors the
	// blocking pipeline's [le][src] expert-major offsets; the chunk
	// intermediates are scattered into full-size buffers at those offsets.
	var blockOffFull [][]int
	var fullRowsPerLE []int
	var expertIn, hidPre, hidAct *tensor.Tensor
	for c := 0; c < chunks; c++ {
		recv := dispatchH[c].Wait()
		if c == 0 {
			recvCounts = make([][]int, p)
			for src, part := range recv {
				recvCounts[src] = part.Meta.([]int)
				for _, n := range recvCounts[src] {
					bExp += n
				}
			}
			mem.Alloc("A_dispatch", int64(bExp)*int64(h)*elem)
			mem.Alloc("A0_interm", int64(bExp)*int64(f)*elem)
			mem.Alloc("A1_interm", int64(bExp)*int64(f)*elem)
			if opts.SaveForBackward {
				blockOffFull = make([][]int, epr)
				fullRowsPerLE = make([]int, epr)
				flat := make([]int, epr*p)
				off := 0
				for le := 0; le < epr; le++ {
					blockOffFull[le] = flat[le*p : (le+1)*p]
					for src := 0; src < p; src++ {
						blockOffFull[le][src] = off
						off += recvCounts[src][le]
						fullRowsPerLE[le] += recvCounts[src][le]
					}
				}
				if opts.Numeric {
					expertIn = pool.Get(bExp, h)
					hidPre = pool.Get(bExp, f)
					hidAct = pool.Get(bExp, f)
				}
			}
		}

		// Chunk geometry: sub-block lengths, then prefix offsets.
		bc := 0
		for le := 0; le < epr; le++ {
			rowsPerLE[le] = 0
			for src := 0; src < p; src++ {
				lo, hi := simrt.ChunkRange(recvCounts[src][le], chunks, c)
				chunkLen[src*epr+le] = hi - lo
				chunkLo[src*epr+le] = lo
				rowsPerLE[le] += hi - lo
			}
			bc += rowsPerLE[le]
		}
		{
			off := 0
			for le := 0; le < epr; le++ {
				for src := 0; src < p; src++ {
					blockOff[le*p+src] = off
					off += chunkLen[src*epr+le]
				}
			}
			for src := 0; src < p; src++ {
				pos := 0
				for le := 0; le < epr; le++ {
					partPos[src*epr+le] = pos
					pos += chunkLen[src*epr+le]
				}
			}
		}

		// Expert-major reorder of this chunk (paper §5.4.1 overhead,
		// charged proportionally to the chunk's rows).
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(h)*elem))
		var chunkIn *tensor.Tensor
		if opts.Numeric {
			chunkIn = pool.Get(bc, h)
			for le := 0; le < epr; le++ {
				for src := 0; src < p; src++ {
					n := chunkLen[src*epr+le]
					if n == 0 {
						continue
					}
					off, pos := blockOff[le*p+src], partPos[src*epr+le]
					copy(chunkIn.Data[off*h:(off+n)*h],
						recv[src].Data[pos*h:(pos+n)*h])
				}
			}
		}

		// Sequential GEMM experts over the chunk's uneven segments.
		expertTime := comp.SequentialGEMM(rowsPerLE, h, f) +
			comp.SequentialGEMM(rowsPerLE, f, h) +
			comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(f)*elem)
		r.Compute(StageExperts, expertTime)
		var chunkOut *tensor.Tensor
		if opts.Numeric {
			interm := pool.Get(bc, f)
			kernels.SequentialGEMMInto(interm, chunkIn, rowsPerLE, params.W1)
			if opts.SaveForBackward {
				// Scatter this chunk's intermediates into the blocking
				// pipeline's full expert-major layout before/after the
				// activation so the saved state is chunk-count invariant.
				scatterChunkRows(expertIn.Data, chunkIn.Data, h, epr, p, blockOffFull, blockOff, chunkLen, chunkLo)
				scatterChunkRows(hidPre.Data, interm.Data, f, epr, p, blockOffFull, blockOff, chunkLen, chunkLo)
			}
			tensor.GeLU(interm)
			if opts.SaveForBackward {
				scatterChunkRows(hidAct.Data, interm.Data, f, epr, p, blockOffFull, blockOff, chunkLen, chunkLo)
			}
			chunkOut = pool.Get(bc, h)
			kernels.SequentialGEMMInto(chunkOut, interm, rowsPerLE, params.W2)
			pool.PutAll(chunkIn, interm)
		}

		// Reverse reorder to src-major and issue this chunk's combine.
		r.Compute(StageOthers, comp.MemBound(perfmodel.ClassTriton, 2*int64(bc)*int64(h)*elem))
		sendBack := backFlat[c*p : (c+1)*p]
		for src := 0; src < p; src++ {
			rows := 0
			for le := 0; le < epr; le++ {
				rows += chunkLen[src*epr+le]
			}
			part := simrt.Part{Bytes: int64(rows) * int64(h) * combElem}
			if opts.Numeric && rows > 0 {
				buf := make([]float32, rows*h)
				for le := 0; le < epr; le++ {
					n := chunkLen[src*epr+le]
					if n == 0 {
						continue
					}
					off, pos := blockOff[le*p+src], partPos[src*epr+le]
					copy(buf[pos*h:(pos+n)*h], chunkOut.Data[off*h:(off+n)*h])
				}
				part.Data = buf
			}
			sendBack[src] = part
		}
		combineH[c] = r.AlltoAllVAsync(g, StageCombineA2A, sendBack)
		if opts.Numeric {
			pool.Put(chunkOut) // fully staged into the send-back buffers
		}
	}

	// --- Drain combine chunks into the PFT-ordered combine buffer --------
	mem.Alloc("A_combine", int64(b)*int64(h)*combElem)
	var combineIn *tensor.Tensor
	if opts.Numeric {
		combineIn = pool.Get(b, h)
	}
	for c := 0; c < chunks; c++ {
		back := combineH[c].Wait()
		if !opts.Numeric {
			continue
		}
		for dst := 0; dst < p; dst++ {
			data := back[dst].Data
			pos := 0
			for le := 0; le < epr; le++ {
				e := dst*epr + le
				lo, hi := simrt.ChunkRange(pft.TokensPerExpert[e], chunks, c)
				if hi > lo {
					copy(combineIn.Data[(segStart[e]+lo)*h:(segStart[e]+hi)*h],
						data[pos*h:(pos+hi-lo)*h])
					pos += hi - lo
				}
			}
		}
	}

	// --- Scatter combine (identical to the blocking pipeline) ------------
	r.Compute(StageCombine, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*combElem))
	var out *tensor.Tensor
	if opts.Numeric {
		out = kernels.ScatterCombine(combineIn, pft.TokenIDs, pft.CombineWeights, s)
		if !opts.SaveForBackward {
			pool.Put(combineIn)
		}
	}
	mem.Alloc("output", int64(s)*int64(h)*elem)

	if !opts.RetainActivations {
		mem.Free("dispatch_in", int64(b)*int64(h)*elem)
		mem.Free("A_dispatch", int64(bExp)*int64(h)*elem)
		mem.Free("A0_interm", int64(bExp)*int64(f)*elem)
		mem.Free("A1_interm", int64(bExp)*int64(f)*elem)
		mem.Free("A_combine", int64(b)*int64(h)*combElem)
		mem.Free("eri", pft.ERIBytes())
	}

	res := LayerResult{
		Output:       out,
		PFT:          pft,
		RoutedTokens: b,
		RecvTokens:   bExp,
		Dropped:      pft.Dropped,
	}
	if opts.SaveForBackward {
		res.State = &PFTFwdState{
			S:          s,
			PFT:        pft,
			RecvCounts: recvCounts,
			BlockOff:   blockOffFull,
			RowsPerLE:  fullRowsPerLE,
			ExpertIn:   expertIn,
			HidPre:     hidPre,
			HidAct:     hidAct,
			CombineIn:  combineIn,
		}
	}
	return res
}

// scatterChunkRows copies the (src, le) sub-blocks of a chunk-contiguous
// buffer into the blocking pipeline's full expert-major layout: chunk
// rows of block (src, le) land at the block's full offset plus the
// chunk's ChunkRange start. width is the row width of both buffers.
func scatterChunkRows(full, chunk []float32, width, epr, p int,
	blockOffFull [][]int, blockOff, chunkLen, chunkLo []int) {
	for le := 0; le < epr; le++ {
		for src := 0; src < p; src++ {
			n := chunkLen[src*epr+le]
			if n == 0 {
				continue
			}
			src0 := blockOff[le*p+src] * width
			dst0 := (blockOffFull[le][src] + chunkLo[src*epr+le]) * width
			copy(full[dst0:dst0+n*width], chunk[src0:src0+n*width])
		}
	}
}

// paddedForwardOverlap continues PaddedForward after gating, plan
// construction and the padded dispatch, executing the even exchanges and
// the batched expert GEMMs in opts.chunks() overlapped chunks of capacity
// slots.
func paddedForwardOverlap(r *simrt.Rank, g *simrt.Group, cfg Config, s int,
	pa *PaddedAssignment, dispBuf *tensor.Tensor, params *ExpertParams,
	opts PipelineOpts, kernelClass perfmodel.KernelClass, maskBytes, intermBytes int64) LayerResult {

	chunks := opts.chunks()
	p := g.Size()
	e := cfg.NumExperts
	epr := e / p
	h, f := cfg.HModel, cfg.HFFN
	capTokens := cfg.Capacity(s)
	elem := int64(cfg.BytesPerElem)
	combElem := int64(opts.combineBytes(cfg))
	vendor := kernelClass == perfmodel.ClassVendor
	mem := &r.Dev().Mem
	comp := r.C.Comp
	pool := r.Pool()
	pairBytes := int64(epr) * int64(capTokens) * int64(h) * elem

	// --- Issue every dispatch chunk non-blocking -------------------------
	// Chunk c covers capacity slots ChunkRange(capTokens, chunks, c) of
	// every expert buffer; both ends derive the same slot split, so the
	// even exchange needs no metadata at all. Part slices for all chunks
	// view one flat backing array (constant allocation count in C).
	sendFlat := make([]simrt.Part, chunks*p)
	dispatchH := make([]*simrt.CommHandle, chunks)
	for c := 0; c < chunks; c++ {
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo
		send := sendFlat[c*p : (c+1)*p]
		for dst := 0; dst < p; dst++ {
			part := simrt.Part{Bytes: int64(epr) * int64(cl) * int64(h) * elem}
			if opts.Numeric && cl > 0 {
				buf := make([]float32, epr*cl*h)
				for le := 0; le < epr; le++ {
					base := ((dst*epr+le)*capTokens + slo) * h
					copy(buf[le*cl*h:(le+1)*cl*h], dispBuf.Data[base:base+cl*h])
				}
				part.Data = buf
			}
			send[dst] = part
		}
		// Charge the strided slot-chunk pack the blocking pipeline's
		// contiguous zero-copy send avoids.
		r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
		dispatchH[c] = r.AlltoAllVAsync(g, StageDispatchA2A, send)
	}
	mem.Alloc("A_dispatch", int64(p)*pairBytes)
	rowsPerExpert := p * capTokens
	mem.Alloc("A0_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
	mem.Alloc("A1_interm", int64(epr*rowsPerExpert)*int64(f)*elem)

	// Full-layout saved state (SaveForBackward), expert-major padded rows
	// ((le*P + src)*C + slot), exactly the blocking pipeline's layout.
	var expertIn, hidPre, hidAct *tensor.Tensor
	if opts.SaveForBackward && opts.Numeric {
		expertIn = pool.Get(epr*rowsPerExpert, h)
		hidPre = pool.Get(epr*rowsPerExpert, f)
		hidAct = pool.Get(epr*rowsPerExpert, f)
	}

	// --- Per-chunk padded expert stage ------------------------------------
	combineH := make([]*simrt.CommHandle, chunks)
	backFlat := make([]simrt.Part, chunks*p)
	rows := make([]int, epr)
	for c := 0; c < chunks; c++ {
		recv := dispatchH[c].Wait()
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo
		chunkRows := p * cl

		// saveChunk scatters this chunk's [EPR, P*cl] buffer into the
		// full [EPR, P*C] layout at slot offset slo.
		saveChunk := func(full, chunk []float32, width int) {
			for le := 0; le < epr; le++ {
				for src := 0; src < p; src++ {
					src0 := ((le*p + src) * cl) * width
					dst0 := ((le*p+src)*capTokens + slo) * width
					copy(full[dst0:dst0+cl*width], chunk[src0:src0+cl*width])
				}
			}
		}

		// Reshape [P, EPR, cl, H] -> [EPR, P*cl, H].
		r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
		var chunkOut *tensor.Tensor
		if opts.Numeric {
			chunkIn := pool.Get(epr*chunkRows, h)
			for src := 0; src < p; src++ {
				data := recv[src].Data
				for le := 0; le < epr; le++ {
					srcBlock := data[le*cl*h : (le+1)*cl*h]
					dstOff := (le*p + src) * cl * h
					copy(chunkIn.Data[dstOff:dstOff+cl*h], srcBlock)
				}
			}
			for i := range rows {
				rows[i] = chunkRows
			}
			interm := pool.Get(epr*chunkRows, f)
			kernels.SequentialGEMMInto(interm, chunkIn, rows, params.W1)
			if opts.SaveForBackward {
				saveChunk(expertIn.Data, chunkIn.Data, h)
				saveChunk(hidPre.Data, interm.Data, f)
			}
			tensor.GeLU(interm)
			if opts.SaveForBackward {
				saveChunk(hidAct.Data, interm.Data, f)
			}
			chunkOut = pool.Get(epr*chunkRows, h)
			kernels.SequentialGEMMInto(chunkOut, interm, rows, params.W2)
			pool.PutAll(chunkIn, interm)
		}
		expertTime := comp.BatchedPaddedGEMM(epr, chunkRows, h, f) +
			comp.BatchedPaddedGEMM(epr, chunkRows, f, h) +
			comp.MemBound(perfmodel.ClassVendor, 2*int64(epr*chunkRows)*int64(f)*elem)
		r.Compute(StageExperts, expertTime)

		// Reverse reshape and issue this chunk's combine.
		r.Compute(StageOthers, comp.MemBound(kernelClass, 2*int64(p*epr*cl)*int64(h)*elem))
		sendBack := backFlat[c*p : (c+1)*p]
		for dst := 0; dst < p; dst++ {
			part := simrt.Part{Bytes: int64(epr) * int64(cl) * int64(h) * elem}
			if opts.Numeric && cl > 0 {
				buf := make([]float32, epr*cl*h)
				for le := 0; le < epr; le++ {
					srcOff := (le*p + dst) * cl * h
					copy(buf[le*cl*h:(le+1)*cl*h], chunkOut.Data[srcOff:srcOff+cl*h])
				}
				part.Data = buf
			}
			sendBack[dst] = part
		}
		combineH[c] = r.AlltoAllVAsync(g, StageCombineA2A, sendBack)
		if opts.Numeric {
			pool.Put(chunkOut) // fully staged into the send-back buffers
		}
	}

	// --- Drain combine chunks into the padded combine buffer -------------
	mem.Alloc("A_combine", int64(e)*int64(capTokens)*int64(h)*combElem)
	var full *tensor.Tensor
	if opts.Numeric {
		full = pool.Get(e*capTokens, h)
	}
	for c := 0; c < chunks; c++ {
		back := combineH[c].Wait()
		if !opts.Numeric {
			continue
		}
		slo, shi := simrt.ChunkRange(capTokens, chunks, c)
		cl := shi - slo
		for dst := 0; dst < p; dst++ {
			data := back[dst].Data
			for le := 0; le < epr; le++ {
				base := ((dst*epr+le)*capTokens + slo) * h
				copy(full.Data[base:base+cl*h], data[le*cl*h:(le+1)*cl*h])
			}
		}
	}

	// --- Buffer combine (identical to the blocking pipeline) -------------
	if vendor {
		r.Compute(StageCombine, comp.MemBound(perfmodel.ClassVendor,
			2*int64(e)*int64(capTokens)*int64(h)*combElem))
	} else {
		r.Compute(StageCombine, comp.MaskEinsum(s, e, capTokens, h))
	}
	var out *tensor.Tensor
	if opts.Numeric {
		out = kernels.PaddedCombine(full.Reshape(e, capTokens, h), pa.SlotToken, pa.SlotWeight, capTokens, s)
		if !opts.SaveForBackward {
			pool.Put(full)
		}
	}
	mem.Alloc("output", int64(s)*int64(h)*elem)

	if !opts.RetainActivations {
		mem.Free("mask", maskBytes)
		mem.Free("mask_interm", intermBytes)
		mem.Free("disp_buffer", int64(e)*int64(capTokens)*int64(h)*elem)
		mem.Free("A_dispatch", int64(p)*pairBytes)
		mem.Free("A0_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
		mem.Free("A1_interm", int64(epr*rowsPerExpert)*int64(f)*elem)
		mem.Free("A_combine", int64(e)*int64(capTokens)*int64(h)*combElem)
	}

	res := LayerResult{
		Output:       out,
		RoutedTokens: pa.Occupied,
		RecvTokens:   epr * rowsPerExpert,
		Dropped:      pa.Dropped,
	}
	if opts.SaveForBackward {
		res.PaddedState = &PaddedFwdState{
			S:           s,
			PA:          pa,
			ExpertIn:    expertIn,
			HidPre:      hidPre,
			HidAct:      hidAct,
			CombineFull: full,
		}
	}
	return res
}
