package moe

// PaddedAssignment is the conventional GShard/DeepSpeed-MoE dispatch plan:
// each expert has a fixed-capacity buffer; slot (e, c) either holds a
// source token or stays zero-padded (paper §3.1, Fig. 2). It is the dense
// counterpart of the PFT and drives the baselines' einsum dispatch.
type PaddedAssignment struct {
	// Capacity is the per-expert buffer length C.
	Capacity int
	// SlotToken[e][c] is the token occupying slot c of expert e, or -1.
	SlotToken [][]int
	// SlotWeight[e][c] is that slot's combine weight (0 when empty).
	SlotWeight [][]float32
	// Dropped counts assignments that exceeded capacity (or failed the
	// drop policy) and were discarded.
	Dropped int
	// Occupied counts non-empty slots.
	Occupied int
}

// BuildPaddedAssignment constructs the dense dispatch plan from a routing
// under the given drop policy. Conventional frameworks assign slots
// first-come-first-served in token order; the DeepSpeed-MoE policy also
// drops negative-logit assignments outright.
func BuildPaddedAssignment(r Routing, numExperts, capacity int, policy DropPolicy) *PaddedAssignment {
	pa := &PaddedAssignment{
		Capacity:   capacity,
		SlotToken:  make([][]int, numExperts),
		SlotWeight: make([][]float32, numExperts),
	}
	for e := range pa.SlotToken {
		pa.SlotToken[e] = make([]int, capacity)
		for c := range pa.SlotToken[e] {
			pa.SlotToken[e][c] = -1
		}
		pa.SlotWeight[e] = make([]float32, capacity)
	}
	fill := make([]int, numExperts)
	k := r.K()
	for t := 0; t < r.S; t++ {
		for j := 0; j < k; j++ {
			e := r.TopExperts[t][j]
			if policy == DropNegativeThenPosition && r.Logits != nil && r.Logits[t][j] < 0 {
				pa.Dropped++
				continue
			}
			if fill[e] >= capacity {
				pa.Dropped++
				continue
			}
			pa.SlotToken[e][fill[e]] = t
			pa.SlotWeight[e][fill[e]] = r.Weights[t][j]
			fill[e]++
			pa.Occupied++
		}
	}
	return pa
}

// PaddingRatio returns the fraction of buffer slots that are zero-padding
// — the memory and communication waste the PFT eliminates.
func (pa *PaddedAssignment) PaddingRatio() float64 {
	total := len(pa.SlotToken) * pa.Capacity
	if total == 0 {
		return 0
	}
	return 1 - float64(pa.Occupied)/float64(total)
}
