package moe

import (
	"fmt"
	"sort"
)

// DropPolicy selects the token-dropping semantics of PFT construction.
// The paper's §5.6 traces the small loss-curve gap between X-MoE and
// DeepSpeed-MoE to exactly this difference.
type DropPolicy int

const (
	// DropByCapacityWeight is X-MoE's policy (Listing 1): a token is
	// dropped from an expert only when the expert's capacity is
	// exceeded, keeping the highest-combine-weight assignments.
	DropByCapacityWeight DropPolicy = iota
	// DropNegativeThenPosition is DeepSpeed-MoE's policy: assignments
	// with a negative raw routing score are dropped regardless of
	// capacity, then capacity overflow drops by token position
	// (first-come-first-served).
	DropNegativeThenPosition
)

// PFT is the Padding-Free Token buffer (paper §4.1.1): a dense token
// buffer holding only valid routed tokens, plus the Expert Routing
// Information arrays (ERI-arrays) that drive every later stage. Entries
// are ordered expert-major (ascending ExpertIDs), so per-expert segments
// are contiguous — the property the uneven all-to-all and sequential GEMM
// rely on.
type PFT struct {
	// TokenIDs[i] is the original token index of buffer row i.
	TokenIDs []int
	// ExpertIDs[i] is the destination expert of buffer row i.
	ExpertIDs []int
	// TokensPerExpert[e] is the number of rows routed to expert e.
	TokensPerExpert []int
	// CombineWeights[i] scales row i's expert output in the combine
	// stage.
	CombineWeights []float32
	// Dropped is the number of (token, expert) assignments removed by
	// the drop policy.
	Dropped int
}

// B returns the number of retained routed-token rows.
func (p *PFT) B() int { return len(p.TokenIDs) }

// pftEntry is one flattened (token, expert) assignment during
// construction.
type pftEntry struct {
	flat   int // t*k + j, the stable tiebreaker
	token  int
	expert int
	weight float32
	logit  float32
}

// BuildPFT constructs the PFT from a routing per Listing 1: flatten the
// [S, K] assignment array, order entries expert-major, apply the drop
// policy against maxTokenCount (the expert capacity), and emit the
// ERI-arrays. A maxTokenCount <= 0 means unlimited capacity.
func BuildPFT(r Routing, numExperts, maxTokenCount int, policy DropPolicy) *PFT {
	return buildPFT(r, numExperts, nil, maxTokenCount, policy)
}

// BuildPFTCaps is BuildPFT with a per-expert capacity vector: caps[e]
// bounds expert e's retained rows (entries <= 0 mean unlimited). The
// straggler-aware capacity rebalance (RebalanceCapacity) uses it to
// shift rows away from slow ranks' experts; the flat uneven all-to-all
// and the RBD hierarchy carry uneven segments natively, so only the
// padded pipeline (whose even exchange requires uniform capacity)
// rejects it.
func BuildPFTCaps(r Routing, numExperts int, caps []int, policy DropPolicy) *PFT {
	if len(caps) != numExperts {
		panic(fmt.Sprintf("moe: capacity vector has %d entries for %d experts", len(caps), numExperts))
	}
	return buildPFT(r, numExperts, caps, 0, policy)
}

func buildPFT(r Routing, numExperts int, caps []int, maxTokenCount int, policy DropPolicy) *PFT {
	capFor := func(e int) int {
		if caps != nil {
			return caps[e]
		}
		return maxTokenCount
	}
	k := r.K()
	entries := make([]pftEntry, 0, r.S*k)
	for t := 0; t < r.S; t++ {
		for j := 0; j < k; j++ {
			ent := pftEntry{
				flat:   t*k + j,
				token:  t,
				expert: r.TopExperts[t][j],
				weight: r.Weights[t][j],
			}
			if r.Logits != nil {
				ent.logit = r.Logits[t][j]
			} else {
				ent.logit = 1 // treat unknown logits as positive
			}
			entries = append(entries, ent)
		}
	}

	if policy == DropNegativeThenPosition {
		kept := entries[:0]
		for _, e := range entries {
			if e.logit >= 0 {
				kept = append(kept, e)
			}
		}
		entries = kept
	}

	// Expert-major, stable in flat order (Listing 1 lines 20-21). A
	// counting sort over the expert bins keeps the flat order within each
	// expert segment — identical to a stable comparison sort — in
	// O(B + E) with no comparator indirection; BuildPFT runs once per
	// rank per simulated layer, so this is sweep-critical.
	{
		counts := make([]int, numExperts)
		for i := range entries {
			counts[entries[i].expert]++
		}
		off := make([]int, numExperts)
		run := 0
		for e, c := range counts {
			off[e] = run
			run += c
		}
		sorted := make([]pftEntry, len(entries))
		for i := range entries {
			e := entries[i].expert
			sorted[off[e]] = entries[i]
			off[e]++
		}
		entries = sorted
	}

	// Capacity dropping per expert segment.
	retained := make([]pftEntry, 0, len(entries))
	dropped := r.S*k - len(entries) // negatives already dropped
	for lo := 0; lo < len(entries); {
		hi := lo
		for hi < len(entries) && entries[hi].expert == entries[lo].expert {
			hi++
		}
		seg := entries[lo:hi]
		limit := capFor(entries[lo].expert)
		if limit > 0 && len(seg) > limit {
			switch policy {
			case DropByCapacityWeight:
				// Keep the limit highest-weight entries (Listing 1 lines
				// 24-33), then restore flat order.
				idx := make([]int, len(seg))
				for i := range idx {
					idx[i] = i
				}
				sort.SliceStable(idx, func(a, b int) bool {
					if seg[idx[a]].weight != seg[idx[b]].weight {
						return seg[idx[a]].weight > seg[idx[b]].weight
					}
					return seg[idx[a]].flat < seg[idx[b]].flat
				})
				keep := make([]bool, len(seg))
				for _, i := range idx[:limit] {
					keep[i] = true
				}
				for i, e := range seg {
					if keep[i] {
						retained = append(retained, e)
					}
				}
			case DropNegativeThenPosition:
				// First-come-first-served: seg is already flat-ordered.
				retained = append(retained, seg[:limit]...)
			}
			dropped += len(seg) - limit
		} else {
			retained = append(retained, seg...)
		}
		lo = hi
	}

	p := &PFT{
		TokenIDs:        make([]int, len(retained)),
		ExpertIDs:       make([]int, len(retained)),
		CombineWeights:  make([]float32, len(retained)),
		TokensPerExpert: make([]int, numExperts),
		Dropped:         dropped,
	}
	for i, e := range retained {
		p.TokenIDs[i] = e.token
		p.ExpertIDs[i] = e.expert
		p.CombineWeights[i] = e.weight
		p.TokensPerExpert[e.expert]++
	}
	return p
}

// Validate checks the PFT's structural invariants: expert-major ordering,
// histogram consistency, and index ranges.
func (p *PFT) Validate(numTokens, numExperts, maxTokenCount int) error {
	if len(p.ExpertIDs) != len(p.TokenIDs) || len(p.CombineWeights) != len(p.TokenIDs) {
		return fmt.Errorf("moe: PFT ERI-array lengths disagree")
	}
	if len(p.TokensPerExpert) != numExperts {
		return fmt.Errorf("moe: TokensPerExpert has %d bins, want %d", len(p.TokensPerExpert), numExperts)
	}
	hist := make([]int, numExperts)
	prev := -1
	for i, e := range p.ExpertIDs {
		if e < 0 || e >= numExperts {
			return fmt.Errorf("moe: entry %d routed to expert %d outside range", i, e)
		}
		if e < prev {
			return fmt.Errorf("moe: PFT not expert-major at entry %d", i)
		}
		prev = e
		if tid := p.TokenIDs[i]; tid < 0 || tid >= numTokens {
			return fmt.Errorf("moe: entry %d token %d outside range", i, tid)
		}
		hist[e]++
	}
	for e, c := range hist {
		if c != p.TokensPerExpert[e] {
			return fmt.Errorf("moe: TokensPerExpert[%d]=%d but %d entries", e, p.TokensPerExpert[e], c)
		}
		if maxTokenCount > 0 && c > maxTokenCount {
			return fmt.Errorf("moe: expert %d holds %d > capacity %d", e, c, maxTokenCount)
		}
	}
	return nil
}

// ERIBytes returns the memory footprint of the ERI-arrays (int32 ids and
// counts, float32 weights), for activation accounting.
func (p *PFT) ERIBytes() int64 {
	return int64(len(p.TokenIDs))*(4+4+4) + int64(len(p.TokensPerExpert))*4
}

// ExpertSegments returns the start offset of each expert's contiguous
// segment in the buffer (exclusive prefix sums of TokensPerExpert).
func (p *PFT) ExpertSegments() []int {
	off := make([]int, len(p.TokensPerExpert))
	run := 0
	for e, c := range p.TokensPerExpert {
		off[e] = run
		run += c
	}
	return off
}
