// Package fault builds seeded, fully deterministic fault plans for the
// simulated X-MoE training stack and turns them into the runtime hooks
// internal/simrt consumes. The paper targets Frontier, where multi-day
// MoE jobs routinely lose nodes, pick up stragglers, and cross flaky
// links; this package models those four failure classes without
// sacrificing the repository's reproducibility contract: the same plan
// (same seed, same spec string) produces bit-identical fault schedules,
// traces, and post-recovery weights on every run.
//
// Fault classes:
//
//   - crash: a rank dies at a training step or at an absolute simulated
//     clock; peers unwind with simrt.ErrPeerFailed (never a deadlock).
//   - straggler: a rank's compute durations are scaled by a multiplier
//     for a window of steps.
//   - flaky: a collective on one rank times out and retries with
//     exponential backoff; the whole retry cost is charged to the
//     simulated clock (and, through BSP, to every peer).
//   - link: a link class loses bandwidth by a derate factor for a
//     window of steps (netsim.LinkDerate).
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// Crash kills a rank (KindCrash events with Step >= 0 fire at that
	// step's first operation; events with AtClock > 0 fire at the first
	// operation boundary at or after that absolute simulated time).
	Crash Kind = iota
	// Straggler scales a rank's compute durations by Scale.
	Straggler
	// Flaky charges a timeout-and-retry delay to one rank's next
	// collective in each armed step.
	Flaky
	// Link derates the bandwidth of a link class.
	Link
)

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	case Flaky:
		return "flaky"
	case Link:
		return "link"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one planned fault.
type Event struct {
	Kind Kind
	// Rank is the victim for Crash/Straggler/Flaky (ignored for Link).
	Rank int
	// Step is the training step at which the event arms; -1 for purely
	// clock-driven crashes.
	Step int
	// AtClock, for Crash, is the absolute simulated time of the failure
	// (seconds since training start). Zero means "at Step's first
	// operation".
	AtClock float64
	// ForSteps is the window length for Straggler/Flaky/Link events;
	// <= 0 means "until the end of the run".
	ForSteps int
	// Scale is the Straggler compute multiplier (> 1 slows the rank).
	Scale float64
	// Timeout, Retries, Backoff parameterise a Flaky collective: the
	// charged delay is Timeout * (1 + Backoff + Backoff^2 + ...) over
	// Retries attempts, i.e. the total time lost to timed-out tries.
	Timeout float64
	Retries int
	Backoff float64
	// Class and Derate parameterise a Link event.
	Class  topology.LinkClass
	Derate float64
}

// Delay returns the total simulated time a Flaky event charges: the sum
// of the timed-out attempts' timeouts under exponential backoff.
func (e Event) Delay() float64 {
	d, t := 0.0, e.Timeout
	for i := 0; i < e.Retries; i++ {
		d += t
		t *= e.Backoff
	}
	return d
}

// Plan is a deterministic fault schedule.
type Plan struct {
	Events []Event
	// Spares is the size of the hot-spare pool: idle ranks standing by
	// outside the training world. After a crash, recovery promotes up to
	// Spares of them into the dead ranks' slots, so the world can regrow
	// toward its original size instead of shrinking for the rest of the
	// run. Spec token: "spares:<n>". Spares are a pool, not named ranks —
	// promotion fills the lowest dead slots first.
	Spares int
}

// String renders the plan in the compact spec syntax ParsePlan accepts.
func (p Plan) String() string {
	parts := make([]string, 0, len(p.Events)+1)
	if p.Spares > 0 {
		parts = append(parts, fmt.Sprintf("spares:%d", p.Spares))
	}
	for _, e := range p.Events {
		switch e.Kind {
		case Crash:
			if e.AtClock > 0 {
				parts = append(parts, fmt.Sprintf("crash:r%d@t%g", e.Rank, e.AtClock))
			} else {
				parts = append(parts, fmt.Sprintf("crash:r%d@s%d", e.Rank, e.Step))
			}
		case Straggler:
			s := fmt.Sprintf("straggler:r%d@s%d:x%g", e.Rank, e.Step, e.Scale)
			if e.ForSteps > 0 {
				s += fmt.Sprintf(":n%d", e.ForSteps)
			}
			parts = append(parts, s)
		case Flaky:
			s := fmt.Sprintf("flaky:r%d@s%d:t%g", e.Rank, e.Step, e.Timeout)
			if e.Retries != 1 {
				s += fmt.Sprintf(":n%d", e.Retries)
			}
			if e.Backoff != 2 {
				s += fmt.Sprintf(":b%g", e.Backoff)
			}
			parts = append(parts, s)
		case Link:
			s := fmt.Sprintf("link:%s@s%d:x%g", linkName(e.Class), e.Step, e.Derate)
			if e.ForSteps != 1 {
				s += fmt.Sprintf(":n%d", e.ForSteps)
			}
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ",")
}

// linkName maps a class to its spec token.
func linkName(c topology.LinkClass) string {
	switch c {
	case topology.LinkLocal:
		return "local"
	case topology.LinkGCDPair:
		return "pair"
	case topology.LinkIntraNode:
		return "intra"
	case topology.LinkInterNode:
		return "inter"
	case topology.LinkCrossRack:
		return "rack"
	}
	return "?"
}

// parseLink is the inverse of linkName.
func parseLink(s string) (topology.LinkClass, error) {
	switch s {
	case "local":
		return topology.LinkLocal, nil
	case "pair":
		return topology.LinkGCDPair, nil
	case "intra":
		return topology.LinkIntraNode, nil
	case "inter":
		return topology.LinkInterNode, nil
	case "rack":
		return topology.LinkCrossRack, nil
	}
	return 0, fmt.Errorf("fault: unknown link class %q (want local|pair|intra|inter|rack)", s)
}

// ParsePlan parses the compact fault-spec syntax used by the -faults CLI
// flag: comma-separated events, each
//
//	crash:r<rank>@s<step>            crash at a step's first operation
//	crash:r<rank>@t<seconds>         crash at an absolute simulated time
//	straggler:r<rank>@s<step>:x<mul>[:n<steps>]
//	flaky:r<rank>@s<step>:t<timeout>[:n<retries>][:b<backoff>]
//	link:<class>@s<step>:x<derate>[:n<steps>]   class: local|pair|intra|inter|rack
//
// plus the plan-level token
//
//	spares:<n>                       hot-spare pool size (see Plan.Spares)
//
// e.g. "crash:r2@s3,straggler:r0@s0:x2,link:inter@s2:x4:n3,spares:1".
func ParsePlan(spec string) (Plan, error) {
	var plan Plan
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		fields := strings.Split(tok, ":")
		if len(fields) == 2 && fields[0] == "spares" {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("fault: bad spare count %q (want spares:<n>, n >= 0)", tok)
			}
			plan.Spares += n
			continue
		}
		if len(fields) < 2 {
			return Plan{}, fmt.Errorf("fault: bad event %q (want kind:target@when...)", tok)
		}
		kind, rest := fields[0], fields[1]
		at := strings.SplitN(rest, "@", 2)
		if len(at) != 2 {
			return Plan{}, fmt.Errorf("fault: event %q missing @when", tok)
		}
		e := Event{ForSteps: 1}
		// Target: rank (rN) or link class.
		if kind == "link" {
			class, err := parseLink(at[0])
			if err != nil {
				return Plan{}, err
			}
			e.Class = class
		} else {
			if !strings.HasPrefix(at[0], "r") {
				return Plan{}, fmt.Errorf("fault: event %q target must be r<rank>", tok)
			}
			r, err := strconv.Atoi(at[0][1:])
			if err != nil || r < 0 {
				return Plan{}, fmt.Errorf("fault: event %q has bad rank %q", tok, at[0])
			}
			e.Rank = r
		}
		// When: s<step> or (crash only) t<seconds>.
		switch {
		case strings.HasPrefix(at[1], "s"):
			st, err := strconv.Atoi(at[1][1:])
			if err != nil || st < 0 {
				return Plan{}, fmt.Errorf("fault: event %q has bad step %q", tok, at[1])
			}
			e.Step = st
		case strings.HasPrefix(at[1], "t") && kind == "crash":
			sec, err := strconv.ParseFloat(at[1][1:], 64)
			if err != nil || sec < 0 {
				return Plan{}, fmt.Errorf("fault: event %q has bad time %q", tok, at[1])
			}
			e.Step, e.AtClock = -1, sec
		default:
			return Plan{}, fmt.Errorf("fault: event %q has bad @when %q", tok, at[1])
		}
		// Kind-specific options.
		opts := fields[2:]
		switch kind {
		case "crash":
			e.Kind = Crash
			if len(opts) != 0 {
				return Plan{}, fmt.Errorf("fault: crash event %q takes no options", tok)
			}
		case "straggler":
			e.Kind, e.Scale, e.ForSteps = Straggler, 0, 0
			for _, o := range opts {
				switch {
				case strings.HasPrefix(o, "x"):
					v, err := strconv.ParseFloat(o[1:], 64)
					if err != nil || v <= 0 {
						return Plan{}, fmt.Errorf("fault: bad scale in %q", tok)
					}
					e.Scale = v
				case strings.HasPrefix(o, "n"):
					v, err := strconv.Atoi(o[1:])
					if err != nil || v < 1 {
						return Plan{}, fmt.Errorf("fault: bad window in %q", tok)
					}
					e.ForSteps = v
				default:
					return Plan{}, fmt.Errorf("fault: unknown option %q in %q", o, tok)
				}
			}
			if e.Scale == 0 {
				return Plan{}, fmt.Errorf("fault: straggler %q needs x<scale>", tok)
			}
		case "flaky":
			e.Kind, e.Retries, e.Backoff = Flaky, 1, 2
			for _, o := range opts {
				switch {
				case strings.HasPrefix(o, "t"):
					v, err := strconv.ParseFloat(o[1:], 64)
					if err != nil || v <= 0 {
						return Plan{}, fmt.Errorf("fault: bad timeout in %q", tok)
					}
					e.Timeout = v
				case strings.HasPrefix(o, "n"):
					v, err := strconv.Atoi(o[1:])
					if err != nil || v < 1 {
						return Plan{}, fmt.Errorf("fault: bad retries in %q", tok)
					}
					e.Retries = v
				case strings.HasPrefix(o, "b"):
					v, err := strconv.ParseFloat(o[1:], 64)
					if err != nil || v <= 0 {
						return Plan{}, fmt.Errorf("fault: bad backoff in %q", tok)
					}
					e.Backoff = v
				default:
					return Plan{}, fmt.Errorf("fault: unknown option %q in %q", o, tok)
				}
			}
			if e.Timeout == 0 {
				return Plan{}, fmt.Errorf("fault: flaky %q needs t<timeout>", tok)
			}
		case "link":
			e.Kind = Link
			for _, o := range opts {
				switch {
				case strings.HasPrefix(o, "x"):
					v, err := strconv.ParseFloat(o[1:], 64)
					if err != nil || v <= 1 {
						return Plan{}, fmt.Errorf("fault: bad derate in %q (want > 1)", tok)
					}
					e.Derate = v
				case strings.HasPrefix(o, "n"):
					v, err := strconv.Atoi(o[1:])
					if err != nil || v < 1 {
						return Plan{}, fmt.Errorf("fault: bad window in %q", tok)
					}
					e.ForSteps = v
				default:
					return Plan{}, fmt.Errorf("fault: unknown option %q in %q", o, tok)
				}
			}
			if e.Derate == 0 {
				return Plan{}, fmt.Errorf("fault: link %q needs x<derate>", tok)
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown kind %q in %q", kind, tok)
		}
		plan.Events = append(plan.Events, e)
	}
	return plan, nil
}

// PlanCrashes samples a deterministic crash schedule over a simulated
// horizon: failures arrive as a Poisson process with the given mean time
// between failures, each killing a uniformly chosen rank. The same
// (seed, world, horizon, mtbf) always produces the same schedule. Events
// are clock-driven (Step = -1) and sorted by time.
func PlanCrashes(seed uint64, world int, horizon, mtbf float64) Plan {
	var plan Plan
	if mtbf <= 0 || world < 1 || horizon <= 0 {
		return plan
	}
	rng := tensor.NewRNG(seed ^ 0xfa017a11)
	t := 0.0
	for {
		// Exponential inter-arrival via inverse CDF; 1-u keeps the
		// argument of log strictly positive.
		t += -mtbf * math.Log(1-rng.Float64())
		if t >= horizon {
			return plan
		}
		plan.Events = append(plan.Events, Event{
			Kind:    Crash,
			Rank:    rng.Intn(world),
			Step:    -1,
			AtClock: t,
		})
	}
}

// CrashTimes returns the absolute simulated times of the plan's
// clock-driven crashes, sorted ascending.
func (p Plan) CrashTimes() []float64 {
	var ts []float64
	for _, e := range p.Events {
		if e.Kind == Crash && e.AtClock > 0 {
			ts = append(ts, e.AtClock)
		}
	}
	sort.Float64s(ts)
	return ts
}

// Goodput is the fraction of wall-clock time spent on useful, retained
// training work: steps that survived into the final model divided by
// everything — lost (rolled-back) steps, checkpoint writes, recovery
// stalls included. 1 means no time was wasted.
func Goodput(useful, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return useful / wall
}

// YoungDaly returns the Young/Daly first-order optimum checkpoint
// interval sqrt(2 * delta * mtbf) for a per-checkpoint cost delta: the
// interval that balances checkpoint overhead against expected rework
// after a failure.
func YoungDaly(ckptCost, mtbf float64) float64 {
	if ckptCost <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * ckptCost * mtbf)
}

// Injector adapts a Plan to the simrt.Injector runtime hook. Arm is
// called once per training step, single-threaded, before Cluster.Run;
// during the Run each rank goroutine reads only its own per-rank slots,
// so the injector is race-free by construction (disjoint memory, no
// locks on the hot path).
type Injector struct {
	plan  Plan
	world int

	step    int
	elapsed float64 // simulated seconds before the armed step

	scale      []float64 // straggler multiplier per rank (1 = healthy)
	flakyDelay []float64 // pending one-shot collective delay per rank
	crashErr   []error   // armed crash per rank (nil = none)
	crashAt    []float64 // within-step clock threshold for armed crashes
	crashed    []bool    // set by the victim's goroutine when it fires
}

// NewInjector builds an injector for a world of the given size. Ranks in
// the plan outside [0, world) are ignored (a shrunk post-recovery world
// simply outlives events aimed at dead ranks).
func NewInjector(plan Plan, world int) *Injector {
	return &Injector{
		plan:       plan,
		world:      world,
		scale:      make([]float64, world),
		flakyDelay: make([]float64, world),
		crashErr:   make([]error, world),
		crashAt:    make([]float64, world),
		crashed:    make([]bool, world),
	}
}

// active reports whether a windowed event covers the given step.
func (e Event) active(step int) bool {
	if e.Step < 0 || step < e.Step {
		return false
	}
	return e.ForSteps <= 0 || step < e.Step+e.ForSteps
}

// Arm prepares the injector for one training step: step is the global
// step index and elapsed the simulated seconds accumulated before it
// (each Cluster.Run starts rank clocks at zero, so clock-driven crashes
// are rebased into the step's local time frame). Must be called with no
// Run in flight.
func (inj *Injector) Arm(step int, elapsed float64) {
	inj.step, inj.elapsed = step, elapsed
	for r := 0; r < inj.world; r++ {
		inj.scale[r] = 1
		inj.flakyDelay[r] = 0
		inj.crashErr[r] = nil
		inj.crashAt[r] = 0
	}
	for _, e := range inj.plan.Events {
		switch e.Kind {
		case Straggler:
			if e.active(step) && e.Rank < inj.world {
				inj.scale[e.Rank] *= e.Scale
			}
		case Flaky:
			if e.active(step) && e.Rank < inj.world {
				inj.flakyDelay[e.Rank] += e.Delay()
			}
		case Crash:
			if e.Rank >= inj.world || inj.crashed[e.Rank] {
				continue
			}
			if e.Step == step && e.AtClock == 0 {
				inj.crashErr[e.Rank] = fmt.Errorf("fault: planned crash of rank %d at step %d: %w",
					e.Rank, step, simrt.ErrRankCrashed)
			} else if e.Step < 0 && e.AtClock > elapsed {
				// Clock-driven: arm with the within-step threshold. It
				// fires only if this step actually reaches it; otherwise
				// the next Arm re-arms it with a smaller offset.
				if inj.crashErr[e.Rank] == nil || e.AtClock-elapsed < inj.crashAt[e.Rank] {
					inj.crashErr[e.Rank] = fmt.Errorf("fault: planned crash of rank %d at t=%.6fs: %w",
						e.Rank, e.AtClock, simrt.ErrRankCrashed)
					inj.crashAt[e.Rank] = e.AtClock - elapsed
				}
			} else if e.Step < 0 && e.AtClock <= elapsed {
				// Overdue (the previous step ended past the crash time
				// without an operation boundary hitting it): fire at this
				// step's first operation.
				inj.crashErr[e.Rank] = fmt.Errorf("fault: planned crash of rank %d at t=%.6fs: %w",
					e.Rank, e.AtClock, simrt.ErrRankCrashed)
				inj.crashAt[e.Rank] = 0
			}
		}
	}
}

// LinkDerates returns the bandwidth derates active at the given step,
// ready to assign to netsim's Network.LinkDerate (nil when all links are
// healthy). Overlapping events on one class compound multiplicatively.
func (inj *Injector) LinkDerates(step int) map[topology.LinkClass]float64 {
	var out map[topology.LinkClass]float64
	for _, e := range inj.plan.Events {
		if e.Kind != Link || !e.active(step) {
			continue
		}
		if out == nil {
			out = map[topology.LinkClass]float64{}
		}
		if cur, ok := out[e.Class]; ok {
			out[e.Class] = cur * e.Derate
		} else {
			out[e.Class] = e.Derate
		}
	}
	return out
}

// CrashedRanks returns the ranks whose planned crashes have fired so
// far, sorted. Call only between Runs.
func (inj *Injector) CrashedRanks() []int {
	var out []int
	for r, c := range inj.crashed {
		if c {
			out = append(out, r)
		}
	}
	return out
}

// ComputeScale implements simrt.Injector.
func (inj *Injector) ComputeScale(rank int) float64 {
	if rank >= inj.world {
		return 1
	}
	return inj.scale[rank]
}

// CollectiveDelay implements simrt.Injector: the armed flaky delay is
// charged to the rank's first matching collective of the step.
func (inj *Injector) CollectiveDelay(rank int, name string, clock float64) float64 {
	if rank >= inj.world || inj.flakyDelay[rank] == 0 {
		return 0
	}
	d := inj.flakyDelay[rank]
	inj.flakyDelay[rank] = 0
	return d
}

// CrashError implements simrt.Injector.
func (inj *Injector) CrashError(rank int, clock float64) error {
	if rank >= inj.world {
		return nil
	}
	err := inj.crashErr[rank]
	if err == nil || clock < inj.crashAt[rank] {
		return nil
	}
	inj.crashed[rank] = true
	return err
}
