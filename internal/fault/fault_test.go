package fault

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/topology"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "crash:r2@s3,crash:r0@t1.5,straggler:r1@s0:x2,flaky:r3@s1:t0.01,link:inter@s2:x4," +
		"straggler:r2@s1:x1.5:n3,flaky:r0@s2:t0.02:n2:b3,link:rack@s0:x8:n2"
	plan, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 8 {
		t.Fatalf("parsed %d events, want 8", len(plan.Events))
	}
	if got := plan.String(); got != spec {
		t.Fatalf("round-trip mismatch:\n got %q\nwant %q", got, spec)
	}
	e := plan.Events[1]
	if e.Kind != Crash || e.Step != -1 || e.AtClock != 1.5 {
		t.Fatalf("clock crash parsed wrong: %+v", e)
	}
	if s := plan.Events[2]; s.Kind != Straggler || s.Scale != 2 || s.ForSteps != 0 {
		t.Fatalf("straggler parsed wrong: %+v (persistent window expected)", s)
	}
	if f := plan.Events[3]; f.Kind != Flaky || f.Retries != 1 || f.Backoff != 2 {
		t.Fatalf("flaky defaults wrong: %+v", f)
	}
	if l := plan.Events[4]; l.Kind != Link || l.Class != topology.LinkInterNode || l.ForSteps != 1 {
		t.Fatalf("link parsed wrong: %+v", l)
	}
	if p, err := ParsePlan("  "); err != nil || len(p.Events) != 0 {
		t.Fatalf("blank spec must parse to empty plan, got %v / %v", p, err)
	}
}

func TestParsePlanRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"crash",                    // no target
		"crash:2@s1",               // rank missing r prefix
		"crash:r-1@s1",             // negative rank
		"crash:r0@x5",              // bad when
		"crash:r0@s1:x2",           // crash takes no options
		"straggler:r0@s1",          // missing scale
		"straggler:r0@t1.5:x2",     // @t only for crash
		"straggler:r0@s1:x0",       // non-positive scale
		"flaky:r0@s1",              // missing timeout
		"flaky:r0@s1:t0",           // non-positive timeout
		"link:fast@s1:x2",          // unknown class
		"link:inter@s1",            // missing derate
		"link:inter@s1:x1",         // derate must exceed 1
		"warp:r0@s1",               // unknown kind
		"straggler:r0@s1:x2:q3",    // unknown option
		"crash:r0@s1,,crash:r1@s2", // empty event
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestPlanCrashesDeterministicAndPoisson(t *testing.T) {
	a := PlanCrashes(9, 8, 1000, 50)
	b := PlanCrashes(9, 8, 1000, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical crash schedules")
	}
	c := PlanCrashes(10, 8, 1000, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should give different schedules")
	}
	// ~horizon/mtbf arrivals in expectation; allow a wide band.
	if n := len(a.Events); n < 5 || n > 60 {
		t.Fatalf("got %d crashes over 20 expected MTBFs", n)
	}
	times := a.CrashTimes()
	if len(times) != len(a.Events) {
		t.Fatalf("CrashTimes lost events: %d vs %d", len(times), len(a.Events))
	}
	for i, ts := range times {
		if ts <= 0 || ts >= 1000 {
			t.Fatalf("crash time %v outside horizon", ts)
		}
		if i > 0 && ts < times[i-1] {
			t.Fatal("CrashTimes must be sorted")
		}
	}
	for _, e := range a.Events {
		if e.Rank < 0 || e.Rank >= 8 {
			t.Fatalf("victim %d outside world", e.Rank)
		}
	}
	if p := PlanCrashes(9, 8, 1000, 0); len(p.Events) != 0 {
		t.Fatal("mtbf<=0 must plan no crashes")
	}
}

func TestFlakyDelayBackoffSum(t *testing.T) {
	e := Event{Kind: Flaky, Timeout: 0.01, Retries: 3, Backoff: 2}
	if got, want := e.Delay(), 0.01*(1+2+4); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
}

func TestYoungDalyAndGoodput(t *testing.T) {
	if got, want := YoungDaly(2, 100), 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("YoungDaly(2,100) = %v, want %v", got, want)
	}
	if YoungDaly(0, 100) != 0 || YoungDaly(1, 0) != 0 {
		t.Fatal("degenerate Young/Daly inputs must return 0")
	}
	if got := Goodput(80, 100); got != 0.8 {
		t.Fatalf("Goodput = %v", got)
	}
	if Goodput(1, 0) != 0 {
		t.Fatal("zero wall-clock goodput must be 0")
	}
}

// TestInjectorArmWindows pins the per-step arming: stragglers and flaky
// delays apply only inside their windows, step-crashes only at their
// step, and clock-crashes rebase into the step's local time frame.
func TestInjectorArmWindows(t *testing.T) {
	plan, err := ParsePlan("straggler:r1@s2:x3:n2,flaky:r0@s1:t0.5,crash:r2@s4")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, 4)

	inj.Arm(1, 0)
	if inj.ComputeScale(1) != 1 {
		t.Fatal("straggler must not fire before its window")
	}
	if d := inj.CollectiveDelay(0, "a2a", 0); d != 0.5 {
		t.Fatalf("flaky delay = %v, want 0.5", d)
	}
	if d := inj.CollectiveDelay(0, "a2a", 0); d != 0 {
		t.Fatal("flaky delay must be consumed once per step")
	}
	if inj.CrashError(2, 0) != nil {
		t.Fatal("crash must wait for its step")
	}

	inj.Arm(2, 10)
	if inj.ComputeScale(1) != 3 {
		t.Fatal("straggler window must be active at step 2")
	}
	inj.Arm(4, 20)
	if inj.ComputeScale(1) != 1 {
		t.Fatal("straggler window must have closed by step 4")
	}
	err4 := inj.CrashError(2, 0)
	if !errors.Is(err4, simrt.ErrRankCrashed) {
		t.Fatalf("step-4 crash must fire: %v", err4)
	}
	if got := inj.CrashedRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CrashedRanks = %v", got)
	}
	// Once crashed, it stays dead but never re-arms.
	inj.Arm(5, 30)
	if inj.CrashError(2, 0) != nil {
		t.Fatal("a consumed crash must not re-arm")
	}
}

// TestInjectorClockCrashRebasing: a clock-driven crash fires in the step
// whose local clock reaches it, with the elapsed offset subtracted.
func TestInjectorClockCrashRebasing(t *testing.T) {
	plan, _ := ParsePlan("crash:r0@t5.0")
	inj := NewInjector(plan, 2)
	inj.Arm(0, 0)
	if inj.CrashError(0, 4.9) != nil {
		t.Fatal("crash at t=5 must not fire at local clock 4.9, elapsed 0")
	}
	if inj.CrashError(0, 5.1) == nil {
		t.Fatal("crash must fire once the local clock passes it")
	}
	// Fresh injector: step boundary passed the crash time without hitting
	// it (elapsed already beyond) -> overdue, fires immediately.
	inj2 := NewInjector(plan, 2)
	inj2.Arm(3, 6.0)
	if inj2.CrashError(0, 0) == nil {
		t.Fatal("overdue clock crash must fire at the next step's first op")
	}
}

func TestInjectorLinkDerates(t *testing.T) {
	plan, _ := ParsePlan("link:inter@s2:x4:n2,link:inter@s3:x2,link:rack@s0:x8")
	inj := NewInjector(plan, 4)
	if d := inj.LinkDerates(0); d[topology.LinkInterNode] != 0 || d[topology.LinkCrossRack] != 8 {
		t.Fatalf("step 0 derates = %v", d)
	}
	if d := inj.LinkDerates(1); d != nil {
		t.Fatalf("all one-step windows closed at step 1, got %v", d)
	}
	if d := inj.LinkDerates(3); d[topology.LinkInterNode] != 8 { // 4 * 2 compound
		t.Fatalf("overlapping derates must compound: %v", d)
	}
	if d := inj.LinkDerates(4); d[topology.LinkInterNode] != 0 {
		t.Fatalf("expired window still derates: %v", d)
	}
	empty := NewInjector(Plan{}, 4)
	if d := empty.LinkDerates(0); d != nil {
		t.Fatalf("healthy plan must return nil derates, got %v", d)
	}
}

// TestInjectorDrivesSimrtCluster is the integration check: a planned
// crash injected through the real runtime aborts the victim with
// ErrRankCrashed and every survivor with ErrPeerFailed, twice in a row
// with identical outcomes (the determinism contract).
func TestInjectorDrivesSimrtCluster(t *testing.T) {
	run := func() (error, []int) {
		plan, err := ParsePlan("crash:r1@s0,straggler:r0@s0:x2")
		if err != nil {
			t.Fatal(err)
		}
		inj := NewInjector(plan, 4)
		c := simrt.NewCluster(topology.Frontier(), 4, 7)
		c.Net.DisableCongestion = true
		c.Inject = inj
		g := c.WorldGroup()
		inj.Arm(0, 0)
		runErr := c.Run(func(r *simrt.Rank) error {
			r.Compute("gemm", 0.01)
			r.AllReduce(g, "ar", nil, 4)
			return nil
		})
		return runErr, inj.CrashedRanks()
	}
	err1, crashed1 := run()
	err2, crashed2 := run()
	if !errors.Is(err1, simrt.ErrRankCrashed) || !errors.Is(err1, simrt.ErrPeerFailed) {
		t.Fatalf("want crash + peer-failed, got: %v", err1)
	}
	// Which abort path each survivor takes (pre-entry check vs rendezvous
	// wakeup) depends on goroutine scheduling, so error text varies; the
	// outcome set — who crashed, who aborted — must not.
	if !errors.Is(err2, simrt.ErrRankCrashed) || !errors.Is(err2, simrt.ErrPeerFailed) {
		t.Fatalf("second run must reproduce the outcome: %v", err2)
	}
	if !reflect.DeepEqual(crashed1, crashed2) || len(crashed1) != 1 || crashed1[0] != 1 {
		t.Fatalf("crashed ranks %v / %v, want [1] both times", crashed1, crashed2)
	}
}

// TestPermanentStragglerWindow: omitting :n<steps> makes a straggler
// permanent — the scale applies from its start step to the end of the
// run, surviving arbitrarily many re-arms.
func TestPermanentStragglerWindow(t *testing.T) {
	plan, err := ParsePlan("straggler:r1@s3:x2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, 4)
	for _, step := range []int{0, 2} {
		inj.Arm(step, 0)
		if s := inj.ComputeScale(1); s != 1 {
			t.Fatalf("step %d: scale %v before the window opens, want 1", step, s)
		}
	}
	for _, step := range []int{3, 4, 100, 100000} {
		inj.Arm(step, 0)
		if s := inj.ComputeScale(1); s != 2 {
			t.Fatalf("step %d: scale %v, want the permanent 2", step, s)
		}
	}
}

// TestOverlappingWindowsCompound: two straggler windows on the same rank
// multiply while both are open, and a link derate overlapping them is
// reported independently — compute faults never leak into link state or
// vice versa. Overlapping derates on one class also compound.
func TestOverlappingWindowsCompound(t *testing.T) {
	plan, err := ParsePlan("straggler:r1@s3:x2,straggler:r1@s4:x3:n2,link:inter@s3:x4:n3,link:inter@s4:x2")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, 4)

	wantScale := map[int]float64{2: 1, 3: 2, 4: 6, 5: 6, 6: 2}
	wantInter := map[int]float64{2: 0, 3: 4, 4: 8, 5: 4, 6: 0}
	for step := 2; step <= 6; step++ {
		inj.Arm(step, 0)
		if s := inj.ComputeScale(1); s != wantScale[step] {
			t.Errorf("step %d: compute scale %v, want %v", step, s, wantScale[step])
		}
		d := inj.LinkDerates(step)
		if got := d[topology.LinkInterNode]; got != wantInter[step] {
			t.Errorf("step %d: inter derate %v, want %v", step, got, wantInter[step])
		}
		if wantInter[step] == 0 && d != nil {
			t.Errorf("step %d: derate map %v, want nil when all links are healthy", step, d)
		}
		if s := inj.ComputeScale(0); s != 1 {
			t.Errorf("step %d: rank 0 scale %v, the faults target rank 1 only", step, s)
		}
	}
}

// TestParsePlanSpares: the plan-level spares:<n> token sizes the
// hot-spare pool, accumulates across repeats, round-trips through
// String, and rejects malformed counts.
func TestParsePlanSpares(t *testing.T) {
	plan, err := ParsePlan("spares:2,crash:r1@s3")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spares != 2 || len(plan.Events) != 1 {
		t.Fatalf("got spares %d with %d events, want 2 and 1", plan.Spares, len(plan.Events))
	}
	if got, want := plan.String(), "spares:2,crash:r1@s3"; got != want {
		t.Fatalf("round-trip %q, want %q", got, want)
	}
	if p2, err := ParsePlan(plan.String()); err != nil || p2.Spares != 2 {
		t.Fatalf("re-parse: %v spares %d", err, p2.Spares)
	}
	if p, err := ParsePlan("spares:1,spares:2"); err != nil || p.Spares != 3 {
		t.Fatalf("repeat tokens must accumulate: %v spares %d, want 3", err, p.Spares)
	}
	if p, err := ParsePlan("crash:r0@s1"); err != nil || p.Spares != 0 {
		t.Fatalf("no token means no spares: %v spares %d", err, p.Spares)
	}
	for _, bad := range []string{"spares:-1", "spares:x", "spares:", "spares:1.5"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}
