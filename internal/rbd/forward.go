package rbd

import (
	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// LayerResult is moe.LayerResult plus the saved hierarchical exchange
// state Backward consumes (nil unless opts.SaveForBackward).
type LayerResult struct {
	moe.LayerResult
	State *FwdState
}

// Forward runs a complete X-MoE MoE layer with RBD transport: gating and
// PFT construction as in the padding-free pipeline (moe.PFTForward), but
// with dispatch and combine routed through the hierarchical
// redundancy-bypassing stages instead of the flat uneven all-to-all.
// With opts.SaveForBackward the result carries the FwdState Backward
// needs — the dispatch geometry always, plus the expert-FFN intermediates
// in numeric mode.
func Forward(r *simrt.Rank, d *Dispatcher, cfg moe.Config, s int, x *tensor.Tensor,
	routing moe.Routing, params *moe.ExpertParams, pilotRNG *tensor.RNG, opts moe.PipelineOpts) LayerResult {

	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	mem := &r.Dev().Mem
	comp := r.C.Comp

	// Gate + PFT construction (identical to the PFT pipeline).
	gateTime := comp.GEMM(s, h, cfg.NumExperts) +
		comp.MemBoundN(perfmodel.ClassTriton, 6,
			int64(s*cfg.NumExperts)*elem+int64(s*cfg.TopK)*24)
	r.Compute(moe.StageGate, gateTime)
	pft := moe.RoutedPFT(routing, cfg, s, opts)
	b := pft.B()
	mem.Alloc("eri", pft.ERIBytes())

	// Dispatch buffer gather.
	r.Compute(moe.StageDispatch, comp.MemBound(perfmodel.ClassTriton, 2*int64(b)*int64(h)*elem))
	var dispIn *tensor.Tensor
	if opts.Numeric {
		dispIn = kernels.Gather(x, pft.TokenIDs)
	}
	mem.Alloc("dispatch_in", int64(b)*int64(h)*elem)

	// RBD dispatch (stages 0-2 + expert input reconstruction). The
	// chunked overlap mode splits the inter-node pilot exchanges so they
	// hide behind the adjacent compute AND interleaves the expert GEMMs
	// with the intra-node S2/C2 exchanges (see overlap.go): pilot-row
	// GEMMs run while S2 is in flight, the C2 return leaves non-blocking
	// under the pilot-scaling merge. Output is bit-identical either way.
	rbdOpts := Opts{Numeric: opts.Numeric, OverlapChunks: opts.OverlapChunks, Save: opts.SaveForBackward}
	if rbdOpts.chunks() > 1 {
		out, bExp, ost := forwardOverlap(r, d, cfg, s, pft, dispIn, params, pilotRNG, rbdOpts)
		if !opts.RetainActivations {
			mem.Free("eri", pft.ERIBytes())
			mem.Free("dispatch_in", int64(b)*int64(h)*elem)
			mem.Free("A0_interm", int64(bExp)*int64(f)*elem)
			mem.Free("A1_interm", int64(bExp)*int64(f)*elem)
		}
		res := LayerResult{LayerResult: moe.LayerResult{
			Output:       out,
			PFT:          pft,
			RoutedTokens: b,
			RecvTokens:   bExp,
			Dropped:      pft.Dropped,
		}}
		if ost.save != nil {
			ost.save.S = s
			res.State = ost.save
		}
		return res
	}
	st, expertIn := d.Dispatch(r, pft, dispIn, pilotRNG, rbdOpts)

	// Sequential GEMM experts over the reconstructed uneven segments.
	bExp := 0
	for _, c := range st.RowsPerLE {
		bExp += c
	}
	expertTime := comp.SequentialGEMM(st.RowsPerLE, h, f) +
		comp.SequentialGEMM(st.RowsPerLE, f, h) +
		comp.MemBound(perfmodel.ClassTriton, 2*int64(bExp)*int64(f)*elem)
	r.Compute(moe.StageExperts, expertTime)
	mem.Alloc("A0_interm", int64(bExp)*int64(f)*elem)
	mem.Alloc("A1_interm", int64(bExp)*int64(f)*elem)
	var expertOut *tensor.Tensor
	if opts.Numeric {
		pool := r.Pool()
		interm := pool.Get(bExp, f)
		kernels.SequentialGEMMInto(interm, expertIn, st.RowsPerLE, params.W1)
		hidAct := interm
		if st.save != nil {
			// Backward needs both the pre-activation (GeLU') and the
			// activated hidden buffer (dW2 operand): keep interm as the
			// pre-activation and GeLU a copy, as PFTForward does.
			hidAct = pool.Get(bExp, f)
			hidAct.Copy(interm)
		}
		tensor.GeLU(hidAct)
		expertOut = pool.Get(bExp, h)
		kernels.SequentialGEMMInto(expertOut, hidAct, st.RowsPerLE, params.W2)
		if st.save != nil {
			st.save.ExpertIn = expertIn
			st.save.HidPre = interm
			st.save.HidAct = hidAct
		} else {
			pool.PutAll(expertIn, interm)
		}
	}

	// RBD combine (replica gather, merge, pilot return, reconstruction).
	out := d.Combine(r, st, expertOut, s, rbdOpts)
	r.Pool().Put(expertOut)

	if !opts.RetainActivations {
		mem.Free("eri", pft.ERIBytes())
		mem.Free("dispatch_in", int64(b)*int64(h)*elem)
		mem.Free("A0_interm", int64(bExp)*int64(f)*elem)
		mem.Free("A1_interm", int64(bExp)*int64(f)*elem)
	}

	res := LayerResult{LayerResult: moe.LayerResult{
		Output:       out,
		PFT:          pft,
		RoutedTokens: b,
		RecvTokens:   bExp,
		Dropped:      pft.Dropped,
	}}
	if st.save != nil {
		st.save.S = s
		res.State = st.save
	}
	return res
}
