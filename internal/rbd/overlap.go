package rbd

// Expert-GEMM comm/compute overlap for the RBD transport. The original
// chunked mode (PR 2) only overlapped the inter-node S1/C1 exchanges with
// the small instantiation/merge passes; the expert GEMMs — the bulk of
// the layer's compute — ran strictly between the exchanges, which is why
// RBD's overlap win stalled at ~1.02x. This path restructures the layer
// around the observation that the expert input splits into two
// independently computable row groups:
//
//   - Pilot rows arrive with Stage 1 and are local before Stage 2 even
//     starts, so their W1/GeLU/W2 GEMMs run while the Stage-2 replica
//     exchange is in flight (dispatch side).
//   - On the combine side the replica outputs are exactly the C2 payload:
//     C2 is issued non-blocking as soon as the replica GEMMs finish, and
//     the pilot-scaling half of the merge runs while it flies; the
//     remaining per-chunk replica accumulations then overlap the chunked
//     C1 pilot return as before.
//
// Numeric output stays bit-identical to the blocking path: the expert FFN
// is row-independent (splitting pilot/replica rows into separate GEMM
// launches never changes a row's arithmetic), every output row is
// scattered to the exact position the blocking path uses, and the merge
// keeps the blocking order per pilot row — scaling first, then that row's
// replica accumulations in (slot, pos) order.

import (
	"fmt"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// IssueS2 stages the replica rows and issues the Stage-2 intra-node
// exchange non-blocking, recording the handle in the state. Must be
// called after DispatchPilots; PilotInput and the pilot GEMMs then run
// while the exchange is in flight, and FinishS2 collects it.
func (d *Dispatcher) IssueS2(r *simrt.Rank, st *State, opts Opts) {
	s2Send := d.stageReplicas(r, st, opts)
	st.s2Handle = r.AlltoAllVAsync(st.nodeGroup, StageS2A2A, s2Send)
}

// PilotInput reconstructs the pilot share of the expert input — rows
// grouped per local expert, each le's rows in (source, position) order,
// exactly their order within the blocking path's interleaved buffer —
// and records the absolute pilot-buffer row of each, which the combine
// needs to scatter the pilot outputs back. Must be called after IssueS2
// (the staging reads the pilot payload this call recycles).
func (d *Dispatcher) PilotInput(r *simrt.Rank, st *State, opts Opts) *tensor.Tensor {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	comp := r.C.Comp

	nPilot := 0
	for _, c := range st.PilotRowsPerLE {
		nPilot += c
	}
	st.pilotAbs = make([]int, 0, nPilot)
	// posOfLE[src] walks src's part positions as le ascends.
	posOfLE := make([]int, p)
	for le := 0; le < d.EPR; le++ {
		for src := 0; src < p; src++ {
			c := st.recvPilotCounts[src][le]
			for i := 0; i < c; i++ {
				st.pilotAbs = append(st.pilotAbs, st.pilotPartOff[src]+posOfLE[src]+i)
			}
			posOfLE[src] += c
		}
	}
	r.Compute(StageReconstruct, comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilot)*int64(h)*elem))

	var pilotIn *tensor.Tensor
	if opts.Numeric {
		pilotIn = r.Pool().Get(nPilot, h)
		for i, abs := range st.pilotAbs {
			copy(pilotIn.Row(i), st.pilotRows.Row(abs))
		}
		// pilotRows is fully consumed: replica staging (IssueS2) and the
		// pilot rows just copied.
		r.Pool().Put(st.pilotRows)
		st.pilotRows = nil
	}
	return pilotIn
}

// FinishS2 waits for the in-flight Stage-2 exchange and reconstructs the
// replica share of the expert input, grouped per local expert in the
// blocking path's (part, position) order. It also completes RowsPerLE for
// reporting.
func (d *Dispatcher) FinishS2(r *simrt.Rank, st *State, opts Opts) *tensor.Tensor {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	me := d.EP.IndexOf(r.ID)
	comp := r.C.Comp
	mem := &r.Dev().Mem

	s2Recv := st.s2Handle.Wait()
	st.s2Handle = nil
	nodeSize := st.nodeGroup.Size()
	st.s2RecvCount = make([]int, nodeSize)
	st.s2RecvMeta = make([][]replicaMeta, nodeSize)
	nReplicaRows := 0
	for src, part := range s2Recv {
		m := part.Meta.([]replicaMeta)
		st.s2RecvMeta[src] = m
		st.s2RecvCount[src] = len(m)
		nReplicaRows += len(m)
	}
	mem.Alloc("rbd_s2_recv", int64(nReplicaRows)*int64(h)*elem)

	st.ReplicaRowsPerLE = make([]int, d.EPR)
	for src := range s2Recv {
		for _, rm := range st.s2RecvMeta[src] {
			le := rm.expert - me*d.EPR
			if le < 0 || le >= d.EPR {
				panic(fmt.Sprintf("rbd: stage-2 replica for expert %d landed on wrong rank", rm.expert))
			}
			st.ReplicaRowsPerLE[le]++
		}
	}
	st.RowsPerLE = make([]int, d.EPR)
	totalRows := 0
	for le := 0; le < d.EPR; le++ {
		st.RowsPerLE[le] = st.PilotRowsPerLE[le] + st.ReplicaRowsPerLE[le]
		totalRows += st.RowsPerLE[le]
	}
	mem.Alloc("rbd_expert_in", int64(totalRows)*int64(h)*elem)

	// Replica rows grouped per le, (part, pos) ascending within each —
	// the blocking buffer's replica order.
	st.replicaRef = make([]rowRef, 0, nReplicaRows)
	refOff := make([]int, d.EPR+1)
	for le := 0; le < d.EPR; le++ {
		refOff[le+1] = refOff[le] + st.ReplicaRowsPerLE[le]
	}
	st.replicaRef = st.replicaRef[:nReplicaRows]
	cursor := make([]int, d.EPR)
	for src := range s2Recv {
		for pos, rm := range st.s2RecvMeta[src] {
			le := rm.expert - me*d.EPR
			st.replicaRef[refOff[le]+cursor[le]] = rowRef{part: src, pos: pos}
			cursor[le]++
		}
	}
	r.Compute(StageReconstruct, comp.MemBound(perfmodel.ClassTriton, 2*int64(nReplicaRows)*int64(h)*elem))

	var replicaIn *tensor.Tensor
	if opts.Numeric {
		replicaIn = r.Pool().Get(nReplicaRows, h)
		for i, ref := range st.replicaRef {
			copy(replicaIn.Row(i), s2Recv[ref.part].Data[ref.pos*h:(ref.pos+1)*h])
		}
	}
	return replicaIn
}

// CombineOverlap reverses RBD with the combine-side overlap: the replica
// outputs (the C2 payload) leave non-blocking immediately, the pilot
// scaling runs while the exchange flies, and the per-chunk replica
// accumulations overlap the chunked C1 pilot return. pilotOut and
// replicaOut are the le-major expert outputs produced from PilotInput /
// FinishS2 buffers.
func (d *Dispatcher) CombineOverlap(r *simrt.Rank, st *State, pilotOut, replicaOut *tensor.Tensor, s int, opts Opts) *tensor.Tensor {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	comp := r.C.Comp
	mem := &r.Dev().Mem
	chunks := opts.chunks()
	nodeGroup := st.nodeGroup

	// Scatter the le-major outputs back to absolute pilot rows and
	// Stage-2 part buffers (the blocking path's expertOut split, same
	// uncharged staging pass).
	var pilotAbsOut *tensor.Tensor
	replicaParts := make([][]float32, nodeGroup.Size())
	if opts.Numeric {
		pilotAbsOut = r.Pool().Get(st.pilotRowsTotal, h)
		for i, abs := range st.pilotAbs {
			copy(pilotAbsOut.Row(abs), pilotOut.Row(i))
		}
		for slot := range replicaParts {
			replicaParts[slot] = make([]float32, st.s2RecvCount[slot]*h)
		}
		for i, ref := range st.replicaRef {
			copy(replicaParts[ref.part][ref.pos*h:(ref.pos+1)*h], replicaOut.Row(i))
		}
		r.Pool().PutAll(pilotOut, replicaOut)
	}

	// --- Combine stage 2 (intra-node), non-blocking -----------------------
	s2Send := make([]simrt.Part, nodeGroup.Size())
	for slot := 0; slot < nodeGroup.Size(); slot++ {
		part := simrt.Part{Bytes: int64(st.s2RecvCount[slot]) * int64(h) * elem}
		if opts.Numeric {
			part.Data = replicaParts[slot]
		}
		s2Send[slot] = part
	}
	c2Handle := r.AlltoAllVAsync(nodeGroup, StageC2A2A, s2Send)

	// --- Pilot scaling while C2 is in flight -------------------------------
	// Each pilot row's scaling precedes its replica accumulations in the
	// blocking path too, so hoisting the whole scaling pass preserves the
	// per-row arithmetic order.
	var merged *tensor.Tensor
	if opts.Numeric {
		merged = tensor.New(st.pilotRowsTotal, h)
	}
	mem.Alloc("rbd_merged", int64(st.pilotRowsTotal)*int64(h)*elem)
	if opts.Numeric {
		for src := 0; src < p; src++ {
			for pos, w := range st.recvPilotW[src] {
				abs := st.pilotPartOff[src] + pos
				out := pilotAbsOut.Row(abs)
				dst := merged.Row(abs)
				for j, v := range out {
					dst[j] = w * v
				}
			}
		}
	}
	r.Compute(StageCMerge, comp.MemBound(perfmodel.ClassTriton, 2*int64(st.pilotRowsTotal)*int64(h)*elem))

	s2Back := c2Handle.Wait()
	if st.save != nil && opts.Numeric {
		// Backward dots the merged-row gradients against these (the
		// replica return payloads are sender-fresh, the abs-indexed pilot
		// outputs become FwdState.PilotOut).
		st.save.S2Back = make([][]float32, nodeGroup.Size())
		for slot := range st.save.S2Back {
			st.save.S2Back[slot] = s2Back[slot].Data
		}
		st.save.PilotOut = pilotAbsOut
	} else if opts.Numeric {
		r.Pool().Put(pilotAbsOut)
	}

	// --- Per-chunk replica accumulation + chunked C1 pilot return ----------
	// Work lists per chunk preserve (slot, pos) order inside each chunk,
	// as the pre-overlap chunked merge did.
	type mergeRef struct{ slot, pos int }
	chunkOf := make([]int, st.pilotRowsTotal)
	for src := 0; src < p; src++ {
		n := len(st.recvPilotW[src])
		for c := 0; c < chunks; c++ {
			clo, chi := simrt.ChunkRange(n, chunks, c)
			for pos := clo; pos < chi; pos++ {
				chunkOf[st.pilotPartOff[src]+pos] = c
			}
		}
	}
	mergeByChunk := make([][]mergeRef, chunks)
	for slot, sent := range st.s2SentByMember {
		for pos, sRec := range sent {
			c := chunkOf[sRec.pilotAbs]
			mergeByChunk[c] = append(mergeByChunk[c], mergeRef{slot: slot, pos: pos})
		}
	}

	c1H := make([]*simrt.CommHandle, chunks)
	sendFlat := make([]simrt.Part, chunks*p)
	for c := 0; c < chunks; c++ {
		if opts.Numeric {
			for _, mr := range mergeByChunk[c] {
				sRec := st.s2SentByMember[mr.slot][mr.pos]
				src := s2Back[mr.slot].Data[mr.pos*h : (mr.pos+1)*h]
				dst := merged.Row(sRec.pilotAbs)
				for j, v := range src {
					dst[j] += sRec.weight * v
				}
			}
		}
		r.Compute(StageCMerge, comp.MemBound(perfmodel.ClassTriton,
			2*int64(len(mergeByChunk[c]))*int64(h)*elem))

		sendBack := sendFlat[c*p : (c+1)*p]
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			clo, chi := simrt.ChunkRange(n, chunks, c)
			part := simrt.Part{Bytes: int64(chi-clo) * int64(h) * elem}
			if opts.Numeric && chi > clo {
				lo := st.pilotPartOff[src] + clo
				part.Data = merged.Data[lo*h : (lo+chi-clo)*h]
			}
			sendBack[src] = part
		}
		c1H[c] = r.AlltoAllVAsync(d.EP, StageC1A2A, sendBack)
	}

	// --- Drain the C1 chunks and reconstruct the source-side output --------
	retData := make([][]float32, p)
	sentTo := make([]int, p)
	for _, ent := range st.pilotEntry {
		sentTo[d.memberOfExpert(st.pft.ExpertIDs[ent])]++
	}
	for c, hnd := range c1H {
		back := hnd.Wait()
		if !opts.Numeric {
			continue
		}
		for dst := 0; dst < p; dst++ {
			n := sentTo[dst]
			if retData[dst] == nil && n > 0 {
				retData[dst] = make([]float32, n*h)
			}
			clo, _ := simrt.ChunkRange(n, chunks, c)
			if len(back[dst].Data) > 0 {
				copy(retData[dst][clo*h:], back[dst].Data)
			}
		}
	}

	r.Compute(StageCScatter, comp.MemBound(perfmodel.ClassTriton,
		2*int64(len(st.pilotEntry))*int64(h)*elem))
	mem.Alloc("output", int64(s)*int64(h)*elem)
	if !opts.Numeric {
		return nil
	}
	out := tensor.New(s, h)
	pos := make([]int, p)
	for _, ent := range st.pilotEntry {
		dst := d.memberOfExpert(st.pft.ExpertIDs[ent])
		data := retData[dst]
		rowStart := pos[dst] * h
		pos[dst]++
		dstRow := out.Row(st.pft.TokenIDs[ent])
		for j := 0; j < h; j++ {
			dstRow[j] += data[rowStart+j]
		}
	}
	return out
}

// forwardOverlap is the overlapped RBD layer: chunked S1 exchange, pilot
// GEMMs hiding the async S2, replica GEMMs, C2 leaving non-blocking under
// the pilot-scaling merge, and the chunked C1 return under the replica
// accumulations.
func forwardOverlap(r *simrt.Rank, d *Dispatcher, cfg moe.Config, s int, pft *moe.PFT,
	dispIn *tensor.Tensor, params *moe.ExpertParams, pilotRNG *tensor.RNG, rbdOpts Opts) (*tensor.Tensor, int, *State) {

	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	mem := &r.Dev().Mem
	comp := r.C.Comp
	pool := r.Pool()

	st := d.DispatchPilots(r, pft, dispIn, pilotRNG, rbdOpts)
	d.IssueS2(r, st, rbdOpts)
	pilotIn := d.PilotInput(r, st, rbdOpts)

	// Pilot-row expert GEMMs, overlapping the in-flight S2 exchange.
	nPilot := 0
	for _, c := range st.PilotRowsPerLE {
		nPilot += c
	}
	r.Compute(moe.StageExperts, comp.SequentialGEMM(st.PilotRowsPerLE, h, f)+
		comp.SequentialGEMM(st.PilotRowsPerLE, f, h)+
		comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilot)*int64(f)*elem))
	var pilotOut, pilotPre, pilotAct *tensor.Tensor
	if rbdOpts.Numeric {
		interm := pool.Get(nPilot, f)
		kernels.SequentialGEMMInto(interm, pilotIn, st.PilotRowsPerLE, params.W1)
		act := interm
		if st.save != nil {
			act = pool.Get(nPilot, f)
			act.Copy(interm)
		}
		tensor.GeLU(act)
		pilotOut = pool.Get(nPilot, h)
		kernels.SequentialGEMMInto(pilotOut, act, st.PilotRowsPerLE, params.W2)
		if st.save != nil {
			pilotPre, pilotAct = interm, act
		} else {
			pool.PutAll(pilotIn, interm)
		}
	}

	replicaIn := d.FinishS2(r, st, rbdOpts)

	// Replica-row expert GEMMs.
	nReplica := 0
	for _, c := range st.ReplicaRowsPerLE {
		nReplica += c
	}
	r.Compute(moe.StageExperts, comp.SequentialGEMM(st.ReplicaRowsPerLE, h, f)+
		comp.SequentialGEMM(st.ReplicaRowsPerLE, f, h)+
		comp.MemBound(perfmodel.ClassTriton, 2*int64(nReplica)*int64(f)*elem))
	var replicaOut, replicaPre, replicaAct *tensor.Tensor
	if rbdOpts.Numeric {
		interm := pool.Get(nReplica, f)
		kernels.SequentialGEMMInto(interm, replicaIn, st.ReplicaRowsPerLE, params.W1)
		act := interm
		if st.save != nil {
			act = pool.Get(nReplica, f)
			act.Copy(interm)
		}
		tensor.GeLU(act)
		replicaOut = pool.Get(nReplica, h)
		kernels.SequentialGEMMInto(replicaOut, act, st.ReplicaRowsPerLE, params.W2)
		if st.save != nil {
			replicaPre, replicaAct = interm, act
		} else {
			pool.PutAll(replicaIn, interm)
		}
	}

	bExp := nPilot + nReplica
	mem.Alloc("A0_interm", int64(bExp)*int64(f)*elem)
	mem.Alloc("A1_interm", int64(bExp)*int64(f)*elem)

	if st.save != nil && rbdOpts.Numeric {
		// Scatter the split pilot/replica intermediates into the blocking
		// full layout (per local expert: pilot rows, then replica rows) so
		// Backward is chunk-count-agnostic. Host-side staging, uncharged —
		// mirrors the forward's own uncharged expertOut split in Combine.
		expertIn := pool.Get(bExp, h)
		hidPre := pool.Get(bExp, f)
		hidAct := pool.Get(bExp, f)
		pOff, rOff, off := 0, 0, 0
		for le := 0; le < d.EPR; le++ {
			np, nr := st.PilotRowsPerLE[le], st.ReplicaRowsPerLE[le]
			copy(expertIn.Data[off*h:(off+np)*h], pilotIn.Data[pOff*h:(pOff+np)*h])
			copy(hidPre.Data[off*f:(off+np)*f], pilotPre.Data[pOff*f:(pOff+np)*f])
			copy(hidAct.Data[off*f:(off+np)*f], pilotAct.Data[pOff*f:(pOff+np)*f])
			off += np
			copy(expertIn.Data[off*h:(off+nr)*h], replicaIn.Data[rOff*h:(rOff+nr)*h])
			copy(hidPre.Data[off*f:(off+nr)*f], replicaPre.Data[rOff*f:(rOff+nr)*f])
			copy(hidAct.Data[off*f:(off+nr)*f], replicaAct.Data[rOff*f:(rOff+nr)*f])
			off += nr
			pOff += np
			rOff += nr
		}
		st.save.ExpertIn, st.save.HidPre, st.save.HidAct = expertIn, hidPre, hidAct
		pool.PutAll(pilotIn, pilotPre, pilotAct, replicaIn, replicaPre, replicaAct)
	}

	out := d.CombineOverlap(r, st, pilotOut, replicaOut, s, rbdOpts)
	return out, bExp, st
}
