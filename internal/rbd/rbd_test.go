package rbd

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

func rbdConfig(e, k int) moe.Config {
	return moe.Config{
		NumExperts:     e,
		TopK:           k,
		HModel:         10,
		HFFN:           6,
		CapacityFactor: 100, // effectively no dropping for equivalence tests
		BytesPerElem:   2,
	}
}

func newCluster(n int) *simrt.Cluster {
	c := simrt.NewCluster(topology.Frontier(), n, 123)
	c.Net.DisableCongestion = true
	return c
}

func expertWeights(e, h, f int) (*tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(uint64(2000 + e))
	return tensor.Randn(rng, 0.05, h, f), tensor.Randn(rng, 0.05, f, h)
}

// runRBDLayer executes a full RBD MoE layer numerically on every rank and
// returns each rank's output.
func runRBDLayer(t *testing.T, c *simrt.Cluster, cfg moe.Config, s int, seedBase uint64) map[int]*tensor.Tensor {
	t.Helper()
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	outs := map[int]*tensor.Tensor{}
	var mu sync.Mutex
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(seedBase + uint64(r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.7)
		pft := moe.BuildPFT(routing, cfg.NumExperts, cfg.Capacity(s), moe.DropByCapacityWeight)
		dispIn := kernels.Gather(x, pft.TokenIDs)

		pilotRNG := tensor.NewRNG(7777 + uint64(r.ID))
		st, expertIn := d.Dispatch(r, pft, dispIn, pilotRNG, Opts{Numeric: true})

		me := g.IndexOf(r.ID)
		w1 := make([]*tensor.Tensor, d.EPR)
		w2 := make([]*tensor.Tensor, d.EPR)
		for le := 0; le < d.EPR; le++ {
			w1[le], w2[le] = expertWeights(me*d.EPR+le, cfg.HModel, cfg.HFFN)
		}
		interm := kernels.SequentialGEMM(expertIn, st.RowsPerLE, w1)
		tensor.GeLU(interm)
		expertOut := kernels.SequentialGEMM(interm, st.RowsPerLE, w2)

		out := d.Combine(r, st, expertOut, s, Opts{Numeric: true})
		mu.Lock()
		outs[r.ID] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// referenceLayer computes the expected output for rank using the same
// deterministic seeds as runRBDLayer.
func referenceLayer(rankID int, cfg moe.Config, s int, seedBase uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seedBase + uint64(rankID))
	x := tensor.Randn(rng, 1, s, cfg.HModel)
	routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.7)
	pft := moe.BuildPFT(routing, cfg.NumExperts, cfg.Capacity(s), moe.DropByCapacityWeight)
	out := tensor.New(s, cfg.HModel)
	for i := range pft.TokenIDs {
		tok, e, w := pft.TokenIDs[i], pft.ExpertIDs[i], pft.CombineWeights[i]
		w1, w2 := expertWeights(e, cfg.HModel, cfg.HFFN)
		xi := tensor.FromSlice(x.Row(tok), 1, cfg.HModel)
		hid := tensor.MatMul(xi, w1)
		tensor.GeLU(hid)
		y := tensor.MatMul(hid, w2)
		dst := out.Row(tok)
		for j, v := range y.Data {
			dst[j] += w * v
		}
	}
	return out
}

func TestRBDLayerMatchesReference(t *testing.T) {
	// 16 ranks = 2 Frontier nodes; 32 experts, k=6 gives heavy node-level
	// redundancy, exercising pilots + replicas on every rank.
	cfg := rbdConfig(32, 6)
	const s, seed = 20, 31000
	c := newCluster(16)
	outs := runRBDLayer(t, c, cfg, s, seed)
	for rank, out := range outs {
		want := referenceLayer(rank, cfg, s, seed)
		if out == nil {
			t.Fatalf("rank %d: nil output", rank)
		}
		if !out.Equal(want, 1e-3) {
			t.Fatalf("rank %d: RBD output differs from reference", rank)
		}
	}
}

func TestRBDSingleNodeStillCorrect(t *testing.T) {
	// All 8 ranks share one node: every exchange is intra-node but the
	// pilot/replica machinery must still reproduce the exact output.
	cfg := rbdConfig(16, 4)
	outs := runRBDLayer(t, newCluster(8), cfg, 12, 555)
	for rank, out := range outs {
		want := referenceLayer(rank, cfg, 12, 555)
		if !out.Equal(want, 1e-3) {
			t.Fatalf("rank %d differs", rank)
		}
	}
}

func TestRBDTopK1NoReplicas(t *testing.T) {
	// k=1 cannot produce redundancy; RBD must degrade gracefully.
	cfg := rbdConfig(16, 1)
	outs := runRBDLayer(t, newCluster(16), cfg, 16, 909)
	for rank, out := range outs {
		want := referenceLayer(rank, cfg, 16, 909)
		if !out.Equal(want, 1e-3) {
			t.Fatalf("rank %d differs", rank)
		}
	}
}

func TestRBDExpertInputsMatchPlainDispatch(t *testing.T) {
	// The multiset of rows each expert processes must be identical to
	// plain (non-RBD) dispatch: RBD only changes the transport.
	cfg := rbdConfig(16, 4)
	const s = 16
	c := newCluster(16)
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	type rowKey struct {
		expert int
		sig    string
	}
	counts := map[rowKey]int{}
	var mu sync.Mutex
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(808 + uint64(r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.5)
		pft := moe.BuildPFT(routing, cfg.NumExperts, 0, moe.DropByCapacityWeight)
		dispIn := kernels.Gather(x, pft.TokenIDs)

		// Expected rows (what plain dispatch delivers): every (token,
		// expert) assignment, keyed by content.
		mu.Lock()
		for i := range pft.TokenIDs {
			sig := fmt.Sprintf("%.4f:%.4f", dispIn.At(i, 0), dispIn.At(i, 1))
			counts[rowKey{pft.ExpertIDs[i], sig}]++
		}
		mu.Unlock()

		st, expertIn := d.Dispatch(r, pft, dispIn, tensor.NewRNG(99+uint64(r.ID)), Opts{Numeric: true})
		me := g.IndexOf(r.ID)
		mu.Lock()
		row := 0
		for le := range st.RowsPerLE {
			for i := 0; i < st.RowsPerLE[le]; i++ {
				sig := fmt.Sprintf("%.4f:%.4f", expertIn.At(row, 0), expertIn.At(row, 1))
				counts[rowKey{me*d.EPR + le, sig}]--
				row++
			}
		}
		mu.Unlock()
		// Drain the combine-side collectives so all ranks stay in step.
		expertOut := expertIn.Clone()
		d.Combine(r, st, expertOut, s, Opts{Numeric: true})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range counts {
		if v != 0 {
			t.Fatalf("expert %d row multiset mismatch (key %q count %d)", k.expert, k.sig, v)
		}
	}
}

// TestRBDReducesInterNodeDispatchTime reproduces the Fig. 12 effect at
// symbolic scale: 32 ranks = 4 Frontier nodes, 256 experts, k=8 (measured
// redundancy ~54.8%), realistic row size (H=2048, bf16). RBD's S1
// (pilots-only inter-node) + S2 (intra-node replicas) must beat the plain
// dispatch all-to-all that ships every redundant copy across nodes.
func TestRBDReducesInterNodeDispatchTime(t *testing.T) {
	cfg := moe.Config{NumExperts: 256, TopK: 8, HModel: 2048, HFFN: 1024, CapacityFactor: 100, BytesPerElem: 2}
	const s = 512

	plain := newCluster(32)
	gP := plain.WorldGroup()
	ranksPlain, err := plain.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(4242 + uint64(r.ID))
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		moe.PFTForward(r, gP, cfg, s, nil, routing, nil, moe.PipelineOpts{})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	withRBD := newCluster(32)
	gR := withRBD.WorldGroup()
	d := NewDispatcher(withRBD, gR, cfg)
	ranksRBD, err := withRBD.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(4242 + uint64(r.ID))
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		pft := moe.BuildPFT(routing, cfg.NumExperts, 0, moe.DropByCapacityWeight)
		st, _ := d.Dispatch(r, pft, nil, tensor.NewRNG(1+uint64(r.ID)), Opts{})
		d.Combine(r, st, nil, s, Opts{})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var plainA2A, rbdS1, rbdS2 float64
	for i := range ranksPlain {
		plainA2A += ranksPlain[i].Trace.Total(moe.StageDispatchA2A)
		rbdS1 += ranksRBD[i].Trace.Total(StageS1A2A)
		rbdS2 += ranksRBD[i].Trace.Total(StageS2A2A)
	}
	if rbdS1 >= plainA2A {
		t.Fatalf("RBD S1 a2a (%.4fs) should beat plain dispatch a2a (%.4fs)", rbdS1, plainA2A)
	}
	if rbdS1+rbdS2 >= plainA2A {
		t.Fatalf("RBD total dispatch comms (%.4fs) should beat plain (%.4fs)", rbdS1+rbdS2, plainA2A)
	}
}

func TestAnalyzeRedundancy(t *testing.T) {
	// 2 tokens, k=3. Token 0: experts on nodes {0,0,1} -> 1 redundant.
	// Token 1: experts on nodes {1,1,1} -> 2 redundant.
	rt := moe.Routing{
		S:          2,
		TopExperts: [][]int{{0, 1, 4}, {4, 5, 6}},
		Weights:    [][]float32{{0.3, 0.3, 0.3}, {0.3, 0.3, 0.3}},
	}
	nodeOf := func(e int) int { return e / 4 }
	red := AnalyzeRedundancy(rt, nodeOf, 0)
	if red.Total != 6 || red.Redundant != 3 {
		t.Fatalf("redundancy = %+v, want total 6 redundant 3", red)
	}
	if math.Abs(red.Rate()-0.5) > 1e-9 {
		t.Fatalf("rate = %f", red.Rate())
	}
	// Inter-node copies: token 0 sends 1 copy to node 1 (+2 local);
	// token 1 sends 3 copies to node 1. Source node 0 => 4 inter-node.
	if red.InterNode != 4 {
		t.Fatalf("InterNode = %d, want 4", red.InterNode)
	}
	// Pilots crossing nodes: token 0 -> node 1 (1 pilot); token 1 -> node
	// 1 (1 pilot). 2 total.
	if red.PilotInter != 2 {
		t.Fatalf("PilotInter = %d, want 2", red.PilotInter)
	}
}

func TestExpectedRedundancyMatchesPaperFig4(t *testing.T) {
	// The paper's Fig. 4 values for 256 experts, k=8, 8 GPUs/node.
	cases := []struct {
		epSize int
		want   float64
	}{
		{16, 0.751}, {32, 0.548}, {64, 0.338}, {128, 0.185}, {256, 0.092},
	}
	for _, c := range cases {
		nodes := c.epSize / 8
		got := ExpectedRedundancyRate(256, 8, nodes)
		if math.Abs(got-c.want) > 0.012 {
			t.Errorf("EP=%d: expected redundancy %.3f, paper %.3f", c.epSize, got, c.want)
		}
	}
}

func TestExpectedRedundancyEdgeCases(t *testing.T) {
	if ExpectedRedundancyRate(64, 1, 8) != 0 {
		t.Fatal("k=1 has no redundancy")
	}
	if got := ExpectedRedundancyRate(64, 8, 1); math.Abs(got-(1-1.0/8)) > 1e-9 {
		t.Fatalf("single node: all but one copy redundant, got %f", got)
	}
	if ExpectedRedundancyRate(64, 0, 4) != 0 || ExpectedRedundancyRate(64, 4, 0) != 0 {
		t.Fatal("degenerate parameters must return 0")
	}
}

func TestQuickAnalyzeVsExpectedRedundancy(t *testing.T) {
	// Measured redundancy on uniform synthetic routing must track the
	// closed form within sampling noise.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nodes := 2 + rng.Intn(6)
		eprNode := 8 // experts per node
		e := nodes * eprNode
		k := 1 + rng.Intn(6)
		if k > e {
			k = e
		}
		rt := moe.SyntheticRouting(rng, 800, e, k, 0)
		red := AnalyzeRedundancy(rt, func(ex int) int { return ex / eprNode }, -1)
		want := ExpectedRedundancyRate(e, k, nodes)
		return math.Abs(red.Rate()-want) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRBDPilotInvariants(t *testing.T) {
	// For any routing: pilots + replicas = all assignments, and pilot
	// inter-node copies are at most one per (token, node).
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nodes := 1 + rng.Intn(4)
		e := nodes * 8
		k := 1 + rng.Intn(min(6, e))
		s := 1 + rng.Intn(40)
		rt := moe.SyntheticRouting(rng, s, e, k, rng.Float64())
		nodeOf := func(ex int) int { return ex / 8 }
		red := AnalyzeRedundancy(rt, nodeOf, 0)
		if red.Total != s*k {
			return false
		}
		// Count distinct (token, node) pairs.
		distinct := map[[2]int]bool{}
		for tok := 0; tok < s; tok++ {
			for _, ex := range rt.TopExperts[tok] {
				distinct[[2]int{tok, nodeOf(ex)}] = true
			}
		}
		return red.Total-red.Redundant == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherRejectsIndivisibleExperts(t *testing.T) {
	c := newCluster(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDispatcher(c, c.WorldGroup(), rbdConfig(8, 2))
}

func TestDispatcherNodeGroups(t *testing.T) {
	c := newCluster(16) // 2 nodes
	d := NewDispatcher(c, c.WorldGroup(), rbdConfig(16, 2))
	if len(d.nodeGroups) != 2 {
		t.Fatalf("node groups = %d, want 2", len(d.nodeGroups))
	}
	for node, g := range d.nodeGroups {
		if g.Size() != 8 {
			t.Fatalf("node %d group size %d, want 8", node, g.Size())
		}
	}
	if d.NodeOfExpert(0) != 0 || d.NodeOfExpert(15) != 1 {
		t.Fatal("NodeOfExpert mapping wrong")
	}
	var _ = sort.IntsAreSorted
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
