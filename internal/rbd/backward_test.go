package rbd

import (
	"errors"
	"math"
	"math/big"
	"strings"
	"sync"
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// runFwdBwd executes a numeric RBD forward+backward on every rank and
// returns the per-rank gradients (and forward outputs). fwdChunks and
// bwdChunks select the overlapped paths independently; disablePools runs
// allocate-fresh for the pooled==fresh determinism pin.
func runFwdBwd(t *testing.T, world, s int, cfg moe.Config, fwdChunks, bwdChunks int, disablePools bool) ([]moe.BackwardResult, []*tensor.Tensor) {
	t.Helper()
	c := newCluster(world)
	c.DisablePools = disablePools
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	grads := make([]moe.BackwardResult, world)
	outs := make([]*tensor.Tensor, world)
	var mu sync.Mutex
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(6100 + uint64(r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		epr := cfg.NumExperts / world
		me := g.IndexOf(r.ID)
		params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
		for le := 0; le < epr; le++ {
			params.W1[le], params.W2[le] = expertWeights(me*epr+le, cfg.HModel, cfg.HFFN)
		}
		fwdOpts := moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropNegativeThenPosition,
			SaveForBackward: true, OverlapChunks: fwdChunks}
		res := Forward(r, d, cfg, s, x, routing, params, tensor.NewRNG(42+uint64(r.ID)), fwdOpts)
		if res.State == nil {
			t.Error("SaveForBackward forward returned no state")
			return nil
		}
		dOut := tensor.New(s, cfg.HModel)
		for i := range dOut.Data {
			dOut.Data[i] = float32(i%5)*0.2 - 0.4
		}
		bwd := Backward(r, d, cfg, res.State, dOut, params,
			moe.PipelineOpts{Numeric: true, OverlapChunks: bwdChunks})
		mu.Lock()
		grads[r.ID] = bwd
		outs[r.ID] = res.Output
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return grads, outs
}

var bwdCfg = moe.Config{NumExperts: 32, TopK: 5, HModel: 10, HFFN: 6,
	CapacityFactor: 1.25, BytesPerElem: 2}

// bitEqualGrads fails unless the two backward results are bit-identical:
// dX, every expert's dW1/dW2, and the combine-weight gradients.
func bitEqualGrads(t *testing.T, label string, rank int, a, b moe.BackwardResult) {
	t.Helper()
	bitEq := func(name string, x, y *tensor.Tensor) {
		t.Helper()
		if x.Len() != y.Len() {
			t.Fatalf("%s rank %d: %s sizes differ", label, rank, name)
		}
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				t.Fatalf("%s rank %d: %s bit mismatch at %d: %v vs %v",
					label, rank, name, i, x.Data[i], y.Data[i])
			}
		}
	}
	bitEq("dX", a.DX, b.DX)
	for e := range a.DW1 {
		bitEq("dW1", a.DW1[e], b.DW1[e])
		bitEq("dW2", a.DW2[e], b.DW2[e])
	}
	if len(a.DCombineWeights) != len(b.DCombineWeights) {
		t.Fatalf("%s rank %d: dWeights lengths differ", label, rank)
	}
	for i := range a.DCombineWeights {
		if a.DCombineWeights[i] != b.DCombineWeights[i] {
			t.Fatalf("%s rank %d: dWeights bit mismatch at %d", label, rank, i)
		}
	}
}

// TestRBDBackwardMatchesPFTAndPadded validates the native RBD backward
// against the numerically-verified PFT backward (and the padded backward
// already pinned to it): same inputs, routing, weights, and upstream
// gradient — dX, per-expert dW1/dW2, and the combine-weight gradients
// must agree within float tolerance. (Bitwise identity across transports
// is impossible: RBD folds each pilot group's partial sums before the
// token-level accumulation, a different fp addition order than the flat
// transports. Within RBD, chunked==blocking and pooled==fresh ARE bitwise
// — see the matrix tests below.)
func TestRBDBackwardMatchesPFTAndPadded(t *testing.T) {
	const world, s = 16, 24
	cfg := bwdCfg

	runFlat := func(padded bool) []moe.BackwardResult {
		c := newCluster(world)
		g := c.WorldGroup()
		grads := make([]moe.BackwardResult, world)
		var mu sync.Mutex
		err := c.Run(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(6100 + uint64(r.ID))
			x := tensor.Randn(rng, 1, s, cfg.HModel)
			routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
			epr := cfg.NumExperts / world
			me := g.IndexOf(r.ID)
			params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
			for le := 0; le < epr; le++ {
				params.W1[le], params.W2[le] = expertWeights(me*epr+le, cfg.HModel, cfg.HFFN)
			}
			opts := moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropNegativeThenPosition, SaveForBackward: true}
			dOut := tensor.New(s, cfg.HModel)
			for i := range dOut.Data {
				dOut.Data[i] = float32(i%5)*0.2 - 0.4
			}
			var bwd moe.BackwardResult
			if padded {
				res := moe.PaddedForward(r, g, cfg, s, x, routing, params, opts)
				bwd = moe.PaddedBackward(r, g, cfg, res.PaddedState, dOut, params, opts)
			} else {
				res := moe.PFTForward(r, g, cfg, s, x, routing, params, opts)
				bwd = moe.PFTBackward(r, g, cfg, res.State, dOut, params, opts)
			}
			mu.Lock()
			grads[r.ID] = bwd
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return grads
	}

	rbdGrads, _ := runFwdBwd(t, world, s, cfg, 1, 1, false)
	for name, flat := range map[string][]moe.BackwardResult{"pft": runFlat(false), "padded": runFlat(true)} {
		for rank := range flat {
			a, b := rbdGrads[rank], flat[rank]
			if !a.DX.Equal(b.DX, 1e-3) {
				t.Fatalf("%s rank %d: RBD dX differs", name, rank)
			}
			for e := range a.DW1 {
				if !a.DW1[e].Equal(b.DW1[e], 1e-3) || !a.DW2[e].Equal(b.DW2[e], 1e-3) {
					t.Fatalf("%s rank %d expert %d: RBD weight gradients differ", name, rank, e)
				}
			}
			if name == "padded" {
				// The padded backward indexes DCombineWeights by slot
				// (e*C + c), not by PFT entry — the repo's padded-vs-PFT
				// parity test skips them for the same reason.
				continue
			}
			if len(a.DCombineWeights) != len(b.DCombineWeights) {
				t.Fatalf("%s rank %d: dWeights length %d vs %d", name, rank,
					len(a.DCombineWeights), len(b.DCombineWeights))
			}
			nonZero := 0
			for i := range a.DCombineWeights {
				if d := a.DCombineWeights[i] - b.DCombineWeights[i]; d > 1e-3 || d < -1e-3 {
					t.Fatalf("%s rank %d: dWeights[%d] %v vs %v", name, rank, i,
						a.DCombineWeights[i], b.DCombineWeights[i])
				}
				if a.DCombineWeights[i] != 0 {
					nonZero++
				}
			}
			if nonZero == 0 {
				t.Fatalf("%s rank %d: all RBD combine-weight gradients are zero", name, rank)
			}
		}
	}
}

// TestRBDBackwardDeterminismMatrix is the chunk-count half of the
// determinism matrix: for C in {1,2,4,8}, chunked forward+backward
// gradients must be bit-identical to the fully blocking pass (the chunked
// paths re-time the exchanges but never reorder a single accumulation).
func TestRBDBackwardDeterminismMatrix(t *testing.T) {
	const world, s = 16, 24
	blocking, _ := runFwdBwd(t, world, s, bwdCfg, 1, 1, false)
	for _, chunks := range []int{2, 4, 8} {
		chunked, _ := runFwdBwd(t, world, s, bwdCfg, chunks, chunks, false)
		for rank := range blocking {
			bitEqualGrads(t, "chunked", rank, blocking[rank], chunked[rank])
		}
	}
	// Mixed chunk counts: a chunked forward feeding a blocking backward
	// (and vice versa) — the saved full-layout state is chunk-agnostic.
	mixed, _ := runFwdBwd(t, world, s, bwdCfg, 4, 1, false)
	for rank := range blocking {
		bitEqualGrads(t, "fwd4/bwd1", rank, blocking[rank], mixed[rank])
	}
	mixed2, _ := runFwdBwd(t, world, s, bwdCfg, 1, 4, false)
	for rank := range blocking {
		bitEqualGrads(t, "fwd1/bwd4", rank, blocking[rank], mixed2[rank])
	}
}

// TestRBDBackwardPooledBitIdenticalToFresh is the pooled half of the
// matrix: arena-pooled execution must match allocate-fresh bit for bit,
// blocking and chunked.
func TestRBDBackwardPooledBitIdenticalToFresh(t *testing.T) {
	const world, s = 16, 24
	for _, chunks := range []int{1, 4} {
		pooled, pooledOut := runFwdBwd(t, world, s, bwdCfg, chunks, chunks, false)
		fresh, freshOut := runFwdBwd(t, world, s, bwdCfg, chunks, chunks, true)
		for rank := range pooled {
			bitEqualGrads(t, "pooled", rank, fresh[rank], pooled[rank])
			for i := range pooledOut[rank].Data {
				if pooledOut[rank].Data[i] != freshOut[rank].Data[i] {
					t.Fatalf("C=%d rank %d: pooled forward output differs from fresh", chunks, rank)
				}
			}
		}
	}
}

// TestRBDBackwardSymbolicStagesAndHook runs the symbolic (timing-only)
// backward: every reverse stage must appear in the trace, the backward
// must leave no leaked handles, and OnDWReady must fire exactly once —
// blocking and chunked.
func TestRBDBackwardSymbolicStagesAndHook(t *testing.T) {
	cfg := moe.Config{NumExperts: 32, TopK: 4, HModel: 64, HFFN: 32,
		CapacityFactor: 1.25, BytesPerElem: 2}
	for _, chunks := range []int{1, 4} {
		c := newCluster(16)
		g := c.WorldGroup()
		d := NewDispatcher(c, g, cfg)
		fired := make([]int, 16)
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(uint64(r.ID))
			routing := moe.SyntheticRouting(rng, 64, cfg.NumExperts, cfg.TopK, 0.5)
			res := Forward(r, d, cfg, 64, nil, routing, nil, tensor.NewRNG(uint64(r.ID)),
				moe.PipelineOpts{SaveForBackward: true, OverlapChunks: chunks})
			id := r.ID
			Backward(r, d, cfg, res.State, nil, nil,
				moe.PipelineOpts{OverlapChunks: chunks, OnDWReady: func() { fired[id]++ }})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, rk := range ranks {
			for _, stage := range []string{StageBwdCScatter, StageBwdC1A2A, StageBwdCMerge,
				StageBwdC2A2A, moe.StageBwdExperts, StageBwdS2A2A, StageBwdS2Red,
				StageBwdS1A2A, StageBwdS1Scat} {
				// Async exchanges fully hidden under compute charge zero
				// uncovered time; their physical span is still recorded as
				// an overlapped event.
				if rk.Trace.Total(stage) <= 0 && rk.Trace.OverlappedTotal(stage) <= 0 {
					t.Fatalf("C=%d rank %d: backward stage %q missing from trace", chunks, rk.ID, stage)
				}
			}
			if fired[rk.ID] != 1 {
				t.Fatalf("C=%d rank %d: OnDWReady fired %d times, want exactly 1", chunks, rk.ID, fired[rk.ID])
			}
		}
	}
}

// TestRBDBackwardMirrorsForwardCommunication pins the backward wire
// volumes to the netsim per-link-class convention: each reverse exchange
// moves exactly the forward payload bytes (the weight-gradient metadata
// replaces the forward's s1Meta, which is strictly larger), so per stage
// pair the backward a2a time must track the forward within tolerance —
// and in particular the backward must NOT price as the mirrored flat
// transport (its inter-node time stays well below a flat exchange's).
func TestRBDBackwardMirrorsForwardCommunication(t *testing.T) {
	cfg := moe.Config{NumExperts: 256, TopK: 8, HModel: 2048, HFFN: 1024,
		CapacityFactor: 100, BytesPerElem: 2}
	const s, world = 512, 32
	c := newCluster(world)
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(4242 + uint64(r.ID))
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0)
		res := Forward(r, d, cfg, s, nil, routing, nil, tensor.NewRNG(1+uint64(r.ID)),
			moe.PipelineOpts{SaveForBackward: true})
		Backward(r, d, cfg, res.State, nil, nil, moe.PipelineOpts{})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var fwdS1, bwdS1, fwdS2, bwdS2 float64
	for _, rk := range ranks {
		fwdS1 += rk.Trace.Total(StageS1A2A) + rk.Trace.Total(StageC1A2A)
		bwdS1 += rk.Trace.Total(StageBwdC1A2A) + rk.Trace.Total(StageBwdS1A2A)
		fwdS2 += rk.Trace.Total(StageS2A2A) + rk.Trace.Total(StageC2A2A)
		bwdS2 += rk.Trace.Total(StageBwdS2A2A) + rk.Trace.Total(StageBwdC2A2A)
	}
	if math.Abs(fwdS1-bwdS1) > 0.15*fwdS1 {
		t.Fatalf("backward inter-node a2a time %.6f should mirror forward %.6f", bwdS1, fwdS1)
	}
	if math.Abs(fwdS2-bwdS2) > 0.15*fwdS2 {
		t.Fatalf("backward intra-node a2a time %.6f should mirror forward %.6f", bwdS2, fwdS2)
	}
}

// TestRBDCheckOptsRejections exercises the typed rejection paths: the RBD
// backward has no combine-element override, and a numeric backward cannot
// consume a symbolically captured forward state.
func TestRBDCheckOptsRejections(t *testing.T) {
	var oe *moe.OptionError
	err := CheckOpts(moe.PipelineOpts{CombineBytes: 4})
	if err == nil || !errors.As(err, &oe) || oe.Opt != "CombineBytes" {
		t.Fatalf("CombineBytes: want typed *moe.OptionError, got %v", err)
	}
	if err := CheckOpts(moe.PipelineOpts{OverlapChunks: -1}); err == nil || !errors.As(err, &oe) || oe.Opt != "OverlapChunks" {
		t.Fatalf("OverlapChunks: want typed *moe.OptionError, got %v", err)
	}
	if err := CheckOpts(moe.PipelineOpts{}); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}

	// Numeric backward over a symbolic capture must panic with the typed
	// message, on entry, before any collective is issued.
	c := newCluster(16)
	g := c.WorldGroup()
	cfg := bwdCfg
	d := NewDispatcher(c, g, cfg)
	err = c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(r.ID))
		routing := moe.SyntheticRouting(rng, 16, cfg.NumExperts, cfg.TopK, 0.5)
		res := Forward(r, d, cfg, 16, nil, routing, nil, tensor.NewRNG(uint64(r.ID)),
			moe.PipelineOpts{SaveForBackward: true})
		defer func() {
			msg, _ := recover().(string)
			if !strings.Contains(msg, "captured symbolically") {
				t.Errorf("rank %d: want symbolic-capture panic, got %q", r.ID, msg)
			}
		}()
		Backward(r, d, cfg, res.State, nil, nil, moe.PipelineOpts{Numeric: true})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// binom returns C(n, k) as an exact big.Rat.
func binom(n, k int) *big.Rat {
	if k < 0 || k > n {
		return new(big.Rat)
	}
	return new(big.Rat).SetInt(new(big.Int).Binomial(int64(n), int64(k)))
}

// TestExpectedRedundancyRateExactInvariant pins the closed form against
// an exact rational-arithmetic evaluation of the hypergeometric
// expectation, in the style of netsim's integer-exact byte-convention
// tests: for each node with integer expert count c under the canonical
// placement x*nodes/E, P(hit) = 1 - C(E-c,k)/C(E,k), summed exactly with
// big.Rat — including every non-divisible E/nodes case, where the old
// fractional E/n approximation was off.
func TestExpectedRedundancyRateExactInvariant(t *testing.T) {
	for _, tc := range []struct{ e, k, nodes int }{
		{8, 3, 4}, {10, 3, 4}, {10, 4, 4}, {7, 3, 3}, {13, 5, 4},
		{64, 8, 8}, {9, 2, 5}, {11, 7, 3}, {256, 8, 32}, {17, 4, 6},
	} {
		counts := make([]int, tc.nodes)
		total := 0
		for x := 0; x < tc.e; x++ {
			counts[x*tc.nodes/tc.e]++
			total++
		}
		if total != tc.e {
			t.Fatalf("placement of %d experts over %d nodes lost experts", tc.e, tc.nodes)
		}
		expected := new(big.Rat)
		denom := binom(tc.e, tc.k)
		for _, c := range counts {
			pHit := new(big.Rat).Sub(new(big.Rat).SetInt64(1),
				new(big.Rat).Quo(binom(tc.e-c, tc.k), denom))
			expected.Add(expected, pHit)
		}
		want := new(big.Rat).Sub(new(big.Rat).SetInt64(1),
			new(big.Rat).Quo(expected, new(big.Rat).SetInt64(int64(tc.k))))
		wantF, _ := want.Float64()
		got := ExpectedRedundancyRate(tc.e, tc.k, tc.nodes)
		if math.Abs(got-wantF) > 1e-12 {
			t.Errorf("E=%d k=%d nodes=%d: ExpectedRedundancyRate %.15f, exact %.15f",
				tc.e, tc.k, tc.nodes, got, wantF)
		}
	}
}
