// Package rbd implements X-MoE's Hierarchical Redundancy-Bypassing
// Dispatch (paper §4.2). With large top-k routing, a token is often sent
// to several experts that live on the same destination node; conventional
// dispatch ships one copy per expert across the slow inter-node links. RBD
// sends a single "pilot" copy per (token, destination node) over the
// inter-node fabric (Stage 1), reconstructs the remaining "local replica"
// copies from the pilot at the destination node, and forwards them to
// their expert's GPU over the fast intra-node links (Stage 2). The combine
// stage reverses the process, merging replica outputs into the pilot row
// intra-node (weight scaling included) before one inter-node return trip.
package rbd

import (
	"fmt"
	"sort"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Trace stage names matching the paper's Fig. 12 dispatch breakdown.
const (
	StageS1Inst      = "rbd_s1_inst"      // pilot selection + pilot buffer instantiation
	StageS1A2A       = "rbd_s1_a2a"       // inter-node all-to-all (pilots + metadata)
	StageS2Inst      = "rbd_s2_inst"      // local replica reconstruction
	StageS2A2A       = "rbd_s2_a2a"       // intra-node all-to-all (replicas)
	StageReconstruct = "rbd_reconstruct"  // expert input reconstruction (merge + order)
	StageC2A2A       = "rbd_comb_s2_a2a"  // combine: intra-node replica gather
	StageCMerge      = "rbd_comb_merge"   // combine: weight-scale + merge into pilots
	StageC1A2A       = "rbd_comb_s1_a2a"  // combine: inter-node pilot return
	StageCScatter    = "rbd_comb_scatter" // combine: final output reconstruction
)

// PilotPolicy selects which member of a (token, destination-node) group
// becomes the pilot.
type PilotPolicy int

const (
	// PilotRandom picks uniformly at random — the paper's choice, which
	// "helps avoid a biased distribution and creates a balanced workload
	// for alltoall communication" (§4.2).
	PilotRandom PilotPolicy = iota
	// PilotFirstExpert always picks the lowest expert ID, the biased
	// strategy the paper warns against; kept for the ablation benchmark.
	PilotFirstExpert
)

// Opts configures an RBD dispatch/combine pass.
type Opts struct {
	// Numeric moves real float rows; otherwise metadata-only.
	Numeric bool
	// Pilots selects the pilot-selection strategy (default PilotRandom).
	Pilots PilotPolicy
	// OverlapChunks selects chunked comm/compute overlap of the
	// inter-node stages: the Stage-1 pilot exchange is split into
	// OverlapChunks non-blocking chunks so chunk i+1's pilot-buffer
	// instantiation hides behind chunk i's transfer, and symmetrically
	// the combine-side pilot return overlaps the per-chunk weight-scaled
	// merge. The intra-node Stage-2 exchanges stay blocking (they ride
	// the fast links RBD already exploits). Values <= 1 select the
	// blocking path; numeric output is bit-identical either way.
	OverlapChunks int
	// Save keeps the hierarchical exchange state and the expert-FFN
	// intermediates needed by Backward (the SaveForBackward analogue):
	// the dispatch geometry plus, in numeric mode, the expert inputs,
	// pre-/post-activation hidden buffers, pilot expert outputs, and the
	// combine-stage replica return payloads.
	Save bool
}

// chunks returns the effective chunk count (1 = blocking).
func (o Opts) chunks() int {
	if o.OverlapChunks > 1 {
		return o.OverlapChunks
	}
	return 1
}

// Dispatcher holds the topology-derived state shared by all ranks of an
// expert-parallel group: the per-node subgroups used for the intra-node
// stage. Construct once (outside Cluster.Run) and share.
type Dispatcher struct {
	Cfg moe.Config
	EP  *simrt.Group
	// EPR is experts per rank.
	EPR int
	// nodeOfMember[m] is the machine node of EP member m.
	nodeOfMember []int
	// nodeGroups maps node id -> intra-node communicator (EP members on
	// that node).
	nodeGroups map[int]*simrt.Group
	// nodeMembers maps node id -> EP member indices on that node
	// (ascending).
	nodeMembers map[int][]int
	// slotOfMember[m] is member m's slot within its node group — hoisted
	// out of the per-layer dispatch hot path.
	slotOfMember []int
}

// NewDispatcher builds the dispatcher for EP group ep on cluster c.
func NewDispatcher(c *simrt.Cluster, ep *simrt.Group, cfg moe.Config) *Dispatcher {
	if cfg.NumExperts%ep.Size() != 0 {
		panic(fmt.Sprintf("rbd: %d experts not divisible by EP size %d", cfg.NumExperts, ep.Size()))
	}
	d := &Dispatcher{
		Cfg:          cfg,
		EP:           ep,
		EPR:          cfg.NumExperts / ep.Size(),
		nodeOfMember: make([]int, ep.Size()),
		nodeGroups:   map[int]*simrt.Group{},
		nodeMembers:  map[int][]int{},
		slotOfMember: make([]int, ep.Size()),
	}
	for m, rank := range ep.Ranks() {
		node := c.Machine.NodeOf(rank)
		d.nodeOfMember[m] = node
		d.nodeMembers[node] = append(d.nodeMembers[node], m)
	}
	for node, members := range d.nodeMembers {
		ranks := make([]int, len(members))
		for i, m := range members {
			ranks[i] = ep.Ranks()[m]
			d.slotOfMember[m] = i
		}
		d.nodeGroups[node] = c.NewGroup(ranks)
	}
	return d
}

// memberOfExpert returns the EP member owning global expert e.
func (d *Dispatcher) memberOfExpert(e int) int { return e / d.EPR }

// NodeOfExpert returns the machine node hosting global expert e.
func (d *Dispatcher) NodeOfExpert(e int) int { return d.nodeOfMember[d.memberOfExpert(e)] }

// replicaMeta describes one local replica travelling (as metadata only)
// alongside its pilot in Stage 1.
type replicaMeta struct {
	// pilotRel is the replica's pilot row index, relative to the pilot
	// part it travels with (re-encoded to an absolute index after the
	// exchange, as in the paper).
	pilotRel int
	// expert is the replica's destination expert (determines the Stage-2
	// destination GPU).
	expert int
	// weight is the replica's combine weight.
	weight float32
}

// s1Meta is the metadata attached to each Stage-1 pilot part.
type s1Meta struct {
	// counts[le] is the number of pilot rows destined to local expert le
	// of the receiving rank.
	counts []int
	// weights[i] is the combine weight of pilot row i in this part.
	weights []float32
	// replicas lists this part's local replicas.
	replicas []replicaMeta
}

func (m s1Meta) bytes() int64 {
	return int64(len(m.counts))*8 + int64(len(m.weights))*4 + int64(len(m.replicas))*16
}

// rowRef locates one expert-input row's origin for the combine reversal.
type rowRef struct {
	pilot bool
	// For pilots: absolute row in the received pilot buffer. For
	// replicas: the Stage-2 part (node-group member index) and position.
	abs  int
	part int
	pos  int
}

// s2Sent records, on the pilot-holding rank, where each Stage-2 replica
// row must merge back during combine, and which source rank announced it
// (src = EP member, ri = index into that source's s1Meta.replicas) so the
// backward can route the replica's combine-weight gradient home.
type s2Sent struct {
	pilotAbs int
	weight   float32
	src, ri  int
}

// State carries the per-rank dispatch bookkeeping the combine stage needs.
type State struct {
	// Source side.
	pft        *moe.PFT
	pilotEntry []int // PFT entry index of each sent pilot, send order
	// Destination side.
	recvPilotCounts [][]int     // [src][localExpert]
	recvPilotW      [][]float32 // [src] weights aligned with part rows
	recvMetas       []s1Meta    // full stage-1 metadata per source
	pilotPartOff    []int       // absolute offset of each src's pilot part
	pilotRowsTotal  int
	pilotRows       *tensor.Tensor // received pilot payload (numeric)
	s2SentByMember  [][]s2Sent     // [nodeMember][pos] merge targets
	s2RecvCount     []int          // rows received from each node member
	s2RecvMeta      [][]replicaMeta
	// s2Handle is the in-flight non-blocking Stage-2 exchange of the
	// expert-GEMM-overlap path (nil on the blocking path).
	s2Handle *simrt.CommHandle
	// ExpertRowsPerLE[le] lists the origin of each row of local expert
	// le's input, in buffer order.
	expertRows [][]rowRef
	// RowsPerLE is the expert input segmentation for the sequential GEMM.
	RowsPerLE []int
	// PilotRowsPerLE / ReplicaRowsPerLE are the split segmentations of
	// the expert-GEMM-overlap path: pilot rows are available right after
	// Stage 1 and compute while the Stage-2 replica exchange is in
	// flight.
	PilotRowsPerLE   []int
	ReplicaRowsPerLE []int
	// pilotAbs[i] is the absolute pilot-buffer row of pilot-input row i
	// (le-major order); replicaRef[i] locates replica-input row i's
	// Stage-2 (part, pos) origin.
	pilotAbs   []int
	replicaRef []rowRef
	// node group used for stage 2
	nodeGroup *simrt.Group
	// save is the forward state retained for Backward (nil unless
	// Opts.Save); replicaEntry[dst][ri] is the PFT entry index of the
	// ri-th replica this rank announced to EP member dst, mirroring the
	// s1Meta.replicas order so returned weight gradients map back to
	// entries.
	save         *FwdState
	replicaEntry [][]int
}

// Dispatch runs RBD stages 0-2 for rank r: pilot selection, inter-node
// pilot exchange with replica metadata, replica reconstruction, intra-node
// replica exchange, and expert input reconstruction. dispIn is the [B, H]
// PFT-ordered token buffer (nil in symbolic mode); rng drives the
// randomized pilot selection (paper: random choice balances the
// all-to-all). It returns the combine state, the expert-major input buffer
// (numeric mode), and fills State.RowsPerLE.
//
// Dispatch is the blocking-expert-compute composition; the overlapped
// Forward path drives the finer-grained DispatchPilots / IssueS2 /
// PilotInput / FinishS2 stages directly so the expert GEMMs interleave
// with the Stage-2 exchange.
func (d *Dispatcher) Dispatch(r *simrt.Rank, pft *moe.PFT, dispIn *tensor.Tensor, rng *tensor.RNG, opts Opts) (*State, *tensor.Tensor) {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	me := d.EP.IndexOf(r.ID)
	comp := r.C.Comp
	mem := &r.Dev().Mem

	st := d.DispatchPilots(r, pft, dispIn, rng, opts)
	nodeGroup := st.nodeGroup

	// --- Replica reconstruction + Stage 2 intra-node exchange --------------
	s2Send := d.stageReplicas(r, st, opts)
	s2Recv := r.AlltoAllV(nodeGroup, StageS2A2A, s2Send)

	st.s2RecvCount = make([]int, nodeGroup.Size())
	st.s2RecvMeta = make([][]replicaMeta, nodeGroup.Size())
	nReplicaRows := 0
	for src, part := range s2Recv {
		m := part.Meta.([]replicaMeta)
		st.s2RecvMeta[src] = m
		st.s2RecvCount[src] = len(m)
		nReplicaRows += len(m)
	}
	mem.Alloc("rbd_s2_recv", int64(nReplicaRows)*int64(h)*elem)

	// --- Expert input reconstruction ---------------------------------------
	// Merge pilots destined to my experts with received replicas, grouped
	// per local expert.
	st.expertRows = make([][]rowRef, d.EPR)
	st.RowsPerLE = make([]int, d.EPR)
	rowsOff := make([]int, d.EPR+1)
	for src := 0; src < p; src++ {
		for le := 0; le < d.EPR; le++ {
			rowsOff[le+1] += st.recvPilotCounts[src][le]
		}
	}
	for src := range s2Recv {
		for _, rm := range st.s2RecvMeta[src] {
			le := rm.expert - me*d.EPR
			if le < 0 || le >= d.EPR {
				panic(fmt.Sprintf("rbd: stage-2 replica for expert %d landed on wrong rank", rm.expert))
			}
			rowsOff[le+1]++
		}
	}
	totalRows := 0
	for le := 0; le < d.EPR; le++ {
		rowsOff[le+1] += rowsOff[le]
		st.RowsPerLE[le] = rowsOff[le+1] - rowsOff[le]
		totalRows += st.RowsPerLE[le]
	}
	rowsFlat := make([]rowRef, totalRows)
	for le := range st.expertRows {
		st.expertRows[le] = rowsFlat[rowsOff[le]:rowsOff[le]]
	}
	for src := 0; src < p; src++ {
		pos := 0
		for le := 0; le < d.EPR; le++ {
			c := st.recvPilotCounts[src][le]
			for i := 0; i < c; i++ {
				st.expertRows[le] = append(st.expertRows[le],
					rowRef{pilot: true, abs: st.pilotPartOff[src] + pos})
				pos++
			}
		}
	}
	for src := range s2Recv {
		for pos, rm := range st.s2RecvMeta[src] {
			le := rm.expert - me*d.EPR
			st.expertRows[le] = append(st.expertRows[le], rowRef{part: src, pos: pos})
		}
	}
	r.Compute(StageReconstruct, comp.MemBound(perfmodel.ClassTriton, 2*int64(totalRows)*int64(h)*elem))
	mem.Alloc("rbd_expert_in", int64(totalRows)*int64(h)*elem)

	var expertIn *tensor.Tensor
	if opts.Numeric {
		expertIn = r.Pool().Get(totalRows, h)
		row := 0
		for le := range st.expertRows {
			for _, ref := range st.expertRows[le] {
				var src []float32
				if ref.pilot {
					src = st.pilotRows.Row(ref.abs)
				} else {
					src = s2Recv[ref.part].Data[ref.pos*h : (ref.pos+1)*h]
				}
				copy(expertIn.Row(row), src)
				row++
			}
		}
		// pilotRows is fully consumed (stage-2 staging and the rows just
		// copied above); return it to the rank arena.
		r.Pool().Put(st.pilotRows)
		st.pilotRows = nil
	}
	return st, expertIn
}

// DispatchPilots runs RBD stages 0-1 for rank r: pilot selection, pilot
// buffer instantiation, and the inter-node pilot exchange (chunked
// non-blocking when opts.OverlapChunks > 1). The returned state holds the
// received pilot payload and full Stage-1 metadata; the caller continues
// with either the blocking Stage 2 (Dispatch) or the overlapped
// IssueS2/PilotInput/FinishS2 sequence.
func (d *Dispatcher) DispatchPilots(r *simrt.Rank, pft *moe.PFT, dispIn *tensor.Tensor, rng *tensor.RNG, opts Opts) *State {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	me := d.EP.IndexOf(r.ID)
	myNode := d.nodeOfMember[me]
	nodeGroup := d.nodeGroups[myNode]
	comp := r.C.Comp
	mem := &r.Dev().Mem

	st := &State{pft: pft, nodeGroup: nodeGroup}
	if opts.Save {
		st.save = &FwdState{St: st}
	}
	b := pft.B()

	// --- Stage 0: pilot selection -----------------------------------------
	// Group PFT entries by (token, destination node); pick one pilot per
	// group at random, the rest become replicas referencing it. Grouping
	// is map-free: entries are bucketed by token (counting sort), then
	// each token's ≤k entries are partitioned by node with a small linear
	// scan. Groups are visited in deterministic (token, first-seen-node)
	// order, so the randomized pilot choice is reproducible for a fixed
	// seed.
	numTokens := 0
	for _, t := range pft.TokenIDs {
		if t >= numTokens {
			numTokens = t + 1
		}
	}
	byToken := kernels.GroupByDestination(pft.TokenIDs, numTokens)
	isPilot := make([]bool, b)
	pilotOf := make([]int, b) // replica entry -> pilot entry
	{
		// Per-token scratch, bounded by the routing fan-out and reused
		// across tokens (the fan-out k is small, so the scans are cheap).
		nodes := make([]int, 0, 16)
		grp := make([]int, 0, 16)
		for t := 0; t < numTokens; t++ {
			ents := byToken.Sources(t)
			if len(ents) == 0 {
				continue
			}
			// Distinct destination nodes in first-seen (PFT) order.
			nodes = nodes[:0]
			for _, i := range ents {
				n := d.NodeOfExpert(pft.ExpertIDs[i])
				seen := false
				for _, nn := range nodes {
					if nn == n {
						seen = true
						break
					}
				}
				if !seen {
					nodes = append(nodes, n)
				}
			}
			for _, n := range nodes {
				grp = grp[:0]
				for _, i := range ents {
					if d.NodeOfExpert(pft.ExpertIDs[i]) == n {
						grp = append(grp, i)
					}
				}
				chosen := grp[0] // PFT order, so grp[0] is the lowest expert
				if opts.Pilots == PilotRandom && len(grp) > 1 {
					chosen = grp[rng.Intn(len(grp))]
				}
				for _, i := range grp {
					isPilot[i] = chosen == i
					pilotOf[i] = chosen
				}
			}
		}
	}

	// Pilot send order: PFT (expert-major) order restricted to pilots,
	// so per-destination parts are contiguous and expert-sorted.
	pilotEntry := make([]int, 0, b)
	pilotSendPos := make([]int, b) // entry -> global send pos (pilots only)
	for i := 0; i < b; i++ {
		if isPilot[i] {
			pilotSendPos[i] = len(pilotEntry)
			pilotEntry = append(pilotEntry, i)
		}
	}
	st.pilotEntry = pilotEntry

	// Build per-destination parts.
	partStart := make([]int, p+1) // pilot send-order boundaries per member
	{
		cur := 0
		for dst := 0; dst < p; dst++ {
			partStart[dst] = cur
			for cur < len(pilotEntry) && d.memberOfExpert(pft.ExpertIDs[pilotEntry[cur]]) == dst {
				cur++
			}
		}
		partStart[p] = len(pilotEntry)
	}

	// Part metadata rows are views into flat backing arrays (constant
	// allocation count regardless of the EP size).
	metas := make([]s1Meta, p)
	countsFlat := make([]int, p*d.EPR)
	weightsFlat := make([]float32, len(pilotEntry))
	for dst := 0; dst < p; dst++ {
		lo, hi := partStart[dst], partStart[dst+1]
		metas[dst] = s1Meta{counts: countsFlat[dst*d.EPR : (dst+1)*d.EPR], weights: weightsFlat[lo:hi]}
		for pos := 0; pos < hi-lo; pos++ {
			ent := pilotEntry[lo+pos]
			metas[dst].counts[pft.ExpertIDs[ent]-dst*d.EPR]++
			metas[dst].weights[pos] = pft.CombineWeights[ent]
		}
	}
	replicaCount := 0
	replicasPerDst := make([]int, p+1)
	for i := 0; i < b; i++ {
		if isPilot[i] {
			continue
		}
		replicaCount++
		replicasPerDst[d.memberOfExpert(pft.ExpertIDs[pilotOf[i]])+1]++
	}
	replicasFlat := make([]replicaMeta, replicaCount)
	var entryFlat []int
	for dst := 0; dst < p; dst++ {
		replicasPerDst[dst+1] += replicasPerDst[dst]
		metas[dst].replicas = replicasFlat[replicasPerDst[dst]:replicasPerDst[dst]]
	}
	if opts.Save {
		// Backward needs the replica -> PFT entry map to land returned
		// combine-weight gradients; views share one flat backing like the
		// metadata rows above.
		entryFlat = make([]int, replicaCount)
		st.replicaEntry = make([][]int, p)
		for dst := 0; dst < p; dst++ {
			st.replicaEntry[dst] = entryFlat[replicasPerDst[dst]:replicasPerDst[dst]]
		}
	}
	for i := 0; i < b; i++ {
		if isPilot[i] {
			continue
		}
		pe := pilotOf[i]
		dst := d.memberOfExpert(pft.ExpertIDs[pe])
		metas[dst].replicas = append(metas[dst].replicas, replicaMeta{
			pilotRel: pilotSendPos[pe] - partStart[dst],
			expert:   pft.ExpertIDs[i],
			weight:   pft.CombineWeights[i],
		})
		if opts.Save {
			st.replicaEntry[dst] = append(st.replicaEntry[dst], i)
		}
	}

	// --- Stage 1: pilot instantiation + inter-node exchange ----------------
	// Blocking: one gather pass then one all-to-all. Chunked: each
	// destination part is split into opts.chunks() row ranges; chunk c's
	// pilot rows are instantiated (gather compute) and its all-to-all
	// issued non-blocking, so chunk c+1's instantiation hides behind
	// chunk c's transfer. The full s1Meta rides with chunk 0 only, so
	// the wire volume matches the blocking exchange exactly; both ends
	// derive later chunk boundaries from the same ChunkRange split.
	chunks := opts.chunks()
	var pilotBuf *tensor.Tensor
	if opts.Numeric {
		pilotBuf = tensor.New(len(pilotEntry), h)
	}
	mem.Alloc("rbd_pilot_send", int64(len(pilotEntry))*int64(h)*elem)
	s1H := make([]*simrt.CommHandle, 0, chunks)
	var recvBlocking []simrt.Part
	for c := 0; c < chunks; c++ {
		send := make([]simrt.Part, p)
		instRows := 0
		for dst := 0; dst < p; dst++ {
			lo, hi := partStart[dst], partStart[dst+1]
			clo, chi := simrt.ChunkRange(hi-lo, chunks, c)
			instRows += chi - clo
			part := simrt.Part{Bytes: int64(chi-clo) * int64(h) * elem}
			if c == 0 {
				part.Meta = metas[dst]
				part.Bytes += metas[dst].bytes()
			}
			if opts.Numeric && chi > clo {
				for sp := lo + clo; sp < lo+chi; sp++ {
					copy(pilotBuf.Row(sp), dispIn.Row(pilotEntry[sp]))
				}
				part.Data = pilotBuf.Data[(lo+clo)*h : (lo+chi)*h]
			}
			send[dst] = part
		}
		r.Compute(StageS1Inst, comp.MemBound(perfmodel.ClassTriton, 2*int64(instRows)*int64(h)*elem))
		if chunks == 1 {
			recvBlocking = r.AlltoAllV(d.EP, StageS1A2A, send)
		} else {
			s1H = append(s1H, r.AlltoAllVAsync(d.EP, StageS1A2A, send))
		}
	}

	st.recvPilotCounts = make([][]int, p)
	st.recvPilotW = make([][]float32, p)
	st.pilotPartOff = make([]int, p)
	st.recvMetas = make([]s1Meta, p)
	extractMetas := func(recv []simrt.Part) {
		total := 0
		for src, part := range recv {
			m := part.Meta.(s1Meta)
			st.recvMetas[src] = m
			st.recvPilotCounts[src] = m.counts
			st.recvPilotW[src] = m.weights
			st.pilotPartOff[src] = total
			total += len(m.weights)
		}
		st.pilotRowsTotal = total
		mem.Alloc("rbd_pilot_recv", int64(total)*int64(h)*elem)
		if opts.Numeric {
			st.pilotRows = r.Pool().Get(total, h)
		}
	}
	if chunks == 1 {
		extractMetas(recvBlocking)
		if opts.Numeric {
			for src, part := range recvBlocking {
				if len(part.Data) > 0 {
					copy(st.pilotRows.Data[st.pilotPartOff[src]*h:], part.Data)
				}
			}
		}
	} else {
		for c, hnd := range s1H {
			recv := hnd.Wait()
			if c == 0 {
				extractMetas(recv)
			}
			if !opts.Numeric {
				continue
			}
			for src, part := range recv {
				if len(part.Data) == 0 {
					continue
				}
				clo, _ := simrt.ChunkRange(len(st.recvPilotW[src]), chunks, c)
				copy(st.pilotRows.Data[(st.pilotPartOff[src]+clo)*h:], part.Data)
			}
		}
	}

	// Pilot segmentation per local expert: the overlap path runs the
	// pilot-row GEMMs from it while the Stage-2 exchange is in flight.
	st.PilotRowsPerLE = make([]int, d.EPR)
	for src := 0; src < p; src++ {
		for le := 0; le < d.EPR; le++ {
			st.PilotRowsPerLE[le] += st.recvPilotCounts[src][le]
		}
	}
	return st
}

// stageReplicas groups the incoming replica metadata by destination node
// member, instantiates the Stage-2 send buffers from the received pilot
// payload (charging the instantiation pass), and returns the parts.
// Shared by the blocking Dispatch and the overlapped IssueS2.
func (d *Dispatcher) stageReplicas(r *simrt.Rank, st *State, opts Opts) []simrt.Part {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	myNode := d.nodeOfMember[d.EP.IndexOf(r.ID)]
	comp := r.C.Comp
	mem := &r.Dev().Mem

	// Group incoming replicas by their destination member within this
	// node, ordered by ascending expert id (the paper's contiguous,
	// destination-ordered local exchange buffer).
	nodeMembers := d.nodeMembers[myNode]
	type stagedReplica struct {
		pilotAbs int
		meta     replicaMeta
		src, ri  int
	}
	// Count per destination slot, then fill flat-backed views.
	nReplicasIn := 0
	stagedCount := make([]int, len(nodeMembers)+1)
	for src := 0; src < p; src++ {
		for _, rm := range st.recvMetas[src].replicas {
			dm := d.memberOfExpert(rm.expert)
			if d.nodeOfMember[dm] != myNode {
				panic(fmt.Sprintf("rbd: replica for expert %d routed off-node", rm.expert))
			}
			stagedCount[d.slotOfMember[dm]+1]++
			nReplicasIn++
		}
	}
	staged := make([][]stagedReplica, len(nodeMembers))
	stagedFlat := make([]stagedReplica, nReplicasIn)
	for slot := range staged {
		stagedCount[slot+1] += stagedCount[slot]
		staged[slot] = stagedFlat[stagedCount[slot]:stagedCount[slot]]
	}
	for src := 0; src < p; src++ {
		for ri, rm := range st.recvMetas[src].replicas {
			abs := st.pilotPartOff[src] + rm.pilotRel // re-encode to absolute
			slot := d.slotOfMember[d.memberOfExpert(rm.expert)]
			staged[slot] = append(staged[slot], stagedReplica{pilotAbs: abs, meta: rm, src: src, ri: ri})
		}
	}
	// Stable order by expert id within each destination (the paper keeps
	// the local exchange buffer contiguous and expert-ordered).
	for slot := range staged {
		s := staged[slot]
		sort.SliceStable(s, func(a, b int) bool { return s[a].meta.expert < s[b].meta.expert })
	}
	r.Compute(StageS2Inst, comp.MemBound(perfmodel.ClassTriton, 2*int64(nReplicasIn)*int64(h)*elem))
	mem.Alloc("rbd_s2_send", int64(nReplicasIn)*int64(h)*elem)

	st.s2SentByMember = make([][]s2Sent, len(nodeMembers))
	s2Send := make([]simrt.Part, len(nodeMembers))
	for slot := range staged {
		rows := staged[slot]
		meta := make([]replicaMeta, len(rows))
		sent := make([]s2Sent, len(rows))
		var data []float32
		if opts.Numeric {
			data = make([]float32, len(rows)*h)
		}
		for pos, sr := range rows {
			meta[pos] = sr.meta
			sent[pos] = s2Sent{pilotAbs: sr.pilotAbs, weight: sr.meta.weight, src: sr.src, ri: sr.ri}
			if opts.Numeric {
				copy(data[pos*h:(pos+1)*h], st.pilotRows.Row(sr.pilotAbs))
			}
		}
		st.s2SentByMember[slot] = sent
		s2Send[slot] = simrt.Part{
			Data:  data,
			Meta:  meta,
			Bytes: int64(len(rows))*int64(h)*elem + int64(len(rows))*16,
		}
	}
	return s2Send
}

// Combine reverses RBD for rank r: replica expert-outputs return to the
// pilot's rank intra-node, are weight-scaled and merged into the pilot
// rows, and one inter-node all-to-all returns the merged partial sums to
// the source rank, which accumulates them into the [s, H] layer output.
// expertOut must be row-aligned with the buffer returned by Dispatch.
func (d *Dispatcher) Combine(r *simrt.Rank, st *State, expertOut *tensor.Tensor, s int, opts Opts) *tensor.Tensor {
	h := d.Cfg.HModel
	elem := int64(d.Cfg.BytesPerElem)
	p := d.EP.Size()
	comp := r.C.Comp
	mem := &r.Dev().Mem

	// Split expert outputs back into pilot-aligned and replica-aligned
	// rows.
	var pilotOut *tensor.Tensor
	replicaOut := make([][]float32, len(st.s2RecvCount))
	if opts.Numeric {
		pilotOut = r.Pool().Get(st.pilotRowsTotal, h)
		for src := range replicaOut {
			replicaOut[src] = make([]float32, st.s2RecvCount[src]*h)
		}
		row := 0
		for le := range st.expertRows {
			for _, ref := range st.expertRows[le] {
				out := expertOut.Row(row)
				if ref.pilot {
					copy(pilotOut.Row(ref.abs), out)
				} else {
					copy(replicaOut[ref.part][ref.pos*h:(ref.pos+1)*h], out)
				}
				row++
			}
		}
	}

	// --- Combine stage 2 (intra-node): return replica outputs --------------
	nodeGroup := st.nodeGroup
	s2Send := make([]simrt.Part, nodeGroup.Size())
	for slot := 0; slot < nodeGroup.Size(); slot++ {
		n := st.s2RecvCount[slot]
		part := simrt.Part{Bytes: int64(n) * int64(h) * elem}
		if opts.Numeric {
			part.Data = replicaOut[slot]
		}
		s2Send[slot] = part
	}
	s2Back := r.AlltoAllV(nodeGroup, StageC2A2A, s2Send)
	if st.save != nil && opts.Numeric {
		// Backward dots the merged-row gradients against these replica
		// expert outputs; senders allocated the payloads fresh, so the
		// views stay valid past the rendezvous.
		st.save.S2Back = make([][]float32, nodeGroup.Size())
		for slot := range st.save.S2Back {
			st.save.S2Back[slot] = s2Back[slot].Data
		}
	}

	// --- Merge replicas into pilots + inter-node pilot return --------------
	// Blocking: one weight-scaled merge pass, then one all-to-all.
	// Chunked: the received pilot rows are split into opts.chunks() row
	// ranges per source part; chunk c's merge (pilot scaling plus the
	// replica accumulations targeting its rows) runs on the device while
	// chunk c-1's return transfer is in flight. Per-row arithmetic order
	// is unchanged — a pilot row's scaling always precedes its replica
	// accumulations, which keep their (slot, pos) order — so the output
	// is bit-identical to the blocking path.
	chunks := opts.chunks()
	nMerge := 0
	for _, sent := range st.s2SentByMember {
		nMerge += len(sent)
	}
	var merged *tensor.Tensor
	if opts.Numeric {
		merged = tensor.New(st.pilotRowsTotal, h)
	}
	mem.Alloc("rbd_merged", int64(st.pilotRowsTotal)*int64(h)*elem)

	// Replica-merge work lists per chunk, preserving (slot, pos) order
	// inside each chunk.
	type mergeRef struct{ slot, pos int }
	var mergeByChunk [][]mergeRef
	if chunks > 1 {
		chunkOf := make([]int, st.pilotRowsTotal)
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			for c := 0; c < chunks; c++ {
				clo, chi := simrt.ChunkRange(n, chunks, c)
				for pos := clo; pos < chi; pos++ {
					chunkOf[st.pilotPartOff[src]+pos] = c
				}
			}
		}
		mergeByChunk = make([][]mergeRef, chunks)
		for slot, sent := range st.s2SentByMember {
			for pos, sRec := range sent {
				c := chunkOf[sRec.pilotAbs]
				mergeByChunk[c] = append(mergeByChunk[c], mergeRef{slot: slot, pos: pos})
			}
		}
	}

	c1H := make([]*simrt.CommHandle, 0, chunks)
	var backBlocking []simrt.Part
	for c := 0; c < chunks; c++ {
		// Merge this chunk's rows: scale pilots, then accumulate the
		// replica outputs whose pilot lands in the chunk.
		chunkRows, chunkMerges := 0, 0
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			clo, chi := simrt.ChunkRange(n, chunks, c)
			chunkRows += chi - clo
			if opts.Numeric {
				for pos := clo; pos < chi; pos++ {
					abs := st.pilotPartOff[src] + pos
					w := st.recvPilotW[src][pos]
					out := pilotOut.Row(abs)
					dst := merged.Row(abs)
					for j, v := range out {
						dst[j] = w * v
					}
				}
			}
		}
		if chunks == 1 {
			chunkMerges = nMerge
			if opts.Numeric {
				for slot, sent := range st.s2SentByMember {
					data := s2Back[slot].Data
					for pos, sRec := range sent {
						src := data[pos*h : (pos+1)*h]
						dst := merged.Row(sRec.pilotAbs)
						for j, v := range src {
							dst[j] += sRec.weight * v
						}
					}
				}
			}
		} else {
			chunkMerges = len(mergeByChunk[c])
			if opts.Numeric {
				for _, mr := range mergeByChunk[c] {
					sRec := st.s2SentByMember[mr.slot][mr.pos]
					src := s2Back[mr.slot].Data[mr.pos*h : (mr.pos+1)*h]
					dst := merged.Row(sRec.pilotAbs)
					for j, v := range src {
						dst[j] += sRec.weight * v
					}
				}
			}
		}
		r.Compute(StageCMerge, comp.MemBound(perfmodel.ClassTriton,
			2*int64(chunkMerges+chunkRows)*int64(h)*elem))

		// Return this chunk's merged pilot rows to their source ranks.
		sendBack := make([]simrt.Part, p)
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			clo, chi := simrt.ChunkRange(n, chunks, c)
			part := simrt.Part{Bytes: int64(chi-clo) * int64(h) * elem}
			if opts.Numeric && chi > clo {
				lo := st.pilotPartOff[src] + clo
				part.Data = merged.Data[lo*h : (lo+chi-clo)*h]
			}
			sendBack[src] = part
		}
		if chunks == 1 {
			backBlocking = r.AlltoAllV(d.EP, StageC1A2A, sendBack)
		} else {
			c1H = append(c1H, r.AlltoAllVAsync(d.EP, StageC1A2A, sendBack))
		}
	}
	if opts.Numeric {
		if st.save != nil {
			st.save.PilotOut = pilotOut
		} else {
			r.Pool().Put(pilotOut)
		}
	}

	// Reassemble the per-destination return buffers (chunk parts land at
	// their deterministic ChunkRange offsets; blocking parts are already
	// whole).
	retData := make([][]float32, p)
	if chunks == 1 {
		for dst := 0; dst < p; dst++ {
			retData[dst] = backBlocking[dst].Data
		}
	} else {
		// sentTo[dst] is the number of pilot rows this rank sent to dst —
		// the length of dst's return part, which dst chunked by the same
		// ChunkRange split.
		sentTo := make([]int, p)
		for _, ent := range st.pilotEntry {
			sentTo[d.memberOfExpert(st.pft.ExpertIDs[ent])]++
		}
		for c, hnd := range c1H {
			back := hnd.Wait()
			if !opts.Numeric {
				continue
			}
			for dst := 0; dst < p; dst++ {
				n := sentTo[dst]
				if retData[dst] == nil && n > 0 {
					retData[dst] = make([]float32, n*h)
				}
				clo, _ := simrt.ChunkRange(n, chunks, c)
				if len(back[dst].Data) > 0 {
					copy(retData[dst][clo*h:], back[dst].Data)
				}
			}
		}
	}

	// --- Final reconstruction on the source rank ----------------------------
	r.Compute(StageCScatter, comp.MemBound(perfmodel.ClassTriton,
		2*int64(len(st.pilotEntry))*int64(h)*elem))
	mem.Alloc("output", int64(s)*int64(h)*elem)
	if !opts.Numeric {
		return nil
	}
	out := tensor.New(s, h)
	// Parts return in member order; rows align with the pilot send order.
	pos := make([]int, p)
	for _, ent := range st.pilotEntry {
		dst := d.memberOfExpert(st.pft.ExpertIDs[ent])
		data := retData[dst]
		rowStart := pos[dst] * h
		pos[dst]++
		dstRow := out.Row(st.pft.TokenIDs[ent])
		for j := 0; j < h; j++ {
			dstRow[j] += data[rowStart+j]
		}
	}
	return out
}

// Redundancy analyses a routing against an expert->node placement: total
// dispatched copies, how many are redundant (would duplicate another copy
// of the same token to the same node), and how many cross node boundaries.
type Redundancy struct {
	Total      int
	Redundant  int
	InterNode  int // copies whose destination node differs from source
	PilotInter int // pilots crossing node boundaries (RBD's inter-node volume)
}

// Rate returns the redundant fraction of all dispatched copies (paper
// Fig. 4).
func (r Redundancy) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Redundant) / float64(r.Total)
}

// AnalyzeRedundancy computes redundancy for routing r where expert e lives
// on node nodeOfExpert(e) and the source rank lives on srcNode.
func AnalyzeRedundancy(rt moe.Routing, nodeOfExpert func(int) int, srcNode int) Redundancy {
	var red Redundancy
	for t := 0; t < rt.S; t++ {
		nodesSeen := map[int]bool{}
		for _, e := range rt.TopExperts[t] {
			red.Total++
			node := nodeOfExpert(e)
			if node != srcNode {
				red.InterNode++
			}
			if nodesSeen[node] {
				red.Redundant++
			} else {
				nodesSeen[node] = true
				if node != srcNode {
					red.PilotInter++
				}
			}
		}
	}
	return red
}

// ExpectedRedundancyRate returns the closed-form redundancy rate for
// uniform top-k routing over E experts placed across n nodes with the
// canonical block placement nodeOfExpert(x) = x*n/E (equal blocks when
// n | E, blocks differing by one otherwise). For each node holding c
// experts, P(node receives no copy) = C(E-c, k)/C(E, k); summing the
// per-node hit probabilities gives the exact hypergeometric expectation
// of distinct destination nodes, and the rate is 1 minus that divided by
// k. Exact for any (E, k, n) — the non-divisible case uses each node's
// true integer expert count, not the fractional E/n approximation.
func ExpectedRedundancyRate(e, k, nodes int) float64 {
	if nodes <= 0 || k <= 0 || e <= 0 {
		return 0
	}
	if k > e {
		k = e
	}
	perNode := make([]int, nodes)
	for x := 0; x < e; x++ {
		perNode[x*nodes/e]++
	}
	expectedNodes := 0.0
	for _, c := range perNode {
		// P(no copy on this node) = prod_{i=0..k-1} (E - c - i) / (E - i).
		pNone := 1.0
		for i := 0; i < k && pNone != 0; i++ {
			num := e - c - i
			if num <= 0 {
				pNone = 0
				break
			}
			pNone *= float64(num) / float64(e-i)
		}
		expectedNodes += 1 - pNone
	}
	if expectedNodes > float64(k) {
		expectedNodes = float64(k)
	}
	return 1 - expectedNodes/float64(k)
}
