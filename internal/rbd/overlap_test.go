package rbd

import (
	"math"
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// runForward executes the RBD layer on a fresh cluster and returns each
// rank's output.
func runForward(t *testing.T, world, s int, cfg moe.Config, chunks int) []*tensor.Tensor {
	t.Helper()
	c := newCluster(world)
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	outs := make([]*tensor.Tensor, world)
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(6100 + uint64(r.ID))
		x := tensor.Randn(rng, 1, s, cfg.HModel)
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
		epr := cfg.NumExperts / world
		me := g.IndexOf(r.ID)
		params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
		for le := 0; le < epr; le++ {
			params.W1[le], params.W2[le] = expertWeights(me*epr+le, cfg.HModel, cfg.HFFN)
		}
		res := Forward(r, d, cfg, s, x, routing, params, tensor.NewRNG(42+uint64(r.ID)),
			moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropByCapacityWeight, OverlapChunks: chunks})
		outs[r.ID] = res.Output
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// TestChunkedForwardBitIdenticalToBlocking pins the chunked S1/C1
// exchanges against the blocking RBD path bit for bit: chunking re-times
// the inter-node transfers but must not move a single row or reorder any
// per-row accumulation.
func TestChunkedForwardBitIdenticalToBlocking(t *testing.T) {
	cfg := moe.Config{NumExperts: 32, TopK: 5, HModel: 10, HFFN: 6,
		CapacityFactor: 1.25, BytesPerElem: 2}
	const world, s = 16, 24
	blocking := runForward(t, world, s, cfg, 1)
	for _, chunks := range []int{2, 3, 4, 8} {
		chunked := runForward(t, world, s, cfg, chunks)
		for rank := range blocking {
			a, b := blocking[rank], chunked[rank]
			if a.Len() != b.Len() {
				t.Fatalf("C=%d rank %d output sizes differ", chunks, rank)
			}
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("C=%d rank %d bit mismatch at %d: %v vs %v",
						chunks, rank, i, a.Data[i], b.Data[i])
				}
			}
		}
	}
}

// TestChunkedRBDOverlapFaster asserts the chunked inter-node exchanges
// hide instantiation/merge compute: on a large-hidden configuration the
// simulated layer must be strictly faster than blocking for C >= 2.
func TestChunkedRBDOverlapFaster(t *testing.T) {
	cfg := moe.Config{NumExperts: 64, TopK: 8, HModel: 4096, HFFN: 2048,
		CapacityFactor: 100, BytesPerElem: 2}
	const world, s = 16, 1024
	run := func(chunks int) float64 {
		c := newCluster(world)
		g := c.WorldGroup()
		d := NewDispatcher(c, g, cfg)
		ranks, err := c.RunCollect(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(uint64(300 + r.ID))
			routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
			Forward(r, d, cfg, s, nil, routing, nil, tensor.NewRNG(uint64(r.ID)),
				moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, OverlapChunks: chunks})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return simrt.MaxClock(ranks)
	}
	blocking := run(1)
	for _, chunks := range []int{2, 4} {
		if overlapped := run(chunks); overlapped >= blocking {
			t.Errorf("C=%d: RBD overlapped %.6fs not faster than blocking %.6fs",
				chunks, overlapped, blocking)
		}
	}
}

// TestExpertGEMMsHideS2C2 pins the overlap structure of the chunked RBD
// path: the intra-node S2/C2 exchanges run as in-flight spans under the
// expert GEMMs / merge compute, so the clock charge attributed to them
// must be strictly below their physical duration (partially or fully
// hidden), on a configuration with enough expert compute to cover them.
func TestExpertGEMMsHideS2C2(t *testing.T) {
	cfg := moe.Config{NumExperts: 64, TopK: 8, HModel: 4096, HFFN: 2048,
		CapacityFactor: 100, BytesPerElem: 2}
	const world, s = 16, 1024
	c := newCluster(world)
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	ranks, err := c.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(300 + r.ID))
		routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.3)
		Forward(r, d, cfg, s, nil, routing, nil, tensor.NewRNG(uint64(r.ID)),
			moe.PipelineOpts{DropPolicy: moe.DropByCapacityWeight, OverlapChunks: 4})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range ranks {
		// Both intra-node exchanges must run as in-flight (asynchronous)
		// spans.
		for _, stage := range []string{StageS2A2A, StageC2A2A} {
			if rk.Trace.OverlappedTotal(stage) <= 0 {
				t.Fatalf("rank %d: %s has no in-flight span — the exchange is not asynchronous", rk.ID, stage)
			}
		}
		// The pilot GEMMs run between the S2 issue and its wait, so part
		// of S2's duration must be hidden: the clock charge stays
		// strictly below the physical span. (C2's charge also includes
		// BSP straggler skew — the wait runs to the slowest member's
		// finish, as a blocking exchange would — so the strict assertion
		// only holds for S2, where the preceding S1 waits synchronise
		// the members.)
		inFlight := rk.Trace.OverlappedTotal(StageS2A2A)
		if charged := rk.Trace.Total(StageS2A2A); charged >= inFlight {
			t.Errorf("rank %d: %s charged %.6fs of %.6fs in flight — nothing hidden behind the pilot GEMMs",
				rk.ID, StageS2A2A, charged, inFlight)
		}
	}
}

// TestExpectedRedundancyRateMatchesMonteCarlo compares the closed-form
// redundancy rate against AnalyzeRedundancy on uniform routing. The
// closed form sums the exact per-node hit probability over the canonical
// placement, so the non-divisible E/nodes cases (E=10 over 4 nodes places
// 3/2/3/2) are exact too — only sampling noise remains; see
// TestExpectedRedundancyRateExactInvariant for the big.Rat pin.
func TestExpectedRedundancyRateMatchesMonteCarlo(t *testing.T) {
	for _, tc := range []struct {
		e, k, nodes int
		tol         float64
	}{
		{8, 3, 4, 0.01},   // divisible
		{10, 3, 4, 0.02},  // non-divisible: nodes hold 3/2/3/2 experts
		{10, 4, 4, 0.025}, // non-divisible, larger fan-out
	} {
		nodeOfExpert := func(e int) int { return e * tc.nodes / tc.e }
		const s = 20000
		rt := moe.SyntheticRouting(tensor.NewRNG(77), s, tc.e, tc.k, 0)
		mc := AnalyzeRedundancy(rt, nodeOfExpert, 0).Rate()
		want := ExpectedRedundancyRate(tc.e, tc.k, tc.nodes)
		if diff := math.Abs(mc - want); diff > tc.tol {
			t.Errorf("E=%d k=%d nodes=%d: Monte-Carlo %.4f vs closed form %.4f (|diff| %.4f > %.4f)",
				tc.e, tc.k, tc.nodes, mc, want, diff, tc.tol)
		}
	}
}
