package rbd

import (
	"fmt"
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// TestForwardMatchesPFTForward validates the composed RBD layer against
// the flat padding-free pipeline on identical inputs: same routing, same
// expert weights, same drop policy — outputs must agree, completing the
// §4.2 correctness argument end to end.
func TestForwardMatchesPFTForward(t *testing.T) {
	cfg := moe.Config{NumExperts: 32, TopK: 5, HModel: 10, HFFN: 6,
		CapacityFactor: 1.25, BytesPerElem: 2}
	const s, world = 24, 16 // 2 Frontier nodes

	run := func(useRBD bool) map[int]*tensor.Tensor {
		c := newCluster(world)
		g := c.WorldGroup()
		var d *Dispatcher
		if useRBD {
			d = NewDispatcher(c, g, cfg)
		}
		outs := make([]*tensor.Tensor, world)
		err := c.Run(func(r *simrt.Rank) error {
			rng := tensor.NewRNG(6100 + uint64(r.ID))
			x := tensor.Randn(rng, 1, s, cfg.HModel)
			routing := moe.SyntheticRouting(rng, s, cfg.NumExperts, cfg.TopK, 0.6)
			epr := cfg.NumExperts / world
			me := g.IndexOf(r.ID)
			params := &moe.ExpertParams{W1: make([]*tensor.Tensor, epr), W2: make([]*tensor.Tensor, epr)}
			for le := 0; le < epr; le++ {
				params.W1[le], params.W2[le] = expertWeights(me*epr+le, cfg.HModel, cfg.HFFN)
			}
			opts := moe.PipelineOpts{Numeric: true, DropPolicy: moe.DropByCapacityWeight}
			var out *tensor.Tensor
			if useRBD {
				out = Forward(r, d, cfg, s, x, routing, params, tensor.NewRNG(42+uint64(r.ID)), opts).Output
			} else {
				out = moe.PFTForward(r, g, cfg, s, x, routing, params, opts).Output
			}
			outs[r.ID] = out
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		m := map[int]*tensor.Tensor{}
		for i, o := range outs {
			m[i] = o
		}
		return m
	}

	withRBD := run(true)
	without := run(false)
	for rank := range without {
		if withRBD[rank] == nil || without[rank] == nil {
			t.Fatalf("rank %d produced nil output", rank)
		}
		if !withRBD[rank].Equal(without[rank], 1e-3) {
			t.Fatalf("rank %d: RBD forward differs from PFT forward", rank)
		}
	}
}

// TestForwardSymbolicTraceStages checks the RBD layer emits the Fig. 12
// trace stages and accounts memory.
func TestForwardSymbolicTraceStages(t *testing.T) {
	cfg := moe.Config{NumExperts: 32, TopK: 4, HModel: 64, HFFN: 32,
		CapacityFactor: 1.25, BytesPerElem: 2}
	c := newCluster(16)
	g := c.WorldGroup()
	d := NewDispatcher(c, g, cfg)
	err := c.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(r.ID))
		routing := moe.SyntheticRouting(rng, 64, cfg.NumExperts, cfg.TopK, 0.5)
		Forward(r, d, cfg, 64, nil, routing, nil, tensor.NewRNG(uint64(r.ID)), moe.PipelineOpts{})
		for _, stage := range []string{StageS1Inst, StageS1A2A, StageS2Inst,
			StageS2A2A, StageReconstruct, StageC2A2A, StageC1A2A} {
			if r.Trace.Total(stage) <= 0 {
				return fmt.Errorf("stage %q missing from trace", stage)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.PeakMemory() <= 0 {
		t.Fatal("symbolic RBD forward must account memory")
	}
}
