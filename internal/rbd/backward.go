package rbd

// Native backward pass of the hierarchical RBD transport. The forward
// moved every (token, destination-node) group as one pilot row over the
// inter-node fabric (S1), reconstructed replicas intra-node (S2), and
// reversed the process on the combine side (C2 intra-node, weight-scaled
// merge onto pilots, C1 inter-node return). The backward reverses the
// reversal, stage by stage and link class by link class:
//
//	reverse CScatter  - dOut rows fan back out over the sent pilots
//	reverse C1 (inter)- merged-row gradients return to the pilot holder
//	merge backward    - pilot scaling + replica weighting differentiate;
//	                    combine-weight gradients are dot products against
//	                    the saved expert outputs
//	reverse C2 (intra)- replica-output gradients travel to the expert rank
//	FFN backward      - dX chain + dW over the forward's exact segments
//	reverse S2 (intra)- replica-input gradients return to the pilot holder
//	pilot reduction   - replica gradients accumulate onto their pilot row
//	reverse S1 (inter)- pilot-input gradients + combine-weight gradients
//	                    return to the source rank
//	scatter backward  - pilot gradients accumulate into dX rows
//
// Only pilot rows cross the inter-node links in either direction — the
// backward keeps RBD's redundancy bypass instead of pricing itself as the
// mirrored flat transport. Wire volumes are charged with the same
// integer-exact per-part expressions as the forward (netsim's aggregate
// per-link-class convention); the combine-weight gradients ride the
// reverse-S1 metadata at 4 bytes per pilot and replica, mirroring the
// forward's s1Meta weights.

import (
	"fmt"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/perfmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Backward trace stage names, mirrored against the forward RBD stages.
const (
	StageBwdCScatter = "rbd_bwd_comb_scatter" // dOut fan-out over sent pilots
	StageBwdC1A2A    = "rbd_bwd_comb_s1_a2a"  // inter-node merged-grad return
	StageBwdCMerge   = "rbd_bwd_comb_merge"   // merge backward + weight-grad dots
	StageBwdC2A2A    = "rbd_bwd_comb_s2_a2a"  // intra-node replica-grad return
	StageBwdS2A2A    = "rbd_bwd_s2_a2a"       // intra-node replica dX return
	StageBwdS2Red    = "rbd_bwd_s2_reduce"    // replica-grad reduction onto pilots
	StageBwdS1A2A    = "rbd_bwd_s1_a2a"       // inter-node pilot dX return
	StageBwdS1Scat   = "rbd_bwd_s1_scatter"   // pilot-grad scatter into dX
)

// FwdState is the saved forward state the RBD backward consumes: the
// dispatch geometry plus, in numeric mode, the expert-FFN intermediates in
// the blocking full layout (per local expert: pilot rows src-ascending,
// then replica rows (part, pos)-ascending — the overlapped forward
// scatters its split buffers into this layout so the backward is
// chunk-count-agnostic) and the pre-scaling expert outputs the
// combine-weight gradients dot against. In symbolic mode the tensors are
// nil and only the geometry is populated.
type FwdState struct {
	S  int
	St *State
	// ExpertIn/HidPre/HidAct are [BExp, H/F/F] in the blocking layout.
	ExpertIn, HidPre, HidAct *tensor.Tensor
	// PilotOut is the [pilotRowsTotal, H] expert output of every pilot
	// row held by this rank, absolute-indexed.
	PilotOut *tensor.Tensor
	// S2Back[slot] is the replica expert-output payload returned through
	// C2 in the forward, aligned with State.s2SentByMember[slot].
	S2Back [][]float32
}

// bwdS1Meta carries the combine-weight gradients back to the source rank
// alongside the reverse-S1 pilot-gradient rows: one float per pilot row of
// the part and one per replica the source announced in its s1Meta.
type bwdS1Meta struct {
	pilotWG   []float32
	replicaWG []float32
}

// bwdS1MetaBytes is the wire charge for the part's weight-gradient
// metadata, mirroring the forward s1Meta convention (4 bytes per float).
func bwdS1MetaBytes(nPilot, nReplica int) int64 {
	return int64(nPilot+nReplica) * 4
}

// ensureRowRefs populates the split row maps (pilotAbs, replicaRef,
// ReplicaRowsPerLE) when the forward ran the blocking path, which tracks
// rows through expertRows instead. The enumeration is the overlapped
// forward's exact order — per local expert: pilots source-ascending, then
// replicas (part, pos)-ascending — which is also the blocking buffer
// order, so both forwards produce one canonical backward layout.
func (d *Dispatcher) ensureRowRefs(r *simrt.Rank, st *State) {
	me := d.EP.IndexOf(r.ID)
	p := d.EP.Size()
	if st.pilotAbs == nil {
		nPilot := 0
		for _, c := range st.PilotRowsPerLE {
			nPilot += c
		}
		st.pilotAbs = make([]int, 0, nPilot)
		posOfLE := make([]int, p)
		for le := 0; le < d.EPR; le++ {
			for src := 0; src < p; src++ {
				c := st.recvPilotCounts[src][le]
				for i := 0; i < c; i++ {
					st.pilotAbs = append(st.pilotAbs, st.pilotPartOff[src]+posOfLE[src]+i)
				}
				posOfLE[src] += c
			}
		}
	}
	if st.ReplicaRowsPerLE == nil {
		st.ReplicaRowsPerLE = make([]int, d.EPR)
		for src := range st.s2RecvMeta {
			for _, rm := range st.s2RecvMeta[src] {
				st.ReplicaRowsPerLE[rm.expert-me*d.EPR]++
			}
		}
	}
	if st.replicaRef == nil {
		nReplica := 0
		for _, c := range st.ReplicaRowsPerLE {
			nReplica += c
		}
		st.replicaRef = make([]rowRef, nReplica)
		refOff := make([]int, d.EPR+1)
		for le := 0; le < d.EPR; le++ {
			refOff[le+1] = refOff[le] + st.ReplicaRowsPerLE[le]
		}
		cursor := make([]int, d.EPR)
		for src := range st.s2RecvMeta {
			for pos, rm := range st.s2RecvMeta[src] {
				le := rm.expert - me*d.EPR
				st.replicaRef[refOff[le]+cursor[le]] = rowRef{part: src, pos: pos}
				cursor[le]++
			}
		}
	}
}

// bwdGeom bundles the derived index maps shared by the blocking and
// overlapped backward paths.
type bwdGeom struct {
	bExp       int
	rowsOff    []int // full-layout offset per local expert
	pilotFull  []int // pilotAbs index -> full-layout row
	replFull   []int // replicaRef index -> full-layout row
	wByAbs     []float32
	sentTo     []int // pilots this rank sent to each EP member
	partStart  []int // pilot send-order boundaries per member
	fullOfPart [][]int // (s2 part, pos) -> full-layout row
}

func (d *Dispatcher) backwardGeom(r *simrt.Rank, st *State) *bwdGeom {
	p := d.EP.Size()
	d.ensureRowRefs(r, st)
	g := &bwdGeom{}
	g.rowsOff = make([]int, d.EPR+1)
	for le := 0; le < d.EPR; le++ {
		g.rowsOff[le+1] = g.rowsOff[le] + st.RowsPerLE[le]
	}
	g.bExp = g.rowsOff[d.EPR]
	g.pilotFull = make([]int, len(st.pilotAbs))
	g.replFull = make([]int, len(st.replicaRef))
	{
		i, j := 0, 0
		for le := 0; le < d.EPR; le++ {
			for k := 0; k < st.PilotRowsPerLE[le]; k++ {
				g.pilotFull[i] = g.rowsOff[le] + k
				i++
			}
			for k := 0; k < st.ReplicaRowsPerLE[le]; k++ {
				g.replFull[j] = g.rowsOff[le] + st.PilotRowsPerLE[le] + k
				j++
			}
		}
	}
	g.wByAbs = make([]float32, st.pilotRowsTotal)
	for src := 0; src < p; src++ {
		for pos, w := range st.recvPilotW[src] {
			g.wByAbs[st.pilotPartOff[src]+pos] = w
		}
	}
	g.sentTo = make([]int, p)
	for _, ent := range st.pilotEntry {
		g.sentTo[d.memberOfExpert(st.pft.ExpertIDs[ent])]++
	}
	g.partStart = make([]int, p+1)
	for dst := 0; dst < p; dst++ {
		g.partStart[dst+1] = g.partStart[dst] + g.sentTo[dst]
	}
	g.fullOfPart = make([][]int, len(st.s2RecvCount))
	for part := range g.fullOfPart {
		g.fullOfPart[part] = make([]int, st.s2RecvCount[part])
	}
	for i, ref := range st.replicaRef {
		g.fullOfPart[ref.part][ref.pos] = g.replFull[i]
	}
	return g
}

// Backward runs the distributed backward pass of the RBD-transport MoE
// layer, reversing every forward stage over the same link classes (see
// the package comment above). Given the forward state saved by Forward
// with opts.SaveForBackward and the output gradient dOut [S, H], it
// returns dX, the per-local-expert weight gradients, and the per-PFT-entry
// combine-weight gradients. In symbolic mode (opts.Numeric false) the pass
// charges its modeled times and integer-exact wire volumes only.
//
// opts.OverlapChunks selects the chunked overlapped backward: the
// reverse-C1 merged-gradient return is chunked so per-chunk merge backward
// hides the transfers, the intra-node reverse C2/S2 exchanges fly
// non-blocking under the pilot/replica dX GEMM chains, dW GEMMs are
// deferred to the complete segments (the blocking summation order), and
// the reverse-S1 chunks drain under the final scatter staging. Gradients
// are bit-identical to the blocking backward for any chunk count.
//
// opts.OnDWReady, when set, fires exactly once: on the blocking path right
// after the reverse-S1 all-to-all (the last blocking collective) retires;
// on the overlapped path after dW completes and every reverse-S1 chunk is
// in flight.
func Backward(r *simrt.Rank, d *Dispatcher, cfg moe.Config, fwd *FwdState,
	dOut *tensor.Tensor, params *moe.ExpertParams, opts moe.PipelineOpts) moe.BackwardResult {

	if err := CheckOpts(opts); err != nil {
		panic(err.Error())
	}
	if fwd == nil || fwd.St == nil {
		panic("rbd: Backward requires the forward state saved by Forward with SaveForBackward")
	}
	if opts.Numeric && fwd.ExpertIn == nil {
		panic((&moe.OptionError{Opt: "Numeric", Detail: "rbd: numeric Backward, but the forward state was captured symbolically (SaveForBackward ran without Numeric)"}).Error())
	}
	if opts.OverlapChunks > 1 {
		return backwardOverlap(r, d, cfg, fwd, dOut, params, opts)
	}

	st := fwd.St
	pft := st.pft
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	p := d.EP.Size()
	comp := r.C.Comp
	pool := r.Pool()
	nodeGroup := st.nodeGroup
	g := d.backwardGeom(r, st)
	nPilotSent := len(st.pilotEntry)

	// --- Reverse CScatter: fan dOut back out over the sent pilots ----------
	// The forward scatter-added each returned merged row into its token's
	// output row unscaled, so the row gradient is a pure gather of dOut.
	r.Compute(StageBwdCScatter, comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilotSent)*int64(h)*elem))
	var dRet *tensor.Tensor
	if opts.Numeric {
		// Crosses the collective below: allocate fresh. Rows are already
		// destination-contiguous (pilot send order is expert-major).
		dRet = tensor.New(nPilotSent, h)
		for i, ent := range st.pilotEntry {
			copy(dRet.Row(i), dOut.Row(pft.TokenIDs[ent]))
		}
	}

	// --- Reverse C1 (inter-node): merged-row gradients to pilot holders ----
	send := make([]simrt.Part, p)
	for dst := 0; dst < p; dst++ {
		lo, hi := g.partStart[dst], g.partStart[dst+1]
		part := simrt.Part{Bytes: int64(hi-lo) * int64(h) * elem}
		if opts.Numeric && hi > lo {
			part.Data = dRet.Data[lo*h : hi*h]
		}
		send[dst] = part
	}
	recv := r.AlltoAllV(d.EP, StageBwdC1A2A, send)

	var dMerged *tensor.Tensor
	if opts.Numeric {
		dMerged = pool.Get(st.pilotRowsTotal, h)
		for src, part := range recv {
			if len(part.Data) > 0 {
				copy(dMerged.Data[st.pilotPartOff[src]*h:], part.Data)
			}
		}
	}

	// --- Merge backward + combine-weight gradients --------------------------
	nMerge := 0
	for _, sent := range st.s2SentByMember {
		nMerge += len(sent)
	}
	// Two passes over every merged row and replica row: the gradient
	// scaling and the weight-gradient dot against the saved outputs.
	r.Compute(StageBwdCMerge, comp.MemBoundN(perfmodel.ClassTriton, 2,
		2*int64(st.pilotRowsTotal+nMerge)*int64(h)*elem))
	var dExpertOut *tensor.Tensor
	var wgAbs []float32
	var wgRepBySlot [][]float32
	dRepRet := make([][]float32, len(st.s2SentByMember))
	if opts.Numeric {
		dExpertOut = pool.Get(g.bExp, h)
		wgAbs = make([]float32, st.pilotRowsTotal)
		for i, abs := range st.pilotAbs {
			w := g.wByAbs[abs]
			gRow := dMerged.Row(abs)
			oRow := fwd.PilotOut.Row(abs)
			dRow := dExpertOut.Row(g.pilotFull[i])
			var dot float32
			for j, v := range gRow {
				dRow[j] = w * v
				dot += v * oRow[j]
			}
			wgAbs[abs] = dot
		}
		wgRepBySlot = make([][]float32, len(st.s2SentByMember))
		for slot, sent := range st.s2SentByMember {
			// Crosses reverse C2: allocate fresh.
			buf := make([]float32, len(sent)*h)
			wg := make([]float32, len(sent))
			back := fwd.S2Back[slot]
			for pos, sRec := range sent {
				gRow := dMerged.Row(sRec.pilotAbs)
				oRow := back[pos*h : (pos+1)*h]
				dst := buf[pos*h : (pos+1)*h]
				var dot float32
				for j, v := range gRow {
					dst[j] = sRec.weight * v
					dot += v * oRow[j]
				}
				wg[pos] = dot
			}
			dRepRet[slot] = buf
			wgRepBySlot[slot] = wg
		}
		pool.Put(dMerged)
	}

	// --- Reverse C2 (intra-node): replica-output gradients to expert ranks -
	c2Send := make([]simrt.Part, nodeGroup.Size())
	for slot := range c2Send {
		n := len(st.s2SentByMember[slot])
		part := simrt.Part{Bytes: int64(n) * int64(h) * elem}
		if opts.Numeric {
			part.Data = dRepRet[slot]
		}
		c2Send[slot] = part
	}
	c2Recv := r.AlltoAllV(nodeGroup, StageBwdC2A2A, c2Send)
	if opts.Numeric {
		for i, ref := range st.replicaRef {
			copy(dExpertOut.Row(g.replFull[i]), c2Recv[ref.part].Data[ref.pos*h:(ref.pos+1)*h])
		}
	}

	// --- Expert FFN backward ------------------------------------------------
	r.Compute(moe.StageBwdExperts, comp.SequentialGEMM(st.RowsPerLE, h, f)*2+
		comp.SequentialGEMM(st.RowsPerLE, f, h)*2+
		comp.MemBound(perfmodel.ClassTriton, 2*int64(g.bExp)*int64(f)*elem))
	var dW1, dW2 []*tensor.Tensor
	var dExpertIn *tensor.Tensor
	if opts.Numeric {
		dW2 = newGradTensors(params.W2)
		dHidAct := pool.Get(g.bExp, f)
		kernels.SequentialGEMMBackwardInto(dHidAct, dW2, dExpertOut, fwd.HidAct, st.RowsPerLE, params.W2)
		pool.Put(dExpertOut)
		dHidPre := pool.Get(g.bExp, f)
		tensor.GeLUBackwardInto(dHidPre, dHidAct, fwd.HidPre)
		pool.Put(dHidAct)
		dW1 = newGradTensors(params.W1)
		dExpertIn = pool.Get(g.bExp, h)
		kernels.SequentialGEMMBackwardInto(dExpertIn, dW1, dHidPre, fwd.ExpertIn, st.RowsPerLE, params.W1)
		pool.Put(dHidPre)
	}

	// --- Reverse S2 (intra-node): replica-input gradients to pilot holders -
	s2Send := make([]simrt.Part, nodeGroup.Size())
	for src := range s2Send {
		n := st.s2RecvCount[src]
		part := simrt.Part{Bytes: int64(n) * int64(h) * elem}
		if opts.Numeric && n > 0 {
			buf := make([]float32, n*h)
			for pos := 0; pos < n; pos++ {
				copy(buf[pos*h:(pos+1)*h], dExpertIn.Row(g.fullOfPart[src][pos]))
			}
			part.Data = buf
		}
		s2Send[src] = part
	}
	s2Grad := r.AlltoAllV(nodeGroup, StageBwdS2A2A, s2Send)

	// --- Replica-gradient reduction onto pilot rows -------------------------
	r.Compute(StageBwdS2Red, comp.MemBound(perfmodel.ClassTriton,
		2*int64(st.pilotRowsTotal+nMerge)*int64(h)*elem))
	var dPilotIn *tensor.Tensor
	if opts.Numeric {
		// Crosses reverse S1 (sent as per-part views): allocate fresh.
		dPilotIn = tensor.New(st.pilotRowsTotal, h)
		for i, abs := range st.pilotAbs {
			copy(dPilotIn.Row(abs), dExpertIn.Row(g.pilotFull[i]))
		}
		for slot, sent := range st.s2SentByMember {
			data := s2Grad[slot].Data
			for pos, sRec := range sent {
				gRow := data[pos*h : (pos+1)*h]
				dst := dPilotIn.Row(sRec.pilotAbs)
				for j, v := range gRow {
					dst[j] += v
				}
			}
		}
		pool.Put(dExpertIn)
	}

	// --- Reverse S1 (inter-node): pilot gradients + weight grads home ------
	backSend := make([]simrt.Part, p)
	for src := 0; src < p; src++ {
		n := len(st.recvPilotW[src])
		nRep := len(st.recvMetas[src].replicas)
		part := simrt.Part{Bytes: int64(n)*int64(h)*elem + bwdS1MetaBytes(n, nRep)}
		if opts.Numeric {
			if n > 0 {
				lo := st.pilotPartOff[src]
				part.Data = dPilotIn.Data[lo*h : (lo+n)*h]
			}
			repWG := make([]float32, nRep)
			part.Meta = bwdS1Meta{pilotWG: wgAbs[st.pilotPartOff[src] : st.pilotPartOff[src]+n], replicaWG: repWG}
		}
		backSend[src] = part
	}
	if opts.Numeric {
		// Replica weight gradients route to the source that announced the
		// replica in its s1Meta, indexed by its position there.
		for slot, sent := range st.s2SentByMember {
			for pos, sRec := range sent {
				backSend[sRec.src].Meta.(bwdS1Meta).replicaWG[sRec.ri] = wgRepBySlot[slot][pos]
			}
		}
	}
	back := r.AlltoAllV(d.EP, StageBwdS1A2A, backSend)
	if opts.OnDWReady != nil {
		// dW is complete and the backward's last blocking collective has
		// retired: gradient sync issued here overlaps the scatter backward
		// and every earlier layer's backward compute.
		opts.OnDWReady()
	}

	// --- Scatter backward into dX + combine-weight gradient mapping --------
	r.Compute(StageBwdS1Scat, comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilotSent)*int64(h)*elem))
	var dx *tensor.Tensor
	var dWeights []float32
	if opts.Numeric {
		dx = tensor.New(fwd.S, h)
		dWeights = make([]float32, pft.B())
		pos := make([]int, p)
		for _, ent := range st.pilotEntry {
			dst := d.memberOfExpert(pft.ExpertIDs[ent])
			m := back[dst].Meta.(bwdS1Meta)
			row := back[dst].Data[pos[dst]*h : (pos[dst]+1)*h]
			dWeights[ent] = m.pilotWG[pos[dst]]
			pos[dst]++
			dstRow := dx.Row(pft.TokenIDs[ent])
			for j, v := range row {
				dstRow[j] += v
			}
		}
		for dst := 0; dst < p; dst++ {
			if len(st.replicaEntry) == 0 {
				break
			}
			var m bwdS1Meta
			if back[dst].Meta != nil {
				m = back[dst].Meta.(bwdS1Meta)
			}
			for ri, ent := range st.replicaEntry[dst] {
				dWeights[ent] = m.replicaWG[ri]
			}
		}
		// The forward state is consumed: its saved intermediates return to
		// the arena for the next layer's pass.
		pool.PutAll(fwd.ExpertIn, fwd.HidPre, fwd.HidAct, fwd.PilotOut)
		fwd.ExpertIn, fwd.HidPre, fwd.HidAct, fwd.PilotOut = nil, nil, nil, nil
		fwd.S2Back = nil
	}

	return moe.BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}

// backwardOverlap is the chunked overlapped RBD backward. The reverse-C1
// merged-gradient all-to-alls are issued non-blocking up front (chunked by
// the same per-part ChunkRange split as the forward C1 return), each
// chunk's merge backward runs while the next chunk is in flight, the
// intra-node reverse C2 and reverse S2 exchanges fly non-blocking under
// the pilot and replica dX GEMM chains, the dW GEMMs are deferred to the
// complete blocking-layout segments (bit-identical summation order), and
// the reverse-S1 chunks drain into a staging buffer before one scatter
// pass in pilot send order — the blocking accumulation order, so the
// gradients are bit-identical for any chunk count.
func backwardOverlap(r *simrt.Rank, d *Dispatcher, cfg moe.Config, fwd *FwdState,
	dOut *tensor.Tensor, params *moe.ExpertParams, opts moe.PipelineOpts) moe.BackwardResult {

	st := fwd.St
	pft := st.pft
	h, f := cfg.HModel, cfg.HFFN
	elem := int64(cfg.BytesPerElem)
	p := d.EP.Size()
	comp := r.C.Comp
	pool := r.Pool()
	nodeGroup := st.nodeGroup
	chunks := opts.OverlapChunks
	g := d.backwardGeom(r, st)
	nPilotSent := len(st.pilotEntry)

	// --- Chunked reverse CScatter + non-blocking reverse C1 -----------------
	var dRet *tensor.Tensor
	if opts.Numeric {
		dRet = tensor.New(nPilotSent, h)
	}
	c1H := make([]*simrt.CommHandle, chunks)
	sendFlat := make([]simrt.Part, chunks*p)
	for c := 0; c < chunks; c++ {
		send := sendFlat[c*p : (c+1)*p]
		chunkRows := 0
		for dst := 0; dst < p; dst++ {
			lo := g.partStart[dst]
			clo, chi := simrt.ChunkRange(g.sentTo[dst], chunks, c)
			chunkRows += chi - clo
			part := simrt.Part{Bytes: int64(chi-clo) * int64(h) * elem}
			if opts.Numeric && chi > clo {
				for i := lo + clo; i < lo+chi; i++ {
					copy(dRet.Row(i), dOut.Row(pft.TokenIDs[st.pilotEntry[i]]))
				}
				part.Data = dRet.Data[(lo+clo)*h : (lo+chi)*h]
			}
			send[dst] = part
		}
		r.Compute(StageBwdCScatter, comp.MemBound(perfmodel.ClassTriton, 2*int64(chunkRows)*int64(h)*elem))
		c1H[c] = r.AlltoAllVAsync(d.EP, StageBwdC1A2A, send)
	}

	// --- Per-chunk merge backward while later chunks are in flight ----------
	// Replica work lists per chunk preserve (slot, pos) order, as the
	// forward's chunked merge did; each replica's gradient is a single
	// write, so chunk partitioning never reorders arithmetic.
	type mergeRef struct{ slot, pos int }
	chunkOf := make([]int, st.pilotRowsTotal)
	for src := 0; src < p; src++ {
		n := len(st.recvPilotW[src])
		for c := 0; c < chunks; c++ {
			clo, chi := simrt.ChunkRange(n, chunks, c)
			for pos := clo; pos < chi; pos++ {
				chunkOf[st.pilotPartOff[src]+pos] = c
			}
		}
	}
	mergeByChunk := make([][]mergeRef, chunks)
	for slot, sent := range st.s2SentByMember {
		for pos, sRec := range sent {
			c := chunkOf[sRec.pilotAbs]
			mergeByChunk[c] = append(mergeByChunk[c], mergeRef{slot: slot, pos: pos})
		}
	}
	// pilotFullOfAbs maps an absolute pilot row to its full-layout row (the
	// per-chunk merge visits rows abs-major).
	pilotFullOfAbs := make([]int, st.pilotRowsTotal)
	for i, abs := range st.pilotAbs {
		pilotFullOfAbs[abs] = g.pilotFull[i]
	}

	nMerge := 0
	for _, sent := range st.s2SentByMember {
		nMerge += len(sent)
	}
	var dMerged, dExpertOut *tensor.Tensor
	var wgAbs []float32
	var wgRepBySlot [][]float32
	dRepRet := make([][]float32, len(st.s2SentByMember))
	if opts.Numeric {
		dMerged = pool.Get(st.pilotRowsTotal, h)
		dExpertOut = pool.Get(g.bExp, h)
		wgAbs = make([]float32, st.pilotRowsTotal)
		wgRepBySlot = make([][]float32, len(st.s2SentByMember))
		for slot, sent := range st.s2SentByMember {
			dRepRet[slot] = make([]float32, len(sent)*h)
			wgRepBySlot[slot] = make([]float32, len(sent))
		}
	}
	for c := 0; c < chunks; c++ {
		recv := c1H[c].Wait()
		chunkRows := 0
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			clo, chi := simrt.ChunkRange(n, chunks, c)
			chunkRows += chi - clo
			if opts.Numeric && chi > clo {
				copy(dMerged.Data[(st.pilotPartOff[src]+clo)*h:(st.pilotPartOff[src]+chi)*h], recv[src].Data)
				for pos := clo; pos < chi; pos++ {
					abs := st.pilotPartOff[src] + pos
					w := g.wByAbs[abs]
					gRow := dMerged.Row(abs)
					oRow := fwd.PilotOut.Row(abs)
					dRow := dExpertOut.Row(pilotFullOfAbs[abs])
					var dot float32
					for j, v := range gRow {
						dRow[j] = w * v
						dot += v * oRow[j]
					}
					wgAbs[abs] = dot
				}
			}
		}
		if opts.Numeric {
			for _, mr := range mergeByChunk[c] {
				sRec := st.s2SentByMember[mr.slot][mr.pos]
				gRow := dMerged.Row(sRec.pilotAbs)
				oRow := fwd.S2Back[mr.slot][mr.pos*h : (mr.pos+1)*h]
				dst := dRepRet[mr.slot][mr.pos*h : (mr.pos+1)*h]
				var dot float32
				for j, v := range gRow {
					dst[j] = sRec.weight * v
					dot += v * oRow[j]
				}
				wgRepBySlot[mr.slot][mr.pos] = dot
			}
		}
		r.Compute(StageBwdCMerge, comp.MemBoundN(perfmodel.ClassTriton, 2,
			2*int64(chunkRows+len(mergeByChunk[c]))*int64(h)*elem))
	}
	if opts.Numeric {
		pool.Put(dMerged)
	}

	// --- Reverse C2 non-blocking under the pilot dX chain -------------------
	c2Send := make([]simrt.Part, nodeGroup.Size())
	for slot := range c2Send {
		n := len(st.s2SentByMember[slot])
		part := simrt.Part{Bytes: int64(n) * int64(h) * elem}
		if opts.Numeric {
			part.Data = dRepRet[slot]
		}
		c2Send[slot] = part
	}
	c2H := r.AlltoAllVAsync(nodeGroup, StageBwdC2A2A, c2Send)

	// Pilot dX chain: per-le pilot blocks are contiguous in the full
	// layout, and the chain is row-independent, so computing them ahead of
	// the replica rows is bit-identical to the blocking pass.
	var dHidAct, dHidPre, dExpertIn *tensor.Tensor
	if opts.Numeric {
		dHidAct = pool.Get(g.bExp, f)
		dHidPre = pool.Get(g.bExp, f)
		dExpertIn = pool.Get(g.bExp, h)
	}
	nPilot := 0
	for _, c := range st.PilotRowsPerLE {
		nPilot += c
	}
	r.Compute(moe.StageBwdExperts, comp.SequentialGEMM(st.PilotRowsPerLE, h, f)+
		comp.SequentialGEMM(st.PilotRowsPerLE, f, h)+
		comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilot)*int64(f)*elem))
	dxChain := func(lo, n, le int) {
		dyBlk := tensor.FromSlice(dExpertOut.Data[lo*h:(lo+n)*h], n, h)
		daBlk := tensor.FromSlice(dHidAct.Data[lo*f:(lo+n)*f], n, f)
		tensor.MatMulTInto(daBlk, dyBlk, params.W2[le])
		dpBlk := tensor.FromSlice(dHidPre.Data[lo*f:(lo+n)*f], n, f)
		preBlk := tensor.FromSlice(fwd.HidPre.Data[lo*f:(lo+n)*f], n, f)
		tensor.GeLUBackwardInto(dpBlk, daBlk, preBlk)
		dxBlk := tensor.FromSlice(dExpertIn.Data[lo*h:(lo+n)*h], n, h)
		tensor.MatMulTInto(dxBlk, dpBlk, params.W1[le])
	}
	if opts.Numeric {
		for le := 0; le < d.EPR; le++ {
			if n := st.PilotRowsPerLE[le]; n > 0 {
				dxChain(g.rowsOff[le], n, le)
			}
		}
	}

	// --- Collect reverse C2, replica dX chain -------------------------------
	c2Recv := c2H.Wait()
	if opts.Numeric {
		for i, ref := range st.replicaRef {
			copy(dExpertOut.Row(g.replFull[i]), c2Recv[ref.part].Data[ref.pos*h:(ref.pos+1)*h])
		}
	}
	nReplica := 0
	for _, c := range st.ReplicaRowsPerLE {
		nReplica += c
	}
	r.Compute(moe.StageBwdExperts, comp.SequentialGEMM(st.ReplicaRowsPerLE, h, f)+
		comp.SequentialGEMM(st.ReplicaRowsPerLE, f, h)+
		comp.MemBound(perfmodel.ClassTriton, 2*int64(nReplica)*int64(f)*elem))
	if opts.Numeric {
		for le := 0; le < d.EPR; le++ {
			if n := st.ReplicaRowsPerLE[le]; n > 0 {
				dxChain(g.rowsOff[le]+st.PilotRowsPerLE[le], n, le)
			}
		}
	}

	// --- Reverse S2 non-blocking under the deferred dW GEMMs ----------------
	s2Send := make([]simrt.Part, nodeGroup.Size())
	for src := range s2Send {
		n := st.s2RecvCount[src]
		part := simrt.Part{Bytes: int64(n) * int64(h) * elem}
		if opts.Numeric && n > 0 {
			buf := make([]float32, n*h)
			for pos := 0; pos < n; pos++ {
				copy(buf[pos*h:(pos+1)*h], dExpertIn.Row(g.fullOfPart[src][pos]))
			}
			part.Data = buf
		}
		s2Send[src] = part
	}
	s2H := r.AlltoAllVAsync(nodeGroup, StageBwdS2A2A, s2Send)

	// Deferred dW GEMMs over the complete segments: the blocking backward's
	// exact summation order, hiding the in-flight reverse S2 transfer.
	r.Compute(moe.StageBwdExperts, comp.SequentialGEMM(st.RowsPerLE, h, f)+
		comp.SequentialGEMM(st.RowsPerLE, f, h))
	var dW1, dW2 []*tensor.Tensor
	if opts.Numeric {
		dW1 = newGradTensors(params.W1)
		dW2 = newGradTensors(params.W2)
		for le, rows := range st.RowsPerLE {
			if rows == 0 {
				continue
			}
			off := g.rowsOff[le]
			segAct := tensor.FromSlice(fwd.HidAct.Data[off*f:(off+rows)*f], rows, f)
			segDY := tensor.FromSlice(dExpertOut.Data[off*h:(off+rows)*h], rows, h)
			tensor.TMatMulInto(dW2[le], segAct, segDY)
			segIn := tensor.FromSlice(fwd.ExpertIn.Data[off*h:(off+rows)*h], rows, h)
			segDP := tensor.FromSlice(dHidPre.Data[off*f:(off+rows)*f], rows, f)
			tensor.TMatMulInto(dW1[le], segIn, segDP)
		}
		pool.PutAll(dExpertOut, dHidAct, dHidPre)
	}

	// --- Collect reverse S2, reduce replica gradients onto pilots -----------
	s2Grad := s2H.Wait()
	nMergeRows := nMerge
	r.Compute(StageBwdS2Red, comp.MemBound(perfmodel.ClassTriton,
		2*int64(st.pilotRowsTotal+nMergeRows)*int64(h)*elem))
	var dPilotIn *tensor.Tensor
	if opts.Numeric {
		dPilotIn = tensor.New(st.pilotRowsTotal, h)
		for i, abs := range st.pilotAbs {
			copy(dPilotIn.Row(abs), dExpertIn.Row(g.pilotFull[i]))
		}
		for slot, sent := range st.s2SentByMember {
			data := s2Grad[slot].Data
			for pos, sRec := range sent {
				gRow := data[pos*h : (pos+1)*h]
				dst := dPilotIn.Row(sRec.pilotAbs)
				for j, v := range gRow {
					dst[j] += v
				}
			}
		}
		pool.Put(dExpertIn)
	}

	// --- Chunked reverse S1; weight-grad metadata rides chunk 0 -------------
	var wgMeta []bwdS1Meta
	if opts.Numeric {
		wgMeta = make([]bwdS1Meta, p)
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			wgMeta[src] = bwdS1Meta{
				pilotWG:   wgAbs[st.pilotPartOff[src] : st.pilotPartOff[src]+n],
				replicaWG: make([]float32, len(st.recvMetas[src].replicas)),
			}
		}
		for slot, sent := range st.s2SentByMember {
			for pos, sRec := range sent {
				wgMeta[sRec.src].replicaWG[sRec.ri] = wgRepBySlot[slot][pos]
			}
		}
	}
	s1H := make([]*simrt.CommHandle, chunks)
	backFlat := make([]simrt.Part, chunks*p)
	for c := 0; c < chunks; c++ {
		send := backFlat[c*p : (c+1)*p]
		for src := 0; src < p; src++ {
			n := len(st.recvPilotW[src])
			clo, chi := simrt.ChunkRange(n, chunks, c)
			part := simrt.Part{Bytes: int64(chi-clo) * int64(h) * elem}
			if c == 0 {
				part.Bytes += bwdS1MetaBytes(n, len(st.recvMetas[src].replicas))
				if opts.Numeric {
					part.Meta = wgMeta[src]
				}
			}
			if opts.Numeric && chi > clo {
				lo := st.pilotPartOff[src] + clo
				part.Data = dPilotIn.Data[lo*h : (lo+chi-clo)*h]
			}
			send[src] = part
		}
		s1H[c] = r.AlltoAllVAsync(d.EP, StageBwdS1A2A, send)
	}
	if opts.OnDWReady != nil {
		// dW is complete; the only remaining collectives are the already
		// in-flight reverse-S1 chunks, so gradient sync issued here queues
		// behind them on the comm stream and overlaps the drain and the
		// scatter backward.
		opts.OnDWReady()
	}

	// --- Drain the reverse-S1 chunks, then one blocking-order scatter -------
	retData := make([][]float32, p)
	retMeta := make([]bwdS1Meta, p)
	for c, hnd := range s1H {
		backParts := hnd.Wait()
		for dst := 0; dst < p; dst++ {
			if c == 0 && backParts[dst].Meta != nil {
				retMeta[dst] = backParts[dst].Meta.(bwdS1Meta)
			}
			if !opts.Numeric {
				continue
			}
			n := g.sentTo[dst]
			if retData[dst] == nil && n > 0 {
				retData[dst] = make([]float32, n*h)
			}
			clo, _ := simrt.ChunkRange(n, chunks, c)
			if len(backParts[dst].Data) > 0 {
				copy(retData[dst][clo*h:], backParts[dst].Data)
			}
		}
	}

	r.Compute(StageBwdS1Scat, comp.MemBound(perfmodel.ClassTriton, 2*int64(nPilotSent)*int64(h)*elem))
	var dx *tensor.Tensor
	var dWeights []float32
	if opts.Numeric {
		dx = tensor.New(fwd.S, h)
		dWeights = make([]float32, pft.B())
		pos := make([]int, p)
		for _, ent := range st.pilotEntry {
			dst := d.memberOfExpert(pft.ExpertIDs[ent])
			row := retData[dst][pos[dst]*h : (pos[dst]+1)*h]
			dWeights[ent] = retMeta[dst].pilotWG[pos[dst]]
			pos[dst]++
			dstRow := dx.Row(pft.TokenIDs[ent])
			for j, v := range row {
				dstRow[j] += v
			}
		}
		for dst := 0; dst < p && len(st.replicaEntry) > 0; dst++ {
			for ri, ent := range st.replicaEntry[dst] {
				dWeights[ent] = retMeta[dst].replicaWG[ri]
			}
		}
		pool.PutAll(fwd.ExpertIn, fwd.HidPre, fwd.HidAct, fwd.PilotOut)
		fwd.ExpertIn, fwd.HidPre, fwd.HidAct, fwd.PilotOut = nil, nil, nil, nil
		fwd.S2Back = nil
	}

	return moe.BackwardResult{DX: dx, DW1: dW1, DW2: dW2, DCombineWeights: dWeights}
}

// CheckOpts validates a PipelineOpts combination against what the RBD
// transport supports, beyond the generic PipelineOpts.Check. It returns a
// typed *moe.OptionError so callers (DistConfig.Check, the CLIs) can
// reject the configuration up front instead of silently falling back to
// the flat transport.
func CheckOpts(opts moe.PipelineOpts) error {
	if err := opts.Check(); err != nil {
		return err
	}
	if opts.CombineBytes != 0 {
		return &moe.OptionError{Opt: "CombineBytes",
			Detail: fmt.Sprintf("rbd: the hierarchical combine has no element-size override (got %d); CombineBytes models Tutel's fp32 combine on the padded pipeline only", opts.CombineBytes)}
	}
	return nil
}

// newGradTensors allocates one zero gradient tensor per weight tensor
// (mirror of the moe package helper, which is unexported).
func newGradTensors(ws []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for e, w := range ws {
		out[e] = tensor.New(w.Rows(), w.Cols())
	}
	return out
}
