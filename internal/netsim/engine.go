package netsim

import "xmoe/internal/topology"

// CostEngine is the pluggable collective-cost interface simrt Clusters run
// against. Two implementations exist: *Network (this package) is the
// memoized analytic fast path, and devent.Engine is the event-driven
// honest path that schedules link-level transfers over a topology graph.
// On contention-free flat topologies the two agree (cross-validated by
// internal/devent's invariant tests); on hierarchical graphs the event
// engine additionally sees trunk contention and queueing.
type CostEngine interface {
	AlltoAllV(ranks []int, sendBytes [][]int64) Cost
	AllReduce(ranks []int, bytes int64) Cost
	AllGather(ranks []int, perRankBytes []int64) Cost
	ReduceScatter(ranks []int, bytes int64) Cost
	Broadcast(ranks []int, bytes int64) Cost
	Barrier(ranks []int) Cost
	// EngineName identifies the engine in traces and benchmark records
	// ("analytic", "event:flat", "event:rail", ...).
	EngineName() string
	// SetLinkDerate applies degraded-link bandwidth derates (factors > 1
	// divide effective bandwidth; latencies and byte accounting are
	// unaffected). Call only between Cluster.Run calls.
	SetLinkDerate(map[topology.LinkClass]float64)
}

// EngineName identifies the analytic model in traces and benchmark records.
func (n *Network) EngineName() string { return "analytic" }

// SetLinkDerate implements CostEngine over the existing LinkDerate field,
// with the same contract: set only while no collectives are in flight.
func (n *Network) SetLinkDerate(d map[topology.LinkClass]float64) { n.LinkDerate = d }

var _ CostEngine = (*Network)(nil)
