package netsim

import (
	"testing"
	"testing/quick"

	"xmoe/internal/topology"
)

func ranksRange(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func newQuiet(m *topology.Machine) *Network {
	n := New(m, 1)
	n.DisableCongestion = true
	return n
}

func TestAlltoAllIntraNodeFasterThanInterNode(t *testing.T) {
	n := newQuiet(topology.Frontier())
	const b = 64 << 20                                          // 64 MiB per pair
	intra := n.AlltoAll(ranksRange(8), b)                       // one node
	inter := n.AlltoAll([]int{0, 8, 16, 24, 32, 40, 48, 56}, b) // 8 nodes
	if intra.Seconds >= inter.Seconds {
		t.Fatalf("intra-node a2a (%.4fs) should beat inter-node (%.4fs)", intra.Seconds, inter.Seconds)
	}
	if inter.InterNodeBytes() == 0 {
		t.Fatal("inter-node a2a must cross node boundaries")
	}
	if intra.InterNodeBytes() != 0 {
		t.Fatal("single-node a2a must not use inter-node links")
	}
}

func TestAlltoAllVolumeScalesTime(t *testing.T) {
	n := newQuiet(topology.Frontier())
	small := n.AlltoAll(ranksRange(16), 1<<20)
	big := n.AlltoAll(ranksRange(16), 16<<20)
	if big.Seconds <= small.Seconds {
		t.Fatal("16x payload must take longer")
	}
	ratio := big.Seconds / small.Seconds
	if ratio < 8 || ratio > 24 {
		t.Fatalf("time ratio %.2f not roughly linear in volume", ratio)
	}
}

func TestAlltoAllVZeroTraffic(t *testing.T) {
	n := newQuiet(topology.Frontier())
	send := make([][]int64, 4)
	for i := range send {
		send[i] = make([]int64, 4)
	}
	c := n.AlltoAllV(ranksRange(4), send)
	if c.Seconds != 0 || c.TotalBytes() != 0 {
		t.Fatalf("empty a2av should be free, got %.6fs %d bytes", c.Seconds, c.TotalBytes())
	}
}

func TestAlltoAllVByteAccounting(t *testing.T) {
	n := newQuiet(topology.Frontier())
	// Ranks 0,1 share an MI250X; rank 8 is on another node.
	ranks := []int{0, 1, 8}
	send := [][]int64{
		{0, 100, 200}, // 0->1 pair, 0->8 inter
		{300, 0, 0},   // 1->0 pair
		{0, 400, 0},   // 8->1 inter
	}
	c := n.AlltoAllV(ranks, send)
	if got := c.BytesByClass[topology.LinkGCDPair]; got != 400 {
		t.Fatalf("pair bytes = %d, want 400", got)
	}
	if got := c.BytesByClass[topology.LinkInterNode]; got != 600 {
		t.Fatalf("inter-node bytes = %d, want 600", got)
	}
	if c.InterNodeBytes() != 600 {
		t.Fatalf("InterNodeBytes = %d, want 600", c.InterNodeBytes())
	}
}

func TestNICAggregationLimitsNodeEgress(t *testing.T) {
	// All 8 GPUs of node 0 each send 100 MiB to distinct GPUs of node 1:
	// 800 MiB must squeeze through the 100 GB/s NIC => >= 8 ms.
	n := newQuiet(topology.Frontier())
	ranks := ranksRange(16)
	send := make([][]int64, 16)
	for i := range send {
		send[i] = make([]int64, 16)
	}
	const b = 100 << 20
	for g := 0; g < 8; g++ {
		send[g][8+g] = b
	}
	c := n.AlltoAllV(ranks, send)
	wantMin := float64(8*b) / n.M.NodeNICBandwidth
	if c.Seconds < wantMin {
		t.Fatalf("a2av %.4fs beats NIC aggregate floor %.4fs", c.Seconds, wantMin)
	}
}

func TestCrossRackCongestionOutliers(t *testing.T) {
	m := topology.Frontier()
	n := New(m, 7)
	// 512 GPUs spanning 2 racks: outliers must appear over many trials.
	ranks := ranksRange(512)
	send := make([][]int64, len(ranks))
	for i := range send {
		send[i] = make([]int64, len(ranks))
		for j := range send[i] {
			if i != j {
				send[i][j] = 1 << 14
			}
		}
	}
	outliers := 0
	var base float64
	for trial := 0; trial < 200; trial++ {
		c := n.AlltoAllV(ranks, send)
		if base == 0 {
			base = c.Seconds - c.CongestionDelay
		}
		if c.CongestionDelay > 0 {
			outliers++
			if c.CongestionDelay < n.Congestion.OutlierMinDelay {
				t.Fatalf("outlier delay %.4f below configured minimum", c.CongestionDelay)
			}
		}
	}
	if outliers == 0 {
		t.Fatal("expected congestion outliers over 200 cross-rack a2a runs")
	}
	if outliers > 100 {
		t.Fatalf("outliers should be the tail, got %d/200", outliers)
	}
}

func TestSingleRackNoCongestion(t *testing.T) {
	n := New(topology.Frontier(), 3)
	for trial := 0; trial < 100; trial++ {
		c := n.AlltoAll(ranksRange(256), 1<<16)
		if c.CongestionDelay != 0 {
			t.Fatal("single-rack collective must not hit cross-rack congestion")
		}
	}
}

func TestAllReduceScalesWithBytesAndSpan(t *testing.T) {
	n := newQuiet(topology.Frontier())
	small := n.AllReduce(ranksRange(8), 1<<20)
	big := n.AllReduce(ranksRange(8), 64<<20)
	if big.Seconds <= small.Seconds {
		t.Fatal("allreduce time must grow with volume")
	}
	intra := n.AllReduce(ranksRange(8), 64<<20)
	inter := n.AllReduce(ranksRange(64), 64<<20)
	if inter.Seconds <= intra.Seconds {
		t.Fatal("multi-node allreduce must cost more than single-node")
	}
	if n.AllReduce(ranksRange(1), 1<<20).Seconds != 0 {
		t.Fatal("single-rank allreduce is free")
	}
}

func TestAllGatherAndReduceScatter(t *testing.T) {
	n := newQuiet(topology.Frontier())
	per := make([]int64, 16)
	for i := range per {
		per[i] = 1 << 20
	}
	ag := n.AllGather(ranksRange(16), per)
	if ag.Seconds <= 0 {
		t.Fatal("allgather must take time")
	}
	rs := n.ReduceScatter(ranksRange(16), 16<<20)
	if rs.Seconds <= 0 {
		t.Fatal("reduce-scatter must take time")
	}
}

func TestBroadcastAndBarrier(t *testing.T) {
	n := newQuiet(topology.Frontier())
	bc := n.Broadcast(ranksRange(64), 1<<20)
	if bc.Seconds <= 0 {
		t.Fatal("broadcast must take time")
	}
	bar := n.Barrier(ranksRange(64))
	if bar.Seconds <= 0 || bar.Seconds > 1e-3 {
		t.Fatalf("barrier time %.6fs out of expected sub-ms range", bar.Seconds)
	}
	if n.Barrier(ranksRange(1)).Seconds != 0 {
		t.Fatal("single-rank barrier is free")
	}
}

// The DP-first vs EP-first insight (Appendix C.1) depends on allreduce over
// co-located ranks being much cheaper than over scattered ranks.
func TestAllReducePlacementSensitivity(t *testing.T) {
	n := newQuiet(topology.Frontier())
	const bytes = 256 << 20
	colocated := n.AllReduce(ranksRange(8), bytes) // all on node 0
	scattered := make([]int, 8)
	for i := range scattered {
		scattered[i] = i * 8 // one GPU on each of 8 nodes
	}
	spread := n.AllReduce(scattered, bytes)
	if spread.Seconds < 2*colocated.Seconds {
		t.Fatalf("scattered allreduce (%.4fs) should be >=2x colocated (%.4fs)",
			spread.Seconds, colocated.Seconds)
	}
}

// totalBytes sums a cost's aggregate traffic over every link class,
// including the intra-node classes (TotalBytes excludes only LinkLocal).
func totalBytes(c Cost) int64 {
	var t int64
	for _, b := range c.BytesByClass {
		t += b
	}
	return t
}

// TestCollectiveByteAccountingConvention pins the documented convention:
// BytesByClass aggregates the bytes moved per link class across the whole
// group, so the cross-collective ring identities hold exactly.
func TestCollectiveByteAccountingConvention(t *testing.T) {
	n := newQuiet(topology.Frontier())
	const B = int64(96 << 20)

	// Layouts: one full node (p=8, single intra tier) and an even
	// multi-node span (p=32 over 4 nodes).
	for _, tc := range []struct {
		name  string
		ranks []int
	}{
		{"single-node", ranksRange(8)},
		{"multi-node", ranksRange(32)},
	} {
		p := int64(len(tc.ranks))

		// All-reduce: ring identity 2(p-1)/p x B x p = 2(p-1)B, and the
		// hierarchical intra+inter split must telescope to the same total.
		ar := n.AllReduce(tc.ranks, B)
		if got, want := totalBytes(ar), 2*(p-1)*B; got != want {
			t.Errorf("%s allreduce aggregate = %d, want 2(p-1)B = %d", tc.name, got, want)
		}

		// All-gather: (p-1)/p x sum(perRankBytes) x p = (p-1) x total.
		per := make([]int64, p)
		var sum int64
		for i := range per {
			per[i] = B / int64(p)
			sum += per[i]
		}
		ag := n.AllGather(tc.ranks, per)
		if got, want := totalBytes(ag), (p-1)*sum; got != want {
			t.Errorf("%s allgather aggregate = %d, want (p-1)Σper = %d", tc.name, got, want)
		}

		// Reduce-scatter: one all-gather pass over the same volume, so the
		// same identity holds with Σper == B (remainder included).
		odd := B + 13 // not divisible by p
		rs := n.ReduceScatter(tc.ranks, odd)
		if got, want := totalBytes(rs), (p-1)*odd; got != want {
			t.Errorf("%s reduce-scatter aggregate = %d, want (p-1)B = %d", tc.name, got, want)
		}

		// Even all-to-all: exactly the sum of pairwise payloads.
		const pair = int64(1 << 20)
		aa := n.AlltoAll(tc.ranks, pair)
		if got, want := totalBytes(aa), p*(p-1)*pair; got != want {
			t.Errorf("%s alltoall aggregate = %d, want p(p-1)pair = %d", tc.name, got, want)
		}

		// Broadcast: every non-root member receives the payload once.
		bc := n.Broadcast(tc.ranks, B)
		if got, want := totalBytes(bc), (p-1)*B; got != want {
			t.Errorf("%s broadcast aggregate = %d, want (p-1)B = %d", tc.name, got, want)
		}
	}
}

// TestReduceScatterRemainder regresses the integer-division remainder
// drop: the per-rank shards must sum to exactly the input size, so the
// cost of a non-divisible reduce-scatter dominates the truncated one.
func TestReduceScatterRemainder(t *testing.T) {
	n := newQuiet(topology.Frontier())
	ranks := ranksRange(24) // 24 ranks, 3 nodes
	const B = int64(1<<24) + 17
	rs := n.ReduceScatter(ranks, B)
	if got, want := totalBytes(rs), int64(23)*B; got != want {
		t.Fatalf("aggregate bytes %d, want (p-1)B=%d: remainder dropped", got, want)
	}
	trunc := n.ReduceScatter(ranks, B-17) // divisible by 24
	if rs.Seconds < trunc.Seconds {
		t.Fatalf("non-divisible reduce-scatter (%.9fs) cheaper than truncated (%.9fs)",
			rs.Seconds, trunc.Seconds)
	}
}

// TestSerialAndOverlappedComposition covers the overlap-aware cost
// composition used by the chunked pipelines.
func TestSerialAndOverlappedComposition(t *testing.T) {
	n := newQuiet(topology.Frontier())
	a := n.AlltoAll(ranksRange(16), 1<<20)
	b := n.AllReduce(ranksRange(16), 1<<20)
	s := Serial(a, b)
	if s.Seconds != a.Seconds+b.Seconds {
		t.Fatalf("serial seconds %.9f != %.9f", s.Seconds, a.Seconds+b.Seconds)
	}
	if got, want := totalBytes(s), totalBytes(a)+totalBytes(b); got != want {
		t.Fatalf("serial bytes %d != %d", got, want)
	}

	wall, exposed := Overlapped(a, a.Seconds/2)
	if wall != a.Seconds || exposed != a.Seconds-a.Seconds/2 {
		t.Fatalf("half-covered comm: wall %.9f exposed %.9f", wall, exposed)
	}
	wall, exposed = Overlapped(a, 2*a.Seconds)
	if wall != 2*a.Seconds || exposed != 0 {
		t.Fatalf("fully covered comm must expose nothing: wall %.9f exposed %.9f", wall, exposed)
	}
}

func TestQuickAlltoAllVMonotoneInVolume(t *testing.T) {
	n := newQuiet(topology.Frontier())
	f := func(seed uint64) bool {
		// Random sparse traffic; doubling every entry must not reduce time.
		rng := seed
		next := func() uint64 {
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return z ^ (z >> 27)
		}
		p := 2 + int(next()%14)
		ranks := ranksRange(p * 4)[:p]
		send := make([][]int64, p)
		dbl := make([][]int64, p)
		for i := range send {
			send[i] = make([]int64, p)
			dbl[i] = make([]int64, p)
			for j := range send[i] {
				if i != j && next()%3 == 0 {
					b := int64(next() % (1 << 22))
					send[i][j] = b
					dbl[i][j] = 2 * b
				}
			}
		}
		return n.AlltoAllV(ranks, dbl).Seconds >= n.AlltoAllV(ranks, send).Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkDerateSlowsOnlyTheDeratedClass pins the degraded-link fault
// class: derating a link class stretches the time of collectives using
// it (proportionally for bandwidth-bound exchanges), leaves byte
// accounting untouched, leaves other classes alone, and is never served
// stale from the cost memo.
func TestLinkDerateSlowsOnlyTheDeratedClass(t *testing.T) {
	m := topology.Frontier()
	interRanks := []int{0, 8, 16, 24} // 4 nodes, one rack
	intraRanks := ranksRange(4)       // one node
	const b = 16 << 20

	healthy := newQuiet(m)
	baseInter := healthy.AlltoAll(interRanks, b)
	baseIntra := healthy.AlltoAll(intraRanks, b)

	sick := newQuiet(m)
	sick.LinkDerate = map[topology.LinkClass]float64{topology.LinkInterNode: 4}
	slowInter := sick.AlltoAll(interRanks, b)
	sameIntra := sick.AlltoAll(intraRanks, b)

	if slowInter.Seconds <= baseInter.Seconds {
		t.Fatalf("derated inter-node a2a %.6fs not slower than healthy %.6fs",
			slowInter.Seconds, baseInter.Seconds)
	}
	if sameIntra.Seconds != baseIntra.Seconds {
		t.Fatalf("intra-node a2a must be unaffected: %.9f vs %.9f",
			sameIntra.Seconds, baseIntra.Seconds)
	}
	for class, bytes := range baseInter.BytesByClass {
		if slowInter.BytesByClass[class] != bytes {
			t.Fatalf("derate changed byte accounting for %v", class)
		}
	}

	// AllReduce and Broadcast across nodes must slow too.
	if h, s := healthy.AllReduce(interRanks, b), sick.AllReduce(interRanks, b); s.Seconds <= h.Seconds {
		t.Fatalf("derated allreduce %.6fs not slower than %.6fs", s.Seconds, h.Seconds)
	}
	if h, s := healthy.Broadcast(interRanks, b), sick.Broadcast(interRanks, b); s.Seconds <= h.Seconds {
		t.Fatalf("derated broadcast %.6fs not slower than %.6fs", s.Seconds, h.Seconds)
	}

	// Clearing the derate on the same Network must return to baseline —
	// the memo keys fold the derates, so no stale entry can be served.
	sick.LinkDerate = nil
	if got := sick.AlltoAll(interRanks, b); got.Seconds != baseInter.Seconds {
		t.Fatalf("cleared derate served stale cost: %.9f vs %.9f", got.Seconds, baseInter.Seconds)
	}

	// Derates <= 1 and unknown classes are healthy.
	noop := newQuiet(m)
	noop.LinkDerate = map[topology.LinkClass]float64{topology.LinkInterNode: 0.5}
	if got := noop.AlltoAll(interRanks, b); got.Seconds != baseInter.Seconds {
		t.Fatalf("derate <= 1 must be a no-op: %.9f vs %.9f", got.Seconds, baseInter.Seconds)
	}
}

// TestRNGStateRoundTrip pins the checkpointable congestion sampler: a
// network restored to a saved state replays the identical outlier
// stream.
func TestRNGStateRoundTrip(t *testing.T) {
	m := topology.Frontier()
	n := New(m, 7)
	ranks := make([]int, 64) // spans racks so congestion actually samples
	for i := range ranks {
		ranks[i] = i * (m.GPUsPerNode * m.NodesPerRack) / 16
	}
	// Burn some samples, checkpoint, then record a trajectory.
	for i := 0; i < 5; i++ {
		n.AlltoAll(ranks, 1<<20)
	}
	state := n.RNGState()
	var first []float64
	for i := 0; i < 8; i++ {
		first = append(first, n.AlltoAll(ranks, 1<<20).Seconds)
	}
	// Restore and replay: must be bit-identical.
	n.SetRNGState(state)
	for i := 0; i < 8; i++ {
		if got := n.AlltoAll(ranks, 1<<20).Seconds; got != first[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, got, first[i])
		}
	}
	if n.RNGState() == 0 {
		t.Fatal("state should be non-trivial")
	}
}
