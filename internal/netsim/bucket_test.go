package netsim

import (
	"testing"

	"xmoe/internal/topology"
)

// sumByClass accumulates per-link-class byte totals across several costs.
func sumByClass(costs []Cost) map[topology.LinkClass]int64 {
	out := map[topology.LinkClass]int64{}
	for _, c := range costs {
		for cls, b := range c.BytesByClass {
			out[cls] += b
		}
	}
	return out
}

// TestBucketedReduceScatterBytesInvariant pins the ZeRO gradient-sync
// wire accounting: splitting a reduce-scatter into equal buckets moves
// exactly the same bytes per link class as one collective of the total —
// the aggregate per-link-class convention the breakdown figures rely on.
func TestBucketedReduceScatterBytesInvariant(t *testing.T) {
	n := newQuiet(topology.Frontier())
	ranks := ranksRange(16) // spans 2 nodes on Frontier
	const total = int64(64 << 20)
	const buckets = 8
	whole := n.ReduceScatter(ranks, total)
	parts := make([]Cost, buckets)
	for i := range parts {
		parts[i] = n.ReduceScatter(ranks, total/buckets)
	}
	got := sumByClass(parts)
	for cls, want := range whole.BytesByClass {
		if got[cls] != want {
			t.Fatalf("link class %v: %d bucketed reduce-scatters move %d bytes, one collective moves %d",
				cls, buckets, got[cls], want)
		}
	}
	if len(got) != len(whole.BytesByClass) {
		t.Fatalf("bucketed path touched %d link classes, unbucketed %d", len(got), len(whole.BytesByClass))
	}
	if whole.InterNodeBytes() == 0 {
		t.Fatal("16-rank reduce-scatter must cross node boundaries")
	}
}

// TestBucketedAllGatherBytesInvariant is the same invariant for the
// post-step parameter all-gather.
func TestBucketedAllGatherBytesInvariant(t *testing.T) {
	n := newQuiet(topology.Frontier())
	ranks := ranksRange(16)
	const perRank = int64(4 << 20)
	const buckets = 4
	even := func(b int64) []int64 {
		out := make([]int64, len(ranks))
		for i := range out {
			out[i] = b
		}
		return out
	}
	whole := n.AllGather(ranks, even(perRank))
	parts := make([]Cost, buckets)
	for i := range parts {
		parts[i] = n.AllGather(ranks, even(perRank/buckets))
	}
	got := sumByClass(parts)
	for cls, want := range whole.BytesByClass {
		if got[cls] != want {
			t.Fatalf("link class %v: %d bucketed all-gathers move %d bytes, one collective moves %d",
				cls, buckets, got[cls], want)
		}
	}
	if len(got) != len(whole.BytesByClass) {
		t.Fatalf("bucketed path touched %d link classes, unbucketed %d", len(got), len(whole.BytesByClass))
	}
}

// TestBucketedLatencyCost documents the modelled tradeoff the bucket-size
// ablation sweeps: bucketing never reduces wire bytes, so its only cost
// is per-collective latency — many small collectives take at least as
// long in sum as one large one.
func TestBucketedLatencyCost(t *testing.T) {
	n := newQuiet(topology.Frontier())
	ranks := ranksRange(16)
	const total = int64(64 << 20)
	const buckets = 16
	whole := n.ReduceScatter(ranks, total).Seconds
	var sum float64
	for i := 0; i < buckets; i++ {
		sum += n.ReduceScatter(ranks, total/buckets).Seconds
	}
	if sum < whole {
		t.Fatalf("sum of %d bucketed reduce-scatters (%.6fs) beats one collective (%.6fs): latency vanished",
			buckets, sum, whole)
	}
}
