// Package netsim is a link-level analytic network simulator for the
// hierarchical interconnects described by internal/topology. It converts
// collective communication patterns (all-to-all-v, all-reduce, all-gather,
// reduce-scatter, broadcast) into wall-clock time estimates using an α–β
// model per link class, per-node NIC aggregation, and a Dragonfly
// cross-rack congestion model (paper Appendix D).
//
// The simulator is deliberately analytic rather than packet-level: the
// paper's communication effects — the 8x intra/inter-node bandwidth
// asymmetry that motivates RBD, padded vs padding-free volume, and
// cross-rack congestion outliers past 256 GPUs — are all bandwidth- and
// topology-level phenomena, faithfully captured at this granularity.
package netsim

import (
	"math"
	"sync"

	"xmoe/internal/topology"
)

// Cost reports the outcome of simulating one collective operation.
type Cost struct {
	// Seconds is the modeled wall-clock duration of the collective.
	Seconds float64
	// BytesByClass is the aggregate traffic per link class: the bytes
	// moved over links of each class summed across every participant of
	// the collective (not per-rank, not per-link). Under this convention
	// a ring all-reduce of R bytes among p ranks accounts 2(p-1)R bytes
	// in total, an all-gather of sum(perRankBytes)=T accounts (p-1)T, and
	// an all-to-all accounts exactly the sum of its pairwise payloads.
	// Every collective in this package follows the same convention, so
	// byte totals are comparable across collectives. The hierarchical
	// collectives (all-reduce, all-gather, reduce-scatter) aggregate with
	// an even-layout model — the ring identities above are exact when
	// every occupied node holds the same number of members, and integer
	// division makes them approximate (never more than one member's
	// volume off) for uneven layouts.
	BytesByClass map[topology.LinkClass]int64
	// CongestionDelay is the portion of Seconds attributable to sampled
	// cross-rack congestion (zero when the group fits in one rack).
	CongestionDelay float64
}

// TotalBytes returns the sum of traffic over all non-local link classes.
func (c Cost) TotalBytes() int64 {
	var t int64
	for class, b := range c.BytesByClass {
		if class != topology.LinkLocal {
			t += b
		}
	}
	return t
}

// InterNodeBytes returns traffic crossing node boundaries (inter-node plus
// cross-rack links) — the quantity RBD minimises.
func (c Cost) InterNodeBytes() int64 {
	return c.BytesByClass[topology.LinkInterNode] + c.BytesByClass[topology.LinkCrossRack]
}

// Serial composes collective costs executed back to back: durations and
// congestion delays add, byte aggregates merge per link class. The chunked
// (blocking) pipelines are Serial compositions of their chunk costs.
func Serial(costs ...Cost) Cost {
	out := Cost{BytesByClass: map[topology.LinkClass]int64{}}
	for _, c := range costs {
		out.Seconds += c.Seconds
		out.CongestionDelay += c.CongestionDelay
		for class, b := range c.BytesByClass {
			out.BytesByClass[class] += b
		}
	}
	return out
}

// Overlapped composes a communication cost with computeSeconds of
// independent compute running concurrently (comm on the communication
// stream, compute on the device): wall is the overlapped span's duration
// max(comm, compute) and exposed is the uncovered communication remainder
// max(0, comm-compute) — the only part a waiting rank is charged. This is
// the composition rule the simrt async handles implement against the rank
// clock; it is exported so analytic models can predict overlap headroom
// without running the simulator.
func Overlapped(comm Cost, computeSeconds float64) (wall, exposed float64) {
	exposed = comm.Seconds - computeSeconds
	if exposed < 0 {
		exposed = 0
	}
	return computeSeconds + exposed, exposed
}

// CongestionModel parameterises the Dragonfly congestion behaviour
// observed in Appendix D: all-to-alls are stable up to one rack and
// develop heavy-tailed outliers beyond it, as cross-rack traffic contends
// with other jobs on shared global links.
type CongestionModel struct {
	// OutlierProb2Racks .. OutlierProb4Racks give the per-collective
	// probability of hitting a congested global link when the group
	// spans 2 and >=4 racks respectively (interpolated in between).
	OutlierProb2Racks float64
	OutlierProb4Racks float64
	// OutlierMin/MaxDelay bound the uniform outlier delay in seconds
	// (paper: frequent > 500 ms per-collective times at 512/1024 GPUs).
	OutlierMinDelay float64
	OutlierMaxDelay float64
	// BaseCrossRackSlowdown divides effective cross-rack bandwidth even
	// when no outlier fires (steady-state sharing of global links).
	BaseCrossRackSlowdown float64
}

// DefaultCongestion returns the congestion constants calibrated against
// the paper's Appendix D characterisation (Figs. 18-19).
func DefaultCongestion() CongestionModel {
	return CongestionModel{
		OutlierProb2Racks:     0.04,
		OutlierProb4Racks:     0.12,
		OutlierMinDelay:       0.1,
		OutlierMaxDelay:       0.9,
		BaseCrossRackSlowdown: 1.6,
	}
}

// Network simulates collectives over a machine. It is safe for concurrent
// use by multiple goroutines (the simulated ranks).
type Network struct {
	M          *topology.Machine
	Congestion CongestionModel
	// DisableCongestion turns off stochastic outliers (used by
	// correctness tests that need deterministic times).
	DisableCongestion bool
	// ExpectedCongestion replaces outlier sampling by its expectation
	// (probability x mean delay), giving deterministic amortised costs.
	// The throughput simulator uses this because it simulates one layer
	// and scales by depth; the Appendix-D characterisation keeps
	// sampling to reproduce the outlier scatter.
	ExpectedCongestion bool
	// JobRanks, when positive, is the total rank count of the running
	// job. Appendix D observes that once a job spans more than one rack,
	// even sub-rack communicators hit congested Dragonfly global links
	// (allocations are fragmented and the fabric is shared with other
	// jobs), so congestion scope is the job, not the communicator.
	JobRanks int
	// LinkDerate scales down the effective bandwidth of a link class by
	// the given factor (2 halves it); classes absent or <= 1 are healthy.
	// This is the degraded-link fault class: a flaky NIC or oversubscribed
	// global link slows traffic without killing any rank. Latencies and
	// byte accounting are unaffected — only time stretches. Set it only
	// while no collectives are in flight (between Cluster.Run calls); the
	// cost memo folds the derates into its keys, so changing them never
	// serves stale cached times.
	LinkDerate map[topology.LinkClass]float64

	mu       sync.Mutex
	rngState uint64

	cacheOnce sync.Once
	cache     *costCache
}

// costCache memoizes collective costs when the simulator is deterministic
// (congestion disabled or taken in expectation). The symbolic 1024-GPU
// sweeps evaluate identical all-to-all patterns once per layer per
// micro-step; each AlltoAllV is O(p²) link classifications, so the
// sweep-dominating work collapses to a hash lookup. Cached Cost values
// are shared: callers must treat BytesByClass as immutable (all in-repo
// callers only read it).
//
// Caches live in a per-machine-configuration registry rather than on the
// Network: configuration sweeps build a fresh Network per simulated
// cluster (and figures often build a fresh Machine with identical
// parameters), so keying on the machine's structural identity keeps the
// cache warm across an entire sweep and across equal machines, while
// bounding the registry to the handful of distinct platforms. All
// Network state that affects a cost (congestion flags and constants,
// JobRanks) is folded into the per-entry hash key.
type costCache struct {
	mu sync.Mutex
	m  map[uint64]Cost
}

// machineKey is the comparable structural identity of a topology.Machine
// as seen by the cost model: every field the simulator reads.
type machineKey struct {
	name               string
	gpusPerNode        int
	gpusPerPair        int
	nodesPerRack       int
	nodeNICBandwidth   float64
	local, pair        topology.LinkSpec
	intra, inter, rack topology.LinkSpec
}

func keyOf(m *topology.Machine) machineKey {
	return machineKey{
		name:             m.Name,
		gpusPerNode:      m.GPUsPerNode,
		gpusPerPair:      m.GPUsPerPair,
		nodesPerRack:     m.NodesPerRack,
		nodeNICBandwidth: m.NodeNICBandwidth,
		local:            m.Links[topology.LinkLocal],
		pair:             m.Links[topology.LinkGCDPair],
		intra:            m.Links[topology.LinkIntraNode],
		inter:            m.Links[topology.LinkInterNode],
		rack:             m.Links[topology.LinkCrossRack],
	}
}

var netCaches sync.Map // machineKey -> *costCache

// cacheFor resolves this network's shared cost cache once and pins it,
// so the per-collective fast path is a single pointer read.
func (n *Network) cacheFor() *costCache {
	n.cacheOnce.Do(func() {
		key := keyOf(n.M)
		if c, ok := netCaches.Load(key); ok {
			n.cache = c.(*costCache)
			return
		}
		c, _ := netCaches.LoadOrStore(key, &costCache{m: map[uint64]Cost{}})
		n.cache = c.(*costCache)
	})
	return n.cache
}

// collective kind tags folded into cache keys.
const (
	kindAlltoAllV uint64 = iota + 1
	kindAllReduce
	kindAllGather
	kindBroadcast
	kindBarrier
)

// cacheBound caps the memo size; pathological workloads that never repeat
// a pattern reset the map instead of growing without bound.
const cacheBound = 1 << 16

// deterministic reports whether collective costs are reproducible (and so
// cacheable): stochastic congestion sampling is off or replaced by its
// expectation.
func (n *Network) deterministic() bool {
	return n.DisableCongestion || n.ExpectedCongestion
}

// mix folds v into the FNV-style hash h.
func mix(h, v uint64) uint64 { return (h ^ v) * 1099511628211 }

// derateOf returns the bandwidth derate factor for a link class (1 when
// healthy).
func (n *Network) derateOf(class topology.LinkClass) float64 {
	if d, ok := n.LinkDerate[class]; ok && d > 1 {
		return d
	}
	return 1
}

// bandwidthOf returns the effective bandwidth of a link class after any
// degraded-link derate.
func (n *Network) bandwidthOf(class topology.LinkClass) float64 {
	return n.M.Link(class).Bandwidth / n.derateOf(class)
}

// hashRanks seeds a collective cache key from the kind tag and the member
// ranks. JobRanks participates because it widens the congestion scope.
func (n *Network) hashRanks(kind uint64, ranks []int) uint64 {
	h := uint64(14695981039346656037)
	h = mix(h, kind)
	h = mix(h, uint64(n.JobRanks))
	var flags uint64
	if n.DisableCongestion {
		flags |= 1
	}
	if n.ExpectedCongestion {
		flags |= 2
	}
	h = mix(h, flags)
	c := n.Congestion
	h = mix(h, math.Float64bits(c.OutlierProb2Racks))
	h = mix(h, math.Float64bits(c.OutlierProb4Racks))
	h = mix(h, math.Float64bits(c.OutlierMinDelay))
	h = mix(h, math.Float64bits(c.OutlierMaxDelay))
	h = mix(h, math.Float64bits(c.BaseCrossRackSlowdown))
	for class := topology.LinkLocal; class <= topology.LinkCrossRack; class++ {
		h = mix(h, math.Float64bits(n.derateOf(class)))
	}
	h = mix(h, uint64(len(ranks)))
	for _, r := range ranks {
		h = mix(h, uint64(r))
	}
	return h
}

// cached returns the memoized cost for key, or computes, stores, and
// returns it. Concurrent misses on the same key recompute the same
// deterministic value; last store wins.
func (n *Network) cached(key uint64, compute func() Cost) Cost {
	cc := n.cacheFor()
	cc.mu.Lock()
	c, ok := cc.m[key]
	cc.mu.Unlock()
	if ok {
		return c
	}
	c = compute()
	cc.mu.Lock()
	if len(cc.m) >= cacheBound {
		cc.m = make(map[uint64]Cost, 256)
	}
	cc.m[key] = c
	cc.mu.Unlock()
	return c
}

// New returns a network simulator over machine m with the default
// congestion model, seeded deterministically.
func New(m *topology.Machine, seed uint64) *Network {
	return &Network{M: m, Congestion: DefaultCongestion(), rngState: seed}
}

// RNGState returns the congestion sampler's current state, for
// checkpointing: restoring it with SetRNGState resumes the outlier
// stream exactly where it left off, keeping checkpoint-resume runs
// bit-identical to uninterrupted ones even with sampled congestion.
func (n *Network) RNGState() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rngState
}

// SetRNGState restores a congestion sampler state captured by RNGState.
func (n *Network) SetRNGState(s uint64) {
	n.mu.Lock()
	n.rngState = s
	n.mu.Unlock()
}

// rand returns a uniform float64 in [0,1) from the network's internal
// deterministic generator.
func (n *Network) rand() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// racksSpanned counts the racks whose congestion the collective is
// exposed to: the communicator's own span, widened to the job's rack span
// when the collective leaves node boundaries (fragmented allocations and
// shared global links, Appendix D).
func (n *Network) racksSpanned(ranks []int) int {
	seen := map[int]bool{}
	nodes := map[int]bool{}
	for _, r := range ranks {
		seen[n.M.RackOf(r)] = true
		nodes[n.M.NodeOf(r)] = true
	}
	racks := len(seen)
	if n.JobRanks > 0 && len(nodes) > 1 {
		if jr := n.M.NumRacks(n.JobRanks); jr > racks {
			racks = jr
		}
	}
	return racks
}

// congestionDelay samples the additional delay for a collective exposed
// to the given rack span whose fabric-visible (inter-node or cross-rack)
// traffic is fabricBytes.
func (n *Network) congestionDelay(racks int, fabricBytes int64) float64 {
	if n.DisableCongestion || racks <= 1 || fabricBytes == 0 {
		return 0
	}
	c := n.Congestion
	p := c.OutlierProb2Racks
	if racks >= 4 {
		p = c.OutlierProb4Racks
	} else if racks == 3 {
		p = (c.OutlierProb2Racks + c.OutlierProb4Racks) / 2
	}
	if n.ExpectedCongestion {
		return p * (c.OutlierMinDelay + c.OutlierMaxDelay) / 2
	}
	if n.rand() >= p {
		return 0
	}
	return c.OutlierMinDelay + n.rand()*(c.OutlierMaxDelay-c.OutlierMinDelay)
}

// AlltoAllV simulates an uneven all-to-all among ranks, where
// sendBytes[i][j] is the payload rank ranks[i] sends to ranks[j]. It
// models each GPU's egress/ingress serialisation per destination link
// class, aggregates node egress/ingress through the shared NIC bandwidth,
// and takes the bottleneck. Startup costs α are charged per destination
// message.
func (n *Network) AlltoAllV(ranks []int, sendBytes [][]int64) Cost {
	if n.deterministic() {
		key := n.hashRanks(kindAlltoAllV, ranks)
		for _, row := range sendBytes {
			for _, b := range row {
				key = mix(key, uint64(b))
			}
		}
		return n.cached(key, func() Cost { return n.alltoAllV(ranks, sendBytes) })
	}
	return n.alltoAllV(ranks, sendBytes)
}

func (n *Network) alltoAllV(ranks []int, sendBytes [][]int64) Cost {
	m := n.M
	p := len(ranks)
	byClass := map[topology.LinkClass]int64{}

	gpuTime := make([]float64, p)  // per-rank max(egress, ingress) serialisation
	ingress := make([]float64, p)  // per-rank ingress accumulation
	nodeEgress := map[int]int64{}  // node -> bytes leaving node
	nodeIngress := map[int]int64{} // node -> bytes entering node
	crossBytes := int64(0)

	for i := 0; i < p; i++ {
		src := ranks[i]
		var egressTime float64
		for j := 0; j < p; j++ {
			b := sendBytes[i][j]
			if b == 0 {
				continue
			}
			dst := ranks[j]
			class := m.Classify(src, dst)
			byClass[class] += b
			spec := m.Link(class)
			bw := n.bandwidthOf(class)
			if class == topology.LinkCrossRack && !n.DisableCongestion {
				bw /= n.Congestion.BaseCrossRackSlowdown
			}
			t := spec.Latency + float64(b)/bw
			egressTime += t
			ingress[j] += t
			if class == topology.LinkInterNode || class == topology.LinkCrossRack {
				nodeEgress[m.NodeOf(src)] += b
				nodeIngress[m.NodeOf(dst)] += b
			}
			if class == topology.LinkCrossRack {
				crossBytes += b
			}
		}
		gpuTime[i] = egressTime
	}

	var maxTime float64
	for i := 0; i < p; i++ {
		if gpuTime[i] > maxTime {
			maxTime = gpuTime[i]
		}
		if ingress[i] > maxTime {
			maxTime = ingress[i]
		}
	}
	nic := m.NodeNICBandwidth
	for _, b := range nodeEgress {
		if t := float64(b) / nic; t > maxTime {
			maxTime = t
		}
	}
	for _, b := range nodeIngress {
		if t := float64(b) / nic; t > maxTime {
			maxTime = t
		}
	}

	fabric := crossBytes + byClass[topology.LinkInterNode]
	cd := n.congestionDelay(n.racksSpanned(ranks), fabric)
	return Cost{Seconds: maxTime + cd, BytesByClass: byClass, CongestionDelay: cd}
}

// AlltoAll simulates an even all-to-all where every rank sends bytesPerPair
// to every other rank (the padded GShard/DeepSpeed-MoE exchange).
func (n *Network) AlltoAll(ranks []int, bytesPerPair int64) Cost {
	p := len(ranks)
	send := make([][]int64, p)
	for i := range send {
		send[i] = make([]int64, p)
		for j := range send[i] {
			if i != j {
				send[i][j] = bytesPerPair
			}
		}
	}
	return n.AlltoAllV(ranks, send)
}

// groupLayout describes how a communicator maps onto the machine
// hierarchy: members per node and the node/rack span.
type groupLayout struct {
	membersPerNode int // max members co-located on one node
	nodes          int
	racks          int
	intraClass     topology.LinkClass
}

func (n *Network) layout(ranks []int) groupLayout {
	perNode := map[int]int{}
	racks := map[int]bool{}
	intra := topology.LinkGCDPair
	for _, r := range ranks {
		perNode[n.M.NodeOf(r)]++
		racks[n.M.RackOf(r)] = true
	}
	maxPer := 0
	for _, c := range perNode {
		if c > maxPer {
			maxPer = c
		}
	}
	// If any same-node pair is not a GCD pair, the intra tier is the
	// slower intra-node link.
	for i := 0; i < len(ranks) && intra == topology.LinkGCDPair; i++ {
		for j := i + 1; j < len(ranks); j++ {
			if n.M.SameNode(ranks[i], ranks[j]) &&
				n.M.Classify(ranks[i], ranks[j]) == topology.LinkIntraNode {
				intra = topology.LinkIntraNode
				break
			}
		}
	}
	return groupLayout{membersPerNode: maxPer, nodes: len(perNode), racks: len(racks), intraClass: intra}
}

// AllReduce simulates a hierarchical ring all-reduce of bytes per rank:
// intra-node reduce-scatter, inter-node ring all-reduce on the sharded
// data (through the shared node NIC), then intra-node all-gather.
func (n *Network) AllReduce(ranks []int, bytes int64) Cost {
	if n.deterministic() {
		key := mix(n.hashRanks(kindAllReduce, ranks), uint64(bytes))
		return n.cached(key, func() Cost { return n.allReduce(ranks, bytes) })
	}
	return n.allReduce(ranks, bytes)
}

func (n *Network) allReduce(ranks []int, bytes int64) Cost {
	p := len(ranks)
	if p <= 1 || bytes == 0 {
		return Cost{BytesByClass: map[topology.LinkClass]int64{}}
	}
	l := n.layout(ranks)
	intra := n.M.Link(l.intraClass)
	byClass := map[topology.LinkClass]int64{}
	var t float64

	g := l.membersPerNode
	if g > 1 {
		// Intra-node reduce-scatter + all-gather: 2 x (g-1)/g x bytes per
		// member. Every rank of the group runs the intra phase, so the
		// aggregate is the per-member volume times p (integer arithmetic,
		// so the cross-collective ring identities hold exactly on even
		// node layouts; see the Cost.BytesByClass convention note).
		vol := 2 * float64(g-1) / float64(g) * float64(bytes)
		t += vol/n.bandwidthOf(l.intraClass) + 2*float64(g-1)*intra.Latency
		byClass[l.intraClass] += 2 * int64(g-1) * bytes * int64(p) / int64(g)
	}
	if l.nodes > 1 {
		// Inter-node ring all-reduce on bytes/g shards; the g flows per
		// node share the NIC, so per-node throughput is the NIC rate.
		nodes := l.nodes
		shard := float64(bytes) / float64(max(g, 1))
		vol := 2 * float64(nodes-1) / float64(nodes) * shard * float64(g)
		interSpec := n.M.Link(topology.LinkInterNode)
		interClass := topology.LinkInterNode
		if l.racks > 1 {
			interClass = topology.LinkCrossRack
		}
		bw := math.Min(n.M.NodeNICBandwidth, interSpec.Bandwidth*float64(g)) / n.derateOf(interClass)
		t += vol/bw + 2*float64(nodes-1)*interSpec.Latency
		class := topology.LinkInterNode
		if l.racks > 1 {
			class = topology.LinkCrossRack
		}
		byClass[class] += 2 * int64(nodes-1) * bytes
	}
	cd := n.congestionDelay(l.racks, byClass[topology.LinkCrossRack]+byClass[topology.LinkInterNode])
	return Cost{Seconds: t + cd, BytesByClass: byClass, CongestionDelay: cd}
}

// AllGather simulates gathering perRankBytes[i] from each rank to all
// ranks (ring schedule, hierarchical bandwidth).
func (n *Network) AllGather(ranks []int, perRankBytes []int64) Cost {
	if n.deterministic() {
		key := n.hashRanks(kindAllGather, ranks)
		for _, b := range perRankBytes {
			key = mix(key, uint64(b))
		}
		return n.cached(key, func() Cost { return n.allGather(ranks, perRankBytes) })
	}
	return n.allGather(ranks, perRankBytes)
}

func (n *Network) allGather(ranks []int, perRankBytes []int64) Cost {
	p := len(ranks)
	if p <= 1 {
		return Cost{BytesByClass: map[topology.LinkClass]int64{}}
	}
	var total int64
	for _, b := range perRankBytes {
		total += b
	}
	l := n.layout(ranks)
	byClass := map[topology.LinkClass]int64{}
	var t float64
	g := l.membersPerNode
	intra := n.M.Link(l.intraClass)
	if g > 1 {
		// Per-member intra volume, aggregated over all p participants
		// (same integer-exact convention as allReduce).
		vol := float64(g-1) / float64(g) * float64(total)
		t += vol/n.bandwidthOf(l.intraClass) + float64(g-1)*intra.Latency
		byClass[l.intraClass] += int64(g-1) * total * int64(p) / int64(g)
	}
	if l.nodes > 1 {
		nodes := l.nodes
		vol := float64(nodes-1) / float64(nodes) * float64(total)
		interSpec := n.M.Link(topology.LinkInterNode)
		interClass := topology.LinkInterNode
		if l.racks > 1 {
			interClass = topology.LinkCrossRack
		}
		bw := math.Min(n.M.NodeNICBandwidth, interSpec.Bandwidth*float64(max(g, 1))) / n.derateOf(interClass)
		t += vol/bw + float64(nodes-1)*interSpec.Latency
		class := topology.LinkInterNode
		if l.racks > 1 {
			class = topology.LinkCrossRack
		}
		byClass[class] += int64(nodes-1) * total
	}
	cd := n.congestionDelay(l.racks, byClass[topology.LinkCrossRack]+byClass[topology.LinkInterNode])
	return Cost{Seconds: t + cd, BytesByClass: byClass, CongestionDelay: cd}
}

// ReduceScatter simulates a reduce-scatter of bytes per rank; with a ring
// schedule its cost matches one all-gather pass over the same volume. The
// remainder of a non-divisible size is spread over the first bytes%p
// ranks so the per-rank shards always sum to exactly bytes.
func (n *Network) ReduceScatter(ranks []int, bytes int64) Cost {
	p := len(ranks)
	if p <= 1 || bytes == 0 {
		return Cost{BytesByClass: map[topology.LinkClass]int64{}}
	}
	per := make([]int64, p)
	base, rem := bytes/int64(p), bytes%int64(p)
	for i := range per {
		per[i] = base
		if int64(i) < rem {
			per[i]++
		}
	}
	return n.AllGather(ranks, per)
}

// Broadcast simulates a binomial-tree broadcast of bytes from the first
// rank to all others.
func (n *Network) Broadcast(ranks []int, bytes int64) Cost {
	if n.deterministic() {
		key := mix(n.hashRanks(kindBroadcast, ranks), uint64(bytes))
		return n.cached(key, func() Cost { return n.broadcast(ranks, bytes) })
	}
	return n.broadcast(ranks, bytes)
}

func (n *Network) broadcast(ranks []int, bytes int64) Cost {
	p := len(ranks)
	if p <= 1 || bytes == 0 {
		return Cost{BytesByClass: map[topology.LinkClass]int64{}}
	}
	l := n.layout(ranks)
	steps := int(math.Ceil(math.Log2(float64(p))))
	slowest := topology.LinkGCDPair
	if l.nodes > 1 {
		slowest = topology.LinkInterNode
	}
	if l.racks > 1 {
		slowest = topology.LinkCrossRack
	}
	spec := n.M.Link(slowest)
	t := float64(steps) * (spec.Latency + float64(bytes)/n.bandwidthOf(slowest))
	byClass := map[topology.LinkClass]int64{slowest: bytes * int64(p-1)}
	cd := n.congestionDelay(l.racks, byClass[topology.LinkCrossRack]+byClass[topology.LinkInterNode])
	return Cost{Seconds: t + cd, BytesByClass: byClass, CongestionDelay: cd}
}

// Barrier returns the synchronisation cost of a barrier among ranks.
func (n *Network) Barrier(ranks []int) Cost {
	// Barriers move no bytes, so their cost is always deterministic.
	return n.cached(n.hashRanks(kindBarrier, ranks), func() Cost { return n.barrier(ranks) })
}

func (n *Network) barrier(ranks []int) Cost {
	p := len(ranks)
	if p <= 1 {
		return Cost{BytesByClass: map[topology.LinkClass]int64{}}
	}
	l := n.layout(ranks)
	class := topology.LinkGCDPair
	if l.nodes > 1 {
		class = topology.LinkInterNode
	}
	if l.racks > 1 {
		class = topology.LinkCrossRack
	}
	steps := math.Ceil(math.Log2(float64(p)))
	return Cost{
		Seconds:      steps * n.M.Link(class).Latency * 2,
		BytesByClass: map[topology.LinkClass]int64{},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
