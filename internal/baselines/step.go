package baselines

import (
	"fmt"
	"strings"

	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/perfmodel"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
)

// RunSpec describes one training-throughput measurement point.
type RunSpec struct {
	// Shape is the model architecture.
	Shape model.Shape
	// Machine is the platform (Frontier or DGX-A100).
	Machine *topology.Machine
	// World is the GPU count.
	World int
	// Plan is the hybrid parallel layout.
	Plan parallel.Plan
	// MicroBatch is the per-GPU micro-batch in sequences.
	MicroBatch int
	// GlobalBatch is the global batch in sequences.
	GlobalBatch int
	// Seed drives routing and congestion sampling.
	Seed uint64
	// Congestion enables the cross-rack outlier model (Appendix D).
	Congestion bool
	// ActCkpt enables activation checkpointing (Fig. 14's alternative).
	ActCkpt bool
	// SkipMemCheck simulates timing even when the full model would not
	// fit device memory — used by layer-level microbenchmarks (Fig. 11)
	// that the paper measures in isolation.
	SkipMemCheck bool
}

// memOverheadBytes is the fixed framework overhead per GPU (runtime
// context, RCCL buffers, workspace) and memFragmentation the allocator
// slack factor — shared by all systems.
const (
	memOverheadBytes = int64(2) << 30
	memFragmentation = 1.05
)

// StepResult reports one simulated training iteration.
type StepResult struct {
	// OOM indicates the configuration does not fit device memory.
	OOM bool
	// PeakMemGB is the projected per-GPU memory (states + activations +
	// overhead), in GiB.
	PeakMemGB float64
	// StatesGB and ActsGB break the projection down.
	StatesGB, ActsGB float64
	// IterSeconds is the simulated time of one optimizer iteration.
	IterSeconds float64
	// TFLOPsPerGPU is achieved model FLOPs per GPU (the paper's
	// throughput metric).
	TFLOPsPerGPU float64
	// AggPFLOPs is the aggregate PFLOP/s across all GPUs.
	AggPFLOPs float64
	// MicroSteps is the gradient-accumulation depth.
	MicroSteps int
	// LayerForward is the average per-rank forward time of one MoE
	// transformer layer, by pipeline stage (Fig. 11's quantity).
	LayerForward map[string]float64
	// Err records configuration errors (invalid plans).
	Err error
}

// isCommStage reports whether a trace stage name denotes communication
// (charged once more in backward) rather than compute (charged twice).
func isCommStage(name string) bool {
	return strings.Contains(name, "a2a") || strings.Contains(name, "allgather") ||
		strings.Contains(name, "allreduce") || name == "barrier"
}

// SimulateStep estimates one training iteration of the given system and
// spec: the memory-model OOM verdict, a one-layer SPMD simulation on the
// virtual cluster (forward; backward charged as 2x compute + 1x identical
// communication volume), scaled to the full depth, gradient accumulation,
// and gradient synchronisation.
func SimulateStep(sys Config, spec RunSpec) StepResult {
	if err := spec.Plan.Validate(); err != nil {
		return StepResult{Err: err}
	}
	if spec.Shape.NumExperts%spec.Plan.EP != 0 || spec.Plan.EP > spec.Shape.NumExperts {
		return StepResult{Err: fmt.Errorf("EP %d incompatible with %d experts", spec.Plan.EP, spec.Shape.NumExperts)}
	}

	// --- Memory verdict ----------------------------------------------------
	setup := sys.MemSetup(spec.Plan, spec.MicroBatch)
	setup.ActCkpt = spec.ActCkpt
	states := memmodel.ModelStates(spec.Shape, setup)
	acts := memmodel.Activations(spec.Shape, setup)
	peak := int64(float64(states+acts)*memFragmentation) + memOverheadBytes
	res := StepResult{
		PeakMemGB: float64(peak) / (1 << 30),
		StatesGB:  float64(states) / (1 << 30),
		ActsGB:    float64(acts) / (1 << 30),
	}
	if peak > spec.Machine.Device.MemBytes && !spec.SkipMemCheck {
		res.OOM = true
		return res
	}

	// --- One-layer SPMD simulation -----------------------------------------
	cluster := simrt.NewCluster(spec.Machine, spec.World, spec.Seed)
	cluster.Net.DisableCongestion = !spec.Congestion
	// One simulated layer stands for all layers, so congestion must enter
	// as its expectation rather than a single sample.
	cluster.Net.ExpectedCongestion = true

	epGroups := make([]*simrt.Group, 0)
	groupOfRank := make([]*simrt.Group, spec.World)
	for _, ranks := range spec.Plan.EPGroups() {
		g := cluster.NewGroup(ranks)
		epGroups = append(epGroups, g)
		for _, r := range ranks {
			groupOfRank[r] = g
		}
	}
	tpOfRank := make([]*simrt.Group, spec.World)
	if spec.Plan.TP > 1 {
		for _, ranks := range spec.Plan.TPGroups() {
			g := cluster.NewGroup(ranks)
			for _, r := range ranks {
				tpOfRank[r] = g
			}
		}
	}
	var dispatchers map[*simrt.Group]*rbd.Dispatcher
	if sys.RBD {
		dispatchers = make(map[*simrt.Group]*rbd.Dispatcher, len(epGroups))
	}

	cfg := moe.Config{
		NumExperts:     spec.Shape.NumExperts,
		TopK:           spec.Shape.TopK,
		HModel:         spec.Shape.HModel,
		HFFN:           spec.Shape.HFFN,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	if sys.RBD {
		for _, g := range epGroups {
			dispatchers[g] = rbd.NewDispatcher(cluster, g, cfg)
		}
	}

	opts := sys.PipelineOpts()
	sTokens := spec.MicroBatch * spec.Shape.SeqLen
	h := spec.Shape.HModel

	ranks, err := cluster.RunCollect(func(r *simrt.Rank) error {
		comp := r.C.Comp
		ep := groupOfRank[r.ID]
		tp := tpOfRank[r.ID]

		// Dense (attention) block: QKV/output projections plus
		// score/context GEMMs, TP-sharded, followed by the TP
		// all-reduce on the block output.
		tpDeg := spec.Plan.TP
		r.Compute("dense_gemm",
			comp.GEMM(sTokens, h, 4*h/tpDeg)+
				comp.GEMM(sTokens, h/tpDeg, spec.Shape.SeqLen)+
				comp.GEMM(sTokens, spec.Shape.SeqLen, h/tpDeg))
		// Norms, residuals, dropout and other elementwise traffic around
		// the block.
		r.Kernel("dense_elemwise", perfmodel.ClassVendor, 6*int64(sTokens)*int64(h)*2)
		if tp != nil {
			r.AllReduce(tp, "tp_allreduce", nil, int64(sTokens)*int64(h)*2)
		}

		// MoE block.
		routing := func(n int, seedOff uint64) moe.Routing {
			return moe.SyntheticRouting(tensor.NewRNG(spec.Seed+uint64(r.ID)*31+seedOff),
				n, cfg.NumExperts, cfg.TopK, 0.6)
		}
		runInner := func(n int) {
			rt := routing(n, 7)
			switch {
			case sys.RBD:
				rbd.Forward(r, dispatchers[ep], cfg, n, nil, rt, nil,
					tensor.NewRNG(spec.Seed^uint64(r.ID)), opts)
			case sys.Pipeline == memmodel.PipelinePFT:
				moe.PFTForward(r, ep, cfg, n, nil, rt, nil, opts)
			default:
				moe.PaddedForward(r, ep, cfg, n, nil, rt, nil, opts)
			}
		}
		if sys.SSMB && tp != nil {
			parallel.SSMBForward(r, tp, sTokens, h, cfg.BytesPerElem, nil,
				func(lo, hi int, _ *tensor.Tensor) *tensor.Tensor {
					runInner(hi - lo)
					return nil
				})
		} else {
			runInner(sTokens)
		}
		return nil
	})
	if err != nil {
		return StepResult{Err: err}
	}

	// --- Assemble iteration time -------------------------------------------
	var layerFwd, layerBwd float64
	for _, rk := range ranks {
		var comm, compT float64
		for name, d := range rk.Trace.Breakdown() {
			if isCommStage(name) {
				comm += d
			} else {
				compT += d
			}
		}
		fwd := rk.Clock
		bwd := 2*compT + comm
		if spec.ActCkpt {
			// Recomputation replays the forward pass, and checkpointed
			// a2a activations cost two extra all-to-alls (§4.3's
			// argument against checkpointing MoE blocks).
			bwd += compT + comm
		}
		if fwd+bwd > layerFwd+layerBwd {
			layerFwd, layerBwd = fwd, bwd
		}
	}
	recs := make([]*trace.Recorder, len(ranks))
	for i, rk := range ranks {
		recs[i] = rk.Trace
	}
	res.LayerForward = trace.Merge(recs, true)

	// Fixed per-micro-step overhead: optimizer bookkeeping, data loading,
	// host-side launch gaps between layers.
	const microOverhead = 0.03
	microTime := float64(spec.Shape.Layers)*(layerFwd+layerBwd) + microOverhead

	dataDP := spec.World / spec.Plan.TP
	microSteps := spec.GlobalBatch / (spec.MicroBatch * dataDP)
	if microSteps < 1 {
		microSteps = 1
	}

	// Gradient synchronisation (ZeRO-style reduce-scatter + all-gather ≈
	// one all-reduce over each parameter family's replica group).
	expertGradBytes := int64(spec.Shape.Layers) * spec.Shape.ExpertParamsPerLayer() / int64(spec.Plan.EP) * 2
	denseGradBytes := (int64(spec.Shape.Layers)*(spec.Shape.AttentionParamsPerLayer()/int64(spec.Plan.TP)+spec.Shape.RouterParamsPerLayer()) +
		spec.Shape.EmbeddingParams()/int64(spec.Plan.TP)) * 2
	var syncTime float64
	if g := spec.Plan.ExpertDPGroups(); len(g) > 0 && len(g[0]) > 1 {
		syncTime += cluster.Net.AllReduce(g[0], expertGradBytes).Seconds
	}
	if g := spec.Plan.DPGroups(); len(g) > 0 && len(g[0]) > 1 {
		syncTime += cluster.Net.AllReduce(g[0], denseGradBytes).Seconds
	}

	res.MicroSteps = microSteps
	res.IterSeconds = float64(microSteps)*microTime + syncTime

	tokens := float64(spec.GlobalBatch) * float64(spec.Shape.SeqLen)
	if spec.GlobalBatch < spec.MicroBatch*dataDP {
		tokens = float64(spec.MicroBatch*dataDP) * float64(spec.Shape.SeqLen)
	}
	flops := spec.Shape.FLOPsPerToken() * tokens
	res.TFLOPsPerGPU = flops / res.IterSeconds / float64(spec.World) / 1e12
	res.AggPFLOPs = flops / res.IterSeconds / 1e15
	return res
}

// MaxMicroBatch returns the largest power-of-two micro-batch (>=1, up to
// 64) that fits device memory for the system and plan, or 0 when even
// micro-batch 1 does not fit (§5.1: "maximum micro-batch size of power of
// 2 under the memory limitation").
func MaxMicroBatch(sys Config, shape model.Shape, machine *topology.Machine, plan parallel.Plan, actCkpt bool) int {
	best := 0
	for mb := 1; mb <= 64; mb *= 2 {
		setup := sys.MemSetup(plan, mb)
		setup.ActCkpt = actCkpt
		peak := int64(float64(memmodel.ModelStates(shape, setup)+memmodel.Activations(shape, setup))*memFragmentation) + memOverheadBytes
		if peak <= machine.Device.MemBytes {
			best = mb
		} else {
			break
		}
	}
	return best
}

// SweepResult reports the best configuration found for a system.
type SweepResult struct {
	// OOM is true when no swept configuration fits memory.
	OOM bool
	// Best is the winning step result.
	Best StepResult
	// Plan and MicroBatch identify the winning configuration.
	Plan       parallel.Plan
	MicroBatch int
}

// Sweep reproduces the paper's per-system configuration search (§5.1):
// EP in {32, 64, 128, 256}, ZeRO stages 1-2, TP in {1, 2, 4, 8} for
// systems that support it, and the maximum power-of-two micro-batch that
// fits. It returns the configuration with the highest simulated
// throughput.
func Sweep(sys Config, shape model.Shape, machine *topology.Machine, world, globalBatch int, seed uint64, congestion bool) SweepResult {
	eps := []int{8, 16, 32, 64, 128, 256}
	tps := []int{1}
	if sys.SupportsTP {
		tps = []int{1, 2, 4, 8}
	}
	zeros := []int{1, 2}
	if sys.Sys == XMoE {
		zeros = []int{1}
	}

	out := SweepResult{OOM: true}
	for _, ep := range eps {
		if ep > shape.NumExperts || ep > world || world%ep != 0 || shape.NumExperts%ep != 0 {
			continue
		}
		if sys.MaxEP > 0 && ep > sys.MaxEP {
			continue
		}
		for _, tp := range tps {
			if world%tp != 0 || tp > world {
				continue
			}
			for _, z := range zeros {
				plan := parallel.Plan{
					World: world, TP: tp, EP: ep,
					Placement: sys.Placement, SSMB: sys.SSMB, ZeROStage: z,
				}
				if plan.Validate() != nil {
					continue
				}
				mb := MaxMicroBatch(sys, shape, machine, plan, false)
				if mb == 0 {
					continue
				}
				r := SimulateStep(sys, RunSpec{
					Shape: shape, Machine: machine, World: world, Plan: plan,
					MicroBatch: mb, GlobalBatch: globalBatch, Seed: seed,
					Congestion: congestion,
				})
				if r.Err != nil || r.OOM {
					continue
				}
				if out.OOM || r.TFLOPsPerGPU > out.Best.TFLOPsPerGPU {
					out = SweepResult{Best: r, Plan: plan, MicroBatch: mb}
				}
			}
		}
	}
	return out
}
