package baselines

import (
	"fmt"
	"strings"

	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/perfmodel"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
	"xmoe/internal/zero"
)

// RunSpec describes one training-throughput measurement point.
type RunSpec struct {
	// Shape is the model architecture.
	Shape model.Shape
	// Machine is the platform (Frontier or DGX-A100).
	Machine *topology.Machine
	// World is the GPU count.
	World int
	// Plan is the hybrid parallel layout.
	Plan parallel.Plan
	// MicroBatch is the per-GPU micro-batch in sequences.
	MicroBatch int
	// GlobalBatch is the global batch in sequences.
	GlobalBatch int
	// Seed drives routing and congestion sampling.
	Seed uint64
	// Congestion enables the cross-rack outlier model (Appendix D).
	Congestion bool
	// ActCkpt enables activation checkpointing (Fig. 14's alternative).
	ActCkpt bool
	// SkipMemCheck simulates timing even when the full model would not
	// fit device memory — used by layer-level microbenchmarks (Fig. 11)
	// that the paper measures in isolation.
	SkipMemCheck bool
	// LegacyBackward selects the pre-fix backward estimate (2x forward
	// compute + 1x identical communication scaled from the forward
	// trace) instead of the real symbolic per-layer backward; kept so
	// the sweeps can report the delta between the estimate and the
	// simulated backward.
	LegacyBackward bool
	// BlockingGradSync disables the bucketed overlapped gradient sync
	// and charges the classic blocking tail synchronisation after the
	// last micro-step instead — the baseline the abl-zero ablation
	// measures the overlap win against.
	BlockingGradSync bool
	// BucketBytes caps each gradient-sync bucket's wire size in the
	// overlapped path; <= 0 syncs each layer's family gradient in one
	// bucket.
	BucketBytes int64
}

// memOverheadBytes is the fixed framework overhead per GPU (runtime
// context, RCCL buffers, workspace) and memFragmentation the allocator
// slack factor — shared by all systems.
const (
	memOverheadBytes = int64(2) << 30
	memFragmentation = 1.05
)

// StepResult reports one simulated training iteration.
type StepResult struct {
	// OOM indicates the configuration does not fit device memory.
	OOM bool
	// PeakMemGB is the projected per-GPU memory (states + activations +
	// overhead), in GiB.
	PeakMemGB float64
	// StatesGB and ActsGB break the projection down.
	StatesGB, ActsGB float64
	// IterSeconds is the simulated time of one optimizer iteration.
	IterSeconds float64
	// TFLOPsPerGPU is achieved model FLOPs per GPU (the paper's
	// throughput metric).
	TFLOPsPerGPU float64
	// AggPFLOPs is the aggregate PFLOP/s across all GPUs.
	AggPFLOPs float64
	// MicroSteps is the gradient-accumulation depth.
	MicroSteps int
	// LayerForward is the average per-rank forward time of one MoE
	// transformer layer, by pipeline stage (Fig. 11's quantity).
	LayerForward map[string]float64
	// Err records configuration errors (invalid plans).
	Err error
}

// isCommStage reports whether a trace stage name denotes communication
// (charged once more in backward) rather than compute (charged twice).
func isCommStage(name string) bool {
	return strings.Contains(name, "a2a") || strings.Contains(name, "allgather") ||
		strings.Contains(name, "allreduce") || name == "barrier"
}

// SimulateStep estimates one training iteration of the given system and
// spec: the memory-model OOM verdict, a one-layer SPMD simulation of the
// forward AND backward passes (real symbolic backward through
// PFTBackward/PaddedBackward with bucketed, overlapped ZeRO gradient
// sync — or the legacy forward-trace estimate when LegacyBackward is
// set), scaled to the full depth, gradient accumulation, and the
// end-of-iteration synchronisation tails.
func SimulateStep(sys Config, spec RunSpec) StepResult {
	if err := spec.Plan.Validate(); err != nil {
		return StepResult{Err: err}
	}
	if spec.Shape.NumExperts%spec.Plan.EP != 0 || spec.Plan.EP > spec.Shape.NumExperts {
		return StepResult{Err: fmt.Errorf("EP %d incompatible with %d experts", spec.Plan.EP, spec.Shape.NumExperts)}
	}

	// --- Memory verdict ----------------------------------------------------
	setup := sys.MemSetup(spec.Plan, spec.MicroBatch)
	setup.ActCkpt = spec.ActCkpt
	states := memmodel.ModelStates(spec.Shape, setup)
	acts := memmodel.Activations(spec.Shape, setup)
	peak := int64(float64(states+acts)*memFragmentation) + memOverheadBytes
	res := StepResult{
		PeakMemGB: float64(peak) / (1 << 30),
		StatesGB:  float64(states) / (1 << 30),
		ActsGB:    float64(acts) / (1 << 30),
	}
	if peak > spec.Machine.Device.MemBytes && !spec.SkipMemCheck {
		res.OOM = true
		return res
	}

	if spec.LegacyBackward {
		return simulateStepLegacy(sys, spec, res)
	}
	return simulateStepReal(sys, spec, res)
}

// layerRun is one full-layer (fwd+bwd) SPMD simulation outcome.
type layerRun struct {
	cluster *simrt.Cluster
	// wall is the slowest rank's fwd+bwd clock.
	wall float64
	// fwdBreakdown is the per-stage forward time averaged over ranks
	// (snapshotted before the backward so Fig. 11 stays pure-forward).
	fwdBreakdown map[string]float64
	err          error
}

// gradFamilies returns the per-layer gradient bytes of the expert and
// dense parameter families plus the once-per-model embedding bytes,
// under the plan's sharding (bf16 gradients, matching the memmodel).
func gradFamilies(sh model.Shape, plan parallel.Plan) (expertPerLayer, densePerLayer, embedding int64) {
	expertPerLayer = sh.ExpertParamsPerLayer() / int64(plan.EP) * 2
	densePerLayer = (sh.AttentionParamsPerLayer()/int64(plan.TP) + sh.RouterParamsPerLayer()) * 2
	embedding = sh.EmbeddingParams() / int64(plan.TP) * 2
	return
}

// simulateStepReal is the fixed estimator: one simulated transformer
// layer runs its real forward and its real symbolic backward (mirrored
// all-to-alls, dW/dX GEMM costs) on the cluster. Gradient sync either
// overlaps the backward (bucketed async reduce issued from the
// backward's OnDWReady hook, ZeRO stage from the plan) or, with
// BlockingGradSync, is charged as the classic blocking tail.
func simulateStepReal(sys Config, spec RunSpec, res StepResult) StepResult {
	expertPerLayer, densePerLayer, embedBytes := gradFamilies(spec.Shape, spec.Plan)
	edpGroups := spec.Plan.ExpertDPGroups()
	dpGroups := spec.Plan.DPGroups()
	hasEDP := len(edpGroups) > 0 && len(edpGroups[0]) > 1
	hasDP := len(dpGroups) > 0 && len(dpGroups[0]) > 1

	dataDP := spec.World / spec.Plan.TP
	microSteps := spec.GlobalBatch / (spec.MicroBatch * dataDP)
	if microSteps < 1 {
		microSteps = 1
	}

	withSync := !spec.BlockingGradSync && (hasEDP || hasDP)
	primary := runFullLayer(sys, spec, withSync)
	if primary.err != nil {
		return StepResult{Err: primary.err}
	}
	layerSync := primary.wall
	layerNoSync := primary.wall
	if withSync && microSteps > 1 {
		// Accumulation steps before the last run the same layer without
		// gradient sync (grads sync once per iteration); a second run
		// prices that layer.
		plain := runFullLayer(sys, spec, false)
		if plain.err != nil {
			return StepResult{Err: plain.err}
		}
		layerNoSync = plain.wall
	}
	res.LayerForward = primary.fwdBreakdown

	// Fixed per-micro-step overhead: optimizer bookkeeping, data loading,
	// host-side launch gaps between layers.
	const microOverhead = 0.03
	net := primary.cluster.Net
	layers := float64(spec.Shape.Layers)

	// Synchronisation tails shared by both sync modes: the embedding
	// gradient (not covered by the per-layer sync) and, at ZeRO stages
	// 1/2, the post-step parameter all-gather republishing the shards
	// updated by their owners.
	var tail float64
	gradTail := func(ranks []int, bytes int64) float64 {
		if spec.Plan.ZeROStage >= 2 {
			return net.ReduceScatter(ranks, bytes).Seconds
		}
		return net.AllReduce(ranks, bytes).Seconds
	}
	agTail := func(ranks []int, paramBytes int64) float64 {
		per := make([]int64, len(ranks))
		base, rem := paramBytes/int64(len(ranks)), paramBytes%int64(len(ranks))
		for i := range per {
			per[i] = base
			if int64(i) < rem {
				per[i]++
			}
		}
		return net.AllGather(ranks, per).Seconds
	}
	if hasDP && embedBytes > 0 {
		tail += gradTail(dpGroups[0], embedBytes)
	}
	if spec.Plan.ZeROStage >= 1 {
		if hasEDP {
			tail += agTail(edpGroups[0], int64(spec.Shape.Layers)*expertPerLayer)
		}
		if hasDP {
			tail += agTail(dpGroups[0], int64(spec.Shape.Layers)*densePerLayer+embedBytes)
		}
	}

	res.MicroSteps = microSteps
	if withSync {
		res.IterSeconds = float64(microSteps-1)*(layers*layerNoSync+microOverhead) +
			(layers*layerSync + microOverhead) + tail
	} else {
		// Blocking mode: every micro-step runs sync-free, then the whole
		// family gradients synchronise serially at the end.
		var syncTime float64
		if hasEDP {
			syncTime += gradTail(edpGroups[0], int64(spec.Shape.Layers)*expertPerLayer)
		}
		if hasDP {
			syncTime += gradTail(dpGroups[0], int64(spec.Shape.Layers)*densePerLayer)
		}
		res.IterSeconds = float64(microSteps)*(layers*layerNoSync+microOverhead) + syncTime + tail
	}

	finishThroughput(&res, spec, dataDP)
	return res
}

// runFullLayer simulates one transformer layer's forward and backward on
// a fresh cluster, optionally with the bucketed overlapped gradient sync
// issued from the backward.
func runFullLayer(sys Config, spec RunSpec, withSync bool) layerRun {
	cluster := simrt.NewCluster(spec.Machine, spec.World, spec.Seed)
	cluster.Net.DisableCongestion = !spec.Congestion
	// One simulated layer stands for all layers, so congestion must enter
	// as its expectation rather than a single sample.
	cluster.Net.ExpectedCongestion = true

	epOfRank := make([]*simrt.Group, spec.World)
	epGroups := make([]*simrt.Group, 0)
	for _, ranks := range spec.Plan.EPGroups() {
		g := cluster.NewGroup(ranks)
		epGroups = append(epGroups, g)
		for _, r := range ranks {
			epOfRank[r] = g
		}
	}
	tpOfRank := make([]*simrt.Group, spec.World)
	if spec.Plan.TP > 1 {
		for _, ranks := range spec.Plan.TPGroups() {
			g := cluster.NewGroup(ranks)
			for _, r := range ranks {
				tpOfRank[r] = g
			}
		}
	}
	edpOfRank := make([]*simrt.Group, spec.World)
	dpOfRank := make([]*simrt.Group, spec.World)
	if withSync {
		if gs := spec.Plan.ExpertDPGroups(); len(gs) > 0 && len(gs[0]) > 1 {
			for _, ranks := range gs {
				g := cluster.NewGroup(ranks)
				for _, r := range ranks {
					edpOfRank[r] = g
				}
			}
		}
		if gs := spec.Plan.DPGroups(); len(gs) > 0 && len(gs[0]) > 1 {
			for _, ranks := range gs {
				g := cluster.NewGroup(ranks)
				for _, r := range ranks {
					dpOfRank[r] = g
				}
			}
		}
	}

	cfg := moe.Config{
		NumExperts:     spec.Shape.NumExperts,
		TopK:           spec.Shape.TopK,
		HModel:         spec.Shape.HModel,
		HFFN:           spec.Shape.HFFN,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	var dispatchers map[*simrt.Group]*rbd.Dispatcher
	if sys.RBD {
		dispatchers = make(map[*simrt.Group]*rbd.Dispatcher, len(epGroups))
		for _, g := range epGroups {
			dispatchers[g] = rbd.NewDispatcher(cluster, g, cfg)
		}
	}

	opts := sys.PipelineOpts()
	opts.SaveForBackward = true
	sTokens := spec.MicroBatch * spec.Shape.SeqLen
	h := spec.Shape.HModel
	expertPerLayer, densePerLayer, _ := gradFamilies(spec.Shape, spec.Plan)
	zcfg := zero.Config{Stage: spec.Plan.ZeROStage, BucketBytes: spec.BucketBytes}

	fwdBds := make([]map[string]float64, spec.World)

	ranks, err := cluster.RunCollect(func(r *simrt.Rank) error {
		comp := r.C.Comp
		ep := epOfRank[r.ID]
		tp := tpOfRank[r.ID]
		tpDeg := spec.Plan.TP

		denseGemm := comp.GEMM(sTokens, h, 4*h/tpDeg) +
			comp.GEMM(sTokens, h/tpDeg, spec.Shape.SeqLen) +
			comp.GEMM(sTokens, spec.Shape.SeqLen, h/tpDeg)
		denseFwd := func() {
			// Dense (attention) block: QKV/output projections plus
			// score/context GEMMs, TP-sharded, followed by the TP
			// all-reduce on the block output.
			r.Compute("dense_gemm", denseGemm)
			// Norms, residuals, dropout and other elementwise traffic
			// around the block.
			r.Kernel("dense_elemwise", perfmodel.ClassVendor, 6*int64(sTokens)*int64(h)*2)
			if tp != nil {
				r.AllReduce(tp, "tp_allreduce", nil, int64(sTokens)*int64(h)*2)
			}
		}

		// MoE block forward, with state capture for the backward.
		routing := func(n int, seedOff uint64) moe.Routing {
			return moe.SyntheticRouting(tensor.NewRNG(spec.Seed+uint64(r.ID)*31+seedOff),
				n, cfg.NumExperts, cfg.TopK, 0.6)
		}
		var pftState *moe.PFTFwdState
		var padState *moe.PaddedFwdState
		var rbdState *rbd.FwdState
		runInner := func(n int) {
			rt := routing(n, 7)
			switch {
			case sys.RBD:
				lr := rbd.Forward(r, dispatchers[ep], cfg, n, nil, rt, nil,
					tensor.NewRNG(spec.Seed^uint64(r.ID)), opts)
				rbdState = lr.State
			case sys.Pipeline == memmodel.PipelinePFT:
				lr := moe.PFTForward(r, ep, cfg, n, nil, rt, nil, opts)
				pftState = lr.State
			default:
				lr := moe.PaddedForward(r, ep, cfg, n, nil, rt, nil, opts)
				padState = lr.PaddedState
			}
		}
		moeFwd := func() {
			if sys.SSMB && tp != nil {
				parallel.SSMBForward(r, tp, sTokens, h, cfg.BytesPerElem, nil,
					func(lo, hi int, _ *tensor.Tensor) *tensor.Tensor {
						runInner(hi - lo)
						return nil
					})
			} else {
				runInner(sTokens)
			}
		}
		denseFwd()
		moeFwd()

		// Snapshot the forward-only per-stage breakdown (Fig. 11's
		// quantity) before any backward or recompute charges land.
		snap := make(map[string]float64)
		for name, d := range r.Trace.Breakdown() {
			snap[name] = d
		}
		fwdBds[r.ID] = snap

		// --- Backward ------------------------------------------------------
		if spec.ActCkpt {
			// Recomputation replays the whole layer forward, including
			// the two MoE all-to-alls (§4.3's argument against
			// checkpointing MoE blocks).
			denseFwd()
			moeFwd()
		}

		var esync, dsync *zero.Syncer
		if withSync {
			if g := edpOfRank[r.ID]; g != nil {
				esync = zero.NewSyncer(r, g, "egrad_sync", zcfg)
			}
			if g := dpOfRank[r.ID]; g != nil {
				dsync = zero.NewSyncer(r, g, "dgrad_sync", zcfg)
			}
		}
		syncIssue := func() {
			if esync != nil {
				esync.Add(nil, expertPerLayer)
				esync.Flush()
			}
			if dsync != nil {
				dsync.Add(nil, densePerLayer)
				dsync.Flush()
			}
		}

		moeBwd := func(n int, bopts moe.PipelineOpts) {
			switch {
			case sys.RBD:
				// The forward saved its hierarchical exchange state, so the
				// backward reverses the real C2/C1 and S2/S1 stages — no
				// geometry rebuild, no mirrored-flat pricing.
				rbd.Backward(r, dispatchers[ep], cfg, rbdState, nil, nil, bopts)
			case sys.Pipeline == memmodel.PipelinePFT:
				moe.PFTBackward(r, ep, cfg, pftState, nil, nil, bopts)
			default:
				moe.PaddedBackward(r, ep, cfg, padState, nil, nil, bopts)
			}
		}
		if sys.SSMB && tp != nil {
			parallel.SSMBBackward(r, tp, sTokens, h, cfg.BytesPerElem, nil,
				func(lo, hi int, _ *tensor.Tensor) *tensor.Tensor {
					moeBwd(hi-lo, opts)
					return nil
				})
			// The SSMB backward ends in a blocking all-gather that would
			// absorb an earlier sync issue; fire the hook after it.
			syncIssue()
		} else {
			bopts := opts
			if withSync {
				bopts.OnDWReady = syncIssue
			} else {
				bopts.OnDWReady = nil
			}
			moeBwd(sTokens, bopts)
		}
		// Gate backward: dScores GEMM + dX GEMM of the [n, H] x [H, E]
		// gating projection.
		r.Compute("bwd_gate", 2*comp.GEMM(sTokens, h, cfg.NumExperts))

		// Dense block backward: dX and dW GEMMs (2x the forward GEMM
		// volume), mirrored elementwise traffic, and the TP gradient
		// all-reduce.
		r.Compute("dense_bwd_gemm", 2*denseGemm)
		r.Kernel("dense_bwd_elemwise", perfmodel.ClassVendor, 6*int64(sTokens)*int64(h)*2)
		if tp != nil {
			r.AllReduce(tp, "tp_bwd_allreduce", nil, int64(sTokens)*int64(h)*2)
		}

		if esync != nil {
			esync.Wait()
		}
		if dsync != nil {
			dsync.Wait()
		}
		return nil
	})
	if err != nil {
		return layerRun{err: err}
	}

	out := layerRun{cluster: cluster, fwdBreakdown: trace.MergeMaps(fwdBds, true)}
	for _, rk := range ranks {
		if rk.Clock > out.wall {
			out.wall = rk.Clock
		}
	}
	return out
}

// finishThroughput fills the FLOPs-derived fields from IterSeconds.
func finishThroughput(res *StepResult, spec RunSpec, dataDP int) {
	tokens := float64(spec.GlobalBatch) * float64(spec.Shape.SeqLen)
	if spec.GlobalBatch < spec.MicroBatch*dataDP {
		tokens = float64(spec.MicroBatch*dataDP) * float64(spec.Shape.SeqLen)
	}
	flops := spec.Shape.FLOPsPerToken() * tokens
	res.TFLOPsPerGPU = flops / res.IterSeconds / float64(spec.World) / 1e12
	res.AggPFLOPs = flops / res.IterSeconds / 1e15
}

// simulateStepLegacy is the pre-fix estimator, kept behind
// RunSpec.LegacyBackward for delta reporting: forward-only simulation
// with the backward charged as 2x compute + 1x identical communication
// and a blocking gradient-sync tail.
func simulateStepLegacy(sys Config, spec RunSpec, res StepResult) StepResult {
	cluster := simrt.NewCluster(spec.Machine, spec.World, spec.Seed)
	cluster.Net.DisableCongestion = !spec.Congestion
	cluster.Net.ExpectedCongestion = true

	epGroups := make([]*simrt.Group, 0)
	groupOfRank := make([]*simrt.Group, spec.World)
	for _, ranks := range spec.Plan.EPGroups() {
		g := cluster.NewGroup(ranks)
		epGroups = append(epGroups, g)
		for _, r := range ranks {
			groupOfRank[r] = g
		}
	}
	tpOfRank := make([]*simrt.Group, spec.World)
	if spec.Plan.TP > 1 {
		for _, ranks := range spec.Plan.TPGroups() {
			g := cluster.NewGroup(ranks)
			for _, r := range ranks {
				tpOfRank[r] = g
			}
		}
	}
	var dispatchers map[*simrt.Group]*rbd.Dispatcher
	if sys.RBD {
		dispatchers = make(map[*simrt.Group]*rbd.Dispatcher, len(epGroups))
	}

	cfg := moe.Config{
		NumExperts:     spec.Shape.NumExperts,
		TopK:           spec.Shape.TopK,
		HModel:         spec.Shape.HModel,
		HFFN:           spec.Shape.HFFN,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	if sys.RBD {
		for _, g := range epGroups {
			dispatchers[g] = rbd.NewDispatcher(cluster, g, cfg)
		}
	}

	opts := sys.PipelineOpts()
	sTokens := spec.MicroBatch * spec.Shape.SeqLen
	h := spec.Shape.HModel

	ranks, err := cluster.RunCollect(func(r *simrt.Rank) error {
		comp := r.C.Comp
		ep := groupOfRank[r.ID]
		tp := tpOfRank[r.ID]

		tpDeg := spec.Plan.TP
		r.Compute("dense_gemm",
			comp.GEMM(sTokens, h, 4*h/tpDeg)+
				comp.GEMM(sTokens, h/tpDeg, spec.Shape.SeqLen)+
				comp.GEMM(sTokens, spec.Shape.SeqLen, h/tpDeg))
		r.Kernel("dense_elemwise", perfmodel.ClassVendor, 6*int64(sTokens)*int64(h)*2)
		if tp != nil {
			r.AllReduce(tp, "tp_allreduce", nil, int64(sTokens)*int64(h)*2)
		}

		routing := func(n int, seedOff uint64) moe.Routing {
			return moe.SyntheticRouting(tensor.NewRNG(spec.Seed+uint64(r.ID)*31+seedOff),
				n, cfg.NumExperts, cfg.TopK, 0.6)
		}
		runInner := func(n int) {
			rt := routing(n, 7)
			switch {
			case sys.RBD:
				rbd.Forward(r, dispatchers[ep], cfg, n, nil, rt, nil,
					tensor.NewRNG(spec.Seed^uint64(r.ID)), opts)
			case sys.Pipeline == memmodel.PipelinePFT:
				moe.PFTForward(r, ep, cfg, n, nil, rt, nil, opts)
			default:
				moe.PaddedForward(r, ep, cfg, n, nil, rt, nil, opts)
			}
		}
		if sys.SSMB && tp != nil {
			parallel.SSMBForward(r, tp, sTokens, h, cfg.BytesPerElem, nil,
				func(lo, hi int, _ *tensor.Tensor) *tensor.Tensor {
					runInner(hi - lo)
					return nil
				})
		} else {
			runInner(sTokens)
		}
		return nil
	})
	if err != nil {
		return StepResult{Err: err}
	}

	var layerFwd, layerBwd float64
	for _, rk := range ranks {
		var comm, compT float64
		for name, d := range rk.Trace.Breakdown() {
			if isCommStage(name) {
				comm += d
			} else {
				compT += d
			}
		}
		fwd := rk.Clock
		bwd := 2*compT + comm
		if spec.ActCkpt {
			bwd += compT + comm
		}
		if fwd+bwd > layerFwd+layerBwd {
			layerFwd, layerBwd = fwd, bwd
		}
	}
	recs := make([]*trace.Recorder, len(ranks))
	for i, rk := range ranks {
		recs[i] = rk.Trace
	}
	res.LayerForward = trace.Merge(recs, true)

	const microOverhead = 0.03
	microTime := float64(spec.Shape.Layers)*(layerFwd+layerBwd) + microOverhead

	dataDP := spec.World / spec.Plan.TP
	microSteps := spec.GlobalBatch / (spec.MicroBatch * dataDP)
	if microSteps < 1 {
		microSteps = 1
	}

	expertGradBytes := int64(spec.Shape.Layers) * spec.Shape.ExpertParamsPerLayer() / int64(spec.Plan.EP) * 2
	denseGradBytes := (int64(spec.Shape.Layers)*(spec.Shape.AttentionParamsPerLayer()/int64(spec.Plan.TP)+spec.Shape.RouterParamsPerLayer()) +
		spec.Shape.EmbeddingParams()/int64(spec.Plan.TP)) * 2
	var syncTime float64
	if g := spec.Plan.ExpertDPGroups(); len(g) > 0 && len(g[0]) > 1 {
		syncTime += cluster.Net.AllReduce(g[0], expertGradBytes).Seconds
	}
	if g := spec.Plan.DPGroups(); len(g) > 0 && len(g[0]) > 1 {
		syncTime += cluster.Net.AllReduce(g[0], denseGradBytes).Seconds
	}

	res.MicroSteps = microSteps
	res.IterSeconds = float64(microSteps)*microTime + syncTime
	finishThroughput(&res, spec, dataDP)
	return res
}

// MaxMicroBatch returns the largest power-of-two micro-batch (>=1, up to
// 64) that fits device memory for the system and plan, or 0 when even
// micro-batch 1 does not fit (§5.1: "maximum micro-batch size of power of
// 2 under the memory limitation").
func MaxMicroBatch(sys Config, shape model.Shape, machine *topology.Machine, plan parallel.Plan, actCkpt bool) int {
	best := 0
	for mb := 1; mb <= 64; mb *= 2 {
		setup := sys.MemSetup(plan, mb)
		setup.ActCkpt = actCkpt
		peak := int64(float64(memmodel.ModelStates(shape, setup)+memmodel.Activations(shape, setup))*memFragmentation) + memOverheadBytes
		if peak <= machine.Device.MemBytes {
			best = mb
		} else {
			break
		}
	}
	return best
}

// SweepResult reports the best configuration found for a system.
type SweepResult struct {
	// OOM is true when no swept configuration fits memory.
	OOM bool
	// Best is the winning step result.
	Best StepResult
	// Plan and MicroBatch identify the winning configuration.
	Plan       parallel.Plan
	MicroBatch int
}

// Sweep reproduces the paper's per-system configuration search (§5.1):
// EP in {32, 64, 128, 256}, ZeRO stages 1-2, TP in {1, 2, 4, 8} for
// systems that support it, and the maximum power-of-two micro-batch that
// fits. It returns the configuration with the highest simulated
// throughput.
func Sweep(sys Config, shape model.Shape, machine *topology.Machine, world, globalBatch int, seed uint64, congestion bool) SweepResult {
	eps := []int{8, 16, 32, 64, 128, 256}
	tps := []int{1}
	if sys.SupportsTP {
		tps = []int{1, 2, 4, 8}
	}
	zeros := []int{1, 2}
	if sys.Sys == XMoE {
		zeros = []int{1}
	}

	out := SweepResult{OOM: true}
	for _, ep := range eps {
		if ep > shape.NumExperts || ep > world || world%ep != 0 || shape.NumExperts%ep != 0 {
			continue
		}
		if sys.MaxEP > 0 && ep > sys.MaxEP {
			continue
		}
		for _, tp := range tps {
			if world%tp != 0 || tp > world {
				continue
			}
			for _, z := range zeros {
				plan := parallel.Plan{
					World: world, TP: tp, EP: ep,
					Placement: sys.Placement, SSMB: sys.SSMB, ZeROStage: z,
				}
				if plan.Validate() != nil {
					continue
				}
				mb := MaxMicroBatch(sys, shape, machine, plan, false)
				if mb == 0 {
					continue
				}
				r := SimulateStep(sys, RunSpec{
					Shape: shape, Machine: machine, World: world, Plan: plan,
					MicroBatch: mb, GlobalBatch: globalBatch, Seed: seed,
					Congestion: congestion,
				})
				if r.Err != nil || r.OOM {
					continue
				}
				if out.OOM || r.TFLOPsPerGPU > out.Best.TFLOPsPerGPU {
					out = SweepResult{Best: r, Plan: plan, MicroBatch: mb}
				}
			}
		}
	}
	return out
}
