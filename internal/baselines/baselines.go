// Package baselines defines the four training systems the paper compares
// — DeepSpeed-MoE, DeepSpeed-TED, Tutel, and X-MoE — as configurations of
// the shared pipeline, parallelism, kernel-quality, and memory machinery,
// plus the evaluation-methodology sweep of §5.1 (EP sizes, ZeRO stages, TP
// degrees, maximum power-of-two micro-batch under the memory limit).
package baselines

import (
	"xmoe/internal/memmodel"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/topology"
)

// System identifies a training framework.
type System int

const (
	// DeepSpeedMoE is the ZeRO-DP + EP baseline with the dense-mask
	// padded pipeline [31].
	DeepSpeedMoE System = iota
	// DeepSpeedTED adds tensor-slicing parallelism (TP+EP+DP) over the
	// same padded pipeline [34].
	DeepSpeedTED
	// Tutel uses adaptive parallelism with tuned (CUDA-centric) kernels
	// and a sparse dispatcher, but forces fp32 combine buffers on AMD
	// [16].
	Tutel
	// XMoE is the paper's system: PFT padding-free pipeline, RBD,
	// SSMB hybrid parallelism, Triton-class portable kernels.
	XMoE
)

// String names the system as in the paper's figures.
func (s System) String() string {
	switch s {
	case DeepSpeedMoE:
		return "DeepSpeed-MoE"
	case DeepSpeedTED:
		return "DeepSpeed-TED"
	case Tutel:
		return "Tutel"
	case XMoE:
		return "X-MoE"
	}
	return "unknown"
}

// Systems returns all four systems in the paper's plotting order.
func Systems() []System { return []System{DeepSpeedMoE, DeepSpeedTED, Tutel, XMoE} }

// Config captures how a system drives the shared machinery.
type Config struct {
	Sys  System
	Name string
	// Pipeline selects padded vs PFT buffers for memory accounting.
	Pipeline memmodel.Pipeline
	// Kernels selects the gating/dispatch kernel quality class.
	Kernels moe.KernelProfile
	// DropPolicy is the system's token-dropping rule.
	DropPolicy moe.DropPolicy
	// CombineBytes is the combine-buffer element size on this platform.
	CombineBytes int
	// NoDenseMask marks sparse dispatchers (Tutel).
	NoDenseMask bool
	// SupportsTP: the sweep may raise TP above 1.
	SupportsTP bool
	// SSMB: sequence-sharded MoE blocks (X-MoE only).
	SSMB bool
	// RBD: redundancy-bypassing dispatch (X-MoE only).
	RBD bool
	// Placement is the EP/DP placement strategy.
	Placement parallel.Placement
	// MaxEP caps the expert-parallel group size (X-MoE limits EP to one
	// rack = 256 GPUs after the Appendix D characterisation).
	MaxEP int
}

// For returns the system configuration on the given machine. The machine
// matters: Tutel's fp32-combine quirk is AMD-specific (Table 4 vs Table
// 5).
func For(sys System, m *topology.Machine) Config {
	onAMD := m.Device.Name == "MI250X-GCD"
	switch sys {
	case DeepSpeedMoE:
		return Config{
			Sys: sys, Name: sys.String(),
			Pipeline:   memmodel.PipelinePadded,
			Kernels:    moe.KernelsFallback,
			DropPolicy: moe.DropNegativeThenPosition,
			Placement:  parallel.EPFirst,
		}
	case DeepSpeedTED:
		return Config{
			Sys: sys, Name: sys.String(),
			Pipeline:   memmodel.PipelinePadded,
			Kernels:    moe.KernelsFallback,
			DropPolicy: moe.DropNegativeThenPosition,
			SupportsTP: true,
			Placement:  parallel.EPFirst,
		}
	case Tutel:
		cb := 0
		if onAMD {
			cb = 4
		}
		return Config{
			Sys: sys, Name: sys.String(),
			Pipeline:     memmodel.PipelinePadded,
			Kernels:      moe.KernelsVendor,
			DropPolicy:   moe.DropNegativeThenPosition,
			CombineBytes: cb,
			NoDenseMask:  true,
			Placement:    parallel.EPFirst,
		}
	default: // XMoE
		// EP groups stay contiguous (EP-first) so RBD sees node-level
		// expert co-location; the DP-first replica placement of Appendix
		// C.1 is analysed separately (it trades away RBD's redundancy).
		return Config{
			Sys: sys, Name: sys.String(),
			Pipeline:   memmodel.PipelinePFT,
			Kernels:    moe.KernelsTriton,
			DropPolicy: moe.DropByCapacityWeight,
			SupportsTP: true,
			SSMB:       true,
			RBD:        true,
			Placement:  parallel.EPFirst,
			MaxEP:      256,
		}
	}
}

// PipelineOpts converts the system config into moe pipeline options.
func (c Config) PipelineOpts() moe.PipelineOpts {
	return moe.PipelineOpts{
		DropPolicy:   c.DropPolicy,
		Kernels:      c.Kernels,
		CombineBytes: c.CombineBytes,
	}
}

// MemSetup converts the system config plus a plan and micro-batch into a
// memory-model setup.
func (c Config) MemSetup(plan parallel.Plan, microBatch int) memmodel.Setup {
	return memmodel.Setup{
		Plan:           plan,
		MicroBatch:     microBatch,
		Pipeline:       c.Pipeline,
		CapacityFactor: 1.25,
		ElemBytes:      2,
		CombineBytes:   c.CombineBytes,
		NoDenseMask:    c.NoDenseMask,
	}
}
