package baselines

import (
	"testing"

	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/topology"
)

func TestPresetsDifferentiateSystems(t *testing.T) {
	m := topology.Frontier()
	ds := For(DeepSpeedMoE, m)
	ted := For(DeepSpeedTED, m)
	tutel := For(Tutel, m)
	x := For(XMoE, m)

	if ds.Pipeline != memmodel.PipelinePadded || x.Pipeline != memmodel.PipelinePFT {
		t.Fatal("pipeline presets wrong")
	}
	if ds.SupportsTP || !ted.SupportsTP || !x.SupportsTP {
		t.Fatal("TP support presets wrong")
	}
	if !x.SSMB || !x.RBD || ds.SSMB || tutel.RBD {
		t.Fatal("X-MoE feature flags wrong")
	}
	if tutel.CombineBytes != 4 {
		t.Fatal("Tutel on AMD must force fp32 combine buffers")
	}
	if x.DropPolicy != moe.DropByCapacityWeight || ds.DropPolicy != moe.DropNegativeThenPosition {
		t.Fatal("drop policies wrong")
	}
}

func TestTutelQuirkIsAMDOnly(t *testing.T) {
	if For(Tutel, topology.DGXA100()).CombineBytes != 0 {
		t.Fatal("fp32 combine is an AMD-specific quirk (Table 5 vs Table 4)")
	}
}

func TestSystemsStringAndOrder(t *testing.T) {
	want := []string{"DeepSpeed-MoE", "DeepSpeed-TED", "Tutel", "X-MoE"}
	for i, s := range Systems() {
		if s.String() != want[i] {
			t.Fatalf("Systems()[%d] = %s, want %s", i, s, want[i])
		}
	}
	if System(99).String() != "unknown" {
		t.Fatal("unknown system should stringify to 'unknown'")
	}
}

func TestSimulateStepRejectsBadPlans(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	r := SimulateStep(cfg, RunSpec{
		Shape: model.Small(), Machine: m, World: 16,
		Plan:       parallel.Plan{World: 16, TP: 3, EP: 8}, // TP does not divide
		MicroBatch: 1, GlobalBatch: 64,
	})
	if r.Err == nil {
		t.Fatal("invalid plan must be rejected")
	}
	r = SimulateStep(cfg, RunSpec{
		Shape: model.Small(), Machine: m, World: 16,
		Plan:       parallel.Plan{World: 16, TP: 1, EP: 16, ZeROStage: 1},
		MicroBatch: 1, GlobalBatch: 64,
	})
	if r.Err == nil && !r.OOM && r.IterSeconds <= 0 {
		t.Fatal("valid step must produce time")
	}
	// EP larger than expert count is invalid (Small has 64 experts).
	bad := SimulateStep(cfg, RunSpec{
		Shape: model.Small(), Machine: m, World: 128,
		Plan:       parallel.Plan{World: 128, TP: 1, EP: 128, ZeROStage: 1},
		MicroBatch: 1, GlobalBatch: 64,
	})
	if bad.Err == nil {
		t.Fatal("EP > NumExperts must be rejected")
	}
}

func TestSimulateStepOOMVerdict(t *testing.T) {
	m := topology.Frontier()
	cfg := For(DeepSpeedMoE, m)
	// Large model on 16 GPUs cannot fit.
	r := SimulateStep(cfg, RunSpec{
		Shape: model.Large(), Machine: m, World: 16,
		Plan:       parallel.Plan{World: 16, TP: 1, EP: 16, ZeROStage: 1},
		MicroBatch: 1, GlobalBatch: 64,
	})
	if !r.OOM {
		t.Fatalf("Large on 16 GPUs should OOM, got %.1f GiB", r.PeakMemGB)
	}
	if r.IterSeconds != 0 {
		t.Fatal("OOM results carry no timing")
	}
}

func TestSimulateStepProducesBreakdown(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	r := SimulateStep(cfg, RunSpec{
		Shape: model.Small(), Machine: m, World: 16,
		Plan:       parallel.Plan{World: 16, TP: 1, EP: 8, Placement: cfg.Placement, ZeROStage: 1},
		MicroBatch: 1, GlobalBatch: 256, Seed: 3,
	})
	if r.Err != nil || r.OOM {
		t.Fatalf("unexpected failure: %+v", r)
	}
	for _, stage := range []string{moe.StageGate, moe.StageExperts} {
		if r.LayerForward[stage] <= 0 {
			t.Fatalf("stage %q missing from layer breakdown", stage)
		}
	}
	if r.TFLOPsPerGPU <= 0 || r.TFLOPsPerGPU > 191.5 {
		t.Fatalf("TFLOPs %.1f outside physical range", r.TFLOPsPerGPU)
	}
	if r.MicroSteps < 1 {
		t.Fatal("micro steps must be at least 1")
	}
}

func TestMaxMicroBatchMonotoneInModelSize(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	plan := parallel.Plan{World: 256, TP: 1, EP: 64, Placement: cfg.Placement, SSMB: true, ZeROStage: 1}
	small := MaxMicroBatch(cfg, model.Small(), m, plan, false)
	large := MaxMicroBatch(cfg, model.Large(), m, plan, false)
	if small < large {
		t.Fatalf("smaller model must allow at least as large a micro batch: %d vs %d", small, large)
	}
	if small == 0 {
		t.Fatal("Small model should fit at micro-batch >= 1")
	}
}

func TestMaxMicroBatchCkptIncreasesHeadroom(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	plan := parallel.Plan{World: 256, TP: 1, EP: 64, Placement: cfg.Placement, ZeROStage: 1}
	noCkpt := MaxMicroBatch(cfg, model.Large(), m, plan, false)
	ckpt := MaxMicroBatch(cfg, model.Large(), m, plan, true)
	if ckpt < noCkpt {
		t.Fatal("checkpointing cannot shrink the feasible micro batch")
	}
}

func TestSweepFindsXMoEConfigForLarge(t *testing.T) {
	m := topology.Frontier()
	r := Sweep(For(XMoE, m), model.Large(), m, 256, 1024, 5, false)
	if r.OOM {
		t.Fatal("X-MoE must find a trainable Large config on 256 GPUs (Fig. 9)")
	}
	if r.Plan.EP > 256 || model.Large().NumExperts%r.Plan.EP != 0 {
		t.Fatalf("sweep returned invalid plan %+v", r.Plan)
	}
}

func TestSweepRespectsMaxEP(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	cfg.MaxEP = 16
	r := Sweep(cfg, model.Small(), m, 64, 256, 5, false)
	if !r.OOM && r.Plan.EP > 16 {
		t.Fatalf("sweep ignored MaxEP: chose EP=%d", r.Plan.EP)
	}
}

func TestBackwardCostExceedsForward(t *testing.T) {
	// The iteration model charges backward as 2x compute + 1x comm; a
	// run with activation checkpointing must be strictly slower.
	m := topology.Frontier()
	cfg := For(XMoE, m)
	plan := parallel.Plan{World: 16, TP: 1, EP: 8, Placement: cfg.Placement, ZeROStage: 1}
	spec := RunSpec{Shape: model.Small(), Machine: m, World: 16, Plan: plan,
		MicroBatch: 1, GlobalBatch: 256, Seed: 4}
	plain := SimulateStep(cfg, spec)
	spec.ActCkpt = true
	ck := SimulateStep(cfg, spec)
	if ck.IterSeconds <= plain.IterSeconds {
		t.Fatalf("checkpointing must slow iterations: %.3f vs %.3f",
			ck.IterSeconds, plain.IterSeconds)
	}
}

func TestIsCommStage(t *testing.T) {
	for _, comm := range []string{"a2a_dispatch", "ssmb_allgather", "tp_allreduce", "barrier", "rbd_s1_a2a"} {
		if !isCommStage(comm) {
			t.Errorf("%q should be communication", comm)
		}
	}
	for _, compute := range []string{"gate", "experts", "dense_gemm", "combine"} {
		if isCommStage(compute) {
			t.Errorf("%q should be compute", compute)
		}
	}
}

// TestSimulateStepRBDNativeBackward pins the native RBD backward in the
// step estimator: the X-MoE (RBD) step simulates cleanly through the
// reversed hierarchical stages, and the retired mirrored-flat estimate —
// still reachable behind RunSpec.LegacyBackward for delta reporting —
// prices the step differently, so sweeps can report the correction.
func TestSimulateStepRBDNativeBackward(t *testing.T) {
	m := topology.Frontier()
	cfg := For(XMoE, m)
	spec := RunSpec{
		Shape: model.Small(), Machine: m, World: 16,
		Plan:       parallel.Plan{World: 16, TP: 1, EP: 16, Placement: cfg.Placement, SSMB: cfg.SSMB, ZeROStage: 1},
		MicroBatch: 1, GlobalBatch: 16, Seed: 7, SkipMemCheck: true,
	}
	native := SimulateStep(cfg, spec)
	if native.Err != nil || native.IterSeconds <= 0 {
		t.Fatalf("native RBD step failed: %+v", native)
	}
	spec.LegacyBackward = true
	legacy := SimulateStep(cfg, spec)
	if legacy.Err != nil || legacy.IterSeconds <= 0 {
		t.Fatalf("legacy RBD step failed: %+v", legacy)
	}
	if native.IterSeconds == legacy.IterSeconds {
		t.Fatal("native hierarchical backward priced identically to the legacy mirrored-flat estimate")
	}
	t.Logf("RBD step: native %.3f ms vs legacy mirrored-flat %.3f ms (%+.1f%%)",
		native.IterSeconds*1e3, legacy.IterSeconds*1e3,
		100*(native.IterSeconds-legacy.IterSeconds)/legacy.IterSeconds)
}
