// Package collective provides tensor-level collective operations over the
// simulated runtime: typed wrappers that exchange tensor row segments,
// gradients and parameter shards between ranks, plus the hierarchical
// (node-aware) composites X-MoE's communication design builds on. The
// low-level rendezvous collectives live in internal/simrt; this package
// gives the MoE pipelines and the training harness a convenient, typed
// surface.
package collective

import (
	"fmt"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// AlltoAllRows exchanges row segments of a matrix among the group: rank i
// sends rows [offsets[j], offsets[j]+counts[j]) of x to member j, and
// receives one segment from every member, returned concatenated in member
// order together with the per-source row counts. elemBytes sets the wire
// size per element; x may be nil for a symbolic exchange (counts still
// flow).
func AlltoAllRows(r *simrt.Rank, g *simrt.Group, name string, x *tensor.Tensor,
	counts []int, elemBytes int) (*tensor.Tensor, []int) {

	if len(counts) != g.Size() {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), g.Size()))
	}
	var h int
	if x != nil {
		h = x.Cols()
	}
	send := make([]simrt.Part, g.Size())
	off := 0
	for j, c := range counts {
		part := simrt.Part{Meta: c, Bytes: int64(c*h) * int64(elemBytes)}
		if x == nil {
			// Symbolic: count-only wire size with a nominal row width.
			part.Bytes = int64(c) * int64(elemBytes)
		}
		if x != nil && c > 0 {
			part.Data = x.Data[off*h : (off+c)*h]
		}
		off += c
		send[j] = part
	}
	if x != nil && off != x.Rows() {
		panic(fmt.Sprintf("collective: counts cover %d rows, x has %d", off, x.Rows()))
	}

	recv := r.AlltoAllV(g, name, send)
	recvCounts := make([]int, g.Size())
	total := 0
	for s, p := range recv {
		recvCounts[s] = p.Meta.(int)
		total += recvCounts[s]
	}
	if x == nil {
		return nil, recvCounts
	}
	out := tensor.New(total, h)
	pos := 0
	for _, p := range recv {
		copy(out.Data[pos:pos+len(p.Data)], p.Data)
		pos += len(p.Data)
	}
	return out, recvCounts
}

// AllReduceTensor sums t elementwise across the group in place, charging
// the wire size of one ring all-reduce over t's payload.
func AllReduceTensor(r *simrt.Rank, g *simrt.Group, name string, t *tensor.Tensor, elemBytes int) {
	sum := r.AllReduce(g, name, t.Data, int64(t.Len())*int64(elemBytes))
	copy(t.Data, sum)
}

// AllGatherRows gathers each member's [rows_i, h] tensor into one
// concatenated [sum rows, h] tensor in member order. Symbolic when t is
// nil (bytes must then be supplied).
func AllGatherRows(r *simrt.Rank, g *simrt.Group, name string, t *tensor.Tensor, bytes int64) *tensor.Tensor {
	part := simrt.Part{Bytes: bytes}
	if t != nil {
		part.Data = t.Data
		part.Bytes = int64(t.Len() * 4)
	}
	parts := r.AllGather(g, name, part)
	if t == nil {
		return nil
	}
	h := t.Cols()
	total := 0
	for _, p := range parts {
		total += len(p.Data)
	}
	out := tensor.New(total/h, h)
	pos := 0
	for _, p := range parts {
		copy(out.Data[pos:pos+len(p.Data)], p.Data)
		pos += len(p.Data)
	}
	return out
}

// BroadcastTensor distributes the root member's tensor to all members,
// returning a copy on every rank.
func BroadcastTensor(r *simrt.Rank, g *simrt.Group, name string, rootIdx int, t *tensor.Tensor, elemBytes int) *tensor.Tensor {
	part := simrt.Part{Bytes: int64(t.Len()) * int64(elemBytes), Data: t.Data, Meta: t.Shape()}
	got := r.Broadcast(g, name, rootIdx, part)
	shape := got.Meta.([]int)
	out := tensor.New(shape...)
	copy(out.Data, got.Data)
	return out
}

// HierarchicalAllReduce sums t across the group using the node-aware
// two-level schedule (intra-node reduce, inter-node exchange among node
// leaders, intra-node broadcast). nodeGroups must partition the group by
// machine node and leaderGroup must contain exactly one member per node;
// a rank passes its own nodeGroup and, if it is a leader, the
// leaderGroup (nil otherwise). The numeric result matches a flat
// all-reduce; the modeled cost reflects the hierarchy.
func HierarchicalAllReduce(r *simrt.Rank, nodeGroup, leaderGroup *simrt.Group,
	t *tensor.Tensor, elemBytes int) {

	bytes := int64(t.Len()) * int64(elemBytes)
	// Intra-node reduce: everyone contributes, the sum lands everywhere
	// (the leader carries it upward).
	nodeSum := r.AllReduce(nodeGroup, "hier_intra_reduce", t.Data, bytes)
	copy(t.Data, nodeSum)
	// Inter-node exchange among leaders only.
	if leaderGroup != nil {
		interSum := r.AllReduce(leaderGroup, "hier_inter_reduce", t.Data, bytes)
		copy(t.Data, interSum)
	}
	// Intra-node broadcast of the global sum from the leader (member 0).
	out := r.Broadcast(nodeGroup, "hier_intra_bcast", 0,
		simrt.Part{Data: t.Data, Bytes: bytes})
	copy(t.Data, out.Data)
}

// NodePartition builds the per-node subgroups and the leader group for a
// communicator, for use with HierarchicalAllReduce. Construct once and
// share across the SPMD body.
func NodePartition(c *simrt.Cluster, g *simrt.Group) (nodeGroups map[int]*simrt.Group, leaders *simrt.Group) {
	byNode := map[int][]int{}
	for _, rank := range g.Ranks() {
		node := c.Machine.NodeOf(rank)
		byNode[node] = append(byNode[node], rank)
	}
	nodeGroups = make(map[int]*simrt.Group, len(byNode))
	var leaderRanks []int
	for node, ranks := range byNode {
		nodeGroups[node] = c.NewGroup(ranks)
		leaderRanks = append(leaderRanks, ranks[0])
	}
	return nodeGroups, c.NewGroup(leaderRanks)
}
