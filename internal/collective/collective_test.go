package collective

import (
	"fmt"
	"testing"

	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

func testCluster(n int) *simrt.Cluster {
	c := simrt.NewCluster(topology.Frontier(), n, 17)
	c.Net.DisableCongestion = true
	return c
}

func TestAlltoAllRowsRoundTrip(t *testing.T) {
	const world, h = 4, 3
	c := testCluster(world)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		// Rank i sends j+1 rows to member j, each row filled with
		// 100*i + j.
		counts := make([]int, world)
		total := 0
		for j := range counts {
			counts[j] = j + 1
			total += counts[j]
		}
		x := tensor.New(total, h)
		off := 0
		for j, cnt := range counts {
			for rr := 0; rr < cnt; rr++ {
				row := x.Row(off)
				for k := range row {
					row[k] = float32(100*r.ID + j)
				}
				off++
			}
		}
		out, recvCounts := AlltoAllRows(r, g, "a2a", x, counts, 2)
		// Member me receives me+1 rows from each source, stamped
		// 100*src + me.
		pos := 0
		me := g.IndexOf(r.ID)
		for src := 0; src < world; src++ {
			if recvCounts[src] != me+1 {
				return fmt.Errorf("rank %d: recv %d rows from %d, want %d",
					r.ID, recvCounts[src], src, me+1)
			}
			for rr := 0; rr < recvCounts[src]; rr++ {
				want := float32(100*src + me)
				if out.At(pos, 0) != want {
					return fmt.Errorf("rank %d row %d = %f, want %f",
						r.ID, pos, out.At(pos, 0), want)
				}
				pos++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllRowsSymbolic(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		out, counts := AlltoAllRows(r, g, "a2a", nil, []int{1, 2, 3, 4}, 2)
		if out != nil {
			return fmt.Errorf("symbolic exchange must not build tensors")
		}
		me := g.IndexOf(r.ID)
		for src, got := range counts {
			if got != me+1 {
				return fmt.Errorf("count from %d = %d, want %d", src, got, me+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllRowsValidation(t *testing.T) {
	c := testCluster(2)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		defer func() { recover() }()
		AlltoAllRows(r, g, "a2a", tensor.New(2, 2), []int{1}, 2) // wrong arity
		return fmt.Errorf("expected panic")
	})
	if err != nil {
		t.Fatal("arity mismatch must panic before any collective")
	}
}

func TestAllReduceTensor(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		x := tensor.FromSlice([]float32{float32(r.ID), 1}, 2)
		AllReduceTensor(r, g, "ar", x, 2)
		if x.Data[0] != 6 || x.Data[1] != 4 {
			return fmt.Errorf("allreduce got %v", x.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherRows(t *testing.T) {
	const h = 2
	c := testCluster(3)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		mine := tensor.New(r.ID+1, h) // rank i contributes i+1 rows
		mine.Fill(float32(r.ID))
		full := AllGatherRows(r, g, "ag", mine, 0)
		if full.Rows() != 1+2+3 {
			return fmt.Errorf("gathered %d rows", full.Rows())
		}
		// Rows appear in member order: 1 row of 0s, 2 of 1s, 3 of 2s.
		wantVals := []float32{0, 1, 1, 2, 2, 2}
		for i, wv := range wantVals {
			if full.At(i, 0) != wv {
				return fmt.Errorf("row %d = %f, want %f", i, full.At(i, 0), wv)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastTensor(t *testing.T) {
	c := testCluster(4)
	g := c.WorldGroup()
	err := c.Run(func(r *simrt.Rank) error {
		mine := tensor.New(2, 2)
		mine.Fill(float32(r.ID))
		got := BroadcastTensor(r, g, "bc", 1, mine, 2)
		if got.At(0, 0) != 1 || got.Rows() != 2 {
			return fmt.Errorf("broadcast got %v", got.Data)
		}
		// The result must be a copy, not an alias of the root's buffer.
		got.Data[0] = 99
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalAllReduceMatchesFlat(t *testing.T) {
	const world = 16 // 2 Frontier nodes
	c := testCluster(world)
	g := c.WorldGroup()
	nodeGroups, leaders := NodePartition(c, g)
	err := c.Run(func(r *simrt.Rank) error {
		x := tensor.FromSlice([]float32{float32(r.ID), 2}, 2)
		node := c.Machine.NodeOf(r.ID)
		var lg *simrt.Group
		if leaders.Contains(r.ID) {
			lg = leaders
		}
		HierarchicalAllReduce(r, nodeGroups[node], lg, x, 2)
		// Sum of 0..15 = 120; second element 2*16 = 32.
		if x.Data[0] != 120 || x.Data[1] != 32 {
			return fmt.Errorf("rank %d: hierarchical sum %v", r.ID, x.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodePartitionStructure(t *testing.T) {
	c := testCluster(24) // 3 nodes
	g := c.WorldGroup()
	nodeGroups, leaders := NodePartition(c, g)
	if len(nodeGroups) != 3 || leaders.Size() != 3 {
		t.Fatalf("partition: %d node groups, %d leaders", len(nodeGroups), leaders.Size())
	}
	for node, ng := range nodeGroups {
		if ng.Size() != 8 {
			t.Fatalf("node %d group size %d", node, ng.Size())
		}
		for _, rank := range ng.Ranks() {
			if c.Machine.NodeOf(rank) != node {
				t.Fatal("rank assigned to wrong node group")
			}
		}
	}
}

func TestHierarchicalCheaperThanFlatOverNodes(t *testing.T) {
	// The modeled cost of the hierarchical schedule must not exceed a
	// flat all-reduce across nodes for large payloads (this is why
	// NCCL/RCCL use tree/hierarchical algorithms on fat-node machines).
	const world = 32
	const payloadLen = 1 << 20
	flat := testCluster(world)
	hier := testCluster(world)

	gFlat := flat.WorldGroup()
	flatRanks, err := flat.RunCollect(func(r *simrt.Rank) error {
		// Per-rank payload: the collectives write the reduced sum back
		// into x, so ranks must not share a buffer.
		x := tensor.New(payloadLen)
		AllReduceTensor(r, gFlat, "ar", x, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gHier := hier.WorldGroup()
	nodeGroups, leaders := NodePartition(hier, gHier)
	hierRanks, err := hier.RunCollect(func(r *simrt.Rank) error {
		x := tensor.New(payloadLen)
		var lg *simrt.Group
		if leaders.Contains(r.ID) {
			lg = leaders
		}
		HierarchicalAllReduce(r, nodeGroups[hier.Machine.NodeOf(r.ID)], lg, x, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	flatT := simrt.MaxClock(flatRanks)
	hierT := simrt.MaxClock(hierRanks)
	if hierT > 3*flatT {
		t.Fatalf("hierarchical allreduce (%.4fs) wildly slower than flat (%.4fs)", hierT, flatT)
	}
}
