package perfmodel

import (
	"testing"
	"testing/quick"

	"xmoe/internal/topology"
)

func mi250x() *Model { return ForDevice(topology.Frontier().Device) }
func a100() *Model   { return ForDevice(topology.DGXA100().Device) }

func TestForDeviceSelectsProfiles(t *testing.T) {
	if mi250x().BaseGEMMEff >= a100().BaseGEMMEff {
		t.Fatal("ROCm GEMM efficiency should be below CUDA in the model")
	}
	unknown := ForDevice(topology.DeviceProfile{Name: "mystery", PeakFLOPs: 1e12, MemBytes: 1 << 30, HBMBandwidth: 1e12})
	if unknown.BaseGEMMEff != mi250x().BaseGEMMEff {
		t.Fatal("unknown devices should fall back to MI250X constants")
	}
}

func TestGEMMGrowsWithShape(t *testing.T) {
	m := mi250x()
	small := m.GEMM(128, 512, 512)
	big := m.GEMM(4096, 512, 512)
	if big <= small {
		t.Fatal("bigger GEMM must take longer")
	}
	if m.GEMM(0, 512, 512) != m.GEMMLaunch {
		t.Fatal("empty GEMM should cost exactly one launch")
	}
}

func TestSkinnyGEMMsAreInefficient(t *testing.T) {
	m := mi250x()
	// Same FLOPs, different shapes: [64,4096]x[4096,4096] vs
	// [1024,1024]x[1024,1024] (both 2^31 FLOPs). The skinny one must
	// achieve lower throughput (longer time for equal FLOPs).
	skinny := m.GEMM(64, 4096, 4096)
	square := m.GEMM(1024, 1024, 1024)
	if skinny <= square {
		t.Fatalf("skinny GEMM (%.6fs) should be slower than square (%.6fs) at equal FLOPs", skinny, square)
	}
}

func TestSequentialGEMMChargesPerExpertLaunch(t *testing.T) {
	m := mi250x()
	// 64 experts with tiny token counts: launch overhead dominates, so
	// sequential GEMM must cost at least 64 launches.
	rows := make([]int, 64)
	for i := range rows {
		rows[i] = 4
	}
	tSeq := m.SequentialGEMM(rows, 2048, 1408)
	if tSeq < 64*m.GEMMLaunch {
		t.Fatalf("sequential GEMM %.6fs under the launch floor %.6fs", tSeq, 64*m.GEMMLaunch)
	}
	// Empty experts still pay their launch (the kernel is still issued).
	if m.SequentialGEMM([]int{0, 0}, 128, 128) < 2*m.GEMMLaunch {
		t.Fatal("empty segments should pay launch overhead")
	}
}

func TestPaddedGEMMWastesPaddingFLOPs(t *testing.T) {
	m := mi250x()
	// 64 experts, capacity 256, but only 128 real tokens per expert: the
	// padded batched GEMM computes all 256 rows; the sequential GEMM over
	// the real 128-row segments does half the FLOPs. With large enough
	// segments (launch overhead amortised) sequential must win.
	rows := make([]int, 64)
	for i := range rows {
		rows[i] = 128
	}
	padded := m.BatchedPaddedGEMM(64, 256, 4096, 4096)
	seq := m.SequentialGEMM(rows, 4096, 4096)
	if seq >= padded {
		t.Fatalf("sequential GEMM on half the rows (%.4fs) should beat padded (%.4fs)", seq, padded)
	}
}

func TestMaskEinsumIsExpensive(t *testing.T) {
	m := mi250x()
	// The conventional dispatch einsum at DeepSeek-ish sizes must dwarf
	// the Triton gather over the same logical tokens (the 35.7x buffer
	// dispatch speedup in §5.4.1).
	s, e, c, h := 2048, 64, 256, 2048
	einsum := m.MaskEinsum(s, e, c, h)
	gather := m.MemBound(ClassTriton, int64(2*s*6*h*2)) // read+write k*S tokens at 2B
	if einsum < 10*gather {
		t.Fatalf("mask einsum (%.6fs) should be >>10x Triton gather (%.6fs)", einsum, gather)
	}
}

func TestMemBoundClassesOrdering(t *testing.T) {
	m := mi250x()
	const b = 256 << 20
	triton := m.MemBound(ClassTriton, b)
	vendor := m.MemBound(ClassVendor, b)
	fallback := m.MemBound(ClassFallback, b)
	if !(triton < vendor && vendor < fallback) {
		t.Fatalf("kernel class ordering violated: triton %.6f vendor %.6f fallback %.6f",
			triton, vendor, fallback)
	}
}

func TestMemBoundN(t *testing.T) {
	m := mi250x()
	one := m.MemBoundN(ClassFallback, 1, 1<<20)
	many := m.MemBoundN(ClassFallback, 20, 1<<20)
	if many <= one {
		t.Fatal("more launches must cost more")
	}
	if m.MemBoundN(ClassTriton, 0, 1<<20) != 0 {
		t.Fatal("zero launches are free")
	}
}

func TestQuickGEMMMonotone(t *testing.T) {
	m := mi250x()
	f := func(a, b, c uint8) bool {
		mm, kk, nn := int(a)+1, int(b)+1, int(c)+1
		return m.GEMM(mm+1, kk, nn) >= m.GEMM(mm, kk, nn) &&
			m.GEMM(mm, kk+1, nn) >= m.GEMM(mm, kk, nn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSequentialGEMMAdditive(t *testing.T) {
	m := mi250x()
	f := func(rows []uint8) bool {
		if len(rows) == 0 {
			return true
		}
		rs := make([]int, len(rows))
		var sum float64
		for i, r := range rows {
			rs[i] = int(r)
			sum += m.GEMM(int(r), 256, 256)
		}
		got := m.SequentialGEMM(rs, 256, 256)
		diff := got - sum
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-12*float64(len(rows)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
