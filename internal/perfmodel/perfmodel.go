// Package perfmodel converts the logical operations of the MoE training
// pipeline (GEMMs, gather/scatter kernels, dense fallback ops) into
// modeled execution times on a device profile. It encodes the performance
// asymmetries the paper measures on AMD MI250X GPUs:
//
//   - Dense GEMMs run at a device-dependent fraction of peak, degraded for
//     small or skinny shapes (fine-grained experts have small H_FFN).
//   - "Triton-class" kernels (the paper's portable gather/scatter, §4.1.2)
//     are memory-bandwidth bound with coalesced access.
//   - "Fallback-class" ops (PyTorch-level einsum/one-hot/cumsum pipelines
//     that conventional frameworks use for gating and dispatch) achieve a
//     small fraction of memory bandwidth and pay large per-op overheads —
//     this is why Tutel/DeepSpeed-MoE observe <10% of peak on MI250X
//     (§1) and why X-MoE's gating is 5.7x faster (§5.4.1).
//
// All constants live here and are shared by every experiment; none are
// tuned per figure.
package perfmodel

import (
	"sync"

	"xmoe/internal/topology"
)

// KernelClass labels the implementation quality of a non-GEMM operation.
type KernelClass int

const (
	// ClassTriton is a portable tiled kernel with coalesced access
	// (X-MoE's gather/scatter and PFT construction kernels).
	ClassTriton KernelClass = iota
	// ClassFallback is a framework-level composite op (einsum over
	// dispatch masks, one-hot + cumsum chains) with poor locality.
	ClassFallback
	// ClassVendor is a vendor-tuned dense primitive (batched matmul on
	// NVIDIA; noticeably weaker on ROCm).
	ClassVendor
)

// Model holds the calibration constants for one device.
type Model struct {
	// Dev is the device being modeled.
	Dev topology.DeviceProfile
	// BaseGEMMEff is the fraction of peak FLOPs a large, well-shaped
	// GEMM achieves.
	BaseGEMMEff float64
	// EinsumEff is the fraction of peak achieved by mask-einsum dispatch
	// (batched matmul against a sparse one-hot mask).
	EinsumEff float64
	// BWFrac maps kernel classes to the achieved fraction of HBM
	// bandwidth.
	BWFrac map[KernelClass]float64
	// LaunchOverhead maps kernel classes to fixed per-launch host-side
	// cost in seconds.
	LaunchOverhead map[KernelClass]float64
	// GEMMLaunch is the per-GEMM launch overhead in seconds; the
	// sequential-GEMM expert computation pays it once per local expert.
	GEMMLaunch float64

	// gemmCache memoizes GEMM times by shape. The symbolic sweeps
	// evaluate the same few hundred shapes millions of times (every
	// layer of every rank of every configuration), so the lookup
	// replaces repeated float math on the hottest modeling path.
	gemmMu    sync.RWMutex
	gemmCache map[gemmKey]float64
}

type gemmKey struct{ m, k, n int }

// models memoizes ForDevice so all clusters simulating the same device
// share one Model — and therefore one warm GEMM cache — across the many
// SimulateStep calls of a sweep.
var (
	modelsMu sync.Mutex
	models   = map[topology.DeviceProfile]*Model{}
)

// ForDevice returns the calibrated model for a known device profile.
// Unknown devices fall back to the MI250X constants. The returned model
// is shared and safe for concurrent use.
func ForDevice(dev topology.DeviceProfile) *Model {
	modelsMu.Lock()
	defer modelsMu.Unlock()
	if m, ok := models[dev]; ok {
		return m
	}
	m := newModel(dev)
	m.gemmCache = map[gemmKey]float64{}
	models[dev] = m
	return m
}

func newModel(dev topology.DeviceProfile) *Model {
	switch dev.Name {
	case "A100-40GB":
		return &Model{
			Dev:         dev,
			BaseGEMMEff: 0.60,
			EinsumEff:   0.32,
			// On NVIDIA the vendor-tuned kernels lead; portable Triton
			// kernels trail slightly (the paper's "modest throughput
			// trade-off" on A100, §5.5).
			BWFrac: map[KernelClass]float64{
				ClassTriton:   0.62,
				ClassFallback: 0.07,
				ClassVendor:   0.70,
			},
			LaunchOverhead: map[KernelClass]float64{
				ClassTriton:   4e-6,
				ClassFallback: 30e-6,
				ClassVendor:   6e-6,
			},
			GEMMLaunch: 5e-6,
		}
	default: // MI250X-GCD and anything unrecognised
		return &Model{
			Dev:         dev,
			BaseGEMMEff: 0.45,
			EinsumEff:   0.25,
			BWFrac: map[KernelClass]float64{
				ClassTriton:   0.60,
				ClassFallback: 0.05,
				ClassVendor:   0.30,
			},
			LaunchOverhead: map[KernelClass]float64{
				ClassTriton:   6e-6,
				ClassFallback: 40e-6,
				ClassVendor:   10e-6,
			},
			GEMMLaunch: 8e-6,
		}
	}
}

// shapeEff returns the utilisation factor of a GEMM with the given
// dimensions: throughput saturates as each dimension grows past the
// hardware tile granularity, so skinny fine-grained-expert GEMMs
// underutilise the device.
func shapeEff(m, k, n int) float64 {
	f := func(d, half int) float64 { return float64(d) / float64(d+half) }
	return f(m, 96) * f(k, 48) * f(n, 48)
}

// GEMM returns the modeled time of a single [m,k]x[k,n] matmul.
func (md *Model) GEMM(m, k, n int) float64 {
	if m == 0 || k == 0 || n == 0 {
		return md.GEMMLaunch
	}
	if md.gemmCache != nil {
		key := gemmKey{m, k, n}
		md.gemmMu.RLock()
		t, ok := md.gemmCache[key]
		md.gemmMu.RUnlock()
		if ok {
			return t
		}
		t = md.gemmTime(m, k, n)
		md.gemmMu.Lock()
		if len(md.gemmCache) >= 1<<18 {
			// Shape diversity is finite in practice; reset rather than
			// grow without bound if a workload defeats that assumption.
			md.gemmCache = make(map[gemmKey]float64, 1024)
		}
		md.gemmCache[key] = t
		md.gemmMu.Unlock()
		return t
	}
	return md.gemmTime(m, k, n)
}

func (md *Model) gemmTime(m, k, n int) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	eff := md.BaseGEMMEff * shapeEff(m, k, n)
	return md.GEMMLaunch + flops/(md.Dev.PeakFLOPs*eff)
}

// SequentialGEMM returns the time of X-MoE's sequential expert GEMM: one
// launch per local expert over uneven row segments (rows[i] tokens for
// expert i), each multiplying [rows[i],k]x[k,n].
func (md *Model) SequentialGEMM(rows []int, k, n int) float64 {
	var t float64
	for _, m := range rows {
		t += md.GEMM(m, k, n)
	}
	return t
}

// BatchedPaddedGEMM returns the time of the baseline's padded expert
// batched GEMM: e experts, each with a fixed capacity-c buffer, computing
// [c,k]x[k,n] per expert as one batched launch. Padding rows burn real
// FLOPs.
func (md *Model) BatchedPaddedGEMM(e, c, k, n int) float64 {
	if e == 0 || c == 0 {
		return md.GEMMLaunch
	}
	flops := 2 * float64(e) * float64(c) * float64(k) * float64(n)
	// Batched execution amortises launches and uses good tiling across
	// the batch; efficiency follows the per-expert shape.
	eff := md.BaseGEMMEff * shapeEff(c, k, n)
	return md.GEMMLaunch + flops/(md.Dev.PeakFLOPs*eff)
}

// MaskEinsum returns the time of the conventional dispatch/combine einsum
// ("SEC,SH->ECH"): a dense matmul of the [E*C, S] one-hot mask against the
// [S, H] token buffer (2*S*E*C*H FLOPs almost entirely wasted on zeros).
func (md *Model) MaskEinsum(s, e, c, h int) float64 {
	flops := 2 * float64(s) * float64(e) * float64(c) * float64(h)
	return md.LaunchOverhead[ClassVendor] + flops/(md.Dev.PeakFLOPs*md.EinsumEff)
}

// MemBound returns the time of a bandwidth-bound kernel of the given class
// moving the given number of bytes (read + write combined).
func (md *Model) MemBound(class KernelClass, bytes int64) float64 {
	bw := md.Dev.HBMBandwidth * md.BWFrac[class]
	return md.LaunchOverhead[class] + float64(bytes)/bw
}

// MemBoundN returns the time of n back-to-back launches of a
// bandwidth-bound kernel moving bytes in total. Fallback-class pipelines
// issue many small ops, so n matters.
func (md *Model) MemBoundN(class KernelClass, n int, bytes int64) float64 {
	if n <= 0 {
		return 0
	}
	bw := md.Dev.HBMBandwidth * md.BWFrac[class]
	return float64(n)*md.LaunchOverhead[class] + float64(bytes)/bw
}
