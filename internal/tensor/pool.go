package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed free list of tensor buffers. Hot paths that
// repeatedly allocate same-sized intermediates (the MoE dispatch/combine
// buffers, expert FFN activations, backward scratch) Get tensors from a
// pool and Put them back when done, so steady-state execution stops
// pressuring the garbage collector — the discipline FastMoE and Megatron
// Core MoE use for their reusable dispatch/combine workspaces.
//
// Buffers are bucketed by ceil-power-of-two element count; Get returns a
// zero-filled tensor, exactly like New, so pooled and allocate-fresh paths
// are bit-identical. A nil *Pool is valid and degrades to plain New
// (allocate-fresh), which keeps pooling strictly optional for callers and
// for the determinism regression tests.
//
// A Pool is safe for concurrent use, but the intended pattern is one pool
// per simulated rank (per-rank arenas) so Get/Put never contend.
type Pool struct {
	mu sync.Mutex
	// free[b] holds buffers with capacity exactly 1<<b elements.
	free [poolBuckets][][]float32
}

// poolBuckets bounds bucket sizes at 1<<(poolBuckets-1) elements (512 MiB
// of float32 at 27); larger requests bypass the pool.
const poolBuckets = 28

// bucketOf returns the bucket index for n elements, or -1 when n is out of
// pooling range.
func bucketOf(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b >= poolBuckets {
		return -1
	}
	return b
}

// Get returns a zero-filled tensor of the given shape, reusing a pooled
// buffer when one is available. The result is indistinguishable from
// New(shape...).
func (p *Pool) Get(shape ...int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return New(shape...) // New panics with the standard message
		}
		n *= d
	}
	b := bucketOf(n)
	if b < 0 {
		return New(shape...)
	}
	p.mu.Lock()
	var buf []float32
	if l := len(p.free[b]); l > 0 {
		buf = p.free[b][l-1]
		p.free[b][l-1] = nil
		p.free[b] = p.free[b][:l-1]
	}
	p.mu.Unlock()
	if buf == nil {
		buf = make([]float32, 1<<b)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: buf, shape: s}
}

// Put returns t's buffer to the pool. The caller must not use t (or any
// view sharing its buffer, e.g. from Reshape or FromSlice) afterwards.
// Tensors whose buffers did not originate from a pool are accepted as long
// as their capacity is an exact bucket size; others are dropped for the
// garbage collector. Put(nil tensor) and Put on a nil pool are no-ops.
func (p *Pool) Put(t *Tensor) {
	if p == nil || t == nil || t.Data == nil {
		return
	}
	c := cap(t.Data)
	b := bucketOf(c)
	if b < 0 || 1<<b != c {
		return // not a bucket-sized buffer; let the GC have it
	}
	buf := t.Data[:0]
	t.Data = nil
	p.mu.Lock()
	p.free[b] = append(p.free[b], buf[:c])
	p.mu.Unlock()
}

// PutAll returns every non-nil tensor to the pool.
func (p *Pool) PutAll(ts ...*Tensor) {
	for _, t := range ts {
		p.Put(t)
	}
}
