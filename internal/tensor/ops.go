package tensor

import (
	"math"
	"sort"
)

// SoftmaxRows applies a numerically stable softmax to each row of a
// matrix-shaped tensor in place.
func SoftmaxRows(t *Tensor) {
	rows, cols := t.Rows(), t.Cols()
	ParallelFor(rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j, v := range row {
				e := float32(math.Exp(float64(v - maxv)))
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1.0 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	})
}

// LogSoftmaxRows applies log-softmax to each row in place and returns t.
func LogSoftmaxRows(t *Tensor) *Tensor {
	rows, cols := t.Rows(), t.Cols()
	ParallelFor(rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - maxv))
			}
			lse := maxv + float32(math.Log(sum))
			for j := range row {
				row[j] -= lse
			}
		}
	})
	return t
}

// TopK returns, for each row of a matrix-shaped tensor, the indices and
// values of its k largest entries in descending value order. Ties are
// broken by lower index first, matching the deterministic behaviour the
// routing tests rely on.
func TopK(t *Tensor, k int) (indices [][]int, values [][]float32) {
	rows, cols := t.Rows(), t.Cols()
	if k > cols {
		k = cols
	}
	indices = make([][]int, rows)
	values = make([][]float32, rows)
	ParallelFor(rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			idx := make([]int, cols)
			for j := range idx {
				idx[j] = j
			}
			sort.SliceStable(idx, func(a, b int) bool {
				if row[idx[a]] != row[idx[b]] {
					return row[idx[a]] > row[idx[b]]
				}
				return idx[a] < idx[b]
			})
			ind := make([]int, k)
			val := make([]float32, k)
			for j := 0; j < k; j++ {
				ind[j] = idx[j]
				val[j] = row[idx[j]]
			}
			indices[i] = ind
			values[i] = val
		}
	})
	return indices, values
}

// ArgsortDescending returns the permutation that sorts vals in descending
// order, stable with respect to the original index order.
func ArgsortDescending(vals []float32) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// Histogram counts occurrences of each value in [0, bins) within ids.
// Values outside the range are ignored.
func Histogram(ids []int, bins int) []int {
	h := make([]int, bins)
	for _, v := range ids {
		if v >= 0 && v < bins {
			h[v]++
		}
	}
	return h
}

// CumSum returns the inclusive prefix sums of xs.
func CumSum(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, v := range xs {
		run += v
		out[i] = run
	}
	return out
}

// ExclusiveCumSum returns the exclusive prefix sums of xs: out[i] is the
// sum of xs[0:i]. This gives segment start offsets from segment lengths.
func ExclusiveCumSum(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, v := range xs {
		out[i] = run
		run += v
	}
	return out
}
