package tensor

import (
	"math"
	"sort"
)

// SoftmaxRows applies a numerically stable softmax to each row of a
// matrix-shaped tensor in place.
func SoftmaxRows(t *Tensor) {
	rows, cols := t.Rows(), t.Cols()
	ParallelFor(rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j, v := range row {
				e := float32(math.Exp(float64(v - maxv)))
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1.0 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	})
}

// LogSoftmaxRows applies log-softmax to each row in place and returns t.
func LogSoftmaxRows(t *Tensor) *Tensor {
	rows, cols := t.Rows(), t.Cols()
	ParallelFor(rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - maxv))
			}
			lse := maxv + float32(math.Log(sum))
			for j := range row {
				row[j] -= lse
			}
		}
	})
	return t
}

// TopK returns, for each row of a matrix-shaped tensor, the indices and
// values of its k largest entries in descending value order. Ties are
// broken by lower index first, matching the deterministic behaviour the
// routing tests rely on.
//
// Per-row results are views into two flat backing arrays (k-selection by
// repeated scan, no per-row sort or allocation), so a call costs four
// allocations regardless of the row count.
func TopK(t *Tensor, k int) (indices [][]int, values [][]float32) {
	rows, cols := t.Rows(), t.Cols()
	if k > cols {
		k = cols
	}
	indices = make([][]int, rows)
	values = make([][]float32, rows)
	indFlat := make([]int, rows*k)
	valFlat := make([]float32, rows*k)
	ParallelFor(rows, 16, func(lo, hi int) {
		taken := make([]bool, cols)
		for i := lo; i < hi; i++ {
			row := t.Data[i*cols : (i+1)*cols]
			ind := indFlat[i*k : (i+1)*k]
			val := valFlat[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				best := -1
				for c := 0; c < cols; c++ {
					// Strict > keeps the lowest index on ties.
					if !taken[c] && (best < 0 || row[c] > row[best]) {
						best = c
					}
				}
				taken[best] = true
				ind[j] = best
				val[j] = row[best]
			}
			for j := 0; j < k; j++ {
				taken[ind[j]] = false
			}
			indices[i] = ind
			values[i] = val
		}
	})
	return indices, values
}

// ArgsortDescending returns the permutation that sorts vals in descending
// order, stable with respect to the original index order.
func ArgsortDescending(vals []float32) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// Histogram counts occurrences of each value in [0, bins) within ids.
// Values outside the range are ignored.
func Histogram(ids []int, bins int) []int {
	h := make([]int, bins)
	for _, v := range ids {
		if v >= 0 && v < bins {
			h[v]++
		}
	}
	return h
}

// CumSum returns the inclusive prefix sums of xs.
func CumSum(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, v := range xs {
		run += v
		out[i] = run
	}
	return out
}

// ExclusiveCumSum returns the exclusive prefix sums of xs: out[i] is the
// sum of xs[0:i]. This gives segment start offsets from segment lengths.
func ExclusiveCumSum(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, v := range xs {
		out[i] = run
		run += v
	}
	return out
}
