package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func TestNewShapeAndLen(t *testing.T) {
	x := New(3, 4, 5)
	if x.Len() != 60 {
		t.Fatalf("Len = %d, want 60", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 3 || x.Dim(1) != 4 || x.Dim(2) != 5 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	if x.Rows() != 3 || x.Cols() != 20 {
		t.Fatalf("Rows/Cols = %d/%d, want 3/20", x.Rows(), x.Cols())
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched slice length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRow(t *testing.T) {
	x := New(2, 3)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %f, want 7", x.At(1, 2))
	}
	row := x.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %f, want 7", row[2])
	}
	row[0] = 3
	if x.At(1, 0) != 3 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share backing storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	x.Add(y)
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if x.Data[i] != w {
			t.Fatalf("Add: got %v", x.Data)
		}
	}
	x.Sub(y)
	x.Scale(2)
	for i, w := range []float32{2, 4, 6, 8} {
		if x.Data[i] != w {
			t.Fatalf("Scale: got %v", x.Data)
		}
	}
	x.AddScaled(0.5, y)
	for i, w := range []float32{7, 14, 21, 28} {
		if x.Data[i] != w {
			t.Fatalf("AddScaled: got %v", x.Data)
		}
	}
	x.Mul(y)
	if x.Data[3] != 28*40 {
		t.Fatalf("Mul: got %v", x.Data)
	}
}

func TestSumMaxAbs(t *testing.T) {
	x := FromSlice([]float32{-5, 2, 3}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %f, want 0", x.Sum())
	}
	if x.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %f, want 5", x.MaxAbs())
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 32, 8}, {65, 67, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-3) {
			t.Fatalf("MatMul(%dx%dx%d) differs from naive", m, k, n)
		}
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	rng := NewRNG(2)
	m, k, n := 9, 7, 11
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	// MatMulT: A [m,k] x (Bt [n,k])ᵀ should equal A x B.
	bt := New(n, k)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if !MatMulT(a, bt).Equal(naiveMatMul(a, b), 1e-3) {
		t.Fatal("MatMulT differs from A x B")
	}
	// TMatMul: (At [k,m])ᵀ x B should equal A x B.
	at := New(k, m)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if !TMatMul(at, b).Equal(naiveMatMul(a, b), 1e-3) {
		t.Fatal("TMatMul differs from A x B")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	SoftmaxRows(x)
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			v := x.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("softmax out of range or NaN: %f", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %f", i, s)
		}
	}
	if !(x.At(0, 2) > x.At(0, 1) && x.At(0, 1) > x.At(0, 0)) {
		t.Fatal("softmax must preserve ordering")
	}
}

func TestLogSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 1, 3)
	LogSoftmaxRows(x)
	var s float64
	for j := 0; j < 3; j++ {
		s += math.Exp(float64(x.At(0, j)))
	}
	if math.Abs(s-1) > 1e-5 {
		t.Fatalf("exp(logsoftmax) sums to %f", s)
	}
}

func TestTopK(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.9, 0.5, 0.3}, 1, 4)
	idx, vals := TopK(x, 2)
	if idx[0][0] != 1 || idx[0][1] != 2 {
		t.Fatalf("TopK indices = %v, want [1 2]", idx[0])
	}
	if vals[0][0] != 0.9 || vals[0][1] != 0.5 {
		t.Fatalf("TopK values = %v", vals[0])
	}
}

func TestTopKTieBreaksByIndex(t *testing.T) {
	x := FromSlice([]float32{0.5, 0.5, 0.5}, 1, 3)
	idx, _ := TopK(x, 2)
	if idx[0][0] != 0 || idx[0][1] != 1 {
		t.Fatalf("tie-break order = %v, want [0 1]", idx[0])
	}
}

func TestTopKClampsK(t *testing.T) {
	x := FromSlice([]float32{3, 1}, 1, 2)
	idx, _ := TopK(x, 5)
	if len(idx[0]) != 2 {
		t.Fatalf("k should clamp to cols, got %d", len(idx[0]))
	}
}

func TestHistogramAndCumSum(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 3, 3, 3, -1, 9}, 4)
	want := []int{1, 2, 0, 3}
	for i, w := range want {
		if h[i] != w {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
	cs := CumSum(h)
	if cs[3] != 6 {
		t.Fatalf("CumSum = %v", cs)
	}
	ecs := ExclusiveCumSum(h)
	if ecs[0] != 0 || ecs[1] != 1 || ecs[3] != 3 {
		t.Fatalf("ExclusiveCumSum = %v", ecs)
	}
}

func TestArgsortDescending(t *testing.T) {
	got := ArgsortDescending([]float32{0.2, 0.9, 0.5})
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("ArgsortDescending = %v", got)
	}
	// Stability on ties.
	got = ArgsortDescending([]float32{1, 1, 1})
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ArgsortDescending not stable: %v", got)
	}
}

func TestActivationsForward(t *testing.T) {
	x := FromSlice([]float32{-2, 0, 2}, 3)
	r := x.Clone()
	ReLU(r)
	if r.Data[0] != 0 || r.Data[2] != 2 {
		t.Fatalf("ReLU = %v", r.Data)
	}
	g := x.Clone()
	GeLU(g)
	if g.Data[1] != 0 || g.Data[2] < 1.9 || g.Data[0] > 0 {
		t.Fatalf("GeLU = %v", g.Data)
	}
	s := x.Clone()
	SiLU(s)
	if math.Abs(float64(s.Data[2])-2/(1+math.Exp(-2))*1) > 1e-5 {
		t.Fatalf("SiLU = %v", s.Data)
	}
}

// numericalGrad estimates d f / d x[i] by central differences.
func numericalGrad(f func(*Tensor) float64, x *Tensor, i int) float64 {
	const eps = 1e-3
	orig := x.Data[i]
	x.Data[i] = orig + eps
	up := f(x)
	x.Data[i] = orig - eps
	down := f(x)
	x.Data[i] = orig
	return (up - down) / (2 * eps)
}

func checkActivationGrad(t *testing.T, name string, fwd func(*Tensor), bwd func(dy, x *Tensor) *Tensor) {
	t.Helper()
	rng := NewRNG(7)
	x := Randn(rng, 1, 5)
	loss := func(in *Tensor) float64 {
		y := in.Clone()
		fwd(y)
		return y.Sum()
	}
	dy := New(5)
	dy.Fill(1)
	dx := bwd(dy, x)
	for i := 0; i < x.Len(); i++ {
		num := numericalGrad(loss, x, i)
		if math.Abs(num-float64(dx.Data[i])) > 5e-2 {
			t.Fatalf("%s grad[%d]: analytic %f vs numeric %f", name, i, dx.Data[i], num)
		}
	}
}

func TestActivationGradients(t *testing.T) {
	checkActivationGrad(t, "GeLU", GeLU, GeLUBackward)
	checkActivationGrad(t, "SiLU", SiLU, SiLUBackward)
}

func TestReLUBackward(t *testing.T) {
	x := FromSlice([]float32{-1, 2, 3}, 3)
	dy := FromSlice([]float32{5, 5, 5}, 3)
	dx := ReLUBackward(dy, x)
	if dx.Data[0] != 0 || dx.Data[1] != 5 || dx.Data[2] != 5 {
		t.Fatalf("ReLUBackward = %v", dx.Data)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic for equal seeds")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should diverge immediately (with overwhelming probability)")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	p := NewRNG(3).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandnMoments(t *testing.T) {
	rng := NewRNG(9)
	x := Randn(rng, 2, 10000)
	mean := x.Sum() / float64(x.Len())
	if math.Abs(mean) > 0.1 {
		t.Fatalf("Randn mean = %f, want ~0", mean)
	}
	var varsum float64
	for _, v := range x.Data {
		varsum += float64(v) * float64(v)
	}
	std := math.Sqrt(varsum / float64(x.Len()))
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("Randn std = %f, want ~2", std)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		covered := make([]int32, n+1)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ParallelFor(n, 3, func(lo, hi int) {
			<-mu
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			mu <- struct{}{}
		})
		for i := 0; i < n; i++ {
			if covered[i] != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i])
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	ran := 0
	ParallelFor(10, 1, func(lo, hi int) { ran += hi - lo })
	if ran != 10 {
		t.Fatalf("single-worker ParallelFor covered %d of 10", ran)
	}
	if got := SetMaxWorkers(-5); got != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want previous value 1", got)
	}
}

// Property: softmax rows always sum to 1 and MatMul distributes over
// addition: A(B+C) == AB + AC (within float tolerance).
func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		return left.Equal(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(10)
		x := Randn(rng, 5, rows, cols)
		SoftmaxRows(x)
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += float64(x.At(i, j))
			}
			if math.Abs(s-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopKSelectsMaxima(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		cols := 2 + rng.Intn(12)
		k := 1 + rng.Intn(cols)
		x := Randn(rng, 1, 1, cols)
		idx, vals := TopK(x, k)
		// Values must be in descending order, and the smallest selected value
		// must be >= every unselected value.
		sel := make(map[int]bool)
		for j := 0; j < k; j++ {
			sel[idx[0][j]] = true
			if j > 0 && vals[0][j] > vals[0][j-1] {
				return false
			}
		}
		minSel := vals[0][k-1]
		for j := 0; j < cols; j++ {
			if !sel[j] && x.At(0, j) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
