package tensor

import (
	"sync"
	"testing"
)

func TestPoolGetIsZeroFilledAfterDirtyPut(t *testing.T) {
	var p Pool
	a := p.Get(4, 8)
	for i := range a.Data {
		a.Data[i] = float32(i) + 1
	}
	p.Put(a)
	b := p.Get(4, 8)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %f", i, v)
		}
	}
	if b.Rows() != 4 || b.Cols() != 8 {
		t.Fatalf("recycled tensor shape %v", b.Shape())
	}
}

func TestPoolReusesBuffers(t *testing.T) {
	var p Pool
	a := p.Get(100)
	data := &a.Data[0]
	p.Put(a)
	// Same bucket (128) even though the shape differs.
	b := p.Get(10, 11)
	if &b.Data[0] != data {
		t.Fatal("pool did not reuse the bucketed buffer")
	}
}

func TestPoolNilIsAllocateFresh(t *testing.T) {
	var p *Pool
	a := p.Get(3, 3)
	if a.Len() != 9 {
		t.Fatalf("nil pool Get returned %v", a.Shape())
	}
	p.Put(a) // must not panic
}

func TestPoolPutForeignBufferDropped(t *testing.T) {
	var p Pool
	// New allocates exact-size buffers, which are not bucket-sized unless
	// the length is a power of two; 9 elements must be dropped.
	a := New(3, 3)
	p.Put(a)
	b := p.Get(3, 3)
	if b.Len() != 9 {
		t.Fatalf("got %v", b.Shape())
	}
}

func TestPoolMatchesNewBitForBit(t *testing.T) {
	var p Pool
	rng := NewRNG(3)
	x := Randn(rng, 1, 16, 16)
	w := Randn(rng, 1, 16, 16)

	fresh := MatMul(x, w)

	scratch := p.Get(16, 16)
	for i := range scratch.Data {
		scratch.Data[i] = 42 // dirty it
	}
	p.Put(scratch)
	pooled := p.Get(16, 16)
	MatMulInto(pooled, x, w)
	for i := range fresh.Data {
		if fresh.Data[i] != pooled.Data[i] {
			t.Fatalf("pooled MatMulInto differs at %d: %f vs %f", i, fresh.Data[i], pooled.Data[i])
		}
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t1 := p.Get(32, seed+1)
				t2 := p.Get(seed+1, 32)
				p.Put(t1)
				p.Put(t2)
			}
		}(g)
	}
	wg.Wait()
}

// TestMatMulIntoVariantsMatchFresh pins the bit-identity of the *Into
// matmul/activation kernels against their allocate-fresh twins, on
// deliberately dirtied destination buffers.
func TestMatMulIntoVariantsMatchFresh(t *testing.T) {
	rng := NewRNG(7)
	a := Randn(rng, 1, 13, 9)
	b := Randn(rng, 1, 17, 9) // for MatMulT: [n,k]
	c := Randn(rng, 1, 13, 9) // for TMatMul: aᵀ[9,13]·c? use shapes below

	t.Run("MatMulTInto", func(t *testing.T) {
		want := MatMulT(a, b)
		got := New(13, 17)
		got.Fill(99)
		MatMulTInto(got, a, b)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
	t.Run("TMatMulInto", func(t *testing.T) {
		want := TMatMul(a, c) // [9,13]ᵀ... a is [13,9]: Aᵀ·C = [9,9]
		got := New(9, 9)
		got.Fill(-3)
		TMatMulInto(got, a, c)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
	t.Run("ActivationBackwardInto", func(t *testing.T) {
		x := Randn(rng, 1, 5, 7)
		dy := Randn(rng, 1, 5, 7)
		for name, fns := range map[string]struct {
			fresh func(dy, x *Tensor) *Tensor
			into  func(dx, dy, x *Tensor)
		}{
			"relu": {ReLUBackward, ReLUBackwardInto},
			"gelu": {GeLUBackward, GeLUBackwardInto},
			"silu": {SiLUBackward, SiLUBackwardInto},
		} {
			want := fns.fresh(dy, x)
			got := New(5, 7)
			got.Fill(123)
			fns.into(got, dy, x)
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s mismatch at %d", name, i)
				}
			}
		}
	})
}

// TestSetMaxWorkersConcurrent exercises the atomic worker bound under
// concurrent kernel launches (run with -race).
func TestSetMaxWorkersConcurrent(t *testing.T) {
	defer SetMaxWorkers(MaxWorkers())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetMaxWorkers(1 + i%8)
			}
		}
	}()
	buf := make([]float32, 1<<12)
	for i := 0; i < 100; i++ {
		ParallelFor(len(buf), 64, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				buf[j] += 1
			}
		})
	}
	close(stop)
	wg.Wait()
	for j, v := range buf {
		if v != 100 {
			t.Fatalf("element %d ran %v times, want 100", j, v)
		}
	}
}
