package tensor

import "math"

// ReLU applies max(0, x) elementwise in place.
func ReLU(t *Tensor) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// ReLUBackward computes dX from dY given the forward input x: dX[i] is
// dY[i] where x[i] > 0 and zero elsewhere. The result is a new tensor.
func ReLUBackward(dy, x *Tensor) *Tensor {
	dx := New(x.shape...)
	ReLUBackwardInto(dx, dy, x)
	return dx
}

// ReLUBackwardInto computes ReLUBackward into the preallocated dx, which
// is overwritten. Bit-identical to ReLUBackward.
func ReLUBackwardInto(dx, dy, x *Tensor) {
	for i, v := range x.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = 0
		}
	}
}

// GeLU applies the tanh-approximated Gaussian error linear unit in place,
// matching the approximation used throughout transformer FFNs.
func GeLU(t *Tensor) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range t.Data {
		x := float64(v)
		t.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// GeLUBackward computes dX from dY given the forward input x for the
// tanh-approximated GeLU.
func GeLUBackward(dy, x *Tensor) *Tensor {
	dx := New(x.shape...)
	GeLUBackwardInto(dx, dy, x)
	return dx
}

// GeLUBackwardInto computes GeLUBackward into the preallocated dx, which
// is overwritten. Bit-identical to GeLUBackward.
func GeLUBackwardInto(dx, dy, x *Tensor) {
	const c = 0.7978845608028654
	for i, v := range x.Data {
		x := float64(v)
		inner := c * (x + 0.044715*x*x*x)
		th := math.Tanh(inner)
		sech2 := 1 - th*th
		dinner := c * (1 + 3*0.044715*x*x)
		grad := 0.5*(1+th) + 0.5*x*sech2*dinner
		dx.Data[i] = dy.Data[i] * float32(grad)
	}
}

// SiLU applies x*sigmoid(x) elementwise in place (the activation used by
// DeepSeek-style expert FFNs).
func SiLU(t *Tensor) {
	for i, v := range t.Data {
		x := float64(v)
		t.Data[i] = float32(x / (1 + math.Exp(-x)))
	}
}

// SiLUBackward computes dX from dY given the forward input x.
func SiLUBackward(dy, x *Tensor) *Tensor {
	dx := New(x.shape...)
	SiLUBackwardInto(dx, dy, x)
	return dx
}

// SiLUBackwardInto computes SiLUBackward into the preallocated dx, which
// is overwritten. Bit-identical to SiLUBackward.
func SiLUBackwardInto(dx, dy, x *Tensor) {
	for i, v := range x.Data {
		x := float64(v)
		s := 1 / (1 + math.Exp(-x))
		grad := s * (1 + x*(1-s))
		dx.Data[i] = dy.Data[i] * float32(grad)
	}
}
