package tensor

import "fmt"

// blockK is the k-dimension blocking factor for the cache-blocked matmul
// inner loops.
const blockK = 64

// MatMul computes C = A·B for A of shape [m,k] and B of shape [k,n],
// returning a new [m,n] tensor. Rows of C are computed in parallel across
// the worker pool. The kernel uses an ikj loop order with k-blocking so the
// inner loop is a contiguous AXPY over rows of B, which vectorises well.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into the preallocated tensor c, which must
// have shape [m,n]. c is overwritten.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	n := b.Cols()
	if b.Rows() != k || c.Rows() != m || c.Cols() != n {
		panic(fmt.Sprintf("tensor: matmulinto shape mismatch C%v = A%v x B%v", c.shape, a.shape, b.shape))
	}
	for i := range c.Data {
		c.Data[i] = 0
	}
	ParallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			ai := a.Data[i*k : (i+1)*k]
			for k0 := 0; k0 < k; k0 += blockK {
				k1 := k0 + blockK
				if k1 > k {
					k1 = k
				}
				for p := k0; p < k1; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b.Data[p*n : (p+1)*n]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}
	})
}

// MatMulT computes C = A·Bᵀ for A of shape [m,k] and B of shape [n,k],
// returning a new [m,n] tensor. This is the natural layout for computing
// activations against weight matrices stored output-major, and for the
// dX = dY·Wᵀ backward rule when W is stored as [k,n] transposed views.
func MatMulT(a, b *Tensor) *Tensor {
	c := New(a.Rows(), b.Rows())
	MatMulTInto(c, a, b)
	return c
}

// MatMulTInto computes C = A·Bᵀ into the preallocated tensor c, which must
// have shape [m,n] for A [m,k] and B [n,k]. c is overwritten. The result
// is bit-identical to MatMulT.
func MatMulTInto(c, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 || c.Rows() != m || c.Cols() != n {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch C%v = A%v x B%vᵀ", c.shape, a.shape, b.shape))
	}
	ParallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] = s
			}
		}
	})
}

// TMatMul computes C = Aᵀ·B for A of shape [k,m] and B of shape [k,n],
// returning a new [m,n] tensor. This is the dW = Xᵀ·dY backward rule.
func TMatMul(a, b *Tensor) *Tensor {
	c := New(a.Cols(), b.Cols())
	TMatMulInto(c, a, b)
	return c
}

// TMatMulInto computes C = Aᵀ·B into the preallocated tensor c, which must
// have shape [m,n] for A [k,m] and B [k,n]. c is overwritten. The result
// is bit-identical to TMatMul.
func TMatMulInto(c, a, b *Tensor) {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || c.Rows() != m || c.Cols() != n {
		panic(fmt.Sprintf("tensor: tmatmul shape mismatch C%v = A%vᵀ x B%v", c.shape, a.shape, b.shape))
	}
	// Parallelise over rows of the output; each output row i accumulates
	// a[p][i] * b[p][:] over all p, reading B rows contiguously.
	ParallelFor(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MatMulFLOPs returns the floating-point operation count of an [m,k]x[k,n]
// multiply (2mkn), used by the performance model.
func MatMulFLOPs(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}
