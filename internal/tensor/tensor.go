// Package tensor provides a small, dependency-free dense tensor library
// used as the compute substrate of the X-MoE reproduction. Tensors are
// row-major float32 buffers with explicit shapes. The package supplies the
// primitives the MoE training pipeline needs: parallel blocked matrix
// multiplication, softmax and top-k routing primitives, elementwise
// activations with hand-written backward rules, and deterministic random
// initialisation.
//
// The library stands in for the GPU tensor stacks (PyTorch/ROCm) used by
// the paper: all numeric-mode experiments and the loss-validation training
// runs execute on these tensors.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// tensor; use New or the constructors below to create usable tensors.
type Tensor struct {
	// Data is the backing buffer in row-major order. Exposed so kernels
	// can operate on contiguous rows without per-element call overhead.
	Data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float32, n), shape: s}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: data, shape: s}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rows returns the leading dimension of a matrix-shaped tensor.
func (t *Tensor) Rows() int {
	if len(t.shape) == 0 {
		return 0
	}
	return t.shape[0]
}

// Cols returns the product of all dimensions after the first, i.e. the
// width of the tensor when viewed as a matrix of Rows() rows.
func (t *Tensor) Cols() int {
	if len(t.shape) == 0 {
		return 0
	}
	c := 1
	for _, d := range t.shape[1:] {
		c *= d
	}
	return c
}

// At returns the element at row i, column j of a matrix-view of t.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Cols()+j] }

// Set assigns the element at row i, column j of a matrix-view of t.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Cols()+j] = v }

// Row returns a mutable view of row i of a matrix-view of t.
func (t *Tensor) Row(i int) []float32 {
	c := t.Cols()
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{Data: d, shape: s}
}

// Reshape returns a view of t with a new shape covering the same number of
// elements. The backing buffer is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: t.Data, shape: s}
}

// Zero sets all elements of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Copy copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) Copy(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: copy size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.Data, src.Data)
}

// Add accumulates other into t elementwise.
func (t *Tensor) Add(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: add size mismatch %v vs %v", t.shape, other.shape))
	}
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// Sub subtracts other from t elementwise.
func (t *Tensor) Sub(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: sub size mismatch %v vs %v", t.shape, other.shape))
	}
	for i, v := range other.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element of t by a.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled accumulates a*other into t elementwise.
func (t *Tensor) AddScaled(a float32, other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: addscaled size mismatch %v vs %v", t.shape, other.shape))
	}
	for i, v := range other.Data {
		t.Data[i] += a * v
	}
}

// Mul multiplies t by other elementwise (Hadamard product).
func (t *Tensor) Mul(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: mul size mismatch %v vs %v", t.shape, other.shape))
	}
	for i, v := range other.Data {
		t.Data[i] *= v
	}
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether t and other have identical shapes and elementwise
// values within tolerance tol.
func (t *Tensor) Equal(other *Tensor, tol float32) bool {
	if len(t.Data) != len(other.Data) || len(t.shape) != len(other.shape) {
		return false
	}
	for i, d := range t.shape {
		if other.shape[i] != d {
			return false
		}
	}
	for i, v := range t.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a compact description of the tensor.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
