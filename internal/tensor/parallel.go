package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the fan-out of parallel tensor kernels. It defaults to
// GOMAXPROCS and can be lowered for deterministic single-threaded profiling.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers sets the worker bound for parallel kernels and returns the
// previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	old := maxWorkers
	maxWorkers = n
	return old
}

// ParallelFor executes fn(lo, hi) over disjoint chunks covering [0, n),
// using at most maxWorkers goroutines. Chunks are at least grain elements
// long; small problems run inline on the calling goroutine. This helper is
// the reproduction's analogue of a GPU kernel launch: the gather/scatter
// and GEMM kernels schedule "thread blocks" through it.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := maxWorkers
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
