package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the fan-out of parallel tensor kernels. It defaults to
// GOMAXPROCS and can be lowered for deterministic single-threaded
// profiling. Kernel goroutines read it concurrently with SetMaxWorkers
// callers, so it is atomic.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers sets the worker bound for parallel kernels and returns the
// previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers returns the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// pfTask is one ParallelFor invocation flowing through the persistent
// worker pool. Workers and the caller claim chunks from a shared atomic
// cursor, so a task finishes even when every pool worker is busy (the
// caller always participates). Tasks are recycled through a sync.Pool;
// refs counts the goroutines that may still touch the task, and the last
// one to release it returns it to the pool.
type pfTask struct {
	fn     func(lo, hi int)
	n      int
	chunk  int
	chunks int
	cursor atomic.Int64
	refs   atomic.Int32
	wg     sync.WaitGroup
}

var taskPool = sync.Pool{New: func() any { return new(pfTask) }}

// run claims and executes chunks until the cursor is exhausted.
func (t *pfTask) run() {
	for {
		i := int(t.cursor.Add(1)) - 1
		if i >= t.chunks {
			return
		}
		lo := i * t.chunk
		hi := lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		t.fn(lo, hi)
		t.wg.Done()
	}
}

// release drops one reference; the last holder recycles the task.
func (t *pfTask) release() {
	if t.refs.Add(-1) == 0 {
		t.fn = nil
		t.cursor.Store(0)
		taskPool.Put(t)
	}
}

// workCh feeds tasks to the persistent workers. Sends are non-blocking:
// when the pool is saturated the caller simply executes its own chunks
// inline, so parallelism degrades gracefully instead of spawning
// goroutines. The buffer lets a burst of rank goroutines enqueue work
// before any worker wakes.
var (
	workCh    chan *pfTask
	startPool sync.Once
)

// poolWorkers is the number of persistent workers: one per processor,
// minus one for the calling goroutine which always participates. With
// GOMAXPROCS=1 the pool is empty and every kernel runs inline on the
// caller — the degenerate single-threaded mode stays allocation- and
// scheduler-free.
func poolWorkers() int { return runtime.GOMAXPROCS(0) - 1 }

// ensurePool starts the persistent workers on first parallel use. The
// pool is global and sized to the machine rather than per caller: when
// simrt runs hundreds of rank goroutines that each launch kernels, total
// kernel concurrency stays bounded by GOMAXPROCS instead of
// ranks x maxWorkers goroutines (the rank-aware cap).
func ensurePool() {
	startPool.Do(func() {
		n := poolWorkers()
		if n < 1 {
			return
		}
		workCh = make(chan *pfTask, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range workCh {
					t.run()
					t.release()
				}
			}()
		}
	})
}

// ParallelFor executes fn(lo, hi) over disjoint chunks covering [0, n),
// using at most maxWorkers concurrent executors. Chunks are at least grain
// elements long; small problems run inline on the calling goroutine. This
// helper is the reproduction's analogue of a GPU kernel launch: the
// gather/scatter and GEMM kernels schedule "thread blocks" through it.
//
// Scheduling is cooperative: chunks are claimed from a persistent,
// machine-wide worker pool and the caller always works alongside the pool,
// so no goroutines are spawned per call and concurrent callers (the
// simulated rank goroutines) share the machine instead of oversubscribing
// it.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := int(maxWorkers.Load())
	if w := (n + grain - 1) / grain; workers > w {
		workers = w
	}
	if workers <= 1 || poolWorkers() < 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		fn(0, n)
		return
	}
	ensurePool()

	t := taskPool.Get().(*pfTask)
	t.fn, t.n, t.chunk, t.chunks = fn, n, chunk, chunks
	t.wg.Add(chunks)
	// The caller is one executor; offer the task to up to chunks-1 pool
	// workers. A full channel means the machine is saturated — skip the
	// handoff and let the caller chew through the chunks itself.
	t.refs.Store(1)
	for i := 0; i < chunks-1; i++ {
		t.refs.Add(1)
		select {
		case workCh <- t:
		default:
			t.refs.Add(-1)
			i = chunks // stop offering
		}
	}
	t.run()
	t.wg.Wait()
	t.release()
}
