package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// used for reproducible weight initialisation and synthetic workload
// generation. Every experiment in the repository is seeded, so paper
// figures regenerate identically across runs.
type RNG struct {
	state uint64
	// cached second normal variate from the Box-Muller transform
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// RNGState is a serialisable snapshot of an RNG, including the cached
// Box-Muller spare so a restored generator reproduces the exact normal
// stream (dropping the spare would desynchronise every second Norm call).
type RNGState struct {
	State    uint64
	HasSpare bool
	Spare    float64
}

// State captures the generator's full state for checkpointing.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// SetState restores a snapshot captured by State.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.hasSpare = s.HasSpare
	r.spare = s.Spare
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Randn returns a tensor of the given shape filled with N(0, std²) samples.
func Randn(r *RNG, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = std * float32(r.Norm())
	}
	return t
}

// RandUniform returns a tensor filled with uniform samples in [lo, hi).
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*float32(r.Float64())
	}
	return t
}
