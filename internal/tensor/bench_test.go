package tensor

import (
	"sync"
	"testing"
)

func BenchmarkParallelFor(b *testing.B) {
	dst := make([]float32, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(len(dst), 1024, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dst[j] += 1
			}
		})
	}
}

// BenchmarkParallelForNested models simrt's execution shape: many rank
// goroutines concurrently issuing parallel kernels, which previously
// oversubscribed the machine with spawned goroutines.
func BenchmarkParallelForNested(b *testing.B) {
	const ranks = 16
	bufs := make([][]float32, ranks)
	for i := range bufs {
		bufs[i] = make([]float32, 1<<14)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for rk := 0; rk < ranks; rk++ {
			wg.Add(1)
			go func(rk int) {
				defer wg.Done()
				buf := bufs[rk]
				ParallelFor(len(buf), 512, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						buf[j] += 1
					}
				})
			}(rk)
		}
		wg.Wait()
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := NewRNG(1)
	a := Randn(rng, 1, 128, 128)
	w := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, w)
	}
}

func BenchmarkMatMulT(b *testing.B) {
	rng := NewRNG(1)
	a := Randn(rng, 1, 128, 128)
	w := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(a, w)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	rng := NewRNG(1)
	a := Randn(rng, 1, 128, 128)
	w := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMatMul(a, w)
	}
}

func BenchmarkGeLUBackward(b *testing.B) {
	rng := NewRNG(1)
	x := Randn(rng, 1, 256, 128)
	dy := Randn(rng, 1, 256, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GeLUBackward(dy, x)
	}
}
