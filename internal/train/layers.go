// Package train is the numeric training stack used for the paper's
// implementation validation (§5.6, Fig. 15): a complete, hand-written
// forward/backward MoE transformer language model — embedding, causal
// attention, MoE FFN with top-k routing and configurable token-dropping
// policy, cross-entropy loss, and Adam — trained on a synthetic corpus.
// It validates that X-MoE's capacity-only dropping tracks (and slightly
// beats) DeepSpeed-MoE's drop-negative-score policy in loss.
package train

import (
	"math"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	W *tensor.Tensor
	G *tensor.Tensor
}

// NewParam wraps an initialised weight tensor.
func NewParam(w *tensor.Tensor) *Param {
	return &Param{W: w, G: tensor.New(w.Shape()...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Linear is a bias-free dense layer y = x·W.
type Linear struct {
	P *Param
	x *tensor.Tensor // cached input
}

// NewLinear initialises a [in, out] projection with the given std.
func NewLinear(rng *tensor.RNG, in, out int, std float32) *Linear {
	return &Linear{P: NewParam(tensor.Randn(rng, std, in, out))}
}

// Forward computes y = x·W and caches x for backward.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	return tensor.MatMul(x, l.P.W)
}

// Backward accumulates dW and returns dX.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.P.G.Add(tensor.TMatMul(l.x, dy))
	return tensor.MatMulT(dy, l.P.W)
}

// Embedding maps token ids to dense rows.
type Embedding struct {
	P   *Param
	ids []int
}

// NewEmbedding initialises a [vocab, h] table.
func NewEmbedding(rng *tensor.RNG, vocab, h int) *Embedding {
	return &Embedding{P: NewParam(tensor.Randn(rng, 0.02, vocab, h))}
}

// Forward gathers embedding rows for ids.
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	e.ids = ids
	return kernels.Gather(e.P.W, ids)
}

// Backward scatters output gradients into the table gradient.
func (e *Embedding) Backward(dy *tensor.Tensor) {
	h := dy.Cols()
	for i, id := range e.ids {
		g := e.P.G.Row(id)
		src := dy.Row(i)
		for j := 0; j < h; j++ {
			g[j] += src[j]
		}
	}
}

// Attention is a single-head causal self-attention block operating on one
// sequence of S tokens, with full hand-written backward.
type Attention struct {
	Wq, Wk, Wv, Wo *Linear
	scale          float32
	// caches
	x, q, k, v, probs, z *tensor.Tensor
}

// NewAttention builds the block for hidden size h.
func NewAttention(rng *tensor.RNG, h int) *Attention {
	std := float32(0.02)
	return &Attention{
		Wq:    NewLinear(rng, h, h, std),
		Wk:    NewLinear(rng, h, h, std),
		Wv:    NewLinear(rng, h, h, std),
		Wo:    NewLinear(rng, h, h, std),
		scale: float32(1 / math.Sqrt(float64(h))),
	}
}

// Forward computes causal attention over x [S, H].
func (a *Attention) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.x = x
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)
	s := x.Rows()
	scores := tensor.MatMulT(a.q, a.k) // [S, S]
	scores.Scale(a.scale)
	// Causal mask: position i attends to j <= i.
	for i := 0; i < s; i++ {
		row := scores.Row(i)
		for j := i + 1; j < s; j++ {
			row[j] = float32(math.Inf(-1))
		}
	}
	tensor.SoftmaxRows(scores)
	a.probs = scores
	a.z = tensor.MatMul(a.probs, a.v)
	return a.Wo.Forward(a.z)
}

// Backward propagates dy through the block, returning dX.
func (a *Attention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	s := a.x.Rows()
	dz := a.Wo.Backward(dy)
	dprobs := tensor.MatMulT(dz, a.v) // [S, S]
	dv := tensor.TMatMul(a.probs, dz) // [S, H]
	// Softmax backward per row: dscore = p * (dprob - <dprob, p>).
	dscores := tensor.New(s, s)
	for i := 0; i < s; i++ {
		p := a.probs.Row(i)
		dp := dprobs.Row(i)
		var dot float32
		for j := 0; j <= i; j++ {
			dot += dp[j] * p[j]
		}
		dst := dscores.Row(i)
		for j := 0; j <= i; j++ {
			dst[j] = p[j] * (dp[j] - dot)
		}
	}
	dscores.Scale(a.scale)
	dq := tensor.MatMul(dscores, a.k)  // [S, H]
	dk := tensor.TMatMul(dscores, a.q) // [S, H]
	dx := a.Wq.Backward(dq)
	dx.Add(a.Wk.Backward(dk))
	dx.Add(a.Wv.Backward(dv))
	return dx
}

// Params returns the block's trainable parameters.
func (a *Attention) Params() []*Param {
	return []*Param{a.Wq.P, a.Wk.P, a.Wv.P, a.Wo.P}
}

// MoEFFN is a complete MoE feed-forward block: router, PFT construction
// with a configurable drop policy, gather dispatch, per-expert two-layer
// GeLU FFNs via sequential GEMM, and the weighted scatter combine — the
// numeric twin of the distributed padding-free pipeline.
type MoEFFN struct {
	Cfg    moe.Config
	Policy moe.DropPolicy
	Router *Linear
	W1, W2 []*Param // per expert

	// caches for backward
	x         *tensor.Tensor
	logits    *tensor.Tensor
	probs     *tensor.Tensor
	pft       *moe.PFT
	dispIn    *tensor.Tensor
	hidPre    *tensor.Tensor // pre-activation
	hidAct    *tensor.Tensor
	expertOut *tensor.Tensor
	rows      []int
	perm      []int // PFT order -> expert-major order
}

// NewMoEFFN builds the block.
func NewMoEFFN(rng *tensor.RNG, cfg moe.Config, policy moe.DropPolicy) *MoEFFN {
	m := &MoEFFN{
		Cfg:    cfg,
		Policy: policy,
		Router: NewLinear(rng, cfg.HModel, cfg.NumExperts, 0.02),
		W1:     make([]*Param, cfg.NumExperts),
		W2:     make([]*Param, cfg.NumExperts),
	}
	for e := 0; e < cfg.NumExperts; e++ {
		m.W1[e] = NewParam(tensor.Randn(rng, 0.02, cfg.HModel, cfg.HFFN))
		m.W2[e] = NewParam(tensor.Randn(rng, 0.02, cfg.HFFN, cfg.HModel))
	}
	return m
}

// Forward routes x [S, H] through the MoE block.
func (m *MoEFFN) Forward(x *tensor.Tensor) *tensor.Tensor {
	s := x.Rows()
	m.x = x
	m.logits = m.Router.Forward(x)
	m.probs = m.logits.Clone()
	tensor.SoftmaxRows(m.probs)
	idx, _ := tensor.TopK(m.probs, m.Cfg.TopK)

	routing := moe.Routing{
		S:          s,
		TopExperts: idx,
		Weights:    make([][]float32, s),
		Logits:     make([][]float32, s),
	}
	for t := 0; t < s; t++ {
		k := len(idx[t])
		routing.Weights[t] = make([]float32, k)
		routing.Logits[t] = make([]float32, k)
		for j, e := range idx[t] {
			routing.Weights[t][j] = m.probs.At(t, e)
			routing.Logits[t][j] = m.logits.At(t, e)
		}
	}
	m.pft = moe.BuildPFT(routing, m.Cfg.NumExperts, m.Cfg.Capacity(s), m.Policy)

	// Dispatch (gather) — entries are already expert-major, so the
	// sequential GEMM consumes them directly.
	m.dispIn = kernels.Gather(x, m.pft.TokenIDs)
	m.rows = append([]int(nil), m.pft.TokensPerExpert...)

	w1 := make([]*tensor.Tensor, m.Cfg.NumExperts)
	w2 := make([]*tensor.Tensor, m.Cfg.NumExperts)
	for e := range w1 {
		w1[e] = m.W1[e].W
		w2[e] = m.W2[e].W
	}
	m.hidPre = kernels.SequentialGEMM(m.dispIn, m.rows, w1)
	m.hidAct = m.hidPre.Clone()
	tensor.GeLU(m.hidAct)
	m.expertOut = kernels.SequentialGEMM(m.hidAct, m.rows, w2)

	return kernels.ScatterCombine(m.expertOut, m.pft.TokenIDs, m.pft.CombineWeights, s)
}

// Backward propagates dy [S, H] through the block, accumulating router
// and expert gradients, and returns dX. Gradients flow both through the
// expert outputs and through the combine weights into the router softmax.
func (m *MoEFFN) Backward(dy *tensor.Tensor) *tensor.Tensor {
	s := m.x.Rows()

	// Combine backward: per-row expert-output grads and combine-weight
	// grads.
	dExpertOut, dWeights := kernels.ScatterCombineBackward(dy, m.expertOut, m.pft.TokenIDs, m.pft.CombineWeights)

	// Expert FFN backward.
	w2 := make([]*tensor.Tensor, m.Cfg.NumExperts)
	w1 := make([]*tensor.Tensor, m.Cfg.NumExperts)
	for e := range w2 {
		w2[e] = m.W2[e].W
		w1[e] = m.W1[e].W
	}
	dHidAct, dW2 := kernels.SequentialGEMMBackward(dExpertOut, m.hidAct, m.rows, w2)
	dHidPre := tensor.GeLUBackward(dHidAct, m.hidPre)
	dDispIn, dW1 := kernels.SequentialGEMMBackward(dHidPre, m.dispIn, m.rows, w1)
	for e := range dW1 {
		m.W1[e].G.Add(dW1[e])
		m.W2[e].G.Add(dW2[e])
	}

	// Dispatch (gather) backward into the block input.
	dx := kernels.GatherBackward(dDispIn, m.pft.TokenIDs, s)

	// Router backward through the combine weights: weight i is
	// probs[token, expert] for each retained entry; softmax backward
	// turns per-probability grads into logit grads.
	dProbs := tensor.New(s, m.Cfg.NumExperts)
	for i := range m.pft.TokenIDs {
		dProbs.Set(m.pft.TokenIDs[i], m.pft.ExpertIDs[i],
			dProbs.At(m.pft.TokenIDs[i], m.pft.ExpertIDs[i])+dWeights[i])
	}
	dLogits := tensor.New(s, m.Cfg.NumExperts)
	for t := 0; t < s; t++ {
		p := m.probs.Row(t)
		dp := dProbs.Row(t)
		var dot float32
		for j, v := range dp {
			dot += v * p[j]
		}
		dst := dLogits.Row(t)
		for j := range dst {
			dst[j] = p[j] * (dp[j] - dot)
		}
	}
	dx.Add(m.Router.Backward(dLogits))
	return dx
}

// Params returns all trainable parameters of the block.
func (m *MoEFFN) Params() []*Param {
	out := []*Param{m.Router.P}
	for e := range m.W1 {
		out = append(out, m.W1[e], m.W2[e])
	}
	return out
}

// DroppedTokens returns the drop count of the most recent forward pass.
func (m *MoEFFN) DroppedTokens() int {
	if m.pft == nil {
		return 0
	}
	return m.pft.Dropped
}
