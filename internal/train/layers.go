// Package train is the numeric training stack used for the paper's
// implementation validation (§5.6, Fig. 15): a complete, hand-written
// forward/backward MoE transformer language model — embedding, causal
// attention, MoE FFN with top-k routing and configurable token-dropping
// policy, cross-entropy loss, and Adam — trained on a synthetic corpus.
// It validates that X-MoE's capacity-only dropping tracks (and slightly
// beats) DeepSpeed-MoE's drop-negative-score policy in loss.
package train

import (
	"math"

	"xmoe/internal/kernels"
	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	W *tensor.Tensor
	G *tensor.Tensor
}

// NewParam wraps an initialised weight tensor.
func NewParam(w *tensor.Tensor) *Param {
	return &Param{W: w, G: tensor.New(w.Shape()...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Linear is a bias-free dense layer y = x·W.
type Linear struct {
	P  *Param
	x  *tensor.Tensor // cached input
	dw *tensor.Tensor // persistent dW scratch (same shape as W)
}

// NewLinear initialises a [in, out] projection with the given std.
func NewLinear(rng *tensor.RNG, in, out int, std float32) *Linear {
	return &Linear{P: NewParam(tensor.Randn(rng, std, in, out))}
}

// Forward computes y = x·W and caches x for backward.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	return tensor.MatMul(x, l.P.W)
}

// Backward accumulates dW and returns dX. The weight-gradient GEMM runs
// into a persistent scratch tensor then accumulates, preserving the
// summation order of the allocate-fresh path bit for bit.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.dw = ensureShape(l.dw, l.P.W.Rows(), l.P.W.Cols())
	tensor.TMatMulInto(l.dw, l.x, dy)
	l.P.G.Add(l.dw)
	return tensor.MatMulT(dy, l.P.W)
}

// ensureShape returns t when it already has shape [rows, cols], otherwise
// a fresh zero tensor of that shape. Steady-state training reuses the
// same buffer every step; shape changes (first step, new batch geometry)
// fall back to allocation.
func ensureShape(t *tensor.Tensor, rows, cols int) *tensor.Tensor {
	if t != nil && t.Rows() == rows && t.Cols() == cols {
		return t
	}
	return tensor.New(rows, cols)
}

// Embedding maps token ids to dense rows.
type Embedding struct {
	P   *Param
	ids []int
}

// NewEmbedding initialises a [vocab, h] table.
func NewEmbedding(rng *tensor.RNG, vocab, h int) *Embedding {
	return &Embedding{P: NewParam(tensor.Randn(rng, 0.02, vocab, h))}
}

// Forward gathers embedding rows for ids.
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	e.ids = ids
	return kernels.Gather(e.P.W, ids)
}

// Backward scatters output gradients into the table gradient.
func (e *Embedding) Backward(dy *tensor.Tensor) {
	h := dy.Cols()
	for i, id := range e.ids {
		g := e.P.G.Row(id)
		src := dy.Row(i)
		for j := 0; j < h; j++ {
			g[j] += src[j]
		}
	}
}

// Attention is a single-head causal self-attention block operating on one
// sequence of S tokens, with full hand-written backward.
type Attention struct {
	Wq, Wk, Wv, Wo *Linear
	scale          float32
	// caches
	x, q, k, v, probs, z *tensor.Tensor
	// persistent backward scratch (shapes are fixed for a fixed S)
	dscores *tensor.Tensor
}

// NewAttention builds the block for hidden size h.
func NewAttention(rng *tensor.RNG, h int) *Attention {
	std := float32(0.02)
	return &Attention{
		Wq:    NewLinear(rng, h, h, std),
		Wk:    NewLinear(rng, h, h, std),
		Wv:    NewLinear(rng, h, h, std),
		Wo:    NewLinear(rng, h, h, std),
		scale: float32(1 / math.Sqrt(float64(h))),
	}
}

// Forward computes causal attention over x [S, H].
func (a *Attention) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.x = x
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)
	s := x.Rows()
	scores := tensor.MatMulT(a.q, a.k) // [S, S]
	scores.Scale(a.scale)
	// Causal mask: position i attends to j <= i.
	for i := 0; i < s; i++ {
		row := scores.Row(i)
		for j := i + 1; j < s; j++ {
			row[j] = float32(math.Inf(-1))
		}
	}
	tensor.SoftmaxRows(scores)
	a.probs = scores
	a.z = tensor.MatMul(a.probs, a.v)
	return a.Wo.Forward(a.z)
}

// Backward propagates dy through the block, returning dX.
func (a *Attention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	s := a.x.Rows()
	dz := a.Wo.Backward(dy)
	dprobs := tensor.MatMulT(dz, a.v) // [S, S]
	dv := tensor.TMatMul(a.probs, dz) // [S, H]
	// Softmax backward per row: dscore = p * (dprob - <dprob, p>).
	dscores := ensureShape(a.dscores, s, s)
	dscores.Zero()
	a.dscores = dscores
	for i := 0; i < s; i++ {
		p := a.probs.Row(i)
		dp := dprobs.Row(i)
		var dot float32
		for j := 0; j <= i; j++ {
			dot += dp[j] * p[j]
		}
		dst := dscores.Row(i)
		for j := 0; j <= i; j++ {
			dst[j] = p[j] * (dp[j] - dot)
		}
	}
	dscores.Scale(a.scale)
	dq := tensor.MatMul(dscores, a.k)  // [S, H]
	dk := tensor.TMatMul(dscores, a.q) // [S, H]
	dx := a.Wq.Backward(dq)
	dx.Add(a.Wk.Backward(dk))
	dx.Add(a.Wv.Backward(dv))
	return dx
}

// Params returns the block's trainable parameters.
func (a *Attention) Params() []*Param {
	return []*Param{a.Wq.P, a.Wk.P, a.Wv.P, a.Wo.P}
}

// MoEFFN is a complete MoE feed-forward block: router, PFT construction
// with a configurable drop policy, gather dispatch, per-expert two-layer
// GeLU FFNs via sequential GEMM, and the weighted scatter combine — the
// numeric twin of the distributed padding-free pipeline.
type MoEFFN struct {
	Cfg    moe.Config
	Policy moe.DropPolicy
	Router *Linear
	W1, W2 []*Param // per expert

	// caches for backward
	x         *tensor.Tensor
	logits    *tensor.Tensor
	probs     *tensor.Tensor
	pft       *moe.PFT
	dispIn    *tensor.Tensor
	hidPre    *tensor.Tensor // pre-activation
	hidAct    *tensor.Tensor
	expertOut *tensor.Tensor
	rows      []int
	perm      []int // PFT order -> expert-major order

	// pool is the block's private arena: the routed-token intermediates
	// (whose row count b varies step to step with the routing) cycle
	// through it, so steady-state training stops allocating. Weight
	// views and per-expert gradient scratch persist across steps.
	pool       tensor.Pool
	w1v, w2v   []*tensor.Tensor // weight views passed to the kernels
	dw1s, dw2s []*tensor.Tensor // per-expert dW scratch
	dWeights   []float32
	dProbs     *tensor.Tensor
	dLogits    *tensor.Tensor
}

// NewMoEFFN builds the block.
func NewMoEFFN(rng *tensor.RNG, cfg moe.Config, policy moe.DropPolicy) *MoEFFN {
	m := &MoEFFN{
		Cfg:    cfg,
		Policy: policy,
		Router: NewLinear(rng, cfg.HModel, cfg.NumExperts, 0.02),
		W1:     make([]*Param, cfg.NumExperts),
		W2:     make([]*Param, cfg.NumExperts),
	}
	for e := 0; e < cfg.NumExperts; e++ {
		m.W1[e] = NewParam(tensor.Randn(rng, 0.02, cfg.HModel, cfg.HFFN))
		m.W2[e] = NewParam(tensor.Randn(rng, 0.02, cfg.HFFN, cfg.HModel))
	}
	return m
}

// weightViews refreshes the cached []*tensor.Tensor views of the expert
// weights that the sequential-GEMM kernels consume.
func (m *MoEFFN) weightViews() (w1, w2 []*tensor.Tensor) {
	if m.w1v == nil {
		m.w1v = make([]*tensor.Tensor, m.Cfg.NumExperts)
		m.w2v = make([]*tensor.Tensor, m.Cfg.NumExperts)
	}
	for e := range m.w1v {
		m.w1v[e] = m.W1[e].W
		m.w2v[e] = m.W2[e].W
	}
	return m.w1v, m.w2v
}

// Forward routes x [S, H] through the MoE block.
func (m *MoEFFN) Forward(x *tensor.Tensor) *tensor.Tensor {
	s := x.Rows()
	m.x = x
	// Recycle the previous step's routed-token buffers (a no-op on the
	// first step or when Backward already returned them).
	m.pool.PutAll(m.probs, m.dispIn, m.hidPre, m.hidAct, m.expertOut)
	m.probs, m.dispIn, m.hidPre, m.hidAct, m.expertOut = nil, nil, nil, nil, nil
	m.logits = m.Router.Forward(x)
	m.probs = m.pool.Get(m.logits.Shape()...)
	m.probs.Copy(m.logits)
	tensor.SoftmaxRows(m.probs)
	idx, _ := tensor.TopK(m.probs, m.Cfg.TopK)

	routing := moe.Routing{
		S:          s,
		TopExperts: idx,
		Weights:    make([][]float32, s),
		Logits:     make([][]float32, s),
	}
	k := m.Cfg.TopK
	weightsFlat := make([]float32, s*k)
	logitsFlat := make([]float32, s*k)
	for t := 0; t < s; t++ {
		routing.Weights[t] = weightsFlat[t*k : (t+1)*k]
		routing.Logits[t] = logitsFlat[t*k : (t+1)*k]
		for j, e := range idx[t] {
			routing.Weights[t][j] = m.probs.At(t, e)
			routing.Logits[t][j] = m.logits.At(t, e)
		}
	}
	m.pft = moe.BuildPFT(routing, m.Cfg.NumExperts, m.Cfg.Capacity(s), m.Policy)

	// Dispatch (gather) — entries are already expert-major, so the
	// sequential GEMM consumes them directly.
	b := m.pft.B()
	m.dispIn = m.pool.Get(b, m.Cfg.HModel)
	kernels.GatherInto(m.dispIn, x, m.pft.TokenIDs)
	m.rows = append(m.rows[:0], m.pft.TokensPerExpert...)

	w1, w2 := m.weightViews()
	m.hidPre = m.pool.Get(b, m.Cfg.HFFN)
	kernels.SequentialGEMMInto(m.hidPre, m.dispIn, m.rows, w1)
	m.hidAct = m.pool.Get(b, m.Cfg.HFFN)
	m.hidAct.Copy(m.hidPre)
	tensor.GeLU(m.hidAct)
	m.expertOut = m.pool.Get(b, m.Cfg.HModel)
	kernels.SequentialGEMMInto(m.expertOut, m.hidAct, m.rows, w2)

	return kernels.ScatterCombine(m.expertOut, m.pft.TokenIDs, m.pft.CombineWeights, s)
}

// Backward propagates dy [S, H] through the block, accumulating router
// and expert gradients, and returns dX. Gradients flow both through the
// expert outputs and through the combine weights into the router softmax.
func (m *MoEFFN) Backward(dy *tensor.Tensor) *tensor.Tensor {
	s := m.x.Rows()
	b := m.pft.B()

	// Combine backward: per-row expert-output grads and combine-weight
	// grads.
	dExpertOut := m.pool.Get(b, m.Cfg.HModel)
	if cap(m.dWeights) < b {
		m.dWeights = make([]float32, b)
	}
	dWeights := m.dWeights[:b]
	kernels.ScatterCombineBackwardInto(dExpertOut, dWeights, dy, m.expertOut, m.pft.TokenIDs, m.pft.CombineWeights)

	// Expert FFN backward. The per-expert dW scratch tensors persist
	// across steps (expert weight shapes are fixed); the GEMMs overwrite
	// them and the results accumulate into the gradient params, matching
	// the allocate-fresh summation order exactly.
	w1, w2 := m.weightViews()
	if m.dw1s == nil {
		m.dw1s = make([]*tensor.Tensor, m.Cfg.NumExperts)
		m.dw2s = make([]*tensor.Tensor, m.Cfg.NumExperts)
		for e := 0; e < m.Cfg.NumExperts; e++ {
			m.dw1s[e] = tensor.New(m.Cfg.HModel, m.Cfg.HFFN)
			m.dw2s[e] = tensor.New(m.Cfg.HFFN, m.Cfg.HModel)
		}
	}
	dHidAct := m.pool.Get(b, m.Cfg.HFFN)
	kernels.SequentialGEMMBackwardInto(dHidAct, m.dw2s, dExpertOut, m.hidAct, m.rows, w2)
	m.pool.Put(dExpertOut)
	dHidPre := m.pool.Get(b, m.Cfg.HFFN)
	tensor.GeLUBackwardInto(dHidPre, dHidAct, m.hidPre)
	m.pool.Put(dHidAct)
	dDispIn := m.pool.Get(b, m.Cfg.HModel)
	kernels.SequentialGEMMBackwardInto(dDispIn, m.dw1s, dHidPre, m.dispIn, m.rows, w1)
	m.pool.Put(dHidPre)
	for e := range m.dw1s {
		m.W1[e].G.Add(m.dw1s[e])
		m.W2[e].G.Add(m.dw2s[e])
	}

	// Dispatch (gather) backward into the block input.
	dx := kernels.GatherBackward(dDispIn, m.pft.TokenIDs, s)
	m.pool.Put(dDispIn)

	// Router backward through the combine weights: weight i is
	// probs[token, expert] for each retained entry; softmax backward
	// turns per-probability grads into logit grads.
	m.dProbs = ensureShape(m.dProbs, s, m.Cfg.NumExperts)
	m.dProbs.Zero()
	dProbs := m.dProbs
	for i := range m.pft.TokenIDs {
		dProbs.Set(m.pft.TokenIDs[i], m.pft.ExpertIDs[i],
			dProbs.At(m.pft.TokenIDs[i], m.pft.ExpertIDs[i])+dWeights[i])
	}
	m.dLogits = ensureShape(m.dLogits, s, m.Cfg.NumExperts)
	dLogits := m.dLogits
	for t := 0; t < s; t++ {
		p := m.probs.Row(t)
		dp := dProbs.Row(t)
		var dot float32
		for j, v := range dp {
			dot += v * p[j]
		}
		dst := dLogits.Row(t)
		for j := range dst {
			dst[j] = p[j] * (dp[j] - dot)
		}
	}
	dx.Add(m.Router.Backward(dLogits))

	// The forward caches are consumed; return them to the arena so the
	// next Forward reuses the buffers.
	m.pool.PutAll(m.probs, m.dispIn, m.hidPre, m.hidAct, m.expertOut)
	m.probs, m.dispIn, m.hidPre, m.hidAct, m.expertOut = nil, nil, nil, nil, nil
	return dx
}

// Params returns all trainable parameters of the block.
func (m *MoEFFN) Params() []*Param {
	out := []*Param{m.Router.P}
	for e := range m.W1 {
		out = append(out, m.W1[e], m.W2[e])
	}
	return out
}

// DroppedTokens returns the drop count of the most recent forward pass.
func (m *MoEFFN) DroppedTokens() int {
	if m.pft == nil {
		return 0
	}
	return m.pft.Dropped
}
