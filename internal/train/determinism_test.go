package train

import (
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// TestMoEFFNSteadyStateDeterministic pins the pooled training block: with
// identical inputs and weights, a steady-state pass (whose intermediates
// are all recycled arena buffers) must be bit-identical to the first pass
// of a freshly constructed block.
func TestMoEFFNSteadyStateDeterministic(t *testing.T) {
	cfg := moe.Config{
		NumExperts:     8,
		TopK:           2,
		HModel:         16,
		HFFN:           12,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	x := tensor.Randn(tensor.NewRNG(2), 1, 24, cfg.HModel)
	dy := tensor.Randn(tensor.NewRNG(3), 1, 24, cfg.HModel)

	pass := func(ffn *MoEFFN) (*tensor.Tensor, *tensor.Tensor, []*tensor.Tensor) {
		out := ffn.Forward(x)
		dx := ffn.Backward(dy)
		grads := make([]*tensor.Tensor, 0, 2*cfg.NumExperts+1)
		for _, p := range ffn.Params() {
			grads = append(grads, p.G.Clone())
			p.ZeroGrad()
		}
		return out.Clone(), dx.Clone(), grads
	}

	ref := NewMoEFFN(tensor.NewRNG(11), cfg, moe.DropByCapacityWeight)
	wantOut, wantDX, wantG := pass(ref)

	ffn := NewMoEFFN(tensor.NewRNG(11), cfg, moe.DropByCapacityWeight)
	var out, dx *tensor.Tensor
	var grads []*tensor.Tensor
	for i := 0; i < 4; i++ { // 4th pass runs fully on recycled buffers
		out, dx, grads = pass(ffn)
	}

	eq := func(name string, a, b *tensor.Tensor) {
		t.Helper()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, a.Data[i], b.Data[i])
			}
		}
	}
	eq("output", wantOut, out)
	eq("dX", wantDX, dx)
	for i := range wantG {
		eq("grad", wantG[i], grads[i])
	}
}
