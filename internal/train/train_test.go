package train

import (
	"math"
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// checkGrad verifies an analytic gradient against central differences of
// the scalar loss function.
func checkGrad(t *testing.T, name string, loss func() float64, data []float32, grad []float32, stride int, tol float64) {
	t.Helper()
	const eps = 1e-2
	for i := 0; i < len(data); i += stride {
		orig := data[i]
		data[i] = orig + eps
		up := loss()
		data[i] = orig - eps
		down := loss()
		data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(grad[i])) > tol {
			t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, grad[i], num)
		}
	}
}

func TestLinearBackward(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(rng, 4, 3, 0.5)
	x := tensor.Randn(rng, 1, 5, 4)
	loss := func() float64 { return l.Forward(x).Sum() }
	loss()
	dy := tensor.New(5, 3)
	dy.Fill(1)
	dx := l.Backward(dy)
	checkGrad(t, "linear.W", loss, l.P.W.Data, l.P.G.Data, 1, 5e-2)
	checkGrad(t, "linear.x", loss, x.Data, dx.Data, 1, 5e-2)
}

func TestEmbeddingBackward(t *testing.T) {
	rng := tensor.NewRNG(2)
	e := NewEmbedding(rng, 6, 3)
	ids := []int{1, 4, 1}
	loss := func() float64 { return e.Forward(ids).Sum() }
	loss()
	dy := tensor.New(3, 3)
	dy.Fill(1)
	e.Backward(dy)
	// Row 1 used twice: grad 2 per element; row 4 once; others zero.
	if e.P.G.At(1, 0) != 2 || e.P.G.At(4, 0) != 1 || e.P.G.At(0, 0) != 0 {
		t.Fatalf("embedding grads wrong: %v", e.P.G.Data)
	}
}

func TestAttentionBackward(t *testing.T) {
	rng := tensor.NewRNG(3)
	a := NewAttention(rng, 6)
	x := tensor.Randn(rng, 0.8, 5, 6)
	loss := func() float64 { return a.Forward(x).Sum() }
	loss()
	dy := tensor.New(5, 6)
	dy.Fill(1)
	dx := a.Backward(dy)
	checkGrad(t, "attn.x", loss, x.Data, dx.Data, 3, 8e-2)
	checkGrad(t, "attn.Wq", loss, a.Wq.P.W.Data, a.Wq.P.G.Data, 7, 8e-2)
	checkGrad(t, "attn.Wv", loss, a.Wv.P.W.Data, a.Wv.P.G.Data, 7, 8e-2)
}

func TestAttentionIsCausal(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := NewAttention(rng, 4)
	x := tensor.Randn(rng, 1, 6, 4)
	out1 := a.Forward(x)
	// Perturb a future token; earlier outputs must not change.
	x2 := x.Clone()
	x2.Row(5)[0] += 10
	out2 := a.Forward(x2)
	for t2 := 0; t2 < 5; t2++ {
		for j := 0; j < 4; j++ {
			if math.Abs(float64(out1.At(t2, j)-out2.At(t2, j))) > 1e-5 {
				t.Fatalf("token %d attended to the future", t2)
			}
		}
	}
}

func moeTestCfg() moe.Config {
	return moe.Config{NumExperts: 4, TopK: 2, HModel: 6, HFFN: 4,
		CapacityFactor: 100, BytesPerElem: 2}
}

func TestMoEFFNBackwardExperts(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewMoEFFN(rng, moeTestCfg(), moe.DropByCapacityWeight)
	x := tensor.Randn(rng, 0.8, 7, 6)
	loss := func() float64 { return m.Forward(x).Sum() }
	loss()
	dy := tensor.New(7, 6)
	dy.Fill(1)
	dx := m.Backward(dy)

	// Routing can change under finite differences of x (top-k flips), so
	// test expert weights and router (which keep routing fixed for small
	// eps in most coordinates) with a tolerant threshold, and x on a
	// subset.
	checkGrad(t, "moe.W1[0]", loss, m.W1[0].W.Data, m.W1[0].G.Data, 5, 8e-2)
	checkGrad(t, "moe.W2[1]", loss, m.W2[1].W.Data, m.W2[1].G.Data, 5, 8e-2)
	checkGrad(t, "moe.router", loss, m.Router.P.W.Data, m.Router.P.G.Data, 7, 1.5e-1)
	checkGrad(t, "moe.x", loss, x.Data, dx.Data, 11, 1.5e-1)
}

func TestMoEFFNDropPolicies(t *testing.T) {
	// With a tight capacity the two policies must behave differently and
	// the X-MoE policy must retain at least as many tokens.
	rng := tensor.NewRNG(6)
	cfg := moeTestCfg()
	cfg.CapacityFactor = 1.0
	x := tensor.Randn(rng, 1, 32, 6)

	mx := NewMoEFFN(tensor.NewRNG(7), cfg, moe.DropByCapacityWeight)
	md := NewMoEFFN(tensor.NewRNG(7), cfg, moe.DropNegativeThenPosition)
	mx.Forward(x)
	md.Forward(x)
	if mx.DroppedTokens() > md.DroppedTokens() {
		t.Fatalf("X-MoE policy dropped more (%d) than DS-MoE policy (%d)",
			mx.DroppedTokens(), md.DroppedTokens())
	}
}

func TestAdamReducesSimpleLoss(t *testing.T) {
	// Minimise ||W||² via Adam on synthetic gradients.
	rng := tensor.NewRNG(8)
	p := NewParam(tensor.Randn(rng, 1, 4, 4))
	opt := NewAdam([]*Param{p}, 0.05)
	start := p.W.Clone()
	for i := 0; i < 200; i++ {
		for j, w := range p.W.Data {
			p.G.Data[j] = 2 * w
		}
		opt.Step()
	}
	if p.W.MaxAbs() >= start.MaxAbs() {
		t.Fatal("Adam failed to shrink the quadratic loss")
	}
	if p.W.MaxAbs() > 0.1 {
		t.Fatalf("Adam did not converge: max |w| = %f", p.W.MaxAbs())
	}
}

func TestMarkovCorpusStructure(t *testing.T) {
	c := NewMarkovCorpus(64, 9)
	seq := c.Sequence(5000)
	// The deterministic successor must dominate transitions.
	hits := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] == (3*seq[i-1]+1)%64 {
			hits++
		}
	}
	frac := float64(hits) / float64(len(seq)-1)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("dominant transition frequency %.2f outside [0.7, 0.9]", frac)
	}
	for _, tok := range seq {
		if tok < 0 || tok >= 64 {
			t.Fatalf("token %d outside vocab", tok)
		}
	}
}

func TestLMTrainingReducesLoss(t *testing.T) {
	cfg := DefaultLMConfig(moe.DropByCapacityWeight)
	losses := LossCurve(cfg, 120)
	first := Mean(losses[:20])
	last := Mean(losses[len(losses)-20:])
	if last >= first-0.4 {
		t.Fatalf("training did not reduce loss: %.3f -> %.3f", first, last)
	}
	// Initial loss should be near log(V) = 4.16 for an untrained model.
	if losses[0] < 3.0 || losses[0] > 6.0 {
		t.Fatalf("initial loss %.3f implausible for V=64", losses[0])
	}
}

func TestFig15PoliciesTrackClosely(t *testing.T) {
	// Fig. 15's claim: X-MoE's capacity-only dropping closely tracks
	// DeepSpeed-MoE's, retaining more tokens and ending at a loss at
	// least as good (within noise).
	if testing.Short() {
		t.Skip("training comparison skipped in -short")
	}
	const iters = 250
	xmoeCfg := DefaultLMConfig(moe.DropByCapacityWeight)
	dsCfg := DefaultLMConfig(moe.DropNegativeThenPosition)
	lx := Smooth(LossCurve(xmoeCfg, iters), 40)
	ld := Smooth(LossCurve(dsCfg, iters), 40)
	endX := lx[len(lx)-1]
	endD := ld[len(ld)-1]
	if math.Abs(endX-endD) > 0.6 {
		t.Fatalf("curves diverged: X-MoE %.3f vs DS-MoE %.3f", endX, endD)
	}
	if endX > endD+0.15 {
		t.Fatalf("X-MoE loss (%.3f) should not be meaningfully above DS-MoE (%.3f)", endX, endD)
	}
}

func TestSmooth(t *testing.T) {
	xs := []float64{4, 2, 2, 2}
	sm := Smooth(xs, 2)
	if sm[0] != 4 || sm[1] != 3 || sm[3] != 2 {
		t.Fatalf("Smooth = %v", sm)
	}
	if got := Smooth(nil, 0); len(got) != 0 {
		t.Fatal("Smooth(nil) should be empty")
	}
}
