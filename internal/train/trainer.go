package train

import (
	"fmt"
	"math"

	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// Adam is a standard Adam optimizer over a parameter set.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  []*tensor.Tensor
	params                []*Param
}

// NewAdam builds the optimizer for the given parameters.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, tensor.New(p.W.Shape()...))
		a.v = append(a.v, tensor.New(p.W.Shape()...))
	}
	return a
}

// Step applies one update and zeroes the gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.G.Data {
			m.Data[j] = float32(a.Beta1)*m.Data[j] + float32(1-a.Beta1)*g
			v.Data[j] = float32(a.Beta2)*v.Data[j] + float32(1-a.Beta2)*g*g
			mh := float64(m.Data[j]) / bc1
			vh := float64(v.Data[j]) / bc2
			p.W.Data[j] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
		}
		p.ZeroGrad()
	}
}

// MarkovCorpus is a synthetic language with learnable order-1 structure:
// each token deterministically prefers a small successor set with noise,
// so the LM loss has headroom to fall well below log(V).
type MarkovCorpus struct {
	Vocab int
	rng   *tensor.RNG
	cur   int
}

// NewMarkovCorpus builds a corpus over the given vocabulary.
func NewMarkovCorpus(vocab int, seed uint64) *MarkovCorpus {
	return &MarkovCorpus{Vocab: vocab, rng: tensor.NewRNG(seed), cur: 0}
}

// Next returns the next token: with probability 0.8 the deterministic
// successor (3*cur+1 mod V), otherwise one of two alternates.
func (c *MarkovCorpus) Next() int {
	r := c.rng.Float64()
	switch {
	case r < 0.80:
		c.cur = (3*c.cur + 1) % c.Vocab
	case r < 0.90:
		c.cur = (5*c.cur + 2) % c.Vocab
	default:
		c.cur = c.rng.Intn(c.Vocab)
	}
	return c.cur
}

// Sequence returns the next n tokens.
func (c *MarkovCorpus) Sequence(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c.Next()
	}
	return out
}

// LMConfig configures the validation language model.
type LMConfig struct {
	Vocab  int
	SeqLen int
	Layers int
	MoE    moe.Config
	Policy moe.DropPolicy
	LR     float64
	Seed   uint64
}

// DefaultLMConfig returns the scaled-down 10.1B-config analogue used by
// the Fig. 15 reproduction: same expert granularity ratios (E=16, k=4,
// HFFN < H), laptop-scale dimensions.
func DefaultLMConfig(policy moe.DropPolicy) LMConfig {
	return LMConfig{
		Vocab:  64,
		SeqLen: 32,
		Layers: 2,
		MoE: moe.Config{
			NumExperts:     16,
			TopK:           4,
			HModel:         48,
			HFFN:           24,
			CapacityFactor: 1.25,
			BytesPerElem:   2,
		},
		Policy: policy,
		LR:     3e-3,
		Seed:   1234,
	}
}

// LM is the MoE transformer language model.
type LM struct {
	Cfg    LMConfig
	Embed  *Embedding
	Blocks []*block
	Head   *Linear
	opt    *Adam
}

type block struct {
	attn *Attention
	ffn  *MoEFFN
}

// NewLM builds and initialises the model.
func NewLM(cfg LMConfig) *LM {
	rng := tensor.NewRNG(cfg.Seed)
	lm := &LM{
		Cfg:   cfg,
		Embed: NewEmbedding(rng, cfg.Vocab, cfg.MoE.HModel),
		Head:  NewLinear(rng, cfg.MoE.HModel, cfg.Vocab, 0.02),
	}
	for i := 0; i < cfg.Layers; i++ {
		lm.Blocks = append(lm.Blocks, &block{
			attn: NewAttention(rng, cfg.MoE.HModel),
			ffn:  NewMoEFFN(rng, cfg.MoE, cfg.Policy),
		})
	}
	params := []*Param{lm.Embed.P, lm.Head.P}
	for _, b := range lm.Blocks {
		params = append(params, b.attn.Params()...)
		params = append(params, b.ffn.Params()...)
	}
	lm.opt = NewAdam(params, cfg.LR)
	return lm
}

// Step runs one training step on a sequence (input ids -> next-token
// targets) and returns the mean cross-entropy loss.
func (lm *LM) Step(ids, targets []int) float64 {
	loss, dLogits, acts := lm.forward(ids, targets)
	lm.backward(dLogits, acts)
	lm.opt.Step()
	return loss
}

// Eval returns the loss without updating parameters.
func (lm *LM) Eval(ids, targets []int) float64 {
	loss, _, _ := lm.forward(ids, targets)
	return loss
}

type actsCache struct {
	resAttn []*tensor.Tensor
	resFFN  []*tensor.Tensor
}

// forward computes logits, loss, and the loss gradient w.r.t. logits.
func (lm *LM) forward(ids, targets []int) (float64, *tensor.Tensor, *actsCache) {
	x := lm.Embed.Forward(ids)
	acts := &actsCache{}
	for _, b := range lm.Blocks {
		a := b.attn.Forward(x)
		a.Add(x) // residual
		acts.resAttn = append(acts.resAttn, a)
		f := b.ffn.Forward(a)
		f.Add(a) // residual
		acts.resFFN = append(acts.resFFN, f)
		x = f
	}
	logits := lm.Head.Forward(x)
	logProbs := logits.Clone()
	tensor.LogSoftmaxRows(logProbs)

	s := len(ids)
	var loss float64
	dLogits := tensor.New(s, lm.Cfg.Vocab)
	inv := float32(1 / float64(s))
	for t := 0; t < s; t++ {
		loss -= float64(logProbs.At(t, targets[t]))
		// dlogits = softmax - onehot, averaged.
		lp := logProbs.Row(t)
		dst := dLogits.Row(t)
		for j := range dst {
			dst[j] = float32(math.Exp(float64(lp[j]))) * inv
		}
		dst[targets[t]] -= inv
	}
	return loss / float64(s), dLogits, acts
}

// backward propagates through the whole network.
func (lm *LM) backward(dLogits *tensor.Tensor, acts *actsCache) {
	dx := lm.Head.Backward(dLogits)
	for i := len(lm.Blocks) - 1; i >= 0; i-- {
		b := lm.Blocks[i]
		// FFN residual: dx flows to both branches.
		dFFN := b.ffn.Backward(dx)
		dFFN.Add(dx)
		// Attention residual.
		dAttn := b.attn.Backward(dFFN)
		dAttn.Add(dFFN)
		dx = dAttn
	}
	lm.Embed.Backward(dx)
}

// DroppedLastStep sums token drops across blocks in the latest forward.
func (lm *LM) DroppedLastStep() int {
	total := 0
	for _, b := range lm.Blocks {
		total += b.ffn.DroppedTokens()
	}
	return total
}

// LossCurve trains the model for iters steps on a fresh Markov corpus and
// returns the per-step training loss (the Fig. 15 series).
func LossCurve(cfg LMConfig, iters int) []float64 {
	lm := NewLM(cfg)
	corpus := NewMarkovCorpus(cfg.Vocab, cfg.Seed+99)
	losses := make([]float64, iters)
	for i := 0; i < iters; i++ {
		seq := corpus.Sequence(cfg.SeqLen + 1)
		losses[i] = lm.Step(seq[:cfg.SeqLen], seq[1:])
	}
	return losses
}

// Smooth returns a trailing moving average of xs over the given window,
// for plotting comparability.
func Smooth(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	var run float64
	for i, v := range xs {
		run += v
		if i >= window {
			run -= xs[i-window]
			out[i] = run / float64(window)
		} else {
			out[i] = run / float64(i+1)
		}
	}
	return out
}

// Mean returns the mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// String renders a config for logs.
func (cfg LMConfig) String() string {
	return fmt.Sprintf("LM{V=%d S=%d L=%d E=%d k=%d H=%d F=%d policy=%d}",
		cfg.Vocab, cfg.SeqLen, cfg.Layers, cfg.MoE.NumExperts, cfg.MoE.TopK,
		cfg.MoE.HModel, cfg.MoE.HFFN, cfg.Policy)
}
