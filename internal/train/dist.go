package train

// The simulated distributed trainer: full expert-parallel training steps
// (forward, mirrored backward, local optimizer update) executed on the
// simrt cluster, with PipelineOpts.OverlapChunks threaded through both
// passes so the entire step runs in chunked comm/compute-overlap mode.
// This is the end-to-end integration of the overlap subsystem — the
// per-layer forward wins (abl-overlap) only matter if the whole training
// step, backward included, keeps them (abl-overlap-bwd, Fig. 11's
// motivation at training time).
//
// Expert weights live on their owning rank (pure expert parallelism), so
// the weight gradients need no synchronisation. The replicated dense
// parameter (bias) is synchronised through the ZeRO path: a bucketed
// asynchronous gradient sync (internal/zero) issued from the backward's
// OnDWReady hook — all-reduce at stages 0/1, reduce-scatter at stage 2 —
// followed by a sharded optimizer step and, at stages 1/2, a parameter
// all-gather. The scalar loss all-reduce is likewise issued non-blocking
// before the backward so it overlaps instead of serialising the step.
// Loss trajectory and updated weights are bit-identical across chunk
// counts, ZeRO stages, and bucket sizes — the determinism guarantee of
// the chunked pipelines composed across passes and optimizer updates.

import (
	"fmt"
	"math"
	"sync"

	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
	"xmoe/internal/zero"
)

// DistConfig configures the simulated expert-parallel trainer.
type DistConfig struct {
	// MoE is the layer architecture.
	MoE moe.Config
	// World is the expert-parallel group size (one rank per GPU).
	World int
	// Tokens is the per-rank token count per step.
	Tokens int
	// LR is the SGD learning rate for the expert weights.
	LR float64
	// Seed drives weight init, inputs, and routing.
	Seed uint64
	// Transport selects the MoE exchange: "pft" (X-MoE padding-free),
	// "padded" (conventional baseline), or "rbd" (X-MoE hierarchical
	// redundancy-bypassing dispatch, forward and backward).
	Transport string
	// ZeROStage selects dense-parameter state sharding across the world
	// group: 0 replicates gradients and optimizer state (the classic
	// data-parallel step), 1 shards the optimizer state, 2 shards
	// optimizer state and gradients (reduce-scatter sync). Expert weights
	// are rank-local under pure EP and are never sharded here. Final
	// weights are bit-identical across stages and bucket sizes.
	ZeROStage int
	// BucketBytes caps each gradient-sync bucket's wire size; <= 0 syncs
	// the whole dense gradient in one bucket.
	BucketBytes int64
	// Momentum enables SGD momentum (velocity state), the optimizer state
	// that ZeRO stages 1/2 shard; 0 selects plain SGD with no state.
	Momentum float64
	// Mitigation enables straggler-aware expert routing: each step, the
	// previous step's observed per-rank times shift expert capacity away
	// from slow ranks (moe.RebalanceCapacity), clamped to ±Mitigation of
	// the uniform capacity so the loss trajectory stays within tolerance
	// of the unmitigated baseline. 0 disables it; it requires the pft or
	// rbd transport (the padded even all-to-all cannot carry uneven
	// capacities). Observations reset on Restore and elastic
	// rebuilds — the first step after either routes uniformly.
	Mitigation float64
	// Opts configures the pipelines; Numeric and SaveForBackward are
	// forced on (a numeric training step needs both), OverlapChunks and
	// DropPolicy are honoured in both passes.
	Opts moe.PipelineOpts
	// Machine is the simulated platform (default Frontier).
	Machine *topology.Machine
}

// Check validates the trainer configuration.
func (c DistConfig) Check() error {
	if c.Transport != "pft" && c.Transport != "padded" && c.Transport != "rbd" {
		return fmt.Errorf("train: unknown transport %q (want pft, padded, or rbd)", c.Transport)
	}
	if c.Transport == "rbd" {
		// The hierarchical backward rejects option combos the flat
		// transports tolerate (e.g. a CombineBytes override); surface the
		// typed *moe.OptionError here instead of a rank panic mid-step.
		if err := rbd.CheckOpts(c.Opts); err != nil {
			return fmt.Errorf("train: transport rbd: %w", err)
		}
	}
	if c.World < 1 || c.Tokens < 1 {
		return fmt.Errorf("train: world %d / tokens %d must be positive", c.World, c.Tokens)
	}
	if c.MoE.NumExperts%c.World != 0 {
		return fmt.Errorf("train: %d experts not divisible by world %d", c.MoE.NumExperts, c.World)
	}
	if c.ZeROStage < 0 || c.ZeROStage > 2 {
		return fmt.Errorf("train: ZeRO stage %d not in [0,2]", c.ZeROStage)
	}
	if c.BucketBytes < 0 {
		return fmt.Errorf("train: bucket bytes %d must be >= 0", c.BucketBytes)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("train: momentum %g not in [0,1)", c.Momentum)
	}
	if c.Mitigation < 0 || c.Mitigation > 1 {
		return fmt.Errorf("train: mitigation bound %g not in [0,1]", c.Mitigation)
	}
	if c.Mitigation > 0 && c.Transport == "padded" {
		return fmt.Errorf("train: transport padded: %w", &moe.OptionError{Opt: "Mitigation",
			Detail: "moe: the padded pipeline's even all-to-all requires uniform expert capacity; straggler mitigation needs the pft or rbd transport"})
	}
	return c.Opts.Check()
}

// DistTrainer runs simulated distributed training steps.
type DistTrainer struct {
	Cfg     DistConfig
	cluster *simrt.Cluster
	group   *simrt.Group
	// rbdDisp is the hierarchical dispatcher when Transport is "rbd"
	// (nil otherwise); rebuilt alongside the cluster on Shrink.
	rbdDisp *rbd.Dispatcher
	params  []*moe.ExpertParams // per rank, local experts
	// bias is the replicated dense parameter ([H] per rank, kept
	// bit-identical across ranks by an all-reduced gradient): the smallest
	// realistic stand-in for a model's non-expert weights, so checkpoints
	// cover both sharded and replicated state.
	bias [][]float32
	// dataRNG holds each rank slot's persistent input stream. Unlike a
	// per-step derived seed, a persistent stream makes RNG state part of
	// the training state — exactly what checkpoint/restore must capture
	// for a resumed run to be bit-identical to an uninterrupted one.
	dataRNG []*tensor.RNG
	step    int
	// zcfg is the gradient-sync/sharding geometry derived from the
	// config; owned[m] is member m's owned element ranges of the dense
	// gradient stream (the full [0,H) for every rank at stage 0).
	zcfg  zero.Config
	owned [][]zero.Range
	// Momentum (velocity) state, nil when Cfg.Momentum == 0. Expert
	// velocity is rank-local like the expert weights; bias velocity is
	// full-length at stage 0 and only this rank's owned elements at
	// stages 1/2 (the state ZeRO shards).
	velW1, velW2 [][]*tensor.Tensor
	biasVel      [][]float32
	// lastClocks holds the previous successful step's per-rank observed
	// times — the straggler signal Cfg.Mitigation rebalances expert
	// capacity on. Deliberately NOT part of the checkpoint: it is an
	// observation of the machine, not training state, and it is reset on
	// Restore and on elastic rebuilds so the first step after either
	// routes uniformly and re-learns.
	lastClocks []float64
}

// DistStepStats reports one simulated training step.
type DistStepStats struct {
	// Loss is the global mean-squared-error loss (all-reduced).
	Loss float64
	// WallClock is the simulated step time (slowest rank).
	WallClock float64
	// Breakdown is the per-stage charged time averaged over ranks; its
	// values sum to the average rank wall-clock even in overlap mode
	// (in-flight spans are recorded separately).
	Breakdown map[string]float64
	// CommInFlight is the total physical duration of the non-blocking
	// collectives, averaged over ranks (zero in blocking mode).
	CommInFlight float64
	// MaxImbalance is the largest |charged-span sum − clock| over ranks:
	// zero (to float rounding) when every clock advance was recorded, the
	// invariant that keeps per-stage breakdowns summing to wall-clock
	// even in overlap mode.
	MaxImbalance float64
	// Dropped counts token assignments removed by the drop policy.
	Dropped int
}

// NewDistTrainer initialises the cluster and each rank's expert weights.
func NewDistTrainer(cfg DistConfig) (*DistTrainer, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	if cfg.Machine == nil {
		cfg.Machine = topology.Frontier()
	}
	cfg.Opts.Numeric = true
	cfg.Opts.SaveForBackward = true
	cluster := simrt.NewCluster(cfg.Machine, cfg.World, cfg.Seed)
	cluster.Net.DisableCongestion = true
	t := &DistTrainer{
		Cfg:     cfg,
		cluster: cluster,
		group:   cluster.WorldGroup(),
		params:  make([]*moe.ExpertParams, cfg.World),
		bias:    make([][]float32, cfg.World),
		dataRNG: make([]*tensor.RNG, cfg.World),
	}
	if cfg.Transport == "rbd" {
		t.rbdDisp = rbd.NewDispatcher(cluster, t.group, cfg.MoE)
	}
	epr := cfg.MoE.NumExperts / cfg.World
	for rank := 0; rank < cfg.World; rank++ {
		t.params[rank] = moe.NewExpertParams(tensor.NewRNG(cfg.Seed+uint64(rank)*131),
			epr, cfg.MoE.HModel, cfg.MoE.HFFN)
		t.bias[rank] = make([]float32, cfg.MoE.HModel)
		t.dataRNG[rank] = tensor.NewRNG(dataSeed(cfg.Seed, rank))
	}
	t.initShardState()
	return t, nil
}

// initShardState derives the gradient-sync geometry and (re)allocates
// the sharded optimizer state for the current world size. Called from
// NewDistTrainer and Shrink; Restore refills the velocity values.
func (t *DistTrainer) initShardState() {
	cfg := t.Cfg
	h := cfg.MoE.HModel
	epr := cfg.MoE.NumExperts / cfg.World
	t.zcfg = zero.Config{Stage: cfg.ZeROStage, BucketBytes: cfg.BucketBytes}
	t.owned = zero.OwnedPartition(t.zcfg, cfg.World, []int{h}, 4)
	t.velW1, t.velW2, t.biasVel = nil, nil, nil
	if cfg.Momentum == 0 {
		return
	}
	t.velW1 = make([][]*tensor.Tensor, cfg.World)
	t.velW2 = make([][]*tensor.Tensor, cfg.World)
	t.biasVel = make([][]float32, cfg.World)
	for rank := 0; rank < cfg.World; rank++ {
		t.velW1[rank] = make([]*tensor.Tensor, epr)
		t.velW2[rank] = make([]*tensor.Tensor, epr)
		for le := 0; le < epr; le++ {
			t.velW1[rank][le] = tensor.New(h, cfg.MoE.HFFN)
			t.velW2[rank][le] = tensor.New(cfg.MoE.HFFN, h)
		}
		t.biasVel[rank] = make([]float32, zero.OwnedCount(t.owned[rank]))
	}
}

// StateBytes reports the persistent per-rank training-state footprint in
// bytes for one rank — parameters, owned gradient state, and optimizer
// (velocity) state — measured from the live buffers, the ground truth
// the memmodel ZeRO predictions are validated against. Gradient state
// counts the dense gradient elements this rank retains after sync (all H
// at stages 0/1, its owned shard at stage 2) plus the full rank-local
// expert gradients.
func (t *DistTrainer) StateBytes(rank int) (params, grads, opt int64) {
	h := int64(t.Cfg.MoE.HModel)
	expertElems := int64(0)
	for _, w := range t.params[rank].W1 {
		expertElems += int64(w.Len())
	}
	for _, w := range t.params[rank].W2 {
		expertElems += int64(w.Len())
	}
	params = 4 * (expertElems + h)
	denseGrad := h
	if t.zcfg.Stage >= 2 {
		denseGrad = int64(zero.OwnedCount(t.owned[rank]))
	}
	grads = 4 * (expertElems + denseGrad)
	if t.Cfg.Momentum != 0 {
		opt = 4 * expertElems // expert velocity, rank-local like the weights
		opt += 4 * int64(len(t.biasVel[rank]))
	}
	return params, grads, opt
}

// dataSeed derives rank slot r's input-stream seed. Streams belong to the
// slot, not the step: a rank surviving an elastic shrink keeps its stream.
func dataSeed(seed uint64, rank int) uint64 {
	return seed ^ (uint64(rank)*2654435761 + 0x9e3779b9)
}

// Params returns rank's expert weights (for inspection and tests).
func (t *DistTrainer) Params(rank int) *moe.ExpertParams { return t.params[rank] }

// Step runs one training step on every rank: forward (with state
// capture), MSE loss against a deterministic target, mirrored backward,
// and a local SGD update of the expert weights.
func (t *DistTrainer) Step() (DistStepStats, error) {
	cfg := t.Cfg
	s, h := cfg.Tokens, cfg.MoE.HModel
	t.step++

	// Straggler mitigation: rebalance expert capacity from the previous
	// step's observed per-rank times. The vector is computed once here,
	// before the SPMD bodies launch, so every rank routes from the same
	// deterministic capacities; nil (no observations yet, or all ranks
	// equally fast) keeps uniform routing.
	fwdOpts := cfg.Opts
	if cfg.Mitigation > 0 {
		if caps := moe.RebalanceCapacity(cfg.MoE, s, cfg.World, t.lastClocks, cfg.Mitigation); caps != nil {
			fwdOpts.CapacityByExpert = caps
		}
	}

	var mu sync.Mutex
	stats := DistStepStats{}
	recs := make([]*trace.Recorder, cfg.World)
	ranks, err := t.cluster.RunCollect(func(r *simrt.Rank) error {
		idx := t.group.IndexOf(r.ID)
		// Deterministic per-rank input streams, consumed identically by
		// every transport and chunk count, so chunked and blocking runs
		// see identical data.
		rng := t.dataRNG[idx]
		x := tensor.Randn(rng, 0.5, s, h)
		target := tensor.Randn(rng, 0.5, s, h)
		routing := moe.SyntheticRouting(rng, s, cfg.MoE.NumExperts, cfg.MoE.TopK, 0.6)
		params := t.params[idx]
		bias := t.bias[idx]

		var out *tensor.Tensor
		var dropped int
		var bwd func(dOut *tensor.Tensor, opts moe.PipelineOpts) moe.BackwardResult
		switch cfg.Transport {
		case "pft":
			res := moe.PFTForward(r, t.group, cfg.MoE, s, x, routing, params, fwdOpts)
			out, dropped = res.Output, res.Dropped
			bwd = func(dOut *tensor.Tensor, opts moe.PipelineOpts) moe.BackwardResult {
				return moe.PFTBackward(r, t.group, cfg.MoE, res.State, dOut, params, opts)
			}
		case "padded":
			res := moe.PaddedForward(r, t.group, cfg.MoE, s, x, routing, params, fwdOpts)
			out, dropped = res.Output, res.Dropped
			bwd = func(dOut *tensor.Tensor, opts moe.PipelineOpts) moe.BackwardResult {
				return moe.PaddedBackward(r, t.group, cfg.MoE, res.PaddedState, dOut, params, opts)
			}
		case "rbd":
			// The pilot draws come from the slot's persistent data stream, so
			// pilot selection is part of the checkpointed training state: a
			// restored run replays the identical pilots with no extra fields.
			res := rbd.Forward(r, t.rbdDisp, cfg.MoE, s, x, routing, params, rng, fwdOpts)
			out, dropped = res.Output, res.Dropped
			bwd = func(dOut *tensor.Tensor, opts moe.PipelineOpts) moe.BackwardResult {
				return rbd.Backward(r, t.rbdDisp, cfg.MoE, res.State, dOut, params, opts)
			}
		}

		// MSE loss (over the biased output) and its gradient.
		var localLoss float64
		dOut := tensor.New(s, h)
		inv := float32(2 / float64(s*h))
		for i, v := range out.Data {
			d := v + bias[i%h] - target.Data[i]
			localLoss += float64(d) * float64(d)
			dOut.Data[i] = d * inv
		}
		localLoss /= float64(s * h)

		// The bias gradient is known before the backward runs (it is
		// dOut's column sum), so the dense sync can ride the backward:
		// the scalar loss all-reduce is issued non-blocking here, and the
		// bucketed gradient sync is issued from the backward's OnDWReady
		// hook — both overlap the backward compute instead of serialising
		// after it. Expert weights are rank-local under pure EP, so the
		// expert gradients need no synchronisation.
		gradBias := make([]float32, h)
		for i, g := range dOut.Data {
			gradBias[i%h] += g
		}
		lossH := r.AllReduceAsync(t.group, "loss_allreduce", []float32{float32(localLoss)}, 4)
		syncer := zero.NewSyncer(r, t.group, "grad_sync", t.zcfg)
		bopts := fwdOpts
		bopts.OnDWReady = func() {
			syncer.Add(gradBias, int64(4*h))
			syncer.Flush()
		}

		grads := bwd(dOut, bopts)

		shards := syncer.Wait()
		lossSum := lossH.Wait()[0].Data

		// Local SGD on the expert weights (with optional rank-local
		// momentum), sharded SGD on the bias: each rank steps the dense
		// elements it owns — everything at stage 0, its ZeRO shard at
		// stages 1/2 — applying the identical reduced gradient, so the
		// dense parameter stays bit-identical across ranks and stages.
		lr := float32(cfg.LR)
		mom := float32(cfg.Momentum)
		for le := range params.W1 {
			if t.velW1 != nil {
				vel1, vel2 := t.velW1[idx][le], t.velW2[idx][le]
				for j, g := range grads.DW1[le].Data {
					v := mom*vel1.Data[j] + g
					vel1.Data[j] = v
					params.W1[le].Data[j] -= lr * v
				}
				for j, g := range grads.DW2[le].Data {
					v := mom*vel2.Data[j] + g
					vel2.Data[j] = v
					params.W2[le].Data[j] -= lr * v
				}
			} else {
				for j, g := range grads.DW1[le].Data {
					params.W1[le].Data[j] -= lr * g
				}
				for j, g := range grads.DW2[le].Data {
					params.W2[le].Data[j] -= lr * g
				}
			}
		}
		invW := float32(1 / float64(cfg.World))
		var bvel []float32
		if t.biasVel != nil {
			bvel = t.biasVel[idx]
		}
		velOff := 0
		for _, sh := range shards {
			for i, gj := range sh.Data {
				j := sh.Lo + i
				if bvel != nil {
					v := mom*bvel[velOff] + gj*invW
					bvel[velOff] = v
					bias[j] -= lr * v
				} else {
					bias[j] -= lr * gj * invW
				}
				velOff++
			}
		}
		if t.zcfg.Stage >= 1 {
			// Owners publish their updated shards; every rank reassembles
			// the full bias from the gathered parts. The send buffer
			// crosses a collective and must be freshly allocated.
			ownedVals := make([]float32, 0, zero.OwnedCount(t.owned[idx]))
			for _, rg := range t.owned[idx] {
				ownedVals = append(ownedVals, bias[rg.Lo:rg.Hi]...)
			}
			parts := r.AllGather(t.group, "param_allgather",
				simrt.Part{Data: ownedVals, Bytes: int64(4 * len(ownedVals))})
			for m, p := range parts {
				off := 0
				for _, rg := range t.owned[m] {
					copy(bias[rg.Lo:rg.Hi], p.Data[off:off+rg.Len()])
					off += rg.Len()
				}
			}
		}

		mu.Lock()
		stats.Loss = float64(lossSum[0]) / float64(cfg.World)
		stats.Dropped += dropped
		recs[idx] = r.Trace
		mu.Unlock()
		return nil
	})
	// Per-rank compute times, read after the Run joins. Final clocks are
	// equalised by the BSP rendezvous, but Busy keeps per-rank skew: the
	// world group is the rank-ID order, so busy[i] is rank slot i's
	// observed compute time — the mitigation's straggler signal.
	busy := simrt.BusyTimes(ranks)
	if err != nil {
		return DistStepStats{WallClock: simrt.MaxClock(ranks)}, err
	}
	stats.WallClock = simrt.MaxClock(ranks)
	t.lastClocks = busy
	stats.Breakdown = trace.Merge(recs, true)
	for i, rec := range recs {
		var inFlight float64
		for _, d := range rec.OverlapBreakdown() {
			inFlight += d
		}
		stats.CommInFlight += inFlight / float64(len(recs))
		if im := math.Abs(rec.ChargedTotal() - ranks[i].Clock); im > stats.MaxImbalance {
			stats.MaxImbalance = im
		}
	}
	return stats, nil
}
