package train

// The simulated distributed trainer: full expert-parallel training steps
// (forward, mirrored backward, local optimizer update) executed on the
// simrt cluster, with PipelineOpts.OverlapChunks threaded through both
// passes so the entire step runs in chunked comm/compute-overlap mode.
// This is the end-to-end integration of the overlap subsystem — the
// per-layer forward wins (abl-overlap) only matter if the whole training
// step, backward included, keeps them (abl-overlap-bwd, Fig. 11's
// motivation at training time).
//
// Expert weights live on their owning rank (pure expert parallelism), so
// the weight gradients need no synchronisation; the scalar loss is
// all-reduced for reporting, exercising a blocking collective between the
// overlapped steps exactly as a training loop would. The chunked step's
// loss trajectory and updated weights are bit-identical to the blocking
// step's for any chunk count — the determinism guarantee of the chunked
// pipelines composed across passes and optimizer updates.

import (
	"fmt"
	"math"
	"sync"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
)

// DistConfig configures the simulated expert-parallel trainer.
type DistConfig struct {
	// MoE is the layer architecture.
	MoE moe.Config
	// World is the expert-parallel group size (one rank per GPU).
	World int
	// Tokens is the per-rank token count per step.
	Tokens int
	// LR is the SGD learning rate for the expert weights.
	LR float64
	// Seed drives weight init, inputs, and routing.
	Seed uint64
	// Transport selects the MoE exchange: "pft" (X-MoE padding-free) or
	// "padded" (conventional baseline).
	Transport string
	// Opts configures the pipelines; Numeric and SaveForBackward are
	// forced on (a numeric training step needs both), OverlapChunks and
	// DropPolicy are honoured in both passes.
	Opts moe.PipelineOpts
	// Machine is the simulated platform (default Frontier).
	Machine *topology.Machine
}

// Check validates the trainer configuration.
func (c DistConfig) Check() error {
	if c.Transport != "pft" && c.Transport != "padded" {
		return fmt.Errorf("train: unknown transport %q (want pft or padded)", c.Transport)
	}
	if c.World < 1 || c.Tokens < 1 {
		return fmt.Errorf("train: world %d / tokens %d must be positive", c.World, c.Tokens)
	}
	if c.MoE.NumExperts%c.World != 0 {
		return fmt.Errorf("train: %d experts not divisible by world %d", c.MoE.NumExperts, c.World)
	}
	return c.Opts.Check()
}

// DistTrainer runs simulated distributed training steps.
type DistTrainer struct {
	Cfg     DistConfig
	cluster *simrt.Cluster
	group   *simrt.Group
	params  []*moe.ExpertParams // per rank, local experts
	// bias is the replicated dense parameter ([H] per rank, kept
	// bit-identical across ranks by an all-reduced gradient): the smallest
	// realistic stand-in for a model's non-expert weights, so checkpoints
	// cover both sharded and replicated state.
	bias [][]float32
	// dataRNG holds each rank slot's persistent input stream. Unlike a
	// per-step derived seed, a persistent stream makes RNG state part of
	// the training state — exactly what checkpoint/restore must capture
	// for a resumed run to be bit-identical to an uninterrupted one.
	dataRNG []*tensor.RNG
	step    int
}

// DistStepStats reports one simulated training step.
type DistStepStats struct {
	// Loss is the global mean-squared-error loss (all-reduced).
	Loss float64
	// WallClock is the simulated step time (slowest rank).
	WallClock float64
	// Breakdown is the per-stage charged time averaged over ranks; its
	// values sum to the average rank wall-clock even in overlap mode
	// (in-flight spans are recorded separately).
	Breakdown map[string]float64
	// CommInFlight is the total physical duration of the non-blocking
	// collectives, averaged over ranks (zero in blocking mode).
	CommInFlight float64
	// MaxImbalance is the largest |charged-span sum − clock| over ranks:
	// zero (to float rounding) when every clock advance was recorded, the
	// invariant that keeps per-stage breakdowns summing to wall-clock
	// even in overlap mode.
	MaxImbalance float64
	// Dropped counts token assignments removed by the drop policy.
	Dropped int
}

// NewDistTrainer initialises the cluster and each rank's expert weights.
func NewDistTrainer(cfg DistConfig) (*DistTrainer, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	if cfg.Machine == nil {
		cfg.Machine = topology.Frontier()
	}
	cfg.Opts.Numeric = true
	cfg.Opts.SaveForBackward = true
	cluster := simrt.NewCluster(cfg.Machine, cfg.World, cfg.Seed)
	cluster.Net.DisableCongestion = true
	t := &DistTrainer{
		Cfg:     cfg,
		cluster: cluster,
		group:   cluster.WorldGroup(),
		params:  make([]*moe.ExpertParams, cfg.World),
		bias:    make([][]float32, cfg.World),
		dataRNG: make([]*tensor.RNG, cfg.World),
	}
	epr := cfg.MoE.NumExperts / cfg.World
	for rank := 0; rank < cfg.World; rank++ {
		t.params[rank] = moe.NewExpertParams(tensor.NewRNG(cfg.Seed+uint64(rank)*131),
			epr, cfg.MoE.HModel, cfg.MoE.HFFN)
		t.bias[rank] = make([]float32, cfg.MoE.HModel)
		t.dataRNG[rank] = tensor.NewRNG(dataSeed(cfg.Seed, rank))
	}
	return t, nil
}

// dataSeed derives rank slot r's input-stream seed. Streams belong to the
// slot, not the step: a rank surviving an elastic shrink keeps its stream.
func dataSeed(seed uint64, rank int) uint64 {
	return seed ^ (uint64(rank)*2654435761 + 0x9e3779b9)
}

// Params returns rank's expert weights (for inspection and tests).
func (t *DistTrainer) Params(rank int) *moe.ExpertParams { return t.params[rank] }

// Step runs one training step on every rank: forward (with state
// capture), MSE loss against a deterministic target, mirrored backward,
// and a local SGD update of the expert weights.
func (t *DistTrainer) Step() (DistStepStats, error) {
	cfg := t.Cfg
	s, h := cfg.Tokens, cfg.MoE.HModel
	t.step++

	var mu sync.Mutex
	stats := DistStepStats{}
	recs := make([]*trace.Recorder, cfg.World)
	clocks := make([]float64, cfg.World)
	err := t.cluster.Run(func(r *simrt.Rank) error {
		idx := t.group.IndexOf(r.ID)
		// Record the clock even when the step aborts mid-collective: a
		// failed attempt's partial wall time is real lost work and the
		// fault-tolerant loop charges it against goodput.
		defer func() {
			mu.Lock()
			clocks[idx] = r.Clock
			mu.Unlock()
		}()
		// Deterministic per-rank input streams, consumed identically by
		// every transport and chunk count, so chunked and blocking runs
		// see identical data.
		rng := t.dataRNG[idx]
		x := tensor.Randn(rng, 0.5, s, h)
		target := tensor.Randn(rng, 0.5, s, h)
		routing := moe.SyntheticRouting(rng, s, cfg.MoE.NumExperts, cfg.MoE.TopK, 0.6)
		params := t.params[idx]
		bias := t.bias[idx]

		var out *tensor.Tensor
		var dropped int
		var bwd func(dOut *tensor.Tensor) moe.BackwardResult
		switch cfg.Transport {
		case "pft":
			res := moe.PFTForward(r, t.group, cfg.MoE, s, x, routing, params, cfg.Opts)
			out, dropped = res.Output, res.Dropped
			bwd = func(dOut *tensor.Tensor) moe.BackwardResult {
				return moe.PFTBackward(r, t.group, cfg.MoE, res.State, dOut, params, cfg.Opts)
			}
		case "padded":
			res := moe.PaddedForward(r, t.group, cfg.MoE, s, x, routing, params, cfg.Opts)
			out, dropped = res.Output, res.Dropped
			bwd = func(dOut *tensor.Tensor) moe.BackwardResult {
				return moe.PaddedBackward(r, t.group, cfg.MoE, res.PaddedState, dOut, params, cfg.Opts)
			}
		}

		// MSE loss (over the biased output) and its gradient.
		var localLoss float64
		dOut := tensor.New(s, h)
		inv := float32(2 / float64(s*h))
		for i, v := range out.Data {
			d := v + bias[i%h] - target.Data[i]
			localLoss += float64(d) * float64(d)
			dOut.Data[i] = d * inv
		}
		localLoss /= float64(s * h)

		grads := bwd(dOut)

		// Dense all-reduce: the scalar loss (reporting) rides with the
		// replicated bias gradient, bucketed into one collective as a
		// training loop would. Expert weights are rank-local under pure
		// EP, so the expert gradients need no synchronisation.
		dense := make([]float32, 1+h)
		dense[0] = float32(localLoss)
		for i, g := range dOut.Data {
			dense[1+i%h] += g
		}
		sum := r.AllReduce(t.group, "dense_allreduce", dense, int64(4*(1+h)))

		// Local SGD on the expert weights, replicated SGD on the bias
		// (every rank applies the identical all-reduced gradient, keeping
		// the dense parameter bit-identical across ranks).
		lr := float32(cfg.LR)
		for le := range params.W1 {
			for j, g := range grads.DW1[le].Data {
				params.W1[le].Data[j] -= lr * g
			}
			for j, g := range grads.DW2[le].Data {
				params.W2[le].Data[j] -= lr * g
			}
		}
		invW := float32(1 / float64(cfg.World))
		for j := range bias {
			bias[j] -= lr * sum[1+j] * invW
		}

		mu.Lock()
		stats.Loss = float64(sum[0]) / float64(cfg.World)
		stats.Dropped += dropped
		recs[idx] = r.Trace
		mu.Unlock()
		return nil
	})
	if err != nil {
		partial := DistStepStats{}
		for _, c := range clocks {
			if c > partial.WallClock {
				partial.WallClock = c
			}
		}
		return partial, err
	}
	for _, c := range clocks {
		if c > stats.WallClock {
			stats.WallClock = c
		}
	}
	stats.Breakdown = trace.Merge(recs, true)
	for i, rec := range recs {
		var inFlight float64
		for _, d := range rec.OverlapBreakdown() {
			inFlight += d
		}
		stats.CommInFlight += inFlight / float64(len(recs))
		if im := math.Abs(rec.ChargedTotal() - clocks[i]); im > stats.MaxImbalance {
			stats.MaxImbalance = im
		}
	}
	return stats, nil
}
