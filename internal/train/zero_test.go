package train

import (
	"math"
	"testing"

	"xmoe/internal/memmodel"
	"xmoe/internal/zero"
)

// zeroConfig is distTrainerConfig plus ZeRO/momentum knobs.
func zeroConfig(transport string, stage int, bucketBytes int64, momentum float64) DistConfig {
	cfg := distTrainerConfig(transport, 1)
	cfg.ZeROStage = stage
	cfg.BucketBytes = bucketBytes
	cfg.Momentum = momentum
	return cfg
}

// runZeroSteps trains n steps under the given config and returns the
// loss trajectory and trainer.
func runZeroSteps(t *testing.T, cfg DistConfig, n int) ([]float64, *DistTrainer) {
	t.Helper()
	tr, err := NewDistTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, n)
	for i := 0; i < n; i++ {
		stats, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		losses[i] = stats.Loss
	}
	return losses, tr
}

// assertSameTraining asserts two trainers reached bit-identical state:
// loss trajectories, expert weights, and the dense bias on every rank.
func assertSameTraining(t *testing.T, label string, lossA, lossB []float64, a, b *DistTrainer) {
	t.Helper()
	for i := range lossA {
		if lossA[i] != lossB[i] {
			t.Fatalf("%s: step %d loss %v != %v", label, i, lossB[i], lossA[i])
		}
	}
	for rank := 0; rank < a.Cfg.World; rank++ {
		pa, pb := a.Params(rank), b.Params(rank)
		for le := range pa.W1 {
			for j := range pa.W1[le].Data {
				if math.Float32bits(pa.W1[le].Data[j]) != math.Float32bits(pb.W1[le].Data[j]) {
					t.Fatalf("%s: rank %d W1[%d][%d] diverges", label, rank, le, j)
				}
			}
			for j := range pa.W2[le].Data {
				if math.Float32bits(pa.W2[le].Data[j]) != math.Float32bits(pb.W2[le].Data[j]) {
					t.Fatalf("%s: rank %d W2[%d][%d] diverges", label, rank, le, j)
				}
			}
		}
		for j := range a.bias[rank] {
			if math.Float32bits(a.bias[rank][j]) != math.Float32bits(b.bias[rank][j]) {
				t.Fatalf("%s: rank %d bias[%d] diverges", label, rank, j)
			}
		}
	}
}

// TestDistTrainerZeROBitIdentical is the tentpole determinism guarantee:
// for both transports, every ZeRO stage and any bucket size — including
// single-element buckets — the loss trajectory and final weights are
// bit-identical to the stage-0 unbucketed baseline, with momentum state
// exercised so the sharded optimizer path is covered.
func TestDistTrainerZeROBitIdentical(t *testing.T) {
	const steps = 3
	const momentum = 0.9
	for _, transport := range []string{"pft", "padded"} {
		baseLoss, baseTr := runZeroSteps(t, zeroConfig(transport, 0, 0, momentum), steps)
		for _, stage := range []int{0, 1, 2} {
			// 48-byte dense gradient stream (H=12 fp32): 0 = one bucket,
			// 16 = 4-element buckets, 4 = per-element buckets.
			for _, bucket := range []int64{0, 16, 4} {
				if stage == 0 && bucket == 0 {
					continue
				}
				loss, tr := runZeroSteps(t, zeroConfig(transport, stage, bucket, momentum), steps)
				assertSameTraining(t, transport+"/zero", baseLoss, loss, baseTr, tr)
			}
		}
	}
}

// TestDistTrainerZeROBiasConsistentAcrossRanks pins the parameter
// all-gather: after sharded steps, every rank holds the identical dense
// parameter.
func TestDistTrainerZeROBiasConsistentAcrossRanks(t *testing.T) {
	_, tr := runZeroSteps(t, zeroConfig("pft", 2, 16, 0.9), 3)
	for rank := 1; rank < tr.Cfg.World; rank++ {
		for j := range tr.bias[0] {
			if math.Float32bits(tr.bias[0][j]) != math.Float32bits(tr.bias[rank][j]) {
				t.Fatalf("bias[%d] differs between rank 0 and rank %d", j, rank)
			}
		}
	}
}

// TestDistTrainerZeROOverlapAccounting checks the satellite bugfix: the
// dense sync no longer blocks serially — the step records in-flight
// collective time, and the per-stage breakdown still sums to wall-clock.
func TestDistTrainerZeROOverlapAccounting(t *testing.T) {
	tr, err := NewDistTrainer(zeroConfig("pft", 2, 16, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Step()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CommInFlight <= 0 {
		t.Fatal("async loss/gradient sync recorded no in-flight time")
	}
	if stats.MaxImbalance > 1e-9 {
		t.Fatalf("breakdown imbalance %.3e: clock advances escaped the trace", stats.MaxImbalance)
	}
	var sum float64
	for _, d := range stats.Breakdown {
		sum += d
	}
	if sum <= 0 || sum > stats.WallClock*(1+1e-9) {
		t.Fatalf("breakdown sums to %.9f, wall-clock %.9f", sum, stats.WallClock)
	}
}

// TestDistTrainerZeROCheckpointReshard trains under ZeRO-2 with small
// buckets, checkpoints mid-run, restores onto a stage-0 trainer (a
// different sharding geometry), and finishes: the result must be
// bit-identical to the uninterrupted stage-2 run — checkpoints are
// stage- and bucket-portable.
func TestDistTrainerZeROCheckpointReshard(t *testing.T) {
	const momentum = 0.9
	refLoss, refTr := runZeroSteps(t, zeroConfig("pft", 2, 16, momentum), 4)

	tr, err := NewDistTrainer(zeroConfig("pft", 2, 16, momentum))
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for i := 0; i < 2; i++ {
		stats, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, stats.Loss)
	}
	ck := tr.Checkpoint()

	resharded, err := NewDistTrainer(zeroConfig("pft", 0, 0, momentum))
	if err != nil {
		t.Fatal(err)
	}
	if err := resharded.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		stats, err := resharded.Step()
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, stats.Loss)
	}
	assertSameTraining(t, "ckpt-reshard", refLoss, losses, refTr, resharded)
}

// TestDistTrainerZeROShrinkReshards checks elastic recovery composes
// with sharded state: shrinking the world rebuilds the ownership
// partition and velocity shards at the new size, and a restored step
// runs cleanly.
func TestDistTrainerZeROShrinkReshards(t *testing.T) {
	tr, err := NewDistTrainer(zeroConfig("pft", 2, 16, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	ck := tr.Checkpoint()
	if err := tr.Shrink(2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.owned), 2; got != want {
		t.Fatalf("owned partition has %d members after shrink, want %d", got, want)
	}
	total := 0
	for _, ranges := range tr.owned {
		total += zero.OwnedCount(ranges)
	}
	if total != tr.Cfg.MoE.HModel {
		t.Fatalf("owned partition covers %d elements, want %d", total, tr.Cfg.MoE.HModel)
	}
	for rank := 0; rank < 2; rank++ {
		if got, want := len(tr.biasVel[rank]), zero.OwnedCount(tr.owned[rank]); got != want {
			t.Fatalf("rank %d velocity has %d elements, owns %d", rank, got, want)
		}
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestDistTrainerStateBytesMatchMemModel validates the memmodel ZeRO
// predictions against the trainer's actual buffers (the acceptance
// criterion: within 1%). The trainer's families map onto ZeROStates as
// expert weights with expert-DP 1 (pure EP: never sharded) plus the
// dense bias sharded over the world group, all fp32.
func TestDistTrainerStateBytesMatchMemModel(t *testing.T) {
	for _, momentum := range []float64{0, 0.9} {
		for _, stage := range []int{0, 1, 2} {
			for _, bucket := range []int64{0, 16} { // 16B = 4 elems: divides H=12 per bucket evenly over world 4
				cfg := zeroConfig("pft", stage, bucket, momentum)
				tr, err := NewDistTrainer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := tr.Step(); err != nil {
					t.Fatal(err)
				}
				h := int64(cfg.MoE.HModel)
				epr := cfg.MoE.NumExperts / cfg.World
				expertElems := int64(2 * epr * cfg.MoE.HModel * cfg.MoE.HFFN)
				var bytesOpt int64
				if momentum != 0 {
					bytesOpt = 4
				}
				expert := memmodel.ZeROStates(expertElems, 1, stage, 4, 4, bytesOpt)
				dense := memmodel.ZeROStates(h, cfg.World, stage, 4, 4, bytesOpt)
				want := expert.Add(dense)
				for rank := 0; rank < cfg.World; rank++ {
					params, grads, opt := tr.StateBytes(rank)
					got := memmodel.StateBytes{Params: params, Grads: grads, Opt: opt}
					for _, pair := range []struct {
						name      string
						got, want int64
					}{
						{"params", got.Params, want.Params},
						{"grads", got.Grads, want.Grads},
						{"opt", got.Opt, want.Opt},
					} {
						if !within1pct(pair.got, pair.want) {
							t.Fatalf("mom=%v stage=%d bucket=%d rank=%d: %s bytes %d, memmodel predicts %d",
								momentum, stage, bucket, rank, pair.name, pair.got, pair.want)
						}
					}
				}
			}
		}
	}
}

func within1pct(got, want int64) bool {
	if want == 0 {
		return got == 0
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= 0.01*float64(want)
}
