package train

import (
	"testing"

	"xmoe/internal/moe"
	"xmoe/internal/tensor"
)

// BenchmarkMoEFFNForwardBackward measures the numeric training stack's MoE
// block: router GEMM + softmax/top-k, PFT build, gather dispatch,
// sequential-GEMM experts, scatter combine, and the full hand-written
// backward — the steady-state inner loop of the loss-validation runs.
func BenchmarkMoEFFNForwardBackward(b *testing.B) {
	cfg := moe.Config{
		NumExperts:     8,
		TopK:           2,
		HModel:         64,
		HFFN:           32,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	rng := tensor.NewRNG(11)
	ffn := NewMoEFFN(rng, cfg, moe.DropByCapacityWeight)
	x := tensor.Randn(rng, 1, 128, cfg.HModel)
	dy := tensor.New(128, cfg.HModel)
	dy.Fill(1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ffn.Forward(x)
		ffn.Backward(dy)
		for _, p := range ffn.Params() {
			p.ZeroGrad()
		}
	}
}

// BenchmarkAttentionForwardBackward measures the dense attention block.
func BenchmarkAttentionForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(12)
	att := NewAttention(rng, 64)
	x := tensor.Randn(rng, 1, 128, 64)
	dy := tensor.New(128, 64)
	dy.Fill(1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		att.Forward(x)
		att.Backward(dy)
		for _, p := range att.Params() {
			p.ZeroGrad()
		}
	}
}
