package train

// Checkpoint/restore for the distributed trainer. A checkpoint is a full
// snapshot of training state — expert weights in global expert order,
// the replicated dense bias, the step counter, every rank slot's data-RNG
// state, and the network simulator's RNG state — so a restored run is
// bit-identical to one that never stopped. Weights are stored globally
// (not per-rank) so the same checkpoint restores onto a different world
// size: elastic recovery reshards the surviving experts instead of
// demanding the dead rank back.

import (
	"fmt"

	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Checkpoint is a deep snapshot of DistTrainer state.
type Checkpoint struct {
	// Step is the number of completed training steps.
	Step int
	// W1, W2 hold every expert's weights in global expert order
	// (global expert e = rank*expertsPerRank + local index).
	W1, W2 []*tensor.Tensor
	// Bias is the replicated dense parameter (identical on every rank).
	Bias []float32
	// DataRNG holds each rank slot's input-stream state at capture time.
	DataRNG []tensor.RNGState
	// NetRNG is the network simulator's RNG state.
	NetRNG uint64
	// VelW1, VelW2 hold the expert momentum state in global expert order
	// and BiasVel the full dense velocity vector (reassembled from the
	// per-rank ZeRO shards at capture). All nil when the trainer runs
	// without momentum; Restore reshards them onto the current world and
	// ZeRO geometry, so a checkpoint taken at one stage/bucket size
	// restores onto any other.
	VelW1, VelW2 []*tensor.Tensor
	BiasVel      []float32
}

// Checkpoint captures the trainer's full training state. Call it only
// between steps (never while Step is running).
func (t *DistTrainer) Checkpoint() *Checkpoint {
	e := t.Cfg.MoE.NumExperts
	epr := e / t.Cfg.World
	ck := &Checkpoint{
		Step:    t.step,
		W1:      make([]*tensor.Tensor, e),
		W2:      make([]*tensor.Tensor, e),
		Bias:    append([]float32(nil), t.bias[0]...),
		DataRNG: make([]tensor.RNGState, t.Cfg.World),
		NetRNG:  t.cluster.Net.RNGState(),
	}
	for rank := 0; rank < t.Cfg.World; rank++ {
		for le := 0; le < epr; le++ {
			ck.W1[rank*epr+le] = t.params[rank].W1[le].Clone()
			ck.W2[rank*epr+le] = t.params[rank].W2[le].Clone()
		}
		ck.DataRNG[rank] = t.dataRNG[rank].State()
	}
	if t.velW1 != nil {
		ck.VelW1 = make([]*tensor.Tensor, e)
		ck.VelW2 = make([]*tensor.Tensor, e)
		ck.BiasVel = make([]float32, t.Cfg.MoE.HModel)
		for rank := 0; rank < t.Cfg.World; rank++ {
			for le := 0; le < epr; le++ {
				ck.VelW1[rank*epr+le] = t.velW1[rank][le].Clone()
				ck.VelW2[rank*epr+le] = t.velW2[rank][le].Clone()
			}
			// Owners hold the authoritative dense velocity shards; scatter
			// them back to global positions (stage 0: every rank holds the
			// identical full vector, rank 0's copy wins harmlessly).
			off := 0
			for _, rg := range t.owned[rank] {
				copy(ck.BiasVel[rg.Lo:rg.Hi], t.biasVel[rank][off:off+rg.Len()])
				off += rg.Len()
			}
		}
	}
	return ck
}

// Restore rolls the trainer back to ck, resharding the global expert
// weights onto the trainer's current world size. The world may be smaller
// than at capture time (elastic recovery after Shrink): surviving rank
// slots keep their data streams, and slots beyond the new world are
// simply retired with their state still in the checkpoint. The world may
// also be larger (hot-spare regrow after Grow): slots the checkpoint
// covers resume their captured streams, and slots beyond the capture —
// spares promoted into a world wider than the snapshot's — restart their
// streams from the slot seed, the same deterministic dataSeed(seed, slot)
// a fresh trainer would give them. Streams belong to slots either way,
// so the same checkpoint + world transition always replays identically.
// Straggler observations (the mitigation's capacity-rebalance input) are
// reset: the first restored step routes uniformly and re-learns.
func (t *DistTrainer) Restore(ck *Checkpoint) error {
	e := t.Cfg.MoE.NumExperts
	if len(ck.W1) != e || len(ck.W2) != e {
		return fmt.Errorf("train: checkpoint holds %d experts, trainer wants %d", len(ck.W1), e)
	}
	if t.velW1 != nil && ck.VelW1 != nil && len(ck.VelW1) != e {
		return fmt.Errorf("train: checkpoint holds %d expert velocities, trainer wants %d", len(ck.VelW1), e)
	}
	epr := e / t.Cfg.World
	for rank := 0; rank < t.Cfg.World; rank++ {
		for le := 0; le < epr; le++ {
			t.params[rank].W1[le].Copy(ck.W1[rank*epr+le])
			t.params[rank].W2[le].Copy(ck.W2[rank*epr+le])
		}
		copy(t.bias[rank], ck.Bias)
		if rank < len(ck.DataRNG) {
			t.dataRNG[rank].SetState(ck.DataRNG[rank])
		} else {
			t.dataRNG[rank] = tensor.NewRNG(dataSeed(t.Cfg.Seed, rank))
		}
	}
	t.lastClocks = nil
	if t.velW1 != nil {
		// Reshard the momentum state onto the current world and ZeRO
		// geometry; a checkpoint without velocity restores to zeros (a
		// cold optimizer, matching a freshly built trainer).
		for rank := 0; rank < t.Cfg.World; rank++ {
			for le := 0; le < epr; le++ {
				if ck.VelW1 != nil {
					t.velW1[rank][le].Copy(ck.VelW1[rank*epr+le])
					t.velW2[rank][le].Copy(ck.VelW2[rank*epr+le])
				} else {
					t.velW1[rank][le].Zero()
					t.velW2[rank][le].Zero()
				}
			}
			bv := t.biasVel[rank]
			for i := range bv {
				bv[i] = 0
			}
			if ck.BiasVel != nil {
				off := 0
				for _, rg := range t.owned[rank] {
					copy(bv[off:off+rg.Len()], ck.BiasVel[rg.Lo:rg.Hi])
					off += rg.Len()
				}
			}
		}
	}
	t.step = ck.Step
	t.cluster.Net.SetRNGState(ck.NetRNG)
	return nil
}

// rebuild reconstructs the trainer for a new world size: a fresh cluster
// (a failed Run poisons the old one), fresh per-rank containers seeded by
// slot, and a world group over the new ranks. Straggler observations are
// dropped — they described the old world. Callers (Shrink, Grow) have
// validated newWorld and follow up with Restore to reshard a checkpoint
// onto the new layout.
func (t *DistTrainer) rebuild(newWorld int) {
	cfg := t.Cfg
	cfg.World = newWorld
	cluster := simrt.NewCluster(cfg.Machine, cfg.World, cfg.Seed)
	cluster.Net.DisableCongestion = true
	cluster.Inject = t.cluster.Inject
	t.Cfg = cfg
	t.cluster = cluster
	t.group = cluster.WorldGroup()
	if cfg.Transport == "rbd" {
		t.rbdDisp = rbd.NewDispatcher(cluster, t.group, cfg.MoE)
	}
	t.params = make([]*moe.ExpertParams, cfg.World)
	t.bias = make([][]float32, cfg.World)
	t.dataRNG = make([]*tensor.RNG, cfg.World)
	epr := cfg.MoE.NumExperts / cfg.World
	for rank := 0; rank < cfg.World; rank++ {
		t.params[rank] = moe.NewExpertParams(tensor.NewRNG(cfg.Seed+uint64(rank)*131),
			epr, cfg.MoE.HModel, cfg.MoE.HFFN)
		t.bias[rank] = make([]float32, cfg.MoE.HModel)
		t.dataRNG[rank] = tensor.NewRNG(dataSeed(cfg.Seed, rank))
	}
	t.initShardState()
	t.lastClocks = nil
}

// Shrink rebuilds the trainer for a smaller (or equal — a same-size
// rebuild after a crash with full replacement) world. It does NOT restore
// weights — callers follow up with Restore to reshard a checkpoint onto
// the new layout.
func (t *DistTrainer) Shrink(newWorld int) error {
	if newWorld < 1 || newWorld > t.Cfg.World {
		return fmt.Errorf("train: cannot shrink world %d to %d", t.Cfg.World, newWorld)
	}
	if t.Cfg.MoE.NumExperts%newWorld != 0 {
		return fmt.Errorf("train: %d experts not divisible by shrunk world %d",
			t.Cfg.MoE.NumExperts, newWorld)
	}
	t.rebuild(newWorld)
	return nil
}

// Grow is the inverse of Shrink: rebuild the trainer for a larger (or
// equal) world, the recovery path that promotes hot spares into dead
// ranks' slots instead of shrinking for the rest of the run. Slot
// semantics mirror Shrink exactly — expert weights reshard from the
// checkpoint's global order, slot r's weights-init and data-stream seeds
// are functions of r alone — so a spare promoted into slot r is
// indistinguishable from a replacement node and the grown run stays
// bit-deterministic. Callers follow up with Restore.
func (t *DistTrainer) Grow(newWorld int) error {
	if newWorld < t.Cfg.World {
		return fmt.Errorf("train: cannot grow world %d to %d", t.Cfg.World, newWorld)
	}
	if t.Cfg.MoE.NumExperts%newWorld != 0 {
		return fmt.Errorf("train: %d experts not divisible by grown world %d",
			t.Cfg.MoE.NumExperts, newWorld)
	}
	t.rebuild(newWorld)
	return nil
}

// ShrinkWorld returns the largest feasible world size after failures: the
// biggest divisor of experts that is at most survivors (0 if none).
func ShrinkWorld(experts, survivors int) int {
	for w := survivors; w >= 1; w-- {
		if experts%w == 0 {
			return w
		}
	}
	return 0
}

// CkptStream models asynchronous checkpointing as a double buffer plus
// one in-flight off-node write, with the same accounting convention as
// the CommHandle overlap machinery (simrt.AlltoAllVAsync): issuing a
// write snapshots the state and costs nothing up front; the write
// completes Cost simulated seconds later on its own stream, and training
// only pays the *uncovered remainder* — the part of the write the
// subsequent steps' wall-clock did not hide. The consistency rule is the
// one real async checkpointers enforce: a crash mid-write discards the
// partial file and recovery falls back to the last snapshot whose write
// had fully completed by the crash time. Blocking checkpointing is the
// degenerate schedule Issue-then-Drain (the whole write is uncovered),
// which reproduces the stop-the-world accounting exactly.
//
// All times are positions on the fault-tolerant loop's wall clock; the
// stream itself is pure accounting and holds at most two snapshots
// (completed + in-flight), the double buffer.
type CkptStream struct {
	// Cost is the seconds one snapshot takes to stream off-node.
	Cost float64

	completed  *Checkpoint // last fully durable snapshot
	pending    *Checkpoint // in-flight write, nil when idle
	pendingEnd float64     // wall time the in-flight write completes
}

// NewCkptStream starts a stream whose durable base is `initial` — for a
// training run, the step-0 state, durable by construction (it is a pure
// function of the seed). Writes issued later supersede it only once they
// complete.
func NewCkptStream(cost float64, initial *Checkpoint) *CkptStream {
	return &CkptStream{Cost: cost, completed: initial}
}

// advance promotes the in-flight write if the wall clock has passed its
// completion time: the write finished under cover of training compute,
// at zero charged cost.
func (cs *CkptStream) advance(wall float64) {
	if cs.pending != nil && wall >= cs.pendingEnd {
		cs.completed = cs.pending
		cs.pending = nil
	}
}

// Issue starts an asynchronous write of ck at the given wall time and
// returns the seconds to charge now: zero when the stream is idle, else
// the uncovered remainder of the previous write (back-to-back issues
// serialise on the single off-node stream, exactly like two async
// collectives on one comm stream).
func (cs *CkptStream) Issue(ck *Checkpoint, wall float64) (charged float64) {
	cs.advance(wall)
	if cs.pending != nil {
		charged = cs.pendingEnd - wall
		cs.completed = cs.pending
	}
	cs.pending = ck
	cs.pendingEnd = wall + charged + cs.Cost
	return charged
}

// Drain blocks until the in-flight write (if any) is durable, returning
// the uncovered remainder to charge. Issue+Drain is blocking
// checkpointing; a final Drain at the end of a run makes the last
// snapshot durable before the wall clock stops.
func (cs *CkptStream) Drain(wall float64) (charged float64) {
	cs.advance(wall)
	if cs.pending != nil {
		charged = cs.pendingEnd - wall
		cs.completed = cs.pending
		cs.pending = nil
	}
	return charged
}

// Abort applies the crash consistency rule at the given wall time: an
// in-flight write that had already completed is promoted (the file was
// durable before the crash); one still in flight is discarded — its
// partial file is useless — and recovery falls back to the last
// completed snapshot, which Abort returns.
func (cs *CkptStream) Abort(wall float64) *Checkpoint {
	cs.advance(wall)
	cs.pending = nil
	return cs.completed
}

// Completed returns the snapshot a crash at the given wall time would
// restore, without mutating the stream.
func (cs *CkptStream) Completed(wall float64) *Checkpoint {
	if cs.pending != nil && wall >= cs.pendingEnd {
		return cs.pending
	}
	return cs.completed
}
