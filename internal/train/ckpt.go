package train

// Checkpoint/restore for the distributed trainer. A checkpoint is a full
// snapshot of training state — expert weights in global expert order,
// the replicated dense bias, the step counter, every rank slot's data-RNG
// state, and the network simulator's RNG state — so a restored run is
// bit-identical to one that never stopped. Weights are stored globally
// (not per-rank) so the same checkpoint restores onto a different world
// size: elastic recovery reshards the surviving experts instead of
// demanding the dead rank back.

import (
	"fmt"

	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
)

// Checkpoint is a deep snapshot of DistTrainer state.
type Checkpoint struct {
	// Step is the number of completed training steps.
	Step int
	// W1, W2 hold every expert's weights in global expert order
	// (global expert e = rank*expertsPerRank + local index).
	W1, W2 []*tensor.Tensor
	// Bias is the replicated dense parameter (identical on every rank).
	Bias []float32
	// DataRNG holds each rank slot's input-stream state at capture time.
	DataRNG []tensor.RNGState
	// NetRNG is the network simulator's RNG state.
	NetRNG uint64
	// VelW1, VelW2 hold the expert momentum state in global expert order
	// and BiasVel the full dense velocity vector (reassembled from the
	// per-rank ZeRO shards at capture). All nil when the trainer runs
	// without momentum; Restore reshards them onto the current world and
	// ZeRO geometry, so a checkpoint taken at one stage/bucket size
	// restores onto any other.
	VelW1, VelW2 []*tensor.Tensor
	BiasVel      []float32
}

// Checkpoint captures the trainer's full training state. Call it only
// between steps (never while Step is running).
func (t *DistTrainer) Checkpoint() *Checkpoint {
	e := t.Cfg.MoE.NumExperts
	epr := e / t.Cfg.World
	ck := &Checkpoint{
		Step:    t.step,
		W1:      make([]*tensor.Tensor, e),
		W2:      make([]*tensor.Tensor, e),
		Bias:    append([]float32(nil), t.bias[0]...),
		DataRNG: make([]tensor.RNGState, t.Cfg.World),
		NetRNG:  t.cluster.Net.RNGState(),
	}
	for rank := 0; rank < t.Cfg.World; rank++ {
		for le := 0; le < epr; le++ {
			ck.W1[rank*epr+le] = t.params[rank].W1[le].Clone()
			ck.W2[rank*epr+le] = t.params[rank].W2[le].Clone()
		}
		ck.DataRNG[rank] = t.dataRNG[rank].State()
	}
	if t.velW1 != nil {
		ck.VelW1 = make([]*tensor.Tensor, e)
		ck.VelW2 = make([]*tensor.Tensor, e)
		ck.BiasVel = make([]float32, t.Cfg.MoE.HModel)
		for rank := 0; rank < t.Cfg.World; rank++ {
			for le := 0; le < epr; le++ {
				ck.VelW1[rank*epr+le] = t.velW1[rank][le].Clone()
				ck.VelW2[rank*epr+le] = t.velW2[rank][le].Clone()
			}
			// Owners hold the authoritative dense velocity shards; scatter
			// them back to global positions (stage 0: every rank holds the
			// identical full vector, rank 0's copy wins harmlessly).
			off := 0
			for _, rg := range t.owned[rank] {
				copy(ck.BiasVel[rg.Lo:rg.Hi], t.biasVel[rank][off:off+rg.Len()])
				off += rg.Len()
			}
		}
	}
	return ck
}

// Restore rolls the trainer back to ck, resharding the global expert
// weights onto the trainer's current world size. The world may be smaller
// than at capture time (elastic recovery after Shrink): surviving rank
// slots keep their data streams, and slots beyond the new world are
// simply retired with their state still in the checkpoint.
func (t *DistTrainer) Restore(ck *Checkpoint) error {
	e := t.Cfg.MoE.NumExperts
	if len(ck.W1) != e || len(ck.W2) != e {
		return fmt.Errorf("train: checkpoint holds %d experts, trainer wants %d", len(ck.W1), e)
	}
	if t.Cfg.World > len(ck.DataRNG) {
		return fmt.Errorf("train: checkpoint has %d rank slots, world is %d (elastic growth is unsupported)",
			len(ck.DataRNG), t.Cfg.World)
	}
	if t.velW1 != nil && ck.VelW1 != nil && len(ck.VelW1) != e {
		return fmt.Errorf("train: checkpoint holds %d expert velocities, trainer wants %d", len(ck.VelW1), e)
	}
	epr := e / t.Cfg.World
	for rank := 0; rank < t.Cfg.World; rank++ {
		for le := 0; le < epr; le++ {
			t.params[rank].W1[le].Copy(ck.W1[rank*epr+le])
			t.params[rank].W2[le].Copy(ck.W2[rank*epr+le])
		}
		copy(t.bias[rank], ck.Bias)
		t.dataRNG[rank].SetState(ck.DataRNG[rank])
	}
	if t.velW1 != nil {
		// Reshard the momentum state onto the current world and ZeRO
		// geometry; a checkpoint without velocity restores to zeros (a
		// cold optimizer, matching a freshly built trainer).
		for rank := 0; rank < t.Cfg.World; rank++ {
			for le := 0; le < epr; le++ {
				if ck.VelW1 != nil {
					t.velW1[rank][le].Copy(ck.VelW1[rank*epr+le])
					t.velW2[rank][le].Copy(ck.VelW2[rank*epr+le])
				} else {
					t.velW1[rank][le].Zero()
					t.velW2[rank][le].Zero()
				}
			}
			bv := t.biasVel[rank]
			for i := range bv {
				bv[i] = 0
			}
			if ck.BiasVel != nil {
				off := 0
				for _, rg := range t.owned[rank] {
					copy(bv[off:off+rg.Len()], ck.BiasVel[rg.Lo:rg.Hi])
					off += rg.Len()
				}
			}
		}
	}
	t.step = ck.Step
	t.cluster.Net.SetRNGState(ck.NetRNG)
	return nil
}

// Shrink rebuilds the trainer for a smaller world: a fresh cluster (a
// failed Run poisons the old one), fresh per-rank containers, and a world
// group over the surviving ranks. It does NOT restore weights — callers
// follow up with Restore to reshard a checkpoint onto the new layout.
func (t *DistTrainer) Shrink(newWorld int) error {
	if newWorld < 1 || newWorld > t.Cfg.World {
		return fmt.Errorf("train: cannot shrink world %d to %d", t.Cfg.World, newWorld)
	}
	if t.Cfg.MoE.NumExperts%newWorld != 0 {
		return fmt.Errorf("train: %d experts not divisible by shrunk world %d",
			t.Cfg.MoE.NumExperts, newWorld)
	}
	cfg := t.Cfg
	cfg.World = newWorld
	cluster := simrt.NewCluster(cfg.Machine, cfg.World, cfg.Seed)
	cluster.Net.DisableCongestion = true
	cluster.Inject = t.cluster.Inject
	t.Cfg = cfg
	t.cluster = cluster
	t.group = cluster.WorldGroup()
	if cfg.Transport == "rbd" {
		t.rbdDisp = rbd.NewDispatcher(cluster, t.group, cfg.MoE)
	}
	t.params = make([]*moe.ExpertParams, cfg.World)
	t.bias = make([][]float32, cfg.World)
	t.dataRNG = make([]*tensor.RNG, cfg.World)
	epr := cfg.MoE.NumExperts / cfg.World
	for rank := 0; rank < cfg.World; rank++ {
		t.params[rank] = moe.NewExpertParams(tensor.NewRNG(cfg.Seed+uint64(rank)*131),
			epr, cfg.MoE.HModel, cfg.MoE.HFFN)
		t.bias[rank] = make([]float32, cfg.MoE.HModel)
		t.dataRNG[rank] = tensor.NewRNG(dataSeed(cfg.Seed, rank))
	}
	t.initShardState()
	return nil
}

// ShrinkWorld returns the largest feasible world size after failures: the
// biggest divisor of experts that is at most survivors (0 if none).
func ShrinkWorld(experts, survivors int) int {
	for w := survivors; w >= 1; w-- {
		if experts%w == 0 {
			return w
		}
	}
	return 0
}
