package train

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"xmoe/internal/fault"
	"xmoe/internal/simrt"
	"xmoe/internal/trace"
)

// weightsEqual compares every expert weight and the bias bit-for-bit.
func weightsEqual(t *testing.T, a, b *DistTrainer, label string) {
	t.Helper()
	if a.Cfg.World != b.Cfg.World {
		t.Fatalf("%s: world %d vs %d", label, a.Cfg.World, b.Cfg.World)
	}
	for rank := 0; rank < a.Cfg.World; rank++ {
		ap, bp := a.Params(rank), b.Params(rank)
		for le := range ap.W1 {
			for j := range ap.W1[le].Data {
				if ap.W1[le].Data[j] != bp.W1[le].Data[j] {
					t.Fatalf("%s: rank %d W1[%d][%d] diverged", label, rank, le, j)
				}
			}
			for j := range ap.W2[le].Data {
				if ap.W2[le].Data[j] != bp.W2[le].Data[j] {
					t.Fatalf("%s: rank %d W2[%d][%d] diverged", label, rank, le, j)
				}
			}
		}
		for j := range a.bias[rank] {
			if a.bias[rank][j] != b.bias[rank][j] {
				t.Fatalf("%s: rank %d bias[%d] diverged", label, rank, j)
			}
		}
	}
}

// weightsDiffer reports whether any expert weight differs between the two
// trainers — used to prove an option (e.g. capacity rebalance) engaged.
func weightsDiffer(a, b *DistTrainer) bool {
	if a.Cfg.World != b.Cfg.World {
		return true
	}
	for rank := 0; rank < a.Cfg.World; rank++ {
		ap, bp := a.Params(rank), b.Params(rank)
		for le := range ap.W1 {
			for j := range ap.W1[le].Data {
				if ap.W1[le].Data[j] != bp.W1[le].Data[j] {
					return true
				}
			}
			for j := range ap.W2[le].Data {
				if ap.W2[le].Data[j] != bp.W2[le].Data[j] {
					return true
				}
			}
		}
	}
	return false
}

// TestCheckpointResumeBitIdentical is the core checkpoint contract: train
// 3 steps, checkpoint, train 3 more; a second trainer restored from the
// checkpoint and trained the same 3 steps ends with bit-identical weights
// and losses — the snapshot captures everything, RNG streams included.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	a, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck := a.Checkpoint()
	if ck.Step != 3 {
		t.Fatalf("checkpoint at step %d, want 3", ck.Step)
	}
	var tail []float64
	for i := 0; i < 3; i++ {
		stats, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, stats.Loss)
	}

	b, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stats, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Loss != tail[i] {
			t.Fatalf("resumed step %d loss %v != uninterrupted %v", i, stats.Loss, tail[i])
		}
	}
	weightsEqual(t, a, b, "resume")

	// Restoring must also roll BACK: b trains past the checkpoint, then
	// returns to it and replays to the same weights again.
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	weightsEqual(t, a, b, "rollback-replay")
}

// TestCheckpointRestoreRejects pins Restore's validation.
func TestCheckpointRestoreRejects(t *testing.T) {
	a, _ := NewDistTrainer(distTrainerConfig("pft", 1))
	ck := a.Checkpoint()
	ck.W1 = ck.W1[:4]
	if err := a.Restore(ck); err == nil {
		t.Fatal("expert-count mismatch must be rejected")
	}
}

// TestGrowShrinkRejects pins the world-transition validation: Grow only
// grows, Shrink only shrinks, and both demand expert divisibility.
func TestGrowShrinkRejects(t *testing.T) {
	a, _ := NewDistTrainer(distTrainerConfig("pft", 1))
	if err := a.Grow(2); err == nil {
		t.Fatal("Grow below the current world must be rejected")
	}
	if err := a.Grow(5); err == nil {
		t.Fatal("Grow to a non-divisor of the expert count must be rejected")
	}
	if err := a.Shrink(5); err == nil {
		t.Fatal("Shrink above the current world must be rejected")
	}
	if err := a.Shrink(3); err == nil {
		t.Fatal("Shrink to a non-divisor of the expert count must be rejected")
	}
}

// TestGrowShrinkCycleBitIdentical is the elastic regrow contract: a
// trainer that shrinks onto a half-size world, trains there, then grows
// back — restoring a checkpoint captured at the SMALLER world onto the
// larger one — replays bit-identically on a second run. Growth reshards
// the global-order expert weights and restarts the re-entering slots'
// data streams from their slot seeds, so the whole cycle is a pure
// function of (seed, schedule).
func TestGrowShrinkCycleBitIdentical(t *testing.T) {
	cycle := func() (*DistTrainer, []float64) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		step := func(n int) {
			for i := 0; i < n; i++ {
				st, err := tr.Step()
				if err != nil {
					t.Fatal(err)
				}
				losses = append(losses, st.Loss)
			}
		}
		step(3)
		ck := tr.Checkpoint()
		if err := tr.Shrink(2); err != nil {
			t.Fatal(err)
		}
		if err := tr.Restore(ck); err != nil {
			t.Fatal(err)
		}
		step(2)
		ck2 := tr.Checkpoint()
		if len(ck2.DataRNG) != 2 {
			t.Fatalf("shrunk checkpoint has %d rank slots, want 2", len(ck2.DataRNG))
		}
		if err := tr.Grow(4); err != nil {
			t.Fatal(err)
		}
		if err := tr.Restore(ck2); err != nil {
			t.Fatal(err)
		}
		step(2)
		return tr, losses
	}
	a, la := cycle()
	b, lb := cycle()
	if a.Cfg.World != 4 {
		t.Fatalf("final world = %d, want 4 after regrow", a.Cfg.World)
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("cycle loss %d diverged: %v vs %v", i, la[i], lb[i])
		}
	}
	weightsEqual(t, a, b, "grow-shrink cycle")
}

// TestShrinkWorld pins the elastic sizing rule.
func TestShrinkWorld(t *testing.T) {
	for _, c := range []struct{ e, s, want int }{
		{8, 3, 2}, {8, 4, 4}, {8, 7, 4}, {12, 5, 4}, {8, 1, 1}, {8, 0, 0},
	} {
		if got := ShrinkWorld(c.e, c.s); got != c.want {
			t.Fatalf("ShrinkWorld(%d, %d) = %d, want %d", c.e, c.s, got, c.want)
		}
	}
}

// TestRunFaultTolerantRecoversFromCrash: a planned crash mid-run triggers
// rollback to the last checkpoint and an elastic shrink, and the run
// still completes all useful steps. The whole schedule is deterministic:
// a second identical run produces bit-identical weights and stats.
func TestRunFaultTolerantRecoversFromCrash(t *testing.T) {
	run := func() (*DistTrainer, FTStats, *trace.Recorder) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("crash:r1@s5")
		if err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 6, CkptEvery: 3, Plan: plan, Rec: rec})
		if err != nil {
			t.Fatal(err)
		}
		return tr, st, rec
	}
	tr1, st1, rec := run()
	if st1.Steps != 6 {
		t.Fatalf("completed %d useful steps, want 6", st1.Steps)
	}
	if st1.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st1.Recoveries)
	}
	// With CkptEvery=3 the last checkpoint lands after step 2 (at step
	// counter 3); the crash during step 5 rolls back to it, so steps 3
	// and 4 run twice.
	if st1.ReplayedSteps != 2 {
		t.Fatalf("replayed %d steps, want 2", st1.ReplayedSteps)
	}
	// 4 ranks, one dead: largest divisor of 8 experts <= 3 survivors is 2.
	if st1.FinalWorld != 2 {
		t.Fatalf("final world = %d, want 2", st1.FinalWorld)
	}
	if st1.Goodput <= 0 || st1.Goodput >= 1 {
		t.Fatalf("goodput = %v, want in (0, 1)", st1.Goodput)
	}
	// Accounting identity: wall-clock decomposes exactly.
	total := st1.UsefulTime + st1.CkptTime + st1.LostTime
	if math.Abs(total-st1.WallClock) > 1e-9*st1.WallClock {
		t.Fatalf("useful %v + ckpt %v + lost %v != wall %v",
			st1.UsefulTime, st1.CkptTime, st1.LostTime, st1.WallClock)
	}
	if st1.LostTime <= 0 {
		t.Fatal("a crash mid-run must lose some work")
	}
	// Fault, checkpoint, and recovery events land in the trace as marks.
	if rec.MarkCount("fault crash=[1] step=5") != 1 {
		t.Fatalf("missing fault mark; marks: %v", rec.Marks())
	}
	if rec.MarkCount("recover world=2 step=3 spares=0") != 1 {
		t.Fatalf("missing recovery mark; marks: %v", rec.Marks())
	}

	tr2, st2, _ := run()
	weightsEqual(t, tr1, tr2, "fault-tolerant determinism")
	if st1 != st2 {
		t.Fatalf("stats diverged across identical runs:\n%+v\nvs\n%+v", st1, st2)
	}
}

// TestRunFaultTolerantSurvivesChaos drives the full stack — crashes,
// stragglers, flaky collectives, and a degraded link in one plan — and
// must finish every step without deadlock, with sane accounting. This is
// the `make chaos-fast` entry point.
func TestRunFaultTolerantSurvivesChaos(t *testing.T) {
	spec := "crash:r3@s2,straggler:r0@s0:x3:n4,flaky:r2@s1:t0.001:n3,link:inter@s3:x8:n2,crash:r1@s7"
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunFaultTolerant(FTOptions{Steps: 10, CkptEvery: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 10 {
		t.Fatalf("completed %d useful steps, want 10", st.Steps)
	}
	if st.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (two planned crashes)", st.Recoveries)
	}
	// First crash: 4 ranks -> 3 survivors -> world 2. Second crash kills
	// rank 1 of the remaining 2 -> world 1.
	if st.FinalWorld != 1 {
		t.Fatalf("final world = %d, want 1 after two crashes from 4", st.FinalWorld)
	}
	if math.IsNaN(st.FinalLoss) || math.IsInf(st.FinalLoss, 0) {
		t.Fatal("final loss not finite")
	}
	if st.Goodput <= 0 || st.Goodput >= 1 {
		t.Fatalf("goodput = %v", st.Goodput)
	}
}

// TestRunFaultTolerantDoubleCrashSameStep pins the lost-time accounting
// when the same step indices are rolled back twice: with only the step-0
// checkpoint, two crashes (of different ranks — a crash event fires at
// most once per rank) each roll everything back to zero, so early steps
// run three times. Every superseded attempt must accumulate into
// LostTime — counted once each, never overwritten — for the exact
// wall = useful + ckpt + lost identity to survive the double rollback.
func TestRunFaultTolerantDoubleCrashSameStep(t *testing.T) {
	run := func() (*DistTrainer, FTStats) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("crash:r1@s2,crash:r0@s4")
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 6, CkptEvery: 0, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return tr, st
	}
	tr1, st := run()
	if st.Steps != 6 || st.Recoveries != 2 {
		t.Fatalf("steps %d recoveries %d, want 6 and 2", st.Steps, st.Recoveries)
	}
	// Both rollbacks target step 0: the first loses steps 0-1, the second
	// loses steps 0-3 (including the replays of 0-1).
	if st.ReplayedSteps != 6 {
		t.Fatalf("replayed %d steps, want 2+4=6", st.ReplayedSteps)
	}
	total := st.UsefulTime + st.CkptTime + st.LostTime
	if math.Abs(total-st.WallClock) > 1e-9*st.WallClock {
		t.Fatalf("identity broke under double rollback: useful %v + ckpt %v + lost %v != wall %v",
			st.UsefulTime, st.CkptTime, st.LostTime, st.WallClock)
	}
	// Steps 0 and 1 ran three times: two superseded attempts each must be
	// in LostTime, so lost work exceeds the partial-attempt time alone —
	// at least 6 full steps' worth (0,1 twice each plus 2,3 once) at the
	// smallest per-step time seen.
	minStep := st.UsefulTime / float64(st.Steps)
	if st.LostTime < 6*minStep*0.5 {
		t.Fatalf("lost %v too small for 6 superseded attempts (min step ~%v)", st.LostTime, minStep)
	}
	tr2, st2 := run()
	weightsEqual(t, tr1, tr2, "double-crash determinism")
	if st != st2 {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", st, st2)
	}
}

// TestSparePromotionRestoresWorld: the same crash that shrinks the world
// to 2 without spares keeps it at 4 when the plan carries a hot spare —
// the spare is promoted into the dead slot, the run retains full-world
// token throughput, and the whole schedule stays deterministic.
func TestSparePromotionRestoresWorld(t *testing.T) {
	run := func(spec string) (*DistTrainer, FTStats) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 6, CkptEvery: 3, Plan: plan, Rec: rec})
		if err != nil {
			t.Fatal(err)
		}
		if st.Recoveries == 1 && rec.MarkCount(fmt.Sprintf("recover world=%d step=3 spares=%d", st.FinalWorld, st.SparesUsed)) != 1 {
			t.Fatalf("missing recovery mark; marks: %v", rec.Marks())
		}
		return tr, st
	}
	_, shrunk := run("crash:r1@s5")
	grownA, grown := run("crash:r1@s5,spares:1")
	if shrunk.FinalWorld != 2 || shrunk.SparesUsed != 0 {
		t.Fatalf("baseline: world %d spares %d, want 2 and 0", shrunk.FinalWorld, shrunk.SparesUsed)
	}
	if grown.FinalWorld != 4 || grown.SparesUsed != 1 {
		t.Fatalf("spared: world %d spares %d, want 4 and 1", grown.FinalWorld, grown.SparesUsed)
	}
	if grown.UsefulTokens <= shrunk.UsefulTokens {
		t.Fatalf("regrow tokens %d must exceed shrink tokens %d", grown.UsefulTokens, shrunk.UsefulTokens)
	}
	for _, st := range []FTStats{shrunk, grown} {
		total := st.UsefulTime + st.CkptTime + st.LostTime
		if math.Abs(total-st.WallClock) > 1e-9*st.WallClock {
			t.Fatalf("identity broke: %+v", st)
		}
	}
	grownB, grown2 := run("crash:r1@s5,spares:1")
	weightsEqual(t, grownA, grownB, "spare-promotion determinism")
	if grown != grown2 {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", grown, grown2)
	}
}

// TestAsyncCkptWeightParity: when every checkpoint write completes before
// the next crash (the common regime — writes are microseconds, intervals
// are steps), async and blocking checkpointing restore the same snapshot
// and must produce bit-identical final weights; async must charge no
// more checkpoint time and achieve at least blocking goodput.
func TestAsyncCkptWeightParity(t *testing.T) {
	run := func(async bool, spec string) (*DistTrainer, FTStats) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 6, CkptEvery: 3, AsyncCkpt: async, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		total := st.UsefulTime + st.CkptTime + st.LostTime
		if math.Abs(total-st.WallClock) > 1e-9*st.WallClock {
			t.Fatalf("identity broke (async=%v): %+v", async, st)
		}
		return tr, st
	}
	for _, spec := range []string{"", "crash:r1@s5"} {
		blockT, blockSt := run(false, spec)
		asyncT, asyncSt := run(true, spec)
		weightsEqual(t, blockT, asyncT, "async-vs-blocking parity spec="+spec)
		if asyncSt.CkptTime > blockSt.CkptTime {
			t.Fatalf("spec %q: async ckpt time %v exceeds blocking %v", spec, asyncSt.CkptTime, blockSt.CkptTime)
		}
		if asyncSt.Goodput < blockSt.Goodput {
			t.Fatalf("spec %q: async goodput %v below blocking %v", spec, asyncSt.Goodput, blockSt.Goodput)
		}
	}
}

// TestAsyncCkptMidWriteFallback pins the crash-consistency rule: with a
// write cost far larger than a step, the step-3 snapshot's write is
// still streaming when the crash lands, so async recovery must discard
// it and fall back to the durable step-0 base — replaying 5 steps where
// blocking (which stalled for the full write) replays only 2.
func TestAsyncCkptMidWriteFallback(t *testing.T) {
	run := func(async bool) FTStats {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("crash:r1@s5")
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunFaultTolerant(FTOptions{
			Steps: 6, CkptEvery: 3, AsyncCkpt: async, Plan: plan, CkptCost: 1.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := st.UsefulTime + st.CkptTime + st.LostTime
		if math.Abs(total-st.WallClock) > 1e-9*st.WallClock {
			t.Fatalf("identity broke (async=%v): %+v", async, st)
		}
		return st
	}
	if got := run(false).ReplayedSteps; got != 2 {
		t.Fatalf("blocking replayed %d steps, want 2 (rollback to step 3)", got)
	}
	if got := run(true).ReplayedSteps; got != 5 {
		t.Fatalf("async replayed %d steps, want 5 (mid-write crash falls back to step 0)", got)
	}
}

// TestMitigationSpeedsUpStragglers: with one permanent 4x straggler,
// straggler-aware capacity rebalance must actually engage (the rerouted
// run trains different weights than uniform routing), keep the final
// loss within tolerance of the unmitigated trajectory, never make the
// wall-clock worse, and stay bit-deterministic. The wall-clock check is
// not-worse rather than strictly-faster: at the numeric toy dims every
// per-expert GEMM sits on the kernel-launch floor, so capacity shifts
// cannot move simulated time here — the genuine time win is pinned at
// the flops-dominated at-scale tier by the abl-faults mitigation sweep
// (TestAblationFaultsShape).
func TestMitigationSpeedsUpStragglers(t *testing.T) {
	run := func(bound float64) (*DistTrainer, FTStats) {
		cfg := distTrainerConfig("pft", 2)
		cfg.Mitigation = bound
		tr, err := NewDistTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("straggler:r0@s0:x4")
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 8, CkptEvery: 0, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return tr, st
	}
	uniA, uniform := run(0)
	mitA, mitigated := run(0.5)
	if mitigated.WallClock > uniform.WallClock*(1+1e-6) {
		t.Fatalf("mitigated wall %v worse than uniform %v", mitigated.WallClock, uniform.WallClock)
	}
	// The rebalance must have engaged: rerouting shifts which tokens land
	// on which experts, so the trained weights diverge from the uniform run.
	if !weightsDiffer(uniA, mitA) {
		t.Fatal("mitigated run trained identical weights to uniform — capacity rebalance never engaged")
	}
	// The ±bound clamp keeps the loss trajectory near the uniform one.
	if rel := math.Abs(mitigated.FinalLoss-uniform.FinalLoss) / uniform.FinalLoss; rel > 0.25 {
		t.Fatalf("mitigated loss %v drifted %.0f%% from uniform %v", mitigated.FinalLoss, rel*100, uniform.FinalLoss)
	}
	mitB, mitigated2 := run(0.5)
	weightsEqual(t, mitA, mitB, "mitigation determinism")
	if mitigated != mitigated2 {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", mitigated, mitigated2)
	}
}

// TestMitigationRejectsPadded: the padded pipeline's even all-to-all
// cannot carry per-expert capacities; the config check must say so with
// a typed option error instead of a rank panic mid-step.
func TestMitigationRejectsPadded(t *testing.T) {
	cfg := distTrainerConfig("padded", 1)
	cfg.Mitigation = 0.3
	if _, err := NewDistTrainer(cfg); err == nil {
		t.Fatal("padded + mitigation must be rejected")
	}
	cfg = distTrainerConfig("pft", 1)
	cfg.Mitigation = 1.5
	if _, err := NewDistTrainer(cfg); err == nil {
		t.Fatal("mitigation bound above 1 must be rejected")
	}
}

// TestRunFaultTolerantAllFeaturesDeterministic is the acceptance gate:
// async checkpoints, spare promotion, straggler mitigation, and a crash
// all active in one run — same plan + config twice gives bit-identical
// weights and stats, and the wall-clock identity stays exact.
func TestRunFaultTolerantAllFeaturesDeterministic(t *testing.T) {
	run := func(transport string) (*DistTrainer, FTStats) {
		cfg := distTrainerConfig(transport, 2)
		cfg.Mitigation = 0.4
		tr, err := NewDistTrainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("straggler:r2@s0:x2,crash:r1@s5,spares:1")
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 8, CkptEvery: 3, AsyncCkpt: true, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return tr, st
	}
	for _, transport := range []string{"pft", "rbd"} {
		a, st1 := run(transport)
		b, st2 := run(transport)
		if st1.FinalWorld != 4 || st1.SparesUsed != 1 {
			t.Fatalf("%s: world %d spares %d, want regrow to 4 with 1 spare", transport, st1.FinalWorld, st1.SparesUsed)
		}
		total := st1.UsefulTime + st1.CkptTime + st1.LostTime
		if math.Abs(total-st1.WallClock) > 1e-9*st1.WallClock {
			t.Fatalf("%s: identity broke: %+v", transport, st1)
		}
		weightsEqual(t, a, b, transport+" all-features determinism")
		if st1 != st2 {
			t.Fatalf("%s: stats diverged:\n%+v\nvs\n%+v", transport, st1, st2)
		}
	}
}

// TestRunFaultTolerantNoSurvivors: killing every rank is unrecoverable
// and must surface the crash error rather than loop or deadlock.
func TestRunFaultTolerantNoSurvivors(t *testing.T) {
	cfg := distTrainerConfig("pft", 1)
	cfg.World = 1
	tr, err := NewDistTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := fault.ParsePlan("crash:r0@s1")
	_, err = tr.RunFaultTolerant(FTOptions{Steps: 4, CkptEvery: 1, Plan: plan})
	if err == nil || !errors.Is(err, simrt.ErrRankCrashed) {
		t.Fatalf("want unrecoverable crash error, got %v", err)
	}
}
