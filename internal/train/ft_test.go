package train

import (
	"errors"
	"math"
	"testing"

	"xmoe/internal/fault"
	"xmoe/internal/simrt"
	"xmoe/internal/trace"
)

// weightsEqual compares every expert weight and the bias bit-for-bit.
func weightsEqual(t *testing.T, a, b *DistTrainer, label string) {
	t.Helper()
	if a.Cfg.World != b.Cfg.World {
		t.Fatalf("%s: world %d vs %d", label, a.Cfg.World, b.Cfg.World)
	}
	for rank := 0; rank < a.Cfg.World; rank++ {
		ap, bp := a.Params(rank), b.Params(rank)
		for le := range ap.W1 {
			for j := range ap.W1[le].Data {
				if ap.W1[le].Data[j] != bp.W1[le].Data[j] {
					t.Fatalf("%s: rank %d W1[%d][%d] diverged", label, rank, le, j)
				}
			}
			for j := range ap.W2[le].Data {
				if ap.W2[le].Data[j] != bp.W2[le].Data[j] {
					t.Fatalf("%s: rank %d W2[%d][%d] diverged", label, rank, le, j)
				}
			}
		}
		for j := range a.bias[rank] {
			if a.bias[rank][j] != b.bias[rank][j] {
				t.Fatalf("%s: rank %d bias[%d] diverged", label, rank, j)
			}
		}
	}
}

// TestCheckpointResumeBitIdentical is the core checkpoint contract: train
// 3 steps, checkpoint, train 3 more; a second trainer restored from the
// checkpoint and trained the same 3 steps ends with bit-identical weights
// and losses — the snapshot captures everything, RNG streams included.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	a, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck := a.Checkpoint()
	if ck.Step != 3 {
		t.Fatalf("checkpoint at step %d, want 3", ck.Step)
	}
	var tail []float64
	for i := 0; i < 3; i++ {
		stats, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, stats.Loss)
	}

	b, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stats, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Loss != tail[i] {
			t.Fatalf("resumed step %d loss %v != uninterrupted %v", i, stats.Loss, tail[i])
		}
	}
	weightsEqual(t, a, b, "resume")

	// Restoring must also roll BACK: b trains past the checkpoint, then
	// returns to it and replays to the same weights again.
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	weightsEqual(t, a, b, "rollback-replay")
}

// TestCheckpointRestoreRejects pins Restore's validation.
func TestCheckpointRestoreRejects(t *testing.T) {
	a, _ := NewDistTrainer(distTrainerConfig("pft", 1))
	ck := a.Checkpoint()
	ck.W1 = ck.W1[:4]
	if err := a.Restore(ck); err == nil {
		t.Fatal("expert-count mismatch must be rejected")
	}
	ck = a.Checkpoint()
	ck.DataRNG = ck.DataRNG[:2]
	if err := a.Restore(ck); err == nil {
		t.Fatal("elastic growth must be rejected")
	}
}

// TestShrinkWorld pins the elastic sizing rule.
func TestShrinkWorld(t *testing.T) {
	for _, c := range []struct{ e, s, want int }{
		{8, 3, 2}, {8, 4, 4}, {8, 7, 4}, {12, 5, 4}, {8, 1, 1}, {8, 0, 0},
	} {
		if got := ShrinkWorld(c.e, c.s); got != c.want {
			t.Fatalf("ShrinkWorld(%d, %d) = %d, want %d", c.e, c.s, got, c.want)
		}
	}
}

// TestRunFaultTolerantRecoversFromCrash: a planned crash mid-run triggers
// rollback to the last checkpoint and an elastic shrink, and the run
// still completes all useful steps. The whole schedule is deterministic:
// a second identical run produces bit-identical weights and stats.
func TestRunFaultTolerantRecoversFromCrash(t *testing.T) {
	run := func() (*DistTrainer, FTStats, *trace.Recorder) {
		tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fault.ParsePlan("crash:r1@s5")
		if err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		st, err := tr.RunFaultTolerant(FTOptions{Steps: 6, CkptEvery: 3, Plan: plan, Rec: rec})
		if err != nil {
			t.Fatal(err)
		}
		return tr, st, rec
	}
	tr1, st1, rec := run()
	if st1.Steps != 6 {
		t.Fatalf("completed %d useful steps, want 6", st1.Steps)
	}
	if st1.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st1.Recoveries)
	}
	// With CkptEvery=3 the last checkpoint lands after step 2 (at step
	// counter 3); the crash during step 5 rolls back to it, so steps 3
	// and 4 run twice.
	if st1.ReplayedSteps != 2 {
		t.Fatalf("replayed %d steps, want 2", st1.ReplayedSteps)
	}
	// 4 ranks, one dead: largest divisor of 8 experts <= 3 survivors is 2.
	if st1.FinalWorld != 2 {
		t.Fatalf("final world = %d, want 2", st1.FinalWorld)
	}
	if st1.Goodput <= 0 || st1.Goodput >= 1 {
		t.Fatalf("goodput = %v, want in (0, 1)", st1.Goodput)
	}
	// Accounting identity: wall-clock decomposes exactly.
	total := st1.UsefulTime + st1.CkptTime + st1.LostTime
	if math.Abs(total-st1.WallClock) > 1e-9*st1.WallClock {
		t.Fatalf("useful %v + ckpt %v + lost %v != wall %v",
			st1.UsefulTime, st1.CkptTime, st1.LostTime, st1.WallClock)
	}
	if st1.LostTime <= 0 {
		t.Fatal("a crash mid-run must lose some work")
	}
	// Fault, checkpoint, and recovery events land in the trace as marks.
	if rec.MarkCount("fault crash=[1] step=5") != 1 {
		t.Fatalf("missing fault mark; marks: %v", rec.Marks())
	}
	if rec.MarkCount("recover world=2 step=3") != 1 {
		t.Fatalf("missing recovery mark; marks: %v", rec.Marks())
	}

	tr2, st2, _ := run()
	weightsEqual(t, tr1, tr2, "fault-tolerant determinism")
	if st1 != st2 {
		t.Fatalf("stats diverged across identical runs:\n%+v\nvs\n%+v", st1, st2)
	}
}

// TestRunFaultTolerantSurvivesChaos drives the full stack — crashes,
// stragglers, flaky collectives, and a degraded link in one plan — and
// must finish every step without deadlock, with sane accounting. This is
// the `make chaos-fast` entry point.
func TestRunFaultTolerantSurvivesChaos(t *testing.T) {
	spec := "crash:r3@s2,straggler:r0@s0:x3:n4,flaky:r2@s1:t0.001:n3,link:inter@s3:x8:n2,crash:r1@s7"
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDistTrainer(distTrainerConfig("pft", 2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.RunFaultTolerant(FTOptions{Steps: 10, CkptEvery: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 10 {
		t.Fatalf("completed %d useful steps, want 10", st.Steps)
	}
	if st.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (two planned crashes)", st.Recoveries)
	}
	// First crash: 4 ranks -> 3 survivors -> world 2. Second crash kills
	// rank 1 of the remaining 2 -> world 1.
	if st.FinalWorld != 1 {
		t.Fatalf("final world = %d, want 1 after two crashes from 4", st.FinalWorld)
	}
	if math.IsNaN(st.FinalLoss) || math.IsInf(st.FinalLoss, 0) {
		t.Fatal("final loss not finite")
	}
	if st.Goodput <= 0 || st.Goodput >= 1 {
		t.Fatalf("goodput = %v", st.Goodput)
	}
}

// TestRunFaultTolerantNoSurvivors: killing every rank is unrecoverable
// and must surface the crash error rather than loop or deadlock.
func TestRunFaultTolerantNoSurvivors(t *testing.T) {
	cfg := distTrainerConfig("pft", 1)
	cfg.World = 1
	tr, err := NewDistTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := fault.ParsePlan("crash:r0@s1")
	_, err = tr.RunFaultTolerant(FTOptions{Steps: 4, CkptEvery: 1, Plan: plan})
	if err == nil || !errors.Is(err, simrt.ErrRankCrashed) {
		t.Fatalf("want unrecoverable crash error, got %v", err)
	}
}
