package train

import (
	"math"
	"strings"
	"testing"

	"xmoe/internal/moe"
)

func distTrainerConfig(transport string, chunks int) DistConfig {
	return DistConfig{
		MoE: moe.Config{
			NumExperts: 8, TopK: 3, HModel: 12, HFFN: 8,
			CapacityFactor: 1.25, BytesPerElem: 2,
		},
		World:     4,
		Tokens:    32,
		LR:        1e-2,
		Seed:      77,
		Transport: transport,
		Opts:      moe.PipelineOpts{OverlapChunks: chunks},
	}
}

// runDistSteps trains for n steps and returns the loss trajectory and the
// trainer (for weight inspection).
func runDistSteps(t *testing.T, transport string, chunks, n int) ([]float64, *DistTrainer) {
	t.Helper()
	tr, err := NewDistTrainer(distTrainerConfig(transport, chunks))
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, n)
	for i := 0; i < n; i++ {
		stats, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		losses[i] = stats.Loss
	}
	return losses, tr
}

// TestDistTrainerChunkedBitIdentical is the end-to-end training
// determinism regression of the overlap subsystem: the loss trajectory
// and the updated expert weights after several overlapped fwd+bwd+SGD
// steps must be bit-identical to the blocking trainer's, for both
// transports and multiple chunk counts.
func TestDistTrainerChunkedBitIdentical(t *testing.T) {
	const steps = 3
	for _, transport := range []string{"pft", "padded"} {
		blockLoss, blockTr := runDistSteps(t, transport, 1, steps)
		for _, chunks := range []int{2, 4} {
			chunkLoss, chunkTr := runDistSteps(t, transport, chunks, steps)
			for i := range blockLoss {
				if blockLoss[i] != chunkLoss[i] {
					t.Fatalf("%s C=%d step %d: loss %v != blocking %v",
						transport, chunks, i, chunkLoss[i], blockLoss[i])
				}
			}
			for rank := 0; rank < 4; rank++ {
				bp, cp := blockTr.Params(rank), chunkTr.Params(rank)
				for le := range bp.W1 {
					for j := range bp.W1[le].Data {
						if bp.W1[le].Data[j] != cp.W1[le].Data[j] {
							t.Fatalf("%s C=%d rank %d: W1[%d] diverged at %d", transport, chunks, rank, le, j)
						}
					}
					for j := range bp.W2[le].Data {
						if bp.W2[le].Data[j] != cp.W2[le].Data[j] {
							t.Fatalf("%s C=%d rank %d: W2[%d] diverged at %d", transport, chunks, rank, le, j)
						}
					}
				}
			}
		}
	}
}

// TestDistTrainerLearns: the MSE loss must decrease under training (the
// backward pass and update are doing real work, not just matching bits).
func TestDistTrainerLearns(t *testing.T) {
	losses, _ := runDistSteps(t, "pft", 4, 12)
	if !(losses[len(losses)-1] < losses[0]) {
		t.Fatalf("loss did not decrease: first %v last %v", losses[0], losses[len(losses)-1])
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("loss not finite")
		}
	}
}

// TestDistTrainerBreakdownSumsToWallClock pins the tracing contract in
// overlap mode: the per-stage charged breakdown must sum to each step's
// average rank wall-clock (in-flight spans are recorded separately), and
// overlapped steps must actually record in-flight communication.
func TestDistTrainerBreakdownSumsToWallClock(t *testing.T) {
	tr, err := NewDistTrainer(distTrainerConfig("pft", 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stats, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, d := range stats.Breakdown {
			sum += d
		}
		// Merge averages over ranks; wall-clock is the max rank clock, so
		// the sum must land at or below it and within the rank spread.
		if sum > stats.WallClock*(1+1e-9) {
			t.Fatalf("step %d: breakdown sums to %.9f > wall-clock %.9f", i, sum, stats.WallClock)
		}
		if sum <= 0 {
			t.Fatalf("step %d: empty breakdown", i)
		}
		if stats.CommInFlight <= 0 {
			t.Fatalf("step %d: overlapped trainer recorded no in-flight communication", i)
		}
		if stats.MaxImbalance > 1e-9 {
			t.Fatalf("step %d: a rank's charged spans miss its clock by %.12f", i, stats.MaxImbalance)
		}
	}
}

// TestDistConfigCheckRejects pins every rejection path of
// DistConfig.Check, including propagation of PipelineOpts.Check.
func TestDistConfigCheckRejects(t *testing.T) {
	mk := func(mut func(*DistConfig)) DistConfig {
		cfg := distTrainerConfig("pft", 1)
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  DistConfig
		want string
	}{
		{"unknown transport", mk(func(c *DistConfig) { c.Transport = "rdma" }), "unknown transport"},
		{"empty transport", mk(func(c *DistConfig) { c.Transport = "" }), "unknown transport"},
		{"zero world", mk(func(c *DistConfig) { c.World = 0 }), "must be positive"},
		{"zero tokens", mk(func(c *DistConfig) { c.Tokens = 0 }), "must be positive"},
		{"indivisible experts", mk(func(c *DistConfig) { c.World = 3 }), "not divisible"},
		{"bad opts propagate", mk(func(c *DistConfig) { c.Opts.OverlapChunks = -2 }), "OverlapChunks"},
	}
	for _, c := range cases {
		err := c.cfg.Check()
		if err == nil {
			t.Errorf("%s: Check accepted the config", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, err := NewDistTrainer(c.cfg); err == nil {
			t.Errorf("%s: NewDistTrainer accepted the config", c.name)
		}
	}
	if err := distTrainerConfig("padded", 4).Check(); err != nil {
		t.Errorf("Check rejected a valid config: %v", err)
	}
}
