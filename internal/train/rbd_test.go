package train

import (
	"errors"
	"math"
	"testing"

	"xmoe/internal/moe"
)

// rbdTrainerConfig spans two Frontier nodes (world 16) so the RBD
// transport exercises real inter-node S1/C1 exchanges, not just the
// intra-node degenerate case.
func rbdTrainerConfig(chunks int) DistConfig {
	return DistConfig{
		MoE: moe.Config{
			NumExperts: 32, TopK: 3, HModel: 12, HFFN: 8,
			CapacityFactor: 1.25, BytesPerElem: 2,
		},
		World:     16,
		Tokens:    16,
		LR:        1e-2,
		Seed:      77,
		Transport: "rbd",
		Opts:      moe.PipelineOpts{OverlapChunks: chunks},
	}
}

// TestDistTrainerRBDChunkedBitIdentical extends the end-to-end training
// determinism guarantee to the third transport: RBD fwd+bwd+SGD steps in
// chunked overlap mode must be bit-identical to the blocking trainer.
func TestDistTrainerRBDChunkedBitIdentical(t *testing.T) {
	const steps = 3
	baseLoss, baseTr := runZeroSteps(t, rbdTrainerConfig(1), steps)
	for _, chunks := range []int{2, 4} {
		loss, tr := runZeroSteps(t, rbdTrainerConfig(chunks), steps)
		assertSameTraining(t, "rbd/chunked", baseLoss, loss, baseTr, tr)
	}
}

// TestDistTrainerRBDLearns: the RBD backward produces real gradients —
// the MSE loss decreases under training.
func TestDistTrainerRBDLearns(t *testing.T) {
	losses, _ := runZeroSteps(t, rbdTrainerConfig(4), 10)
	if !(losses[len(losses)-1] < losses[0]) {
		t.Fatalf("loss did not decrease: first %v last %v", losses[0], losses[len(losses)-1])
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("loss not finite")
		}
	}
}

// TestDistTrainerRBDCheckpointResumeBitIdentical: the pilot draws ride
// each slot's persistent data stream, so a checkpoint needs no extra RBD
// state — a restored run replays identical pilots and losses.
func TestDistTrainerRBDCheckpointResumeBitIdentical(t *testing.T) {
	a, err := NewDistTrainer(rbdTrainerConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck := a.Checkpoint()
	var tail []float64
	for i := 0; i < 2; i++ {
		stats, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, stats.Loss)
	}
	b, err := NewDistTrainer(rbdTrainerConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		stats, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Loss != tail[i] {
			t.Fatalf("resumed step %d loss %v != uninterrupted %v", i, stats.Loss, tail[i])
		}
	}
	weightsEqual(t, a, b, "rbd-resume")
}

// TestDistTrainerRBDShrinkCycleDeterministic runs the elastic cycle —
// train, checkpoint, shrink to one node, restore, train on — under
// blocking and chunked RBD: the dispatcher is rebuilt for the new world
// and the whole cycle stays bit-identical across chunk counts.
func TestDistTrainerRBDShrinkCycleDeterministic(t *testing.T) {
	cycle := func(chunks int) ([]float64, *DistTrainer) {
		tr, err := NewDistTrainer(rbdTrainerConfig(chunks))
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for i := 0; i < 2; i++ {
			stats, err := tr.Step()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, stats.Loss)
		}
		ck := tr.Checkpoint()
		if err := tr.Shrink(8); err != nil {
			t.Fatal(err)
		}
		if err := tr.Restore(ck); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			stats, err := tr.Step()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, stats.Loss)
		}
		return losses, tr
	}
	baseLoss, baseTr := cycle(1)
	chunkLoss, chunkTr := cycle(4)
	assertSameTraining(t, "rbd/shrink-cycle", baseLoss, chunkLoss, baseTr, chunkTr)
}

// TestDistTrainerRBDZeROBitIdentical extends the ZeRO determinism pin to
// the RBD transport: every stage and bucket size reproduces the stage-0
// unbucketed trajectory bit for bit, with momentum state exercised. The
// gradient sync is issued from the RBD backward's OnDWReady hook, so this
// also pins that the hook fires at the right point of the reversed
// hierarchy.
func TestDistTrainerRBDZeROBitIdentical(t *testing.T) {
	const steps = 3
	mk := func(stage int, bucket int64) DistConfig {
		cfg := rbdTrainerConfig(2)
		cfg.ZeROStage = stage
		cfg.BucketBytes = bucket
		cfg.Momentum = 0.9
		return cfg
	}
	baseLoss, baseTr := runZeroSteps(t, mk(0, 0), steps)
	for _, stage := range []int{1, 2} {
		for _, bucket := range []int64{0, 16} {
			loss, tr := runZeroSteps(t, mk(stage, bucket), steps)
			assertSameTraining(t, "rbd/zero", baseLoss, loss, baseTr, tr)
		}
	}
}

// TestDistConfigRejectsRBDUnsupportedOpts: option combos the RBD backward
// does not support surface as typed *moe.OptionError from Check instead
// of a silent fallback or a rank panic mid-step.
func TestDistConfigRejectsRBDUnsupportedOpts(t *testing.T) {
	cfg := rbdTrainerConfig(1)
	cfg.Opts.CombineBytes = 4
	err := cfg.Check()
	if err == nil {
		t.Fatal("Check accepted rbd + CombineBytes override")
	}
	var oe *moe.OptionError
	if !errors.As(err, &oe) || oe.Opt != "CombineBytes" {
		t.Fatalf("want wrapped *moe.OptionError{Opt: CombineBytes}, got %v", err)
	}
	if _, err := NewDistTrainer(cfg); err == nil {
		t.Fatal("NewDistTrainer accepted rbd + CombineBytes override")
	}
	// The same override is fine on the flat transports.
	cfg.Transport = "pft"
	if err := cfg.Check(); err != nil {
		t.Fatalf("pft + CombineBytes rejected: %v", err)
	}
}
