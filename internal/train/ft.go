package train

// The fault-tolerant training loop: run steps under a fault.Injector,
// checkpoint on an interval, and on a crash roll back to the last
// checkpoint, rebuild the cluster without the dead ranks (elastic shrink
// to the largest expert-divisible world), and continue. Accounting
// follows the goodput convention: wall-clock accumulates everything —
// useful steps, checkpoint writes, failed partial attempts, and replayed
// steps — while useful time counts each step index once, at the cost of
// the attempt whose result survived.

import (
	"errors"
	"fmt"
	"sort"

	"xmoe/internal/fault"
	"xmoe/internal/simrt"
	"xmoe/internal/trace"
)

// FTOptions configures RunFaultTolerant.
type FTOptions struct {
	// Steps is the number of useful training steps to complete.
	Steps int
	// CkptEvery checkpoints after every N useful steps (0 = only the
	// implicit step-0 checkpoint, i.e. restart from scratch on failure).
	CkptEvery int
	// Plan is the deterministic fault schedule.
	Plan fault.Plan
	// CkptCost is the simulated seconds charged per checkpoint write;
	// 0 derives it from the parameter bytes over the machine's NIC
	// bandwidth (weights stream off-node to stable storage).
	CkptCost float64
	// Rec, when non-nil, receives zero-duration marks for faults,
	// checkpoints, and recoveries at their wall-clock positions.
	Rec *trace.Recorder
}

// FTStats reports a fault-tolerant run.
type FTStats struct {
	// Steps is the number of useful steps completed.
	Steps int
	// Recoveries counts rollback/rebuild cycles.
	Recoveries int
	// ReplayedSteps counts steps whose first result was lost to a
	// rollback and had to run again.
	ReplayedSteps int
	// FinalWorld is the world size at the end (shrinks on crashes).
	FinalWorld int
	// FinalLoss is the last useful step's loss.
	FinalLoss float64
	// UsefulTime is the per-step time summed over surviving attempts.
	UsefulTime float64
	// CkptTime is the total simulated checkpoint-write time.
	CkptTime float64
	// LostTime is wall-clock spent on work a rollback discarded (failed
	// partial attempts plus first runs of replayed steps).
	LostTime float64
	// WallClock is the total simulated time including all of the above.
	WallClock float64
	// Goodput is UsefulTime / WallClock.
	Goodput float64
}

// CkptCost returns the simulated checkpoint-write time for the trainer's
// model on its machine: all parameter bytes (expert weights f32 plus the
// dense bias) streamed off-node at NIC bandwidth.
func (t *DistTrainer) CkptCost() float64 {
	m := t.Cfg.MoE
	bytes := int64(m.NumExperts) * int64(m.HModel) * int64(m.HFFN) * 2 * 4
	bytes += int64(m.HModel) * 4
	return float64(bytes) / t.Cfg.Machine.NodeNICBandwidth
}

// RunFaultTolerant trains for o.Steps useful steps under o.Plan's faults.
// Crashes trigger recovery: roll back to the last checkpoint, shrink the
// world to the surviving ranks (largest divisor of the expert count),
// reshard weights, and continue. Non-crash failures are returned as-is.
// The same options against the same trainer configuration produce
// bit-identical final weights and stats — faults included.
func (t *DistTrainer) RunFaultTolerant(o FTOptions) (FTStats, error) {
	if o.Steps < 1 {
		return FTStats{}, fmt.Errorf("train: fault-tolerant run needs steps >= 1, got %d", o.Steps)
	}
	inj := fault.NewInjector(o.Plan, t.Cfg.World)
	t.cluster.Inject = inj
	ckptCost := o.CkptCost
	if ckptCost == 0 {
		ckptCost = t.CkptCost()
	}

	st := FTStats{FinalWorld: t.Cfg.World}
	useful := make([]float64, o.Steps)
	var wall float64
	mark := func(name string) {
		if o.Rec != nil {
			o.Rec.Mark(name, wall)
		}
	}

	ck := t.Checkpoint()
	wall += ckptCost
	st.CkptTime += ckptCost
	mark(fmt.Sprintf("ckpt step=%d", ck.Step))

	for t.step < o.Steps {
		step := t.step
		inj.Arm(step, wall)
		t.cluster.SetLinkDerate(inj.LinkDerates(step))
		stats, err := t.Step()
		if err == nil {
			wall += stats.WallClock
			if useful[step] > 0 {
				st.LostTime += useful[step] // first attempt's result was rolled back
			} else {
				st.Steps++
			}
			useful[step] = stats.WallClock
			st.FinalLoss = stats.Loss
			if o.CkptEvery > 0 && t.step%o.CkptEvery == 0 && t.step < o.Steps {
				ck = t.Checkpoint()
				wall += ckptCost
				st.CkptTime += ckptCost
				mark(fmt.Sprintf("ckpt step=%d", ck.Step))
			}
			continue
		}

		// The failed attempt's partial time is lost work.
		wall += stats.WallClock
		st.LostTime += stats.WallClock
		if !errors.Is(err, simrt.ErrRankCrashed) {
			return st, fmt.Errorf("train: unrecoverable step failure: %w", err)
		}
		crashed := crashedRanks(t.cluster.FailedRanks())
		mark(fmt.Sprintf("fault crash=%v step=%d", crashed, step))
		survivors := t.Cfg.World - len(crashed)
		newWorld := ShrinkWorld(t.Cfg.MoE.NumExperts, survivors)
		if newWorld < 1 {
			return st, fmt.Errorf("train: no survivors after crash of ranks %v: %w", crashed, err)
		}
		st.Recoveries++
		st.ReplayedSteps += step - ck.Step
		if serr := t.Shrink(newWorld); serr != nil {
			return st, serr
		}
		if rerr := t.Restore(ck); rerr != nil {
			return st, rerr
		}
		// Restart-from-checkpoint cost: reading the snapshot back is the
		// same traffic as writing it.
		wall += ckptCost
		st.CkptTime += ckptCost
		st.FinalWorld = newWorld
		mark(fmt.Sprintf("recover world=%d step=%d", newWorld, ck.Step))
	}

	for _, d := range useful {
		st.UsefulTime += d
	}
	st.WallClock = wall
	st.Goodput = fault.Goodput(st.UsefulTime, wall)
	return st, nil
}

// crashedRanks extracts the ranks that failed with an injected crash (as
// opposed to aborting because a peer failed), sorted for determinism.
func crashedRanks(failed map[int]error) []int {
	var out []int
	for r, err := range failed {
		if errors.Is(err, simrt.ErrRankCrashed) {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}
