package train

// The fault-tolerant training loop: run steps under a fault.Injector,
// checkpoint on an interval (blocking or asynchronously via CkptStream's
// double buffer), and on a crash roll back to the last *durable*
// checkpoint, rebuild the cluster — promoting hot spares into the dead
// ranks' slots when the plan provides them (Grow), else shrinking to the
// largest expert-divisible world (Shrink) — and continue. Accounting
// follows the goodput convention: wall-clock accumulates everything —
// useful steps, uncovered checkpoint-write remainders, failed partial
// attempts, and replayed steps — while useful time counts each step
// index once, at the cost of the attempt whose result survived. The
// identity wall = useful + ckpt + lost is exact.

import (
	"errors"
	"fmt"
	"sort"

	"xmoe/internal/fault"
	"xmoe/internal/memmodel"
	"xmoe/internal/simrt"
	"xmoe/internal/trace"
)

// FTOptions configures RunFaultTolerant.
type FTOptions struct {
	// Steps is the number of useful training steps to complete.
	Steps int
	// CkptEvery checkpoints after every N useful steps (0 = only the
	// implicit step-0 checkpoint, i.e. restart from scratch on failure).
	CkptEvery int
	// AsyncCkpt streams checkpoint writes off-node concurrently with the
	// following training steps (CkptStream), charging only the uncovered
	// remainder of each write; a crash mid-write falls back to the last
	// snapshot whose write had completed. False selects the blocking
	// stop-the-world write.
	AsyncCkpt bool
	// Plan is the deterministic fault schedule; Plan.Spares sizes the
	// hot-spare pool recovery promotes from.
	Plan fault.Plan
	// CkptCost is the simulated seconds charged per checkpoint write;
	// 0 derives it from the per-rank persisted state bytes over the
	// machine's NIC bandwidth (see DistTrainer.CkptCost).
	CkptCost float64
	// Rec, when non-nil, receives zero-duration marks for faults,
	// checkpoints, and recoveries at their wall-clock positions.
	Rec *trace.Recorder
}

// FTStats reports a fault-tolerant run.
type FTStats struct {
	// Steps is the number of useful steps completed.
	Steps int
	// Recoveries counts rollback/rebuild cycles.
	Recoveries int
	// ReplayedSteps counts steps whose first result was lost to a
	// rollback and had to run again.
	ReplayedSteps int
	// SparesUsed counts hot spares promoted into the world across all
	// recoveries (bounded by Plan.Spares).
	SparesUsed int
	// FinalWorld is the world size at the end (shrinks on crashes,
	// regrows when spares are promoted).
	FinalWorld int
	// FinalLoss is the last useful step's loss.
	FinalLoss float64
	// UsefulTime is the per-step time summed over surviving attempts.
	UsefulTime float64
	// UsefulTokens is the number of tokens processed by the surviving
	// attempts (Tokens x world of each attempt): the throughput a shrunk
	// world loses and a spare-regrown world keeps.
	UsefulTokens int64
	// CkptTime is the total simulated checkpoint time actually charged:
	// full writes in blocking mode, uncovered remainders in async mode,
	// plus restart reads.
	CkptTime float64
	// LostTime is wall-clock spent on work a rollback discarded (failed
	// partial attempts plus every superseded attempt of replayed steps).
	LostTime float64
	// WallClock is the total simulated time including all of the above.
	WallClock float64
	// Goodput is UsefulTime / WallClock.
	Goodput float64
}

// CkptCost returns the simulated checkpoint-write time for the trainer's
// model on its machine. Each rank persists the state it uniquely owns —
// its local expert weights and their full optimizer state, its share of
// the single persisted dense-parameter copy, and its ZeRO shard of the
// dense optimizer state (memmodel.CheckpointBytes, so the cost tracks
// the configured ZeRO stage and momentum) — streamed off-node to stable
// storage. Ranks on distinct nodes write in parallel over their own
// NICs; ranks sharing a node serialise on one NIC, so the charged time
// is the per-node write volume over NIC bandwidth.
func (t *DistTrainer) CkptCost() float64 {
	m := t.Cfg.MoE
	w := t.Cfg.World
	expertElems := int64(m.NumExperts/w) * int64(m.HModel) * int64(m.HFFN) * 2
	optBytes := int64(0)
	if t.Cfg.Momentum != 0 {
		optBytes = 4
	}
	perRank := memmodel.CheckpointBytes(expertElems, int64(m.HModel), w, t.Cfg.ZeROStage, 4, optBytes)
	ranksPerNode := t.Cfg.Machine.GPUsPerNode
	if w < ranksPerNode {
		ranksPerNode = w
	}
	return float64(perRank*int64(ranksPerNode)) / t.Cfg.Machine.NodeNICBandwidth
}

// RunFaultTolerant trains for o.Steps useful steps under o.Plan's faults.
// Crashes trigger recovery: roll back to the last durable checkpoint,
// promote up to Plan.Spares hot spares into the dead slots (regrowing
// toward the original world), shrink to the largest expert-divisible
// world the promoted pool supports otherwise, reshard weights, and
// continue. Non-crash failures are returned as-is. The same options
// against the same trainer configuration produce bit-identical final
// weights and stats — faults, async checkpoints, spare promotions, and
// straggler mitigation included.
func (t *DistTrainer) RunFaultTolerant(o FTOptions) (FTStats, error) {
	if o.Steps < 1 {
		return FTStats{}, fmt.Errorf("train: fault-tolerant run needs steps >= 1, got %d", o.Steps)
	}
	origWorld := t.Cfg.World
	inj := fault.NewInjector(o.Plan, origWorld)
	t.cluster.Inject = inj
	ckptCost := o.CkptCost
	if ckptCost == 0 {
		ckptCost = t.CkptCost()
	}
	sparesLeft := o.Plan.Spares

	st := FTStats{FinalWorld: t.Cfg.World}
	// Per step index: the surviving attempt's wall time and token count.
	// A step rolled back more than once moves each superseded attempt's
	// time into LostTime at replacement, accumulating — never
	// overwriting — so the wall = useful + ckpt + lost identity holds
	// through double crashes of the same step.
	useful := make([]float64, o.Steps)
	tokens := make([]int64, o.Steps)
	var wall float64
	mark := func(name string) {
		if o.Rec != nil {
			o.Rec.Mark(name, wall)
		}
	}
	charge := func(d float64) {
		wall += d
		st.CkptTime += d
	}

	// The stream's durable base is the step-0 state (a pure function of
	// the seed); the first write is issued like every other one.
	cs := NewCkptStream(ckptCost, t.Checkpoint())
	issue := func() {
		ck := t.Checkpoint()
		charge(cs.Issue(ck, wall))
		if !o.AsyncCkpt {
			charge(cs.Drain(wall))
		}
		mark(fmt.Sprintf("ckpt step=%d", ck.Step))
	}
	issue()

	for t.step < o.Steps {
		step := t.step
		inj.Arm(step, wall)
		t.cluster.SetLinkDerate(inj.LinkDerates(step))
		stats, err := t.Step()
		if err == nil {
			wall += stats.WallClock
			if useful[step] > 0 {
				st.LostTime += useful[step] // superseded attempt accumulates into lost
			} else {
				st.Steps++
			}
			useful[step] = stats.WallClock
			tokens[step] = int64(t.Cfg.Tokens) * int64(t.Cfg.World)
			st.FinalLoss = stats.Loss
			if o.CkptEvery > 0 && t.step%o.CkptEvery == 0 && t.step < o.Steps {
				issue()
			}
			continue
		}

		// The failed attempt's partial time is lost work.
		wall += stats.WallClock
		st.LostTime += stats.WallClock
		if !errors.Is(err, simrt.ErrRankCrashed) {
			return st, fmt.Errorf("train: unrecoverable step failure: %w", err)
		}
		crashed := crashedRanks(t.cluster.FailedRanks())
		mark(fmt.Sprintf("fault crash=%v step=%d", crashed, step))
		// Promote hot spares into the dead slots, capped by the pool and
		// the original world, then snap to expert divisibility.
		survivors := t.Cfg.World - len(crashed)
		avail := survivors + sparesLeft
		if avail > origWorld {
			avail = origWorld
		}
		newWorld := ShrinkWorld(t.Cfg.MoE.NumExperts, avail)
		if newWorld < 1 {
			return st, fmt.Errorf("train: no survivors after crash of ranks %v: %w", crashed, err)
		}
		promoted := newWorld - survivors
		if promoted < 0 {
			promoted = 0
		}
		sparesLeft -= promoted
		st.SparesUsed += promoted
		st.Recoveries++
		// Crash consistency: an in-flight async write that had completed
		// by now is durable; one still streaming is discarded and the
		// previous completed snapshot is the rollback target.
		ck := cs.Abort(wall)
		st.ReplayedSteps += step - ck.Step
		if newWorld >= t.Cfg.World {
			if gerr := t.Grow(newWorld); gerr != nil {
				return st, gerr
			}
		} else {
			if serr := t.Shrink(newWorld); serr != nil {
				return st, serr
			}
		}
		if rerr := t.Restore(ck); rerr != nil {
			return st, rerr
		}
		// Restart-from-checkpoint cost: reading the snapshot back is the
		// same traffic as writing it, and it cannot overlap (training is
		// stalled until the weights are resident).
		charge(ckptCost)
		st.FinalWorld = newWorld
		mark(fmt.Sprintf("recover world=%d step=%d spares=%d", newWorld, ck.Step, promoted))
	}
	// The final in-flight write must become durable before the run ends.
	charge(cs.Drain(wall))

	for _, d := range useful {
		st.UsefulTime += d
	}
	for _, n := range tokens {
		st.UsefulTokens += n
	}
	st.WallClock = wall
	st.Goodput = fault.Goodput(st.UsefulTime, wall)
	return st, nil
}

// crashedRanks extracts the ranks that failed with an injected crash (as
// opposed to aborting because a peer failed), sorted for determinism.
func crashedRanks(failed map[int]error) []int {
	var out []int
	for r, err := range failed {
		if errors.Is(err, simrt.ErrRankCrashed) {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}
