package kernels

import (
	"testing"

	"xmoe/internal/tensor"
)

// benchSetup builds a [s,h] token buffer and a top-k style dispatch plan
// with b routed rows across e experts.
func benchSetup(s, h, e, k int) (x *tensor.Tensor, ids []int, weights []float32, rows []int, w1 []*tensor.Tensor) {
	rng := tensor.NewRNG(7)
	x = tensor.Randn(rng, 1, s, h)
	ids = make([]int, 0, s*k)
	weights = make([]float32, 0, s*k)
	rows = make([]int, e)
	// Expert-major assignment: expert j gets every token with t%e in a
	// window, giving uneven but deterministic segments.
	for exp := 0; exp < e; exp++ {
		for t := 0; t < s; t++ {
			if (t+exp)%e < k {
				ids = append(ids, t)
				weights = append(weights, 0.5)
				rows[exp]++
			}
		}
	}
	w1 = make([]*tensor.Tensor, e)
	for exp := range w1 {
		w1[exp] = tensor.Randn(rng, 0.05, h, h)
	}
	return x, ids, weights, rows, w1
}

func BenchmarkGather(b *testing.B) {
	x, ids, _, _, _ := benchSetup(512, 128, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gather(x, ids)
	}
}

func BenchmarkGatherBackward(b *testing.B) {
	x, ids, _, _, _ := benchSetup(512, 128, 8, 2)
	dy := Gather(x, ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherBackward(dy, ids, x.Rows())
	}
}

func BenchmarkScatterCombine(b *testing.B) {
	x, ids, weights, _, _ := benchSetup(512, 128, 8, 2)
	mlpOut := Gather(x, ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScatterCombine(mlpOut, ids, weights, x.Rows())
	}
}

func BenchmarkScatterCombineBackward(b *testing.B) {
	x, ids, weights, _, _ := benchSetup(512, 128, 8, 2)
	mlpOut := Gather(x, ids)
	dOut := tensor.New(x.Rows(), x.Cols())
	dOut.Fill(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScatterCombineBackward(dOut, mlpOut, ids, weights)
	}
}

func BenchmarkSequentialGEMM(b *testing.B) {
	x, ids, _, rows, w1 := benchSetup(512, 128, 8, 2)
	seg := Gather(x, ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SequentialGEMM(seg, rows, w1)
	}
}

func BenchmarkSequentialGEMMBackward(b *testing.B) {
	x, ids, _, rows, w1 := benchSetup(512, 128, 8, 2)
	seg := Gather(x, ids)
	dy := SequentialGEMM(seg, rows, w1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SequentialGEMMBackward(dy, seg, rows, w1)
	}
}
