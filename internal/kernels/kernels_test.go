package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"xmoe/internal/tensor"
)

func TestGatherReordersRows(t *testing.T) {
	gateOut := tensor.FromSlice([]float32{
		0, 0, // token 0
		1, 1, // token 1
		2, 2, // token 2
	}, 3, 2)
	out := Gather(gateOut, []int{2, 0, 2, 1})
	want := []float32{2, 2, 0, 0, 2, 2, 1, 1}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("Gather = %v, want %v", out.Data, want)
		}
	}
}

func TestGatherBackwardAccumulates(t *testing.T) {
	dDisp := tensor.FromSlice([]float32{
		1, 1,
		2, 2,
		4, 4,
	}, 3, 2)
	// Rows 0 and 2 both came from token 1.
	dGate := GatherBackward(dDisp, []int{1, 0, 1}, 3)
	if dGate.At(0, 0) != 2 || dGate.At(1, 0) != 5 || dGate.At(2, 0) != 0 {
		t.Fatalf("GatherBackward = %v", dGate.Data)
	}
}

func TestScatterCombineWeightedSum(t *testing.T) {
	mlpOut := tensor.FromSlice([]float32{
		10, 10, // entry 0 -> token 1, w=0.5
		20, 20, // entry 1 -> token 0, w=1.0
		30, 30, // entry 2 -> token 1, w=0.1
	}, 3, 2)
	out := ScatterCombine(mlpOut, []int{1, 0, 1}, []float32{0.5, 1.0, 0.1}, 2)
	if out.At(0, 0) != 20 {
		t.Fatalf("token 0 = %f, want 20", out.At(0, 0))
	}
	if math.Abs(float64(out.At(1, 0))-8) > 1e-5 { // 10*0.5 + 30*0.1
		t.Fatalf("token 1 = %f, want 8", out.At(1, 0))
	}
}

func TestScatterCombineArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScatterCombine(tensor.New(2, 2), []int{0}, []float32{1, 1}, 2)
}

func TestGatherScatterRoundTrip(t *testing.T) {
	// With weights summing to 1 per token and identical expert outputs,
	// scatter(gather(x)) must reproduce x.
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 1, 4, 3)
	ids := []int{0, 0, 1, 2, 3, 3}
	w := []float32{0.3, 0.7, 1, 1, 0.5, 0.5}
	y := ScatterCombine(Gather(x, ids), ids, w, 4)
	if !y.Equal(x, 1e-5) {
		t.Fatal("scatter∘gather with unit weight sums must be identity")
	}
}

func TestScatterCombineBackward(t *testing.T) {
	rng := tensor.NewRNG(6)
	mlpOut := tensor.Randn(rng, 1, 3, 2)
	ids := []int{1, 0, 1}
	w := []float32{0.5, 1.0, 0.1}
	// Loss = sum(combineOut) => dCombineOut = ones.
	dCombine := tensor.New(2, 2)
	dCombine.Fill(1)
	dMlp, dW := ScatterCombineBackward(dCombine, mlpOut, ids, w)
	for i := range ids {
		for j := 0; j < 2; j++ {
			if math.Abs(float64(dMlp.At(i, j)-w[i])) > 1e-6 {
				t.Fatalf("dMlp[%d][%d] = %f, want %f", i, j, dMlp.At(i, j), w[i])
			}
		}
		wantW := mlpOut.At(i, 0) + mlpOut.At(i, 1)
		if math.Abs(float64(dW[i]-wantW)) > 1e-5 {
			t.Fatalf("dW[%d] = %f, want %f", i, dW[i], wantW)
		}
	}
}

func TestSequentialGEMMMatchesPerSegmentMatMul(t *testing.T) {
	rng := tensor.NewRNG(7)
	rows := []int{3, 0, 5, 2}
	k, n := 6, 4
	total := 10
	x := tensor.Randn(rng, 1, total, k)
	ws := make([]*tensor.Tensor, len(rows))
	for i := range ws {
		ws[i] = tensor.Randn(rng, 1, k, n)
	}
	out := SequentialGEMM(x, rows, ws)
	off := 0
	for e, r := range rows {
		for i := 0; i < r; i++ {
			want := tensor.MatMul(tensor.FromSlice(x.Row(off+i), 1, k), ws[e])
			for j := 0; j < n; j++ {
				if math.Abs(float64(out.At(off+i, j)-want.At(0, j))) > 1e-4 {
					t.Fatalf("segment %d row %d differs", e, i)
				}
			}
		}
		off += r
	}
}

func TestSequentialGEMMValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"segment/weight count", func() {
			SequentialGEMM(tensor.New(2, 2), []int{2}, nil)
		}},
		{"row coverage", func() {
			SequentialGEMM(tensor.New(3, 2), []int{2}, []*tensor.Tensor{tensor.New(2, 2)})
		}},
		{"weight shape", func() {
			SequentialGEMM(tensor.New(2, 2), []int{2}, []*tensor.Tensor{tensor.New(3, 2)})
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestSequentialGEMMBackwardNumerically(t *testing.T) {
	rng := tensor.NewRNG(8)
	rows := []int{2, 3}
	k, n := 4, 3
	x := tensor.Randn(rng, 1, 5, k)
	ws := []*tensor.Tensor{tensor.Randn(rng, 1, k, n), tensor.Randn(rng, 1, k, n)}
	loss := func() float64 {
		return SequentialGEMM(x, rows, ws).Sum()
	}
	dy := tensor.New(5, n)
	dy.Fill(1)
	dx, dws := SequentialGEMMBackward(dy, x, rows, ws)
	const eps = 1e-2
	check := func(name string, data []float32, i int, analytic float32) {
		orig := data[i]
		data[i] = orig + eps
		up := loss()
		data[i] = orig - eps
		down := loss()
		data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(analytic)) > 5e-2 {
			t.Fatalf("%s grad[%d]: analytic %f vs numeric %f", name, i, analytic, num)
		}
	}
	for i := 0; i < x.Len(); i += 3 {
		check("dx", x.Data, i, dx.Data[i])
	}
	for e := range ws {
		for i := 0; i < ws[e].Len(); i += 5 {
			check("dw", ws[e].Data, i, dws[e].Data[i])
		}
	}
}

func TestSequentialGEMMBackwardEmptySegment(t *testing.T) {
	x := tensor.New(2, 3)
	dy := tensor.New(2, 2)
	ws := []*tensor.Tensor{tensor.New(3, 2), tensor.New(3, 2)}
	_, dws := SequentialGEMMBackward(dy, x, []int{2, 0}, ws)
	if dws[1] == nil || dws[1].Rows() != 3 || dws[1].Cols() != 2 {
		t.Fatal("empty segment must still produce a zero dW of the right shape")
	}
}

func TestPaddedDispatchAndCombine(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 1,
		2, 2,
		3, 3,
	}, 3, 2)
	// 2 experts, capacity 2: expert 0 gets tokens 0,2; expert 1 gets token 1
	// with one empty (zero-padded) slot.
	slotToken := [][]int{{0, 2}, {1, -1}}
	buf := PaddedDispatch(x, slotToken, 2)
	// Layout [E=2, C=2, H=2]: (e=0,c=1) starts at (0*2+1)*2 = 2 and holds
	// token 2; (e=1,c=0) starts at (1*2+0)*2 = 4 and holds token 1.
	if buf.Data[0] != 1 || buf.Data[2] != 3 || buf.Data[4] != 2 {
		t.Fatalf("padded buffer = %v", buf.Data)
	}
	// The padding slot must stay zero.
	if buf.Data[(1*2+1)*2] != 0 {
		t.Fatal("padding slot not zero")
	}
	slotWeight := [][]float32{{1, 0.5}, {2, 0}}
	out := PaddedCombine(buf, slotToken, slotWeight, 2, 3)
	if out.At(0, 0) != 1 || out.At(1, 0) != 4 || out.At(2, 0) != 1.5 {
		t.Fatalf("padded combine = %v", out.Data)
	}
}

// Property: gather followed by weighted scatter conserves total "mass"
// when each token's weights sum to 1.
func TestQuickGatherScatterConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		s := 1 + rng.Intn(10)
		h := 1 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		x := tensor.Randn(rng, 1, s, h)
		var ids []int
		var ws []float32
		for tok := 0; tok < s; tok++ {
			for j := 0; j < k; j++ {
				ids = append(ids, tok)
				ws = append(ws, 1/float32(k))
			}
		}
		y := ScatterCombine(Gather(x, ids), ids, ws, s)
		return y.Equal(x, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: SequentialGEMM with identical weights for all experts equals
// one big MatMul regardless of segmentation.
func TestQuickSequentialGEMMSegmentationInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		total := 1 + rng.Intn(12)
		k, n := 1+rng.Intn(6), 1+rng.Intn(6)
		x := tensor.Randn(rng, 1, total, k)
		w := tensor.Randn(rng, 1, k, n)
		// Random segmentation of total rows.
		var rows []int
		left := total
		for left > 0 {
			r := 1 + rng.Intn(left)
			rows = append(rows, r)
			left -= r
		}
		ws := make([]*tensor.Tensor, len(rows))
		for i := range ws {
			ws[i] = w
		}
		return SequentialGEMM(x, rows, ws).Equal(tensor.MatMul(x, w), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
