// Package kernels implements the cross-platform sparse and irregular
// kernels of X-MoE's padding-free pipeline (paper §4.1.2): the gather
// kernel that builds the dispatch buffer from ERI-array indices, the
// scatter kernel that reassembles and weight-scales expert outputs in the
// combine stage, and the sequential GEMM that processes uneven per-expert
// token segments without zero-padding.
//
// The paper implements these in Triton, scheduling one thread-block per
// token row with contiguous threads across the hidden dimension for
// coalesced access. Here each "thread block" is a row processed inside a
// goroutine-pool chunk (tensor.ParallelFor), preserving the same
// row-parallel structure and contiguous row access pattern.
//
// Every kernel has an allocate-fresh form (returns new tensors) and an
// *Into form writing into caller-provided buffers, typically drawn from a
// tensor.Pool. The two forms are bit-identical; Into kernels that
// accumulate rather than fully overwrite require a zero-filled
// destination (as returned by tensor.New or tensor.Pool.Get).
package kernels

import (
	"fmt"

	"xmoe/internal/tensor"
)

// Gather builds the dispatch buffer from the gate output:
//
//	dispatchIn[i, :] = gateOut[tokenIDs[i], :]
//
// gateOut is [S, H]; the result is [B, H] with B = len(tokenIDs).
func Gather(gateOut *tensor.Tensor, tokenIDs []int) *tensor.Tensor {
	out := tensor.New(len(tokenIDs), gateOut.Cols())
	GatherInto(out, gateOut, tokenIDs)
	return out
}

// GatherInto is Gather into the preallocated out [B, H], which is fully
// overwritten.
func GatherInto(out, gateOut *tensor.Tensor, tokenIDs []int) {
	b := len(tokenIDs)
	if out.Rows() != b || out.Cols() != gateOut.Cols() {
		panic(fmt.Sprintf("kernels: gather dst shape %v, want [%d,%d]", out.Shape(), b, gateOut.Cols()))
	}
	tensor.ParallelFor(b, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), gateOut.Row(tokenIDs[i]))
		}
	})
}

// GatherBackward scatters row gradients back through Gather: it returns
// dGateOut [S, H] with dGateOut[tokenIDs[i], :] += dDispatchIn[i, :].
// Multiple dispatch rows may map to one token (top-k routing), so this is
// an accumulating scatter grouped by destination row to stay race-free
// under parallel execution.
func GatherBackward(dDispatchIn *tensor.Tensor, tokenIDs []int, numTokens int) *tensor.Tensor {
	out := tensor.New(numTokens, dDispatchIn.Cols())
	GatherBackwardInto(out, dDispatchIn, tokenIDs)
	return out
}

// GatherBackwardInto is GatherBackward into the preallocated out
// [numTokens, H]. out must be zero-filled; gradients are accumulated.
func GatherBackwardInto(out, dDispatchIn *tensor.Tensor, tokenIDs []int) {
	if out.Cols() != dDispatchIn.Cols() || dDispatchIn.Rows() != len(tokenIDs) {
		panic(fmt.Sprintf("kernels: gather-backward dst shape %v for %d ids of width %d",
			out.Shape(), len(tokenIDs), dDispatchIn.Cols()))
	}
	numTokens := out.Rows()
	byToken := GroupByDestination(tokenIDs, numTokens)
	tensor.ParallelFor(numTokens, 8, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := out.Row(t)
			for _, i := range byToken.Sources(t) {
				src := dDispatchIn.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
		}
	})
}

// ScatterCombine reassembles the MoE layer output from expert results:
//
//	combineOut[tokenIDs[i], :] += mlpOut[i, :] * weights[i]
//
// mlpOut is [B, H]; the result is [numTokens, H]. The accumulation over
// the k expert outputs of each token is the combine-stage weighted sum.
// Rows are grouped by destination token so parallel workers never write
// the same output row.
func ScatterCombine(mlpOut *tensor.Tensor, tokenIDs []int, weights []float32, numTokens int) *tensor.Tensor {
	out := tensor.New(numTokens, mlpOut.Cols())
	ScatterCombineInto(out, mlpOut, tokenIDs, weights)
	return out
}

// ScatterCombineInto is ScatterCombine into the preallocated out
// [numTokens, H]. out must be zero-filled; rows are accumulated.
func ScatterCombineInto(out, mlpOut *tensor.Tensor, tokenIDs []int, weights []float32) {
	if len(tokenIDs) != mlpOut.Rows() || len(weights) != mlpOut.Rows() {
		panic(fmt.Sprintf("kernels: scatter arity mismatch: %d rows, %d ids, %d weights",
			mlpOut.Rows(), len(tokenIDs), len(weights)))
	}
	if out.Cols() != mlpOut.Cols() {
		panic(fmt.Sprintf("kernels: scatter dst width %d, rows are %d wide", out.Cols(), mlpOut.Cols()))
	}
	numTokens := out.Rows()
	byToken := GroupByDestination(tokenIDs, numTokens)
	tensor.ParallelFor(numTokens, 8, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := out.Row(t)
			for _, i := range byToken.Sources(t) {
				w := weights[i]
				src := mlpOut.Row(i)
				for j, v := range src {
					dst[j] += w * v
				}
			}
		}
	})
}

// ScatterCombineBackward computes the gradients of ScatterCombine with
// respect to mlpOut and weights:
//
//	dMlpOut[i, :]  = dCombineOut[tokenIDs[i], :] * weights[i]
//	dWeights[i]    = <dCombineOut[tokenIDs[i], :], mlpOut[i, :]>
func ScatterCombineBackward(dCombineOut, mlpOut *tensor.Tensor, tokenIDs []int, weights []float32) (dMlpOut *tensor.Tensor, dWeights []float32) {
	dMlpOut = tensor.New(mlpOut.Rows(), mlpOut.Cols())
	dWeights = make([]float32, mlpOut.Rows())
	ScatterCombineBackwardInto(dMlpOut, dWeights, dCombineOut, mlpOut, tokenIDs, weights)
	return dMlpOut, dWeights
}

// ScatterCombineBackwardInto is ScatterCombineBackward into the
// preallocated dMlpOut [B, H] and dWeights [B], which are fully
// overwritten.
func ScatterCombineBackwardInto(dMlpOut *tensor.Tensor, dWeights []float32, dCombineOut, mlpOut *tensor.Tensor, tokenIDs []int, weights []float32) {
	b := mlpOut.Rows()
	if dMlpOut.Rows() != b || len(dWeights) != b || dMlpOut.Cols() != dCombineOut.Cols() {
		panic(fmt.Sprintf("kernels: scatter-backward dst shape %v/%d, want [%d,%d]/%d",
			dMlpOut.Shape(), len(dWeights), b, dCombineOut.Cols(), b))
	}
	tensor.ParallelFor(b, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := dCombineOut.Row(tokenIDs[i])
			x := mlpOut.Row(i)
			w := weights[i]
			dRow := dMlpOut.Row(i)
			var dot float32
			for j := range g {
				dRow[j] = g[j] * w
				dot += g[j] * x[j]
			}
			dWeights[i] = dot
		}
	})
}

// DestIndex is a CSR-style inverse of a destination-id array: the sources
// mapping to destination t are Sources(t), in ascending source order.
// Building it costs three slice allocations regardless of the destination
// count, replacing the per-destination sub-slices the scatter kernels
// previously allocated. The routing layers reuse it wherever a
// counting-sort inverse is needed (e.g. RBD's token bucketing).
type DestIndex struct {
	offsets []int
	perm    []int
}

// Sources returns the source indices mapping to destination t.
func (d DestIndex) Sources(t int) []int { return d.perm[d.offsets[t]:d.offsets[t+1]] }

// GroupByDestination builds, for each destination row in [0, n), the list
// of source indices mapping to it (a counting-sort style inverse of ids).
func GroupByDestination(ids []int, n int) DestIndex {
	offsets := make([]int, n+1)
	for _, t := range ids {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("kernels: destination index %d outside [0,%d)", t, n))
		}
		offsets[t+1]++
	}
	for t := 0; t < n; t++ {
		offsets[t+1] += offsets[t]
	}
	perm := make([]int, len(ids))
	next := make([]int, n)
	copy(next, offsets[:n])
	for i, t := range ids {
		perm[next[t]] = i
		next[t]++
	}
	return DestIndex{offsets: offsets, perm: perm}
}

// SequentialGEMM multiplies uneven per-expert row segments of x by each
// expert's weight matrix: segment e (rows[e] consecutive rows of x) is
// multiplied by weights[e]. This is the padding-free expert computation:
// one GEMM launch per local expert over exactly the tokens routed to it
// (paper §4.1.2: "launching E_local GeMMs").
//
// x is [B, K] with B = sum(rows); weights[e] is [K, N]. Returns [B, N].
func SequentialGEMM(x *tensor.Tensor, rows []int, weights []*tensor.Tensor) *tensor.Tensor {
	n := 0
	if len(weights) > 0 {
		n = weights[0].Cols()
	}
	out := tensor.New(x.Rows(), n)
	SequentialGEMMInto(out, x, rows, weights)
	return out
}

// SequentialGEMMInto is SequentialGEMM into the preallocated out [B, N],
// which is fully overwritten (zero-row segments stay zero, so out must be
// zero-filled when any expert has no tokens — tensor.Pool.Get and
// tensor.New both satisfy this).
func SequentialGEMMInto(out, x *tensor.Tensor, rows []int, weights []*tensor.Tensor) {
	if len(rows) != len(weights) {
		panic(fmt.Sprintf("kernels: %d segments but %d weight matrices", len(rows), len(weights)))
	}
	total := 0
	for _, r := range rows {
		total += r
	}
	if total != x.Rows() {
		panic(fmt.Sprintf("kernels: segments cover %d rows, x has %d", total, x.Rows()))
	}
	k := x.Cols()
	n := 0
	if len(weights) > 0 {
		n = weights[0].Cols()
	}
	if out.Rows() != total || out.Cols() != n {
		panic(fmt.Sprintf("kernels: sequential-gemm dst shape %v, want [%d,%d]", out.Shape(), total, n))
	}
	off := 0
	for e, r := range rows {
		if r == 0 {
			continue
		}
		w := weights[e]
		if w.Rows() != k || w.Cols() != n {
			panic(fmt.Sprintf("kernels: expert %d weight shape %v, want [%d,%d]", e, w.Shape(), k, n))
		}
		seg := tensor.FromSlice(x.Data[off*k:(off+r)*k], r, k)
		dst := tensor.FromSlice(out.Data[off*n:(off+r)*n], r, n)
		tensor.MatMulInto(dst, seg, w)
		off += r
	}
}

// SequentialGEMMBackward computes the input and weight gradients of
// SequentialGEMM: for each segment e, dX_e = dY_e·W_eᵀ and
// dW_e = X_eᵀ·dY_e. It returns dX [B, K] and one dW per expert.
func SequentialGEMMBackward(dy, x *tensor.Tensor, rows []int, weights []*tensor.Tensor) (dx *tensor.Tensor, dws []*tensor.Tensor) {
	dx = tensor.New(x.Rows(), x.Cols())
	dws = make([]*tensor.Tensor, len(weights))
	for e, w := range weights {
		dws[e] = tensor.New(w.Rows(), w.Cols())
	}
	SequentialGEMMBackwardInto(dx, dws, dy, x, rows, weights)
	return dx, dws
}

// SequentialGEMMBackwardInto is SequentialGEMMBackward into the
// preallocated dx [B, K] and per-expert dws, which are fully overwritten.
func SequentialGEMMBackwardInto(dx *tensor.Tensor, dws []*tensor.Tensor, dy, x *tensor.Tensor, rows []int, weights []*tensor.Tensor) {
	k := x.Cols()
	n := dy.Cols()
	if dx.Rows() != x.Rows() || dx.Cols() != k || len(dws) != len(weights) {
		panic(fmt.Sprintf("kernels: sequential-gemm-backward dst shape %v/%d, want [%d,%d]/%d",
			dx.Shape(), len(dws), x.Rows(), k, len(weights)))
	}
	off := 0
	for e, r := range rows {
		w := weights[e]
		if r == 0 {
			dws[e].Zero()
			continue
		}
		segX := tensor.FromSlice(x.Data[off*k:(off+r)*k], r, k)
		segDY := tensor.FromSlice(dy.Data[off*n:(off+r)*n], r, n)
		segDX := tensor.FromSlice(dx.Data[off*k:(off+r)*k], r, k)
		tensor.MatMulTInto(segDX, segDY, w) // dY [r,n] · (W [k,n])ᵀ = [r,k]
		tensor.TMatMulInto(dws[e], segX, segDY)
		off += r
	}
}

// PaddedDispatch builds the conventional zero-padded expert buffer used by
// GShard-style frameworks: a [E, C, H] tensor where slot (e, c) holds the
// token assigned to position c of expert e's buffer, and unused slots stay
// zero (paper Fig. 2). slotToken[e][c] gives the source token index or -1.
func PaddedDispatch(x *tensor.Tensor, slotToken [][]int, capacity int) *tensor.Tensor {
	out := tensor.New(len(slotToken), capacity, x.Cols())
	PaddedDispatchInto(out, x, slotToken, capacity)
	return out
}

// PaddedDispatchInto is PaddedDispatch into the preallocated out
// [E, C, H]. out must be zero-filled: only occupied slots are written.
func PaddedDispatchInto(out, x *tensor.Tensor, slotToken [][]int, capacity int) {
	h := x.Cols()
	e := len(slotToken)
	tensor.ParallelFor(e, 1, func(lo, hi int) {
		for exp := lo; exp < hi; exp++ {
			for c, tok := range slotToken[exp] {
				if tok < 0 {
					continue
				}
				copy(out.Data[(exp*capacity+c)*h:(exp*capacity+c+1)*h], x.Row(tok))
			}
		}
	})
}

// PaddedCombine reverses PaddedDispatch with combine-weight scaling:
// output[tok, :] += buffer[e, c, :] * weight for each occupied slot.
func PaddedCombine(buffer *tensor.Tensor, slotToken [][]int, slotWeight [][]float32, capacity, numTokens int) *tensor.Tensor {
	h := buffer.Cols()
	if buffer.Rank() == 3 {
		h = buffer.Dim(2)
	}
	out := tensor.New(numTokens, h)
	PaddedCombineInto(out, buffer, slotToken, slotWeight, capacity)
	return out
}

// PaddedCombineInto is PaddedCombine into the preallocated out
// [numTokens, H]. out must be zero-filled; slots are accumulated.
func PaddedCombineInto(out, buffer *tensor.Tensor, slotToken [][]int, slotWeight [][]float32, capacity int) {
	h := buffer.Cols()
	if buffer.Rank() == 3 {
		h = buffer.Dim(2)
	}
	for e := range slotToken {
		for c, tok := range slotToken[e] {
			if tok < 0 {
				continue
			}
			w := slotWeight[e][c]
			src := buffer.Data[(e*capacity+c)*h : (e*capacity+c+1)*h]
			dst := out.Row(tok)
			for j, v := range src {
				dst[j] += w * v
			}
		}
	}
}
