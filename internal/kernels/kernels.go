// Package kernels implements the cross-platform sparse and irregular
// kernels of X-MoE's padding-free pipeline (paper §4.1.2): the gather
// kernel that builds the dispatch buffer from ERI-array indices, the
// scatter kernel that reassembles and weight-scales expert outputs in the
// combine stage, and the sequential GEMM that processes uneven per-expert
// token segments without zero-padding.
//
// The paper implements these in Triton, scheduling one thread-block per
// token row with contiguous threads across the hidden dimension for
// coalesced access. Here each "thread block" is a row processed inside a
// goroutine-pool chunk (tensor.ParallelFor), preserving the same
// row-parallel structure and contiguous row access pattern.
package kernels

import (
	"fmt"

	"xmoe/internal/tensor"
)

// Gather builds the dispatch buffer from the gate output:
//
//	dispatchIn[i, :] = gateOut[tokenIDs[i], :]
//
// gateOut is [S, H]; the result is [B, H] with B = len(tokenIDs).
func Gather(gateOut *tensor.Tensor, tokenIDs []int) *tensor.Tensor {
	h := gateOut.Cols()
	b := len(tokenIDs)
	out := tensor.New(b, h)
	tensor.ParallelFor(b, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), gateOut.Row(tokenIDs[i]))
		}
	})
	return out
}

// GatherBackward scatters row gradients back through Gather: it returns
// dGateOut [S, H] with dGateOut[tokenIDs[i], :] += dDispatchIn[i, :].
// Multiple dispatch rows may map to one token (top-k routing), so this is
// an accumulating scatter grouped by destination row to stay race-free
// under parallel execution.
func GatherBackward(dDispatchIn *tensor.Tensor, tokenIDs []int, numTokens int) *tensor.Tensor {
	h := dDispatchIn.Cols()
	out := tensor.New(numTokens, h)
	byToken := groupByDestination(tokenIDs, numTokens)
	tensor.ParallelFor(numTokens, 8, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := out.Row(t)
			for _, i := range byToken[t] {
				src := dDispatchIn.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
		}
	})
	return out
}

// ScatterCombine reassembles the MoE layer output from expert results:
//
//	combineOut[tokenIDs[i], :] += mlpOut[i, :] * weights[i]
//
// mlpOut is [B, H]; the result is [numTokens, H]. The accumulation over
// the k expert outputs of each token is the combine-stage weighted sum.
// Rows are grouped by destination token so parallel workers never write
// the same output row.
func ScatterCombine(mlpOut *tensor.Tensor, tokenIDs []int, weights []float32, numTokens int) *tensor.Tensor {
	if len(tokenIDs) != mlpOut.Rows() || len(weights) != mlpOut.Rows() {
		panic(fmt.Sprintf("kernels: scatter arity mismatch: %d rows, %d ids, %d weights",
			mlpOut.Rows(), len(tokenIDs), len(weights)))
	}
	h := mlpOut.Cols()
	out := tensor.New(numTokens, h)
	byToken := groupByDestination(tokenIDs, numTokens)
	tensor.ParallelFor(numTokens, 8, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := out.Row(t)
			for _, i := range byToken[t] {
				w := weights[i]
				src := mlpOut.Row(i)
				for j, v := range src {
					dst[j] += w * v
				}
			}
		}
	})
	return out
}

// ScatterCombineBackward computes the gradients of ScatterCombine with
// respect to mlpOut and weights:
//
//	dMlpOut[i, :]  = dCombineOut[tokenIDs[i], :] * weights[i]
//	dWeights[i]    = <dCombineOut[tokenIDs[i], :], mlpOut[i, :]>
func ScatterCombineBackward(dCombineOut, mlpOut *tensor.Tensor, tokenIDs []int, weights []float32) (dMlpOut *tensor.Tensor, dWeights []float32) {
	b, h := mlpOut.Rows(), mlpOut.Cols()
	dMlpOut = tensor.New(b, h)
	dWeights = make([]float32, b)
	tensor.ParallelFor(b, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := dCombineOut.Row(tokenIDs[i])
			x := mlpOut.Row(i)
			w := weights[i]
			dRow := dMlpOut.Row(i)
			var dot float32
			for j := range g {
				dRow[j] = g[j] * w
				dot += g[j] * x[j]
			}
			dWeights[i] = dot
		}
	})
	return dMlpOut, dWeights
}

// groupByDestination builds, for each destination row in [0, n), the list
// of source indices mapping to it (a counting-sort style inverse of ids).
func groupByDestination(ids []int, n int) [][]int {
	counts := make([]int, n)
	for _, t := range ids {
		if t < 0 || t >= n {
			panic(fmt.Sprintf("kernels: destination index %d outside [0,%d)", t, n))
		}
		counts[t]++
	}
	out := make([][]int, n)
	for t, c := range counts {
		if c > 0 {
			out[t] = make([]int, 0, c)
		}
	}
	for i, t := range ids {
		out[t] = append(out[t], i)
	}
	return out
}

// SequentialGEMM multiplies uneven per-expert row segments of x by each
// expert's weight matrix: segment e (rows[e] consecutive rows of x) is
// multiplied by weights[e]. This is the padding-free expert computation:
// one GEMM launch per local expert over exactly the tokens routed to it
// (paper §4.1.2: "launching E_local GeMMs").
//
// x is [B, K] with B = sum(rows); weights[e] is [K, N]. Returns [B, N].
func SequentialGEMM(x *tensor.Tensor, rows []int, weights []*tensor.Tensor) *tensor.Tensor {
	if len(rows) != len(weights) {
		panic(fmt.Sprintf("kernels: %d segments but %d weight matrices", len(rows), len(weights)))
	}
	total := 0
	for _, r := range rows {
		total += r
	}
	if total != x.Rows() {
		panic(fmt.Sprintf("kernels: segments cover %d rows, x has %d", total, x.Rows()))
	}
	k := x.Cols()
	n := 0
	if len(weights) > 0 {
		n = weights[0].Cols()
	}
	out := tensor.New(total, n)
	off := 0
	for e, r := range rows {
		if r == 0 {
			continue
		}
		w := weights[e]
		if w.Rows() != k || w.Cols() != n {
			panic(fmt.Sprintf("kernels: expert %d weight shape %v, want [%d,%d]", e, w.Shape(), k, n))
		}
		seg := tensor.FromSlice(x.Data[off*k:(off+r)*k], r, k)
		dst := tensor.FromSlice(out.Data[off*n:(off+r)*n], r, n)
		tensor.MatMulInto(dst, seg, w)
		off += r
	}
	return out
}

// SequentialGEMMBackward computes the input and weight gradients of
// SequentialGEMM: for each segment e, dX_e = dY_e·W_eᵀ and
// dW_e = X_eᵀ·dY_e. It returns dX [B, K] and one dW per expert.
func SequentialGEMMBackward(dy, x *tensor.Tensor, rows []int, weights []*tensor.Tensor) (dx *tensor.Tensor, dws []*tensor.Tensor) {
	k := x.Cols()
	n := dy.Cols()
	dx = tensor.New(x.Rows(), k)
	dws = make([]*tensor.Tensor, len(weights))
	off := 0
	for e, r := range rows {
		w := weights[e]
		if r == 0 {
			dws[e] = tensor.New(w.Rows(), w.Cols())
			continue
		}
		segX := tensor.FromSlice(x.Data[off*k:(off+r)*k], r, k)
		segDY := tensor.FromSlice(dy.Data[off*n:(off+r)*n], r, n)
		segDX := tensor.MatMulT(segDY, w) // dY [r,n] · (W [k,n])ᵀ = [r,k]
		copy(dx.Data[off*k:(off+r)*k], segDX.Data)
		dws[e] = tensor.TMatMul(segX, segDY)
		off += r
	}
	return dx, dws
}

// PaddedDispatch builds the conventional zero-padded expert buffer used by
// GShard-style frameworks: a [E, C, H] tensor where slot (e, c) holds the
// token assigned to position c of expert e's buffer, and unused slots stay
// zero (paper Fig. 2). slotToken[e][c] gives the source token index or -1.
func PaddedDispatch(x *tensor.Tensor, slotToken [][]int, capacity int) *tensor.Tensor {
	h := x.Cols()
	e := len(slotToken)
	out := tensor.New(e, capacity, h)
	tensor.ParallelFor(e, 1, func(lo, hi int) {
		for exp := lo; exp < hi; exp++ {
			for c, tok := range slotToken[exp] {
				if tok < 0 {
					continue
				}
				copy(out.Data[(exp*capacity+c)*h:(exp*capacity+c+1)*h], x.Row(tok))
			}
		}
	})
	return out
}

// PaddedCombine reverses PaddedDispatch with combine-weight scaling:
// output[tok, :] += buffer[e, c, :] * weight for each occupied slot.
func PaddedCombine(buffer *tensor.Tensor, slotToken [][]int, slotWeight [][]float32, capacity, numTokens int) *tensor.Tensor {
	h := buffer.Cols()
	if buffer.Rank() == 3 {
		h = buffer.Dim(2)
	}
	out := tensor.New(numTokens, h)
	for e := range slotToken {
		for c, tok := range slotToken[e] {
			if tok < 0 {
				continue
			}
			w := slotWeight[e][c]
			src := buffer.Data[(e*capacity+c)*h : (e*capacity+c+1)*h]
			dst := out.Row(tok)
			for j, v := range src {
				dst[j] += w * v
			}
		}
	}
	return out
}
