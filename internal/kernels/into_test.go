package kernels

import (
	"testing"

	"xmoe/internal/tensor"
)

// dirtyPooled returns a pool whose free lists hold deliberately dirtied
// buffers, so Get exercises the recycled-buffer path.
func dirtyPooled(shapes ...[]int) *tensor.Pool {
	p := &tensor.Pool{}
	for _, s := range shapes {
		t := p.Get(s...)
		t.Fill(1234.5)
		p.Put(t)
	}
	return p
}

// TestIntoKernelsMatchFreshBitForBit is the determinism regression test
// for the pooled/in-place kernel paths: every *Into kernel must produce
// exactly the bytes its allocate-fresh twin produces, including on
// recycled pool buffers.
func TestIntoKernelsMatchFreshBitForBit(t *testing.T) {
	const s, h, e, k = 64, 24, 4, 2
	x, ids, weights, rows, w1 := benchSetup(s, h, e, k)
	b := len(ids)

	equal := func(t *testing.T, name string, want, got *tensor.Tensor) {
		t.Helper()
		if want.Len() != got.Len() {
			t.Fatalf("%s: length %d vs %d", name, want.Len(), got.Len())
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, want.Data[i], got.Data[i])
			}
		}
	}

	pool := dirtyPooled([]int{b, h}, []int{s, h})

	t.Run("Gather", func(t *testing.T) {
		want := Gather(x, ids)
		got := pool.Get(b, h)
		GatherInto(got, x, ids)
		equal(t, "gather", want, got)
		pool.Put(got)
	})

	t.Run("GatherBackward", func(t *testing.T) {
		dy := Gather(x, ids)
		want := GatherBackward(dy, ids, s)
		got := pool.Get(s, h)
		GatherBackwardInto(got, dy, ids)
		equal(t, "gather-backward", want, got)
		pool.Put(got)
	})

	t.Run("ScatterCombine", func(t *testing.T) {
		mlpOut := Gather(x, ids)
		want := ScatterCombine(mlpOut, ids, weights, s)
		got := pool.Get(s, h)
		ScatterCombineInto(got, mlpOut, ids, weights)
		equal(t, "scatter", want, got)
		pool.Put(got)
	})

	t.Run("ScatterCombineBackward", func(t *testing.T) {
		mlpOut := Gather(x, ids)
		dOut := tensor.Randn(tensor.NewRNG(5), 1, s, h)
		wantD, wantW := ScatterCombineBackward(dOut, mlpOut, ids, weights)
		gotD := pool.Get(b, h)
		gotW := make([]float32, b)
		ScatterCombineBackwardInto(gotD, gotW, dOut, mlpOut, ids, weights)
		equal(t, "scatter-backward", wantD, gotD)
		for i := range wantW {
			if wantW[i] != gotW[i] {
				t.Fatalf("dWeights mismatch at %d", i)
			}
		}
		pool.Put(gotD)
	})

	t.Run("SequentialGEMM", func(t *testing.T) {
		seg := Gather(x, ids)
		want := SequentialGEMM(seg, rows, w1)
		got := pool.Get(b, h)
		SequentialGEMMInto(got, seg, rows, w1)
		equal(t, "seqgemm", want, got)
		pool.Put(got)
	})

	t.Run("SequentialGEMMBackward", func(t *testing.T) {
		seg := Gather(x, ids)
		dy := SequentialGEMM(seg, rows, w1)
		wantDX, wantDW := SequentialGEMMBackward(dy, seg, rows, w1)
		gotDX := pool.Get(b, h)
		gotDW := make([]*tensor.Tensor, e)
		for i := range gotDW {
			gotDW[i] = pool.Get(h, h)
		}
		SequentialGEMMBackwardInto(gotDX, gotDW, dy, seg, rows, w1)
		equal(t, "seqgemm-backward dX", wantDX, gotDX)
		for i := range wantDW {
			equal(t, "seqgemm-backward dW", wantDW[i], gotDW[i])
		}
	})

	t.Run("ZeroRowSegments", func(t *testing.T) {
		// An expert with zero tokens must leave its dW zeroed even on a
		// dirty recycled destination.
		rows0 := append([]int(nil), rows...)
		// Move expert 1's rows to expert 0 to create an empty segment.
		rows0[0] += rows0[1]
		rows0[1] = 0
		seg := Gather(x, ids)
		dy := SequentialGEMM(seg, rows0, w1)
		wantDX, wantDW := SequentialGEMMBackward(dy, seg, rows0, w1)
		gotDX := pool.Get(b, h)
		gotDW := make([]*tensor.Tensor, e)
		for i := range gotDW {
			gotDW[i] = pool.Get(h, h)
			gotDW[i].Fill(7) // dirty: Into must overwrite or zero
		}
		SequentialGEMMBackwardInto(gotDX, gotDW, dy, seg, rows0, w1)
		equal(t, "zero-segment dX", wantDX, gotDX)
		for i := range wantDW {
			equal(t, "zero-segment dW", wantDW[i], gotDW[i])
		}
	})

	t.Run("Padded", func(t *testing.T) {
		slotToken := [][]int{{0, 2, -1}, {1, -1, -1}, {3, 4, 5}, {-1, -1, -1}}
		slotWeight := [][]float32{{0.5, 0.25, 0}, {1, 0, 0}, {0.1, 0.2, 0.3}, {0, 0, 0}}
		const capacity = 3
		wantD := PaddedDispatch(x, slotToken, capacity)
		gotD := pool.Get(len(slotToken), capacity, h)
		PaddedDispatchInto(gotD, x, slotToken, capacity)
		equal(t, "padded-dispatch", wantD, gotD)

		wantC := PaddedCombine(wantD, slotToken, slotWeight, capacity, s)
		gotC := pool.Get(s, h)
		PaddedCombineInto(gotC, gotD, slotToken, slotWeight, capacity)
		equal(t, "padded-combine", wantC, gotC)
	})
}
