package memmodel

import (
	"testing"
	"testing/quick"

	"xmoe/internal/model"
	"xmoe/internal/parallel"
)

func baseSetup(world, tp, ep int) Setup {
	return Setup{
		Plan:           parallel.Plan{World: world, TP: tp, EP: ep, ZeROStage: 1},
		MicroBatch:     1,
		Pipeline:       PipelinePFT,
		CapacityFactor: 1.25,
		ElemBytes:      2,
	}
}

func TestModelStatesShardingMonotone(t *testing.T) {
	sh := model.Medium()
	ep64 := ModelStates(sh, baseSetup(256, 1, 64))
	ep128 := ModelStates(sh, baseSetup(256, 1, 128))
	if ep128 >= ep64 {
		t.Fatalf("larger EP must shard experts further: %d vs %d", ep128, ep64)
	}
	tp1 := ModelStates(sh, baseSetup(256, 1, 64))
	tp4 := ModelStates(sh, baseSetup(256, 4, 64))
	if tp4 >= tp1 {
		t.Fatalf("larger TP must shard dense params: %d vs %d", tp4, tp1)
	}
}

func TestZeROStagesReduceStates(t *testing.T) {
	sh := model.Small()
	s0, s1, s2 := baseSetup(64, 1, 32), baseSetup(64, 1, 32), baseSetup(64, 1, 32)
	s0.Plan.ZeROStage = 0
	s1.Plan.ZeROStage = 1
	s2.Plan.ZeROStage = 2
	m0, m1, m2 := ModelStates(sh, s0), ModelStates(sh, s1), ModelStates(sh, s2)
	if !(m2 < m1 && m1 < m0) {
		t.Fatalf("ZeRO stages must monotonically reduce states: %d %d %d", m0, m1, m2)
	}
}

func TestMoELayerPaddedVsPFT(t *testing.T) {
	// Table 4's structure: padded >= PFT, with the mask only on padded.
	sh := model.Large()
	st := baseSetup(256, 1, 64)
	const s = 4096
	stPad := st
	stPad.Pipeline = PipelinePadded
	pad := MoELayer(sh, stPad, s)
	pft := MoELayer(sh, st, s)
	if pad.Total() <= pft.Total() {
		t.Fatalf("padded %d should exceed PFT %d", pad.Total(), pft.Total())
	}
	if pad.Mask == 0 || pft.Mask != 0 {
		t.Fatal("mask belongs to the padded pipeline only")
	}
	if pft.ERI == 0 || pad.ERI != 0 {
		t.Fatal("ERI-arrays belong to the PFT pipeline only")
	}
	// The padded buffers carry the capacity factor's padding: with c=1.25
	// and balanced routing, padded dispatch is ~1.25x PFT's.
	ratio := float64(pad.ADispatch) / float64(pft.ADispatch)
	if ratio < 1.2 || ratio > 1.35 {
		t.Fatalf("padded/PFT dispatch ratio %.3f, want ~1.25", ratio)
	}
}

func TestFig3BottleneckShift(t *testing.T) {
	// §3.2: for Mconv the FFN intermediates dominate dispatch/combine;
	// for the size-equivalent Mspec the dispatch/combine dominate. The
	// intermediates are equal across the pair (Table 2).
	conv, spec := model.ConvSpecPair()
	st := baseSetup(256, 1, 16)
	st.Plan.EP = conv.NumExperts
	const s = 4096
	bc := MoELayer(conv, st, s)
	stSpec := st
	stSpec.Plan.EP = spec.NumExperts
	bs := MoELayer(spec, stSpec, s)

	if bc.AInterm0 != bs.AInterm0 {
		t.Fatalf("intermediates must match across the pair: %d vs %d", bc.AInterm0, bs.AInterm0)
	}
	if !(bc.ADispatch < bc.AInterm0) {
		t.Fatalf("Mconv: dispatch %d should be below interm %d", bc.ADispatch, bc.AInterm0)
	}
	if !(bs.ADispatch > bs.AInterm0) {
		t.Fatalf("Mspec: dispatch %d should dominate interm %d", bs.ADispatch, bs.AInterm0)
	}
	// Dispatch grows by the fine-grained factor m=8.
	ratio := float64(bs.ADispatch) / float64(bc.ADispatch)
	if ratio < 7 || ratio > 9 {
		t.Fatalf("dispatch ratio %.2f, want ~8 (m=8)", ratio)
	}
}

func TestTutelCombineBytes(t *testing.T) {
	sh := model.Large()
	st := baseSetup(256, 1, 64)
	st.Pipeline = PipelinePadded
	st32 := st
	st32.CombineBytes = 4
	if MoELayer(sh, st32, 4096).ACombine != 2*MoELayer(sh, st, 4096).ACombine {
		t.Fatal("fp32 combine must double A_combine")
	}
}

func TestSSMBShardsActivations(t *testing.T) {
	// Fig. 13: SSMB divides MoE activations by TP; the gap grows with TP.
	sh := model.Large()
	base := baseSetup(256, 1, 64)
	prev := Activations(sh, base)
	for _, tp := range []int{2, 4} {
		st := baseSetup(256, tp, 64)
		st.Plan.SSMB = true
		with := Activations(sh, st)
		stNo := baseSetup(256, tp, 64)
		without := Activations(sh, stNo)
		if with >= without {
			t.Fatalf("TP=%d: SSMB %d should be below non-SSMB %d", tp, with, without)
		}
		if with >= prev {
			t.Fatalf("TP=%d: SSMB memory should shrink as TP grows", tp)
		}
		prev = with
	}
}

func TestActCkptReducesActivations(t *testing.T) {
	sh := model.Large()
	st := baseSetup(256, 1, 64)
	ck := st
	ck.ActCkpt = true
	if Activations(sh, ck) >= Activations(sh, st) {
		t.Fatal("activation checkpointing must reduce activation memory")
	}
}

func TestTable4ApproximateMagnitudes(t *testing.T) {
	// Table 4: per-MoE-layer activations for the Large model on 256 GPUs
	// (EP=64): DS-MoE 2.81 GB, Tutel 1.95, X-MoE 1.21, theoretical 1.125.
	// The model should land in the right bands with micro-batch 1
	// (4096 tokens/GPU).
	sh := model.Large()
	const s = 4096
	gb := func(b int64) float64 { return float64(b) / (1 << 30) }

	ds := baseSetup(256, 1, 64)
	ds.Pipeline = PipelinePadded
	dsGB := gb(MoELayer(sh, ds, s).Total())

	tutel := ds
	tutel.CombineBytes = 4
	tutel.NoDenseMask = true
	tutelGB := gb(MoELayer(sh, tutel, s).Total())

	xm := baseSetup(256, 1, 64)
	xmGB := gb(MoELayer(sh, xm, s).Total())

	theory := gb(4 * 1.25 * 8 * 4096 * 7168) // 2 tensors x 2B x c*k*S*H

	if !(dsGB > tutelGB && tutelGB > xmGB) {
		t.Fatalf("ordering violated: DS %.2f, Tutel %.2f, X-MoE %.2f GB", dsGB, tutelGB, xmGB)
	}
	if xmGB < theory {
		t.Fatalf("X-MoE %.2f GB cannot beat the theoretical floor %.2f GB", xmGB, theory)
	}
	if dsGB < 2.0 || dsGB > 4.5 {
		t.Errorf("DS-MoE %.2f GB outside the paper's band (~2.8)", dsGB)
	}
	if xmGB < 1.0 || xmGB > 1.7 {
		t.Errorf("X-MoE %.2f GB outside the paper's band (~1.2)", xmGB)
	}
}

func TestSSMBvsTEDTradeoff(t *testing.T) {
	// Fig. 17 / Appendix C.2: DeepSeek-style models (large k, small HFFN)
	// favour SSMB at all plotted sequence lengths; Mixtral-style models
	// (k=2, huge HFFN) favour TED.
	c := 1.0
	for _, s := range []int{2048, 4096, 8192} {
		if !SSMBAdvantage(8, 2048, c, s) { // DeepSeek-v3-ish
			t.Errorf("DeepSeek config should favour SSMB at S=%d", s)
		}
		if SSMBAdvantage(2, 14336, c, s) { // Mixtral-8x7b-ish
			t.Errorf("Mixtral config should favour TED at S=%d", s)
		}
	}
	// Arctic (fine-grained experts, k=2, HFFN=4864): sequence-length
	// dependent — TED at short, SSMB at long sequences.
	if SSMBAdvantage(2, 4864, c, 2048) {
		t.Error("Arctic at S=2048 should favour TED")
	}
	if !SSMBAdvantage(2, 4864, c, 8192) {
		t.Error("Arctic at S=8192 should favour SSMB")
	}
}

func TestEquationsConsistent(t *testing.T) {
	// The advantage condition must agree with comparing Eq.1 and Eq.2.
	f := func(kRaw, hffnRaw, sRaw uint16) bool {
		k := int(kRaw)%16 + 1
		hffn := (int(hffnRaw)%16 + 1) * 1024
		s := (int(sRaw)%8 + 1) * 1024
		const c = 1.25
		const h = 4096
		const g = 4
		saving := SSMBSaving(c, k, s, h, g)
		cost := TEDMinCost(hffn, h, g)
		return (saving > cost) == SSMBAdvantage(k, hffn, c, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdvantageBorder(t *testing.T) {
	// On the border, k* = 2*HFFN/(c*S); slightly above favours SSMB.
	border := AdvantageBorderTopK(2048, 1.0, 2048)
	if border != 2.0 {
		t.Fatalf("border k = %f, want 2.0", border)
	}
	if SSMBAdvantage(2, 2048, 1.0, 2048) {
		t.Fatal("exactly on border must not favour SSMB")
	}
	if !SSMBAdvantage(3, 2048, 1.0, 2048) {
		t.Fatal("above border must favour SSMB")
	}
}

func TestQuickActivationsMonotone(t *testing.T) {
	sh := model.Small()
	f := func(mbRaw uint8) bool {
		mb := int(mbRaw)%8 + 1
		st := baseSetup(64, 1, 64)
		st.MicroBatch = mb
		st2 := st
		st2.MicroBatch = mb + 1
		return Activations(sh, st2) > Activations(sh, st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSSMBSavingEdge(t *testing.T) {
	if SSMBSaving(1.25, 8, 4096, 7168, 1) != 0 || TEDMinCost(2048, 7168, 1) != 0 {
		t.Fatal("G=1 has nothing to save")
	}
}

// TestCheckpointBytes pins the checkpoint-write volume: expert state is
// charged in full (each rank owns its experts), the single persisted
// dense-parameter copy divides across the dp writers, and the dense
// optimizer copy tracks the configured ZeRO stage — replicated at stage
// 0, sharded at stages 1 and 2.
func TestCheckpointBytes(t *testing.T) {
	const expert, dense = int64(1000), int64(800)
	s0 := CheckpointBytes(expert, dense, 4, 0, 4, 4)
	s1 := CheckpointBytes(expert, dense, 4, 1, 4, 4)
	s2 := CheckpointBytes(expert, dense, 4, 2, 4, 4)
	// expert params+opt 1000*8, dense params 800*4/4, dense opt 800*4
	// replicated or 800*4/4 sharded.
	if want := int64(1000*8 + 800 + 3200); s0 != want {
		t.Fatalf("stage 0: %d, want %d", s0, want)
	}
	if want := int64(1000*8 + 800 + 800); s1 != want {
		t.Fatalf("stage 1: %d, want %d", s1, want)
	}
	// Checkpoints persist no gradients, so stage 2 writes what stage 1
	// writes.
	if s2 != s1 {
		t.Fatalf("stage 2 %d must match stage 1 %d (no gradients persisted)", s2, s1)
	}
	// No optimizer (plain SGD): the opt terms vanish entirely.
	if got, want := CheckpointBytes(expert, dense, 4, 0, 4, 0), int64(1000*4+800); got != want {
		t.Fatalf("no-momentum: %d, want %d", got, want)
	}
	// dp<1 is treated as a single writer.
	if got, want := CheckpointBytes(expert, dense, 0, 1, 4, 4), int64(1000*8+3200+3200); got != want {
		t.Fatalf("dp=0: %d, want %d", got, want)
	}
}
